#include "kernel/kernel_gen.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>

#include "kernel/builder.h"
#include "prog/flatten.h"
#include "util/logging.h"

namespace sp::kern {

namespace {

using prog::SlotDesc;
using prog::SlotRole;
using prog::TypeKind;
using prog::TypeRef;

/** Stateful generator; one instance appends the bulk to one builder. */
class Generator
{
  public:
    Generator(KernelBuilder &builder, const KernelGenParams &params)
        : params_(params), rng_(params.seed), builder_(builder)
    {
    }

    void
    run()
    {
        registerResourceKinds();
        builder_.addFlags(static_cast<uint16_t>(params_.num_state_flags));
        buildTimerHandler();
        for (int i = 0; i < params_.num_syscalls; ++i)
            buildSyscall(i);
        for (int round = 1; round <= params_.evolution; ++round)
            evolve(round);
        plantBugs();
    }

  private:
    struct HandlerInfo
    {
        uint32_t id = 0;
        std::vector<SlotDesc> slots;
        std::string name;
    };

    void
    registerResourceKinds()
    {
        static const char *kBaseNames[] = {"fd", "sock", "dev"};
        for (int i = 0; i < params_.num_resource_kinds; ++i) {
            std::string name =
                i < 3 ? kBaseNames[i] : "res" + std::to_string(i);
            kind_ids_.push_back(builder_.addResourceKind(name));
            kind_names_.push_back(std::move(name));
        }
    }

    /** Tiny handler whose blocks serve as stray-interrupt targets. */
    void
    buildTimerHandler()
    {
        prog::SyscallDecl decl;
        decl.name = "timer_tick";
        decl.args.push_back(prog::intType("cycles", 32, 0, 1023));
        timer_handler_ = builder_.beginHandler(std::move(decl));
        uint32_t head = builder_.addBlock();
        uint32_t tail = builder_.addBlock();
        builder_.setFallthrough(head, tail);
        builder_.setReturn(tail);
        builder_.addInterruptBlock(head);
        builder_.addInterruptBlock(tail);
    }

    /** @name Argument-type generation */
    /** @{ */

    TypeRef
    genFlagsType(const std::string &name)
    {
        const size_t n = 6 + rng_.below(18);  // 6..23 flag values
        std::vector<uint64_t> values;
        // Distinct single bits plus the occasional multi-bit value.
        uint64_t bit = 1ULL << rng_.below(4);
        for (size_t i = 0; i < n; ++i) {
            values.push_back(bit);
            bit <<= 1 + rng_.below(2);
        }
        return prog::flagsType(name, std::move(values),
                               /*combinable=*/rng_.chance(0.5));
    }

    TypeRef
    genIntType(const std::string &name)
    {
        const int64_t max = static_cast<int64_t>(1)
                            << (3 + rng_.below(10));
        std::vector<uint64_t> special;
        const size_t n = 6 + rng_.below(10);
        for (size_t i = 0; i < n; ++i)
            special.push_back(rng_.below(static_cast<uint64_t>(max)));
        return prog::intType(name, 32, 0, max, std::move(special));
    }

    TypeRef
    genStructType(const std::string &name, int depth)
    {
        std::vector<TypeRef> fields;
        const size_t n = 2 + rng_.below(4);  // 2..5 fields
        for (size_t i = 0; i < n; ++i) {
            const std::string fname =
                name + "_f" + std::to_string(i);
            const double roll = rng_.uniform();
            if (roll < 0.3) {
                fields.push_back(genFlagsType(fname));
            } else if (roll < 0.6) {
                fields.push_back(genIntType(fname));
            } else if (roll < 0.75 && depth < 2) {
                fields.push_back(genStructType(fname, depth + 1));
            } else if (roll < 0.9) {
                // Buffer plus its length field.
                fields.push_back(
                    prog::bufferType(fname + "_buf", 0, 32));
                fields.push_back(prog::lenType(
                    fname + "_len",
                    static_cast<uint32_t>(fields.size() - 1)));
            } else {
                fields.push_back(prog::constType(
                    fname + "_magic", 0x10 + rng_.below(0xf0)));
            }
        }
        return prog::structType(name, std::move(fields));
    }

    TypeRef
    genTopLevelArg(const std::string &name)
    {
        const double roll = rng_.uniform();
        if (roll < 0.28)
            return genFlagsType(name);
        if (roll < 0.48)
            return genIntType(name);
        if (roll < 0.75)
            return prog::ptrType(name + "_ptr",
                                 genStructType(name, 0));
        if (roll < 0.87)
            return prog::ptrType(name + "_ptr",
                                 prog::bufferType(name + "_buf", 0, 48));
        if (roll < 0.95)
            return prog::bufferType(name, 0, 24);
        return prog::constType(name + "_cmd", 0x100 + rng_.below(0x100));
    }

    /** @} */

    void
    buildSyscall(int index)
    {
        prog::SyscallDecl decl;
        const std::string base = "sys" + std::to_string(index);

        // Role: producer (open-like), consumer, closer, or plain.
        const double roll = rng_.uniform();
        const size_t kind_index = rng_.below(kind_ids_.size());
        bool is_producer = false, is_consumer = false, is_closer = false;
        if (roll < 0.3) {
            is_producer = true;
            decl.name = base + "$open_" + kind_names_[kind_index];
            decl.ret_resource = kind_names_[kind_index];
        } else if (roll < 0.75) {
            is_consumer = true;
            decl.name = base + "$use_" + kind_names_[kind_index];
        } else if (roll < 0.85 && !closer_built_[kind_index]) {
            is_closer = true;
            closer_built_[kind_index] = true;
            decl.name = base + "$close_" + kind_names_[kind_index];
        } else {
            decl.name = base + "$plain";
        }

        if (is_consumer || is_closer) {
            decl.args.push_back(prog::resourceType(
                "handle", kind_names_[kind_index]));
        }
        const int extra = static_cast<int>(
            rng_.range(params_.min_extra_args, params_.max_extra_args));
        for (int a = 0; a < extra; ++a) {
            decl.args.push_back(
                genTopLevelArg(base + "_a" + std::to_string(a)));
        }

        // Respect the slot-token vocabulary bound.
        while (prog::slotCount(decl) > token::kMaxSlots &&
               decl.args.size() > 1) {
            decl.args.pop_back();
        }

        HandlerInfo info;
        info.name = decl.name;
        auto slots_decl = decl;  // enumerate before move
        info.slots = prog::enumerateSlots(slots_decl);
        info.id = builder_.beginHandler(std::move(decl));

        if (is_producer) {
            SyscallEffect effect;
            effect.kind = SyscallEffect::Kind::AllocResource;
            effect.resource_kind = kind_ids_[kind_index];
            builder_.addEffect(effect);
        }
        if (is_closer) {
            SyscallEffect effect;
            effect.kind = SyscallEffect::Kind::FreeResource;
            effect.slot = 0;  // the handle argument flattens first
            builder_.addEffect(effect);
        }
        if (rng_.chance(0.25)) {
            SyscallEffect effect;
            effect.kind = rng_.chance(0.7)
                              ? SyscallEffect::Kind::SetFlag
                              : SyscallEffect::Kind::ClearFlag;
            effect.flag = static_cast<uint16_t>(
                rng_.below(params_.num_state_flags));
            builder_.addEffect(effect);
        }

        buildHandlerCfg(info);
        handlers_.push_back(std::move(info));
    }

    Cond
    randomCond(const HandlerInfo &info, int depth)
    {
        // Deeper guards are strict equality checks on declared values:
        // reaching depth d requires d argument slots simultaneously
        // exact, which is what makes deep blocks rare for random
        // mutation and cheap for a localizer that knows which slot a
        // branch reads.
        const bool strict = depth >= 3;
        // Occasionally branch on global kernel state.
        if (rng_.chance(0.08)) {
            Cond cond;
            cond.kind = CondKind::StateFlagSet;
            cond.flag = static_cast<uint16_t>(
                rng_.below(params_.num_state_flags));
            return cond;
        }
        // Pick a non-const slot to test.
        for (int attempt = 0; attempt < 32; ++attempt) {
            const SlotDesc &slot =
                info.slots[rng_.below(info.slots.size())];
            if (slot.type->kind == TypeKind::Const)
                continue;
            Cond cond;
            cond.slot = static_cast<uint16_t>(slot.index);
            switch (slot.role) {
              case SlotRole::Value:
                if (slot.type->kind == TypeKind::Flags) {
                    cond.kind = !strict && rng_.chance(0.6)
                                    ? CondKind::ArgMaskAll
                                    : CondKind::ArgEq;
                    cond.a = slot.type->domain[rng_.below(
                        slot.type->domain.size())];
                    if (cond.kind == CondKind::ArgEq &&
                        rng_.chance(0.3)) {
                        cond.a |= slot.type->domain[rng_.below(
                            slot.type->domain.size())];
                    }
                } else if (slot.type->kind == TypeKind::Int) {
                    if (!slot.type->domain.empty() &&
                        (strict || rng_.chance(0.6))) {
                        cond.kind = CondKind::ArgEq;
                        cond.a = slot.type->domain[rng_.below(
                            slot.type->domain.size())];
                    } else if (rng_.chance(0.5)) {
                        cond.kind = CondKind::ArgLt;
                        cond.a = static_cast<uint64_t>(
                            rng_.range(1, slot.type->max));
                    } else {
                        cond.kind = CondKind::ArgInRange;
                        const auto lo = static_cast<uint64_t>(
                            rng_.range(0, slot.type->max / 2));
                        cond.a = lo;
                        cond.b = lo + static_cast<uint64_t>(rng_.range(
                                          0, slot.type->max / 4));
                    }
                } else if (slot.type->kind == TypeKind::Resource) {
                    cond.kind = CondKind::ResourceAlive;
                    cond.flag = static_cast<uint16_t>(
                        kind_ids_[rng_.below(kind_ids_.size())]);
                    // Usually check the declared kind.
                    if (rng_.chance(0.8)) {
                        for (size_t k = 0; k < kind_names_.size(); ++k) {
                            if (kind_names_[k] ==
                                slot.type->resource_kind) {
                                cond.flag = static_cast<uint16_t>(
                                    kind_ids_[k]);
                            }
                        }
                    }
                } else {
                    continue;  // Len handled by BufLen role below
                }
                break;
              case SlotRole::PtrNull:
                cond.kind = CondKind::ArgEq;
                cond.a = rng_.chance(0.8) ? 1 : 0;
                break;
              case SlotRole::BufLen: {
                const uint64_t limit =
                    1 + rng_.below(slot.type->buf_max + 1);
                cond.kind =
                    rng_.chance(0.5) ? CondKind::ArgGe : CondKind::ArgLt;
                cond.a = limit;
                if (strict || rng_.chance(0.2)) {
                    cond.kind = CondKind::ArgEq;
                    cond.a = rng_.below(slot.type->buf_max + 1);
                }
                break;
              }
              case SlotRole::BufClass:
                cond.kind = CondKind::ArgEq;
                cond.a = rng_.below(prog::kBufferClassCount);
                break;
            }
            return cond;
        }
        // Degenerate decl (all consts): fall back to a state branch.
        Cond cond;
        cond.kind = CondKind::StateFlagSet;
        cond.flag = 0;
        return cond;
    }

    /**
     * Create a chain of body blocks at `depth` for handler `info`,
     * recursively sprouting guarded regions. Blocks are chained by
     * fallthrough; the last block's terminator is left as Return, and
     * the caller may rewire it.
     */
    std::vector<uint32_t>
    buildChain(const HandlerInfo &info, int depth, int length)
    {
        std::vector<uint32_t> chain;
        chain.reserve(static_cast<size_t>(length));
        for (int i = 0; i < length; ++i) {
            chain.push_back(builder_.addBlockTo(
                info.id, static_cast<uint16_t>(depth)));
        }
        for (size_t i = 0; i + 1 < chain.size(); ++i)
            builder_.setFallthrough(chain[i], chain[i + 1]);

        // Sprout guarded regions off every block except the last.
        const double p =
            params_.branch_prob * std::pow(0.75, static_cast<double>(depth));
        for (size_t i = 0; i + 1 < chain.size(); ++i) {
            if (depth >= params_.max_depth || !rng_.chance(p))
                continue;
            const int sub_len = 1 + static_cast<int>(rng_.below(3));
            auto sub = buildChain(info, depth + 1, sub_len);
            builder_.setBranch(chain[i], randomCond(info, depth + 1),
                               sub.front(),
                               chain[i + 1]);
            // Rejoin the trunk, or end the handler early.
            if (rng_.chance(0.7))
                builder_.setFallthrough(sub.back(), chain[i + 1]);
            else
                builder_.setReturn(sub.back());
        }
        return chain;
    }

    void
    buildHandlerCfg(const HandlerInfo &info)
    {
        const int trunk_len = static_cast<int>(
            rng_.range(params_.trunk_min, params_.trunk_max));
        auto trunk = buildChain(info, 0, trunk_len);
        builder_.setReturn(trunk.back());
    }

    /** One version-evolution round: grow handlers, add one syscall. */
    void
    evolve(int round)
    {
        // Independent stream so each round is stable under param tweaks.
        Rng evo(params_.seed ^ (0xe701ULL * static_cast<uint64_t>(round)));
        for (const auto &info : handlers_) {
            if (!evo.chance(0.5))
                continue;
            // Find a fallthrough block of this handler to split.
            std::vector<uint32_t> candidates;
            for (uint32_t b = 0; b < builder_.numBlocks(); ++b) {
                const BasicBlock &bb = builder_.blockAt(b);
                if (bb.handler == info.id &&
                    bb.term == Term::Fallthrough &&
                    bb.depth + 1 <= params_.max_depth) {
                    candidates.push_back(b);
                }
            }
            if (candidates.empty())
                continue;
            const uint32_t victim =
                candidates[evo.below(candidates.size())];
            const uint32_t old_next = builder_.blockAt(victim).taken;
            const auto depth = builder_.blockAt(victim).depth;

            // Reuse the main rng for region construction via a swap so
            // the helper methods keep their signatures.
            std::swap(rng_, evo);
            const int sub_len = 1 + static_cast<int>(rng_.below(3));
            auto sub = buildChain(info, depth + 1, sub_len);
            builder_.setBranch(victim, randomCond(info, depth + 1),
                               sub.front(),
                               old_next);
            if (rng_.chance(0.7))
                builder_.setFallthrough(sub.back(), old_next);
            else
                builder_.setReturn(sub.back());
            std::swap(rng_, evo);
        }
        // One brand-new syscall per round.
        std::swap(rng_, evo);
        buildSyscall(params_.num_syscalls + round - 1 + 1000);
        std::swap(rng_, evo);
    }

    void
    plantBugs()
    {
        std::vector<uint32_t> deep_candidates, shallow_candidates;
        for (uint32_t b = 0; b < builder_.numBlocks(); ++b) {
            const BasicBlock &bb = builder_.blockAt(b);
            if (bb.handler == timer_handler_ || builder_.hasBugAt(b))
                continue;
            if (bb.depth == 3 || bb.depth == 4)
                deep_candidates.push_back(b);
            else if (bb.depth > 4 && bb.term == Term::Return)
                deep_candidates.push_back(b);
            else if (bb.depth == 1 && bb.term == Term::Return)
                shallow_candidates.push_back(b);
        }

        static const BugKind kKindWheel[] = {
            BugKind::GeneralProtectionFault,
            BugKind::PagingFault,
            BugKind::GeneralProtectionFault,
            BugKind::NullDeref,
            BugKind::PagingFault,
            BugKind::GeneralProtectionFault,
            BugKind::Warning,
            BugKind::OutOfBounds,
            BugKind::AssertViolation,
            BugKind::GeneralProtectionFault,
            BugKind::Other,
        };

        auto plant = [&](std::vector<uint32_t> &pool, int count,
                         bool known) {
            for (int i = 0; i < count && !pool.empty(); ++i) {
                const size_t pick = rng_.below(pool.size());
                const uint32_t block = pool[pick];
                pool.erase(pool.begin() +
                           static_cast<ptrdiff_t>(pick));
                const BasicBlock &bb = builder_.blockAt(block);
                BugSite bug;
                bug.block = block;
                bug.kind = kKindWheel[(block * 7 + i) %
                                      (sizeof(kKindWheel) /
                                       sizeof(kKindWheel[0]))];
                const std::string handler_name =
                    builder_.declOf(bb.handler).name;
                bug.description =
                    std::string(bugKindName(bug.kind)) + " in " +
                    handler_name + "/block" + std::to_string(block);
                bug.location =
                    "subsys/gen/" + handler_name + ".c:" +
                    std::to_string(100 + block % 900);
                bug.flaky = !known && rng_.chance(params_.flaky_frac);
                bug.known = known;
                builder_.addBug(std::move(bug));
            }
        };

        // New (unknown) bugs go to the *deepest* guarded regions first:
        // these are the crashes continuous random fuzzing has not found
        // in years (paper §5.3.2). Shuffle within equal depth so bug
        // placement is not biased toward low block ids.
        for (size_t i = deep_candidates.size(); i > 1; --i) {
            std::swap(deep_candidates[i - 1],
                      deep_candidates[rng_.below(i)]);
        }
        std::stable_sort(deep_candidates.begin(), deep_candidates.end(),
                         [this](uint32_t a, uint32_t b) {
                             return builder_.blockAt(a).depth <
                                    builder_.blockAt(b).depth;
                         });
        // plant() picks randomly from its pool; restrict the pool to
        // the deepest params_.deep_bugs * 2 candidates.
        if (deep_candidates.size() >
            static_cast<size_t>(params_.deep_bugs) * 2) {
            deep_candidates.resize(
                static_cast<size_t>(params_.deep_bugs) * 2);
        }
        plant(deep_candidates, params_.deep_bugs, /*known=*/false);
        plant(shallow_candidates, params_.shallow_bugs, /*known=*/true);
    }

    KernelGenParams params_;
    Rng rng_;
    KernelBuilder &builder_;
    std::vector<std::string> kind_names_;
    std::vector<ResourceKindId> kind_ids_;
    std::vector<HandlerInfo> handlers_;
    uint32_t timer_handler_ = ~0u;
    bool closer_built_[64] = {};
};

}  // namespace

void
appendSyntheticBulk(KernelBuilder &builder, const KernelGenParams &params)
{
    SP_ASSERT(params.num_syscalls > 0 && params.num_resource_kinds > 0);
    SP_ASSERT(params.num_resource_kinds <= 64);
    Generator(builder, params).run();
}

Kernel
generateKernel(const KernelGenParams &params)
{
    KernelBuilder builder(params.version);
    appendSyntheticBulk(builder, params);
    return builder.finish();
}

}  // namespace sp::kern
