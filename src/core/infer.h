/**
 * @file
 * Asynchronous PMM inference service (paper §3.4/§4).
 *
 * The analog of the torchserve deployment plus Snowplow's Go inference
 * worker pool: a fixed pool of worker threads consumes queued mutation
 * queries and runs PMM forward passes, while the caller (the fuzz loop)
 * continues with other mutation types and collects predictions through
 * futures. Latency and throughput statistics back the §5.5 evaluation.
 */
#ifndef SP_CORE_INFER_H
#define SP_CORE_INFER_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pmm.h"
#include "util/stats.h"

namespace sp::core {

/** Aggregate service statistics. */
struct InferenceStats
{
    uint64_t completed = 0;
    double mean_latency_us = 0.0;
    double p50_latency_us = 0.0;
    double p95_latency_us = 0.0;
    double p99_latency_us = 0.0;
};

/** Multi-threaded inference front-end over one PMM. */
class InferenceService
{
  public:
    /**
     * @param model    trained model (must outlive the service; forward
     *                 passes only read the parameters, so the pool can
     *                 share it)
     * @param workers  worker-thread count (the paper's GPU replicas)
     */
    InferenceService(const Pmm &model, size_t workers = 2);

    /** Drains the queue and joins the workers. */
    ~InferenceService();

    InferenceService(const InferenceService &) = delete;
    InferenceService &operator=(const InferenceService &) = delete;

    /**
     * Enqueue a query; the future resolves to per-argument-node MUTATE
     * probabilities.
     */
    std::future<std::vector<float>> submit(graph::EncodedGraph graph);

    /** Synchronous convenience wrapper. */
    std::vector<float> infer(const graph::EncodedGraph &graph) const;

    /** Latency/throughput counters so far. */
    InferenceStats stats() const;

    size_t workerCount() const { return workers_.size(); }

  private:
    struct Request
    {
        graph::EncodedGraph graph;
        std::promise<std::vector<float>> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    void workerLoop();

    const Pmm &model_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Request> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;

    // Guarded by mutex_.
    uint64_t completed_ = 0;
    Distribution latency_us_;
};

}  // namespace sp::core

#endif  // SP_CORE_INFER_H
