file(REMOVE_RECURSE
  "CMakeFiles/table4_reports.dir/table4_reports.cc.o"
  "CMakeFiles/table4_reports.dir/table4_reports.cc.o.d"
  "table4_reports"
  "table4_reports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
