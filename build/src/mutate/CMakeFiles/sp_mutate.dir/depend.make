# Empty dependencies file for sp_mutate.
# This may be replaced when dependencies are built.
