/**
 * @file
 * Branch predicates of the simulated kernel.
 *
 * A Cond reads the flattened argument slots of the executing system call
 * (see prog/flatten.h) and/or the kernel state, and decides which way a
 * conditional block branches. Predicates over specific slots are what
 * make kernel coverage *argument-dependent* — the property the learned
 * mutator exploits.
 */
#ifndef SP_KERNEL_COND_H
#define SP_KERNEL_COND_H

#include <cstdint>
#include <string>
#include <vector>

namespace sp::kern {

class KernelState;

/** Predicate kinds. */
enum class CondKind : uint8_t {
    Always,         ///< constant true (used for unconditional edges)
    ArgEq,          ///< slots[slot] == a
    ArgNeq,         ///< slots[slot] != a
    ArgLt,          ///< slots[slot] <  a (unsigned)
    ArgGe,          ///< slots[slot] >= a (unsigned)
    ArgMaskAll,     ///< (slots[slot] & a) == a
    ArgMaskNone,    ///< (slots[slot] & a) == 0
    ArgInRange,     ///< a <= slots[slot] <= b (unsigned)
    StateFlagSet,   ///< kernel flag `flag` is set
    ResourceAlive,  ///< slots[slot] names a live resource of kind `flag`
};

/** One branch predicate. */
struct Cond
{
    CondKind kind = CondKind::Always;
    uint16_t slot = 0;   ///< argument slot index (when applicable)
    uint64_t a = 0;      ///< constant / mask / range low
    uint64_t b = 0;      ///< range high
    uint16_t flag = 0;   ///< state flag index or resource kind id

    /** Human-readable rendering for logs and crash reports. */
    std::string describe() const;
};

/** Evaluate `cond` against a call's slots and the kernel state. */
bool evalCond(const Cond &cond, const std::vector<uint64_t> &slots,
              const KernelState &state);

}  // namespace sp::kern

#endif  // SP_KERNEL_COND_H
