#include "obs/statusd.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/netio.h"
#include "obs/trace.h"

namespace sp::obs {

namespace {

/** Prometheus metric name: [a-zA-Z0-9_:] only, `sp_` prefixed. */
std::string
promName(const std::string &name)
{
    std::string out = "sp_";
    out.reserve(name.size() + 3);
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

std::string
promNumber(double v)
{
    if (v != v)
        return "NaN";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string
httpResponse(const char *status, const char *content_type,
             const std::string &body)
{
    std::string out;
    out.reserve(body.size() + 128);
    out += "HTTP/1.0 ";
    out += status;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

}  // namespace

std::string
renderPrometheus()
{
    std::string out;
    out.reserve(4096);
    Registry::global().visit(
        [&out](const std::string &name, const Counter &counter) {
            const std::string prom = promName(name);
            out += "# TYPE " + prom + " counter\n";
            out += prom + " " + std::to_string(counter.value()) + "\n";
        },
        [&out](const std::string &name, const Gauge &gauge) {
            const std::string prom = promName(name);
            out += "# TYPE " + prom + " gauge\n";
            out += prom + " " + promNumber(gauge.value()) + "\n";
        },
        [&out](const std::string &name, const Histogram &histogram) {
            const std::string prom = promName(name);
            const HistogramSnapshot snap = histogram.snapshot();
            out += "# TYPE " + prom + " summary\n";
            for (const auto &[label, pct] :
                 {std::pair<const char *, double>{"0.5", 50.0},
                  {"0.9", 90.0},
                  {"0.95", 95.0},
                  {"0.99", 99.0}}) {
                out += prom + "{quantile=\"" + label + "\"} " +
                       promNumber(snap.samples.count() == 0
                                      ? 0.0
                                      : snap.samples.percentile(pct)) +
                       "\n";
            }
            out += prom + "_sum " +
                   promNumber(snap.stat.count() == 0
                                  ? 0.0
                                  : snap.stat.mean() *
                                        static_cast<double>(
                                            snap.stat.count())) +
                   "\n";
            out += prom + "_count " +
                   std::to_string(snap.stat.count()) + "\n";
        });
    return out;
}

StatusServer::StatusServer(uint16_t port) : listener_(port)
{
    claimIntrospection();
    thread_ = std::thread([this] { serveLoop(); });
}

StatusServer::~StatusServer()
{
    // Unblock accept() with shutdown() only — the serving thread owns
    // the fd and closes it once it observes stopping_. Closing here
    // would race the loop's next accept(): the fd number could be
    // reused by a concurrent open and accept() would target an
    // unrelated descriptor. stopping_ is set *after* the shutdown so
    // the loop's close is ordered strictly behind it (release/acquire
    // on stopping_).
    listener_.unblock();
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    releaseIntrospection();
}

void
StatusServer::serveLoop()
{
    for (;;) {
        const int fd = listener_.acceptConnection();
        if (fd < 0) {
            if (stopping_.load(std::memory_order_acquire)) {
                listener_.close();
                return;
            }
            // Transient accept failure while live; after shutdown()
            // this spins on EINVAL for at most the instant until the
            // destructor's stopping_ store becomes visible.
            continue;
        }
        char request[2048];
        const ssize_t n = ::recv(fd, request, sizeof(request) - 1, 0);
        if (n <= 0) {
            ::close(fd);
            continue;
        }
        request[n] = '\0';

        // "GET /path HTTP/1.x" — everything else is a 404/400.
        std::string path;
        if (std::strncmp(request, "GET ", 4) == 0) {
            const char *start = request + 4;
            const char *end = std::strchr(start, ' ');
            if (end != nullptr)
                path.assign(start, static_cast<size_t>(end - start));
        }

        std::string response;
        if (path == "/metrics") {
            response = httpResponse(
                "200 OK", "text/plain; version=0.0.4",
                renderPrometheus());
        } else if (path == "/status") {
            response = httpResponse("200 OK", "application/json",
                                    statusJson() + "\n");
        } else if (path == "/coverage") {
            response = httpResponse("200 OK", "application/json",
                                    coverageJson() + "\n");
        } else if (path == "/timeline") {
            response = httpResponse("200 OK", "application/json",
                                    timelineJson() + "\n");
        } else if (path == "/healthz") {
            response = httpResponse("200 OK", "text/plain", "ok\n");
        } else if (path.empty()) {
            response = httpResponse("400 Bad Request", "text/plain",
                                    "bad request\n");
        } else {
            response = httpResponse(
                "404 Not Found", "text/plain",
                "not found; try /metrics /status /coverage /timeline "
                "/healthz\n");
        }
        // Counted before the reply: a client that saw its response
        // complete must observe the incremented count.
        requests_.fetch_add(1, std::memory_order_release);
        sendAll(fd, response.data(), response.size());
        ::close(fd);
    }
}

}  // namespace sp::obs
