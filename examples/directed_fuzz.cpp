// Directed fuzzing demo (paper §5.4): pick hard-to-reach target blocks
// (the deep bug sites), run the SyzDirect-style baseline and Snowplow-D
// (the same loop with PMM argument localization) toward each, and
// compare time-to-target.
//
//   $ ./directed_fuzz [pmm_checkpoint] [num_targets] [budget]
//
// Run ./train_pmm first to produce the checkpoint; without one the
// model is random-initialized and Snowplow-D degrades gracefully.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/directed.h"
#include "kernel/subsystems.h"
#include "nn/serialize.h"

int
main(int argc, char **argv)
{
    using namespace sp;

    const std::string ckpt = argc > 1 ? argv[1] : "/tmp/pmm.ckpt";
    const size_t num_targets =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
    const uint64_t budget =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 30000;

    kern::KernelGenParams params;
    params.seed = 2024;
    params.version = "6.8";
    kern::Kernel kernel = kern::buildBaseKernel(params);

    core::Pmm model;
    if (nn::loadParameters(model, ckpt))
        std::printf("loaded PMM checkpoint from %s\n", ckpt.c_str());
    else
        std::printf("no checkpoint at %s; using an untrained model\n",
                    ckpt.c_str());

    // Targets: deep planted bug sites (the paper targets bug-related
    // code locations from the SyzDirect dataset).
    std::vector<uint32_t> targets;
    for (const auto &bug : kernel.bugs()) {
        if (!bug.known && targets.size() < num_targets)
            targets.push_back(bug.block);
    }

    std::printf("\n%-10s %-28s %12s %12s %8s\n", "target", "location",
                "SyzDirect", "Snowplow-D", "speedup");
    for (uint32_t target : targets) {
        core::DirectedOptions opts;
        opts.target_block = target;
        opts.exec_budget = budget;
        opts.seed = 11;

        auto baseline = core::runSyzDirect(kernel, opts);
        auto learned = core::runSnowplowD(kernel, model, opts);

        auto fmt = [](const core::DirectedResult &result) {
            return result.reached ? std::to_string(result.execs_to_reach)
                                  : std::string("NA");
        };
        std::string speedup = "NA";
        if (baseline.reached && learned.reached &&
            learned.execs_to_reach > 0) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.1fx",
                          static_cast<double>(baseline.execs_to_reach) /
                              static_cast<double>(
                                  learned.execs_to_reach));
            speedup = buf;
        } else if (!baseline.reached && learned.reached) {
            speedup = "INF";
        }
        std::printf("%-10u %-28s %12s %12s %8s\n", target,
                    kernel.bugAt(target)->location.c_str(),
                    fmt(baseline).c_str(), fmt(learned).c_str(),
                    speedup.c_str());
    }
    return 0;
}
