/**
 * @file
 * The sharded example store: datasets (core/dataset.h) persisted as
 * one or more shard files (shard.h).
 *
 * Identity is content-addressed: a base test is identified by the
 * FNV-1a hash of its program text (progKey), an example by
 * core::exampleKey under its base's hash — so deduplication across
 * shards, merges and harvest sessions never depends on in-memory
 * indices or discovery order.
 *
 * writeStore slices a dataset into contiguous base ranges, one shard
 * per range, each example stored in its base's shard; loadStore reads
 * shards back in path order, re-executes every base deterministically
 * and verifies the observed coverage matches the stored record — a
 * shard collected on a different kernel fails loudly (the header
 * fingerprint catches structural drift, the coverage check catches
 * everything else). A single-shard store round-trips a dataset with
 * base order, split membership and example order preserved exactly.
 *
 * mergeStore compacts any number of shards into one: bases deduped by
 * hash, examples deduped by content key, the §3.1 popularity cap
 * re-applied under a seeded shuffle, and splits re-rolled purely from
 * (base hash, seed) — so every example of one base lands in one split
 * no matter how many shards or merge rounds it traveled through
 * (the split-by-base invariant), and merging the same inputs twice
 * yields byte-identical output.
 */
#ifndef SP_DATA_STORE_H
#define SP_DATA_STORE_H

#include <string>
#include <vector>

#include "core/dataset.h"
#include "data/shard.h"
#include "kernel/kernel.h"

namespace sp::data {

/**
 * Structural fingerprint of a kernel (version, block count, syscall
 * surface). Stored in every shard header; loaders refuse shards whose
 * fingerprint differs from the kernel they are loading against.
 */
uint64_t kernelFingerprint(const kern::Kernel &kernel);

/** Content identity of a base test: FNV-1a of its formatProg text. */
uint64_t progKey(const prog::Prog &prog);

/**
 * Deterministic split of a base: a hash roll of (base_hash, seed)
 * against train_fraction (remainder halved into valid/eval), matching
 * collectDataset's split proportions. Depends on nothing but the base
 * content — the invariant mergeStore relies on.
 */
uint8_t splitOfBase(uint64_t base_hash, uint64_t seed,
                    double train_fraction);

/**
 * Write `dataset` as `shard_count` shards named
 * `<dir>/shard-NNN.spds` (dir is created if missing). Returns the
 * shard paths in base order.
 */
std::vector<std::string> writeStore(const core::Dataset &dataset,
                                    const std::string &dir,
                                    size_t shard_count = 1);

/**
 * Load shards into one dataset bound to `kernel`. Bases are deduped
 * by hash across shards; examples combine as a multiset union by
 * content key (listing a shard twice never inflates the splits, but
 * legitimate duplicate examples within one shard round-trip). Bases
 * are re-executed deterministically and verified against their stored
 * coverage. A torn tail (crash-truncated shard)
 * reads cleanly up to the last valid record; `truncated_out`, when
 * non-null, reports whether any shard was cut short. Collection-time
 * statistics (Dataset::stats) are not persisted and stay default.
 */
core::Dataset loadStore(const kern::Kernel &kernel,
                        const std::vector<std::string> &paths,
                        bool *truncated_out = nullptr);

/** Merge/compaction knobs (see file comment). */
struct MergeOptions
{
    uint64_t seed = 1;
    size_t popularity_cap = 400;
    double train_fraction = 0.8;
};

/**
 * Merge `inputs` into the single shard `out_path`. Needs no kernel:
 * base records are carried verbatim (all inputs must agree on the
 * kernel fingerprint). Bases with no surviving example are dropped.
 * Returns the merged shard's index.
 */
ShardIndex mergeStore(const std::vector<std::string> &inputs,
                      const std::string &out_path,
                      const MergeOptions &opts = {});

/** Aggregate statistics over a set of shards. */
struct StoreStats
{
    size_t shards = 0;
    size_t indexed_shards = 0;    ///< served from sidecar indices
    size_t truncated_shards = 0;  ///< detected by scan only
    ShardIndex totals;
};

/**
 * Count a store's contents: sidecar indices where present, full scans
 * otherwise (a crash-truncated shard has no index; the scan reports
 * what is recoverable).
 */
StoreStats statStore(const std::vector<std::string> &paths);

}  // namespace sp::data

#endif  // SP_DATA_STORE_H
