// Reproduces the §5.5 performance characteristics with
// google-benchmark micro-benchmarks:
//
//  - PMM inference latency per mutation query (paper: 0.69 s mean on
//    an L4 GPU box for graphs ~10x larger);
//  - inference service saturation throughput, sweeping worker counts
//    (paper: ~57 QPS at saturation on 8 GPUs);
//  - end-to-end fuzzing throughput of Snowplow vs Syzkaller (paper:
//    383 vs 390 tests/second — near parity, because inference is
//    asynchronous and off the critical path).

#include <benchmark/benchmark.h>

#include <future>

#include "bench/common.h"
#include "core/infer.h"
#include "exec/executor.h"
#include "prog/gen.h"

namespace {

using namespace sp;

struct PerfFixtures
{
    kern::Kernel kernel = spbench::makeEvalKernel("6.8");
    std::vector<graph::EncodedGraph> queries;

    PerfFixtures()
    {
        Rng rng(5);
        exec::Executor executor(kernel);
        for (int i = 0; i < 32; ++i) {
            auto program = prog::generateProg(rng, kernel.table());
            auto result = executor.run(program);
            auto frontier = graph::alternativeFrontier(kernel,
                                                       result.coverage);
            auto query = graph::buildQueryGraph(kernel, program, result,
                                                frontier);
            if (!query.argument_nodes.empty())
                queries.push_back(graph::encodeGraph(kernel, query));
        }
    }
};

PerfFixtures &
fixtures()
{
    static PerfFixtures fx;
    return fx;
}

void
BM_PmmInferenceLatency(benchmark::State &state)
{
    const auto &model = spbench::sharedPmm();
    const auto &queries = fixtures().queries;
    size_t i = 0;
    for (auto _ : state) {
        auto probs = model.predict(queries[i++ % queries.size()]);
        benchmark::DoNotOptimize(probs);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PmmInferenceLatency)->Unit(benchmark::kMillisecond);

void
BM_InferenceServiceThroughput(benchmark::State &state)
{
    const auto &model = spbench::sharedPmm();
    const auto &queries = fixtures().queries;
    core::InferenceService service(
        model, static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        std::vector<std::future<std::vector<float>>> futures;
        futures.reserve(16);
        for (int i = 0; i < 16; ++i) {
            futures.push_back(service.submit(
                queries[static_cast<size_t>(i) % queries.size()]));
        }
        for (auto &future : futures)
            benchmark::DoNotOptimize(future.get());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 16);
    const auto stats = service.stats();
    state.counters["mean_latency_ms"] = stats.mean_latency_us / 1000.0;
    state.counters["p99_latency_ms"] = stats.p99_latency_us / 1000.0;
}
BENCHMARK(BM_InferenceServiceThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_FuzzThroughputSyzkaller(benchmark::State &state)
{
    const auto &kernel = fixtures().kernel;
    for (auto _ : state) {
        auto opts = spbench::evalFuzzOptions(4000, 9);
        auto fuzzer = core::makeSyzkallerFuzzer(kernel, opts);
        auto report = fuzzer->run();
        benchmark::DoNotOptimize(report.final_edges);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 4000);
}
BENCHMARK(BM_FuzzThroughputSyzkaller)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void
BM_FuzzThroughputSnowplow(benchmark::State &state)
{
    const auto &kernel = fixtures().kernel;
    const auto &model = spbench::sharedPmm();
    for (auto _ : state) {
        auto opts = spbench::evalFuzzOptions(4000, 9);
        auto fuzzer = core::makeSnowplowFuzzer(
            kernel, model, opts, spbench::evalSnowplowOptions());
        auto report = fuzzer->run();
        benchmark::DoNotOptimize(report.final_edges);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 4000);
}
BENCHMARK(BM_FuzzThroughputSnowplow)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void
BM_ExecutorRawThroughput(benchmark::State &state)
{
    const auto &kernel = fixtures().kernel;
    Rng rng(11);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 64);
    exec::Executor executor(kernel);
    size_t i = 0;
    for (auto _ : state) {
        auto result = executor.run(corpus[i++ % corpus.size()]);
        benchmark::DoNotOptimize(result.coverage.edgeCount());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ExecutorRawThroughput);

}  // namespace

BENCHMARK_MAIN();
