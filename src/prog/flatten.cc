#include "prog/flatten.h"

#include "util/hash.h"
#include "util/logging.h"

namespace sp::prog {

namespace {

void
enumerateType(const TypeRef &type, std::vector<uint16_t> &path,
              uint32_t &next, std::vector<SlotDesc> &out)
{
    auto emit = [&](SlotRole role, bool is_mutable) {
        SlotDesc desc;
        desc.index = next++;
        desc.type = type;
        desc.role = role;
        desc.path = path;
        desc.is_mutable = is_mutable;
        out.push_back(std::move(desc));
    };

    switch (type->kind) {
      case TypeKind::Int:
      case TypeKind::Flags:
        emit(SlotRole::Value, true);
        break;
      case TypeKind::Const:
      case TypeKind::Len:
        // Fixed or auto-computed: visible to the kernel, not mutable.
        emit(SlotRole::Value, false);
        break;
      case TypeKind::Resource:
        emit(SlotRole::Value, true);
        break;
      case TypeKind::Ptr:
        emit(SlotRole::PtrNull, type->opt);
        path.push_back(0);
        enumerateType(type->elem, path, next, out);
        path.pop_back();
        break;
      case TypeKind::Struct:
        for (size_t i = 0; i < type->fields.size(); ++i) {
            path.push_back(static_cast<uint16_t>(i));
            enumerateType(type->fields[i], path, next, out);
            path.pop_back();
        }
        break;
      case TypeKind::Buffer:
        emit(SlotRole::BufLen, true);
        emit(SlotRole::BufClass, true);
        break;
    }
}

void
flattenArg(const Arg &arg, const ResourceResolver &resolve,
           std::vector<uint64_t> &out)
{
    switch (arg.type->kind) {
      case TypeKind::Int:
      case TypeKind::Flags:
      case TypeKind::Const:
      case TypeKind::Len:
        out.push_back(arg.scalar);
        break;
      case TypeKind::Resource:
        out.push_back(resolve(arg.result_ref));
        break;
      case TypeKind::Ptr:
        out.push_back(arg.is_null ? 0 : 1);
        if (arg.is_null) {
            // Keep arity: emit zeroed slots for the whole pointee shape.
            const uint32_t n = slotCount(*arg.type->elem);
            out.insert(out.end(), n, 0);
        } else {
            flattenArg(*arg.pointee, resolve, out);
        }
        break;
      case TypeKind::Struct:
        for (const auto &f : arg.fields)
            flattenArg(*f, resolve, out);
        break;
      case TypeKind::Buffer:
        out.push_back(arg.bytes.size());
        out.push_back(fnv1aBytes(arg.bytes.data(), arg.bytes.size()) %
                      kBufferClassCount);
        break;
    }
}

}  // namespace

std::vector<SlotDesc>
enumerateSlots(const SyscallDecl &decl)
{
    std::vector<SlotDesc> out;
    std::vector<uint16_t> path;
    uint32_t next = 0;
    for (size_t i = 0; i < decl.args.size(); ++i) {
        path.push_back(static_cast<uint16_t>(i));
        enumerateType(decl.args[i], path, next, out);
        path.pop_back();
    }
    SP_ASSERT(next == slotCount(decl), "slot enumeration arity mismatch");
    return out;
}

std::vector<uint64_t>
flattenCall(const Call &call, const ResourceResolver &resolve)
{
    std::vector<uint64_t> out;
    flattenCallInto(call, resolve, out);
    return out;
}

void
flattenCallInto(const Call &call, const ResourceResolver &resolve,
                std::vector<uint64_t> &out)
{
    // One arity walk per call, serving both the reserve and the
    // arity check — slotCount recurses over the decl's type tree,
    // which is measurable on the exec hot path.
    const uint32_t arity = slotCount(*call.decl);
    out.clear();
    out.reserve(arity);
    for (const auto &arg : call.args)
        flattenArg(*arg, resolve, out);
    SP_ASSERT(out.size() == arity,
              "flattened arity mismatch for %s", call.decl->name.c_str());
}

uint64_t
staticResolver(int32_t result_ref)
{
    return result_ref < 0 ? kBadHandle
                          : static_cast<uint64_t>(result_ref);
}

std::vector<MutationPoint>
mutationPoints(const Call &call)
{
    std::vector<MutationPoint> points;
    const auto slots = enumerateSlots(*call.decl);
    for (const auto &slot : slots) {
        if (!slot.is_mutable)
            continue;
        // A buffer contributes two slots; collapse onto one point.
        if (!points.empty() && points.back().path == slot.path)
            continue;
        // Skip slots whose owning node is inside a currently-null
        // pointer: mutating them has no observable effect until the
        // pointer is made non-null (the PtrNull point itself remains).
        bool reachable = true;
        {
            const Arg *node = call.args[slot.path[0]].get();
            for (size_t i = 1; i < slot.path.size() && reachable; ++i) {
                if (node->type->kind == TypeKind::Ptr) {
                    if (node->is_null) {
                        reachable = false;
                        break;
                    }
                    node = node->pointee.get();
                } else {
                    node = node->fields[slot.path[i]].get();
                }
            }
        }
        if (!reachable)
            continue;
        MutationPoint point;
        point.path = slot.path;
        point.type = slot.type;
        point.first_slot = slot.index;
        points.push_back(std::move(point));
    }
    return points;
}

size_t
countMutableArgs(const Prog &prog)
{
    size_t total = 0;
    for (const auto &call : prog.calls)
        total += mutationPoints(call).size();
    return total;
}

}  // namespace sp::prog
