// Analysis bench: PMM vs the white-box *oracle* localizer.
//
// The oracle reads the simulated kernel's actual branch predicates and
// returns exactly the arguments guarding the coverage frontier — the
// role symbolic execution plays in hybrid fuzzers like HFL (paper §7),
// with none of its cost here because our kernel is transparent. It is
// the ceiling for any localizer. This bench compares the per-mutation
// new-coverage rate of random / PMM / oracle localization on a shared
// base corpus, quantifying how much of the oracle's headroom the
// learned model recovers (the paper's bet: most of it, at a fraction
// of symbolic execution's cost).

#include <cstdio>

#include "bench/common.h"
#include "core/oracle.h"
#include "prog/gen.h"
#include "util/stats.h"

namespace {

using namespace sp;

struct Rate
{
    size_t hits = 0;
    size_t total = 0;
    size_t new_edges = 0;
};

Rate
measure(const kern::Kernel &kernel, mut::Localizer &localizer,
        const std::vector<prog::Prog> &corpus)
{
    mut::Mutator mutator(kernel.table());
    exec::Executor executor(kernel);
    Rng rng(777);
    Rate rate;
    for (const auto &base : corpus) {
        auto base_result = executor.run(base);
        if (base_result.crashed)
            continue;
        auto sites =
            localizer.localizeWithResult(base, base_result, rng, 6);
        for (const auto &site : sites) {
            for (int m = 0; m < 3; ++m) {
                prog::Prog mutant;
                mutant.calls = base.calls;
                if (!mutator.instantiateArgMutation(mutant, site, rng))
                    break;
                auto result = executor.run(mutant);
                const size_t new_edges =
                    base_result.coverage.countNewEdges(result.coverage);
                rate.hits += (new_edges > 0);
                rate.new_edges += new_edges;
                ++rate.total;
            }
        }
    }
    return rate;
}

}  // namespace

int
main()
{
    std::printf("=== Analysis: localizer quality ladder (random -> "
                "PMM -> white-box oracle) ===\n\n");
    kern::Kernel kernel = spbench::makeEvalKernel("6.8");
    Rng rng(12345);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 120);

    mut::RandomLocalizer random_localizer;
    core::PmmLocalizer pmm_localizer(kernel, spbench::sharedPmm(),
                                     spbench::evalSnowplowOptions());
    core::OracleLocalizer oracle_localizer(kernel);

    struct Row
    {
        const char *name;
        mut::Localizer *localizer;
    };
    Row rows[] = {{"Random (Syzkaller)", &random_localizer},
                  {"PMM (Snowplow)", &pmm_localizer},
                  {"Oracle (symbolic-execution ceiling)",
                   &oracle_localizer}};

    std::vector<std::vector<std::string>> cells;
    double rates[3] = {};
    for (int i = 0; i < 3; ++i) {
        auto rate = measure(kernel, *rows[i].localizer, corpus);
        rates[i] = rate.total == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(rate.hits) /
                             static_cast<double>(rate.total);
        char pct[16], edges[24];
        std::snprintf(pct, sizeof(pct), "%.1f%%", rates[i]);
        std::snprintf(edges, sizeof(edges), "%zu", rate.new_edges);
        cells.push_back({rows[i].name, std::to_string(rate.total), pct,
                         edges});
    }
    std::printf("%s\n",
                formatTable({"Localizer", "Mutations",
                             "New-coverage rate", "New edges"},
                            cells)
                    .c_str());
    std::printf("headroom recovered by PMM: %.0f%% of the "
                "random->oracle gap\n",
                rates[2] - rates[0] < 1e-9
                    ? 0.0
                    : 100.0 * (rates[1] - rates[0]) /
                          (rates[2] - rates[0]));
    std::printf("shape check: random < PMM < oracle, PMM recovering "
                "most of the gap (the paper's HFL argument, SS7).\n");
    return 0;
}
