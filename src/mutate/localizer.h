/**
 * @file
 * Argument-mutation localization (the paper's intervention point).
 *
 * When the mutation-type selector picks ARGUMENT_MUTATION, a Localizer
 * decides *which* arguments of the base test to mutate. The baseline
 * (Syzkaller-style) localizer picks semi-randomly, weighted toward calls
 * with more arguments; Snowplow's PMM-backed localizer (src/core) makes
 * this decision with a learned model given the desired coverage.
 */
#ifndef SP_MUTATE_LOCALIZER_H
#define SP_MUTATE_LOCALIZER_H

#include <cstddef>
#include <vector>

#include "exec/executor.h"
#include "prog/flatten.h"
#include "prog/value.h"
#include "util/rng.h"

namespace sp::mut {

/** One localized mutation site: a mutable argument of one call. */
struct ArgLocation
{
    size_t call_index = 0;
    prog::MutationPoint point;
};

/** Every mutable argument of the program, in program order. */
std::vector<ArgLocation> allArgLocations(const prog::Prog &prog);

/**
 * Which mechanism actually produced a round's localization. The fuzz
 * loop's decision policy arbitrates model-vs-random *up front*
 * (fuzz/policy.h), but an asynchronous learned localizer can still be
 * forced onto the random fallback while a prediction is in flight —
 * that outcome is reported as ForcedRandom so reward accounting never
 * credits (or blames) the model for sites it did not choose.
 */
enum class LocalizerChannel : uint8_t {
    Random = 0,       ///< the random fallback, chosen by the policy
    Model = 1,        ///< the learned model answered
    ForcedRandom = 2  ///< model requested but unavailable (async miss)
};

/** Number of LocalizerChannel values (dense arm-axis size). */
constexpr size_t kLocalizerChannels = 3;

/** Sites plus the channel that produced them. */
struct Localization
{
    std::vector<ArgLocation> sites;
    LocalizerChannel channel = LocalizerChannel::Random;
};

/** Chooses argument-mutation sites for a base test. */
class Localizer
{
  public:
    virtual ~Localizer() = default;

    /**
     * Pick up to `max_sites` distinct argument sites of `prog` to
     * mutate. May return fewer (or none, when the program has no
     * mutable arguments).
     */
    virtual std::vector<ArgLocation> localize(const prog::Prog &prog,
                                              Rng &rng,
                                              size_t max_sites) = 0;

    /**
     * Localization with the base test's execution result available
     * (the fuzzing loop caches it with the corpus entry). White-box
     * localizers override this to read the coverage; the default
     * ignores it.
     */
    virtual std::vector<ArgLocation>
    localizeWithResult(const prog::Prog &prog,
                       const exec::ExecResult & /*result*/, Rng &rng,
                       size_t max_sites)
    {
        return localize(prog, rng, max_sites);
    }

    /** True for localizers backed by a learned model — the decision
     *  policy only arbitrates model-vs-random for these. */
    virtual bool learned() const { return false; }

    /**
     * Localization with the model-vs-random choice made by the caller
     * (the campaign's DecisionPolicy). `use_model` is advisory: a
     * localizer without a model ignores it, and an async learned
     * localizer may be unable to honor it — the returned channel
     * reports what actually happened. The default adapts plain
     * localizers: `use_model` is ignored and the channel is Random.
     */
    virtual Localization
    localizeChosen(const prog::Prog &prog,
                   const exec::ExecResult &result, Rng &rng,
                   size_t max_sites, bool /*use_model*/)
    {
        return {localizeWithResult(prog, result, rng, max_sites),
                LocalizerChannel::Random};
    }
};

/**
 * The Syzkaller-default localizer: samples arguments uniformly from the
 * call with the largest arity (with probability `arity_bias`) or from
 * the whole program otherwise — target-agnostic randomness.
 */
class RandomLocalizer : public Localizer
{
  public:
    explicit RandomLocalizer(double arity_bias = 0.5)
        : arity_bias_(arity_bias)
    {
    }

    std::vector<ArgLocation> localize(const prog::Prog &prog, Rng &rng,
                                      size_t max_sites) override;

  private:
    double arity_bias_;
};

}  // namespace sp::mut

#endif  // SP_MUTATE_LOCALIZER_H
