/**
 * @file
 * Checkpoint I/O, format v2.
 *
 * Layout: a versioned header (magic, format version, endianness guard)
 * so a reader can reject foreign, stale or byte-swapped files with a
 * clear error instead of silently misreading them, then the parameter
 * table (count, name/shape/data records), then optional tagged
 * sections:
 *
 *  - an optimizer section carrying Adam's step count and moment
 *    estimates, and
 *  - an opaque trainer section (core/train's epoch cursor, RNG state
 *    and best-validation bookkeeping),
 *
 * which together make `train --resume` bit-identical to an
 * uninterrupted run. loadParameters() skips the optional sections, so a
 * resume checkpoint doubles as a plain model checkpoint everywhere else
 * (fuzzing, inference, evaluation).
 */
#ifndef SP_NN_SERIALIZE_H
#define SP_NN_SERIALIZE_H

#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.h"
#include "nn/optimizer.h"

namespace sp::nn {

/** Write all parameters of `module` to `path`. Fatal on I/O error. */
void saveParameters(const Module &module, const std::string &path);

/**
 * Load parameters into `module` from `path`, matching by name and shape.
 * Returns false (leaving the module untouched) when the file does not
 * exist; fatal — with an error naming the problem — on a wrong magic,
 * an unsupported format version, an endianness mismatch, a truncated
 * file, or a name/shape mismatch. Optional sections are skipped.
 */
bool loadParameters(Module &module, const std::string &path);

/**
 * Write a full training checkpoint: parameters plus the optional
 * optimizer and trainer-state sections (either may be null). The file
 * is written to `path + ".tmp"` and renamed into place, so a reader
 * never sees a half-written checkpoint.
 */
void saveCheckpoint(const Module &module, const std::string &path,
                    const AdamState *optimizer,
                    const std::vector<uint8_t> *trainer_state);

/**
 * Load a full training checkpoint. Returns false when the file does not
 * exist. `optimizer_out`/`trainer_state_out` (either may be null) are
 * filled from the matching sections when present and cleared to empty
 * defaults when the file lacks them (a plain saveParameters file).
 */
bool loadCheckpoint(Module &module, const std::string &path,
                    AdamState *optimizer_out,
                    std::vector<uint8_t> *trainer_state_out);

}  // namespace sp::nn

#endif  // SP_NN_SERIALIZE_H
