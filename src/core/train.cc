#include "core/train.h"

#include <algorithm>
#include <cmath>

#include "nn/inference.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/timer.h"
#include "util/logging.h"

namespace sp::core {

namespace {

/** Accumulates per-example set-overlap metrics. */
class MetricAccumulator
{
  public:
    void
    add(const std::vector<bool> &predicted,
        const std::vector<bool> &truth)
    {
        SP_ASSERT(predicted.size() == truth.size());
        size_t tp = 0, fp = 0, fn = 0;
        for (size_t i = 0; i < predicted.size(); ++i) {
            tp += (predicted[i] && truth[i]);
            fp += (predicted[i] && !truth[i]);
            fn += (!predicted[i] && truth[i]);
        }
        const double precision =
            tp + fp == 0 ? 0.0
                         : static_cast<double>(tp) /
                               static_cast<double>(tp + fp);
        const double recall =
            tp + fn == 0 ? 1.0
                         : static_cast<double>(tp) /
                               static_cast<double>(tp + fn);
        const double f1 = precision + recall == 0.0
                              ? 0.0
                              : 2.0 * precision * recall /
                                    (precision + recall);
        const double jaccard =
            tp + fp + fn == 0 ? 1.0
                              : static_cast<double>(tp) /
                                    static_cast<double>(tp + fp + fn);
        precision_ += precision;
        recall_ += recall;
        f1_ += f1;
        jaccard_ += jaccard;
        ++count_;
    }

    SelectorMetrics
    finish() const
    {
        SelectorMetrics metrics;
        metrics.examples = count_;
        if (count_ == 0)
            return metrics;
        const auto n = static_cast<double>(count_);
        metrics.precision = precision_ / n;
        metrics.recall = recall_ / n;
        metrics.f1 = f1_ / n;
        metrics.jaccard = jaccard_ / n;
        return metrics;
    }

  private:
    double precision_ = 0.0;
    double recall_ = 0.0;
    double f1_ = 0.0;
    double jaccard_ = 0.0;
    size_t count_ = 0;
};

std::vector<bool>
truthMask(const std::vector<float> &labels)
{
    std::vector<bool> mask(labels.size());
    for (size_t i = 0; i < labels.size(); ++i)
        mask[i] = labels[i] > 0.5f;
    return mask;
}

}  // namespace

TrainHistory
trainPmm(Pmm &model, const Dataset &dataset, const TrainOptions &opts)
{
    TrainHistory history;
    if (dataset.train.empty()) {
        SP_WARN("trainPmm: empty training split");
        return history;
    }

    Rng rng(opts.seed);
    nn::Adam optimizer(model.parameters(), opts.learning_rate, 0.9f,
                       0.999f, 1e-8f, opts.weight_decay);

    const size_t per_epoch =
        opts.max_train_examples == 0
            ? dataset.train.size()
            : std::min(dataset.train.size(), opts.max_train_examples);

    // Materialize (graph, labels) once: the encodings are identical
    // across epochs, and rebuilding them dominates training time.
    std::vector<std::pair<graph::EncodedGraph, std::vector<float>>>
        cache;
    cache.reserve(per_epoch);
    std::vector<size_t> order;
    {
        std::vector<size_t> candidates(dataset.train.size());
        for (size_t i = 0; i < candidates.size(); ++i)
            candidates[i] = i;
        for (size_t i = candidates.size(); i > 1; --i)
            std::swap(candidates[i - 1], candidates[rng.below(i)]);
        for (size_t i = 0; i < per_epoch; ++i) {
            auto example = materializeExample(
                dataset, dataset.train[candidates[i]]);
            if (example.second.empty())
                continue;
            cache.push_back(std::move(example));
        }
    }
    order.resize(cache.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    double best_f1 = -1.0;
    int stale_epochs = 0;
    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
        SP_TIMED("train.epoch_us");
        // Shuffle example order.
        for (size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);

        double loss_total = 0.0;
        size_t trained = 0;
        for (size_t oi = 0; oi < order.size(); ++oi) {
            const auto &[graph, labels] = cache[order[oi]];
            std::vector<float> weights(labels.size());
            for (size_t i = 0; i < labels.size(); ++i)
                weights[i] = labels[i] > 0.5f ? opts.pos_weight : 1.0f;

            model.zeroGrad();
            nn::Tensor logits = model.forward(graph, &rng, true);
            nn::Tensor loss = nn::bceWithLogits(logits, labels, weights);
            loss.backward();
            optimizer.clipGradNorm(opts.grad_clip);
            optimizer.step();
            loss_total += loss.item();
            ++trained;
        }

        EpochRecord record;
        record.epoch = epoch;
        record.train_loss =
            trained == 0 ? 0.0 : loss_total / static_cast<double>(trained);
        record.valid = evaluatePmm(model, dataset, dataset.valid);
        history.epochs.push_back(record);
        if (auto *sink = obs::sink()) {
            sink->event("train_epoch",
                        {{"epoch", epoch},
                         {"train_loss", record.train_loss},
                         {"valid_f1", record.valid.f1},
                         {"valid_precision", record.valid.precision},
                         {"valid_recall", record.valid.recall},
                         {"valid_jaccard", record.valid.jaccard},
                         {"examples", trained}});
        }
        if (opts.verbose) {
            SP_INFORM("epoch %d: loss %.4f valid F1 %.3f", epoch,
                      record.train_loss, record.valid.f1);
        }

        if (record.valid.f1 > best_f1 + 1e-4) {
            best_f1 = record.valid.f1;
            history.best_valid = record.valid;
            stale_epochs = 0;
        } else if (++stale_epochs > opts.patience) {
            break;
        }
    }
    if (history.best_valid.examples == 0 && !history.epochs.empty())
        history.best_valid = history.epochs.back().valid;

    // Decision-threshold sweep on the validation split.
    double best_threshold_f1 = -1.0;
    for (float threshold : {0.3f, 0.35f, 0.4f, 0.45f, 0.5f, 0.55f,
                            0.6f}) {
        auto metrics =
            evaluatePmm(model, dataset, dataset.valid, threshold);
        if (metrics.f1 > best_threshold_f1) {
            best_threshold_f1 = metrics.f1;
            history.best_threshold = threshold;
        }
    }
    return history;
}

SelectorMetrics
evaluatePmm(const Pmm &model, const Dataset &dataset,
            const std::vector<RawExample> &split, float threshold)
{
    MetricAccumulator acc;
    // One encode buffer for the whole sweep; predict() runs in
    // inference mode, so the sweep is allocation-free at steady state.
    graph::EncodedGraph graph;
    std::vector<float> labels;
    for (const auto &example : split) {
        materializeExampleInto(dataset, example, graph, labels);
        if (labels.empty())
            continue;
        const auto probs = model.predict(graph);
        std::vector<bool> predicted(probs.size());
        bool any = false;
        for (size_t i = 0; i < probs.size(); ++i) {
            predicted[i] = probs[i] >= threshold;
            any |= predicted[i];
        }
        if (!any && !probs.empty()) {
            // Always select at least the top-scoring argument.
            size_t best = 0;
            for (size_t i = 1; i < probs.size(); ++i)
                if (probs[i] > probs[best])
                    best = i;
            predicted[best] = true;
        }
        acc.add(predicted, truthMask(labels));
    }
    obs::Registry::global()
        .gauge("infer.arena_hit_ratio")
        .set(nn::threadArenaStats().hitRatio());
    return acc.finish();
}

SelectorMetrics
evaluateRandomSelector(const Dataset &dataset,
                       const std::vector<RawExample> &split, size_t k,
                       uint64_t seed)
{
    Rng rng(seed);
    MetricAccumulator acc;
    for (const auto &example : split) {
        auto [graph, labels] = materializeExample(dataset, example);
        if (labels.empty())
            continue;
        std::vector<bool> predicted(labels.size(), false);
        const size_t take = std::min(k, labels.size());
        for (size_t i : rng.sampleIndices(labels.size(), take))
            predicted[i] = true;
        acc.add(predicted, truthMask(labels));
        (void)graph;
    }
    return acc.finish();
}

}  // namespace sp::core
