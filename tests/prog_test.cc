// Tests for the prog module: type factories, value trees, flattening,
// serialization round trips, random generation validity, and the
// structural validator.

#include <gtest/gtest.h>

#include <unordered_set>

#include "prog/flatten.h"
#include "prog/gen.h"
#include "prog/serialize.h"
#include "prog/types.h"
#include "prog/validate.h"
#include "prog/value.h"
#include "util/rng.h"

namespace sp::prog {
namespace {

// A small but representative syscall table used across these tests.
SyscallTable
makeTable()
{
    SyscallTable table;

    SyscallDecl open_decl;
    open_decl.name = "open$t";
    open_decl.id = 0;
    open_decl.args.push_back(
        ptrType("path", bufferType("path_buf", 1, 8)));
    open_decl.args.push_back(
        flagsType("flags", {0x1, 0x2, 0x40}, true));
    open_decl.ret_resource = "fd";
    table.decls.push_back(std::move(open_decl));

    SyscallDecl read_decl;
    read_decl.name = "read$t";
    read_decl.id = 1;
    read_decl.args.push_back(resourceType("fd", "fd"));
    read_decl.args.push_back(ptrType(
        "req",
        structType("req_s",
                   {intType("mode", 32, 0, 7, {0, 3}),
                    bufferType("data", 0, 16),
                    lenType("data_len", 1),
                    constType("magic", 0xab)})));
    table.decls.push_back(std::move(read_decl));

    SyscallDecl plain;
    plain.name = "plain$t";
    plain.id = 2;
    plain.args.push_back(intType("v", 32, 0, 100));
    table.decls.push_back(std::move(plain));

    return table;
}

TEST(Types, SlotCounts)
{
    auto table = makeTable();
    // open$t: ptr(1) + buffer(2) + flags(1) = 4.
    EXPECT_EQ(slotCount(table.decls[0]), 4u);
    // read$t: resource(1) + ptr(1) + int(1) + buffer(2) + len(1) +
    // const(1) = 7.
    EXPECT_EQ(slotCount(table.decls[1]), 7u);
    EXPECT_EQ(slotCount(table.decls[2]), 1u);
}

TEST(Types, ConsumedAndProducibleKinds)
{
    auto table = makeTable();
    EXPECT_TRUE(table.decls[0].consumedResourceKinds().empty());
    auto consumed = table.decls[1].consumedResourceKinds();
    ASSERT_EQ(consumed.size(), 1u);
    EXPECT_EQ(consumed[0], "fd");
    auto producible = table.producibleResourceKinds();
    ASSERT_EQ(producible.size(), 1u);
    EXPECT_EQ(producible[0], "fd");
}

TEST(Types, FindByNameAndId)
{
    auto table = makeTable();
    EXPECT_NE(table.find("read$t"), nullptr);
    EXPECT_EQ(table.find("nope"), nullptr);
    EXPECT_EQ(table.byId(2).name, "plain$t");
}

TEST(Value, DefaultArgsMatchShape)
{
    auto table = makeTable();
    Call call;
    call.decl = &table.decls[1];
    call.args = defaultArgs(*call.decl);
    fixupLengths(call);
    EXPECT_EQ(call.args.size(), 2u);
    EXPECT_EQ(call.args[0]->result_ref, -1);
    ASSERT_FALSE(call.args[1]->is_null);
    const Arg &req = *call.args[1]->pointee;
    ASSERT_EQ(req.fields.size(), 4u);
    EXPECT_EQ(req.fields[3]->scalar, 0xabu);  // const magic
    EXPECT_EQ(req.fields[2]->scalar, req.fields[1]->bytes.size());
}

TEST(Value, CloneIsDeepAndEqual)
{
    auto table = makeTable();
    Rng rng(3);
    Prog prog = generateProg(rng, table);
    Prog copy;
    copy.calls = prog.calls;  // Call copy-ctor deep-copies
    EXPECT_TRUE(prog.equals(copy));
    EXPECT_EQ(prog.hash(), copy.hash());

    // Mutating the copy must not affect the original.
    if (!copy.calls.empty() && !copy.calls[0].args.empty()) {
        Arg &a = *copy.calls[0].args[0];
        if (a.type->kind == TypeKind::Ptr)
            a.is_null = !a.is_null;
        else
            a.scalar ^= 0xff;
        // Rebuild hash: they should now differ (almost surely).
        EXPECT_FALSE(prog.equals(copy));
    }
}

TEST(Value, FixupLengthsTracksBufferResize)
{
    auto table = makeTable();
    Call call;
    call.decl = &table.decls[1];
    call.args = defaultArgs(*call.decl);
    Arg &req = *call.args[1]->pointee;
    req.fields[1]->bytes.assign(7, 0x42);
    fixupLengths(call);
    EXPECT_EQ(req.fields[2]->scalar, 7u);
}

TEST(Value, ArgAtPathRoundTrip)
{
    auto table = makeTable();
    Call call;
    call.decl = &table.decls[1];
    call.args = defaultArgs(*call.decl);

    size_t visited = 0;
    visitArgs(call, [&](const Arg &arg,
                        const std::vector<uint16_t> &path) {
        ++visited;
        const Arg &resolved = argAtPath(call, path);
        EXPECT_EQ(&resolved, &arg);
    });
    // resource, ptr, struct, 4 fields = 7 nodes.
    EXPECT_EQ(visited, 7u);
}

TEST(Value, ShiftResultRefsInsertAndRemove)
{
    auto table = makeTable();
    Prog prog;
    Call open_call;
    open_call.decl = &table.decls[0];
    open_call.args = defaultArgs(*open_call.decl);
    prog.calls.push_back(std::move(open_call));

    Call read_call;
    read_call.decl = &table.decls[1];
    read_call.args = defaultArgs(*read_call.decl);
    read_call.args[0]->result_ref = 0;
    prog.calls.push_back(std::move(read_call));

    // Insert at position 0: the ref must shift to 1.
    shiftResultRefs(prog, 0, +1);
    EXPECT_EQ(prog.calls[1].args[0]->result_ref, 1);
    // Remove position 1 (the producer): ref becomes invalid.
    shiftResultRefs(prog, 1, -1);
    EXPECT_EQ(prog.calls[1].args[0]->result_ref, -1);
}

TEST(Flatten, SlotEnumerationStableAndComplete)
{
    auto table = makeTable();
    auto slots = enumerateSlots(table.decls[1]);
    ASSERT_EQ(slots.size(), 7u);
    for (size_t i = 0; i < slots.size(); ++i)
        EXPECT_EQ(slots[i].index, i);
    // Const and Len slots must not be mutable.
    int immutable = 0;
    for (const auto &slot : slots) {
        if (slot.type->kind == TypeKind::Const ||
            slot.type->kind == TypeKind::Len) {
            EXPECT_FALSE(slot.is_mutable);
            ++immutable;
        }
    }
    EXPECT_EQ(immutable, 2);
}

TEST(Flatten, NullPtrKeepsArity)
{
    auto table = makeTable();
    Call call;
    call.decl = &table.decls[1];
    call.args = defaultArgs(*call.decl);
    const auto full = flattenCall(call, staticResolver);
    ASSERT_EQ(full.size(), 7u);

    call.args[1]->is_null = true;
    call.args[1]->pointee.reset();
    const auto nulled = flattenCall(call, staticResolver);
    ASSERT_EQ(nulled.size(), 7u);
    EXPECT_EQ(nulled[1], 0u);  // ptr-null slot
    for (size_t i = 2; i < nulled.size(); ++i)
        EXPECT_EQ(nulled[i], 0u);
}

TEST(Flatten, ResourceResolution)
{
    auto table = makeTable();
    Call call;
    call.decl = &table.decls[1];
    call.args = defaultArgs(*call.decl);
    call.args[0]->result_ref = 5;
    auto values = flattenCall(
        call, [](int32_t ref) { return ref < 0 ? kBadHandle : 777u; });
    EXPECT_EQ(values[0], 777u);
    call.args[0]->result_ref = -1;
    values = flattenCall(call, staticResolver);
    EXPECT_EQ(values[0], kBadHandle);
}

TEST(Flatten, BufferClassChangesWithContent)
{
    auto table = makeTable();
    Call call;
    call.decl = &table.decls[1];
    call.args = defaultArgs(*call.decl);
    Arg &buf = *call.args[1]->pointee->fields[1];
    buf.bytes = {1, 2, 3};
    fixupLengths(call);
    const auto v1 = flattenCall(call, staticResolver);
    buf.bytes = {9, 9, 9};
    const auto v2 = flattenCall(call, staticResolver);
    // Same length slot, (almost surely) different class slot.
    EXPECT_EQ(v1[3], v2[3]);
    EXPECT_NE(v1[4], v2[4]);
}

TEST(Flatten, MutationPointsSkipNullSubtrees)
{
    auto table = makeTable();
    Call call;
    call.decl = &table.decls[1];
    call.args = defaultArgs(*call.decl);
    const auto with_ptr = mutationPoints(call);
    // resource, ptrnull, mode int, buffer = 4 points (const/len skipped).
    EXPECT_EQ(with_ptr.size(), 4u);

    call.args[1]->is_null = true;
    call.args[1]->pointee.reset();
    const auto without = mutationPoints(call);
    // Only resource and the ptr-null toggle remain.
    EXPECT_EQ(without.size(), 2u);
}

TEST(Serialize, RoundTripPreservesProgram)
{
    auto table = makeTable();
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        Prog prog = generateProg(rng, table);
        const std::string text = formatProg(prog);
        auto parsed = parseProg(text, table);
        ASSERT_TRUE(parsed.ok()) << parsed.error << "\n" << text;
        EXPECT_TRUE(prog.equals(*parsed.prog)) << text;
        EXPECT_EQ(prog.hash(), parsed.prog->hash());
    }
}

TEST(Serialize, ParseRejectsUnknownSyscall)
{
    auto table = makeTable();
    auto result = parseProg("nosuch(0x1)\n", table);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("unknown syscall"), std::string::npos);
}

TEST(Serialize, ParseRejectsMalformedArg)
{
    auto table = makeTable();
    auto result = parseProg("plain$t(banana)\n", table);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("line 1"), std::string::npos);
}

TEST(Serialize, FormatUsesResourceVariables)
{
    auto table = makeTable();
    Prog prog;
    Call open_call;
    open_call.decl = &table.decls[0];
    open_call.args = defaultArgs(*open_call.decl);
    prog.calls.push_back(std::move(open_call));
    Call read_call;
    read_call.decl = &table.decls[1];
    read_call.args = defaultArgs(*read_call.decl);
    read_call.args[0]->result_ref = 0;
    prog.calls.push_back(std::move(read_call));

    const std::string text = formatProg(prog);
    EXPECT_NE(text.find("r0 = open$t("), std::string::npos);
    EXPECT_NE(text.find("read$t(r0"), std::string::npos);
}

TEST(Gen, GeneratedProgramsValidate)
{
    auto table = makeTable();
    Rng rng(17);
    for (int i = 0; i < 200; ++i) {
        Prog prog = generateProg(rng, table);
        auto error = validateProg(prog);
        EXPECT_FALSE(error.has_value()) << *error;
        EXPECT_GE(prog.calls.size(), 2u);
        EXPECT_LE(prog.calls.size(), 8u);
    }
}

TEST(Gen, ResourceBindingPrefersProducers)
{
    auto table = makeTable();
    Rng rng(19);
    size_t bound = 0, total = 0;
    for (int i = 0; i < 200; ++i) {
        Prog prog = generateProg(rng, table);
        bool have_producer = false;
        for (const auto &call : prog.calls) {
            if (call.decl->name == "open$t")
                have_producer = true;
            if (call.decl->name == "read$t" && have_producer) {
                ++total;
                bound += (call.args[0]->result_ref >= 0);
            }
        }
    }
    ASSERT_GT(total, 20u);
    EXPECT_GT(static_cast<double>(bound) / static_cast<double>(total),
              0.6);
}

TEST(Gen, CorpusIsUniqueByHash)
{
    auto table = makeTable();
    Rng rng(23);
    auto corpus = generateCorpus(rng, table, 50);
    EXPECT_EQ(corpus.size(), 50u);
    std::unordered_set<uint64_t> hashes;
    for (const auto &prog : corpus)
        EXPECT_TRUE(hashes.insert(prog.hash()).second);
}

TEST(Validate, CatchesForwardResourceRef)
{
    auto table = makeTable();
    Prog prog;
    Call read_call;
    read_call.decl = &table.decls[1];
    read_call.args = defaultArgs(*read_call.decl);
    read_call.args[0]->result_ref = 0;  // refers to itself
    prog.calls.push_back(std::move(read_call));
    EXPECT_TRUE(validateProg(prog).has_value());
}

TEST(Validate, CatchesChangedConst)
{
    auto table = makeTable();
    Prog prog;
    Call read_call;
    read_call.decl = &table.decls[1];
    read_call.args = defaultArgs(*read_call.decl);
    read_call.args[1]->pointee->fields[3]->scalar = 0;  // magic const
    prog.calls.push_back(std::move(read_call));
    auto error = validateProg(prog);
    ASSERT_TRUE(error.has_value());
    EXPECT_NE(error->find("const"), std::string::npos);
}

TEST(Validate, CatchesStaleLen)
{
    auto table = makeTable();
    Prog prog;
    Call read_call;
    read_call.decl = &table.decls[1];
    read_call.args = defaultArgs(*read_call.decl);
    fixupLengths(read_call);
    read_call.args[1]->pointee->fields[1]->bytes.push_back(0x7);
    prog.calls.push_back(std::move(read_call));
    auto error = validateProg(prog);
    ASSERT_TRUE(error.has_value());
    EXPECT_NE(error->find("len"), std::string::npos);
}

}  // namespace
}  // namespace sp::prog
