#include "data/loader.h"

#include <chrono>

#include "obs/metrics.h"
#include "prog/flatten.h"
#include "util/logging.h"

namespace sp::data {

namespace {

struct LoaderMetrics
{
    obs::Gauge &queue_depth;
    obs::Histogram &stall_us;

    static LoaderMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static LoaderMetrics metrics{
            reg.gauge("data.loader_queue_depth"),
            reg.histogram("data.loader_stall_us"),
        };
        return metrics;
    }
};

}  // namespace

StreamSource::StreamSource(const core::Dataset &dataset,
                           LoaderOptions opts)
    : dataset_(dataset), opts_(opts)
{
    opts_.prefetch_threads = std::max<size_t>(1, opts_.prefetch_threads);
    opts_.window = std::max<size_t>(opts_.prefetch_threads + 1,
                                    opts_.window);
    ring_.resize(opts_.window);
}

StreamSource::~StreamSource()
{
    stopThreads();
}

size_t
StreamSource::prepare(Rng &rng, size_t per_epoch)
{
    // Candidate selection must consume `rng` exactly like
    // InMemorySource::prepare (a full Fisher-Yates over the train
    // split) so both sources leave the trainer's RNG in the same state.
    std::vector<size_t> candidates(dataset_.train.size());
    for (size_t i = 0; i < candidates.size(); ++i)
        candidates[i] = i;
    for (size_t i = candidates.size(); i > 1; --i)
        std::swap(candidates[i - 1], candidates[rng.below(i)]);

    // The in-memory source drops examples whose label vector is empty.
    // Labels are one float per argument node, and the query graph
    // builds one argument node per mutation point of the base — so the
    // filter is equivalent to "the base has no mutable argument",
    // decidable without materializing. Counts are cached per base: a
    // base typically backs many examples.
    std::vector<int8_t> has_args(dataset_.bases.size(), -1);
    kept_.clear();
    kept_.reserve(per_epoch);
    for (size_t i = 0; i < per_epoch; ++i) {
        const size_t train_index = candidates[i];
        const uint32_t bi = dataset_.train[train_index].base_index;
        if (has_args[bi] < 0) {
            has_args[bi] =
                prog::countMutableArgs(dataset_.bases[bi]) > 0 ? 1 : 0;
        }
        if (has_args[bi] != 0)
            kept_.push_back(train_index);
    }
    return kept_.size();
}

void
StreamSource::beginEpoch(const std::vector<size_t> &order)
{
    stopThreads();
    SP_ASSERT(order.size() == kept_.size(),
              "epoch order has %zu entries for %zu kept examples",
              order.size(), kept_.size());
    {
        std::lock_guard<std::mutex> lock(mu_);
        order_ = &order;
        total_ = order.size();
        produce_next_ = 0;
        consume_next_ = 0;
        stop_ = false;
        for (auto &slot : ring_)
            slot.ready = false;
    }
    threads_.reserve(opts_.prefetch_threads);
    for (size_t t = 0; t < opts_.prefetch_threads; ++t)
        threads_.emplace_back([this] { producerLoop(); });
}

void
StreamSource::producerLoop()
{
    graph::EncodedGraph graph;
    std::vector<float> labels;
    for (;;) {
        size_t pos;
        {
            std::unique_lock<std::mutex> lock(mu_);
            can_produce_.wait(lock, [this] {
                return stop_ || produce_next_ >= total_ ||
                       produce_next_ < consume_next_ + ring_.size();
            });
            if (stop_ || produce_next_ >= total_)
                return;
            pos = produce_next_++;
        }
        const size_t train_index = kept_[(*order_)[pos]];
        core::materializeExampleInto(dataset_,
                                     dataset_.train[train_index],
                                     graph, labels);
        {
            std::lock_guard<std::mutex> lock(mu_);
            Slot &slot = ring_[pos % ring_.size()];
            std::swap(slot.graph, graph);
            std::swap(slot.labels, labels);
            slot.ready = true;
        }
        can_consume_.notify_one();
    }
}

std::pair<const graph::EncodedGraph *, const std::vector<float> *>
StreamSource::next()
{
    LoaderMetrics &metrics = LoaderMetrics::get();
    std::unique_lock<std::mutex> lock(mu_);
    SP_ASSERT(consume_next_ < total_,
              "next() past the end of the epoch");
    Slot &slot = ring_[consume_next_ % ring_.size()];
    if (!slot.ready) {
        const auto start = std::chrono::steady_clock::now();
        can_consume_.wait(lock, [&slot] { return slot.ready; });
        metrics.stall_us.record(static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
    }
    std::swap(current_.first, slot.graph);
    std::swap(current_.second, slot.labels);
    slot.ready = false;
    ++consume_next_;
    metrics.queue_depth.set(
        static_cast<double>(produce_next_ - consume_next_));
    lock.unlock();
    can_produce_.notify_one();
    return {&current_.first, &current_.second};
}

void
StreamSource::stopThreads()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    can_produce_.notify_all();
    for (auto &thread : threads_)
        thread.join();
    threads_.clear();
}

}  // namespace sp::data
