
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzz/corpus.cc" "src/fuzz/CMakeFiles/sp_fuzz.dir/corpus.cc.o" "gcc" "src/fuzz/CMakeFiles/sp_fuzz.dir/corpus.cc.o.d"
  "/root/repo/src/fuzz/crash.cc" "src/fuzz/CMakeFiles/sp_fuzz.dir/crash.cc.o" "gcc" "src/fuzz/CMakeFiles/sp_fuzz.dir/crash.cc.o.d"
  "/root/repo/src/fuzz/fuzzer.cc" "src/fuzz/CMakeFiles/sp_fuzz.dir/fuzzer.cc.o" "gcc" "src/fuzz/CMakeFiles/sp_fuzz.dir/fuzzer.cc.o.d"
  "/root/repo/src/fuzz/report.cc" "src/fuzz/CMakeFiles/sp_fuzz.dir/report.cc.o" "gcc" "src/fuzz/CMakeFiles/sp_fuzz.dir/report.cc.o.d"
  "/root/repo/src/fuzz/seedpool.cc" "src/fuzz/CMakeFiles/sp_fuzz.dir/seedpool.cc.o" "gcc" "src/fuzz/CMakeFiles/sp_fuzz.dir/seedpool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mutate/CMakeFiles/sp_mutate.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/sp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/sp_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/sp_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
