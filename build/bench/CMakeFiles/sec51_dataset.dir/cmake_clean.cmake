file(REMOVE_RECURSE
  "CMakeFiles/sec51_dataset.dir/sec51_dataset.cc.o"
  "CMakeFiles/sec51_dataset.dir/sec51_dataset.cc.o.d"
  "sec51_dataset"
  "sec51_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec51_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
