#include "data/shard.h"

#include <cstdio>

#include "util/logging.h"

namespace sp::data {

namespace {

void
encodeBase(PayloadWriter &out, const BaseRecord &base)
{
    out.u64(base.base_hash);
    out.str(base.text);
    out.u32(static_cast<uint32_t>(base.blocks.size()));
    for (uint32_t b : base.blocks)
        out.u32(b);
    out.u64(base.edges);
}

void
decodeBase(PayloadReader &in, BaseRecord &base)
{
    base.base_hash = in.u64();
    base.text = in.str();
    base.blocks.resize(in.u32());
    for (auto &b : base.blocks)
        b = in.u32();
    base.edges = in.u64();
}

void
encodeExample(PayloadWriter &out, const ExampleRecord &example)
{
    out.u64(example.base_hash);
    out.u8(example.split);
    out.u32(static_cast<uint32_t>(example.targets.size()));
    for (uint32_t t : example.targets)
        out.u32(t);
    out.u32(static_cast<uint32_t>(example.sites.size()));
    for (const auto &site : example.sites) {
        out.u32(static_cast<uint32_t>(site.call_index));
        out.u16(static_cast<uint16_t>(site.point.path.size()));
        for (uint16_t step : site.point.path)
            out.u16(step);
    }
}

void
decodeExample(PayloadReader &in, ExampleRecord &example)
{
    example.base_hash = in.u64();
    example.split = in.u8();
    example.targets.resize(in.u32());
    for (auto &t : example.targets)
        t = in.u32();
    example.sites.resize(in.u32());
    for (auto &site : example.sites) {
        site.call_index = in.u32();
        site.point = prog::MutationPoint{};
        site.point.path.resize(in.u16());
        for (auto &step : site.point.path)
            step = in.u16();
    }
}

}  // namespace

std::string
indexPathFor(const std::string &shard_path)
{
    return shard_path + ".idx";
}

std::optional<ShardIndex>
readShardIndex(const std::string &shard_path)
{
    std::FILE *f = std::fopen(indexPathFor(shard_path).c_str(), "rb");
    if (f == nullptr)
        return std::nullopt;
    struct Raw
    {
        uint64_t magic;
        uint32_t version;
        uint32_t endian;
        ShardIndex index;
        uint32_t crc;
    } raw{};
    const bool ok =
        std::fread(&raw.magic, sizeof(raw.magic), 1, f) == 1 &&
        std::fread(&raw.version, sizeof(raw.version), 1, f) == 1 &&
        std::fread(&raw.endian, sizeof(raw.endian), 1, f) == 1 &&
        std::fread(&raw.index, sizeof(raw.index), 1, f) == 1 &&
        std::fread(&raw.crc, sizeof(raw.crc), 1, f) == 1;
    std::fclose(f);
    if (!ok || raw.magic != kIndexMagic || raw.version != 1 ||
        raw.endian != kShardEndianGuard ||
        raw.crc != crc32(&raw.index, sizeof(raw.index)))
        return std::nullopt;
    return raw.index;
}

namespace {

void
writeShardIndex(const std::string &shard_path, const ShardIndex &index)
{
    const std::string path = indexPathFor(shard_path);
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    SP_ASSERT(f != nullptr, "cannot create shard index %s",
              path.c_str());
    const uint32_t version = 1;
    const uint32_t endian = kShardEndianGuard;
    const uint32_t crc = crc32(&index, sizeof(index));
    bool ok = std::fwrite(&kIndexMagic, sizeof(kIndexMagic), 1, f) == 1;
    ok = ok && std::fwrite(&version, sizeof(version), 1, f) == 1;
    ok = ok && std::fwrite(&endian, sizeof(endian), 1, f) == 1;
    ok = ok && std::fwrite(&index, sizeof(index), 1, f) == 1;
    ok = ok && std::fwrite(&crc, sizeof(crc), 1, f) == 1;
    ok = ok && std::fflush(f) == 0;
    std::fclose(f);
    SP_ASSERT(ok, "short write to shard index %s", path.c_str());
    SP_ASSERT(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot move shard index into place at %s", path.c_str());
}

}  // namespace

ShardWriter::ShardWriter(const std::string &path,
                         uint64_t kernel_fingerprint)
    : writer_(path, kernel_fingerprint)
{
}

ShardWriter::~ShardWriter()
{
    close();
}

size_t
ShardWriter::append(const BaseRecord &base)
{
    PayloadWriter payload;
    encodeBase(payload, base);
    ++index_.bases;
    return writer_.append(kRecordBase, payload);
}

size_t
ShardWriter::append(const ExampleRecord &example)
{
    PayloadWriter payload;
    encodeExample(payload, example);
    switch (example.split) {
      case kSplitTrain:
        ++index_.train;
        break;
      case kSplitValid:
        ++index_.valid;
        break;
      default:
        ++index_.eval;
        break;
    }
    return writer_.append(kRecordExample, payload);
}

void
ShardWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    writer_.close();
    index_.bytes = writer_.bytesWritten();
    writeShardIndex(writer_.path(), index_);
}

bool
ShardReader::next(BaseRecord &base, ExampleRecord &example,
                  bool &is_base)
{
    uint32_t kind = 0;
    PayloadReader payload;
    if (!reader_.next(kind, payload))
        return false;
    switch (kind) {
      case kRecordBase:
        decodeBase(payload, base);
        is_base = true;
        return true;
      case kRecordExample:
        decodeExample(payload, example);
        is_base = false;
        return true;
      default:
        SP_FATAL("%s: unknown shard record kind %u", path().c_str(),
                 kind);
    }
}

}  // namespace sp::data
