// Reproduces paper Table 3: new crashes by manifestation category,
// split by whether a syz-repro-style reproducer could be generated.
//
// Paper reference (Table 3, new bug reports):
//   Null pointer dereference        7 / 3
//   Paging fault                   13 / 10
//   Explicit assertion violation    2 / 2
//   General protection fault       28 / 11
//   Out of bounds access            1 / 0
//   Warning                         4 / 4
//   Other                           2 / 0
//   Total                          57 / 30  (66% reproducible)
// Expected shape: serious manifestations dominate; roughly two thirds
// of new crashes get a reproducer (flaky/concurrency-dependent bugs
// resist reproduction).

#include <cstdio>
#include <string>

#include "bench/common.h"
#include "util/stats.h"

int
main()
{
    using namespace sp;
    const uint64_t budget = 7 * 24 * spbench::kHourInExecs / 5;
    std::printf("=== Table 3: new crashes by manifestation (budget "
                "%llu execs, 2 runs) ===\n\n",
                static_cast<unsigned long long>(budget));

    kern::Kernel kernel = spbench::makeEvalKernel("6.8");

    // Merge the two Snowplow runs of the Table-2 campaign.
    fuzz::CrashLog merged(kernel);
    for (uint64_t seed : {101ull, 202ull}) {
        auto opts = spbench::evalFuzzOptions(budget, seed);
        auto fuzzer = core::makeSnowplowFuzzer(
            kernel, spbench::sharedPmm(), opts,
            spbench::evalSnowplowOptions());
        fuzzer->run();
        fuzzer->crashes().reproduceAll();
        for (const auto &record : fuzzer->crashes().records()) {
            if (record.known)
                continue;
            merged.record(record.bug_index, record.trigger,
                          record.first_seen_exec);
        }
        std::fprintf(stderr, "[table3] seed %llu done\n",
                     static_cast<unsigned long long>(seed));
    }
    merged.reproduceAll();

    static const kern::BugKind kKinds[] = {
        kern::BugKind::NullDeref,
        kern::BugKind::PagingFault,
        kern::BugKind::AssertViolation,
        kern::BugKind::GeneralProtectionFault,
        kern::BugKind::OutOfBounds,
        kern::BugKind::Warning,
        kern::BugKind::Other,
    };

    std::vector<std::vector<std::string>> rows;
    size_t total_with = 0, total_without = 0;
    for (auto kind : kKinds) {
        auto [with_repro, without] = merged.newByKind(kind);
        total_with += with_repro;
        total_without += without;
        rows.push_back({kern::bugKindName(kind),
                        std::to_string(with_repro),
                        std::to_string(without)});
    }
    rows.push_back({"Total", std::to_string(total_with),
                    std::to_string(total_without)});
    std::printf("%s\n",
                formatTable({"Category", "Reproducer: Yes", "No"}, rows)
                    .c_str());

    const double repro_rate =
        total_with + total_without == 0
            ? 0.0
            : 100.0 * static_cast<double>(total_with) /
                  static_cast<double>(total_with + total_without);
    std::printf("reproducibility: %.0f%% (paper: 66%%; Syzbot overall "
                "32%%)\n", repro_rate);
    std::printf("shape check: GPF/paging dominate, most crashes "
                "reproducible, flaky concurrency crashes are not.\n");
    return 0;
}
