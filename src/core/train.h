/**
 * @file
 * PMM training and evaluation (paper §3.3 and §5.2).
 *
 * Training minimizes per-argument-node binary cross-entropy with a
 * positive-class weight (each graph has far more NOT-MUTATE than MUTATE
 * arguments). Evaluation reproduces the paper's metrics: per-example
 * precision, recall, F1 and Jaccard between the predicted argument set
 * ŷ and the ground-truth set y, averaged across examples — plus the
 * Rand-K baseline selector (K = mean ground-truth size of the training
 * split, the paper's Rand.8).
 *
 * The trainer is decoupled from where examples live through
 * ExampleSource: the in-memory source materializes the whole working
 * set up front (the historical path), while src/data's streaming
 * source prefetches materializations from disk shards. Both consume
 * the training RNG identically, so a given seed produces the same
 * epoch order, losses and final metrics from either source.
 * TrainOptions::checkpoint_path / resume persist the full trainer
 * state (optimizer moments, RNG, epoch cursor, best-validation
 * bookkeeping) so an interrupted run continues bit-identically.
 */
#ifndef SP_CORE_TRAIN_H
#define SP_CORE_TRAIN_H

#include <string>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "core/pmm.h"

namespace sp::core {

/** Training configuration. */
struct TrainOptions
{
    int epochs = 12;
    float learning_rate = 3e-3f;
    float weight_decay = 1e-5f;
    float pos_weight = 2.0f;    ///< BCE weight of MUTATE labels
    float grad_clip = 5.0f;
    uint64_t seed = 77;
    size_t max_train_examples = 0;  ///< 0 = use all
    /** Early-stop patience in epochs without validation-F1 gain. */
    int patience = 3;
    bool verbose = false;
    /**
     * When non-empty, write a resumable checkpoint (parameters +
     * optimizer state + trainer cursor) here after every epoch,
     * atomically (write + rename).
     */
    std::string checkpoint_path;
    /**
     * Restore the trainer from `checkpoint_path` before the first
     * epoch and continue where it left off. A resumed run on the same
     * data and options is bit-identical to an uninterrupted one.
     * Ignored (with a warning) when the checkpoint does not exist.
     */
    bool resume = false;
};

/** Per-example-averaged selector metrics. */
struct SelectorMetrics
{
    double f1 = 0.0;
    double precision = 0.0;
    double recall = 0.0;
    double jaccard = 0.0;
    size_t examples = 0;
};

/** One epoch's training record. */
struct EpochRecord
{
    int epoch = 0;
    double train_loss = 0.0;
    SelectorMetrics valid;
};

/** Training history. */
struct TrainHistory
{
    std::vector<EpochRecord> epochs;
    SelectorMetrics best_valid;
    /** Decision threshold maximizing validation F1 (swept post-training). */
    float best_threshold = 0.5f;
};

/**
 * Supplies materialized (encoded graph, labels) training examples to
 * trainPmmFromSource. The contract every implementation must honor for
 * determinism parity across sources:
 *
 *  - prepare() selects the working set by drawing from `rng` exactly
 *    like the legacy in-memory candidate shuffle (a full Fisher-Yates
 *    pass over the train split), then drops examples whose label
 *    vector would be empty; it returns the kept count K.
 *  - beginEpoch(order) starts one epoch that will deliver the kept
 *    examples permuted by `order` (a permutation of [0, K)).
 *  - next() returns the next example of the running epoch; the
 *    pointers stay valid until the following next()/beginEpoch() call.
 */
class ExampleSource
{
  public:
    virtual ~ExampleSource() = default;

    virtual size_t prepare(Rng &rng, size_t per_epoch) = 0;
    virtual void beginEpoch(const std::vector<size_t> &order) = 0;
    virtual std::pair<const graph::EncodedGraph *,
                      const std::vector<float> *>
    next() = 0;
};

/**
 * The historical fully-in-memory source: materializes every selected
 * example of `dataset.train` once in prepare() and serves epochs from
 * the cache (the encodings are identical across epochs, and rebuilding
 * them dominates training time).
 */
class InMemorySource : public ExampleSource
{
  public:
    explicit InMemorySource(const Dataset &dataset) : dataset_(dataset)
    {
    }

    size_t prepare(Rng &rng, size_t per_epoch) override;
    void beginEpoch(const std::vector<size_t> &order) override;
    std::pair<const graph::EncodedGraph *, const std::vector<float> *>
    next() override;

  private:
    const Dataset &dataset_;
    std::vector<std::pair<graph::EncodedGraph, std::vector<float>>>
        cache_;
    const std::vector<size_t> *order_ = nullptr;
    size_t pos_ = 0;
};

/** Train `model` on the dataset's train split (in-memory source). */
TrainHistory trainPmm(Pmm &model, const Dataset &dataset,
                      const TrainOptions &opts);

/**
 * Train `model` from an explicit example source. `dataset` still
 * provides the validation/eval splits (and the train-split size the
 * per-epoch cap applies to); `source` provides the materialized
 * training examples.
 */
TrainHistory trainPmmFromSource(Pmm &model, const Dataset &dataset,
                                ExampleSource &source,
                                const TrainOptions &opts);

/** Evaluate the model's argument selection over a split. */
SelectorMetrics evaluatePmm(const Pmm &model, const Dataset &dataset,
                            const std::vector<RawExample> &split,
                            float threshold = 0.5f);

/**
 * Evaluate the Rand-K baseline: uniformly select k arguments per
 * example, score against the ground truth (paper Table 1, Rand.8).
 */
SelectorMetrics evaluateRandomSelector(const Dataset &dataset,
                                       const std::vector<RawExample> &split,
                                       size_t k, uint64_t seed);

}  // namespace sp::core

#endif  // SP_CORE_TRAIN_H
