// Reproduces paper Figure 6 (a–d): edge coverage of Snowplow vs
// Syzkaller over a 24-virtual-hour fuzzing budget on kernels 6.8
// (the training kernel), 6.9 and 6.10 (unseen, evolved kernels),
// repeated over several seeds.
//
// Prints, per kernel: the min/mean/max coverage band at each
// checkpoint for both systems, the coverage improvement at budget end
// (paper: +7.0% / +8.6% / +7.7%), the time-to-parity speedup (paper:
// 5.2x / >4.8x), whether the bands overlap after the early phase
// (paper: they do not), and the band widths (paper: Snowplow's band is
// narrower).
//
// Expected shape: Snowplow reaches Syzkaller's final coverage several
// times faster and ends meaningfully higher on all three kernels,
// including the ones it was not trained on.

// Run with an argument — `fig6_coverage out.jsonl` — to additionally
// stream every (system, seed, checkpoint) point as "fig6_point" JSONL
// events plus a "fig6_summary" per kernel, so the figure's curves can
// be regenerated from the telemetry file instead of scraping stdout.
//
// `--workers N` runs every campaign on the multi-worker engine (the
// checkpoint grid, and therefore the figure's x-axis, is identical at
// any worker count; N=1 reproduces the classic loop bit-for-bit).
//
// `--trace-out FILE.json` (optionally with `--trace-sample 1/64`)
// exports the campaigns' pipeline spans as Chrome/Perfetto trace_event
// JSON — handy for eyeballing where a figure run spends its time.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/common.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace {

constexpr int kSeeds = 5;

struct Band
{
    std::vector<uint64_t> execs;               // checkpoint grid
    std::vector<std::vector<size_t>> edges;    // [seed][checkpoint]

    double
    mean(size_t checkpoint) const
    {
        double total = 0.0;
        for (const auto &run : edges)
            total += static_cast<double>(run[checkpoint]);
        return total / static_cast<double>(edges.size());
    }

    size_t
    min(size_t checkpoint) const
    {
        size_t best = ~size_t{0};
        for (const auto &run : edges)
            best = std::min(best, run[checkpoint]);
        return best;
    }

    size_t
    max(size_t checkpoint) const
    {
        size_t best = 0;
        for (const auto &run : edges)
            best = std::max(best, run[checkpoint]);
        return best;
    }
};

Band
runCampaigns(const sp::kern::Kernel &kernel, const char *version,
             bool snowplow, uint64_t budget, size_t workers)
{
    Band band;
    for (int seed = 0; seed < kSeeds; ++seed) {
        sp::fuzz::CampaignOptions opts;
        opts.workers = workers;
        opts.fuzz = spbench::evalFuzzOptions(budget, 1000 + seed);
        auto engine =
            snowplow ? sp::core::makeSnowplowCampaign(
                           kernel, spbench::sharedPmm(), opts,
                           spbench::evalSnowplowOptions())
                     : sp::core::makeSyzkallerCampaign(kernel, opts);
        auto report = engine->run();
        std::vector<size_t> series;
        series.reserve(report.timeline.size());
        if (band.execs.empty()) {
            for (const auto &cp : report.timeline)
                band.execs.push_back(cp.execs);
        }
        for (const auto &cp : report.timeline)
            series.push_back(cp.edges);
        if (auto *sink = sp::obs::sink()) {
            for (const auto &cp : report.timeline) {
                sink->event("fig6_point",
                            {{"kernel", version},
                             {"system",
                              snowplow ? "snowplow" : "syzkaller"},
                             {"seed", seed},
                             {"execs", cp.execs},
                             {"hours", spbench::toHours(cp.execs)},
                             {"edges", cp.edges},
                             {"blocks", cp.blocks},
                             {"crashes", cp.crashes}});
            }
        }
        series.resize(band.execs.size(),
                      series.empty() ? 0 : series.back());
        band.edges.push_back(std::move(series));
        std::fprintf(stderr, "[fig6] %s seed %d: %zu edges\n",
                     snowplow ? "snowplow" : "syzkaller", seed,
                     band.edges.back().back());
    }
    return band;
}

}  // namespace

int
main(int argc, char **argv)
{
    using namespace sp;
    size_t workers = 1;
    obs::TraceOptions trace_opts;
    bool tracing = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
            workers = static_cast<size_t>(
                std::max(1L, std::atol(argv[++i])));
        } else if (std::strcmp(argv[i], "--trace-out") == 0 &&
                   i + 1 < argc) {
            trace_opts.path = argv[++i];
            tracing = true;
        } else if (std::strcmp(argv[i], "--trace-sample") == 0 &&
                   i + 1 < argc) {
            const char *s = argv[++i];
            if (const char *slash = std::strchr(s, '/'))
                s = slash + 1;
            const long denom = std::atol(s);
            trace_opts.sample =
                denom <= 0 ? 1 : static_cast<uint32_t>(denom);
            tracing = true;
        } else {
            obs::installSink({.path = argv[i]});
        }
    }
    if (tracing)
        obs::installTracer(trace_opts);
    std::printf("=== Figure 6: edge coverage over 24 virtual hours, "
                "%d seeds ===\n", kSeeds);
    std::printf("(1 virtual hour = %llu executed tests",
                static_cast<unsigned long long>(spbench::kHourInExecs));
    if (workers > 1)
        std::printf("; %zu campaign workers", workers);
    std::printf(")\n\n");

    double improvements[3] = {};
    const char *versions[3] = {"6.8", "6.9", "6.10"};
    for (int v = 0; v < 3; ++v) {
        kern::Kernel kernel = spbench::makeEvalKernel(versions[v]);
        std::printf("--- kernel %s (%zu blocks)%s ---\n", versions[v],
                    kernel.blocks().size(),
                    v == 0 ? " [training kernel]" : " [unseen]");

        auto syz = runCampaigns(kernel, versions[v], false,
                                spbench::kDayInExecs, workers);
        auto snow = runCampaigns(kernel, versions[v], true,
                                 spbench::kDayInExecs, workers);

        // Series table every 2 virtual hours.
        std::printf("%6s | %27s | %27s\n", "hour",
                    "Syzkaller (min/mean/max)", "Snowplow (min/mean/max)");
        for (size_t c = 0; c < syz.execs.size(); ++c) {
            const double hour = spbench::toHours(syz.execs[c]);
            if (static_cast<uint64_t>(hour * 2) % 4 != 0)
                continue;
            std::printf("%6.1f | %8zu %8.0f %8zu | %8zu %8.0f %8zu\n",
                        hour, syz.min(c), syz.mean(c), syz.max(c),
                        snow.min(c), snow.mean(c), snow.max(c));
        }

        const size_t last = syz.execs.size() - 1;
        const double syz_final = syz.mean(last);
        const double snow_final = snow.mean(last);
        improvements[v] = 100.0 * (snow_final / syz_final - 1.0);

        // Time for Snowplow's mean to reach Syzkaller's 24h mean.
        double parity_hours = spbench::toHours(syz.execs[last]);
        for (size_t c = 0; c <= last; ++c) {
            if (snow.mean(c) >= syz_final) {
                parity_hours = spbench::toHours(snow.execs[c]);
                break;
            }
        }
        const double speedup =
            spbench::toHours(syz.execs[last]) / parity_hours;

        // Band overlap after hour 5 (paper: none).
        bool overlap_after_5h = false;
        for (size_t c = 0; c <= last; ++c) {
            if (spbench::toHours(syz.execs[c]) < 5.0)
                continue;
            overlap_after_5h |= (syz.max(c) >= snow.min(c));
        }
        const double syz_band =
            static_cast<double>(syz.max(last) - syz.min(last));
        const double snow_band =
            static_cast<double>(snow.max(last) - snow.min(last));

        std::printf("\n  final mean edges  : syzkaller %.0f, "
                    "snowplow %.0f (+%.1f%%)\n",
                    syz_final, snow_final, improvements[v]);
        std::printf("  time-to-parity    : %.1f h -> speedup %.1fx "
                    "(paper: 4.8x-5.2x)\n", parity_hours, speedup);
        std::printf("  bands overlap >5h : %s (paper: no)\n",
                    overlap_after_5h ? "yes" : "no");
        std::printf("  final band width  : syzkaller %.0f, snowplow "
                    "%.0f (paper: snowplow narrower)\n\n",
                    syz_band, snow_band);
        if (auto *sink = obs::sink()) {
            sink->event("fig6_summary",
                        {{"kernel", versions[v]},
                         {"workers", workers},
                         {"syz_final_mean_edges", syz_final},
                         {"snow_final_mean_edges", snow_final},
                         {"improvement_pct", improvements[v]},
                         {"parity_hours", parity_hours},
                         {"speedup", speedup},
                         {"bands_overlap_after_5h", overlap_after_5h},
                         {"syz_band_width", syz_band},
                         {"snow_band_width", snow_band}});
        }
    }

    std::printf("--- Figure 6d: coverage improvement at 24 h ---\n");
    for (int v = 0; v < 3; ++v) {
        std::printf("  kernel %-5s: +%.1f%%  (paper: %+0.1f%%)\n",
                    versions[v], improvements[v],
                    v == 0 ? 7.0 : (v == 1 ? 8.6 : 7.7));
    }
    if (tracing) {
        obs::shutdownTracer();
        if (!trace_opts.path.empty())
            std::printf("trace written to %s\n",
                        trace_opts.path.c_str());
    }
    obs::shutdownSink();
    return 0;
}
