/**
 * @file
 * The staged campaign runtime (Figure 1 as an explicit pipeline).
 *
 * The monolithic fuzz loop is decomposed into stages —
 *
 *     schedule → localize → instantiate → execute → triage/admit
 *              → checkpoint
 *
 * — run by one or more workers over shared campaign state. The legacy
 * single-threaded `Fuzzer` (fuzzer.h) drives exactly one worker over
 * these stages; `CampaignEngine` runs N of them on threads:
 *
 *  - the Corpus is sharded (one shard per worker) and thread-safe;
 *  - each worker owns a deterministic RNG stream split from the
 *    campaign seed (worker 0's stream IS the campaign seed, so a
 *    1-worker engine is bit-for-bit the legacy loop), its own
 *    executor from an exec::ExecutorPool, and its own localizer
 *    (built by a per-worker factory so learned localizers can share
 *    one InferenceService and one prediction cache);
 *  - virtual time is a shared BudgetLedger claimed in
 *    checkpoint-aligned grants, so the coverage timeline lands on the
 *    same fixed execution grid regardless of worker count; and
 *  - checkpoints are emitted in order by the worker that executed the
 *    slot completing each grid boundary, after blocking (on condition
 *    variables, not a spin) until the ledger's contiguous-prefix
 *    completion watermark covers every earlier slot and every earlier
 *    checkpoint has been emitted, which makes each checkpoint a
 *    consistent prefix snapshot and the timeline monotone.
 */
#ifndef SP_FUZZ_CAMPAIGN_H
#define SP_FUZZ_CAMPAIGN_H

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "fuzz/fuzzer.h"
#include "fuzz/policy.h"
#include "fuzz/sched.h"

namespace sp::obs {
class CovMap;
class CovShard;
struct TimelineTick;
}

namespace sp::fuzz {

/**
 * One executed argument-lane mutant, offered to the campaign's
 * mutation observer right after triage/admit. All pointers reference
 * worker-stack state and are valid ONLY for the duration of the
 * callback — an observer that wants the data must copy it. The
 * callback runs on the worker thread inside the execute stage, so
 * observers must be cheap and thread-safe (multiple workers call
 * concurrently); anything expensive belongs on the observer's own
 * thread (see data::Harvester).
 */
struct MutationEvent
{
    size_t worker = 0;
    uint64_t slot = 0;  ///< 1-based execution number
    const prog::Prog *base = nullptr;
    const exec::ExecResult *base_result = nullptr;
    const mut::ArgLocation *site = nullptr;  ///< instantiated site
    const prog::Prog *mutant = nullptr;
    const exec::ExecResult *result = nullptr;  ///< mutant's execution
    bool admitted = false;    ///< corpus accepted it (new edges)
    size_t new_edges = 0;
};

/** Campaign mutation-event hook (empty = no observer installed). */
using MutationObserver = std::function<void(const MutationEvent &)>;

/** Execution options the fuzz loop derives from its own options. */
exec::ExecOptions execOptionsFor(const FuzzOptions &opts);

/**
 * Build the effective scheduler for `opts`: `opts.scheduler` if set,
 * a HookScheduler over `opts.choose_test` if set, else the
 * recency-biased default. Consumed by StaticPolicy (policy.h) as its
 * pick adapter — the schedulers are no longer dispatched by the loop
 * itself.
 */
std::shared_ptr<Scheduler> makeScheduler(const FuzzOptions &opts);

/**
 * Assemble one timeline tick from a checkpoint's campaign facts plus
 * the merged covmap summary and policy posterior (both nullable). The
 * fuzz layer owns this mapping so obs::TimelineTick stays plain
 * fields; the serialized checkpoint owner calls it per grid boundary,
 * and the CLI calls it once more (after CovMap::finalize) for the
 * artifact's final record.
 */
obs::TimelineTick makeTimelineTick(const Checkpoint &cp,
                                   size_t corpus_size,
                                   const obs::CovMap *covmap,
                                   const DecisionPolicy *policy);

namespace detail {

/** Per-lane tallies shared by every worker of one campaign. */
struct LaneTally
{
    std::atomic<uint64_t> produced{0};
    std::atomic<uint64_t> admitted{0};
};

/**
 * State shared by every worker of one campaign run (for the legacy
 * Fuzzer, the "campaign" is one runUntil call with a single worker).
 */
struct CampaignShared
{
    const FuzzOptions *opts = nullptr;
    Corpus *corpus = nullptr;
    CrashLog *crashes = nullptr;
    BudgetLedger *ledger = nullptr;
    /** The campaign's decision policy (never null once workers run):
     *  every pick/operator/arbitration choice and every post-triage
     *  reward goes through it. Shard merges happen in the serialized
     *  checkpoint owner, before the checkpoints_done publish. */
    DecisionPolicy *policy = nullptr;
    LaneTally lanes[kMutationLanes];

    /** Checkpoints appended strictly in grid order (see emit logic). */
    std::vector<Checkpoint> board;
    /** Checkpoints emitted so far (board.size(), published). */
    std::atomic<uint64_t> checkpoints_done{0};
    /** Wakes boundary owners waiting for the previous checkpoint. */
    std::mutex checkpoint_mu;
    std::condition_variable checkpoint_cv;
    /** Grid ordinal of board[0] (non-zero on legacy fuzzer reruns). */
    uint64_t board_base = 0;
    /** Edge count at the previous checkpoint (telemetry deltas); only
     *  the in-order checkpoint owner touches it. */
    size_t last_checkpoint_edges = 0;

    /** Optional stop predicate (legacy runUntil); empty = never. */
    std::function<bool()> stop;

    /**
     * Mutation observer (CampaignOptions::on_mutation); null or empty
     * = none. A pointer so per-exec hot paths test one load instead of
     * copying a std::function per campaign.
     */
    const MutationObserver *observer = nullptr;

    bool
    stopped() const
    {
        return stop && stop();
    }
};

/** One worker's private slice of the campaign. */
struct WorkerEnv
{
    CampaignShared *shared = nullptr;
    size_t worker_id = 0;
    Rng *rng = nullptr;
    exec::Executor *executor = nullptr;
    const mut::Mutator *mutator = nullptr;
    mut::Localizer *localizer = nullptr;
    /** This worker's covmap shard (null = profiling off). Only this
     *  worker writes it; the checkpoint owner reads it at merges. */
    obs::CovShard *cov_shard = nullptr;
    /** Mirror of the execution counter (legacy Fuzzer::execs_). */
    uint64_t *execs_out = nullptr;

    /** @name Filled in by the loop (worker telemetry) */
    /** @{ */
    uint64_t local_execs = 0;  ///< slots this worker executed
    uint64_t wait_us = 0;      ///< time spent in checkpoint barriers
    uint64_t wall_us = 0;      ///< workerLoop wall time
    /** @} */
};

/**
 * Seed stage: generate `seed_corpus_size` programs from the worker's
 * RNG and execute them (unbounded claims — the legacy loop seeds its
 * whole corpus even when the budget is smaller).
 */
void seedStage(WorkerEnv &env, const kern::Kernel &kernel);

/** The staged mutation pipeline; returns when the budget is spent or
 *  the campaign's stop predicate fires. */
void workerLoop(WorkerEnv &env, const kern::Kernel &kernel);

/**
 * Assemble the FuzzReport, set the end-of-run gauges and emit the
 * `campaign_summary` telemetry event (with final crash and per-lane
 * admission totals). `timeline` is the full campaign timeline,
 * `campaign_execs` the executions of this run, `wall_sec` its
 * wall-clock duration.
 */
FuzzReport finalizeCampaign(const CampaignShared &shared,
                            const std::vector<Checkpoint> &timeline,
                            uint64_t total_execs,
                            uint64_t campaign_execs, double wall_sec,
                            size_t workers);

}  // namespace detail

/** Campaign-engine configuration. */
struct CampaignOptions
{
    /** Worker threads; 1 reproduces the legacy loop bit-for-bit. */
    size_t workers = 1;
    FuzzOptions fuzz;
    /**
     * Called for every argument-lane mutant right after triage (from
     * worker threads; see MutationEvent's contract). Feeds continual
     * dataset harvesting without the fuzz layer knowing about it.
     */
    MutationObserver on_mutation;
};

/**
 * Runs one fuzzing campaign over N staged workers. One-shot: construct,
 * run(), then inspect corpus()/crashes().
 */
class CampaignEngine
{
  public:
    /** Builds the localizer of one worker (called once per worker at
     *  construction time, on the constructing thread). */
    using LocalizerFactory =
        std::function<std::unique_ptr<mut::Localizer>(size_t worker)>;

    CampaignEngine(const kern::Kernel &kernel, CampaignOptions options,
                   LocalizerFactory make_localizer);

    /** Run the campaign to budget exhaustion. Call at most once. */
    FuzzReport run();

    /** @name Introspection (quiescent: before run() or after) */
    /** @{ */
    const Corpus &corpus() const { return corpus_; }
    CrashLog &crashes() { return crashes_; }
    const CrashLog &crashes() const { return crashes_; }
    const kern::Kernel &kernel() const { return kernel_; }
    size_t workerCount() const { return opts_.workers; }
    /** The campaign's decision policy (timeline final ticks sample
     *  its merged posterior after run()). */
    const DecisionPolicy *policy() const { return policy_.get(); }
    /** @} */

  private:
    const kern::Kernel &kernel_;
    CampaignOptions opts_;
    std::shared_ptr<DecisionPolicy> policy_;
    mut::Mutator mutator_;
    exec::ExecutorPool executors_;
    Corpus corpus_;
    CrashLog crashes_;
    std::vector<std::unique_ptr<Rng>> rngs_;
    std::vector<std::unique_ptr<mut::Localizer>> localizers_;
    bool ran_ = false;
};

}  // namespace sp::fuzz

#endif  // SP_FUZZ_CAMPAIGN_H
