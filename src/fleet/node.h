/**
 * @file
 * The fabric node: connects to a coordinator, mirrors the campaign
 * config from the HelloAck (kernel identity verified by fingerprint),
 * then pulls budget leases and runs each as a local CampaignEngine
 * campaign — seeded by the coordinator's fleet-corpus batch — and
 * pushes back everything the lease produced (new-coverage programs,
 * crashes, covmap deltas, policy posterior deltas, harvested training
 * shards) in one atomic LeaseResult.
 *
 * A node is stateless between leases on purpose: every lease campaign
 * is a deterministic function of (lease seed, seed batch, config), so
 * a lease lost to a crash or disconnect is simply re-issued by the
 * coordinator and re-run — possibly elsewhere — with a fresh seed
 * stream.
 */
#ifndef SP_FLEET_NODE_H
#define SP_FLEET_NODE_H

#include <cstdint>
#include <string>

#include "fleet/wire.h"

namespace sp::fleet {

struct NodeOptions
{
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    std::string name = "node";    ///< fleet-unique (reconnect identity)
    size_t workers = 1;           ///< campaign workers per lease
    std::string pmm_path;         ///< PMM checkpoint; empty = baseline
    /** Harvest scratch root (per-node subdirectory created inside). */
    std::string scratch_dir = "/tmp";
    uint64_t max_leases = 0;      ///< stop after N leases; 0 = drain
    /**
     * Fault-injection for lease-reclaim tests: take one grant, then
     * drop the connection without running or reporting it.
     */
    bool abandon_first = false;
    uint64_t retry_ms = 50;       ///< idle wait when no lease available
    uint64_t connect_timeout_ms = 5000;
};

struct NodeStats
{
    uint64_t leases = 0;          ///< leases completed (acked)
    uint64_t execs = 0;           ///< local executions across leases
    uint64_t programs_sent = 0;
    uint64_t crashes_sent = 0;
    uint64_t accepted = 0;        ///< results the coordinator accepted
    uint64_t stale = 0;           ///< results dropped as stale
    bool done = false;            ///< saw the coordinator's done grant
    std::string error;            ///< empty = clean run
};

/**
 * Run one node to completion: until the coordinator reports the
 * campaign drained, `max_leases` is reached, or an error ends the
 * conversation (recorded in NodeStats::error).
 */
NodeStats runNode(const NodeOptions &opts);

}  // namespace sp::fleet

#endif  // SP_FLEET_NODE_H
