# Empty dependencies file for table5_directed.
# This may be replaced when dependencies are built.
