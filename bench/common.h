/**
 * @file
 * Shared infrastructure for the evaluation benchmarks.
 *
 * Every bench binary reproduces one table or figure of the paper
 * against the same evaluation setup: the base kernel ("6.8") plus its
 * evolved versions ("6.9", "6.10"), and one PMM trained once on 6.8
 * data and cached on disk so the whole suite shares the training cost
 * — exactly the paper's amortization argument (§6, Return on
 * Investment).
 *
 * Virtual time: 1 executed test = 1 time unit. The constant
 * kHourInExecs maps the paper's wall-clock axes onto execution counts
 * so benches can print "hours".
 */
#ifndef SP_BENCH_COMMON_H
#define SP_BENCH_COMMON_H

#include <string>

#include "core/dataset.h"
#include "core/pmm.h"
#include "core/snowplow.h"
#include "kernel/subsystems.h"

namespace spbench {

/** Executions standing in for one hour of machine_fuzz time. */
constexpr uint64_t kHourInExecs = 1250;

/** Executions in the 24-hour coverage experiments (Fig. 6). */
constexpr uint64_t kDayInExecs = 24 * kHourInExecs;

/** Kernel-generation parameters of the evaluation kernels. */
sp::kern::KernelGenParams evalKernelParams(int evolution,
                                           const std::string &version);

/** The evaluation kernel for one version ("6.8", "6.9", "6.10"). */
sp::kern::Kernel makeEvalKernel(const std::string &version);

/** Dataset options used to train the shared evaluation model. */
sp::core::DatasetOptions evalDatasetOptions();

/**
 * The shared PMM, trained on kernel 6.8 data. The first call trains
 * the model (a few minutes) and writes a checkpoint next to /tmp; later
 * calls (and later bench binaries) load it.
 */
const sp::core::Pmm &sharedPmm();

/** Decision threshold tuned on the validation split alongside the
 *  shared model (persisted next to its checkpoint). */
float sharedPmmThreshold();

/** SnowplowOptions preloaded with the tuned threshold. */
sp::core::SnowplowOptions evalSnowplowOptions();

/** Fuzzing options for one evaluation run. */
sp::fuzz::FuzzOptions evalFuzzOptions(uint64_t budget, uint64_t seed);

/** Convert an execution count to virtual hours. */
double toHours(uint64_t execs);

}  // namespace spbench

#endif  // SP_BENCH_COMMON_H
