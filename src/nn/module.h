/**
 * @file
 * Neural-network building blocks composed from the autograd tensor ops:
 * parameter registry, fully-connected layers, embedding tables, and a
 * small multi-layer perceptron. These are the pieces PMM is built from.
 */
#ifndef SP_NN_MODULE_H
#define SP_NN_MODULE_H

#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace sp::nn {

/** A named trainable parameter (for optimizers and checkpointing). */
struct Parameter
{
    std::string name;
    Tensor tensor;
};

/**
 * Base class for anything with trainable parameters. Derived modules
 * register parameters at construction; optimizers and checkpoint I/O
 * operate on the flat parameter list.
 */
class Module
{
  public:
    virtual ~Module() = default;

    /** All trainable parameters of this module (registration order). */
    const std::vector<Parameter> &parameters() const { return params_; }

    /** Zero every parameter's gradient buffer. */
    void zeroGrad();

    /** Total number of trainable scalars. */
    int64_t parameterCount() const;

  protected:
    /** Register a parameter; returns the stored tensor handle. */
    Tensor registerParameter(std::string name, Tensor tensor);

    /** Absorb a child module's parameters under a name prefix. */
    void absorb(const std::string &prefix, const Module &child);

  private:
    std::vector<Parameter> params_;
};

/** Affine layer y = x W + b with Kaiming-style init. */
class Linear : public Module
{
  public:
    /**
     * @param rng    init randomness
     * @param in     input feature count
     * @param out    output feature count
     * @param name   parameter name prefix
     */
    Linear(Rng &rng, int64_t in, int64_t out, const std::string &name);

    /** Apply to a [n, in] matrix, producing [n, out]. */
    Tensor forward(const Tensor &x) const;

    int64_t inFeatures() const { return in_; }
    int64_t outFeatures() const { return out_; }

  private:
    int64_t in_;
    int64_t out_;
    Tensor weight_;
    Tensor bias_;
};

/** Learned embedding table: id -> dense row. */
class Embedding : public Module
{
  public:
    /**
     * @param rng        init randomness
     * @param vocab      number of ids
     * @param dim        embedding width
     * @param name       parameter name prefix
     */
    Embedding(Rng &rng, int64_t vocab, int64_t dim, const std::string &name);

    /** Look up a batch of ids, producing [ids.size(), dim]. */
    Tensor forward(const std::vector<int32_t> &ids) const;

    int64_t vocab() const { return vocab_; }
    int64_t dim() const { return dim_; }

  private:
    int64_t vocab_;
    int64_t dim_;
    Tensor table_;
};

/**
 * Multi-layer perceptron with ReLU between layers (none after the last).
 */
class Mlp : public Module
{
  public:
    /**
     * @param rng    init randomness
     * @param dims   layer widths, e.g. {in, hidden, out}
     * @param name   parameter name prefix
     */
    Mlp(Rng &rng, const std::vector<int64_t> &dims, const std::string &name);

    /** Apply to a [n, dims.front()] matrix. */
    Tensor forward(const Tensor &x) const;

  private:
    std::vector<Linear> layers_;
};

}  // namespace sp::nn

#endif  // SP_NN_MODULE_H
