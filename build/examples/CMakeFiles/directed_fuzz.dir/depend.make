# Empty dependencies file for directed_fuzz.
# This may be replaced when dependencies are built.
