// Extension bench (paper §6, Discussion): call-insertion localization.
//
// The paper claims the PMM methodology "will readily generalize to a
// number of other mutation types", naming system-call insertion
// localization (no representational change) and insertion
// instantiation (predicting a syscall variant — "a minimal change in
// the architecture"). This bench implements and measures both claims:
// a two-headed model on the PMM backbone learns (a) after which call
// to insert and (b) which syscall variant to insert, compared against
// random choice.
//
// Expected shape: both heads beat random choice by large factors,
// supporting the paper's generalization claim.

#include <cstdio>

#include "bench/common.h"
#include "core/insertion.h"
#include "util/stats.h"

int
main()
{
    using namespace sp;
    std::printf("=== Extension (paper SS6): call-insertion localization "
                "===\n\n");

    kern::Kernel kernel = spbench::makeEvalKernel("6.8");
    core::InsertionDatasetOptions opts;
    opts.corpus_size = 150;
    opts.insertions_per_base = 120;
    auto dataset = core::collectInsertionDataset(kernel, opts);
    std::printf("dataset: %zu bases, %zu successful insertions, "
                "%zu/%zu train/eval examples\n\n",
                dataset.bases.size(), dataset.successful_insertions,
                dataset.train.size(), dataset.eval.size());
    if (dataset.train.empty() || dataset.eval.empty()) {
        std::printf("insufficient data; skipping\n");
        return 0;
    }

    core::PmmConfig config;
    config.gnn_layers = 2;  // the insertion task needs less context
    core::InsertionModel model(config);
    core::InsertionTrainOptions train_opts;
    train_opts.epochs = 6;
    auto learned = core::trainInsertionModel(model, dataset, train_opts);
    auto random = core::evaluateRandomInsertion(dataset, dataset.eval,
                                                0xabc);

    auto pct = [](double v) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * v);
        return std::string(buf);
    };
    std::printf("%s\n",
                formatTable({"Selector", "Position acc.",
                             "Variant top-1", "Variant top-5"},
                            {{"PMM (insertion heads)",
                              pct(learned.position_f1),
                              pct(learned.variant_top1),
                              pct(learned.variant_top5)},
                             {"Random", pct(random.position_f1),
                              pct(random.variant_top1),
                              pct(random.variant_top5)}})
                    .c_str());
    std::printf("shape check: learned >> random on both subtasks -> "
                "%s\n",
                (learned.position_f1 > 2 * random.position_f1 &&
                 learned.variant_top1 > 2 * random.variant_top1)
                    ? "HOLDS"
                    : "CHECK");
    return 0;
}
