#include "core/directed.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"

namespace sp::core {

std::vector<uint32_t>
distanceToBlock(const kern::Kernel &kernel, uint32_t target)
{
    return distanceToBlocks(kernel, {target});
}

std::vector<uint32_t>
distanceToBlocks(const kern::Kernel &kernel,
                 const std::vector<uint32_t> &targets)
{
    constexpr uint32_t kUnreachable = ~0u;
    std::vector<uint32_t> dist(kernel.blocks().size(), kUnreachable);
    SP_ASSERT(!targets.empty());

    // Predecessor lists from the static CFG.
    std::vector<std::vector<uint32_t>> preds(kernel.blocks().size());
    for (auto [from, to] : kernel.staticEdges())
        preds[to].push_back(from);

    // Multi-source BFS: every target seeds the queue at distance 0,
    // so dist[b] is the distance to the nearest target.
    std::deque<uint32_t> queue;
    for (const uint32_t target : targets) {
        SP_ASSERT(target < kernel.blocks().size());
        if (dist[target] != 0) {
            dist[target] = 0;
            queue.push_back(target);
        }
    }
    while (!queue.empty()) {
        const uint32_t block = queue.front();
        queue.pop_front();
        for (uint32_t pred : preds[block]) {
            if (dist[pred] == kUnreachable) {
                dist[pred] = dist[block] + 1;
                queue.push_back(pred);
            }
        }
    }
    return dist;
}

/** The distance-guided base pick on the campaign scheduler seam. */
class DistanceScheduler : public fuzz::Scheduler
{
  public:
    explicit DistanceScheduler(std::vector<uint32_t> distances)
        : distances_(std::move(distances))
    {
    }

    const fuzz::CorpusEntry &
    pick(const fuzz::Corpus &corpus, Rng &rng) override
    {
        // Snapshot the size once: concurrent workers may grow the
        // corpus mid-loop, and both the weight vector and the final
        // index must stay inside one consistent bound. Entries are
        // never removed, so indices below `n` remain valid; the
        // shard-major index→entry mapping may shift under concurrent
        // admissions (a documented momentary-handle caveat), which
        // only perturbs which frontier entry a weight lands on.
        const size_t n = corpus.size();
        SP_ASSERT(n > 0);
        std::vector<double> weights(n);
        for (size_t i = 0; i < n; ++i) {
            uint32_t best = ~0u;
            for (uint32_t block :
                 corpus.entry(i).result.coverage.blocks()) {
                if (block < distances_.size())
                    best = std::min(best, distances_[block]);
            }
            // Entries at the frontier of the target dominate; entries
            // that cannot reach it at all keep a small exploration mass.
            weights[i] = best == ~0u
                             ? 0.05
                             : 1.0 / (1.0 + static_cast<double>(best) *
                                                static_cast<double>(best));
        }
        return corpus.entry(rng.weightedIndex(weights));
    }

  private:
    const std::vector<uint32_t> distances_;
};

namespace {

DirectedResult
runDirected(const kern::Kernel &kernel, const DirectedOptions &opts,
            std::unique_ptr<mut::Localizer> localizer)
{
    fuzz::FuzzOptions fuzz_opts = opts.fuzz;
    fuzz_opts.exec_budget = opts.exec_budget;
    fuzz_opts.seed = opts.seed;
    fuzz_opts.scheduler =
        makeDistanceScheduler(kernel, opts.target_block);

    fuzz::Fuzzer fuzzer(kernel, std::move(fuzz_opts),
                        std::move(localizer));
    const uint32_t target = opts.target_block;
    auto report = fuzzer.runUntil([target](const fuzz::Fuzzer &f) {
        return f.corpus().totalCoverage().containsBlock(target);
    });

    DirectedResult result;
    result.reached =
        fuzzer.corpus().totalCoverage().containsBlock(target);
    result.execs_total = report.execs;
    result.execs_to_reach = result.reached ? report.execs : 0;
    return result;
}

}  // namespace

std::shared_ptr<fuzz::Scheduler>
makeDistanceScheduler(const kern::Kernel &kernel, uint32_t target)
{
    return std::make_shared<DistanceScheduler>(
        distanceToBlock(kernel, target));
}

std::shared_ptr<fuzz::Scheduler>
makeDistanceScheduler(const kern::Kernel &kernel,
                      const std::vector<uint32_t> &targets)
{
    return std::make_shared<DistanceScheduler>(
        distanceToBlocks(kernel, targets));
}

DirectedResult
runSyzDirect(const kern::Kernel &kernel, const DirectedOptions &opts)
{
    return runDirected(kernel, opts,
                       std::make_unique<mut::RandomLocalizer>());
}

DirectedResult
runSnowplowD(const kern::Kernel &kernel, const Pmm &model,
             const DirectedOptions &opts)
{
    SnowplowOptions snowplow_opts;
    snowplow_opts.directed_targets = {opts.target_block};
    auto localizer = std::make_unique<PmmLocalizer>(kernel, model,
                                                    std::move(snowplow_opts));
    return runDirected(kernel, opts, std::move(localizer));
}

MultiDirectedResult
runSnowplowD(const kern::Kernel &kernel, const Pmm &model,
             const std::vector<uint32_t> &targets,
             const DirectedOptions &opts)
{
    SP_ASSERT(!targets.empty());
    SnowplowOptions snowplow_opts;
    snowplow_opts.directed_targets = targets;
    auto localizer = std::make_unique<PmmLocalizer>(
        kernel, model, std::move(snowplow_opts));

    fuzz::FuzzOptions fuzz_opts = opts.fuzz;
    fuzz_opts.exec_budget = opts.exec_budget;
    fuzz_opts.seed = opts.seed;
    fuzz_opts.scheduler = makeDistanceScheduler(kernel, targets);

    fuzz::Fuzzer fuzzer(kernel, std::move(fuzz_opts),
                        std::move(localizer));
    auto report = fuzzer.runUntil([&targets](const fuzz::Fuzzer &f) {
        const auto &coverage = f.corpus().totalCoverage();
        for (const uint32_t target : targets) {
            if (!coverage.containsBlock(target))
                return false;
        }
        return true;
    });

    MultiDirectedResult result;
    result.execs_total = report.execs;
    const auto &coverage = fuzzer.corpus().totalCoverage();
    for (const uint32_t target : targets) {
        if (coverage.containsBlock(target))
            result.reached.push_back(target);
    }
    return result;
}

}  // namespace sp::core
