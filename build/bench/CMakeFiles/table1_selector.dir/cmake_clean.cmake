file(REMOVE_RECURSE
  "CMakeFiles/table1_selector.dir/table1_selector.cc.o"
  "CMakeFiles/table1_selector.dir/table1_selector.cc.o.d"
  "table1_selector"
  "table1_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
