#include "exec/executor.h"

#include "obs/timer.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace sp::exec {

Executor::Executor(const kern::Kernel &kernel, const ExecOptions &opts)
    : kernel_(kernel), opts_(opts), noise_(opts.noise_seed),
      backend_(makeExecBackend(kernel, opts.backend))
{
}

ExecResult
Executor::run(const prog::Prog &prog)
{
    SP_TIMED("exec.run_us");
    // Execute-stage span lives here, not in the campaign loop, so the
    // legacy Fuzzer and localizer probe runs are traced too (arg =
    // program length).
    obs::TraceSpan trace_span(obs::SpanKind::Execute,
                              prog.calls.size());
    ++programs_executed_;
    ExecResult result =
        backend_->run(prog, opts_.deterministic ? nullptr : &noise_);
    calls_executed_ += result.calls.size();

    if (obs::timingEnabled()) {
        static obs::Histogram &blocks_hist =
            obs::Registry::global().histogram("exec.coverage_blocks");
        static obs::Histogram &edges_hist =
            obs::Registry::global().histogram("exec.coverage_edges");
        blocks_hist.record(
            static_cast<double>(result.coverage.blockCount()));
        edges_hist.record(
            static_cast<double>(result.coverage.edgeCount()));
    }
    return result;
}

ExecutorPool::ExecutorPool(const kern::Kernel &kernel,
                           const ExecOptions &base, size_t count)
{
    SP_ASSERT(count > 0, "executor pool needs at least one worker");
    executors_.reserve(count);
    for (size_t w = 0; w < count; ++w) {
        ExecOptions opts = base;
        opts.noise_seed = splitSeed(base.noise_seed, w);
        executors_.push_back(std::make_unique<Executor>(kernel, opts));
    }
}

uint64_t
ExecutorPool::totalCallsExecuted() const
{
    uint64_t total = 0;
    for (const auto &executor : executors_)
        total += executor->callsExecuted();
    return total;
}

uint64_t
ExecutorPool::totalProgramsExecuted() const
{
    uint64_t total = 0;
    for (const auto &executor : executors_)
        total += executor->programsExecuted();
    return total;
}

}  // namespace sp::exec
