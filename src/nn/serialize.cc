#include "nn/serialize.h"

#include <cstdio>
#include <memory>

#include "util/logging.h"

namespace sp::nn {

namespace {

constexpr uint64_t kMagic = 0x53504e4e434b5031ULL;  // "SPNNCKP1"

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
void
writeRaw(std::FILE *f, const T &value)
{
    if (std::fwrite(&value, sizeof(T), 1, f) != 1)
        SP_FATAL("checkpoint write failed");
}

template <typename T>
void
readRaw(std::FILE *f, T &value)
{
    if (std::fread(&value, sizeof(T), 1, f) != 1)
        SP_FATAL("checkpoint read failed (truncated file?)");
}

}  // namespace

void
saveParameters(const Module &module, const std::string &path)
{
    FileHandle f(std::fopen(path.c_str(), "wb"));
    if (!f)
        SP_FATAL("cannot open checkpoint for writing: %s", path.c_str());

    writeRaw(f.get(), kMagic);
    const uint64_t count = module.parameters().size();
    writeRaw(f.get(), count);
    for (const auto &p : module.parameters()) {
        const uint64_t name_len = p.name.size();
        writeRaw(f.get(), name_len);
        if (std::fwrite(p.name.data(), 1, p.name.size(), f.get()) !=
            p.name.size()) {
            SP_FATAL("checkpoint write failed");
        }
        const int64_t rows = p.tensor.rows();
        const int64_t cols = p.tensor.cols();
        writeRaw(f.get(), rows);
        writeRaw(f.get(), cols);
        const auto &data = p.tensor.data();
        if (std::fwrite(data.data(), sizeof(float), data.size(), f.get()) !=
            data.size()) {
            SP_FATAL("checkpoint write failed");
        }
    }
}

bool
loadParameters(Module &module, const std::string &path)
{
    FileHandle f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;

    uint64_t magic = 0;
    readRaw(f.get(), magic);
    if (magic != kMagic)
        SP_FATAL("bad checkpoint magic in %s", path.c_str());
    uint64_t count = 0;
    readRaw(f.get(), count);
    if (count != module.parameters().size()) {
        SP_FATAL("checkpoint has %llu parameters, module has %zu",
                 static_cast<unsigned long long>(count),
                 module.parameters().size());
    }
    for (const auto &p : module.parameters()) {
        uint64_t name_len = 0;
        readRaw(f.get(), name_len);
        std::string name(name_len, '\0');
        if (name_len > 0 &&
            std::fread(name.data(), 1, name_len, f.get()) != name_len) {
            SP_FATAL("checkpoint read failed");
        }
        if (name != p.name)
            SP_FATAL("checkpoint parameter %s does not match module "
                     "parameter %s", name.c_str(), p.name.c_str());
        int64_t rows = 0, cols = 0;
        readRaw(f.get(), rows);
        readRaw(f.get(), cols);
        if (rows != p.tensor.rows() || cols != p.tensor.cols())
            SP_FATAL("checkpoint shape mismatch for %s", name.c_str());
        // Parameter handles are shared; write through the node.
        auto &data = const_cast<Parameter &>(p).tensor.mutableData();
        if (std::fread(data.data(), sizeof(float), data.size(), f.get()) !=
            data.size()) {
            SP_FATAL("checkpoint read failed");
        }
    }
    return true;
}

}  // namespace sp::nn
