#include "kernel/state.h"

#include "util/logging.h"

namespace sp::kern {

KernelState::KernelState(uint16_t num_flags)
    : flags_(num_flags, false)
{
}

uint64_t
KernelState::allocResource(ResourceKindId kind)
{
    resources_.push_back(Resource{kind, true});
    return resources_.size();  // 1-based id
}

bool
KernelState::alive(uint64_t id) const
{
    if (id == 0 || id > resources_.size())
        return false;
    return resources_[id - 1].alive;
}

bool
KernelState::aliveOfKind(uint64_t id, ResourceKindId kind) const
{
    return alive(id) && resources_[id - 1].kind == kind;
}

ResourceKindId
KernelState::kindOf(uint64_t id) const
{
    SP_ASSERT(alive(id), "kindOf on dead resource");
    return resources_[id - 1].kind;
}

void
KernelState::release(uint64_t id)
{
    if (alive(id))
        resources_[id - 1].alive = false;
}

size_t
KernelState::liveCount() const
{
    size_t count = 0;
    for (const auto &r : resources_)
        count += r.alive;
    return count;
}

void
KernelState::setFlag(uint16_t index, bool value)
{
    SP_ASSERT(index < flags_.size(), "flag index out of range");
    flags_[index] = value;
}

bool
KernelState::flag(uint16_t index) const
{
    SP_ASSERT(index < flags_.size(), "flag index out of range");
    return flags_[index];
}

}  // namespace sp::kern
