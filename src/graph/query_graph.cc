#include "graph/query_graph.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace sp::graph {

size_t
QueryGraph::countNodes(NodeKind kind) const
{
    size_t count = 0;
    for (const auto &node : nodes)
        count += (node.kind == kind);
    return count;
}

size_t
QueryGraph::countEdges(EdgeKind kind) const
{
    size_t count = 0;
    for (const auto &edge : edges)
        count += (edge.kind == kind);
    return count;
}

std::vector<uint32_t>
alternativeFrontier(const kern::Kernel &kernel,
                    const exec::CoverageSet &cov)
{
    std::unordered_set<uint32_t> frontier;
    for (uint32_t block : cov.blocks()) {
        for (uint32_t succ : kernel.successors(block)) {
            if (!cov.containsBlock(succ))
                frontier.insert(succ);
        }
    }
    std::vector<uint32_t> result(frontier.begin(), frontier.end());
    std::sort(result.begin(), result.end());
    return result;
}

QueryGraph
buildQueryGraph(const kern::Kernel &kernel, const prog::Prog &prog,
                const exec::ExecResult &result,
                const std::vector<uint32_t> &targets)
{
    QueryGraph graph;
    const std::unordered_set<uint32_t> target_set(targets.begin(),
                                                  targets.end());

    // --- Program side: syscall and argument nodes -----------------------
    std::vector<uint32_t> syscall_node_of_call(prog.calls.size(), 0);
    // Per call: flattened slot index -> argument node index (for the
    // SlotRead data-dependence edges).
    std::vector<std::unordered_map<uint16_t, uint32_t>> arg_node_of_slot(
        prog.calls.size());
    for (size_t i = 0; i < prog.calls.size(); ++i) {
        Node node;
        node.kind = NodeKind::Syscall;
        node.syscall_id = prog.calls[i].decl->id;
        node.call_index = static_cast<uint16_t>(i);
        syscall_node_of_call[i] =
            static_cast<uint32_t>(graph.nodes.size());
        graph.nodes.push_back(node);

        if (i > 0) {
            graph.edges.push_back(Edge{syscall_node_of_call[i - 1],
                                       syscall_node_of_call[i],
                                       EdgeKind::CallOrder});
        }

        // Slot ownership: every slot whose SlotDesc path equals a
        // mutation point's path belongs to that point (covers the two
        // buffer slots and pointer-nullness slots).
        const auto slot_descs =
            prog::enumerateSlots(*prog.calls[i].decl);

        uint32_t prev_arg_node = kern::kNoBlock;
        for (auto &point : prog::mutationPoints(prog.calls[i])) {
            Node arg_node;
            arg_node.kind = NodeKind::Argument;
            arg_node.call_index = static_cast<uint16_t>(i);
            arg_node.arg_slot =
                static_cast<uint16_t>(point.first_slot);
            arg_node.arg_type_kind =
                static_cast<uint8_t>(point.type->kind);
            const auto arg_index =
                static_cast<uint32_t>(graph.nodes.size());
            graph.nodes.push_back(arg_node);
            graph.argument_nodes.push_back(arg_index);
            for (const auto &desc : slot_descs) {
                if (desc.path == point.path) {
                    arg_node_of_slot[i].emplace(
                        static_cast<uint16_t>(desc.index), arg_index);
                }
            }
            mut::ArgLocation loc;
            loc.call_index = i;
            loc.point = point;
            graph.argument_locations.push_back(std::move(loc));

            // Data flow: argument feeds its call.
            graph.edges.push_back(Edge{arg_index,
                                       syscall_node_of_call[i],
                                       EdgeKind::ArgInOut});
            // Resource data flow: producing call feeds this argument.
            const prog::Arg &value =
                prog::argAtPath(prog.calls[i], point.path);
            if (value.type->kind == prog::TypeKind::Resource &&
                value.result_ref >= 0 &&
                static_cast<size_t>(value.result_ref) < i) {
                graph.edges.push_back(
                    Edge{syscall_node_of_call[static_cast<size_t>(
                             value.result_ref)],
                         arg_index, EdgeKind::ArgInOut});
            }
            // Argument ordering within the call.
            if (prev_arg_node != kern::kNoBlock) {
                graph.edges.push_back(Edge{prev_arg_node, arg_index,
                                           EdgeKind::ArgOrder});
            }
            prev_arg_node = arg_index;
        }
    }

    // --- Kernel side: covered blocks and alternatives -------------------
    std::unordered_map<uint32_t, uint32_t> node_of_block;
    auto blockNode = [&](uint32_t block, NodeKind kind) -> uint32_t {
        auto it = node_of_block.find(block);
        if (it != node_of_block.end())
            return it->second;
        Node node;
        node.kind = kind;
        node.block = block;
        node.is_target =
            kind == NodeKind::Alternative && target_set.count(block) != 0;
        const auto index = static_cast<uint32_t>(graph.nodes.size());
        graph.nodes.push_back(node);
        node_of_block.emplace(block, index);
        return index;
    };

    for (uint32_t block : result.coverage.blocks())
        blockNode(block, NodeKind::Covered);

    // Covered control-flow edges (executed directional pairs that are
    // also static CFG edges; interrupt-noise pairs are excluded).
    for (uint64_t key : result.coverage.edges()) {
        const auto from = static_cast<uint32_t>(key >> 32);
        const auto to = static_cast<uint32_t>(key & 0xffffffffu);
        const auto succ = kernel.successors(from);
        if (std::find(succ.begin(), succ.end(), to) == succ.end())
            continue;
        graph.edges.push_back(Edge{blockNode(from, NodeKind::Covered),
                                   blockNode(to, NodeKind::Covered),
                                   EdgeKind::CoveredFlow});
    }

    // Alternatives: one-hop not-taken successors.
    for (uint32_t covered : result.coverage.blocks()) {
        for (uint32_t succ : kernel.successors(covered)) {
            if (result.coverage.containsBlock(succ))
                continue;
            graph.edges.push_back(
                Edge{blockNode(covered, NodeKind::Covered),
                     blockNode(succ, NodeKind::Alternative),
                     EdgeKind::UncoveredFlow});
        }
    }

    // --- Context-switch and slot-read edges ------------------------------
    std::unordered_set<uint64_t> slot_read_seen;
    for (const auto &call_trace : result.calls) {
        if (call_trace.blocks.empty())
            continue;

        // SlotRead: executed branch blocks -> the argument they test.
        for (uint32_t block : call_trace.blocks) {
            const auto &bb = kernel.block(block);
            if (bb.term != kern::Term::Branch ||
                bb.handler != call_trace.syscall_id) {
                continue;  // interrupt-noise blocks are skipped
            }
            switch (bb.cond.kind) {
              case kern::CondKind::Always:
              case kern::CondKind::StateFlagSet:
                continue;
              default:
                break;
            }
            const auto &slot_map =
                arg_node_of_slot[call_trace.call_index];
            auto slot_it = slot_map.find(bb.cond.slot);
            if (slot_it == slot_map.end())
                continue;  // const/len slots have no mutable owner
            const uint64_t key =
                (static_cast<uint64_t>(block) << 32) | slot_it->second;
            if (!slot_read_seen.insert(key).second)
                continue;
            graph.edges.push_back(
                Edge{blockNode(block, NodeKind::Covered),
                     slot_it->second, EdgeKind::SlotRead});
        }

        const uint32_t syscall_node =
            syscall_node_of_call[call_trace.call_index];
        const uint32_t entry =
            kernel.handler(call_trace.syscall_id).entry;
        graph.edges.push_back(Edge{syscall_node,
                                   blockNode(entry, NodeKind::Covered),
                                   EdgeKind::CtxSwitch});
        const uint32_t exit_block = call_trace.blocks.back();
        graph.edges.push_back(
            Edge{blockNode(exit_block, NodeKind::Covered), syscall_node,
                 EdgeKind::CtxSwitch});
    }

    return graph;
}

}  // namespace sp::graph
