/**
 * @file
 * Call-insertion localization — the paper's §6 extension, implemented.
 *
 * The paper argues PMM's methodology "can be used to localize system
 * call insertion with no representational or training changes", and
 * that instantiation (which syscall variant to insert) needs only "a
 * minimal change in the architecture": predicting one of the syscall
 * variants instead of a binary label. This module does both:
 *
 *  - dataset: random *call-insertion* mutations of a seed corpus;
 *    insertions whose execution covered new blocks become samples
 *    ⟨base, position, inserted-variant, targets⟩ with the same
 *    one-hop noisy-target construction as argument mutations;
 *  - model: the PMM backbone (shared graph encoder + typed message
 *    passing) with two heads — a binary INSERT-AFTER head over syscall
 *    nodes (localization) and a softmax head over syscall variants on
 *    the pooled graph state (instantiation);
 *  - evaluation: position selection F1 and variant top-1/top-5
 *    accuracy against random baselines.
 */
#ifndef SP_CORE_INSERTION_H
#define SP_CORE_INSERTION_H

#include <memory>

#include "core/dataset.h"
#include "core/pmm.h"

namespace sp::core {

/** One insertion training example. */
struct InsertionExample
{
    uint32_t base_index = 0;
    /** Insert after this call index (the syscall node to label). */
    uint16_t position = 0;
    /** Syscall id of the inserted variant (instantiation target). */
    uint32_t syscall_id = 0;
    std::vector<uint32_t> targets;
};

/** Insertion dataset (bases shared with the same layout as Dataset). */
struct InsertionDataset
{
    const kern::Kernel *kernel = nullptr;
    std::vector<prog::Prog> bases;
    std::vector<exec::ExecResult> base_results;
    std::vector<InsertionExample> train;
    std::vector<InsertionExample> eval;
    size_t successful_insertions = 0;
};

/** Collection knobs. */
struct InsertionDatasetOptions
{
    size_t corpus_size = 200;
    size_t insertions_per_base = 150;
    uint64_t seed = 11;
    double train_fraction = 0.85;
};

/** Run the insertion-mutation campaign. */
InsertionDataset collectInsertionDataset(
    const kern::Kernel &kernel, const InsertionDatasetOptions &opts);

/** Two-headed insertion model on the PMM backbone. */
class InsertionModel : public nn::Module
{
  public:
    explicit InsertionModel(const PmmConfig &config = {});

    /**
     * Forward: returns {position_logits (rank-1 over syscall nodes),
     * variant_logits ([1, kSyscallVocab])}.
     */
    std::pair<nn::Tensor, nn::Tensor>
    forward(const graph::EncodedGraph &graph,
            const std::vector<int32_t> &syscall_nodes) const;

    const Pmm &backbone() const { return *backbone_; }

  private:
    std::unique_ptr<Pmm> backbone_;
    std::unique_ptr<nn::Mlp> position_head_;
    std::unique_ptr<nn::Mlp> variant_head_;
};

/** Insertion-task metrics. */
struct InsertionMetrics
{
    double position_f1 = 0.0;        ///< per-example, like Table 1
    double variant_top1 = 0.0;
    double variant_top5 = 0.0;
    size_t examples = 0;
};

/** Training knobs. */
struct InsertionTrainOptions
{
    int epochs = 8;
    float learning_rate = 3e-3f;
    float pos_weight = 2.0f;
    float grad_clip = 5.0f;
    uint64_t seed = 99;
    size_t max_train_examples = 0;
};

/** Train the insertion model; returns final eval metrics. */
InsertionMetrics trainInsertionModel(InsertionModel &model,
                                     const InsertionDataset &dataset,
                                     const InsertionTrainOptions &opts);

/** Evaluate the model over a split. */
InsertionMetrics evaluateInsertionModel(
    const InsertionModel &model, const InsertionDataset &dataset,
    const std::vector<InsertionExample> &split);

/** Random-choice baseline for the same metrics. */
InsertionMetrics evaluateRandomInsertion(
    const InsertionDataset &dataset,
    const std::vector<InsertionExample> &split, uint64_t seed);

}  // namespace sp::core

#endif  // SP_CORE_INSERTION_H
