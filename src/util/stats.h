/**
 * @file
 * Lightweight statistics accumulators used by benchmarks and the
 * evaluation harness: running mean/min/max/stddev and percentile
 * estimation from retained samples.
 */
#ifndef SP_UTIL_STATS_H
#define SP_UTIL_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace sp {

/** Running scalar statistics (Welford online mean/variance). */
class RunningStat
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /**
     * Fold another accumulator in (parallel Welford combine, Chan et
     * al.). Equivalent to replaying every observation `other` saw.
     * Used to merge per-thread metric shards.
     */
    void merge(const RunningStat &other);

    /** Reset to the empty state. */
    void clear() { *this = RunningStat{}; }

    /** Number of observations so far. */
    size_t count() const { return n_; }

    /** Mean of observations (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Smallest observation (+inf when empty). */
    double min() const;

    /** Largest observation (-inf when empty). */
    double max() const;

    /** Sample standard deviation (0 when fewer than two samples). */
    double stddev() const;

    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Sample-retaining distribution for percentile queries. */
class Distribution
{
  public:
    /** Record one sample. */
    void
    add(double x)
    {
        samples_.push_back(x);
        sorted_ = false;
    }

    /** Overwrite the sample at `index` (reservoir replacement). */
    void
    replace(size_t index, double x)
    {
        samples_.at(index) = x;
        sorted_ = false;
    }

    /** Append every sample of `other`. */
    void merge(const Distribution &other);

    /** Drop all samples. */
    void clear();

    /** Number of recorded samples. */
    size_t count() const { return samples_.size(); }

    /**
     * Percentile in [0, 100] by nearest-rank on the sorted samples.
     * Returns 0 when empty. The sort is cached across queries and
     * invalidated by add()/merge(), so repeated p50/p95/p99 reads of a
     * stable distribution cost one sort total.
     */
    double percentile(double p) const;

    /** Mean of the samples (0 when empty). */
    double mean() const;

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Format a fixed-width text table (used by the benchmark harnesses to
 * print paper-style tables). Rows must all have `headers.size()` cells.
 */
std::string formatTable(const std::vector<std::string> &headers,
                        const std::vector<std::vector<std::string>> &rows);

}  // namespace sp

#endif  // SP_UTIL_STATS_H
