/**
 * @file
 * Coverage accounting: sets of covered basic blocks and of directed
 * block-to-block edges ("unique, directional pairs of basic blocks",
 * §5.3.1). Blocks drive the mutation-query graph and dataset targets;
 * edges are the metric the paper's Figure 6 reports.
 */
#ifndef SP_EXEC_COVERAGE_H
#define SP_EXEC_COVERAGE_H

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace sp::exec {

/** Pack a directed edge into one key. */
inline uint64_t
edgeKey(uint32_t from, uint32_t to)
{
    return (static_cast<uint64_t>(from) << 32) | to;
}

/** A set of covered blocks and edges. */
class CoverageSet
{
  public:
    /**
     * Fold one call's block trace in: every visited block, and every
     * consecutive pair as a directed edge.
     */
    void addTrace(const std::vector<uint32_t> &trace);

    /** Merge another coverage set into this one. */
    void merge(const CoverageSet &other);

    /** Blocks/edges in `other` that this set lacks. */
    size_t countNewBlocks(const CoverageSet &other) const;
    size_t countNewEdges(const CoverageSet &other) const;

    /** Blocks in `other` absent here (the paper's c_ij \ c_i). */
    std::vector<uint32_t> newBlocks(const CoverageSet &other) const;

    bool containsBlock(uint32_t block) const
    {
        return blocks_.count(block) != 0;
    }
    bool containsEdge(uint32_t from, uint32_t to) const
    {
        return edges_.count(edgeKey(from, to)) != 0;
    }

    size_t blockCount() const { return blocks_.size(); }
    size_t edgeCount() const { return edges_.size(); }
    bool empty() const { return blocks_.empty(); }

    const std::unordered_set<uint32_t> &blocks() const { return blocks_; }
    const std::unordered_set<uint64_t> &edges() const { return edges_; }

  private:
    std::unordered_set<uint32_t> blocks_;
    std::unordered_set<uint64_t> edges_;
};

}  // namespace sp::exec

#endif  // SP_EXEC_COVERAGE_H
