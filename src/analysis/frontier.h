/**
 * @file
 * Offline coverage cartography: load a campaign's covmap snapshot log
 * (obs/covmap.h) back into a merged profile, classify blocks into
 * hot / warm / cold / unreached heat bands, group them by kernel
 * subsystem, and derive the ranked cold-frontier target set that
 * `fuzz --directed-from` feeds into Snowplow-D.
 *
 * Heat bands are percentile-relative, not absolute: over the multiset
 * of *reached* block hit counts, cold = at or below the p10 hit count
 * and hot = at or above the p90 (ties included, so the bands are
 * deterministic for a given map). Frontier targets are a property of
 * the CFG geometry, not the bands: every unreached static successor of
 * a reached two-way branch, ranked by how often the campaign hit the
 * guarding block without ever crossing (obs::computeFrontier — the
 * same function the live /coverage summary uses, so online and offline
 * rankings agree).
 *
 * Subsystems come from syscall names: the owning handler's name up to
 * the '$' variant separator ("ioctl$scsi" → "ioctl" family is *not*
 * the interesting axis here — the variant suffix names the subsystem,
 * so "scsi"), with the generated kernels' role prefixes
 * (open_/use_/close_) stripped: "sys3$open_res1" and "sys9$use_res1"
 * are both subsystem "res1".
 */
#ifndef SP_ANALYSIS_FRONTIER_H
#define SP_ANALYSIS_FRONTIER_H

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/kernel.h"
#include "obs/covmap.h"
#include "util/json.h"

namespace sp::analysis {

/** One covmap_window record of the snapshot log. */
struct WindowRecord
{
    uint64_t execs = 0;
    std::vector<uint32_t> new_blocks;
    uint64_t block_hit_delta = 0;  ///< sum of the window's block deltas
    uint64_t stray_edges = 0;
    size_t blocks_hit = 0;         ///< cumulative at window end
    size_t edges_hit = 0;
    size_t frontier_size = 0;
};

/** A snapshot log folded back into the final merged map. */
struct CovProfile
{
    size_t num_blocks = 0;
    /** Static edges in the log header's dense order. */
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    /** Cumulative hit counts reconstructed from the window deltas. */
    std::vector<uint64_t> block_hits;
    std::vector<uint64_t> edge_hits;
    uint64_t stray_edges = 0;
    uint64_t execs = 0;
    std::vector<WindowRecord> windows;
    /** The parsed covmap_header line (campaign fields like "kernel"
     *  spliced in by the writer stay reachable through find()). */
    json::Value header;

    std::string error;  ///< empty = loaded successfully
    bool ok() const { return error.empty(); }

    /** Parse a JSONL snapshot log; on failure `error` says why. */
    static CovProfile load(const std::string &path);

    /** The plan implied by the header (for frontier computation). */
    obs::CovMapPlan plan() const
    {
        return obs::CovMapPlan::build(num_blocks, edges);
    }
};

/** Heat band of one block. */
enum class Heat { Unreached, Cold, Warm, Hot };

const char *heatName(Heat heat);

/** Percentile-derived band boundaries over reached-block hit counts. */
struct HeatThresholds
{
    uint64_t cold_max = 0;  ///< reached && hits <= cold_max → Cold
    uint64_t hot_min = 0;   ///< hits >= hot_min → Hot
};

/** p10/p90 boundaries over the *reached* entries of `block_hits`.
 *  With no reached blocks both thresholds are 0. */
HeatThresholds heatThresholds(const std::vector<uint64_t> &block_hits);

/** Band of a single block's hit count under `t`. */
Heat heatOf(uint64_t hits, const HeatThresholds &t);

/** One ranked cold-frontier target with its kernel attribution. */
struct FrontierTarget
{
    uint32_t target = 0;      ///< unreached successor block
    uint32_t guard = 0;       ///< reached branch block guarding it
    uint64_t guard_hits = 0;
    std::string subsystem;    ///< "" when no kernel was supplied
    bool bug_site = false;    ///< target is a planted bug block
};

/**
 * The ranked cold-frontier target set of a profile. `kernel`, when
 * non-null, attributes each target to its subsystem and flags planted
 * bug sites; it must be the kernel the campaign ran (same seed /
 * version), or attribution is meaningless. `cap` > 0 truncates.
 */
std::vector<FrontierTarget> frontierTargets(const CovProfile &profile,
                                            const kern::Kernel *kernel,
                                            size_t cap = 0);

/** Subsystem of a syscall name (see file comment for the rules). */
std::string subsystemOfSyscall(const std::string &syscall_name);

/** Per-block subsystem names via each block's owning handler. */
std::vector<std::string> blockSubsystems(const kern::Kernel &kernel);

/** Aggregated heat of one subsystem's blocks. */
struct SubsystemHeat
{
    std::string name;
    size_t blocks = 0;     ///< blocks owned by the subsystem
    size_t reached = 0;
    size_t hot = 0;
    size_t cold = 0;
    size_t frontier = 0;   ///< frontier targets inside the subsystem
    uint64_t total_hits = 0;
};

/**
 * Group a profile's blocks by subsystem and fold heat bands + frontier
 * membership. Sorted by total hits descending, name ascending (the
 * heat-report order).
 */
std::vector<SubsystemHeat> subsystemHeat(
    const CovProfile &profile, const kern::Kernel &kernel,
    const HeatThresholds &thresholds,
    const std::vector<FrontierTarget> &targets);

}  // namespace sp::analysis

#endif  // SP_ANALYSIS_FRONTIER_H
