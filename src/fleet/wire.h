/**
 * @file
 * The fabric wire protocol: versioned, CRC-framed, length-prefixed
 * binary messages over plain POSIX TCP (DESIGN.md §16).
 *
 * Frame layout (host byte order — the fabric links same-architecture
 * processes, single host or homogeneous fleet, exactly like the shard
 * format in data/format.h whose discipline this mirrors):
 *
 *   u32 magic   'S''P''F''1'
 *   u16 version kWireVersion
 *   u16 type    MsgType
 *   u32 len     payload bytes that follow (<= kMaxFramePayload)
 *   u32 crc     data::crc32 over (type, len, payload)
 *   u8  payload[len]
 *
 * Every defect a peer can present — torn header, truncated payload,
 * oversized declared length, CRC mismatch, version skew — maps to a
 * distinct RecvStatus so the receiver can drop exactly that
 * connection and keep serving everyone else. Nothing here trusts the
 * peer: payload decoding goes through WireReader, which turns any
 * structural overrun into a decode failure instead of an assertion.
 */
#ifndef SP_FLEET_WIRE_H
#define SP_FLEET_WIRE_H

#include <cstdint>
#include <string>
#include <vector>

#include "data/format.h"

namespace sp::fleet {

constexpr uint32_t kWireMagic = 0x31465053;  // "SPF1" little-endian
constexpr uint16_t kWireVersion = 1;
/** Per-frame payload bound (same scale as data::kMaxRecordPayload). */
constexpr uint32_t kMaxFramePayload = 64u << 20;

/** Frame types of the coordinator/node conversation. */
enum class MsgType : uint16_t {
    Hello = 1,      ///< node -> coord: protocol version + node name
    HelloAck,       ///< coord -> node: node id + campaign config
    LeaseRequest,   ///< node -> coord: give me work
    LeaseGrant,     ///< coord -> node: slot range + seed batch (or done)
    LeaseResult,    ///< node -> coord: everything one lease produced
    ResultAck,      ///< coord -> node: accepted/stale + dedup tallies
    Bye,            ///< node -> coord: graceful goodbye
    Error,          ///< either way: human-readable rejection, then close
};

/** One received frame. */
struct Frame
{
    MsgType type = MsgType::Error;
    std::vector<uint8_t> payload;
};

/** Outcome of one recvFrame(). */
enum class RecvStatus {
    Ok,
    Eof,          ///< clean close before any header byte
    Malformed,    ///< torn frame / bad magic / oversized len / bad CRC
    VersionSkew,  ///< well-formed header from an incompatible peer
};

/**
 * Frame a payload and write it to `fd`. `bytes` (optional) accumulates
 * wire bytes for the fleet.bytes_tx counter. False when the peer is
 * gone (short write).
 */
bool sendFrame(int fd, MsgType type, const std::vector<uint8_t> &payload,
               uint64_t *bytes = nullptr);

/**
 * Read one frame. On anything but Ok the connection is unusable (the
 * stream position is unknown) and must be closed; `err` (optional)
 * receives a one-line diagnosis.
 */
RecvStatus recvFrame(int fd, Frame *out, uint64_t *bytes = nullptr,
                     std::string *err = nullptr);

/**
 * Bounds-checked payload cursor. Unlike data::PayloadReader (whose
 * overrun is an assertion, appropriate for CRC-verified shard files we
 * wrote ourselves), an overrun here just trips ok() — a peer that
 * framed garbage gets its connection dropped, not our process.
 */
class WireReader
{
  public:
    WireReader(const uint8_t *data, size_t len) : data_(data), len_(len) {}
    explicit WireReader(const std::vector<uint8_t> &payload)
        : WireReader(payload.data(), payload.size())
    {
    }

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();
    std::string str();

    bool ok() const { return ok_; }
    size_t remaining() const { return len_ - pos_; }

  private:
    const void *take(size_t len);

    const uint8_t *data_ = nullptr;
    size_t len_ = 0;
    size_t pos_ = 0;
    bool ok_ = true;
};

/** @name Message payloads
 * Each message is a plain struct with encode() -> payload bytes and
 * decode(payload) -> false on structural garbage. */
/** @{ */

struct HelloMsg
{
    uint32_t wire_version = kWireVersion;
    std::string node_name;

    std::vector<uint8_t> encode() const;
    bool decode(const std::vector<uint8_t> &payload);
};

/** The campaign config a node needs to mirror the coordinator. */
struct HelloAckMsg
{
    uint32_t node_id = 0;
    uint64_t campaign_seed = 1;
    uint64_t budget = 0;
    uint64_t checkpoint_every = 0;
    uint8_t thompson = 0;        ///< node lease policy: 0 static
    uint8_t covmap = 1;          ///< nodes profile + push cov deltas
    uint8_t harvest = 0;         ///< nodes harvest + push shards
    uint32_t seed_corpus_size = 40;  ///< generated seeds, empty batch
    uint32_t lease_gen_seeds = 8;    ///< generated seeds atop a batch
    uint64_t kernel_seed = 2024;
    std::string kernel_version;
    uint32_t kernel_evolution = 0;
    uint64_t kernel_fingerprint = 0;

    std::vector<uint8_t> encode() const;
    bool decode(const std::vector<uint8_t> &payload);
};

struct LeaseGrantMsg
{
    uint8_t done = 0;     ///< campaign drained: disconnect
    uint64_t lease_id = 0;
    uint64_t begin = 0;
    uint64_t count = 0;   ///< 0 + !done: nothing now, retry shortly
    uint64_t node_seed = 0;
    /** Seed batch: recent fleet-corpus programs (formatProg texts). */
    std::vector<std::string> batch;

    std::vector<uint8_t> encode() const;
    bool decode(const std::vector<uint8_t> &payload);
};

/** One new-coverage program with its observed coverage sets. */
struct WireProgram
{
    std::string text;                 ///< formatProg rendering
    std::vector<uint32_t> blocks;     ///< covered blocks (deduped)
    std::vector<uint64_t> edges;      ///< covered packed edge keys
};

/** One crash observation (coordinator dedups by bug index). */
struct WireCrash
{
    uint32_t bug_index = 0;
    uint64_t slot = 0;                ///< global virtual-time slot
    std::string trigger;              ///< formatProg rendering
};

/** One posterior arm's pull/win deltas. */
struct WireArm
{
    uint32_t arm = 0;
    uint64_t pulls = 0;
    uint64_t wins = 0;
};

/** Everything one lease produced, pushed as a single atomic message. */
struct LeaseResultMsg
{
    uint64_t lease_id = 0;
    uint64_t execs = 0;
    std::vector<WireProgram> programs;
    std::vector<WireCrash> crashes;

    /** Covmap hit deltas on the lease grid (sparse index/delta). */
    bool have_cov = false;
    std::vector<std::pair<uint32_t, uint64_t>> block_deltas;
    std::vector<std::pair<uint32_t, uint64_t>> edge_deltas;
    uint64_t stray_edges = 0;

    /** Policy posterior deltas (per-arm pulls/wins of this lease). */
    bool have_policy = false;
    std::string policy_name;
    double pmm_share = 0.0;
    std::vector<WireArm> arms;

    /** Harvested training shard bytes (content-addressed at receipt). */
    bool have_shard = false;
    std::vector<uint8_t> shard;

    std::vector<uint8_t> encode() const;
    bool decode(const std::vector<uint8_t> &payload);
};

struct ResultAckMsg
{
    uint8_t accepted = 0;  ///< 0: stale lease, result dropped
    uint64_t new_programs = 0;
    uint64_t new_crashes = 0;

    std::vector<uint8_t> encode() const;
    bool decode(const std::vector<uint8_t> &payload);
};

struct ErrorMsg
{
    std::string message;

    std::vector<uint8_t> encode() const;
    bool decode(const std::vector<uint8_t> &payload);
};

/** @} */

}  // namespace sp::fleet

#endif  // SP_FLEET_WIRE_H
