file(REMOVE_RECURSE
  "CMakeFiles/fuzz_ext_test.dir/fuzz_ext_test.cc.o"
  "CMakeFiles/fuzz_ext_test.dir/fuzz_ext_test.cc.o.d"
  "fuzz_ext_test"
  "fuzz_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
