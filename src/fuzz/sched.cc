#include "fuzz/sched.h"

#include <algorithm>

#include "util/logging.h"

namespace sp::fuzz {

BudgetLedger::BudgetLedger(uint64_t budget, uint64_t align,
                           uint64_t start)
    : budget_(budget), align_(align == 0 ? 1 : align), next_(start),
      completed_(start)
{
}

BudgetGrant
BudgetLedger::claim(uint64_t want, bool bounded)
{
    SP_ASSERT(want > 0);
    uint64_t begin = next_.load(std::memory_order_relaxed);
    for (;;) {
        uint64_t count = want;
        if (bounded) {
            if (begin >= budget_)
                return {};
            count = std::min<uint64_t>(count, budget_ - begin);
        }
        // Trim to the checkpoint grid: a grant never spans a multiple
        // of align_, so the worker finishing the slot right before a
        // boundary owns that checkpoint.
        count = std::min<uint64_t>(count, align_ - begin % align_);
        if (next_.compare_exchange_weak(begin, begin + count,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
            return {begin, count};
        }
        // `begin` reloaded by the failed CAS; retry.
    }
}

}  // namespace sp::fuzz
