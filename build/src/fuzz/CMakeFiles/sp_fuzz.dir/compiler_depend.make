# Empty compiler generated dependencies file for sp_fuzz.
# This may be replaced when dependencies are built.
