# Empty compiler generated dependencies file for sec55_perf.
# This may be replaced when dependencies are built.
