# Empty dependencies file for table2_crashes.
# This may be replaced when dependencies are built.
