/**
 * @file
 * Differential campaign comparison: the offline half of the timeline
 * observatory (obs/timeline.h).
 *
 * A TimelineLog loads one delta-encoded `--timeline-out` artifact and
 * reconstructs the cumulative per-sample state; compare() aligns two
 * logs on their shared virtual-time grid and turns the pair into a
 * versioned `compare_report` — per-metric deltas, coverage-curve
 * comparisons (final edges, AUC, time-to-X%-of-baseline-edges),
 * latency-histogram shifts, and policy pmm-share / arm-posterior
 * divergence — with configurable regression thresholds. Virtual time
 * makes the alignment exact: both runs checkpoint on the same executed-
 * program grid, so sample i of A and sample i of B describe the same
 * amount of work regardless of machine or wall-clock speed.
 *
 * Verdict semantics: only the coverage curve and (when both artifacts
 * were recorded with timing enabled) latency p50 shifts produce
 * regression verdicts; counter deltas, crash counts and policy
 * divergence are informational — two policies legitimately produce
 * different operator mixes. A compared against itself yields zero
 * deltas and no regressions (the compare self-test).
 */
#ifndef SP_ANALYSIS_COMPARE_H
#define SP_ANALYSIS_COMPARE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sp::analysis {

/** Cumulative state reconstructed at one timeline sample. */
struct TimelineLogSample
{
    uint64_t execs = 0;
    uint64_t edges = 0;
    uint64_t blocks = 0;
    uint64_t crashes = 0;
    uint64_t corpus = 0;

    bool have_cov = false;
    uint64_t cov_blocks_hit = 0;
    uint64_t cov_edges_hit = 0;
    uint64_t cov_total_block_hits = 0;
    uint64_t cov_frontier_size = 0;
    uint64_t cov_stray_edges = 0;

    bool have_policy = false;
    std::string policy_name;
    double pmm_share = 0.0;
    /** arm -> (pulls, wins), cumulative. */
    std::map<int, std::pair<uint64_t, uint64_t>> arms;

    /** Cumulative counter values (reconstructed from deltas). */
    std::map<std::string, uint64_t> counters;
    /** Last emitted gauge values. */
    std::map<std::string, double> gauges;
    /** hist -> cumulative count. */
    std::map<std::string, uint64_t> hist_counts;
};

/** One histogram's final-record summary (full percentiles). */
struct TimelineFinalHist
{
    uint64_t count = 0;
    double mean = 0, min = 0, max = 0, stddev = 0;
    double p50 = 0, p90 = 0, p99 = 0;
};

/** One parsed `--timeline-out` artifact. */
struct TimelineLog
{
    std::string path;
    std::string error;  ///< empty = loaded
    int version = 0;
    bool timing = false;  ///< artifact recorded with timing enabled

    /** Per-grid-boundary samples, cumulative, ascending execs. */
    std::vector<TimelineLogSample> samples;

    bool has_final = false;
    TimelineLogSample final_state;  ///< the timeline_final record
    std::map<std::string, TimelineFinalHist> final_hists;

    bool ok() const { return error.empty(); }

    /** The run's end state: the final record, else the last sample. */
    const TimelineLogSample &end() const;

    static TimelineLog load(const std::string &path);
};

/** Regression thresholds (all ratios relative to run A). */
struct CompareOptions
{
    /** B regressed when final edges < A's * (1 - tol). */
    double final_edges_tol = 0.02;
    /** B regressed when coverage AUC < A's * (1 - tol). */
    double auc_tol = 0.05;
    /** Fraction of A's final edges for the time-to-X comparison. */
    double time_to_frac = 0.90;
    /** B regressed when it needs > A's execs * (1 + tol) to get there. */
    double time_to_tol = 0.25;
    /** B's latency p50 regressed beyond A's * (1 + tol); only applied
     *  when both artifacts were recorded with timing enabled. */
    double latency_tol = 0.25;
};

/** Outcome of one gated comparison. */
enum class Verdict { Improved, Ok, Regressed, Skipped };

const char *verdictName(Verdict v);

/** One compared scalar (curve point, counter, latency p50). */
struct MetricDelta
{
    std::string name;
    double a = 0;
    double b = 0;
    Verdict verdict = Verdict::Ok;  ///< Ok for informational rows
};

/** The full differential report. */
struct CompareReport
{
    /** compare_report format version. */
    static constexpr int kFormatVersion = 1;

    std::string path_a;
    std::string path_b;
    CompareOptions opts;

    size_t aligned_samples = 0;  ///< shared virtual-time grid points
    uint64_t grid_end = 0;       ///< last aligned execs value

    /** Gated coverage-curve comparisons. */
    MetricDelta final_edges;
    MetricDelta coverage_auc;
    /** Execs to reach time_to_frac of A's final edges (0 = never). */
    MetricDelta time_to_target;
    uint64_t target_edges = 0;

    /** Gated latency shifts (final-record p50s of `*_us` histograms
     *  present in both); empty when either side lacks timing. */
    std::vector<MetricDelta> latencies;

    /** Informational: final cumulative counter deltas (union). */
    std::vector<MetricDelta> counters;
    /** Informational: unique crashes at end. */
    MetricDelta crashes;

    bool have_policy = false;
    std::string policy_a;
    std::string policy_b;
    double pmm_share_a = 0;
    double pmm_share_b = 0;
    /** Total-variation distance between normalized arm-pull
     *  distributions at the end state (0 = identical posteriors). */
    double arm_divergence = 0;

    /** One line per regressed verdict; empty = no regression. */
    std::vector<std::string> regressions;

    bool regressed() const { return !regressions.empty(); }
};

/** Align + compare two loaded artifacts (both must be ok()). */
CompareReport compare(const TimelineLog &a, const TimelineLog &b,
                      const CompareOptions &opts = {});

/** The versioned machine report ("type":"compare_report"). */
std::string compareJson(const CompareReport &report);

/** Human-readable verdict table + regression summary. */
std::string compareText(const CompareReport &report);

}  // namespace sp::analysis

#endif  // SP_ANALYSIS_COMPARE_H
