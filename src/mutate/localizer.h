/**
 * @file
 * Argument-mutation localization (the paper's intervention point).
 *
 * When the mutation-type selector picks ARGUMENT_MUTATION, a Localizer
 * decides *which* arguments of the base test to mutate. The baseline
 * (Syzkaller-style) localizer picks semi-randomly, weighted toward calls
 * with more arguments; Snowplow's PMM-backed localizer (src/core) makes
 * this decision with a learned model given the desired coverage.
 */
#ifndef SP_MUTATE_LOCALIZER_H
#define SP_MUTATE_LOCALIZER_H

#include <cstddef>
#include <vector>

#include "exec/executor.h"
#include "prog/flatten.h"
#include "prog/value.h"
#include "util/rng.h"

namespace sp::mut {

/** One localized mutation site: a mutable argument of one call. */
struct ArgLocation
{
    size_t call_index = 0;
    prog::MutationPoint point;
};

/** Every mutable argument of the program, in program order. */
std::vector<ArgLocation> allArgLocations(const prog::Prog &prog);

/** Chooses argument-mutation sites for a base test. */
class Localizer
{
  public:
    virtual ~Localizer() = default;

    /**
     * Pick up to `max_sites` distinct argument sites of `prog` to
     * mutate. May return fewer (or none, when the program has no
     * mutable arguments).
     */
    virtual std::vector<ArgLocation> localize(const prog::Prog &prog,
                                              Rng &rng,
                                              size_t max_sites) = 0;

    /**
     * Localization with the base test's execution result available
     * (the fuzzing loop caches it with the corpus entry). White-box
     * localizers override this to read the coverage; the default
     * ignores it.
     */
    virtual std::vector<ArgLocation>
    localizeWithResult(const prog::Prog &prog,
                       const exec::ExecResult & /*result*/, Rng &rng,
                       size_t max_sites)
    {
        return localize(prog, rng, max_sites);
    }
};

/**
 * The Syzkaller-default localizer: samples arguments uniformly from the
 * call with the largest arity (with probability `arity_bias`) or from
 * the whole program otherwise — target-agnostic randomness.
 */
class RandomLocalizer : public Localizer
{
  public:
    explicit RandomLocalizer(double arity_bias = 0.5)
        : arity_bias_(arity_bias)
    {
    }

    std::vector<ArgLocation> localize(const prog::Prog &prog, Rng &rng,
                                      size_t max_sites) override;

  private:
    double arity_bias_;
};

}  // namespace sp::mut

#endif  // SP_MUTATE_LOCALIZER_H
