# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;sp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_tensor_test "/root/repo/build/tests/nn_tensor_test")
set_tests_properties(nn_tensor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;sp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_module_test "/root/repo/build/tests/nn_module_test")
set_tests_properties(nn_module_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;sp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(prog_test "/root/repo/build/tests/prog_test")
set_tests_properties(prog_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;sp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(kernel_test "/root/repo/build/tests/kernel_test")
set_tests_properties(kernel_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;sp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(exec_test "/root/repo/build/tests/exec_test")
set_tests_properties(exec_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;sp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mutate_test "/root/repo/build/tests/mutate_test")
set_tests_properties(mutate_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;sp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;sp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fuzz_test "/root/repo/build/tests/fuzz_test")
set_tests_properties(fuzz_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;sp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;sp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;sp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_ext_test "/root/repo/build/tests/core_ext_test")
set_tests_properties(core_ext_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;sp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fuzz_ext_test "/root/repo/build/tests/fuzz_ext_test")
set_tests_properties(fuzz_ext_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;sp_add_test;/root/repo/tests/CMakeLists.txt;0;")
