# Empty dependencies file for sp_kernel.
# This may be replaced when dependencies are built.
