/**
 * @file
 * Mutable kernel state: the resource table (file descriptors, sockets,
 * devices, ...) and global state flags that system-call handlers read
 * and write. Snapshot/restore is a plain value copy, mirroring the VM
 * snapshot discipline Snowplow uses for deterministic data collection
 * (§3.1 of the paper).
 */
#ifndef SP_KERNEL_STATE_H
#define SP_KERNEL_STATE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sp::kern {

/** Id of a resource kind within a kernel (dense, small). */
using ResourceKindId = uint16_t;

/** One live-or-dead kernel object. */
struct Resource
{
    ResourceKindId kind = 0;
    bool alive = false;
};

/**
 * The kernel's mutable state. Resource ids are 1-based (0 and
 * prog::kBadHandle are never valid), so a zero-initialized argument slot
 * can never name a live resource by accident.
 */
class KernelState
{
  public:
    /** @param num_flags number of global state flags in this kernel. */
    explicit KernelState(uint16_t num_flags = 0);

    /** Allocate a resource of `kind`; returns its id. */
    uint64_t allocResource(ResourceKindId kind);

    /** True when `id` names a live resource. */
    bool alive(uint64_t id) const;

    /** True when `id` names a live resource of kind `kind`. */
    bool aliveOfKind(uint64_t id, ResourceKindId kind) const;

    /** Kind of resource `id` (fatal when not alive). */
    ResourceKindId kindOf(uint64_t id) const;

    /** Release resource `id` (no-op when not alive). */
    void release(uint64_t id);

    /** Number of live resources. */
    size_t liveCount() const;

    /** @name State flags */
    /** @{ */
    void setFlag(uint16_t index, bool value);
    bool flag(uint16_t index) const;
    uint16_t numFlags() const
    {
        return static_cast<uint16_t>(flags_.size());
    }
    /** @} */

    /** Value-copy snapshot. */
    KernelState snapshot() const { return *this; }

  private:
    std::vector<Resource> resources_;
    std::vector<bool> flags_;
};

}  // namespace sp::kern

#endif  // SP_KERNEL_STATE_H
