file(REMOVE_RECURSE
  "CMakeFiles/sp_exec.dir/coverage.cc.o"
  "CMakeFiles/sp_exec.dir/coverage.cc.o.d"
  "CMakeFiles/sp_exec.dir/executor.cc.o"
  "CMakeFiles/sp_exec.dir/executor.cc.o.d"
  "libsp_exec.a"
  "libsp_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
