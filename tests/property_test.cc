// Parameterized property tests: invariants that must hold across many
// seeds/configurations, exercised with TEST_P sweeps.
//
//  - Program serialization round-trips for any generated program.
//  - Generated programs and arbitrarily-mutated programs stay valid.
//  - Generated kernels are well-formed for any seed: handlers
//    terminate, slot references are in range, bug sites are deep.
//  - Flattening arity is invariant under mutation.
//  - Deterministic execution is reproducible for any seed.
//  - Kernel evolution preserves the base syscall ABI for any seed.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "graph/encode.h"
#include "graph/query_graph.h"
#include "kernel/kernel_gen.h"
#include "kernel/subsystems.h"
#include "mutate/mutator.h"
#include "prog/flatten.h"
#include "prog/gen.h"
#include "prog/serialize.h"
#include "prog/validate.h"

namespace sp {
namespace {

class SeedSweep : public ::testing::TestWithParam<uint64_t>
{
  protected:
    kern::Kernel
    makeKernel() const
    {
        kern::KernelGenParams params;
        params.seed = GetParam();
        params.num_syscalls = 12;
        return kern::generateKernel(params);
    }
};

TEST_P(SeedSweep, SerializationRoundTrips)
{
    auto kernel = makeKernel();
    Rng rng(GetParam() * 3 + 1);
    for (int i = 0; i < 25; ++i) {
        auto program = prog::generateProg(rng, kernel.table());
        auto parsed = parseProg(formatProg(program), kernel.table());
        ASSERT_TRUE(parsed.ok()) << parsed.error;
        EXPECT_TRUE(program.equals(*parsed.prog));
    }
}

TEST_P(SeedSweep, MutationPreservesValidity)
{
    auto kernel = makeKernel();
    mut::Mutator mutator(kernel.table());
    mut::RandomLocalizer localizer;
    Rng rng(GetParam() * 5 + 2);
    auto program = prog::generateProg(rng, kernel.table());
    // Long mutation chains stay valid.
    for (int step = 0; step < 60; ++step) {
        program = mutator.mutate(program, rng, localizer);
        auto error = prog::validateProg(program);
        ASSERT_FALSE(error.has_value())
            << "step " << step << ": " << *error;
    }
}

TEST_P(SeedSweep, FlattenedArityInvariantUnderMutation)
{
    auto kernel = makeKernel();
    mut::Mutator mutator(kernel.table());
    mut::RandomLocalizer localizer;
    Rng rng(GetParam() * 7 + 3);
    auto program = prog::generateProg(rng, kernel.table());
    for (int step = 0; step < 40; ++step) {
        program = mutator.mutate(program, rng, localizer);
        for (const auto &call : program.calls) {
            const auto slots =
                prog::flattenCall(call, prog::staticResolver);
            EXPECT_EQ(slots.size(), prog::slotCount(*call.decl));
        }
    }
}

TEST_P(SeedSweep, KernelHandlersAlwaysTerminate)
{
    auto kernel = makeKernel();
    Rng rng(GetParam() * 11 + 4);
    exec::Executor executor(kernel);
    for (int i = 0; i < 40; ++i) {
        auto program = prog::generateProg(rng, kernel.table());
        auto result = executor.run(program);
        // Every executed call leaves a bounded trace.
        for (const auto &call : result.calls) {
            EXPECT_GT(call.blocks.size(), 0u);
            EXPECT_LT(call.blocks.size(), kernel.blocks().size());
        }
    }
}

TEST_P(SeedSweep, DeterministicExecutionReproducible)
{
    auto kernel = makeKernel();
    Rng rng(GetParam() * 13 + 5);
    exec::Executor executor(kernel);
    auto program = prog::generateProg(rng, kernel.table());
    auto a = executor.run(program);
    auto b = executor.run(program);
    EXPECT_EQ(a.coverage.edgeCount(), b.coverage.edgeCount());
    EXPECT_EQ(a.crashed, b.crashed);
}

TEST_P(SeedSweep, BugSitesAreOffTheDefaultPath)
{
    auto kernel = makeKernel();
    for (const auto &bug : kernel.bugs()) {
        const auto &bb = kernel.block(bug.block);
        EXPECT_GE(bb.depth, bug.known ? 1 : 2);
    }
}

TEST_P(SeedSweep, EvolutionPreservesBaseAbi)
{
    kern::KernelGenParams base;
    base.seed = GetParam();
    base.num_syscalls = 10;
    auto v0 = kern::generateKernel(base);
    auto evolved_params = base;
    evolved_params.evolution = 2;
    auto v2 = kern::generateKernel(evolved_params);

    ASSERT_GE(v2.table().decls.size(), v0.table().decls.size());
    for (size_t i = 0; i < v0.table().decls.size(); ++i) {
        EXPECT_EQ(v0.table().decls[i].name, v2.table().decls[i].name);
        EXPECT_EQ(prog::slotCount(v0.table().decls[i]),
                  prog::slotCount(v2.table().decls[i]));
    }
    EXPECT_GE(v2.blocks().size(), v0.blocks().size());
}

TEST_P(SeedSweep, QueryGraphEncodesForAnyProgram)
{
    auto kernel = makeKernel();
    Rng rng(GetParam() * 17 + 6);
    exec::Executor executor(kernel);
    for (int i = 0; i < 10; ++i) {
        auto program = prog::generateProg(rng, kernel.table());
        auto result = executor.run(program);
        auto frontier =
            graph::alternativeFrontier(kernel, result.coverage);
        auto query =
            graph::buildQueryGraph(kernel, program, result, frontier);
        auto enc = graph::encodeGraph(kernel, query);
        EXPECT_EQ(static_cast<size_t>(enc.num_nodes),
                  query.nodes.size());
        // Every argument node index is in range and of Argument kind.
        for (int32_t idx : enc.argument_nodes) {
            ASSERT_GE(idx, 0);
            ASSERT_LT(idx, enc.num_nodes);
            EXPECT_EQ(enc.node_kind[static_cast<size_t>(idx)],
                      static_cast<int32_t>(graph::NodeKind::Argument));
        }
        // Edge endpoints are in range for every relation.
        for (const auto &adj : enc.adj) {
            for (size_t e = 0; e < adj.src.size(); ++e) {
                EXPECT_GE(adj.src[e], 0);
                EXPECT_LT(adj.src[e], enc.num_nodes);
                EXPECT_GE(adj.dst[e], 0);
                EXPECT_LT(adj.dst[e], enc.num_nodes);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Mutation-type distribution sweep: the selector respects its weights.

struct SelectorCase
{
    double arg_weight;
    double insert_weight;
    double remove_weight;
};

class SelectorSweep : public ::testing::TestWithParam<SelectorCase>
{
};

TEST_P(SelectorSweep, FrequenciesTrackWeights)
{
    kern::KernelGenParams params;
    params.seed = 9;
    auto kernel = kern::generateKernel(params);
    mut::MutatorOptions opts;
    opts.arg_mutation_weight = GetParam().arg_weight;
    opts.insert_weight = GetParam().insert_weight;
    opts.remove_weight = GetParam().remove_weight;
    mut::Mutator mutator(kernel.table(), opts);

    Rng rng(17);
    auto program = prog::generateProg(rng, kernel.table());
    if (program.calls.size() < 2 || mut::allArgLocations(program).empty())
        GTEST_SKIP() << "degenerate program";

    int counts[3] = {0, 0, 0};
    const int n = 3000;
    for (int i = 0; i < n; ++i)
        counts[static_cast<int>(mutator.selectType(rng, program))]++;

    const double total = GetParam().arg_weight +
                         GetParam().insert_weight +
                         GetParam().remove_weight;
    EXPECT_NEAR(static_cast<double>(counts[0]) / n,
                GetParam().arg_weight / total, 0.05);
    EXPECT_NEAR(static_cast<double>(counts[1]) / n,
                GetParam().insert_weight / total, 0.05);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n,
                GetParam().remove_weight / total, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Weights, SelectorSweep,
    ::testing::Values(SelectorCase{0.6, 0.25, 0.15},
                      SelectorCase{1.0, 0.0, 0.0},
                      SelectorCase{0.2, 0.6, 0.2},
                      SelectorCase{0.33, 0.33, 0.34}));

}  // namespace
}  // namespace sp
