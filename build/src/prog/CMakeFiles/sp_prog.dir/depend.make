# Empty dependencies file for sp_prog.
# This may be replaced when dependencies are built.
