/**
 * @file
 * Typed records of the example store, on top of the framed shard
 * format (format.h).
 *
 * A shard interleaves two record kinds:
 *
 *  - BaseRecord: one base test — its content hash, the program text
 *    (prog::formatProg, which round-trips exactly), and the coverage
 *    the deterministic executor observed for it (sorted block list +
 *    edge count). The coverage is integrity metadata: loaders
 *    re-execute the base against their kernel and verify they observe
 *    the identical coverage, which catches "trained on shard from a
 *    different kernel" long before the model quietly degrades.
 *  - ExampleRecord: one §3.1 training example referencing its base by
 *    hash, with its split tag, target blocks and ground-truth sites.
 *
 * Writers must emit a base before any example referencing it; a
 * truncated shard therefore only ever loses tail examples, never the
 * base an already-read example depends on.
 *
 * Every shard carries a sidecar index `<shard>.idx` with record
 * counts, written atomically on close. Readers treat it as a cache:
 * statistics come from the index when present and fall back to a full
 * scan (a crash-truncated shard typically has no index).
 */
#ifndef SP_DATA_SHARD_H
#define SP_DATA_SHARD_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/format.h"
#include "mutate/localizer.h"

namespace sp::data {

/** Split tags stored in example records. */
constexpr uint8_t kSplitTrain = 0;
constexpr uint8_t kSplitValid = 1;
constexpr uint8_t kSplitEval = 2;

/** One base test (see file comment). */
struct BaseRecord
{
    uint64_t base_hash = 0;
    std::string text;               ///< prog::formatProg rendering
    std::vector<uint32_t> blocks;   ///< sorted deterministic coverage
    uint64_t edges = 0;             ///< deterministic edge count
};

/** One training example, referencing its base by content hash. */
struct ExampleRecord
{
    uint64_t base_hash = 0;
    uint8_t split = kSplitTrain;
    std::vector<uint32_t> targets;
    std::vector<mut::ArgLocation> sites;
};

/** Aggregate counts of one shard (the sidecar index's content). */
struct ShardIndex
{
    uint64_t bases = 0;
    uint64_t train = 0;
    uint64_t valid = 0;
    uint64_t eval = 0;
    uint64_t bytes = 0;  ///< shard file size at close

    uint64_t
    examples() const
    {
        return train + valid + eval;
    }
};

/** Sidecar index path of a shard. */
std::string indexPathFor(const std::string &shard_path);

/** Read a shard's sidecar index; nullopt when absent or invalid. */
std::optional<ShardIndex> readShardIndex(const std::string &shard_path);

/**
 * Writes one shard and, on close, its sidecar index. Single-threaded.
 */
class ShardWriter
{
  public:
    ShardWriter(const std::string &path, uint64_t kernel_fingerprint);
    ~ShardWriter();

    /** Append records; returns the frame's byte size. */
    size_t append(const BaseRecord &base);
    size_t append(const ExampleRecord &example);

    /** Flush records and write the sidecar index (idempotent). */
    void close();

    uint64_t bytesWritten() const { return writer_.bytesWritten(); }
    const ShardIndex &index() const { return index_; }

  private:
    FrameWriter writer_;
    ShardIndex index_;
    bool closed_ = false;
};

/**
 * Reads a shard's records in order. Wraps FrameReader with payload
 * decoding; end-of-stream and truncation semantics are FrameReader's.
 */
class ShardReader
{
  public:
    explicit ShardReader(const std::string &path) : reader_(path) {}

    uint64_t
    kernelFingerprint() const
    {
        return reader_.kernelFingerprint();
    }

    /**
     * Read the next record into exactly one of `base`/`example`;
     * returns false at end of input. `is_base` says which was filled.
     */
    bool next(BaseRecord &base, ExampleRecord &example, bool &is_base);

    bool truncated() const { return reader_.truncated(); }
    const std::string &path() const { return reader_.path(); }

  private:
    FrameReader reader_;
};

}  // namespace sp::data

#endif  // SP_DATA_SHARD_H
