
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_oracle.cc" "bench/CMakeFiles/ext_oracle.dir/ext_oracle.cc.o" "gcc" "bench/CMakeFiles/ext_oracle.dir/ext_oracle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/sp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzz/CMakeFiles/sp_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mutate/CMakeFiles/sp_mutate.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/sp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/sp_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/sp_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
