#include "mutate/mutator.h"

#include <algorithm>
#include <cstddef>

#include "util/logging.h"

namespace sp::mut {

namespace {

using prog::Arg;
using prog::TypeKind;

void
mutateScalar(Arg &arg, Rng &rng)
{
    const auto &type = *arg.type;
    const double roll = rng.uniform();
    if (type.kind == TypeKind::Flags) {
        if (!type.domain.empty() && roll < 0.35) {
            // Toggle one declared flag bit.
            arg.scalar ^= type.domain[rng.below(type.domain.size())];
        } else if (!type.domain.empty() && roll < 0.7) {
            // Replace with a declared value (or a small OR-combo).
            arg.scalar = type.domain[rng.below(type.domain.size())];
            if (type.combinable && rng.chance(0.4)) {
                arg.scalar |=
                    type.domain[rng.below(type.domain.size())];
            }
        } else if (roll < 0.85) {
            arg.scalar = 0;
        } else {
            arg.scalar = rng.next() & 0xffff;
        }
        return;
    }
    // Int / Len-as-int fallbacks.
    if (!type.domain.empty() && roll < 0.4) {
        arg.scalar = type.domain[rng.below(type.domain.size())];
    } else if (roll < 0.6) {
        // Small additive nudge.
        const int64_t delta = rng.range(-16, 16);
        arg.scalar = static_cast<uint64_t>(
            static_cast<int64_t>(arg.scalar) + delta);
    } else if (roll < 0.8) {
        arg.scalar = static_cast<uint64_t>(
            rng.range(type.min, std::max(type.min, type.max)));
    } else {
        switch (rng.below(4)) {
          case 0:
            arg.scalar = 0;
            break;
          case 1:
            arg.scalar = static_cast<uint64_t>(type.max);
            break;
          case 2:
            arg.scalar = static_cast<uint64_t>(type.max) + 1;
            break;
          default:
            arg.scalar = rng.next();
            break;
        }
    }
}

void
mutateBuffer(Arg &arg, Rng &rng)
{
    const auto &type = *arg.type;
    const double roll = rng.uniform();
    if (roll < 0.4 || arg.bytes.empty()) {
        // Resize within (and slightly beyond) the declared range.
        const uint32_t limit = type.buf_max + type.buf_max / 2 + 1;
        arg.bytes.resize(rng.below(limit + 1), 0);
    } else if (roll < 0.8) {
        // Rewrite a random byte.
        arg.bytes[rng.below(arg.bytes.size())] =
            static_cast<uint8_t>(rng.below(256));
    } else {
        // Rewrite the whole payload from a small alphabet.
        for (auto &b : arg.bytes)
            b = static_cast<uint8_t>(rng.chance(0.5) ? 0x61 : rng.below(256));
    }
}

void
mutateResource(Arg &arg, const prog::Prog &prog, size_t call_index,
               Rng &rng)
{
    std::vector<int32_t> producers;
    for (size_t j = 0; j < call_index; ++j) {
        if (prog.calls[j].decl->ret_resource ==
            arg.type->resource_kind) {
            producers.push_back(static_cast<int32_t>(j));
        }
    }
    if (!producers.empty() && rng.chance(0.8))
        arg.result_ref = producers[rng.below(producers.size())];
    else
        arg.result_ref = -1;
}

}  // namespace

Mutator::Mutator(const prog::SyscallTable &table, MutatorOptions opts)
    : table_(table), opts_(std::move(opts))
{
}

MutationType
Mutator::selectType(Rng &rng, const prog::Prog &prog) const
{
    std::vector<double> weights = {opts_.arg_mutation_weight,
                                   opts_.insert_weight,
                                   opts_.remove_weight};
    if (prog.calls.size() >= opts_.max_calls)
        weights[1] = 0.0;
    if (prog.calls.size() <= 1)
        weights[2] = 0.0;
    if (allArgLocations(prog).empty())
        weights[0] = 0.0;
    switch (rng.weightedIndex(weights)) {
      case 0:
        return MutationType::ArgumentMutation;
      case 1:
        return MutationType::CallInsertion;
      default:
        return MutationType::CallRemoval;
    }
}

bool
Mutator::instantiateArgMutation(prog::Prog &prog, const ArgLocation &loc,
                                Rng &rng) const
{
    if (loc.call_index >= prog.calls.size())
        return false;
    prog::Call &call = prog.calls[loc.call_index];

    // Re-resolve the path defensively: other mutations (e.g. a pointer
    // nulled out) may have removed the node.
    const Arg *probe = nullptr;
    {
        const Arg *node = loc.point.path[0] < call.args.size()
                              ? call.args[loc.point.path[0]].get()
                              : nullptr;
        for (size_t i = 1; node != nullptr && i < loc.point.path.size();
             ++i) {
            if (node->type->kind == TypeKind::Ptr) {
                node = node->is_null ? nullptr : node->pointee.get();
            } else if (node->type->kind == TypeKind::Struct) {
                node = loc.point.path[i] < node->fields.size()
                           ? node->fields[loc.point.path[i]].get()
                           : nullptr;
            } else {
                node = nullptr;
            }
        }
        probe = node;
    }
    if (probe == nullptr)
        return false;
    Arg &arg = prog::argAtPath(call, loc.point.path);

    switch (arg.type->kind) {
      case TypeKind::Int:
      case TypeKind::Flags:
        mutateScalar(arg, rng);
        break;
      case TypeKind::Resource:
        mutateResource(arg, prog, loc.call_index, rng);
        break;
      case TypeKind::Ptr:
        if (arg.is_null) {
            arg.is_null = false;
            arg.pointee = prog::generateArg(rng, arg.type->elem,
                                            opts_.gen);
        } else if (arg.type->opt && rng.chance(0.3)) {
            arg.is_null = true;
            arg.pointee.reset();
        } else {
            // Regenerate the pointee wholesale (a large-step mutation).
            arg.pointee = prog::generateArg(rng, arg.type->elem,
                                            opts_.gen);
        }
        break;
      case TypeKind::Buffer:
        mutateBuffer(arg, rng);
        break;
      case TypeKind::Const:
      case TypeKind::Len:
      case TypeKind::Struct:
        // Not directly mutable; nothing to do.
        return false;
    }
    prog::fixupLengths(call);
    return true;
}

void
Mutator::insertCall(prog::Prog &prog, Rng &rng) const
{
    if (prog.calls.size() >= opts_.max_calls)
        return;
    // Prefer decls whose consumed resources are producible in-program.
    std::vector<double> weights(table_.decls.size(), 1.0);
    for (size_t d = 0; d < table_.decls.size(); ++d) {
        for (const auto &kind :
             table_.decls[d].consumedResourceKinds()) {
            bool have = false;
            for (const auto &call : prog.calls)
                have |= (call.decl->ret_resource == kind);
            if (!have)
                weights[d] = 0.2;
        }
    }
    const auto &decl = table_.decls[rng.weightedIndex(weights)];

    prog::Call call;
    call.decl = &decl;
    for (const auto &t : decl.args)
        call.args.push_back(prog::generateArg(rng, t, opts_.gen));

    const size_t position = rng.below(prog.calls.size() + 1);
    prog::shiftResultRefs(prog, position, +1);
    prog.calls.insert(prog.calls.begin() +
                          static_cast<ptrdiff_t>(position),
                      std::move(call));

    // Bind the new call's resources to earlier producers.
    prog::Call &inserted = prog.calls[position];
    prog::visitArgsMut(
        inserted, [&](Arg &arg, const std::vector<uint16_t> &) {
            if (arg.type->kind != TypeKind::Resource)
                return;
            mutateResource(arg, prog, position, rng);
        });
    prog::fixupLengths(inserted);
}

void
Mutator::removeCall(prog::Prog &prog, Rng &rng) const
{
    if (prog.calls.size() <= 1)
        return;
    const size_t position = rng.below(prog.calls.size());
    prog.calls.erase(prog.calls.begin() +
                     static_cast<ptrdiff_t>(position));
    // shiftResultRefs only rewrites reference values, so running it
    // after the erase is equivalent: refs to `position` become invalid
    // handles, later refs shift down by one.
    prog::shiftResultRefs(prog, position, -1);
}

prog::Prog
Mutator::mutate(const prog::Prog &base, Rng &rng,
                Localizer &localizer) const
{
    prog::Prog mutated;
    mutated.calls = base.calls;  // deep copy

    switch (selectType(rng, mutated)) {
      case MutationType::ArgumentMutation: {
        auto sites = localizer.localize(mutated, rng, 1);
        bool applied = false;
        for (const auto &site : sites)
            applied |= instantiateArgMutation(mutated, site, rng);
        if (!applied)
            insertCall(mutated, rng);
        break;
      }
      case MutationType::CallInsertion:
        insertCall(mutated, rng);
        break;
      case MutationType::CallRemoval:
        removeCall(mutated, rng);
        break;
    }
    return mutated;
}

}  // namespace sp::mut
