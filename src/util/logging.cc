#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <mutex>

namespace sp {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

std::atomic<PanicHook> g_panic_hook{nullptr};

// Guards against a panic raised from inside the panic hook itself.
thread_local bool t_in_panic_hook = false;

// Serializes log lines so concurrent fuzzer threads do not interleave.
std::mutex g_log_mutex;

// Each record is formatted into one buffer and emitted with a single
// fprintf: the async inference workers used to tear lines apart between
// the "[tag]" prefix and the message body.
void
vlogLine(const char *tag, const char *file, int line,
         const char *fmt, va_list args)
{
    const uint64_t us = monotonicMicros();
    char buf[2048];
    int used;
    if (file != nullptr) {
        used = std::snprintf(buf, sizeof(buf),
                             "[%llu.%06llu] [%s] %s:%d: ",
                             static_cast<unsigned long long>(us / 1000000),
                             static_cast<unsigned long long>(us % 1000000),
                             tag, file, line);
    } else {
        used = std::snprintf(buf, sizeof(buf), "[%llu.%06llu] [%s] ",
                             static_cast<unsigned long long>(us / 1000000),
                             static_cast<unsigned long long>(us % 1000000),
                             tag);
    }
    if (used < 0)
        used = 0;
    if (static_cast<size_t>(used) < sizeof(buf)) {
        std::vsnprintf(buf + used, sizeof(buf) - static_cast<size_t>(used),
                       fmt, args);
    }
    std::lock_guard<std::mutex> guard(g_log_mutex);
    std::fprintf(stderr, "%s\n", buf);
}

}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void
setPanicHook(PanicHook hook)
{
    g_panic_hook.store(hook, std::memory_order_release);
}

uint64_t
monotonicMicros()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

namespace detail {

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogLine("panic", file, line, fmt, args);
    va_end(args);
    if (PanicHook hook = g_panic_hook.load(std::memory_order_acquire);
        hook != nullptr && !t_in_panic_hook) {
        t_in_panic_hook = true;
        char message[512];
        va_list hook_args;
        va_start(hook_args, fmt);
        std::vsnprintf(message, sizeof(message), fmt, hook_args);
        va_end(hook_args);
        hook(message);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogLine("fatal", file, line, fmt, args);
    va_end(args);
    std::exit(1);
}

void
logImpl(LogLevel level, const char *tag, const char *fmt, ...)
{
    if (static_cast<int>(level) >
        g_level.load(std::memory_order_relaxed)) {
        return;
    }
    va_list args;
    va_start(args, fmt);
    vlogLine(tag, nullptr, 0, fmt, args);
    va_end(args);
}

}  // namespace detail
}  // namespace sp
