
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/builder.cc" "src/kernel/CMakeFiles/sp_kernel.dir/builder.cc.o" "gcc" "src/kernel/CMakeFiles/sp_kernel.dir/builder.cc.o.d"
  "/root/repo/src/kernel/cond.cc" "src/kernel/CMakeFiles/sp_kernel.dir/cond.cc.o" "gcc" "src/kernel/CMakeFiles/sp_kernel.dir/cond.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/kernel/CMakeFiles/sp_kernel.dir/kernel.cc.o" "gcc" "src/kernel/CMakeFiles/sp_kernel.dir/kernel.cc.o.d"
  "/root/repo/src/kernel/kernel_gen.cc" "src/kernel/CMakeFiles/sp_kernel.dir/kernel_gen.cc.o" "gcc" "src/kernel/CMakeFiles/sp_kernel.dir/kernel_gen.cc.o.d"
  "/root/repo/src/kernel/state.cc" "src/kernel/CMakeFiles/sp_kernel.dir/state.cc.o" "gcc" "src/kernel/CMakeFiles/sp_kernel.dir/state.cc.o.d"
  "/root/repo/src/kernel/subsystems.cc" "src/kernel/CMakeFiles/sp_kernel.dir/subsystems.cc.o" "gcc" "src/kernel/CMakeFiles/sp_kernel.dir/subsystems.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prog/CMakeFiles/sp_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
