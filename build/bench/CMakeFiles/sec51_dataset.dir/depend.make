# Empty dependencies file for sec51_dataset.
# This may be replaced when dependencies are built.
