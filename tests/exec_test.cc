// Tests for the executor: coverage accounting, resource resolution
// across calls, crash semantics, and the deterministic/noisy split.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "kernel/subsystems.h"
#include "prog/flatten.h"
#include "prog/gen.h"

namespace sp::exec {
namespace {

kern::Kernel &
testKernel()
{
    static kern::Kernel kernel = [] {
        kern::KernelGenParams params;
        params.seed = 13;
        return kern::buildBaseKernel(params);
    }();
    return kernel;
}

prog::Call
makeCall(const prog::SyscallDecl &decl)
{
    prog::Call call;
    call.decl = &decl;
    call.args = prog::defaultArgs(decl);
    prog::fixupLengths(call);
    return call;
}

TEST(CoverageSet, TraceAddsBlocksAndEdges)
{
    CoverageSet cov;
    cov.addTrace({1, 2, 3, 2});
    EXPECT_EQ(cov.blockCount(), 3u);
    EXPECT_EQ(cov.edgeCount(), 3u);  // 1->2, 2->3, 3->2
    EXPECT_TRUE(cov.containsBlock(3));
    EXPECT_TRUE(cov.containsEdge(3, 2));
    EXPECT_FALSE(cov.containsEdge(2, 1));
}

TEST(CoverageSet, MergeAndNewCounts)
{
    CoverageSet a, b;
    a.addTrace({1, 2});
    b.addTrace({2, 3});
    EXPECT_EQ(a.countNewBlocks(b), 1u);
    EXPECT_EQ(a.countNewEdges(b), 1u);
    auto fresh = a.newBlocks(b);
    ASSERT_EQ(fresh.size(), 1u);
    EXPECT_EQ(fresh[0], 3u);
    a.merge(b);
    EXPECT_EQ(a.blockCount(), 3u);
    EXPECT_EQ(a.countNewBlocks(b), 0u);
}

TEST(Executor, ResourceFlowsAcrossCalls)
{
    auto &kernel = testKernel();
    Executor executor(kernel);

    prog::Prog prog;
    prog.calls.push_back(makeCall(*kernel.table().find("open$file")));
    prog.calls.push_back(makeCall(*kernel.table().find("read")));
    prog.calls[1].args[0]->result_ref = 0;

    auto bound = executor.run(prog);
    ASSERT_EQ(bound.calls.size(), 2u);
    EXPECT_GT(bound.calls[0].ret, 0u);

    // The same program with an unbound fd takes the EBADF path.
    prog.calls[1].args[0]->result_ref = -1;
    auto unbound = executor.run(prog);
    EXPECT_NE(bound.calls[1].blocks, unbound.calls[1].blocks);
    EXPECT_GT(bound.calls[1].blocks.size(),
              unbound.calls[1].blocks.size());
}

TEST(Executor, CrashStopsTheProgram)
{
    auto &kernel = testKernel();
    Executor executor(kernel);

    const auto *open_scsi = kernel.table().find("open$scsi");
    const auto *ioctl = kernel.table().find("ioctl$scsi");
    ASSERT_NE(open_scsi, nullptr);
    ASSERT_NE(ioctl, nullptr);

    prog::Prog prog;
    prog.calls.push_back(makeCall(*open_scsi));
    prog.calls.push_back(makeCall(*ioctl));
    prog.calls.push_back(makeCall(*open_scsi));  // never reached

    // Craft the ATA bug arguments.
    auto &ioctl_call = prog.calls[1];
    ioctl_call.args[0]->result_ref = 0;
    ioctl_call.args[1]->scalar = kern::kScsiIoctlSendCommand;
    auto &req = *ioctl_call.args[2]->pointee;
    req.fields[0]->scalar = kern::kScsiProtoAta16;
    req.fields[1]->scalar = kern::kAtaCmdNop;
    req.fields[2]->scalar = kern::kAtaProtPio;
    req.fields[3]->scalar = kern::kAtaMaxDataLen + 1;

    auto result = executor.run(prog);
    ASSERT_TRUE(result.crashed);
    EXPECT_EQ(result.crash_call, 1u);
    EXPECT_EQ(result.calls.size(), 2u);
    // The crafted arguments walk deep into ioctl$scsi; the bug hit is
    // either the hand-planted ATA OOB or a generated bug the synthetic
    // bulk planted earlier on the same path — both live in this handler.
    const auto &bug = kernel.bugs()[result.bug_index];
    EXPECT_EQ(kernel.block(bug.block).handler, ioctl->id);
}

TEST(Executor, DeterministicModeIsReproducible)
{
    auto &kernel = testKernel();
    Executor executor(kernel);
    Rng rng(21);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 30);
    for (const auto &prog : corpus) {
        auto a = executor.run(prog);
        auto b = executor.run(prog);
        ASSERT_EQ(a.calls.size(), b.calls.size());
        for (size_t i = 0; i < a.calls.size(); ++i)
            EXPECT_EQ(a.calls[i].blocks, b.calls[i].blocks);
        EXPECT_EQ(a.crashed, b.crashed);
    }
}

TEST(Executor, NoisyModeEventuallyDiverges)
{
    auto &kernel = testKernel();
    ExecOptions noisy;
    noisy.deterministic = false;
    noisy.noise_seed = 5;
    Executor executor(kernel, noisy);

    Rng rng(22);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 20);
    bool diverged = false;
    for (const auto &prog : corpus) {
        auto a = executor.run(prog);
        auto b = executor.run(prog);
        if (a.coverage.blockCount() != b.coverage.blockCount() ||
            a.coverage.countNewBlocks(b.coverage) != 0) {
            diverged = true;
            break;
        }
    }
    EXPECT_TRUE(diverged);
}

TEST(Executor, CountsExecutions)
{
    auto &kernel = testKernel();
    Executor executor(kernel);
    prog::Prog prog;
    prog.calls.push_back(makeCall(*kernel.table().find("open$file")));
    executor.run(prog);
    executor.run(prog);
    EXPECT_EQ(executor.programsExecuted(), 2u);
    EXPECT_EQ(executor.callsExecuted(), 2u);
}

TEST(Executor, CoverageGrowsWithBetterArguments)
{
    auto &kernel = testKernel();
    Executor executor(kernel);
    const auto *open_decl = kernel.table().find("open$file");

    prog::Prog base;
    base.calls.push_back(makeCall(*open_decl));
    base.calls[0].args[1]->scalar = 0;  // no flags
    auto base_result = executor.run(base);

    prog::Prog better;
    better.calls.push_back(makeCall(*open_decl));
    better.calls[0].args[1]->scalar =
        kern::kOCreat | kern::kOTrunc | kern::kOAppend;
    auto better_result = executor.run(better);

    EXPECT_GT(base_result.coverage.countNewBlocks(better_result.coverage),
              0u);
}

}  // namespace
}  // namespace sp::exec
