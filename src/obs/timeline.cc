#include "obs/timeline.h"

#include <algorithm>
#include <cmath>

#include "obs/telemetry.h"
#include "util/logging.h"

namespace sp::obs {

namespace {

/** Registry handles for the timeline metrics (looked up once). */
struct TimelineMetrics
{
    Counter &samples;
    Gauge &ring_size;
    Histogram &sample_us;

    static TimelineMetrics &
    get()
    {
        auto &reg = Registry::global();
        static TimelineMetrics metrics{
            reg.counter("timeline.samples"),
            reg.gauge("timeline.ring_size"),
            reg.histogram("timeline.sample_us"),
        };
        return metrics;
    }
};

/** JSON number literal; non-finite values (empty-stat min/max) -> 0. */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** `value - base`, clamped at 0: a prefix reset between the baseline
 *  capture and the sample must read as "this campaign's count". */
uint64_t
relValue(uint64_t value, const std::map<std::string, uint64_t> &base,
         const std::string &name)
{
    const auto it = base.find(name);
    const uint64_t b = it == base.end() ? 0 : it->second;
    return value >= b ? value - b : value;
}

/** `"execs":..,"edges":..` — the tick's core campaign facts. */
void
appendTickCore(std::string &out, const TimelineTick &tick)
{
    out += "\"execs\":";
    out += std::to_string(tick.execs);
    out += ",\"edges\":";
    out += std::to_string(tick.edges);
    out += ",\"blocks\":";
    out += std::to_string(tick.blocks);
    out += ",\"crashes\":";
    out += std::to_string(tick.crashes);
    out += ",\"corpus\":";
    out += std::to_string(tick.corpus_size);
}

/** `,"cov":{..}` when the tick carries a covmap summary. */
void
appendCov(std::string &out, const TimelineTick &tick)
{
    if (!tick.have_cov)
        return;
    out += ",\"cov\":{\"blocks_hit\":";
    out += std::to_string(tick.cov_blocks_hit);
    out += ",\"edges_hit\":";
    out += std::to_string(tick.cov_edges_hit);
    out += ",\"total_block_hits\":";
    out += std::to_string(tick.cov_total_block_hits);
    out += ",\"frontier_size\":";
    out += std::to_string(tick.cov_frontier_size);
    out += ",\"stray_edges\":";
    out += std::to_string(tick.cov_stray_edges);
    out += '}';
}

}  // namespace

TimelineRecorder::TimelineRecorder(TimelineOptions opts)
    : opts_(opts),
      registry_(opts.registry != nullptr ? *opts.registry
                                         : Registry::global())
{
    // Whatever previous campaigns in this process accumulated is the
    // zero point: artifacts describe one campaign, not the process.
    captureBaselinesLocked();
}

void
TimelineRecorder::captureBaselinesLocked()
{
    baseline_counters_.clear();
    baseline_hist_counts_.clear();
    registry_.visit(
        [this](const std::string &name, const Counter &counter) {
            if (counter.value() != 0)
                baseline_counters_[name] = counter.value();
        },
        nullptr,
        [this](const std::string &name, const Histogram &hist) {
            const uint64_t count = hist.count();
            if (count != 0)
                baseline_hist_counts_[name] = count;
        });
}

void
TimelineRecorder::rebaseline()
{
    std::lock_guard<std::mutex> lock(mu_);
    captureBaselinesLocked();
}

TimelineRecorder::~TimelineRecorder()
{
    if (log_ != nullptr)
        std::fclose(log_);
}

bool
TimelineRecorder::openLog(const std::string &path,
                          const std::string &extra_header_json)
{
    std::lock_guard<std::mutex> lock(mu_);
    SP_ASSERT(log_ == nullptr, "timeline log already open");
    log_ = std::fopen(path.c_str(), "w");
    if (log_ == nullptr)
        return false;

    std::string header;
    header.reserve(128);
    header += "{\"type\":\"timeline_header\",\"version\":";
    header += std::to_string(kFormatVersion);
    header += ",\"ring_capacity\":";
    header += std::to_string(opts_.ring_capacity);
    header += ",\"timing\":";
    header += timingEnabled() ? "true" : "false";
    if (!extra_header_json.empty()) {
        header += ',';
        header += extra_header_json;
    }
    header += "}\n";
    std::fwrite(header.data(), 1, header.size(), log_);
    return true;
}

void
TimelineRecorder::sampleRegistry(TimelineSample &sample) const
{
    registry_.visit(
        [this, &sample](const std::string &name,
                        const Counter &counter) {
            const uint64_t rel =
                relValue(counter.value(), baseline_counters_, name);
            if (rel != 0)
                sample.counters[name] = rel;
        },
        [&sample](const std::string &name, const Gauge &gauge) {
            const double v = gauge.value();
            if (v != 0.0)
                sample.gauges[name] = v;
        },
        [this, &sample](const std::string &name,
                        const Histogram &hist) {
            const RunningStat stat = hist.stat();
            const uint64_t rel =
                relValue(stat.count(), baseline_hist_counts_, name);
            if (rel == 0)
                return;
            TimelineHist h;
            h.count = rel;
            h.mean = stat.mean();
            h.min = stat.min();
            h.max = stat.max();
            sample.hists[name] = h;
        });
}

void
TimelineRecorder::writeSampleLine(const TimelineSample &sample)
{
    // Delta state updates even with no log open so the encoding is
    // independent of whether anyone is watching.
    std::string line;
    line.reserve(512);
    line += "{\"type\":\"timeline_sample\",";
    appendTickCore(line, sample.tick);
    appendCov(line, sample.tick);

    if (sample.tick.have_policy) {
        line += ",\"policy\":{\"name\":";
        line += jsonQuote(sample.tick.policy_name);
        line += ",\"pmm_share\":";
        line += jsonNumber(sample.tick.pmm_share);
        line += ",\"arms\":[";
        bool first = true;
        for (const TimelineArm &arm : sample.tick.arms) {
            const auto it = last_arms_.find(arm.arm);
            const uint64_t dp =
                arm.pulls - (it == last_arms_.end() ? 0 : it->second.pulls);
            const uint64_t dw =
                arm.wins - (it == last_arms_.end() ? 0 : it->second.wins);
            if (dp == 0 && dw == 0)
                continue;
            if (!first)
                line += ',';
            first = false;
            line += '[';
            line += std::to_string(arm.arm);
            line += ',';
            line += std::to_string(dp);
            line += ',';
            line += std::to_string(dw);
            line += ']';
        }
        line += "]}";
        last_arms_.clear();
        for (const TimelineArm &arm : sample.tick.arms)
            last_arms_[arm.arm] = arm;
    }

    line += ",\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : sample.counters) {
        const auto it = last_counters_.find(name);
        const uint64_t prev = it == last_counters_.end() ? 0 : it->second;
        const uint64_t delta = value >= prev ? value - prev : value;
        if (delta == 0)
            continue;
        line += (first ? "" : ",");
        line += jsonQuote(name);
        line += ':';
        line += std::to_string(delta);
        first = false;
    }
    line += "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : sample.gauges) {
        const auto it = last_gauges_.find(name);
        const double prev = it == last_gauges_.end() ? 0.0 : it->second;
        if (value == prev)
            continue;
        line += (first ? "" : ",");
        line += jsonQuote(name);
        line += ':';
        line += jsonNumber(value);
        first = false;
    }
    line += "},\"hists\":{";
    first = true;
    for (const auto &[name, hist] : sample.hists) {
        const auto it = last_hist_counts_.find(name);
        const uint64_t prev =
            it == last_hist_counts_.end() ? 0 : it->second;
        const uint64_t delta =
            hist.count >= prev ? hist.count - prev : hist.count;
        if (delta == 0)
            continue;
        line += (first ? "" : ",");
        line += jsonQuote(name);
        line += ":[";
        line += std::to_string(delta);
        line += ',';
        line += jsonNumber(hist.mean);
        line += ',';
        line += jsonNumber(hist.min);
        line += ',';
        line += jsonNumber(hist.max);
        line += ']';
        first = false;
    }
    line += '}';
    if (sample.wall_us != 0) {
        line += ",\"wall_us\":";
        line += std::to_string(sample.wall_us);
    }
    line += "}\n";

    last_counters_ = sample.counters;
    last_gauges_ = sample.gauges;
    last_hist_counts_.clear();
    for (const auto &[name, hist] : sample.hists)
        last_hist_counts_[name] = hist.count;

    if (log_ != nullptr)
        std::fwrite(line.data(), 1, line.size(), log_);
}

void
TimelineRecorder::pushLocked(TimelineSample sample)
{
    ring_.push_back(std::move(sample));
    while (opts_.ring_capacity > 0 && ring_.size() > opts_.ring_capacity)
        ring_.pop_front();
    ++total_samples_;
    TimelineMetrics::get().ring_size.set(
        static_cast<double>(ring_.size()));
}

void
TimelineRecorder::onCheckpoint(const TimelineTick &tick)
{
    const bool timed = timingEnabled();
    const uint64_t start_us = timed ? monotonicMicros() : 0;

    std::lock_guard<std::mutex> lock(mu_);
    if (finalized_)
        return;
    TimelineMetrics::get().samples.inc();
    TimelineSample sample;
    sample.tick = tick;
    sampleRegistry(sample);
    if (timed) {
        sample.wall_us = monotonicMicros() - start_us;
        TimelineMetrics::get().sample_us.record(
            static_cast<double>(sample.wall_us));
    }
    writeSampleLine(sample);
    pushLocked(std::move(sample));
}

void
TimelineRecorder::finalize(const TimelineTick &tick)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (finalized_)
        return;
    finalized_ = true;

    TimelineMetrics::get().samples.inc();
    TimelineSample sample;
    sample.tick = tick;
    sampleRegistry(sample);
    pushLocked(sample);

    if (log_ == nullptr)
        return;

    // The final record is self-contained (cumulative, not deltas) and
    // is where the one full percentile pass runs. End-of-campaign
    // gauges are deliberately absent: the wall-clock-derived ones
    // (execs/sec, busy ratios) are machine state, not campaign state,
    // and everything deterministic is already in the tick sections.
    std::string line;
    line.reserve(1024);
    line += "{\"type\":\"timeline_final\",";
    appendTickCore(line, sample.tick);
    line += ",\"samples\":";
    line += std::to_string(total_samples_);
    appendCov(line, sample.tick);
    if (sample.tick.have_policy) {
        line += ",\"policy\":{\"name\":";
        line += jsonQuote(sample.tick.policy_name);
        line += ",\"pmm_share\":";
        line += jsonNumber(sample.tick.pmm_share);
        line += ",\"arms\":[";
        for (size_t i = 0; i < sample.tick.arms.size(); ++i) {
            const TimelineArm &arm = sample.tick.arms[i];
            if (i != 0)
                line += ',';
            line += '[';
            line += std::to_string(arm.arm);
            line += ',';
            line += std::to_string(arm.pulls);
            line += ',';
            line += std::to_string(arm.wins);
            line += ']';
        }
        line += "]}";
    }
    line += ",\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : sample.counters) {
        line += (first ? "" : ",");
        line += jsonQuote(name);
        line += ':';
        line += std::to_string(value);
        first = false;
    }
    line += "},\"hists\":{";
    first = true;
    registry_.visit(
        nullptr, nullptr,
        [this, &line, &first](const std::string &name,
                              const Histogram &hist) {
            const HistogramSnapshot snap = hist.snapshot();
            const uint64_t rel = relValue(snap.stat.count(),
                                          baseline_hist_counts_, name);
            if (rel == 0)
                return;
            line += (first ? "" : ",");
            line += jsonQuote(name);
            line += ":{\"count\":";
            line += std::to_string(rel);
            line += ",\"mean\":";
            line += jsonNumber(snap.stat.mean());
            line += ",\"min\":";
            line += jsonNumber(snap.stat.min());
            line += ",\"max\":";
            line += jsonNumber(snap.stat.max());
            line += ",\"stddev\":";
            line += jsonNumber(snap.stat.stddev());
            line += ",\"p50\":";
            line += jsonNumber(snap.samples.percentile(50));
            line += ",\"p90\":";
            line += jsonNumber(snap.samples.percentile(90));
            line += ",\"p99\":";
            line += jsonNumber(snap.samples.percentile(99));
            line += '}';
            first = false;
        });
    line += "}}\n";
    std::fwrite(line.data(), 1, line.size(), log_);
    std::fclose(log_);
    log_ = nullptr;
}

size_t
TimelineRecorder::sampleCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<size_t>(total_samples_);
}

std::vector<TimelineSample>
TimelineRecorder::samples() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return {ring_.begin(), ring_.end()};
}

std::string
TimelineRecorder::recentJson(size_t max_samples) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    out.reserve(1024);
    out += "{\"enabled\":true,\"samples\":";
    out += std::to_string(total_samples_);
    out += ",\"ring_capacity\":";
    out += std::to_string(opts_.ring_capacity);
    out += ",\"window\":[";
    const size_t take = std::min(max_samples, ring_.size());
    for (size_t i = ring_.size() - take; i < ring_.size(); ++i) {
        const TimelineSample &sample = ring_[i];
        if (i != ring_.size() - take)
            out += ',';
        out += '{';
        appendTickCore(out, sample.tick);
        appendCov(out, sample.tick);
        if (sample.tick.have_policy) {
            out += ",\"policy\":{\"name\":";
            out += jsonQuote(sample.tick.policy_name);
            out += ",\"pmm_share\":";
            out += jsonNumber(sample.tick.pmm_share);
            out += ",\"arms_active\":";
            out += std::to_string(sample.tick.arms.size());
            out += '}';
        }
        out += ",\"counters\":{";
        bool first = true;
        for (const auto &[name, value] : sample.counters) {
            out += (first ? "" : ",");
            out += jsonQuote(name);
            out += ':';
            out += std::to_string(value);
            first = false;
        }
        out += "},\"gauges\":{";
        first = true;
        for (const auto &[name, value] : sample.gauges) {
            out += (first ? "" : ",");
            out += jsonQuote(name);
            out += ':';
            out += jsonNumber(value);
            first = false;
        }
        out += "},\"hists\":{";
        first = true;
        for (const auto &[name, hist] : sample.hists) {
            out += (first ? "" : ",");
            out += jsonQuote(name);
            out += ":[";
            out += std::to_string(hist.count);
            out += ',';
            out += jsonNumber(hist.mean);
            out += ',';
            out += jsonNumber(hist.min);
            out += ',';
            out += jsonNumber(hist.max);
            out += ']';
            first = false;
        }
        out += '}';
        if (sample.wall_us != 0) {
            out += ",\"wall_us\":";
            out += std::to_string(sample.wall_us);
        }
        out += '}';
    }
    out += "]}";
    return out;
}

}  // namespace sp::obs
