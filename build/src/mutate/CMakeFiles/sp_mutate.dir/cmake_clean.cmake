file(REMOVE_RECURSE
  "CMakeFiles/sp_mutate.dir/localizer.cc.o"
  "CMakeFiles/sp_mutate.dir/localizer.cc.o.d"
  "CMakeFiles/sp_mutate.dir/mutator.cc.o"
  "CMakeFiles/sp_mutate.dir/mutator.cc.o.d"
  "libsp_mutate.a"
  "libsp_mutate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_mutate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
