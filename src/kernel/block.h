/**
 * @file
 * Kernel basic blocks and the synthetic "assembly" token vocabulary.
 *
 * Each simulated-kernel basic block carries a short token sequence that
 * plays the role the x86 assembly text plays in the paper: it names the
 * operation the block performs and — for branch blocks — *which argument
 * slot* the comparison reads and a bucket of the constant it compares
 * against. This is exactly the signal the paper's Transformer encoder
 * extracts from real `cmp`/`je` instructions, and it is what lets the
 * learned mutator connect an uncovered branch back to the argument that
 * controls it.
 */
#ifndef SP_KERNEL_BLOCK_H
#define SP_KERNEL_BLOCK_H

#include <cstdint>
#include <vector>

#include "kernel/cond.h"

namespace sp::kern {

/** Sentinel for "no successor". */
constexpr uint32_t kNoBlock = ~0u;

/** Synthetic assembly token vocabulary. */
namespace token {

constexpr uint16_t kPad = 0;
constexpr uint16_t kOpMov = 1;
constexpr uint16_t kOpCmp = 2;
constexpr uint16_t kOpJe = 3;
constexpr uint16_t kOpJne = 4;
constexpr uint16_t kOpJb = 5;
constexpr uint16_t kOpJae = 6;
constexpr uint16_t kOpTest = 7;
constexpr uint16_t kOpAnd = 8;
constexpr uint16_t kOpCall = 9;
constexpr uint16_t kOpRet = 10;
constexpr uint16_t kOpLoad = 11;
constexpr uint16_t kOpStore = 12;
constexpr uint16_t kOpBug = 13;
constexpr uint16_t kOpState = 14;
constexpr uint16_t kOpResCheck = 15;

/** Maximum argument slots addressable by slot tokens. */
constexpr uint16_t kMaxSlots = 160;
constexpr uint16_t kSlotBase = 16;  ///< kSlotBase + slot index

/** Comparison-constant bucket tokens. */
constexpr uint16_t kConstBuckets = 48;
constexpr uint16_t kConstBase = kSlotBase + kMaxSlots;

/** Pseudo register-operand tokens for body blocks. */
constexpr uint16_t kRegCount = 16;
constexpr uint16_t kRegBase = kConstBase + kConstBuckets;

constexpr uint16_t kVocabSize = kRegBase + kRegCount;

/** Token naming argument slot `slot` (clamped into the vocabulary). */
uint16_t slotToken(uint16_t slot);

/** Token for the bucket of comparison constant `value`. */
uint16_t constToken(uint64_t value);

/** Token for pseudo-register r. */
uint16_t regToken(uint16_t r);

}  // namespace token

/** How a basic block transfers control. */
enum class Term : uint8_t {
    Fallthrough,  ///< unconditionally continue to `taken`
    Branch,       ///< `cond` true -> `taken`, false -> `fallthrough`
    Return,       ///< leave the system-call handler
};

/** One basic block of a system-call handler's CFG. */
struct BasicBlock
{
    uint32_t id = kNoBlock;
    uint32_t handler = ~0u;       ///< owning syscall id
    std::vector<uint16_t> tokens; ///< synthetic assembly
    Term term = Term::Return;
    Cond cond;                    ///< meaningful only for Term::Branch
    uint32_t taken = kNoBlock;
    uint32_t fallthrough = kNoBlock;
    /** Nesting depth of the guarded region this block sits in (0 = trunk). */
    uint16_t depth = 0;
};

/** Synthesize tokens for a branch block testing `cond`. */
std::vector<uint16_t> branchTokens(const Cond &cond);

/** Synthesize deterministic body tokens for a non-branch block. */
std::vector<uint16_t> bodyTokens(uint32_t block_id);

}  // namespace sp::kern

#endif  // SP_KERNEL_BLOCK_H
