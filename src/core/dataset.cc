#include "core/dataset.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "mutate/mutator.h"
#include "prog/flatten.h"
#include "prog/gen.h"
#include "util/hash.h"
#include "util/logging.h"

namespace sp::core {

namespace {

/** Key identifying a mutation site for grouping. */
uint64_t
siteKey(const mut::ArgLocation &loc)
{
    uint64_t h = hashU64(loc.call_index + 1);
    for (uint16_t step : loc.point.path)
        h = hashCombine(h, step + 1);
    return h;
}

/** Key of a sorted new-coverage block set. */
uint64_t
coverageKey(const std::vector<uint32_t> &blocks)
{
    uint64_t h = 0x1234;
    for (uint32_t b : blocks)
        h = hashCombine(h, b);
    return h;
}

}  // namespace

void
RawExample::canonicalize()
{
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());
    std::sort(mutate_sites.begin(), mutate_sites.end(),
              [](const mut::ArgLocation &a, const mut::ArgLocation &b) {
                  if (a.call_index != b.call_index)
                      return a.call_index < b.call_index;
                  return a.point.path < b.point.path;
              });
    mutate_sites.erase(
        std::unique(mutate_sites.begin(), mutate_sites.end(),
                    [](const mut::ArgLocation &a,
                       const mut::ArgLocation &b) {
                        return a.call_index == b.call_index &&
                               a.point.path == b.point.path;
                    }),
        mutate_sites.end());
}

uint64_t
exampleKey(const RawExample &example, uint64_t base_key)
{
    uint64_t h = hashCombine(0x5350455845ULL, base_key);
    for (uint32_t t : example.targets)
        h = hashCombine(h, t);
    h = hashCombine(h, 0xfeedULL);
    for (const auto &site : example.mutate_sites)
        h = hashCombine(h, siteKey(site));
    return h;
}

Dataset
collectDataset(const kern::Kernel &kernel, const DatasetOptions &opts)
{
    Dataset dataset;
    dataset.kernel = &kernel;
    Rng rng(opts.seed);

    // --- Seed corpus, executed deterministically -----------------------
    auto corpus = prog::generateCorpus(rng, kernel.table(),
                                       opts.corpus_size);
    exec::Executor executor(kernel);  // deterministic mode
    size_t args_total = 0;
    for (auto &base : corpus) {
        auto result = executor.run(base);
        if (result.crashed)
            continue;  // crashed bases are excluded (§5.1)
        args_total += prog::countMutableArgs(base);
        dataset.bases.push_back(std::move(base));
        dataset.base_results.push_back(std::move(result));
    }
    if (dataset.bases.empty()) {
        SP_WARN("dataset collection: every base crashed");
        return dataset;
    }
    dataset.stats.mean_args_per_test =
        static_cast<double>(args_total) /
        static_cast<double>(dataset.bases.size());

    // --- Random mutation campaign per base ------------------------------
    mut::Mutator mutator(kernel.table());
    mut::RandomLocalizer random_localizer;

    // Per base: groups of sites keyed by identical new coverage.
    struct SuccessGroup
    {
        std::vector<uint32_t> new_blocks;
        std::vector<mut::ArgLocation> sites;
        std::unordered_set<uint64_t> site_keys;
    };

    std::vector<RawExample> all_examples;
    double frontier_total = 0.0;
    size_t successful_total = 0;

    for (size_t bi = 0; bi < dataset.bases.size(); ++bi) {
        const prog::Prog &base = dataset.bases[bi];
        const exec::ExecResult &base_result = dataset.base_results[bi];
        const auto frontier =
            graph::alternativeFrontier(kernel, base_result.coverage);
        frontier_total += static_cast<double>(frontier.size());
        if (frontier.empty() || frontier.size() > opts.max_frontier)
            continue;
        const std::unordered_set<uint32_t> frontier_set(frontier.begin(),
                                                        frontier.end());

        std::map<uint64_t, SuccessGroup> groups;
        for (size_t m = 0; m < opts.mutations_per_base; ++m) {
            auto sites = random_localizer.localize(base, rng, 1);
            if (sites.empty())
                break;
            prog::Prog mutant;
            mutant.calls = base.calls;
            if (!mutator.instantiateArgMutation(mutant, sites[0], rng))
                continue;
            auto result = executor.run(mutant);
            auto new_blocks =
                base_result.coverage.newBlocks(result.coverage);
            if (new_blocks.empty())
                continue;
            ++successful_total;
            std::sort(new_blocks.begin(), new_blocks.end());
            auto &group = groups[coverageKey(new_blocks)];
            if (group.new_blocks.empty())
                group.new_blocks = std::move(new_blocks);
            if (group.site_keys.insert(siteKey(sites[0])).second)
                group.sites.push_back(std::move(sites[0]));
        }

        // --- Build examples with option-(c) noisy targets ---------------
        // Fraction of the noisy frontier sampled into the target set
        // (-1 = a single reached block). Small fractions dominate:
        // near-full target sets from different success groups of one
        // base collide into identical inputs with conflicting labels,
        // which only injects irreducible label noise.
        static const double kFractions[] = {-1.0, -1.0, 0.25, 0.25, 0.5};
        for (auto &[key, group] : groups) {
            (void)key;
            // Reached frontier blocks: new blocks one hop from c_i.
            std::vector<uint32_t> reached;
            for (uint32_t b : group.new_blocks)
                if (frontier_set.count(b))
                    reached.push_back(b);
            if (reached.empty())
                continue;

            for (size_t variant = 0; variant < opts.variants_per_group;
                 ++variant) {
                RawExample example;
                example.base_index = static_cast<uint32_t>(bi);
                example.mutate_sites = group.sites;

                const double fraction =
                    kFractions[rng.below(sizeof(kFractions) /
                                         sizeof(kFractions[0]))];
                std::unordered_set<uint32_t> targets;
                // Always keep at least one truly-reached block.
                targets.insert(reached[rng.below(reached.size())]);
                if (fraction > 0.0) {
                    for (uint32_t b : frontier) {
                        if (rng.chance(fraction))
                            targets.insert(b);
                    }
                    for (uint32_t b : reached) {
                        if (rng.chance(fraction))
                            targets.insert(b);
                    }
                }
                example.targets.assign(targets.begin(), targets.end());
                example.canonicalize();
                all_examples.push_back(std::move(example));
            }
        }
    }
    dataset.stats.mean_frontier_size =
        frontier_total / static_cast<double>(dataset.bases.size());
    dataset.stats.total_successful_mutations = successful_total;
    dataset.stats.mean_successful_mutations_per_base =
        static_cast<double>(successful_total) /
        static_cast<double>(dataset.bases.size());

    // --- Popularity cap ---------------------------------------------------
    {
        std::unordered_map<uint32_t, size_t> popularity;
        std::vector<RawExample> kept;
        kept.reserve(all_examples.size());
        // Shuffle so the cap does not systematically favor early bases.
        for (size_t i = all_examples.size(); i > 1; --i) {
            std::swap(all_examples[i - 1],
                      all_examples[rng.below(i)]);
        }
        for (auto &example : all_examples) {
            bool over = false;
            for (uint32_t b : example.targets)
                over |= (popularity[b] >= opts.popularity_cap);
            if (over) {
                ++dataset.stats.discarded_by_popularity;
                continue;
            }
            for (uint32_t b : example.targets)
                ++popularity[b];
            kept.push_back(std::move(example));
        }
        all_examples = std::move(kept);
    }

    double target_total = 0.0;
    for (const auto &example : all_examples)
        target_total += static_cast<double>(example.targets.size());
    dataset.stats.mean_target_set_size =
        all_examples.empty()
            ? 0.0
            : target_total / static_cast<double>(all_examples.size());

    // --- Split by base test ----------------------------------------------
    std::vector<uint8_t> split_of_base(dataset.bases.size());
    for (auto &split : split_of_base) {
        const double roll = rng.uniform();
        const double valid_cut =
            opts.train_fraction + (1.0 - opts.train_fraction) / 2.0;
        split = roll < opts.train_fraction ? 0
                : roll < valid_cut         ? 1
                                           : 2;
    }
    for (auto &example : all_examples) {
        switch (split_of_base[example.base_index]) {
          case 0:
            dataset.train.push_back(std::move(example));
            break;
          case 1:
            dataset.valid.push_back(std::move(example));
            break;
          default:
            dataset.eval.push_back(std::move(example));
            break;
        }
    }
    return dataset;
}

std::pair<graph::EncodedGraph, std::vector<float>>
materializeExample(const Dataset &dataset, const RawExample &example)
{
    std::pair<graph::EncodedGraph, std::vector<float>> out;
    materializeExampleInto(dataset, example, out.first, out.second);
    return out;
}

void
materializeExampleInto(const Dataset &dataset, const RawExample &example,
                       graph::EncodedGraph &graph_out,
                       std::vector<float> &labels_out)
{
    SP_ASSERT(dataset.kernel != nullptr);
    SP_ASSERT(example.base_index < dataset.bases.size());
    const auto &base = dataset.bases[example.base_index];
    const auto &result = dataset.base_results[example.base_index];

    auto query = graph::buildQueryGraph(*dataset.kernel, base, result,
                                        example.targets);
    labels_out.assign(query.argument_nodes.size(), 0.0f);
    for (size_t i = 0; i < query.argument_locations.size(); ++i) {
        for (const auto &site : example.mutate_sites) {
            if (query.argument_locations[i].call_index ==
                    site.call_index &&
                query.argument_locations[i].point.path ==
                    site.point.path) {
                labels_out[i] = 1.0f;
            }
        }
    }
    graph::encodeGraphInto(*dataset.kernel, query, graph_out);
}

double
meanSitesPerExample(const std::vector<RawExample> &split)
{
    if (split.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &example : split)
        total += static_cast<double>(example.mutate_sites.size());
    return total / static_cast<double>(split.size());
}

}  // namespace sp::core
