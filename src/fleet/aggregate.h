/**
 * @file
 * The coordinator's merge core: every artifact a lease result carries
 * folds into one FleetAggregate under the coordinator's lock.
 *
 * Every merge is commutative and idempotent where it must be:
 *
 *  - programs are content-addressed by the FNV-1a of their formatProg
 *    text (data::progKey's identity), so a re-sent program is a no-op;
 *  - crashes dedup through fuzz::CrashLog's bug-index key — the same
 *    path a single-process campaign uses — so no crash exists twice
 *    fleet-wide;
 *  - covmap deltas are additive per block/edge index and posterior
 *    deltas additive per arm, so the aggregate is independent of node
 *    count and arrival order (the lease-grid analog of the worker-
 *    shard merge discipline covmap_test/policy_test pin).
 *
 * Not thread-safe: the coordinator serializes merges, exactly like
 * the campaign engine's in-order checkpoint owner.
 */
#ifndef SP_FLEET_AGGREGATE_H
#define SP_FLEET_AGGREGATE_H

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "fleet/wire.h"
#include "fuzz/crash.h"
#include "obs/covmap.h"

namespace sp::fleet {

/** What one merge() changed (the ResultAck + counter feed). */
struct MergeOutcome
{
    uint64_t new_programs = 0;
    uint64_t dup_programs = 0;
    uint64_t new_crashes = 0;
    uint64_t dup_crashes = 0;
};

class FleetAggregate
{
  public:
    /** Programs retained for seed batches (most recent first out). */
    static constexpr size_t kSeedPoolCap = 256;

    FleetAggregate(const kern::Kernel &kernel, bool covmap_enabled);

    /** Fold one lease result in. Caller serializes. */
    MergeOutcome merge(const LeaseResultMsg &result);

    /** @name Global coverage / corpus / crash views */
    /** @{ */
    size_t corpusSize() const { return program_keys_.size(); }
    size_t edgeCount() const { return edges_.size(); }
    size_t blockCount() const { return blocks_.size(); }
    size_t uniqueCrashes() const { return crashes_.uniqueCrashes(); }
    const fuzz::CrashLog &crashes() const { return crashes_; }
    /** @} */

    /** Up to `max` most recently admitted program texts. */
    std::vector<std::string> seedBatch(size_t max) const;

    /** @name Covmap aggregate (lease-grid merged hit maps) */
    /** @{ */
    bool covmapEnabled() const { return covmap_enabled_; }
    const std::vector<uint64_t> &blockHits() const { return block_hits_; }
    const std::vector<uint64_t> &edgeHits() const { return edge_hits_; }
    uint64_t strayEdges() const { return stray_edges_; }
    uint64_t covWindows() const { return cov_windows_; }
    /** The merged summary at virtual time `execs` (frontier ranked by
     *  obs::computeFrontier — identical ordering to a local covmap). */
    obs::CovSummary covSummary(uint64_t execs, size_t cap) const;
    /** The /coverage JSON payload (CovMap::summaryJson's shape). */
    std::string coverageJson(uint64_t execs) const;
    /** @} */

    /** @name Policy posterior aggregate */
    /** @{ */
    bool havePolicy() const { return !policy_name_.empty(); }
    const std::string &policyName() const { return policy_name_; }
    /** Execs-weighted mean of node-reported model shares. */
    double pmmShare() const;
    uint64_t posteriorPulls(uint32_t arm) const;
    uint64_t posteriorWins(uint32_t arm) const;
    /** Arms with nonzero pulls, ascending arm id (tick payload). */
    std::vector<WireArm> posteriorArms() const;
    /** @} */

  private:
    const kern::Kernel &kernel_;
    fuzz::CrashLog crashes_;

    std::unordered_set<uint64_t> program_keys_;
    std::deque<std::string> seed_pool_;  ///< admitted texts, oldest first
    std::unordered_set<uint32_t> blocks_;
    std::unordered_set<uint64_t> edges_;

    bool covmap_enabled_;
    obs::CovMapPlan plan_;
    std::vector<uint64_t> block_hits_;
    std::vector<uint64_t> edge_hits_;
    uint64_t stray_edges_ = 0;
    uint64_t cov_windows_ = 0;

    std::string policy_name_;
    std::map<uint32_t, std::pair<uint64_t, uint64_t>> posterior_;
    double pmm_share_weighted_ = 0.0;
    uint64_t pmm_share_execs_ = 0;
};

}  // namespace sp::fleet

#endif  // SP_FLEET_AGGREGATE_H
