#include "util/logging.h"

#include <atomic>
#include <cstdarg>
#include <mutex>

namespace sp {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

// Serializes log lines so concurrent fuzzer threads do not interleave.
std::mutex g_log_mutex;

void
vlogLine(const char *tag, const char *file, int line,
         const char *fmt, va_list args)
{
    std::lock_guard<std::mutex> guard(g_log_mutex);
    if (file != nullptr)
        std::fprintf(stderr, "[%s] %s:%d: ", tag, file, line);
    else
        std::fprintf(stderr, "[%s] ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogLine("panic", file, line, fmt, args);
    va_end(args);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogLine("fatal", file, line, fmt, args);
    va_end(args);
    std::exit(1);
}

void
logImpl(LogLevel level, const char *tag, const char *fmt, ...)
{
    if (static_cast<int>(level) >
        g_level.load(std::memory_order_relaxed)) {
        return;
    }
    va_list args;
    va_start(args, fmt);
    vlogLine(tag, nullptr, 0, fmt, args);
    va_end(args);
}

}  // namespace detail
}  // namespace sp
