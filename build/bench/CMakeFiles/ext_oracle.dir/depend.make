# Empty dependencies file for ext_oracle.
# This may be replaced when dependencies are built.
