#include "exec/coverage.h"

namespace sp::exec {

void
CoverageSet::addTrace(const std::vector<uint32_t> &trace)
{
    for (size_t i = 0; i < trace.size(); ++i) {
        blocks_.insert(trace[i]);
        if (i + 1 < trace.size())
            edges_.insert(edgeKey(trace[i], trace[i + 1]));
    }
}

void
CoverageSet::merge(const CoverageSet &other)
{
    blocks_.insert(other.blocks_.begin(), other.blocks_.end());
    edges_.insert(other.edges_.begin(), other.edges_.end());
}

size_t
CoverageSet::countNewBlocks(const CoverageSet &other) const
{
    size_t count = 0;
    for (uint32_t b : other.blocks_)
        count += (blocks_.count(b) == 0);
    return count;
}

size_t
CoverageSet::countNewEdges(const CoverageSet &other) const
{
    size_t count = 0;
    for (uint64_t e : other.edges_)
        count += (edges_.count(e) == 0);
    return count;
}

std::vector<uint32_t>
CoverageSet::newBlocks(const CoverageSet &other) const
{
    std::vector<uint32_t> result;
    for (uint32_t b : other.blocks_)
        if (blocks_.count(b) == 0)
            result.push_back(b);
    return result;
}

}  // namespace sp::exec
