/**
 * @file
 * Crash recording, deduplication, triage and reproduction.
 *
 * Crashes are deduplicated by bug site (the analog of deduplicating by
 * crash description). Each unique crash is classified as known (already
 * on the continuous-fuzzing list, Syzbot's analog) or new, categorized
 * by manifestation (Table 3), and put through a syz-repro-style
 * reproduction pass: replay the trigger under nondeterministic
 * execution a bounded number of times, then greedily minimize the
 * reproducer by dropping calls.
 */
#ifndef SP_FUZZ_CRASH_H
#define SP_FUZZ_CRASH_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/executor.h"
#include "kernel/kernel.h"
#include "prog/value.h"

namespace sp::fuzz {

/** One deduplicated crash. */
struct CrashRecord
{
    uint32_t bug_index = 0;
    std::string description;
    std::string location;
    kern::BugKind kind = kern::BugKind::Other;
    bool known = false;
    bool flaky = false;
    uint64_t first_seen_exec = 0;
    uint64_t hit_count = 0;
    prog::Prog trigger;         ///< first program that crashed
    bool repro_attempted = false;
    bool reproduced = false;
    prog::Prog reproducer;      ///< minimized, valid when reproduced
};

/** Options of the reproduction pass. */
struct ReproOptions
{
    /** Replay attempts per candidate (syz-repro is similarly bounded). */
    int attempts = 3;
    uint64_t noise_seed = 0x5eed;
};

/**
 * Dedup store of crashes found by one campaign. `record` and
 * `uniqueCrashes` are thread-safe (campaign workers triage
 * concurrently); every other accessor expects a quiescent log
 * (post-join reporting, reproduction).
 */
class CrashLog
{
  public:
    explicit CrashLog(const kern::Kernel &kernel);

    /** Record a crash observation; dedups by bug site. Thread-safe. */
    void record(uint32_t bug_index, const prog::Prog &trigger,
                uint64_t exec_counter);

    /**
     * Run reproduction and minimization for every recorded crash that
     * has not been attempted yet.
     */
    void reproduceAll(const ReproOptions &opts = {});

    const std::vector<CrashRecord> &records() const { return records_; }

    /** @name Tally helpers (Tables 2 and 3) */
    /** @{ */
    /** Deduplicated crash count. Thread-safe (lock-free read). */
    size_t uniqueCrashes() const
    {
        return unique_count_.load(std::memory_order_acquire);
    }
    size_t newCrashes() const;
    size_t knownCrashes() const;
    size_t reproducedCrashes() const;
    /** New crashes of `kind`, split by reproducer presence. */
    std::pair<size_t, size_t> newByKind(kern::BugKind kind) const;
    /** @} */

  private:
    /** True when `program` crashes at the record's bug site. */
    bool replayCrashes(const CrashRecord &record,
                       const prog::Prog &program,
                       const ReproOptions &opts, uint64_t salt) const;

    const kern::Kernel &kernel_;
    mutable std::mutex mu_;  ///< guards records_ and by_bug_ mutation
    std::vector<CrashRecord> records_;
    std::unordered_map<uint32_t, size_t> by_bug_;
    std::atomic<size_t> unique_count_{0};
};

}  // namespace sp::fuzz

#endif  // SP_FUZZ_CRASH_H
