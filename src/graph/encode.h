/**
 * @file
 * Numeric encoding of a query graph for the GNN: per-node categorical
 * feature ids (node kind, syscall id, argument type and slot, target
 * flag), fixed-width token windows of each block's synthetic assembly,
 * and per-edge-kind adjacency lists in both directions (typed message
 * passing needs the reverse edges too).
 */
#ifndef SP_GRAPH_ENCODE_H
#define SP_GRAPH_ENCODE_H

#include <array>
#include <cstdint>
#include <vector>

#include "graph/query_graph.h"

namespace sp::graph {

/** Feature vocabularies (shared between encoder and model). */
struct EncodeVocab
{
    static constexpr int32_t kNodeKinds = 4;
    static constexpr int32_t kSyscallVocab = 128;  ///< syscall id cap
    static constexpr int32_t kArgTypeVocab = 16;   ///< TypeKind cap
    static constexpr int32_t kTokenWindow = 10;    ///< block tokens kept
};

/** Adjacency of one edge relation. */
struct AdjList
{
    std::vector<int32_t> src;
    std::vector<int32_t> dst;
};

/** Encoded graph, ready to feed the model. */
struct EncodedGraph
{
    int32_t num_nodes = 0;
    std::vector<int32_t> node_kind;
    std::vector<int32_t> syscall_tok;  ///< 0 when not a syscall node
    std::vector<int32_t> arg_type_tok; ///< 0 when not an argument node
    std::vector<int32_t> arg_slot_tok; ///< 0 when not an argument node
    std::vector<int32_t> target_flag;  ///< 1 on target alternatives
    /** [num_nodes * kTokenWindow], kPad-padded; zeros off block nodes. */
    std::vector<int32_t> block_tokens;
    /**
     * Relations 0..kNumEdgeKinds-1 are the forward edge kinds;
     * kNumEdgeKinds..2*kNumEdgeKinds-1 their reverses.
     */
    std::array<AdjList, kNumEdgeKinds * 2> adj;
    /** Indices of argument nodes (prediction heads), graph order. */
    std::vector<int32_t> argument_nodes;
};

/** Encode a query graph against its kernel. */
EncodedGraph encodeGraph(const kern::Kernel &kernel,
                         const QueryGraph &graph);

/**
 * Encode into a caller-owned EncodedGraph, reusing its buffers.
 * Hot loops (the fuzz localizer, evaluation sweeps) encode thousands
 * of graphs; passing the same `out` back in retains every vector's
 * capacity so a steady-state encode performs no heap allocation.
 */
void encodeGraphInto(const kern::Kernel &kernel, const QueryGraph &graph,
                     EncodedGraph &out);

/**
 * Several independent graphs packed into one block-diagonal batch:
 * node features are concatenated, adjacency indices are shifted by
 * each graph's node offset, so one forward pass over `merged` runs the
 * dense layers as batched GEMMs while message passing stays exact
 * (edges never cross graph boundaries). `argument_counts[i]` says how
 * many rows of the merged prediction belong to input graph i, in
 * input order — per-node results are bit-identical to running each
 * graph alone because every per-row computation sees the same
 * operands.
 */
struct GraphBatch
{
    EncodedGraph merged;
    std::vector<int32_t> node_offsets;     ///< per input graph
    std::vector<size_t> argument_counts;   ///< per input graph
};

/** Pack graphs (each with ≥ 1 node) into one batch. */
GraphBatch concatGraphs(const std::vector<const EncodedGraph *> &graphs);

}  // namespace sp::graph

#endif  // SP_GRAPH_ENCODE_H
