/**
 * @file
 * The campaign scheduler seam and the virtual-time budget ledger.
 *
 * Two pieces of Figure 1's loop become explicit, pluggable stages here:
 *
 *  - **schedule**: a Scheduler picks the base corpus entry each worker
 *    mutates next. The default reproduces the corpus' recency-biased
 *    pick; the legacy `FuzzOptions::choose_test` hook and the directed
 *    mode's distance-guided picker (core/directed.h) are Scheduler
 *    implementations, which is the seam later corpus-scheduling work
 *    (e.g. Thompson-sampling over entries) plugs into.
 *
 *  - **virtual time**: the execution budget (one unit per executed
 *    test, DESIGN.md §6) becomes a shared BudgetLedger that workers
 *    claim slots from. Grants are aligned to the checkpoint grid —
 *    no grant ever spans a multiple of `checkpoint_every` — so the
 *    coverage timeline stays on the same fixed execution grid no
 *    matter how many workers run, and every slot has a globally unique
 *    1-based execution number for crash/admission/telemetry stamping.
 */
#ifndef SP_FUZZ_SCHED_H
#define SP_FUZZ_SCHED_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "fuzz/corpus.h"

namespace sp::fuzz {

/** A claimed run of virtual-time execution slots. */
struct BudgetGrant
{
    uint64_t begin = 0;  ///< first slot index (0-based)
    uint64_t count = 0;  ///< slots granted; 0 = budget exhausted

    bool empty() const { return count == 0; }
};

/**
 * Shared virtual-time budget. Thread-safe; claims are checkpoint
 * aligned. Completion is tracked two ways: `completed()` is the total
 * slot count (campaign accounting), while `prefixCompleted()` is the
 * contiguous-prefix watermark — every slot below it has finished, no
 * matter how grants interleaved across workers — which is what
 * checkpoint emission synchronizes on (`waitForPrefix`).
 */
class BudgetLedger
{
  public:
    /**
     * @param budget  total executions allowed (absolute, not relative
     *                to `start`)
     * @param align   checkpoint grid; grants never span a multiple
     * @param start   slots already spent (legacy Fuzzer reruns)
     */
    BudgetLedger(uint64_t budget, uint64_t align, uint64_t start = 0);

    /**
     * Claim up to `want` slots. The grant is trimmed to the budget and
     * to the next checkpoint boundary. With `bounded` false the budget
     * cap is ignored (the seed phase executes its whole generated
     * corpus exactly like the legacy loop, even past the budget).
     */
    BudgetGrant claim(uint64_t want, bool bounded = true);

    /** Mark the slots of `grant` as executed, advancing the prefix
     *  watermark (and waking `waitForPrefix` waiters) when the grant
     *  closes a gap. */
    void complete(const BudgetGrant &grant);

    /** Block until every slot below `slot` has completed. */
    void waitForPrefix(uint64_t slot);

    /** True once every budgeted slot has been claimed. */
    bool exhausted() const { return claimed() >= budget_; }

    uint64_t budget() const { return budget_; }
    uint64_t claimed() const
    {
        return next_.load(std::memory_order_acquire);
    }
    uint64_t completed() const
    {
        return completed_.load(std::memory_order_acquire);
    }
    /** Contiguous completed prefix: slots [0, watermark) are done. */
    uint64_t prefixCompleted() const
    {
        return watermark_.load(std::memory_order_acquire);
    }

  private:
    const uint64_t budget_;
    const uint64_t align_;
    std::atomic<uint64_t> next_;
    std::atomic<uint64_t> completed_;
    std::atomic<uint64_t> watermark_;

    /** Guards the watermark advance and the waiter wakeup. */
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::atomic<int> waiters_{0};
    /** Completed grants stranded above the watermark, by begin slot. */
    std::map<uint64_t, uint64_t> pending_done_;
};

/** Picks the base corpus entry for a worker's next mutation round. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Choose the entry to mutate. Must be callable from concurrent
     * workers (each passes its own RNG; the corpus is thread-safe).
     */
    virtual const CorpusEntry &pick(const Corpus &corpus, Rng &rng) = 0;
};

/** The default policy: the corpus' recency-biased random pick. */
class RecencyScheduler : public Scheduler
{
  public:
    const CorpusEntry &
    pick(const Corpus &corpus, Rng &rng) override
    {
        return corpus.pick(rng);
    }
};

/** Adapts a legacy `choose_test` hook onto the scheduler seam. */
class HookScheduler : public Scheduler
{
  public:
    using Hook =
        std::function<const CorpusEntry &(const Corpus &, Rng &)>;

    explicit HookScheduler(Hook hook) : hook_(std::move(hook)) {}

    const CorpusEntry &
    pick(const Corpus &corpus, Rng &rng) override
    {
        return hook_(corpus, rng);
    }

  private:
    Hook hook_;
};

}  // namespace sp::fuzz

#endif  // SP_FUZZ_SCHED_H
