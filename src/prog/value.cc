#include "prog/value.h"

#include <functional>

#include "util/hash.h"
#include "util/logging.h"

namespace sp::prog {

ArgPtr
Arg::clone() const
{
    auto copy = std::make_unique<Arg>();
    copy->type = type;
    copy->scalar = scalar;
    copy->is_null = is_null;
    if (pointee)
        copy->pointee = pointee->clone();
    copy->fields.reserve(fields.size());
    for (const auto &f : fields)
        copy->fields.push_back(f->clone());
    copy->bytes = bytes;
    copy->result_ref = result_ref;
    return copy;
}

bool
Arg::equals(const Arg &other) const
{
    if (type.get() != other.type.get())
        return false;
    switch (type->kind) {
      case TypeKind::Int:
      case TypeKind::Flags:
      case TypeKind::Const:
      case TypeKind::Len:
        return scalar == other.scalar;
      case TypeKind::Resource:
        return result_ref == other.result_ref;
      case TypeKind::Ptr:
        if (is_null != other.is_null)
            return false;
        return is_null || pointee->equals(*other.pointee);
      case TypeKind::Struct:
        if (fields.size() != other.fields.size())
            return false;
        for (size_t i = 0; i < fields.size(); ++i)
            if (!fields[i]->equals(*other.fields[i]))
                return false;
        return true;
      case TypeKind::Buffer:
        return bytes == other.bytes;
    }
    SP_PANIC("unreachable type kind");
}

Call::Call(const Call &other)
    : decl(other.decl)
{
    args.reserve(other.args.size());
    for (const auto &a : other.args)
        args.push_back(a->clone());
}

Call &
Call::operator=(const Call &other)
{
    if (this != &other) {
        decl = other.decl;
        args.clear();
        args.reserve(other.args.size());
        for (const auto &a : other.args)
            args.push_back(a->clone());
    }
    return *this;
}

bool
Prog::equals(const Prog &other) const
{
    if (calls.size() != other.calls.size())
        return false;
    for (size_t i = 0; i < calls.size(); ++i) {
        if (calls[i].decl != other.calls[i].decl ||
            calls[i].args.size() != other.calls[i].args.size()) {
            return false;
        }
        for (size_t j = 0; j < calls[i].args.size(); ++j)
            if (!calls[i].args[j]->equals(*other.calls[i].args[j]))
                return false;
    }
    return true;
}

namespace {

uint64_t
hashArg(const Arg &arg, uint64_t h)
{
    h = hashCombine(h, static_cast<uint64_t>(arg.type->kind));
    switch (arg.type->kind) {
      case TypeKind::Int:
      case TypeKind::Flags:
      case TypeKind::Const:
      case TypeKind::Len:
        return hashCombine(h, arg.scalar);
      case TypeKind::Resource:
        return hashCombine(h, static_cast<uint64_t>(arg.result_ref) + 1);
      case TypeKind::Ptr:
        if (arg.is_null)
            return hashCombine(h, 0xdeadULL);
        return hashArg(*arg.pointee, hashCombine(h, 0xbeefULL));
      case TypeKind::Struct:
        for (const auto &f : arg.fields)
            h = hashArg(*f, h);
        return h;
      case TypeKind::Buffer:
        return hashCombine(
            h, fnv1aBytes(arg.bytes.data(), arg.bytes.size()));
    }
    SP_PANIC("unreachable type kind");
}

}  // namespace

uint64_t
Prog::hash() const
{
    uint64_t h = 0x5eedULL;
    for (const auto &call : calls) {
        h = hashCombine(h, fnv1a(call.decl->name));
        for (const auto &arg : call.args)
            h = hashArg(*arg, h);
    }
    return h;
}

ArgPtr
defaultArg(const TypeRef &type)
{
    auto arg = std::make_unique<Arg>();
    arg->type = type;
    switch (type->kind) {
      case TypeKind::Int:
        arg->scalar = static_cast<uint64_t>(type->min);
        break;
      case TypeKind::Flags:
        arg->scalar = type->domain.front();
        break;
      case TypeKind::Const:
        arg->scalar = type->const_value;
        break;
      case TypeKind::Len:
        arg->scalar = 0;  // fixed up later
        break;
      case TypeKind::Resource:
        arg->result_ref = -1;
        break;
      case TypeKind::Ptr:
        arg->is_null = false;
        arg->pointee = defaultArg(type->elem);
        break;
      case TypeKind::Struct:
        for (const auto &f : type->fields)
            arg->fields.push_back(defaultArg(f));
        break;
      case TypeKind::Buffer:
        arg->bytes.assign(type->buf_min, 0);
        break;
    }
    return arg;
}

std::vector<ArgPtr>
defaultArgs(const SyscallDecl &decl)
{
    std::vector<ArgPtr> args;
    args.reserve(decl.args.size());
    for (const auto &t : decl.args)
        args.push_back(defaultArg(t));
    return args;
}

namespace {

// Fix Len fields among a sibling group (struct fields or top-level args).
void
fixupSiblingLens(std::vector<ArgPtr> &siblings)
{
    for (auto &arg : siblings) {
        if (arg->type->kind == TypeKind::Len) {
            const uint32_t target = arg->type->len_target;
            if (target < siblings.size()) {
                const Arg &sib = *siblings[target];
                if (sib.type->kind == TypeKind::Buffer) {
                    arg->scalar = sib.bytes.size();
                } else if (sib.type->kind == TypeKind::Ptr &&
                           !sib.is_null &&
                           sib.pointee->type->kind == TypeKind::Buffer) {
                    arg->scalar = sib.pointee->bytes.size();
                }
            }
        }
    }
}

void
fixupLengthsRec(Arg &arg)
{
    switch (arg.type->kind) {
      case TypeKind::Ptr:
        if (!arg.is_null)
            fixupLengthsRec(*arg.pointee);
        break;
      case TypeKind::Struct:
        for (auto &f : arg.fields)
            fixupLengthsRec(*f);
        fixupSiblingLens(arg.fields);
        break;
      default:
        break;
    }
}

}  // namespace

void
fixupLengths(Call &call)
{
    for (auto &arg : call.args)
        fixupLengthsRec(*arg);
    fixupSiblingLens(call.args);
}

namespace {

template <typename ArgT, typename Fn>
void
visitRec(ArgT &arg, std::vector<uint16_t> &path, const Fn &fn)
{
    fn(arg, path);
    switch (arg.type->kind) {
      case TypeKind::Ptr:
        if (!arg.is_null) {
            path.push_back(0);
            visitRec(*arg.pointee, path, fn);
            path.pop_back();
        }
        break;
      case TypeKind::Struct:
        for (size_t i = 0; i < arg.fields.size(); ++i) {
            path.push_back(static_cast<uint16_t>(i));
            visitRec(*arg.fields[i], path, fn);
            path.pop_back();
        }
        break;
      default:
        break;
    }
}

}  // namespace

void
visitArgs(const Call &call,
          const std::function<void(const Arg &,
                                   const std::vector<uint16_t> &)> &fn)
{
    std::vector<uint16_t> path;
    for (size_t i = 0; i < call.args.size(); ++i) {
        path.push_back(static_cast<uint16_t>(i));
        visitRec<const Arg>(*call.args[i], path, fn);
        path.pop_back();
    }
}

void
visitArgsMut(Call &call,
             const std::function<void(Arg &,
                                      const std::vector<uint16_t> &)> &fn)
{
    std::vector<uint16_t> path;
    for (size_t i = 0; i < call.args.size(); ++i) {
        path.push_back(static_cast<uint16_t>(i));
        visitRec<Arg>(*call.args[i], path, fn);
        path.pop_back();
    }
}

namespace {

template <typename CallT, typename ArgT>
ArgT &
argAtPathImpl(CallT &call, const std::vector<uint16_t> &path)
{
    SP_ASSERT(!path.empty() && path[0] < call.args.size(),
              "bad argument path");
    ArgT *node = call.args[path[0]].get();
    for (size_t i = 1; i < path.size(); ++i) {
        const uint16_t step = path[i];
        if (node->type->kind == TypeKind::Ptr) {
            SP_ASSERT(step == 0 && !node->is_null, "bad path through ptr");
            node = node->pointee.get();
        } else if (node->type->kind == TypeKind::Struct) {
            SP_ASSERT(step < node->fields.size(),
                      "bad path through struct");
            node = node->fields[step].get();
        } else {
            SP_PANIC("path descends into a leaf argument");
        }
    }
    return *node;
}

}  // namespace

Arg &
argAtPath(Call &call, const std::vector<uint16_t> &path)
{
    return argAtPathImpl<Call, Arg>(call, path);
}

const Arg &
argAtPath(const Call &call, const std::vector<uint16_t> &path)
{
    return argAtPathImpl<const Call, const Arg>(call, path);
}

void
shiftResultRefs(Prog &prog, size_t position, int delta)
{
    SP_ASSERT(delta == 1 || delta == -1);
    for (auto &call : prog.calls) {
        for (auto &arg : call.args) {
            std::vector<uint16_t> path;
            // Walk the whole tree adjusting resource references.
            std::function<void(Arg &)> walk = [&](Arg &node) {
                if (node.type->kind == TypeKind::Resource &&
                    node.result_ref >= 0) {
                    const auto ref = static_cast<size_t>(node.result_ref);
                    if (delta == 1) {
                        if (ref >= position)
                            node.result_ref += 1;
                    } else {
                        if (ref == position)
                            node.result_ref = -1;
                        else if (ref > position)
                            node.result_ref -= 1;
                    }
                } else if (node.type->kind == TypeKind::Ptr &&
                           !node.is_null) {
                    walk(*node.pointee);
                } else if (node.type->kind == TypeKind::Struct) {
                    for (auto &f : node.fields)
                        walk(*f);
                }
            };
            walk(*arg);
        }
    }
}

}  // namespace sp::prog
