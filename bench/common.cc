#include "bench/common.h"

#include <cstdio>

#include "core/train.h"
#include "nn/serialize.h"
#include "util/logging.h"

namespace spbench {

using namespace sp;

namespace {

// The cache path is versioned with the checkpoint format: a stale
// cache from a build with an older format must miss (and retrain), not
// die in loadParameters' format check.
constexpr const char *kCheckpointPath =
    "/tmp/snowplow_eval_pmm.v2.ckpt";
constexpr const char *kThresholdPath =
    "/tmp/snowplow_eval_pmm.v2.threshold";

float g_threshold = 0.5f;

void
storeThreshold(float threshold)
{
    g_threshold = threshold;
    if (std::FILE *f = std::fopen(kThresholdPath, "w")) {
        std::fprintf(f, "%f\n", threshold);
        std::fclose(f);
    }
}

void
loadThreshold()
{
    if (std::FILE *f = std::fopen(kThresholdPath, "r")) {
        float value = 0.5f;
        if (std::fscanf(f, "%f", &value) == 1)
            g_threshold = value;
        std::fclose(f);
    }
}

}  // namespace

kern::KernelGenParams
evalKernelParams(int evolution, const std::string &version)
{
    kern::KernelGenParams params;
    params.seed = 2024;
    params.num_syscalls = 36;
    params.evolution = evolution;
    params.version = version;
    params.max_depth = 6;
    params.deep_bugs = 14;
    params.shallow_bugs = 6;
    // Wider syscall interfaces and longer handlers push the per-test
    // argument count and covered-block count toward the paper's
    // proportions (§5.1: >60 arguments per test, covered >> program
    // nodes) while staying single-core trainable.
    params.min_extra_args = 5;
    params.max_extra_args = 7;
    params.trunk_min = 8;
    params.trunk_max = 14;
    params.branch_prob = 0.72;
    return params;
}

kern::Kernel
makeEvalKernel(const std::string &version)
{
    int evolution = 0;
    if (version == "6.9")
        evolution = 1;
    else if (version == "6.10")
        evolution = 2;
    else
        SP_ASSERT(version == "6.8", "unknown eval kernel version");
    return kern::buildBaseKernel(evalKernelParams(evolution, version));
}

core::DatasetOptions
evalDatasetOptions()
{
    core::DatasetOptions opts;
    opts.corpus_size = 400;
    opts.mutations_per_base = 400;
    opts.seed = 3;
    return opts;
}

const core::Pmm &
sharedPmm()
{
    static core::Pmm model = [] {
        core::Pmm pmm;  // default PmmConfig
        if (nn::loadParameters(pmm, kCheckpointPath)) {
            loadThreshold();
            std::fprintf(stderr,
                         "[bench] loaded shared PMM from %s "
                         "(threshold %.2f)\n",
                         kCheckpointPath, g_threshold);
            return pmm;
        }
        std::fprintf(stderr,
                     "[bench] training shared PMM on kernel 6.8 "
                     "(one-time; cached at %s)\n",
                     kCheckpointPath);
        kern::Kernel kernel = makeEvalKernel("6.8");
        auto dataset = core::collectDataset(kernel, evalDatasetOptions());
        core::TrainOptions train_opts;
        // Keep the one-time training cost bounded on a single core;
        // the selector quality plateaus well before the full corpus.
        train_opts.epochs = 8;
        train_opts.max_train_examples = 2600;
        auto history = core::trainPmm(pmm, dataset, train_opts);
        storeThreshold(history.best_threshold);
        nn::saveParameters(pmm, kCheckpointPath);
        std::fprintf(stderr,
                     "[bench] trained: valid F1 %.3f, threshold %.2f\n",
                     history.best_valid.f1, history.best_threshold);
        return pmm;
    }();
    return model;
}

fuzz::FuzzOptions
evalFuzzOptions(uint64_t budget, uint64_t seed)
{
    fuzz::FuzzOptions opts;
    opts.exec_budget = budget;
    opts.seed = seed;
    opts.seed_corpus_size = 40;
    opts.checkpoint_every = kHourInExecs / 2;
    return opts;
}

float
sharedPmmThreshold()
{
    return g_threshold;
}

core::SnowplowOptions
evalSnowplowOptions()
{
    core::SnowplowOptions opts;
    opts.threshold = sharedPmmThreshold();
    return opts;
}

double
toHours(uint64_t execs)
{
    return static_cast<double>(execs) /
           static_cast<double>(kHourInExecs);
}

}  // namespace spbench
