#include "core/snowplow.h"

#include <algorithm>
#include <chrono>

#include "graph/encode.h"
#include "graph/query_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace sp::core {

namespace {

/** Registry handles for the localizer cache (looked up once). */
struct LocalizerMetrics
{
    obs::Counter &cache_hits;
    obs::Counter &cache_misses;
    obs::Counter &async_submitted;
    obs::Counter &async_ready;
    obs::Counter &async_pending;
    /** Cached like the counters: CampaignEngine scopes this gauge per
     *  campaign with resetGaugesWithPrefix (value to 0, name stays
     *  registered), so the handle never dangles and lookups stay off
     *  the registry mutex. */
    obs::Gauge &cache_hit_ratio;

    static LocalizerMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static LocalizerMetrics metrics{
            reg.counter("snowplow.cache.hit"),
            reg.counter("snowplow.cache.miss"),
            reg.counter("snowplow.async.submitted"),
            reg.counter("snowplow.async.ready_hit"),
            reg.counter("snowplow.async.pending_fallback"),
            reg.gauge("snowplow.cache_hit_ratio"),
        };
        return metrics;
    }

    void
    countLookup(bool hit)
    {
        (hit ? cache_hits : cache_misses).inc();
        const double total = static_cast<double>(cache_hits.value() +
                                                 cache_misses.value());
        cache_hit_ratio.set(static_cast<double>(cache_hits.value()) /
                            total);
    }
};

/** Rank above-threshold argument sites by probability. */
std::vector<mut::ArgLocation>
rankFromProbs(const std::vector<float> &probs,
              const std::vector<mut::ArgLocation> &locations,
              float threshold, size_t cap)
{
    SP_ASSERT(probs.size() == locations.size());
    std::vector<size_t> order;
    for (size_t i = 0; i < probs.size(); ++i)
        if (probs[i] >= threshold)
            order.push_back(i);
    if (order.empty() && !probs.empty()) {
        size_t best = 0;
        for (size_t i = 1; i < probs.size(); ++i)
            if (probs[i] > probs[best])
                best = i;
        order.push_back(best);
    }
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return probs[a] > probs[b]; });
    if (order.size() > cap)
        order.resize(cap);
    std::vector<mut::ArgLocation> sites;
    sites.reserve(order.size());
    for (size_t i : order)
        sites.push_back(locations[i]);
    return sites;
}

/** Build the mutation query for a base, directed targets honored. */
graph::QueryGraph
buildQueryFor(const kern::Kernel &kernel, const prog::Prog &prog,
              const exec::ExecResult &result,
              const std::vector<uint32_t> &directed_targets)
{
    auto frontier = graph::alternativeFrontier(kernel, result.coverage);
    std::vector<uint32_t> targets;
    if (directed_targets.empty()) {
        targets = std::move(frontier);
    } else {
        for (uint32_t t : directed_targets) {
            if (std::find(frontier.begin(), frontier.end(), t) !=
                frontier.end()) {
                targets.push_back(t);
            }
        }
        if (targets.empty())
            targets = std::move(frontier);
    }
    return graph::buildQueryGraph(kernel, prog, result, targets);
}

}  // namespace

PredictionCache::PredictionCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

bool
PredictionCache::lookup(uint64_t key, std::vector<mut::ArgLocation> *out)
{
    bool hit = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (auto it = map_.find(key); it != map_.end()) {
            hit = true;
            if (out != nullptr)
                *out = it->second;
        }
    }
    (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
    LocalizerMetrics::get().countLookup(hit);
    return hit;
}

void
PredictionCache::insert(uint64_t key, std::vector<mut::ArgLocation> sites)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (map_.size() >= capacity_ && map_.find(key) == map_.end()) {
        // Simple wholesale eviction, as the original per-fuzzer cache.
        evictions_.fetch_add(map_.size(), std::memory_order_relaxed);
        map_.clear();
    }
    map_[key] = std::move(sites);
}

size_t
PredictionCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

PmmLocalizer::PmmLocalizer(const kern::Kernel &kernel, const Pmm &model,
                           SnowplowOptions opts,
                           std::shared_ptr<PredictionCache> cache)
    : kernel_(kernel), model_(model), opts_(std::move(opts)),
      // Deterministic probe executor on the fuzz loop's exec backend.
      probe_(kernel, exec::ExecOptions{true, 0, opts_.exec_backend}),
      cache_(cache ? std::move(cache)
                   : std::make_shared<PredictionCache>(
                         opts_.cache_capacity))
{
}

std::vector<mut::ArgLocation>
PmmLocalizer::localize(const prog::Prog &prog, Rng &rng, size_t max_sites)
{
    // No cached coverage supplied: probe deterministically.
    auto result = probe_.run(prog);
    return localizeWithResult(prog, result, rng, max_sites);
}

std::vector<mut::ArgLocation>
PmmLocalizer::localizeWithResult(const prog::Prog &prog,
                                 const exec::ExecResult &result, Rng &rng,
                                 size_t max_sites)
{
    return localizeChosen(prog, result, rng, max_sites,
                          /*use_model=*/true)
        .sites;
}

mut::Localization
PmmLocalizer::localizeChosen(const prog::Prog &prog,
                             const exec::ExecResult &result, Rng &rng,
                             size_t max_sites, bool use_model)
{
    if (!use_model) {
        // The policy deferred to the random localizer (§3.4).
        ++fallback_queries_;
        return {fallback_.localize(prog, rng,
                                   std::max<size_t>(1, max_sites / 2)),
                mut::LocalizerChannel::Random};
    }
    ++model_queries_;

    const uint64_t key = prog.hash();
    std::vector<mut::ArgLocation> sites;
    if (!cache_->lookup(key, &sites)) {
        sites = rankSites(prog, result, rng, max_sites);
        cache_->insert(key, sites);
    }
    if (sites.size() > max_sites)
        sites.resize(max_sites);
    if (sites.empty()) {
        // Historical accounting: a model query that yielded nothing
        // still counts as a model round, one random site standing in.
        return {fallback_.localize(prog, rng, 1),
                mut::LocalizerChannel::Model};
    }
    return {std::move(sites), mut::LocalizerChannel::Model};
}

std::vector<mut::ArgLocation>
PmmLocalizer::rankSites(const prog::Prog &prog,
                        const exec::ExecResult &result, Rng &rng,
                        size_t max_sites)
{
    (void)rng;
    auto query = buildQueryFor(kernel_, prog, result,
                               opts_.directed_targets);
    if (query.argument_nodes.empty())
        return {};
    graph::encodeGraphInto(kernel_, query, encode_scratch_);
    const auto probs = model_.predict(encode_scratch_);
    // Cache a little extra headroom beyond the caller's cap.
    return rankFromProbs(probs, query.argument_locations,
                         opts_.threshold, max_sites * 2);
}

AsyncPmmLocalizer::AsyncPmmLocalizer(const kern::Kernel &kernel,
                                     InferenceService &service,
                                     SnowplowOptions opts,
                                     std::shared_ptr<PredictionCache> cache)
    : kernel_(kernel), service_(service), opts_(std::move(opts)),
      probe_(kernel, exec::ExecOptions{true, 0, opts_.exec_backend}),
      ready_(cache ? std::move(cache)
                   : std::make_shared<PredictionCache>(
                         opts_.cache_capacity))
{
}

AsyncPmmLocalizer::~AsyncPmmLocalizer()
{
    // Drain outstanding futures so the service's promises are consumed.
    for (auto &[hash, pending] : pending_) {
        (void)hash;
        if (pending.future.valid())
            pending.future.wait();
    }
}

std::vector<mut::ArgLocation>
AsyncPmmLocalizer::localize(const prog::Prog &prog, Rng &rng,
                            size_t max_sites)
{
    auto result = probe_.run(prog);
    return localizeWithResult(prog, result, rng, max_sites);
}

std::vector<mut::ArgLocation>
AsyncPmmLocalizer::localizeWithResult(const prog::Prog &prog,
                                      const exec::ExecResult &result,
                                      Rng &rng, size_t max_sites)
{
    return localizeChosen(prog, result, rng, max_sites,
                          /*use_model=*/true)
        .sites;
}

mut::Localization
AsyncPmmLocalizer::localizeChosen(const prog::Prog &prog,
                                  const exec::ExecResult &result,
                                  Rng &rng, size_t max_sites,
                                  bool use_model)
{
    if (!use_model) {
        // The policy deferred to the random localizer (§3.4).
        return {fallback_.localize(prog, rng,
                                   std::max<size_t>(1, max_sites / 2)),
                mut::LocalizerChannel::Random};
    }

    const uint64_t key = prog.hash();
    if (std::vector<mut::ArgLocation> sites;
        ready_->lookup(key, &sites)) {
        ++answered_;
        LocalizerMetrics::get().async_ready.inc();
        if (sites.size() > max_sites)
            sites.resize(max_sites);
        if (sites.empty()) {
            return {fallback_.localize(prog, rng, 1),
                    mut::LocalizerChannel::Model};
        }
        return {std::move(sites), mut::LocalizerChannel::Model};
    }

    if (auto it = pending_.find(key); it != pending_.end()) {
        if (it->second.future.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
            const auto probs = it->second.future.get();
            auto sites =
                probs.empty()
                    ? std::vector<mut::ArgLocation>{}
                    : rankFromProbs(probs, it->second.locations,
                                    opts_.threshold, max_sites * 2);
            ready_->insert(key, sites);
            pending_.erase(it);
            // Use the ranked sites directly rather than re-entering
            // the counted cache lookup: the landing itself must not
            // skew the snowplow.cache.* hit/miss telemetry.
            ++answered_;
            LocalizerMetrics::get().async_ready.inc();
            if (sites.size() > max_sites)
                sites.resize(max_sites);
            if (sites.empty()) {
                return {fallback_.localize(prog, rng, 1),
                        mut::LocalizerChannel::Model};
            }
            return {std::move(sites), mut::LocalizerChannel::Model};
        }
        // Inference still in flight: let the loop do other mutations.
        // The model was *asked for* but could not answer — a forced
        // random round, reported as its own channel so the reward
        // neither credits the model nor the deliberate fallback.
        ++pending_answers_;
        LocalizerMetrics::get().async_pending.inc();
        return {fallback_.localize(prog, rng, 1),
                mut::LocalizerChannel::ForcedRandom};
    }

    // First sight of this base: submit the query asynchronously. Until
    // it lands, answers are forced-random too.
    auto query = buildQueryFor(kernel_, prog, result,
                               opts_.directed_targets);
    if (query.argument_nodes.empty()) {
        return {fallback_.localize(prog, rng, 1),
                mut::LocalizerChannel::ForcedRandom};
    }
    PendingQuery pending;
    pending.locations = std::move(query.argument_locations);
    // Hand the worker's pipeline trace id across the thread boundary:
    // the service stamps this request's queue-wait and batch spans
    // with it, keeping the round's trace intact through the hop.
    pending.future = service_.submit(graph::encodeGraph(kernel_, query),
                                     obs::currentTraceId());
    pending_.emplace(key, std::move(pending));
    ++submitted_;
    ++pending_answers_;
    LocalizerMetrics::get().async_submitted.inc();
    return {fallback_.localize(prog, rng, 1),
            mut::LocalizerChannel::ForcedRandom};
}

std::unique_ptr<fuzz::Fuzzer>
makeSnowplowFuzzer(const kern::Kernel &kernel, const Pmm &model,
                   fuzz::FuzzOptions fuzz_opts,
                   SnowplowOptions snowplow_opts)
{
    snowplow_opts.exec_backend = fuzz_opts.exec_backend;
    auto localizer = std::make_unique<PmmLocalizer>(
        kernel, model, std::move(snowplow_opts));
    return std::make_unique<fuzz::Fuzzer>(kernel, std::move(fuzz_opts),
                                          std::move(localizer));
}

std::unique_ptr<fuzz::Fuzzer>
makeAsyncSnowplowFuzzer(const kern::Kernel &kernel,
                        InferenceService &service,
                        fuzz::FuzzOptions fuzz_opts,
                        SnowplowOptions snowplow_opts)
{
    snowplow_opts.exec_backend = fuzz_opts.exec_backend;
    auto localizer = std::make_unique<AsyncPmmLocalizer>(
        kernel, service, std::move(snowplow_opts));
    return std::make_unique<fuzz::Fuzzer>(kernel, std::move(fuzz_opts),
                                          std::move(localizer));
}

std::unique_ptr<fuzz::Fuzzer>
makeSyzkallerFuzzer(const kern::Kernel &kernel,
                    fuzz::FuzzOptions fuzz_opts)
{
    return std::make_unique<fuzz::Fuzzer>(
        kernel, std::move(fuzz_opts),
        std::make_unique<mut::RandomLocalizer>());
}

std::unique_ptr<fuzz::CampaignEngine>
makeSnowplowCampaign(const kern::Kernel &kernel, const Pmm &model,
                     fuzz::CampaignOptions campaign_opts,
                     SnowplowOptions snowplow_opts)
{
    snowplow_opts.exec_backend = campaign_opts.fuzz.exec_backend;
    auto cache = std::make_shared<PredictionCache>(
        snowplow_opts.cache_capacity);
    auto factory = [&kernel, &model, snowplow_opts,
                    cache](size_t) -> std::unique_ptr<mut::Localizer> {
        return std::make_unique<PmmLocalizer>(kernel, model,
                                              snowplow_opts, cache);
    };
    return std::make_unique<fuzz::CampaignEngine>(
        kernel, std::move(campaign_opts), factory);
}

std::unique_ptr<fuzz::CampaignEngine>
makeAsyncSnowplowCampaign(const kern::Kernel &kernel,
                          InferenceService &service,
                          fuzz::CampaignOptions campaign_opts,
                          SnowplowOptions snowplow_opts)
{
    snowplow_opts.exec_backend = campaign_opts.fuzz.exec_backend;
    auto cache = std::make_shared<PredictionCache>(
        snowplow_opts.cache_capacity);
    auto factory = [&kernel, &service, snowplow_opts,
                    cache](size_t) -> std::unique_ptr<mut::Localizer> {
        return std::make_unique<AsyncPmmLocalizer>(
            kernel, service, snowplow_opts, cache);
    };
    return std::make_unique<fuzz::CampaignEngine>(
        kernel, std::move(campaign_opts), factory);
}

std::unique_ptr<fuzz::CampaignEngine>
makeSyzkallerCampaign(const kern::Kernel &kernel,
                      fuzz::CampaignOptions campaign_opts)
{
    auto factory = [](size_t) -> std::unique_ptr<mut::Localizer> {
        return std::make_unique<mut::RandomLocalizer>();
    };
    return std::make_unique<fuzz::CampaignEngine>(
        kernel, std::move(campaign_opts), factory);
}

}  // namespace sp::core
