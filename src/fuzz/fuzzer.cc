#include "fuzz/fuzzer.h"

#include <chrono>

#include "fuzz/campaign.h"
#include "obs/covmap.h"
#include "util/logging.h"

namespace sp::fuzz {

Fuzzer::Fuzzer(const kern::Kernel &kernel, FuzzOptions options,
               std::unique_ptr<mut::Localizer> localizer)
    : kernel_(kernel), opts_(std::move(options)),
      localizer_(std::move(localizer)), policy_(makePolicy(opts_)),
      mutator_(kernel.table(), opts_.mutator),
      executor_(kernel, execOptionsFor(opts_)), crashes_(kernel),
      rng_(opts_.seed)
{
    SP_ASSERT(localizer_ != nullptr, "fuzzer needs a localizer");
    policy_->beginCampaign(1);
}

FuzzReport
Fuzzer::run()
{
    return runUntil([](const Fuzzer &) { return false; });
}

FuzzReport
Fuzzer::runUntil(const std::function<bool(const Fuzzer &)> &stop)
{
    const auto wall_start = std::chrono::steady_clock::now();
    const uint64_t execs_start = execs_;

    // One campaign run of the staged pipeline (campaign.h) with a
    // single worker on the calling thread. The worker borrows the
    // fuzzer's long-lived corpus, crash log, RNG and executor so
    // repeated runUntil calls continue where the last one stopped.
    detail::CampaignShared shared;
    shared.opts = &opts_;
    shared.corpus = &corpus_;
    shared.crashes = &crashes_;
    BudgetLedger ledger(opts_.exec_budget, opts_.checkpoint_every,
                        execs_);
    shared.ledger = &ledger;
    shared.board_base = execs_ / opts_.checkpoint_every;
    shared.last_checkpoint_edges = last_checkpoint_edges_;
    shared.stop = [this, &stop] { return stop(*this); };

    shared.policy = policy_.get();

    detail::WorkerEnv env;
    env.shared = &shared;
    env.worker_id = 0;
    env.rng = &rng_;
    env.executor = &executor_;
    env.mutator = &mutator_;
    env.localizer = localizer_.get();
    if (opts_.covmap != nullptr)
        env.cov_shard = &opts_.covmap->shard(0);
    env.execs_out = &execs_;

    if (corpus_.empty())
        detail::seedStage(env, kernel_);
    detail::workerLoop(env, kernel_);

    last_checkpoint_edges_ = shared.last_checkpoint_edges;
    timeline_.insert(timeline_.end(), shared.board.begin(),
                     shared.board.end());

    const double wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return detail::finalizeCampaign(shared, timeline_, execs_,
                                    execs_ - execs_start, wall_sec, 1);
}

}  // namespace sp::fuzz
