/**
 * @file
 * Campaign report rendering over a loaded CovProfile: the machine-
 * readable analyze report (`--out`, validated by
 * ci/schemas/analyze_report.schema.json), the human-readable heat
 * report printed by `snowplow_cli analyze`, and the target-set
 * round-trip `fuzz --directed-from` consumes.
 */
#ifndef SP_ANALYSIS_REPORT_H
#define SP_ANALYSIS_REPORT_H

#include <string>
#include <vector>

#include "analysis/frontier.h"

namespace sp::analysis {

/** Everything `analyze` derives from one snapshot log. */
struct Analysis
{
    CovProfile profile;
    HeatThresholds thresholds;
    /** Blocks per heat band, indexed by static_cast<size_t>(Heat). */
    size_t band_counts[4] = {0, 0, 0, 0};
    std::vector<FrontierTarget> targets;     ///< ranked, capped
    std::vector<SubsystemHeat> subsystems;   ///< empty without a kernel
};

/**
 * Run the full analysis: heat bands, ranked frontier targets
 * (truncated to `target_cap` when > 0), and — with a kernel —
 * per-subsystem aggregation and target attribution.
 */
Analysis analyze(CovProfile profile, const kern::Kernel *kernel,
                 size_t target_cap = 0);

/** The machine-readable report (one JSON object, schema-checked). */
std::string reportJson(const Analysis &analysis,
                       const std::string &source_path);

/** The human-readable heat report (`analyze` stdout). */
std::string reportText(const Analysis &analysis,
                       const std::string &source_path);

/**
 * Extract the target block list from a report file written by
 * reportJson (the `--directed-from` input). On failure returns empty
 * and sets `error`.
 */
std::vector<uint32_t> loadTargets(const std::string &path,
                                  std::string *error);

}  // namespace sp::analysis

#endif  // SP_ANALYSIS_REPORT_H
