#include "obs/telemetry.h"

#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"

namespace sp::obs {

namespace {

std::atomic<TelemetrySink *> g_sink{nullptr};

// Owns the installed sink; swapped under a mutex so a replacement
// cannot race shutdown. Shut-down sinks are retired (closed, kept
// alive) instead of destroyed: an instrumentation thread that loaded
// the sink pointer an instant before shutdownSink() may still be
// inside event(), and a retired sink turns that emit into a locked
// no-op rather than a use-after-free. The retained objects are a few
// hundred bytes per install — drivers install at most a handful of
// sinks per process.
std::mutex g_sink_mutex;
std::unique_ptr<TelemetrySink> g_sink_owner;
std::vector<std::unique_ptr<TelemetrySink>> g_retired_sinks;

void
appendNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "0";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out += buf;
}

}  // namespace

std::string
jsonQuote(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

void
Field::appendTo(std::string &out) const
{
    out += jsonQuote(key_);
    out += ':';
    switch (kind_) {
      case Kind::U64:
        out += std::to_string(u64_);
        break;
      case Kind::I64:
        out += std::to_string(i64_);
        break;
      case Kind::F64:
        appendNumber(out, f64_);
        break;
      case Kind::Bool:
        out += b_ ? "true" : "false";
        break;
      case Kind::Str:
        out += jsonQuote(str_);
        break;
    }
}

TelemetrySink::TelemetrySink(TelemetryOptions opts)
    : opts_(std::move(opts))
{
    file_ = std::fopen(opts_.path.c_str(), "w");
    if (file_ == nullptr)
        SP_FATAL("cannot open telemetry file '%s'", opts_.path.c_str());
}

TelemetrySink::~TelemetrySink()
{
    close();
}

void
TelemetrySink::event(std::string_view type,
                     std::initializer_list<Field> fields)
{
    std::string line;
    line.reserve(128);
    line += "{\"ev\":";
    line += jsonQuote(type);
    line += ",\"t_us\":";
    line += std::to_string(monotonicMicros());
    for (const Field &field : fields) {
        line += ',';
        field.appendTo(line);
    }
    line += "}\n";
    writeLine(line);
}

void
TelemetrySink::eventJson(std::string_view type, std::string_view key,
                         std::string_view json)
{
    std::string line;
    line.reserve(json.size() + 64);
    line += "{\"ev\":";
    line += jsonQuote(type);
    line += ",\"t_us\":";
    line += std::to_string(monotonicMicros());
    line += ',';
    line += jsonQuote(key);
    line += ':';
    line += json;
    line += "}\n";
    writeLine(line);
}

void
TelemetrySink::writeLine(std::string &line)
{
    std::lock_guard<std::mutex> guard(mu_);
    if (file_ == nullptr)
        return;
    std::fwrite(line.data(), 1, line.size(), file_);
    if (++events_ % opts_.flush_every == 0)
        std::fflush(file_);
}

void
TelemetrySink::flush()
{
    std::lock_guard<std::mutex> guard(mu_);
    if (file_ != nullptr)
        std::fflush(file_);
}

void
TelemetrySink::close()
{
    std::lock_guard<std::mutex> guard(mu_);
    if (file_ == nullptr)
        return;
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
}

uint64_t
TelemetrySink::eventsWritten() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return events_;
}

TelemetrySink *
sink()
{
    return g_sink.load(std::memory_order_acquire);
}

void
installSink(const TelemetryOptions &opts)
{
    std::lock_guard<std::mutex> guard(g_sink_mutex);
    g_sink.store(nullptr, std::memory_order_release);
    if (g_sink_owner != nullptr) {
        g_sink_owner->close();
        g_retired_sinks.push_back(std::move(g_sink_owner));
    }
    g_sink_owner = std::make_unique<TelemetrySink>(opts);
    setTimingEnabled(true);
    g_sink.store(g_sink_owner.get(), std::memory_order_release);
}

void
shutdownSink()
{
    std::lock_guard<std::mutex> guard(g_sink_mutex);
    TelemetrySink *current = g_sink.load(std::memory_order_acquire);
    if (current == nullptr)
        return;
    // Unpublish first so new emitters stop seeing the sink, write the
    // final snapshot, then close. The object itself is retired, not
    // destroyed: a thread that loaded the pointer before the store may
    // still be mid-event(), and it must land on a live mutex — its
    // line is either fully written before the snapshot/close win the
    // lock, or dropped whole by the closed-file check. No partial
    // interleaving either way.
    g_sink.store(nullptr, std::memory_order_release);
    current->eventJson("registry_snapshot", "registry",
                       Registry::global().snapshotJson());
    current->close();
    g_retired_sinks.push_back(std::move(g_sink_owner));
}

}  // namespace sp::obs
