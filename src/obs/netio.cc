#include "obs/netio.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "util/logging.h"

namespace sp::obs {

TcpListener::TcpListener(uint16_t port, int backlog)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        SP_FATAL("tcp listener: socket() failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        SP_FATAL("tcp listener: cannot bind 127.0.0.1:%u",
                 static_cast<unsigned>(port));
    }
    if (::listen(fd, backlog) != 0)
        SP_FATAL("tcp listener: listen() failed");

    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    fd_.store(fd, std::memory_order_release);
}

TcpListener::~TcpListener()
{
    close();
}

int
TcpListener::acceptConnection()
{
    return ::accept(fd(), nullptr, nullptr);
}

void
TcpListener::unblock()
{
    // shutdown() on an already-closed (-1) descriptor is a harmless
    // EBADF; the owner loop may have closed concurrently.
    ::shutdown(fd(), SHUT_RDWR);
}

void
TcpListener::close()
{
    const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0)
        ::close(fd);
}

int
connectTcp(const std::string &host, uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const void *data, size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    size_t sent = 0;
    while (sent < len) {
        const ssize_t n =
            ::send(fd, bytes + sent, len - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<size_t>(n);
    }
    return true;
}

size_t
recvAll(int fd, void *data, size_t len)
{
    auto *bytes = static_cast<unsigned char *>(data);
    size_t got = 0;
    while (got < len) {
        const ssize_t n = ::recv(fd, bytes + got, len - got, 0);
        if (n <= 0)
            break;
        got += static_cast<size_t>(n);
    }
    return got;
}

}  // namespace sp::obs
