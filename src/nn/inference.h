/**
 * @file
 * Inference mode: a no-grad execution context backed by a reusable
 * tensor arena.
 *
 * Training builds a tape — every op heap-allocates a node with data,
 * grad, parent links and a backward closure. Forward-only callers pay
 * for none of that: inside an InferenceScope, ops allocate nodes from
 * a thread-local TensorArena, record no parents and no closures, and
 * never materialize grad buffers. The arena recycles nodes between
 * passes (a node is reclaimable once no Tensor handle outside the
 * arena references it), so after a warm-up pass repeated forward
 * passes of the same model reuse the previous pass's buffers instead
 * of touching the heap.
 *
 *     {
 *         nn::InferenceScope scope;       // reclaims last pass's nodes
 *         nn::Tensor probs = nn::sigmoid(model.forward(graph));
 *         ... copy probs.data() out ...
 *     }                                   // nodes returned next pass
 *
 * Scopes nest (inner scopes are no-ops) and the mode is strictly
 * per-thread: concurrent inference workers each get their own arena.
 * Explicitly requesting a grad-tracking tensor (Tensor::zeros(...,
 * requires_grad=true)) inside a scope still allocates off-arena, so
 * parameter construction behaves identically everywhere.
 */
#ifndef SP_NN_INFERENCE_H
#define SP_NN_INFERENCE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace sp::nn {

/** Arena occupancy and reuse counters (monotonic per thread). */
struct ArenaStats
{
    uint64_t hits = 0;    ///< nodes served from the free list
    uint64_t misses = 0;  ///< nodes that had to be heap-allocated
    size_t pooled = 0;    ///< free-list size right now
    size_t live = 0;      ///< nodes handed out and not yet reclaimed
    /** Float storage (data capacity) across pooled + live nodes. */
    size_t bytes = 0;

    double
    hitRatio() const
    {
        const uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/**
 * Pool of recyclable TensorNodes. One per thread; user code interacts
 * with it only through InferenceScope and the stats accessors.
 */
class TensorArena
{
  public:
    /**
     * A node with the given shape, no grad buffer, no parents and no
     * closure. Reuses a free-list node (retaining its data capacity)
     * when one is available. With `zero` false the data holds stale
     * values from the node's previous life — callers that overwrite
     * every element request this to skip the redundant fill.
     */
    std::shared_ptr<TensorNode> allocate(int64_t rows, int64_t cols,
                                         bool zero = true);

    /**
     * Move every live node that only the arena still references onto
     * the free list. Called on outermost scope entry, when all Tensor
     * handles from the previous pass are gone.
     */
    void reclaim();

    ArenaStats stats() const;

    /** This thread's arena (created on first use). */
    static TensorArena &forThisThread();

  private:
    std::vector<std::shared_ptr<TensorNode>> live_;
    std::vector<std::shared_ptr<TensorNode>> free_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** RAII entry into inference mode on the current thread. */
class InferenceScope
{
  public:
    InferenceScope();
    ~InferenceScope();

    InferenceScope(const InferenceScope &) = delete;
    InferenceScope &operator=(const InferenceScope &) = delete;

  private:
    TensorArena *prev_;
};

/** The active arena, or nullptr when not in inference mode. */
TensorArena *activeArena();

/** True inside any InferenceScope on this thread. */
inline bool
inInferenceMode()
{
    return activeArena() != nullptr;
}

/** Stats of this thread's arena (zeroes before first use). */
ArenaStats threadArenaStats();

}  // namespace sp::nn

#endif  // SP_NN_INFERENCE_H
