/**
 * @file
 * Checkpoint I/O: save and restore a module's parameters to a simple
 * binary format (magic, count, then name/shape/data records). Used so
 * that a PMM trained in one binary (or example) can be reused in another.
 */
#ifndef SP_NN_SERIALIZE_H
#define SP_NN_SERIALIZE_H

#include <string>

#include "nn/module.h"

namespace sp::nn {

/** Write all parameters of `module` to `path`. Fatal on I/O error. */
void saveParameters(const Module &module, const std::string &path);

/**
 * Load parameters into `module` from `path`, matching by name and shape.
 * Returns false (leaving the module untouched) when the file does not
 * exist; fatal on a malformed file or name/shape mismatch.
 */
bool loadParameters(Module &module, const std::string &path);

}  // namespace sp::nn

#endif  // SP_NN_SERIALIZE_H
