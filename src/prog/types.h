/**
 * @file
 * The Syzlang-like type system describing system-call interfaces.
 *
 * A SyscallDecl gives each system-call variant a name and a tree of
 * argument types. Types mirror the constructs Syzlang models: plain
 * integers with interesting-value domains, OR-combinable flag sets,
 * constants, length fields computed from sibling buffers, kernel
 * resources (file descriptors, sockets, ...) flowing between calls,
 * typed pointers (in/out), structs with nested fields, and raw byte
 * buffers. The mutation engine and the kernel's branch predicates both
 * key off the *flattened slot order* of these trees (see flatten.h).
 */
#ifndef SP_PROG_TYPES_H
#define SP_PROG_TYPES_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sp::prog {

/** Kind discriminator for Type. */
enum class TypeKind : uint8_t {
    Int,       ///< integer with a range and optional special values
    Flags,     ///< set of named bit flags, optionally OR-combinable
    Const,     ///< fixed value the test cannot change
    Len,       ///< auto-computed length of a sibling buffer
    Resource,  ///< kernel object id produced by an earlier call
    Ptr,       ///< typed pointer, possibly null, with a direction
    Struct,    ///< record of nested fields
    Buffer,    ///< raw byte array with a length range
};

struct Type;
/** Types are immutable and shared between decls, values and the kernel. */
using TypeRef = std::shared_ptr<const Type>;

/**
 * One node of an argument type tree. Only the fields relevant to `kind`
 * are meaningful; the factory functions below construct valid nodes.
 */
struct Type
{
    TypeKind kind = TypeKind::Int;
    std::string name;  ///< display name, e.g. "flags", "mode", "msghdr"

    /** @name Int / Flags */
    /** @{ */
    uint32_t bits = 64;             ///< value width
    int64_t min = 0;                ///< Int range lower bound
    int64_t max = 0;                ///< Int range upper bound
    std::vector<uint64_t> domain;   ///< interesting values / flag values
    bool combinable = false;        ///< Flags may be OR-combined
    /** @} */

    /** Const: the pinned value. */
    uint64_t const_value = 0;

    /**
     * Len: index (within the same struct, or same call for top-level
     * args) of the buffer field whose length this reports.
     */
    uint32_t len_target = 0;

    /** Resource: resource kind name, e.g. "fd", "sock", "scsi_fd". */
    std::string resource_kind;

    /** @name Ptr */
    /** @{ */
    TypeRef elem;          ///< pointee type
    bool ptr_out = false;  ///< direction: kernel writes through it
    bool opt = false;      ///< pointer may be null
    /** @} */

    /** Struct: field types in declaration order. */
    std::vector<TypeRef> fields;

    /** @name Buffer */
    /** @{ */
    uint32_t buf_min = 0;
    uint32_t buf_max = 64;
    /** @} */
};

/** @name Type factories */
/** @{ */
TypeRef intType(std::string name, uint32_t bits, int64_t min, int64_t max,
                std::vector<uint64_t> special = {});
TypeRef flagsType(std::string name, std::vector<uint64_t> values,
                  bool combinable);
TypeRef constType(std::string name, uint64_t value);
TypeRef lenType(std::string name, uint32_t target_index);
TypeRef resourceType(std::string name, std::string kind);
TypeRef ptrType(std::string name, TypeRef elem, bool out = false,
                bool opt = true);
TypeRef structType(std::string name, std::vector<TypeRef> fields);
TypeRef bufferType(std::string name, uint32_t min_len, uint32_t max_len);
/** @} */

/** Declaration of one system-call variant. */
struct SyscallDecl
{
    std::string name;            ///< e.g. "ioctl$scsi"
    uint32_t id = 0;             ///< dense index in the syscall table
    std::vector<TypeRef> args;   ///< top-level argument types
    std::string ret_resource;    ///< produced resource kind ("" if none)

    /** Resource kinds any argument subtree consumes. */
    std::vector<std::string> consumedResourceKinds() const;
};

/** A complete user-space API surface (the fuzzer's "syscall table"). */
struct SyscallTable
{
    std::vector<SyscallDecl> decls;

    /** Find a decl by name; nullptr when absent. */
    const SyscallDecl *find(const std::string &name) const;

    /** Decl by dense id (fatal on out-of-range). */
    const SyscallDecl &byId(uint32_t id) const;

    /** Kinds of resources any call can produce. */
    std::vector<std::string> producibleResourceKinds() const;
};

/**
 * Number of flattened value slots an argument of this type occupies
 * (see flatten.h for the slot discipline).
 */
uint32_t slotCount(const Type &type);

/** Total flattened slot count across a decl's arguments. */
uint32_t slotCount(const SyscallDecl &decl);

}  // namespace sp::prog

#endif  // SP_PROG_TYPES_H
