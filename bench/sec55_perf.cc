// Reproduces the §5.5 performance characteristics with
// google-benchmark micro-benchmarks:
//
//  - PMM inference latency per mutation query (paper: 0.69 s mean on
//    an L4 GPU box for graphs ~10x larger);
//  - inference service saturation throughput, sweeping worker counts
//    (paper: ~57 QPS at saturation on 8 GPUs);
//  - end-to-end fuzzing throughput of Snowplow vs Syzkaller (paper:
//    383 vs 390 tests/second — near parity, because inference is
//    asynchronous and off the critical path).

#include <benchmark/benchmark.h>

#include <future>
#include <vector>

#include "bench/common.h"
#include "core/infer.h"
#include "exec/executor.h"
#include "nn/gemm.h"
#include "obs/trace.h"
#include "prog/gen.h"
#include "util/rng.h"

namespace {

using namespace sp;

struct PerfFixtures
{
    kern::Kernel kernel = spbench::makeEvalKernel("6.8");
    std::vector<graph::EncodedGraph> queries;

    PerfFixtures()
    {
        Rng rng(5);
        exec::Executor executor(kernel);
        for (int i = 0; i < 32; ++i) {
            auto program = prog::generateProg(rng, kernel.table());
            auto result = executor.run(program);
            auto frontier = graph::alternativeFrontier(kernel,
                                                       result.coverage);
            auto query = graph::buildQueryGraph(kernel, program, result,
                                                frontier);
            if (!query.argument_nodes.empty())
                queries.push_back(graph::encodeGraph(kernel, query));
        }
    }
};

PerfFixtures &
fixtures()
{
    static PerfFixtures fx;
    return fx;
}

// Raw blocked-GEMM kernel at the layer shapes the PMM forward pass
// actually issues: token projection [n, 120]x[120, 40], a relation /
// self-loop transform [n, 40]x[40, 40], the two head layers, and an
// 8-graph micro-batch of relation transforms.
void
BM_RawMatmul(benchmark::State &state)
{
    const auto n = static_cast<int64_t>(state.range(0));
    const auto k = static_cast<int64_t>(state.range(1));
    const auto m = static_cast<int64_t>(state.range(2));
    Rng rng(17);
    std::vector<float> a(static_cast<size_t>(n * k));
    std::vector<float> b(static_cast<size_t>(k * m));
    std::vector<float> c(static_cast<size_t>(n * m), 0.0f);
    for (auto &v : a)
        v = static_cast<float>(rng.gaussian());
    for (auto &v : b)
        v = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        nn::gemmAcc(a.data(), b.data(), c.data(), n, k, m);
        benchmark::DoNotOptimize(c.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            n * k * m);
}
BENCHMARK(BM_RawMatmul)
    ->Args({131, 120, 40})  // token projection
    ->Args({131, 40, 40})   // relation / self-loop transform
    ->Args({64, 40, 32})    // head hidden layer
    ->Args({64, 32, 1})     // head output layer
    ->Args({1048, 40, 40})  // 8-graph micro-batch relation transform
    ->Unit(benchmark::kMicrosecond);

void
BM_PmmInferenceLatency(benchmark::State &state)
{
    const auto &model = spbench::sharedPmm();
    const auto &queries = fixtures().queries;
    size_t i = 0;
    for (auto _ : state) {
        auto probs = model.predict(queries[i++ % queries.size()]);
        benchmark::DoNotOptimize(probs);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PmmInferenceLatency)->Unit(benchmark::kMillisecond);

// Service saturation: 16 in-flight queries per iteration, swept over
// worker counts with micro-batching on (max_batch 8) and off
// (max_batch 1, no straggler window). UseRealTime: throughput is
// wall-clock — worker threads do the serving, so CPU time of the
// submitting thread is meaningless.
void
BM_InferenceServiceThroughput(benchmark::State &state)
{
    const auto &model = spbench::sharedPmm();
    const auto &queries = fixtures().queries;
    core::BatchOptions batch;
    if (state.range(1) == 0) {
        batch.max_batch = 1;
        batch.max_window_us = 0;
    }
    core::InferenceService service(
        model, static_cast<size_t>(state.range(0)), batch);
    for (auto _ : state) {
        std::vector<std::future<std::vector<float>>> futures;
        futures.reserve(16);
        for (int i = 0; i < 16; ++i) {
            futures.push_back(service.submit(
                queries[static_cast<size_t>(i) % queries.size()]));
        }
        for (auto &future : futures)
            benchmark::DoNotOptimize(future.get());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 16);
    const auto stats = service.stats();
    state.counters["mean_latency_ms"] = stats.mean_latency_us / 1000.0;
    state.counters["p99_latency_ms"] = stats.p99_latency_us / 1000.0;
    state.counters["mean_batch"] = stats.mean_batch_size;
}
BENCHMARK(BM_InferenceServiceThroughput)
    ->ArgNames({"workers", "batched"})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_FuzzThroughputSyzkaller(benchmark::State &state)
{
    const auto &kernel = fixtures().kernel;
    for (auto _ : state) {
        auto opts = spbench::evalFuzzOptions(4000, 9);
        auto fuzzer = core::makeSyzkallerFuzzer(kernel, opts);
        auto report = fuzzer->run();
        benchmark::DoNotOptimize(report.final_edges);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 4000);
}
BENCHMARK(BM_FuzzThroughputSyzkaller)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void
BM_FuzzThroughputSnowplow(benchmark::State &state)
{
    const auto &kernel = fixtures().kernel;
    const auto &model = spbench::sharedPmm();
    for (auto _ : state) {
        auto opts = spbench::evalFuzzOptions(4000, 9);
        auto fuzzer = core::makeSnowplowFuzzer(
            kernel, model, opts, spbench::evalSnowplowOptions());
        auto report = fuzzer->run();
        benchmark::DoNotOptimize(report.final_edges);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 4000);
}
BENCHMARK(BM_FuzzThroughputSnowplow)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void
BM_ExecutorRawThroughput(benchmark::State &state)
{
    const auto &kernel = fixtures().kernel;
    Rng rng(11);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 64);
    exec::Executor executor(kernel);
    size_t i = 0;
    for (auto _ : state) {
        auto result = executor.run(corpus[i++ % corpus.size()]);
        benchmark::DoNotOptimize(result.coverage.edgeCount());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ExecutorRawThroughput);

// The exec hot path, ref vs fast backend (arg 0: 0 = reference
// interpreter, 1 = dirty-restore/dense-coverage fast backend), at 1
// and N threads. Noisy mode — the fuzzing configuration — so the
// measured win is the one campaigns see. Reported as programs/sec
// (items_per_second) plus a calls_per_sec counter; the CI gate holds
// fast:1/threads:1 at ≥3× ref:1/threads:1 programs/sec (ISSUE
// acceptance; see ci/run_tier1.sh).
void
BM_ExecThroughput(benchmark::State &state)
{
    const auto &kernel = fixtures().kernel;
    Rng rng(11);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 64);
    exec::ExecOptions opts;
    opts.deterministic = false;
    opts.noise_seed = 23 + static_cast<uint64_t>(state.thread_index());
    opts.backend = state.range(0) != 0 ? exec::BackendKind::Fast
                                       : exec::BackendKind::Reference;
    exec::Executor executor(kernel, opts);  // per-thread, as in a pool
    size_t i = 0;
    uint64_t calls = 0;
    for (auto _ : state) {
        auto result = executor.run(corpus[i++ % corpus.size()]);
        calls += result.calls.size();
        benchmark::DoNotOptimize(result.coverage.edgeCount());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    state.counters["calls_per_sec"] = benchmark::Counter(
        static_cast<double>(calls), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecThroughput)
    ->ArgNames({"fast"})
    ->Arg(0)
    ->Arg(1)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime();

// Tracer hot-path discipline. BM_TraceSpanDisabled is the cost of one
// instrumentation site with no tracer installed — a relaxed flag load
// and nothing else (no clock read, no ring write). BM_TraceOverhead
// runs the executor slot loop untraced vs traced so the full-pipeline
// cost of span recording is visible. CI gates the disabled path: the
// per-slot instrumentation cost (≈6 span sites) must stay under 1% of
// a slot (see ci/run_tier1.sh).
void
BM_TraceSpanDisabled(benchmark::State &state)
{
    obs::shutdownTracer();
    uint64_t slot = 0;
    for (auto _ : state) {
        obs::TraceSpan span(obs::SpanKind::Execute, slot);
        benchmark::DoNotOptimize(slot);
        ++slot;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceSpanDisabled);

void
BM_TraceOverhead(benchmark::State &state)
{
    const bool traced = state.range(0) != 0;
    if (traced) {
        obs::TraceOptions opts;
        opts.ring_capacity = 4096;
        obs::installTracer(opts);
    } else {
        obs::shutdownTracer();
    }
    const auto &kernel = fixtures().kernel;
    Rng rng(11);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 64);
    exec::Executor executor(kernel);
    size_t i = 0;
    for (auto _ : state) {
        obs::TraceScope scope(obs::beginTrace());
        auto result = executor.run(corpus[i++ % corpus.size()]);
        benchmark::DoNotOptimize(result.coverage.edgeCount());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    obs::shutdownTracer();
}
BENCHMARK(BM_TraceOverhead)->ArgNames({"traced"})->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
