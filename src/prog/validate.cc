#include "prog/validate.h"

#include <sstream>

namespace sp::prog {

namespace {

bool
validateArg(const Arg &arg, const TypeRef &expected, const Prog &prog,
            size_t call_index, std::string &error)
{
    std::ostringstream out;
    if (arg.type.get() != expected.get()) {
        out << "call " << call_index << ": argument type mismatch ("
            << arg.type->name << " vs " << expected->name << ")";
        error = out.str();
        return false;
    }
    switch (expected->kind) {
      case TypeKind::Const:
        if (arg.scalar != expected->const_value) {
            out << "call " << call_index << ": const " << expected->name
                << " changed";
            error = out.str();
            return false;
        }
        return true;
      case TypeKind::Resource: {
        if (arg.result_ref < 0)
            return true;  // intentionally-invalid handle
        const auto ref = static_cast<size_t>(arg.result_ref);
        if (ref >= call_index) {
            out << "call " << call_index
                << ": resource reference r" << ref
                << " does not precede the call";
            error = out.str();
            return false;
        }
        if (prog.calls[ref].decl->ret_resource !=
            expected->resource_kind) {
            out << "call " << call_index << ": r" << ref << " produces '"
                << prog.calls[ref].decl->ret_resource << "', wanted '"
                << expected->resource_kind << "'";
            error = out.str();
            return false;
        }
        return true;
      }
      case TypeKind::Ptr:
        if (arg.is_null) {
            if (arg.pointee) {
                out << "call " << call_index
                    << ": null pointer with pointee";
                error = out.str();
                return false;
            }
            return true;
        }
        if (!arg.pointee) {
            out << "call " << call_index
                << ": non-null pointer without pointee";
            error = out.str();
            return false;
        }
        return validateArg(*arg.pointee, expected->elem, prog, call_index,
                           error);
      case TypeKind::Struct:
        if (arg.fields.size() != expected->fields.size()) {
            out << "call " << call_index << ": struct " << expected->name
                << " has " << arg.fields.size() << " fields, wanted "
                << expected->fields.size();
            error = out.str();
            return false;
        }
        for (size_t i = 0; i < arg.fields.size(); ++i) {
            if (!validateArg(*arg.fields[i], expected->fields[i], prog,
                             call_index, error)) {
                return false;
            }
        }
        return true;
      default:
        return true;
    }
}

// Check Len fields in a sibling group.
bool
checkSiblingLens(const std::vector<ArgPtr> &siblings, size_t call_index,
                 std::string &error)
{
    for (const auto &arg : siblings) {
        if (arg->type->kind != TypeKind::Len)
            continue;
        const uint32_t target = arg->type->len_target;
        if (target >= siblings.size())
            continue;
        const Arg &sib = *siblings[target];
        uint64_t expected_len = arg->scalar;
        bool has_buffer = false;
        if (sib.type->kind == TypeKind::Buffer) {
            has_buffer = true;
            expected_len = sib.bytes.size();
        } else if (sib.type->kind == TypeKind::Ptr && !sib.is_null &&
                   sib.pointee->type->kind == TypeKind::Buffer) {
            has_buffer = true;
            expected_len = sib.pointee->bytes.size();
        }
        if (has_buffer && arg->scalar != expected_len) {
            std::ostringstream out;
            out << "call " << call_index << ": len field "
                << arg->type->name << " is " << arg->scalar
                << ", buffer has " << expected_len;
            error = out.str();
            return false;
        }
    }
    return true;
}

bool
checkLensRec(const Arg &arg, size_t call_index, std::string &error)
{
    if (arg.type->kind == TypeKind::Ptr && !arg.is_null)
        return checkLensRec(*arg.pointee, call_index, error);
    if (arg.type->kind == TypeKind::Struct) {
        for (const auto &f : arg.fields)
            if (!checkLensRec(*f, call_index, error))
                return false;
        return checkSiblingLens(arg.fields, call_index, error);
    }
    return true;
}

}  // namespace

std::optional<std::string>
validateProg(const Prog &prog)
{
    std::string error;
    for (size_t i = 0; i < prog.calls.size(); ++i) {
        const Call &call = prog.calls[i];
        if (call.decl == nullptr)
            return "call " + std::to_string(i) + ": missing declaration";
        if (call.args.size() != call.decl->args.size()) {
            return "call " + std::to_string(i) + ": argument count " +
                   std::to_string(call.args.size()) + ", declared " +
                   std::to_string(call.decl->args.size());
        }
        for (size_t j = 0; j < call.args.size(); ++j) {
            if (!validateArg(*call.args[j], call.decl->args[j], prog, i,
                             error)) {
                return error;
            }
        }
        for (const auto &arg : call.args)
            if (!checkLensRec(*arg, i, error))
                return error;
        if (!checkSiblingLens(call.args, i, error))
            return error;
    }
    return std::nullopt;
}

}  // namespace sp::prog
