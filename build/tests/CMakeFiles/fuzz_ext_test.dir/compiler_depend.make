# Empty compiler generated dependencies file for fuzz_ext_test.
# This may be replaced when dependencies are built.
