/**
 * @file
 * Snowplow: the hybrid fuzzer (paper §3.4).
 *
 * PmmLocalizer plugs the trained model into the fuzzing loop's
 * localization step: given a base test and its (cached) coverage, it
 * builds the mutation query with the one-hop alternative frontier as
 * the desired coverage, runs PMM, and returns the arguments whose
 * MUTATE probability clears the threshold (ranked, capped). A small
 * fallback probability keeps the original random localizer in play in
 * case PMM misses promising arguments, and the number of returned sites
 * naturally implements the dynamic mutation count — bases with more
 * promising arguments get more argument mutations.
 *
 * makeSnowplowFuzzer / makeSyzkallerFuzzer build the two sides of every
 * same-budget comparison in the evaluation.
 */
#ifndef SP_CORE_SNOWPLOW_H
#define SP_CORE_SNOWPLOW_H

#include <memory>
#include <unordered_map>

#include "core/infer.h"
#include "core/pmm.h"
#include "fuzz/fuzzer.h"

namespace sp::core {

/** PmmLocalizer configuration. */
struct SnowplowOptions
{
    /** MUTATE probability threshold. */
    float threshold = 0.5f;
    /** Probability of deferring to the random localizer (§3.4). */
    double fallback_prob = 0.05;
    /** Cache capacity for per-base predictions. */
    size_t cache_capacity = 4096;
    /**
     * Optional directed-mode target blocks: when non-empty, only these
     * (where present on the base's frontier) are marked as targets in
     * the query; otherwise the whole frontier is the desired coverage.
     */
    std::vector<uint32_t> directed_targets;
};

/** The learned white-box argument localizer. */
class PmmLocalizer : public mut::Localizer
{
  public:
    /**
     * @param kernel  kernel under test (for graph building and the
     *                deterministic probe executor)
     * @param model   trained PMM (must outlive the localizer)
     * @param opts    thresholds and fallback behaviour
     */
    PmmLocalizer(const kern::Kernel &kernel, const Pmm &model,
                 SnowplowOptions opts = {});

    std::vector<mut::ArgLocation> localize(const prog::Prog &prog,
                                           Rng &rng,
                                           size_t max_sites) override;

    std::vector<mut::ArgLocation>
    localizeWithResult(const prog::Prog &prog,
                       const exec::ExecResult &result, Rng &rng,
                       size_t max_sites) override;

    /** Queries answered by the model (vs fallback). */
    uint64_t modelQueries() const { return model_queries_; }
    uint64_t fallbackQueries() const { return fallback_queries_; }

  private:
    std::vector<mut::ArgLocation>
    rankSites(const prog::Prog &prog, const exec::ExecResult &result,
              Rng &rng, size_t max_sites);

    const kern::Kernel &kernel_;
    const Pmm &model_;
    SnowplowOptions opts_;
    mut::RandomLocalizer fallback_;
    exec::Executor probe_;  ///< deterministic executor for cold bases
    /** prog hash -> ranked site list (model output cache). */
    std::unordered_map<uint64_t, std::vector<mut::ArgLocation>> cache_;
    /** Encode scratch reused across queries (encodeGraphInto). */
    graph::EncodedGraph encode_scratch_;
    uint64_t model_queries_ = 0;
    uint64_t fallback_queries_ = 0;
};

/**
 * The asynchronous variant of the learned localizer (paper §3.4/§4):
 * queries are submitted to an InferenceService worker pool; while a
 * base's prediction is pending the localizer answers with the random
 * fallback so the fuzz loop never blocks, and once the prediction
 * lands it is cached and used for subsequent mutations of that base —
 * Snowplow "catches up with argument mutations" exactly as the paper's
 * Go worker-pool integration does.
 */
class AsyncPmmLocalizer : public mut::Localizer
{
  public:
    /**
     * @param kernel   kernel under test
     * @param service  shared inference service (must outlive this)
     * @param opts     thresholds and fallback behaviour
     */
    AsyncPmmLocalizer(const kern::Kernel &kernel,
                      InferenceService &service,
                      SnowplowOptions opts = {});
    ~AsyncPmmLocalizer() override;

    std::vector<mut::ArgLocation> localize(const prog::Prog &prog,
                                           Rng &rng,
                                           size_t max_sites) override;

    std::vector<mut::ArgLocation>
    localizeWithResult(const prog::Prog &prog,
                       const exec::ExecResult &result, Rng &rng,
                       size_t max_sites) override;

    /** @name Telemetry */
    /** @{ */
    uint64_t submitted() const { return submitted_; }
    uint64_t answeredFromModel() const { return answered_; }
    uint64_t answeredWhilePending() const { return pending_answers_; }
    /** @} */

  private:
    struct PendingQuery
    {
        std::future<std::vector<float>> future;
        std::vector<mut::ArgLocation> locations;  ///< decode table
    };

    const kern::Kernel &kernel_;
    InferenceService &service_;
    SnowplowOptions opts_;
    mut::RandomLocalizer fallback_;
    exec::Executor probe_;
    std::unordered_map<uint64_t, PendingQuery> pending_;
    std::unordered_map<uint64_t, std::vector<mut::ArgLocation>> ready_;
    uint64_t submitted_ = 0;
    uint64_t answered_ = 0;
    uint64_t pending_answers_ = 0;
};

/** Snowplow = the fuzz loop + PmmLocalizer. */
std::unique_ptr<fuzz::Fuzzer>
makeSnowplowFuzzer(const kern::Kernel &kernel, const Pmm &model,
                   fuzz::FuzzOptions fuzz_opts,
                   SnowplowOptions snowplow_opts = {});

/**
 * Snowplow with the asynchronous inference pipeline: the returned
 * fuzzer owns an AsyncPmmLocalizer bound to `service`.
 */
std::unique_ptr<fuzz::Fuzzer>
makeAsyncSnowplowFuzzer(const kern::Kernel &kernel,
                        InferenceService &service,
                        fuzz::FuzzOptions fuzz_opts,
                        SnowplowOptions snowplow_opts = {});

/** The Syzkaller baseline = the same loop + RandomLocalizer. */
std::unique_ptr<fuzz::Fuzzer>
makeSyzkallerFuzzer(const kern::Kernel &kernel,
                    fuzz::FuzzOptions fuzz_opts);

}  // namespace sp::core

#endif  // SP_CORE_SNOWPLOW_H
