/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() aborts on internal invariant
 * violations (a bug in this library), fatal() exits on unrecoverable user
 * error (bad configuration, invalid input), warn()/inform() report
 * conditions without stopping.
 */
#ifndef SP_UTIL_LOGGING_H
#define SP_UTIL_LOGGING_H

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace sp {

/** Verbosity levels for the global logger. */
enum class LogLevel {
    Quiet = 0,   ///< only fatal/panic messages
    Warn = 1,    ///< plus warnings
    Info = 2,    ///< plus informational messages
    Debug = 3,   ///< plus debug traces
};

/** Set the global log verbosity. Thread-safe (relaxed atomic). */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/**
 * Microseconds since process start on the steady clock. Prefixes every
 * log record and stamps telemetry events, so the two streams share one
 * time base.
 */
uint64_t monotonicMicros();

/**
 * Hook invoked (with the formatted message) after a panic is logged
 * and before the process aborts — the seam the observability layer's
 * flight recorder hangs off. nullptr disarms. The hook must not
 * panic; a recursive panic skips the hook and aborts directly.
 */
using PanicHook = void (*)(const char *message);
void setPanicHook(PanicHook hook);

namespace detail {
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);
void logImpl(LogLevel level, const char *tag, const char *fmt, ...);
}  // namespace detail

/** Abort: an internal invariant was violated (library bug). */
#define SP_PANIC(...) \
    ::sp::detail::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Exit(1): the caller supplied an unusable configuration or input. */
#define SP_FATAL(...) \
    ::sp::detail::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Report a suspicious-but-survivable condition. */
#define SP_WARN(...) \
    ::sp::detail::logImpl(::sp::LogLevel::Warn, "warn", __VA_ARGS__)

/** Report normal operating status. */
#define SP_INFORM(...) \
    ::sp::detail::logImpl(::sp::LogLevel::Info, "info", __VA_ARGS__)

/** Developer trace output. */
#define SP_DEBUG(...) \
    ::sp::detail::logImpl(::sp::LogLevel::Debug, "debug", __VA_ARGS__)

/** Assert that holds in all build types; panics with location on failure. */
#define SP_ASSERT(cond, ...)                                            \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::sp::detail::panicImpl(__FILE__, __LINE__,                 \
                                    "assertion failed: %s", #cond);    \
        }                                                               \
    } while (0)

}  // namespace sp

#endif  // SP_UTIL_LOGGING_H
