/**
 * @file
 * The fabric coordinator: owns the campaign's virtual-time budget as
 * a lease grant table, serves nodes over the wire protocol (wire.h),
 * merges everything they push into one FleetAggregate, and records
 * the merged fleet timeline on the same checkpoint grid a
 * single-process campaign uses — so `sp_analysis compare` can diff a
 * fleet run against a `--workers 1` baseline directly.
 *
 * Lease lifecycle (DESIGN.md §16):
 *
 *   carve -> grant -> [result arrives] -> complete -> watermark
 *                  \-> [disconnect / timeout] -> reclaim -> re-grant
 *
 * The budget is carved into checkpoint-aligned slot ranges. A node
 * holds at most the ranges it was granted; a connection that dies
 * with outstanding leases returns them to the pool, and a lease held
 * longer than `lease_timeout_ms` is reclaimed by the sweep that runs
 * on every grant — either way the fleet drains the full budget. A
 * result for a reclaimed (re-issued) lease is acknowledged as stale
 * and dropped whole, so no slot range is merged twice.
 */
#ifndef SP_FLEET_COORDINATOR_H
#define SP_FLEET_COORDINATOR_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fleet/aggregate.h"
#include "fleet/wire.h"
#include "obs/netio.h"
#include "obs/timeline.h"

namespace sp::fleet {

struct CoordinatorOptions
{
    uint16_t port = 0;           ///< 0 = ephemeral; see port()
    uint64_t budget = 6000;      ///< fleet-wide virtual-time slots
    uint64_t checkpoint_every = 0;  ///< 0 = budget/12 (the CLI grid)
    /** Slots per lease, rounded up to the checkpoint grid; 0 = one
     *  checkpoint interval per lease. */
    uint64_t lease_slots = 0;
    uint64_t seed = 1;           ///< campaign seed (lease seeds split it)
    bool thompson = false;       ///< node lease campaigns' policy
    bool covmap = true;          ///< nodes push lease-grid cov deltas
    uint32_t seed_corpus_size = 40;  ///< node seeds with empty batch
    uint32_t lease_gen_seeds = 8;    ///< node seeds atop a batch
    uint32_t seed_batch_max = 32;    ///< programs per seed batch
    /** Reclaim a lease outstanding this long (0 disables the sweep;
     *  disconnect reclaim always runs). */
    uint64_t lease_timeout_ms = 30000;
    /** Kernel identity shipped to nodes (the coordinator's kernel must
     *  be buildBaseKernel({kernel_seed, version, evolution})). */
    uint64_t kernel_seed = 2024;
    uint32_t kernel_evolution = 0;
    std::string timeline_out;    ///< merged fleet timeline artifact
    std::string harvest_dir;     ///< pushed training shards land here
    /** Register the fleet /status, /coverage and /timeline providers
     *  on the process-wide status server seams. */
    bool serve_status = true;
    /**
     * stop() lets connected nodes finish their conversation (request
     * the done grant, send Bye) for up to this long before cutting the
     * remaining connections. Drained fleets exit this window early —
     * every node sits at a lease boundary once the watermark proves
     * the budget complete.
     */
    uint64_t stop_grace_ms = 2000;
};

/** End-of-run coordinator tallies (tests + the CLI summary). */
struct CoordinatorStats
{
    uint64_t watermark = 0;
    uint64_t leases_granted = 0;
    uint64_t leases_reclaimed = 0;
    uint64_t results_stale = 0;
    uint64_t programs_pushed = 0;
    uint64_t programs_deduped = 0;
    uint64_t crashes_pushed = 0;
    uint64_t crashes_deduped = 0;
    uint64_t shards_received = 0;
    uint64_t bytes_rx = 0;
    uint64_t bytes_tx = 0;
    uint64_t reconnects = 0;
    uint64_t frame_errors = 0;
    uint64_t nodes_seen = 0;
    size_t corpus_size = 0;
    size_t edges = 0;
    size_t blocks = 0;
    size_t unique_crashes = 0;
};

class Coordinator
{
  public:
    /** Binds, opens the timeline artifact, starts serving. `kernel`
     *  must outlive the coordinator. */
    Coordinator(const kern::Kernel &kernel, CoordinatorOptions opts);

    /** stop()s if still running. */
    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /** The bound port (the ephemeral pick when constructed with 0). */
    uint16_t port() const { return listener_.port(); }

    uint64_t budget() const { return opts_.budget; }
    uint64_t checkpointEvery() const { return checkpoint_every_; }
    uint64_t leaseSlots() const { return lease_slots_; }

    /**
     * Block until the watermark reaches the budget. `timeout_ms` 0
     * waits forever. True when drained.
     */
    bool waitUntilDrained(uint64_t timeout_ms = 0);

    /** Stop accepting, drop connections, join threads, finalize the
     *  timeline artifact (with whatever progress was merged). */
    void stop();

    /** @name Introspection (thread-safe) */
    /** @{ */
    CoordinatorStats stats() const;
    bool drained() const;
    /** The /status "campaign" payload (fleet_status.schema.json). */
    std::string campaignJson() const;
    /** The /coverage payload (merged fleet covmap summary). */
    std::string coverageJson() const;
    /** Merged covmap hit maps (lease-grid merge invariant tests). */
    std::vector<uint64_t> covBlockHits() const;
    std::vector<uint64_t> covEdgeHits() const;
    /** Merged posterior counts for one arm. */
    uint64_t posteriorPulls(uint32_t arm) const;
    uint64_t posteriorWins(uint32_t arm) const;
    size_t timelineSamples() const;
    /** @} */

  private:
    struct Lease
    {
        uint64_t begin = 0;
        uint64_t count = 0;
        uint64_t conn = 0;
        std::chrono::steady_clock::time_point granted_at;
    };

    void acceptLoop();
    void handleConnection(int fd, uint64_t conn_id);
    LeaseGrantMsg grantLocked(uint64_t conn_id);
    ResultAckMsg completeLocked(uint64_t conn_id,
                                const LeaseResultMsg &result);
    void sweepExpiredLocked();
    void reclaimLocked(uint64_t lease_id);
    void releaseConnectionLocked(uint64_t conn_id);
    void emitTicksLocked();
    obs::TimelineTick buildTickLocked(uint64_t execs) const;
    void finalizeLocked();
    void writeShardLocked(const std::vector<uint8_t> &bytes);
    std::string campaignJsonLocked() const;

    const kern::Kernel &kernel_;
    CoordinatorOptions opts_;
    uint64_t checkpoint_every_;
    uint64_t lease_slots_;
    uint64_t kernel_fingerprint_;

    mutable std::mutex mu_;
    std::condition_variable drained_cv_;
    /** Signals conn_fds_ shrinking (stop()'s grace wait). */
    std::condition_variable conns_cv_;
    FleetAggregate aggregate_;
    obs::TimelineRecorder recorder_;
    bool timeline_open_ = false;

    /** Grant table. */
    uint64_t next_begin_ = 0;
    uint64_t next_lease_id_ = 0;
    std::unordered_map<uint64_t, Lease> outstanding_;
    std::deque<std::pair<uint64_t, uint64_t>> returned_;
    std::map<uint64_t, uint64_t> done_ranges_;  ///< begin -> end
    uint64_t watermark_ = 0;
    uint64_t ticks_emitted_ = 0;
    bool drained_ = false;
    bool finalized_ = false;

    /** Node registry + tallies. */
    std::unordered_set<std::string> node_names_;
    uint32_t next_node_id_ = 0;
    CoordinatorStats tallies_;

    /** Connections. */
    std::atomic<bool> stopping_{false};
    obs::TcpListener listener_;
    std::unordered_map<uint64_t, int> conn_fds_;
    std::thread accept_thread_;
    std::vector<std::thread> handlers_;
};

}  // namespace sp::fleet

#endif  // SP_FLEET_COORDINATOR_H
