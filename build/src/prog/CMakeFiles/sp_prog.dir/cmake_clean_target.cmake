file(REMOVE_RECURSE
  "libsp_prog.a"
)
