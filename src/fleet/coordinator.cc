#include "fleet/coordinator.h"

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "data/store.h"
#include "kernel/kernel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"

namespace sp::fleet {

namespace {

obs::Counter &
fleetCounter(const char *name)
{
    return obs::Registry::global().counter(name);
}

std::string
jsonDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

}  // namespace

Coordinator::Coordinator(const kern::Kernel &kernel,
                         CoordinatorOptions opts)
    : kernel_(kernel),
      opts_(std::move(opts)),
      checkpoint_every_(opts_.checkpoint_every != 0
                            ? opts_.checkpoint_every
                            : std::max<uint64_t>(1, opts_.budget / 12)),
      lease_slots_(0),
      kernel_fingerprint_(data::kernelFingerprint(kernel)),
      aggregate_(kernel, opts_.covmap),
      recorder_(obs::TimelineOptions{}),
      listener_(opts_.port)
{
    // Leases align to the checkpoint grid so the merged fleet timeline
    // samples the exact grid a single-process campaign samples — the
    // shared-execs intersection `sp_analysis compare` aligns on.
    const uint64_t want =
        opts_.lease_slots != 0 ? opts_.lease_slots : checkpoint_every_;
    lease_slots_ =
        ((want + checkpoint_every_ - 1) / checkpoint_every_) *
        checkpoint_every_;

    // Create the fleet counters up front so /metrics carries them (at
    // zero) from the first scrape.
    for (const char *name :
         {"fleet.leases_granted", "fleet.leases_expired",
          "fleet.programs_pushed", "fleet.programs_deduped",
          "fleet.crashes_pushed", "fleet.crashes_deduped",
          "fleet.bytes_rx", "fleet.bytes_tx", "fleet.reconnects",
          "fleet.frame_errors", "fleet.results_stale",
          "fleet.shards_received"})
        fleetCounter(name);

    if (!opts_.harvest_dir.empty())
        ::mkdir(opts_.harvest_dir.c_str(), 0755);

    if (!opts_.timeline_out.empty()) {
        std::string extra = "\"campaign\":{\"seed\":";
        extra += std::to_string(opts_.seed);
        extra += ",\"budget\":";
        extra += std::to_string(opts_.budget);
        extra += ",\"workers\":0,\"policy\":\"";
        extra += opts_.thompson ? "thompson" : "static";
        extra += "\",\"fleet\":true},\"kernel\":{\"seed\":";
        extra += std::to_string(opts_.kernel_seed);
        extra += ",\"version\":\"" + kernel_.version();
        extra += "\",\"evolution\":";
        extra += std::to_string(opts_.kernel_evolution);
        extra += "}";
        if (!recorder_.openLog(opts_.timeline_out, extra))
            SP_FATAL("fleet: cannot open --timeline-out %s",
                     opts_.timeline_out.c_str());
        timeline_open_ = true;
        recorder_.rebaseline();
    }

    if (opts_.serve_status) {
        obs::setStatusProvider([this] { return campaignJson(); });
        obs::setCoverageProvider([this] { return coverageJson(); });
        if (timeline_open_) {
            obs::setTimelineProvider(
                [this] { return recorder_.recentJson(); });
        }
    }

    accept_thread_ = std::thread([this] { acceptLoop(); });
}

Coordinator::~Coordinator()
{
    stop();
}

void
Coordinator::stop()
{
    if (stopping_.exchange(true))
        return;
    listener_.unblock();
    if (accept_thread_.joinable())
        accept_thread_.join();
    {
        // Grace window: let connected nodes reach their lease boundary,
        // pick up the done grant and say Bye. A drained fleet empties
        // conn_fds_ well inside the window; only a wedged peer rides it
        // out and gets cut.
        std::unique_lock<std::mutex> lock(mu_);
        conns_cv_.wait_for(
            lock, std::chrono::milliseconds(opts_.stop_grace_ms),
            [this] { return conn_fds_.empty(); });
        for (const auto &[conn, fd] : conn_fds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (auto &handler : handlers_) {
        if (handler.joinable())
            handler.join();
    }
    std::lock_guard<std::mutex> lock(mu_);
    finalizeLocked();
    if (opts_.serve_status) {
        // Freeze the final snapshots into the providers (the campaign
        // ProviderGuard discipline): scrapes through --status-hold must
        // not reach into a dead coordinator.
        obs::setStatusProvider(
            [frozen = campaignJsonLocked()] { return frozen; });
        obs::setCoverageProvider(
            [frozen = aggregate_.coverageJson(watermark_)] {
                return frozen;
            });
        if (timeline_open_) {
            obs::setTimelineProvider(
                [frozen = recorder_.recentJson()] { return frozen; });
        }
    }
}

bool
Coordinator::waitUntilDrained(uint64_t timeout_ms)
{
    std::unique_lock<std::mutex> lock(mu_);
    if (timeout_ms == 0) {
        drained_cv_.wait(lock, [this] { return drained_; });
        return true;
    }
    return drained_cv_.wait_for(lock,
                                std::chrono::milliseconds(timeout_ms),
                                [this] { return drained_; });
}

bool
Coordinator::drained() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return drained_;
}

CoordinatorStats
Coordinator::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    CoordinatorStats out = tallies_;
    out.watermark = watermark_;
    out.corpus_size = aggregate_.corpusSize();
    out.edges = aggregate_.edgeCount();
    out.blocks = aggregate_.blockCount();
    out.unique_crashes = aggregate_.uniqueCrashes();
    return out;
}

std::vector<uint64_t>
Coordinator::covBlockHits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return aggregate_.blockHits();
}

std::vector<uint64_t>
Coordinator::covEdgeHits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return aggregate_.edgeHits();
}

uint64_t
Coordinator::posteriorPulls(uint32_t arm) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return aggregate_.posteriorPulls(arm);
}

uint64_t
Coordinator::posteriorWins(uint32_t arm) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return aggregate_.posteriorWins(arm);
}

size_t
Coordinator::timelineSamples() const
{
    return recorder_.sampleCount();
}

std::string
Coordinator::coverageJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return aggregate_.coverageJson(watermark_);
}

std::string
Coordinator::campaignJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return campaignJsonLocked();
}

std::string
Coordinator::campaignJsonLocked() const
{
    std::string out;
    out.reserve(512);
    out += "{\"type\":\"fleet\",\"budget\":";
    out += std::to_string(opts_.budget);
    out += ",\"checkpoint_every\":";
    out += std::to_string(checkpoint_every_);
    out += ",\"lease_slots\":";
    out += std::to_string(lease_slots_);
    out += ",\"watermark\":";
    out += std::to_string(watermark_);
    out += ",\"granted_slots\":";
    out += std::to_string(next_begin_);
    out += ",\"drained\":";
    out += drained_ ? "true" : "false";
    out += ",\"nodes_seen\":";
    out += std::to_string(tallies_.nodes_seen);
    out += ",\"leases_granted\":";
    out += std::to_string(tallies_.leases_granted);
    out += ",\"leases_outstanding\":";
    out += std::to_string(outstanding_.size());
    out += ",\"leases_reclaimed\":";
    out += std::to_string(tallies_.leases_reclaimed);
    out += ",\"results_stale\":";
    out += std::to_string(tallies_.results_stale);
    out += ",\"programs_pushed\":";
    out += std::to_string(tallies_.programs_pushed);
    out += ",\"programs_deduped\":";
    out += std::to_string(tallies_.programs_deduped);
    out += ",\"corpus_size\":";
    out += std::to_string(aggregate_.corpusSize());
    out += ",\"edges\":";
    out += std::to_string(aggregate_.edgeCount());
    out += ",\"blocks\":";
    out += std::to_string(aggregate_.blockCount());
    out += ",\"unique_crashes\":";
    out += std::to_string(aggregate_.uniqueCrashes());
    out += ",\"policy\":{\"name\":\"";
    out += aggregate_.havePolicy() ? aggregate_.policyName()
                                   : std::string("none");
    out += "\",\"pmm_share\":";
    out += jsonDouble(aggregate_.pmmShare());
    uint64_t pulls = 0;
    uint64_t wins = 0;
    const auto arms = aggregate_.posteriorArms();
    for (const WireArm &arm : arms) {
        pulls += arm.pulls;
        wins += arm.wins;
    }
    out += ",\"arms\":";
    out += std::to_string(arms.size());
    out += ",\"pulls\":";
    out += std::to_string(pulls);
    out += ",\"wins\":";
    out += std::to_string(wins);
    out += "}}";
    return out;
}

void
Coordinator::acceptLoop()
{
    uint64_t next_conn = 0;
    for (;;) {
        const int fd = listener_.acceptConnection();
        if (fd < 0) {
            if (stopping_.load(std::memory_order_acquire)) {
                listener_.close();
                return;
            }
            continue;
        }
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_.load(std::memory_order_acquire)) {
            ::close(fd);
            continue;
        }
        const uint64_t conn_id = ++next_conn;
        conn_fds_[conn_id] = fd;
        handlers_.emplace_back(
            [this, fd, conn_id] { handleConnection(fd, conn_id); });
    }
}

void
Coordinator::handleConnection(int fd, uint64_t conn_id)
{
    bool greeted = false;
    uint64_t tx = 0;

    const auto reply = [&](MsgType type,
                           const std::vector<uint8_t> &payload) {
        const uint64_t before = tx;
        const bool ok = sendFrame(fd, type, payload, &tx);
        fleetCounter("fleet.bytes_tx").inc(tx - before);
        {
            std::lock_guard<std::mutex> lock(mu_);
            tallies_.bytes_tx += tx - before;
        }
        return ok;
    };

    for (;;) {
        Frame frame;
        uint64_t rx = 0;
        std::string err;
        const RecvStatus status = recvFrame(fd, &frame, &rx, &err);
        fleetCounter("fleet.bytes_rx").inc(rx);
        {
            std::lock_guard<std::mutex> lock(mu_);
            tallies_.bytes_rx += rx;
        }
        if (status == RecvStatus::VersionSkew) {
            // The header is well-formed, so the peer can still parse a
            // v1 Error frame; tell it why before hanging up.
            ErrorMsg msg;
            msg.message = "wire version skew (coordinator speaks v" +
                          std::to_string(kWireVersion) + ")";
            reply(MsgType::Error, msg.encode());
            fleetCounter("fleet.frame_errors").inc();
            std::lock_guard<std::mutex> lock(mu_);
            ++tallies_.frame_errors;
            break;
        }
        if (status == RecvStatus::Malformed) {
            // Unknown stream position: drop this connection, keep
            // serving every other peer.
            fleetCounter("fleet.frame_errors").inc();
            std::lock_guard<std::mutex> lock(mu_);
            ++tallies_.frame_errors;
            break;
        }
        if (status == RecvStatus::Eof)
            break;

        if (frame.type == MsgType::Hello) {
            HelloMsg hello;
            if (!hello.decode(frame.payload)) {
                fleetCounter("fleet.frame_errors").inc();
                break;
            }
            if (hello.wire_version != kWireVersion) {
                ErrorMsg msg;
                msg.message =
                    "handshake version skew: node speaks v" +
                    std::to_string(hello.wire_version) +
                    ", coordinator v" + std::to_string(kWireVersion);
                reply(MsgType::Error, msg.encode());
                break;
            }
            HelloAckMsg ack;
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (!node_names_.insert(hello.node_name).second) {
                    fleetCounter("fleet.reconnects").inc();
                    ++tallies_.reconnects;
                } else {
                    ++tallies_.nodes_seen;
                }
                ack.node_id = ++next_node_id_;
            }
            ack.campaign_seed = opts_.seed;
            ack.budget = opts_.budget;
            ack.checkpoint_every = checkpoint_every_;
            ack.thompson = opts_.thompson ? 1 : 0;
            ack.covmap = opts_.covmap ? 1 : 0;
            ack.harvest = opts_.harvest_dir.empty() ? 0 : 1;
            ack.seed_corpus_size = opts_.seed_corpus_size;
            ack.lease_gen_seeds = opts_.lease_gen_seeds;
            ack.kernel_seed = opts_.kernel_seed;
            ack.kernel_version = kernel_.version();
            ack.kernel_evolution = opts_.kernel_evolution;
            ack.kernel_fingerprint = kernel_fingerprint_;
            greeted = true;
            if (!reply(MsgType::HelloAck, ack.encode()))
                break;
            continue;
        }

        if (!greeted) {
            ErrorMsg msg;
            msg.message = "handshake required before " +
                          std::to_string(
                              static_cast<unsigned>(frame.type));
            reply(MsgType::Error, msg.encode());
            break;
        }

        if (frame.type == MsgType::LeaseRequest) {
            LeaseGrantMsg grant;
            {
                std::lock_guard<std::mutex> lock(mu_);
                grant = grantLocked(conn_id);
            }
            if (!reply(MsgType::LeaseGrant, grant.encode()))
                break;
            continue;
        }

        if (frame.type == MsgType::LeaseResult) {
            LeaseResultMsg result;
            if (!result.decode(frame.payload)) {
                fleetCounter("fleet.frame_errors").inc();
                break;
            }
            ResultAckMsg ack;
            {
                std::lock_guard<std::mutex> lock(mu_);
                ack = completeLocked(conn_id, result);
            }
            if (!reply(MsgType::ResultAck, ack.encode()))
                break;
            continue;
        }

        if (frame.type == MsgType::Bye)
            break;

        ErrorMsg msg;
        msg.message = "unexpected frame type " +
                      std::to_string(static_cast<unsigned>(frame.type));
        reply(MsgType::Error, msg.encode());
        break;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        releaseConnectionLocked(conn_id);
        conn_fds_.erase(conn_id);
        conns_cv_.notify_all();
    }
    ::close(fd);
}

LeaseGrantMsg
Coordinator::grantLocked(uint64_t conn_id)
{
    sweepExpiredLocked();

    LeaseGrantMsg grant;
    uint64_t begin = 0;
    uint64_t count = 0;
    if (!returned_.empty()) {
        begin = returned_.front().first;
        count = returned_.front().second;
        returned_.pop_front();
    } else if (next_begin_ < opts_.budget) {
        begin = next_begin_;
        count = std::min(lease_slots_, opts_.budget - begin);
        next_begin_ += count;
    } else {
        // Nothing to carve. Outstanding leases may still fail and
        // return to the pool, so the node only goes home once the
        // watermark proves every slot completed.
        grant.done = drained_ ? 1 : 0;
        return grant;
    }

    const uint64_t id = ++next_lease_id_;
    Lease &lease = outstanding_[id];
    lease.begin = begin;
    lease.count = count;
    lease.conn = conn_id;
    lease.granted_at = std::chrono::steady_clock::now();

    grant.lease_id = id;
    grant.begin = begin;
    grant.count = count;
    // Every lease gets its own RNG stream: re-issued ranges explore a
    // fresh trajectory instead of replaying the lost node's.
    grant.node_seed = splitSeed(opts_.seed, id);
    grant.batch = aggregate_.seedBatch(opts_.seed_batch_max);
    fleetCounter("fleet.leases_granted").inc();
    ++tallies_.leases_granted;
    return grant;
}

void
Coordinator::sweepExpiredLocked()
{
    if (opts_.lease_timeout_ms == 0)
        return;
    const auto now = std::chrono::steady_clock::now();
    const auto limit = std::chrono::milliseconds(opts_.lease_timeout_ms);
    std::vector<uint64_t> expired;
    for (const auto &[id, lease] : outstanding_) {
        if (now - lease.granted_at > limit)
            expired.push_back(id);
    }
    for (const uint64_t id : expired)
        reclaimLocked(id);
}

void
Coordinator::reclaimLocked(uint64_t lease_id)
{
    const auto it = outstanding_.find(lease_id);
    if (it == outstanding_.end())
        return;
    returned_.emplace_back(it->second.begin, it->second.count);
    outstanding_.erase(it);
    fleetCounter("fleet.leases_expired").inc();
    ++tallies_.leases_reclaimed;
}

void
Coordinator::releaseConnectionLocked(uint64_t conn_id)
{
    std::vector<uint64_t> held;
    for (const auto &[id, lease] : outstanding_) {
        if (lease.conn == conn_id)
            held.push_back(id);
    }
    for (const uint64_t id : held)
        reclaimLocked(id);
}

ResultAckMsg
Coordinator::completeLocked(uint64_t conn_id,
                            const LeaseResultMsg &result)
{
    ResultAckMsg ack;
    const auto it = outstanding_.find(result.lease_id);
    if (it == outstanding_.end() || it->second.conn != conn_id) {
        // Reclaimed and possibly re-issued: merging would double-count
        // the slot range, so the whole result is dropped.
        fleetCounter("fleet.results_stale").inc();
        ++tallies_.results_stale;
        return ack;
    }
    const Lease lease = it->second;
    outstanding_.erase(it);

    const MergeOutcome outcome = aggregate_.merge(result);
    fleetCounter("fleet.programs_pushed").inc(result.programs.size());
    fleetCounter("fleet.programs_deduped").inc(outcome.dup_programs);
    fleetCounter("fleet.crashes_pushed").inc(result.crashes.size());
    fleetCounter("fleet.crashes_deduped").inc(outcome.dup_crashes);
    tallies_.programs_pushed += result.programs.size();
    tallies_.programs_deduped += outcome.dup_programs;
    tallies_.crashes_pushed += result.crashes.size();
    tallies_.crashes_deduped += outcome.dup_crashes;
    if (result.have_shard)
        writeShardLocked(result.shard);

    done_ranges_[lease.begin] = lease.begin + lease.count;
    auto next = done_ranges_.find(watermark_);
    while (next != done_ranges_.end()) {
        watermark_ = next->second;
        done_ranges_.erase(next);
        next = done_ranges_.find(watermark_);
    }
    emitTicksLocked();
    if (watermark_ >= opts_.budget && !drained_) {
        drained_ = true;
        finalizeLocked();
        drained_cv_.notify_all();
    }

    ack.accepted = 1;
    ack.new_programs = outcome.new_programs;
    ack.new_crashes = outcome.new_crashes;
    return ack;
}

obs::TimelineTick
Coordinator::buildTickLocked(uint64_t execs) const
{
    obs::TimelineTick tick;
    tick.execs = execs;
    tick.edges = aggregate_.edgeCount();
    tick.blocks = aggregate_.blockCount();
    tick.crashes = aggregate_.uniqueCrashes();
    tick.corpus_size = aggregate_.corpusSize();
    if (aggregate_.covmapEnabled()) {
        const obs::CovSummary cov = aggregate_.covSummary(
            execs, obs::CovMap::kSummaryFrontierCap);
        tick.have_cov = true;
        tick.cov_blocks_hit = cov.blocks_hit;
        tick.cov_edges_hit = cov.edges_hit;
        tick.cov_total_block_hits = cov.total_block_hits;
        tick.cov_frontier_size = cov.frontier_size;
        tick.cov_stray_edges = cov.stray_edges;
    }
    if (aggregate_.havePolicy()) {
        tick.have_policy = true;
        tick.policy_name = aggregate_.policyName();
        tick.pmm_share = aggregate_.pmmShare();
        for (const WireArm &arm : aggregate_.posteriorArms()) {
            obs::TimelineArm entry;
            entry.arm = static_cast<int>(arm.arm);
            entry.pulls = arm.pulls;
            entry.wins = arm.wins;
            tick.arms.push_back(entry);
        }
    }
    return tick;
}

void
Coordinator::emitTicksLocked()
{
    if (!timeline_open_)
        return;
    // One sample per crossed grid boundary, in order. The merged state
    // sampled at boundary k is everything the watermark's contiguous
    // prefix completed — the fleet analog of the multi-worker
    // checkpoint windows (prefix-consistent, not slot-exact).
    while ((ticks_emitted_ + 1) * checkpoint_every_ <= watermark_) {
        ++ticks_emitted_;
        recorder_.onCheckpoint(
            buildTickLocked(ticks_emitted_ * checkpoint_every_));
    }
}

void
Coordinator::finalizeLocked()
{
    if (!timeline_open_ || finalized_)
        return;
    finalized_ = true;
    recorder_.finalize(buildTickLocked(watermark_));
}

void
Coordinator::writeShardLocked(const std::vector<uint8_t> &bytes)
{
    if (opts_.harvest_dir.empty() || bytes.empty())
        return;
    // Content-addressed shard name: a re-sent shard maps to the same
    // path and is skipped, making pushes idempotent (the mergeStore
    // identity discipline).
    const uint32_t key = data::crc32(bytes.data(), bytes.size());
    char name[32];
    std::snprintf(name, sizeof(name), "fleet-%08x.spds", key);
    const std::string path = opts_.harvest_dir + "/" + name;
    struct stat st;
    if (::stat(path.c_str(), &st) == 0)
        return;  // already landed (idempotent re-send)
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return;
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    fleetCounter("fleet.shards_received").inc();
    ++tallies_.shards_received;
}

}  // namespace sp::fleet
