#include "core/pmm.h"

#include "kernel/block.h"
#include "nn/inference.h"
#include "util/logging.h"
#include "util/rng.h"

namespace sp::core {

namespace {

constexpr size_t kNumRelations = graph::kNumEdgeKinds * 2;

}  // namespace

Pmm::Pmm(const PmmConfig &config)
    : config_(config)
{
    Rng rng(config.init_seed);
    const int64_t dim = config.dim;

    node_kind_emb_ = std::make_unique<nn::Embedding>(
        rng, graph::EncodeVocab::kNodeKinds, dim, "node_kind");
    syscall_emb_ = std::make_unique<nn::Embedding>(
        rng, graph::EncodeVocab::kSyscallVocab, dim, "syscall");
    arg_type_emb_ = std::make_unique<nn::Embedding>(
        rng, graph::EncodeVocab::kArgTypeVocab, dim, "arg_type");
    arg_slot_emb_ = std::make_unique<nn::Embedding>(
        rng, kern::token::kMaxSlots, dim, "arg_slot");
    target_emb_ =
        std::make_unique<nn::Embedding>(rng, 2, dim, "target");
    token_emb_ = std::make_unique<nn::Embedding>(
        rng, kern::token::kVocabSize, config.token_dim, "token");
    token_proj_ = std::make_unique<nn::Linear>(
        rng, config.token_dim * graph::EncodeVocab::kTokenWindow, dim,
        "token_proj");

    absorb("", *node_kind_emb_);
    absorb("", *syscall_emb_);
    absorb("", *arg_type_emb_);
    absorb("", *arg_slot_emb_);
    absorb("", *target_emb_);
    absorb("", *token_emb_);
    absorb("", *token_proj_);

    layers_.resize(static_cast<size_t>(config.gnn_layers));
    for (int l = 0; l < config.gnn_layers; ++l) {
        auto &layer = layers_[static_cast<size_t>(l)];
        layer.relation.reserve(kNumRelations);
        for (size_t r = 0; r < kNumRelations; ++r) {
            layer.relation.push_back(std::make_unique<nn::Linear>(
                rng, dim, dim,
                "gnn" + std::to_string(l) + ".rel" + std::to_string(r)));
            absorb("", *layer.relation.back());
            if (config.use_attention) {
                layer.attention.push_back(std::make_unique<nn::Linear>(
                    rng, 2 * dim, 1,
                    "gnn" + std::to_string(l) + ".attn" +
                        std::to_string(r)));
                absorb("", *layer.attention.back());
            }
        }
        layer.self = std::make_unique<nn::Linear>(
            rng, dim, dim, "gnn" + std::to_string(l) + ".self");
        absorb("", *layer.self);
    }

    head_ = std::make_unique<nn::Mlp>(
        rng, std::vector<int64_t>{dim, config.head_hidden, 1}, "head");
    absorb("", *head_);
}

nn::Tensor
Pmm::embedNodes(const graph::EncodedGraph &graph) const
{
    using nn::Tensor;
    Tensor h = node_kind_emb_->forward(graph.node_kind);
    h = nn::add(h, syscall_emb_->forward(graph.syscall_tok));
    h = nn::add(h, arg_type_emb_->forward(graph.arg_type_tok));
    h = nn::add(h, arg_slot_emb_->forward(graph.arg_slot_tok));
    h = nn::add(h, target_emb_->forward(graph.target_flag));

    // Position-aware token encoder over the block-token window.
    // Thread-local scratch keeps steady-state forward passes off the
    // heap (the stale Tensor handles from the previous call are
    // cleared here, releasing those nodes back to the arena).
    const int64_t window = graph::EncodeVocab::kTokenWindow;
    const auto n = static_cast<int64_t>(graph.node_kind.size());
    thread_local std::vector<Tensor> per_position;
    thread_local std::vector<int32_t> column;
    per_position.clear();
    per_position.reserve(static_cast<size_t>(window));
    column.resize(static_cast<size_t>(n));
    for (int64_t p = 0; p < window; ++p) {
        for (int64_t i = 0; i < n; ++i) {
            column[static_cast<size_t>(i)] =
                graph.block_tokens[static_cast<size_t>(i * window + p)];
        }
        per_position.push_back(token_emb_->forward(column));
    }
    Tensor tokens = nn::concatCols(per_position);
    h = nn::add(h, token_proj_->forward(tokens));
    return nn::layerNormRows(h);
}

nn::Tensor
Pmm::nodeStates(const graph::EncodedGraph &graph, Rng *dropout_rng,
                bool training) const
{
    using nn::Tensor;
    SP_ASSERT(graph.num_nodes > 0, "empty query graph");
    Tensor h = embedNodes(graph);
    const auto n = static_cast<int64_t>(graph.num_nodes);

    for (const auto &layer : layers_) {
        Tensor sum = layer.self->forward(h);
        // In-degree per relation for mean aggregation.
        for (size_t r = 0; r < kNumRelations; ++r) {
            const auto &adj = graph.adj[r];
            if (adj.src.empty())
                continue;
            Tensor pooled;
            if (config_.use_attention) {
                // GAT-style: score each edge from its endpoint states,
                // softmax over the edges entering each destination.
                Tensor messages = nn::gatherRows(h, adj.src);
                Tensor endpoints = nn::concatCols(
                    {messages, nn::gatherRows(h, adj.dst)});
                Tensor scores = nn::leakyRelu(nn::flatten(
                    layer.attention[r]->forward(endpoints)));
                Tensor alpha =
                    nn::segmentSoftmax(scores, adj.dst,
                                       static_cast<int32_t>(n));
                pooled = nn::scatterAddRows(
                    nn::rowScaleT(messages, alpha), adj.dst, n);
            } else {
                // GCN-style mean aggregation (the paper's choice),
                // fused: no per-edge message matrix is materialized,
                // and rows without incoming edges stay exactly zero so
                // the relation GEMM skips them.
                pooled = nn::segmentMeanRows(h, adj.src, adj.dst, n);
            }
            sum = nn::add(sum, layer.relation[r]->forward(pooled));
        }
        Tensor activated = nn::relu(sum);
        if (training && dropout_rng != nullptr) {
            activated = nn::dropout(activated, config_.dropout,
                                    *dropout_rng, true);
        }
        // Residual + normalization.
        h = nn::layerNormRows(nn::add(h, activated));
    }
    return h;
}

nn::Tensor
Pmm::forward(const graph::EncodedGraph &graph, Rng *dropout_rng,
             bool training) const
{
    using nn::Tensor;
    Tensor h = nodeStates(graph, dropout_rng, training);
    SP_ASSERT(!graph.argument_nodes.empty(),
              "query graph has no argument nodes");
    Tensor args = nn::gatherRows(h, graph.argument_nodes);
    Tensor logits = head_->forward(args);  // [n_args, 1]
    return nn::flatten(logits);
}

std::vector<float>
Pmm::predict(const graph::EncodedGraph &graph) const
{
    if (graph.argument_nodes.empty())
        return {};
    nn::InferenceScope scope;
    nn::Tensor probs = nn::sigmoid(forward(graph));
    return probs.data();
}

std::vector<std::vector<float>>
Pmm::predictBatch(
    const std::vector<const graph::EncodedGraph *> &graphs) const
{
    std::vector<std::vector<float>> results(graphs.size());
    // Graphs without prediction targets contribute nothing; keep only
    // the ones the forward pass needs (their result stays empty).
    std::vector<const graph::EncodedGraph *> active;
    std::vector<size_t> active_index;
    for (size_t i = 0; i < graphs.size(); ++i) {
        SP_ASSERT(graphs[i] != nullptr, "predictBatch: null graph");
        if (graphs[i]->num_nodes > 0 &&
            !graphs[i]->argument_nodes.empty()) {
            active.push_back(graphs[i]);
            active_index.push_back(i);
        }
    }
    if (active.empty())
        return results;
    if (active.size() == 1) {
        results[active_index[0]] = predict(*active[0]);
        return results;
    }

    nn::InferenceScope scope;
    const graph::GraphBatch batch = graph::concatGraphs(active);
    nn::Tensor probs = nn::sigmoid(forward(batch.merged));
    const std::vector<float> &flat = probs.data();
    size_t offset = 0;
    for (size_t b = 0; b < active.size(); ++b) {
        const size_t count = batch.argument_counts[b];
        results[active_index[b]].assign(
            flat.begin() + static_cast<int64_t>(offset),
            flat.begin() + static_cast<int64_t>(offset + count));
        offset += count;
    }
    SP_ASSERT(offset == flat.size(),
              "predictBatch: merged output size mismatch");
    return results;
}

}  // namespace sp::core
