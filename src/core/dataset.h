/**
 * @file
 * Mutation-dataset generation (paper §3.1).
 *
 * From a seed corpus, every base test is executed deterministically
 * (VM-snapshot discipline: same initial state, sequential calls, no
 * interrupt noise) to obtain its coverage c_i, then mutated many times
 * with the baseline random argument localizer. Every mutant whose
 * coverage contains blocks outside c_i yields a *successful mutation*
 * sample ⟨s_i, c_i, a_ij, c_ij \ c_i⟩; mutations of the same base that
 * discover the same new blocks are merged into one sample with several
 * MUTATE arguments.
 *
 * Training examples invert the direction (§3.1 option (c)): the target
 * set is drawn from the one-hop alternative frontier of c_i — the
 * frontier blocks the mutation actually reached, mixed with sampled
 * *distractor* frontier blocks at 1, 25, 50, 75 or 100% of the
 * frontier, always keeping at least one truly-reached block. Examples
 * whose targets are over-represented across the dataset are discarded
 * (the popularity cap). Splits are by base test: every example of one
 * base lands in exactly one of train/valid/eval.
 */
#ifndef SP_CORE_DATASET_H
#define SP_CORE_DATASET_H

#include <cstdint>
#include <vector>

#include "exec/executor.h"
#include "graph/encode.h"
#include "graph/query_graph.h"
#include "kernel/kernel.h"
#include "mutate/localizer.h"
#include "prog/value.h"

namespace sp::core {

/** Dataset-collection knobs. */
struct DatasetOptions
{
    size_t corpus_size = 250;          ///< seed corpus bases
    size_t mutations_per_base = 300;   ///< random mutations per base
    size_t popularity_cap = 400;       ///< max examples per target block
    /** Noisy-target variants generated per successful-mutation group. */
    size_t variants_per_group = 3;
    uint64_t seed = 1;
    double train_fraction = 0.8;       ///< remainder split evenly
    /** Skip bases whose frontier is larger than this (degenerate). */
    size_t max_frontier = 512;
};

/** One training example, stored compactly (graph built on demand). */
struct RawExample
{
    uint32_t base_index = 0;
    std::vector<uint32_t> targets;            ///< desired blocks
    std::vector<mut::ArgLocation> mutate_sites;  ///< ground truth

    /**
     * Normalize to the canonical form every producer must emit:
     * targets sorted and deduplicated, mutate_sites sorted by
     * (call_index, path) and deduplicated. Hashing, popularity-cap
     * accounting and cross-shard dedup all assume this form, so an
     * example's identity never depends on the order its targets or
     * sites were discovered in.
     */
    void canonicalize();
};

/**
 * Content identity of a canonicalized example under one base identity
 * (`base_key` — the base program's content hash in the shard store,
 * or just the base index inside one in-memory dataset). Equal for any
 * two examples whose targets and sites were produced in any order.
 */
uint64_t exampleKey(const RawExample &example, uint64_t base_key);

/** Collected corpus statistics (paper §5.1). */
struct DatasetStats
{
    double mean_args_per_test = 0.0;
    double mean_successful_mutations_per_base = 0.0;
    double mean_frontier_size = 0.0;
    double mean_target_set_size = 0.0;
    size_t total_successful_mutations = 0;
    size_t discarded_by_popularity = 0;
};

/** The assembled dataset. */
struct Dataset
{
    const kern::Kernel *kernel = nullptr;
    std::vector<prog::Prog> bases;
    std::vector<exec::ExecResult> base_results;
    std::vector<RawExample> train;
    std::vector<RawExample> valid;
    std::vector<RawExample> eval;
    DatasetStats stats;
};

/** Run the §3.1 pipeline against `kernel`. */
Dataset collectDataset(const kern::Kernel &kernel,
                       const DatasetOptions &opts);

/**
 * Materialize one example: build the query graph of its base with the
 * example's targets marked, encode it, and emit the per-argument-node
 * MUTATE labels (1.0 on ground-truth sites).
 */
std::pair<graph::EncodedGraph, std::vector<float>>
materializeExample(const Dataset &dataset, const RawExample &example);

/**
 * Same as materializeExample, but encodes into caller-owned buffers
 * (graph::encodeGraphInto) so evaluation/training sweeps that
 * materialize thousands of examples reuse one set of allocations.
 */
void materializeExampleInto(const Dataset &dataset,
                            const RawExample &example,
                            graph::EncodedGraph &graph_out,
                            std::vector<float> &labels_out);

/** Mean number of ground-truth MUTATE sites over a split. */
double meanSitesPerExample(const std::vector<RawExample> &split);

}  // namespace sp::core

#endif  // SP_CORE_DATASET_H
