// Coverage-cartography hot-path benchmarks, backing the <2% overhead
// budget `ci/run_tier1.sh` enforces:
//
//  - BM_CovmapOverhead/enabled:0|1 — end-to-end campaign throughput
//    (the legacy single-worker loop: schedule, localize, instantiate,
//    execute, triage, checkpoint) with and without per-block hit
//    recording; items/s is executions per second;
//  - BM_CovmapRecordProgram — the exact per-execution recording work a
//    campaign worker adds (recordTrace over every call trace of one
//    corpus program); the CI gate divides this by the enabled:0 slot
//    time, which is far more stable than differencing two noisy
//    end-to-end runs;
//  - BM_CovmapDisabledSite — the null-shard branch a covmap-less
//    campaign pays per execution (must be unmeasurable);
//  - BM_CovmapMerge — the checkpoint owner's shard fold + frontier +
//    window derivation (off the worker hot path, but bounded so
//    checkpoint stalls stay invisible).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/common.h"
#include "exec/executor.h"
#include "fuzz/fuzzer.h"
#include "mutate/localizer.h"
#include "obs/covmap.h"
#include "prog/gen.h"
#include "util/rng.h"

namespace {

using namespace sp;

constexpr uint64_t kCampaignBudget = 2000;

const kern::Kernel &
benchKernel()
{
    static kern::Kernel kernel = spbench::makeEvalKernel("6.8");
    return kernel;
}

std::unique_ptr<obs::CovMap>
makeCovMap(size_t workers)
{
    const auto &kernel = benchKernel();
    return std::make_unique<obs::CovMap>(
        obs::CovMapPlan::build(kernel.blocks().size(),
                               kernel.staticEdges()),
        workers);
}

// One full campaign per iteration: covmap construction, recording at
// the execute stage and the per-checkpoint merges are all included,
// exactly what `fuzz --covmap-out` adds over a plain `fuzz`.
void
BM_CovmapOverhead(benchmark::State &state)
{
    const bool enabled = state.range(0) != 0;
    const auto &kernel = benchKernel();
    for (auto _ : state) {
        auto covmap = enabled ? makeCovMap(1) : nullptr;
        fuzz::FuzzOptions opts = spbench::evalFuzzOptions(
            kCampaignBudget, /*seed=*/9);
        opts.covmap = covmap.get();
        fuzz::Fuzzer fuzzer(kernel, opts,
                            std::make_unique<mut::RandomLocalizer>());
        auto report = fuzzer.run();
        if (covmap != nullptr)
            covmap->finalize(report.execs);
        benchmark::DoNotOptimize(report.final_edges);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * kCampaignBudget));
}
BENCHMARK(BM_CovmapOverhead)->ArgNames({"enabled"})->Arg(0)->Arg(1);

// Pure null-check cost at the execute-stage site when no covmap is
// attached (the default campaign configuration).
void
BM_CovmapDisabledSite(benchmark::State &state)
{
    obs::CovShard *shard = nullptr;
    std::vector<uint32_t> blocks = {1, 2, 3, 4};
    for (auto _ : state) {
        if (shard != nullptr)
            shard->recordTrace(blocks);
        benchmark::DoNotOptimize(shard);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CovmapDisabledSite);

// The whole recording work of one executed program: recordTrace over
// each call's block trace, cycling through a real generated corpus
// (items = programs). This is the numerator of the CI overhead gate.
void
BM_CovmapRecordProgram(benchmark::State &state)
{
    const auto &kernel = benchKernel();
    Rng rng(13);
    exec::Executor executor(kernel);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 64);
    std::vector<std::vector<std::vector<uint32_t>>> traces;
    size_t total_blocks = 0;
    for (const auto &program : corpus) {
        auto result = executor.run(program);
        auto &calls = traces.emplace_back();
        for (auto &call : result.calls) {
            total_blocks += call.blocks.size();
            calls.push_back(std::move(call.blocks));
        }
    }
    auto covmap = makeCovMap(1);
    obs::CovShard &shard = covmap->shard(0);

    size_t i = 0;
    for (auto _ : state) {
        for (const auto &blocks : traces[i++ % traces.size()])
            shard.recordTrace(blocks);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    state.counters["blocks_per_program"] =
        static_cast<double>(total_blocks) /
        static_cast<double>(traces.size());
}
BENCHMARK(BM_CovmapRecordProgram);

// The checkpoint owner's merge: fold 4 worker shards into the
// cumulative map and derive the window delta + frontier.
void
BM_CovmapMerge(benchmark::State &state)
{
    const auto &kernel = benchKernel();
    Rng rng(17);
    exec::Executor executor(kernel);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 32);
    auto covmap = makeCovMap(4);
    for (size_t i = 0; i < corpus.size(); ++i) {
        auto result = executor.run(corpus[i]);
        for (const auto &call : result.calls)
            covmap->shard(i % 4).recordTrace(call.blocks);
    }

    uint64_t execs = 0;
    for (auto _ : state) {
        execs += 250;
        covmap->onCheckpoint(execs);
        benchmark::DoNotOptimize(covmap->summary().blocks_hit);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CovmapMerge);

}  // namespace

BENCHMARK_MAIN();
