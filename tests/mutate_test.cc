// Tests for the mutation engine: localizers, per-kind instantiation,
// structural mutations, and whole-pipeline invariants (mutants stay
// structurally valid).

#include <gtest/gtest.h>

#include "kernel/subsystems.h"
#include "mutate/mutator.h"
#include "prog/serialize.h"
#include "prog/validate.h"

namespace sp::mut {
namespace {

const prog::SyscallTable &
testTable()
{
    static kern::Kernel kernel = [] {
        kern::KernelGenParams params;
        params.seed = 3;
        return kern::buildBaseKernel(params);
    }();
    return kernel.table();
}

prog::Prog
sampleProg(uint64_t seed)
{
    Rng rng(seed);
    return prog::generateProg(rng, testTable());
}

TEST(Localizer, AllArgLocationsCoversEveryCall)
{
    auto prog = sampleProg(1);
    auto locations = allArgLocations(prog);
    EXPECT_FALSE(locations.empty());
    size_t from_calls = 0;
    for (const auto &call : prog.calls)
        from_calls += prog::mutationPoints(call).size();
    EXPECT_EQ(locations.size(), from_calls);
    for (const auto &loc : locations)
        EXPECT_LT(loc.call_index, prog.calls.size());
}

TEST(Localizer, RandomLocalizerRespectsCap)
{
    auto prog = sampleProg(2);
    RandomLocalizer localizer;
    Rng rng(5);
    for (size_t cap : {1u, 3u, 100u}) {
        auto sites = localizer.localize(prog, rng, cap);
        EXPECT_LE(sites.size(), cap);
        EXPECT_GE(sites.size(), 1u);
        // Sites must be distinct.
        for (size_t i = 0; i < sites.size(); ++i)
            for (size_t j = i + 1; j < sites.size(); ++j)
                EXPECT_FALSE(sites[i].call_index == sites[j].call_index &&
                             sites[i].point.path == sites[j].point.path);
    }
}

TEST(Mutator, SelectTypeRespectsConstraints)
{
    Mutator mutator(testTable());
    Rng rng(7);

    // Single-call program: removal must never be selected.
    prog::Prog single;
    single.calls.push_back(sampleProg(3).calls[0]);
    for (int i = 0; i < 200; ++i)
        EXPECT_NE(mutator.selectType(rng, single),
                  MutationType::CallRemoval);

    // Program at the call cap: insertion must never be selected.
    MutatorOptions opts;
    opts.max_calls = 2;
    Mutator capped(testTable(), opts);
    prog::Prog two = sampleProg(4);
    two.calls.resize(2);
    for (int i = 0; i < 200; ++i)
        EXPECT_NE(capped.selectType(rng, two),
                  MutationType::CallInsertion);
}

TEST(Mutator, ArgMutationChangesTheProgram)
{
    Mutator mutator(testTable());
    RandomLocalizer localizer;
    Rng rng(11);
    size_t changed = 0, attempts = 0;
    for (int i = 0; i < 100; ++i) {
        auto base = sampleProg(100 + i);
        auto sites = localizer.localize(base, rng, 1);
        if (sites.empty())
            continue;
        prog::Prog mutant;
        mutant.calls = base.calls;
        if (!mutator.instantiateArgMutation(mutant, sites[0], rng))
            continue;
        ++attempts;
        changed += !mutant.equals(base);
    }
    ASSERT_GT(attempts, 50u);
    // Mutation may occasionally pick the same value; mostly it changes.
    EXPECT_GT(static_cast<double>(changed) /
                  static_cast<double>(attempts),
              0.7);
}

TEST(Mutator, MutantsStayStructurallyValid)
{
    Mutator mutator(testTable());
    RandomLocalizer localizer;
    Rng rng(13);
    for (int i = 0; i < 300; ++i) {
        auto base = sampleProg(500 + i);
        auto mutant = mutator.mutate(base, rng, localizer);
        auto error = prog::validateProg(mutant);
        EXPECT_FALSE(error.has_value())
            << *error << "\n"
            << prog::formatProg(mutant);
    }
}

TEST(Mutator, InsertCallGrowsAndRewires)
{
    Mutator mutator(testTable());
    Rng rng(17);
    auto base = sampleProg(42);
    const size_t before = base.calls.size();
    mutator.insertCall(base, rng);
    EXPECT_EQ(base.calls.size(), before + 1);
    EXPECT_FALSE(prog::validateProg(base).has_value());
}

TEST(Mutator, RemoveCallShrinksAndStaysValid)
{
    Mutator mutator(testTable());
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        auto base = sampleProg(900 + i);
        if (base.calls.size() < 2)
            continue;
        const size_t before = base.calls.size();
        mutator.removeCall(base, rng);
        EXPECT_EQ(base.calls.size(), before - 1);
        auto error = prog::validateProg(base);
        EXPECT_FALSE(error.has_value()) << *error;
    }
}

TEST(Mutator, StaleLocationIsRejected)
{
    Mutator mutator(testTable());
    Rng rng(23);
    auto base = sampleProg(77);
    ArgLocation bogus;
    bogus.call_index = base.calls.size() + 5;
    EXPECT_FALSE(mutator.instantiateArgMutation(base, bogus, rng));
}

TEST(Mutator, PtrMutationTogglesAndRegenerates)
{
    // Find a program with an optional pointer argument and hammer it.
    Mutator mutator(testTable());
    Rng rng(29);
    bool saw_null = false, saw_nonnull = false;
    for (int i = 0; i < 400 && !(saw_null && saw_nonnull); ++i) {
        auto base = sampleProg(2000 + i);
        auto locations = allArgLocations(base);
        for (auto &loc : locations) {
            if (loc.point.type->kind != prog::TypeKind::Ptr)
                continue;
            prog::Prog mutant;
            mutant.calls = base.calls;
            mutator.instantiateArgMutation(mutant, loc, rng);
            const prog::Arg &arg =
                prog::argAtPath(mutant.calls[loc.call_index],
                                loc.point.path);
            (arg.is_null ? saw_null : saw_nonnull) = true;
            EXPECT_EQ(arg.is_null, arg.pointee == nullptr);
        }
    }
    EXPECT_TRUE(saw_null);
    EXPECT_TRUE(saw_nonnull);
}

}  // namespace
}  // namespace sp::mut
