file(REMOVE_RECURSE
  "libsp_kernel.a"
)
