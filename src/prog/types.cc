#include "prog/types.h"

#include <algorithm>

#include "util/logging.h"

namespace sp::prog {

namespace {

std::shared_ptr<Type>
makeType(TypeKind kind, std::string name)
{
    auto t = std::make_shared<Type>();
    t->kind = kind;
    t->name = std::move(name);
    return t;
}

void
collectConsumedKinds(const Type &type, std::vector<std::string> &out)
{
    switch (type.kind) {
      case TypeKind::Resource:
        if (std::find(out.begin(), out.end(), type.resource_kind) ==
            out.end()) {
            out.push_back(type.resource_kind);
        }
        break;
      case TypeKind::Ptr:
        collectConsumedKinds(*type.elem, out);
        break;
      case TypeKind::Struct:
        for (const auto &f : type.fields)
            collectConsumedKinds(*f, out);
        break;
      default:
        break;
    }
}

}  // namespace

TypeRef
intType(std::string name, uint32_t bits, int64_t min, int64_t max,
        std::vector<uint64_t> special)
{
    SP_ASSERT(min <= max);
    auto t = makeType(TypeKind::Int, std::move(name));
    t->bits = bits;
    t->min = min;
    t->max = max;
    t->domain = std::move(special);
    return t;
}

TypeRef
flagsType(std::string name, std::vector<uint64_t> values, bool combinable)
{
    SP_ASSERT(!values.empty(), "flags type needs at least one value");
    auto t = makeType(TypeKind::Flags, std::move(name));
    t->domain = std::move(values);
    t->combinable = combinable;
    return t;
}

TypeRef
constType(std::string name, uint64_t value)
{
    auto t = makeType(TypeKind::Const, std::move(name));
    t->const_value = value;
    return t;
}

TypeRef
lenType(std::string name, uint32_t target_index)
{
    auto t = makeType(TypeKind::Len, std::move(name));
    t->len_target = target_index;
    return t;
}

TypeRef
resourceType(std::string name, std::string kind)
{
    SP_ASSERT(!kind.empty());
    auto t = makeType(TypeKind::Resource, std::move(name));
    t->resource_kind = std::move(kind);
    return t;
}

TypeRef
ptrType(std::string name, TypeRef elem, bool out, bool opt)
{
    SP_ASSERT(elem != nullptr);
    auto t = makeType(TypeKind::Ptr, std::move(name));
    t->elem = std::move(elem);
    t->ptr_out = out;
    t->opt = opt;
    return t;
}

TypeRef
structType(std::string name, std::vector<TypeRef> fields)
{
    SP_ASSERT(!fields.empty(), "struct type needs fields");
    auto t = makeType(TypeKind::Struct, std::move(name));
    t->fields = std::move(fields);
    return t;
}

TypeRef
bufferType(std::string name, uint32_t min_len, uint32_t max_len)
{
    SP_ASSERT(min_len <= max_len);
    auto t = makeType(TypeKind::Buffer, std::move(name));
    t->buf_min = min_len;
    t->buf_max = max_len;
    return t;
}

std::vector<std::string>
SyscallDecl::consumedResourceKinds() const
{
    std::vector<std::string> kinds;
    for (const auto &arg : args)
        collectConsumedKinds(*arg, kinds);
    return kinds;
}

const SyscallDecl *
SyscallTable::find(const std::string &name) const
{
    for (const auto &decl : decls)
        if (decl.name == name)
            return &decl;
    return nullptr;
}

const SyscallDecl &
SyscallTable::byId(uint32_t id) const
{
    SP_ASSERT(id < decls.size(), "syscall id %u out of range", id);
    SP_ASSERT(decls[id].id == id, "syscall table ids must be dense");
    return decls[id];
}

std::vector<std::string>
SyscallTable::producibleResourceKinds() const
{
    std::vector<std::string> kinds;
    for (const auto &decl : decls) {
        if (!decl.ret_resource.empty() &&
            std::find(kinds.begin(), kinds.end(), decl.ret_resource) ==
                kinds.end()) {
            kinds.push_back(decl.ret_resource);
        }
    }
    return kinds;
}

uint32_t
slotCount(const Type &type)
{
    switch (type.kind) {
      case TypeKind::Int:
      case TypeKind::Flags:
      case TypeKind::Const:
      case TypeKind::Len:
      case TypeKind::Resource:
        return 1;
      case TypeKind::Ptr:
        // Nullness slot plus the pointee's slots.
        return 1 + slotCount(*type.elem);
      case TypeKind::Struct: {
        uint32_t total = 0;
        for (const auto &f : type.fields)
            total += slotCount(*f);
        return total;
      }
      case TypeKind::Buffer:
        // Length slot plus a content-class slot.
        return 2;
    }
    SP_PANIC("unreachable type kind");
}

uint32_t
slotCount(const SyscallDecl &decl)
{
    uint32_t total = 0;
    for (const auto &arg : decl.args)
        total += slotCount(*arg);
    return total;
}

}  // namespace sp::prog
