# Empty compiler generated dependencies file for snowplow_cli.
# This may be replaced when dependencies are built.
