#include "kernel/subsystems.h"

#include <initializer_list>

#include "prog/flatten.h"
#include "util/logging.h"

namespace sp::kern {

namespace {

using prog::SlotRole;
using prog::TypeRef;

/** Find a decl's flattened slot index by argument path and role. */
uint16_t
slotOf(const prog::SyscallDecl &decl, std::initializer_list<uint16_t> path,
       SlotRole role = SlotRole::Value)
{
    const std::vector<uint16_t> want(path);
    for (const auto &slot : prog::enumerateSlots(decl)) {
        if (slot.path == want && slot.role == role)
            return static_cast<uint16_t>(slot.index);
    }
    SP_FATAL("no slot at the requested path in %s", decl.name.c_str());
}

Cond
argEq(uint16_t slot, uint64_t value)
{
    Cond cond;
    cond.kind = CondKind::ArgEq;
    cond.slot = slot;
    cond.a = value;
    return cond;
}

Cond
argMaskAll(uint16_t slot, uint64_t mask)
{
    Cond cond;
    cond.kind = CondKind::ArgMaskAll;
    cond.slot = slot;
    cond.a = mask;
    return cond;
}

Cond
argGe(uint16_t slot, uint64_t value)
{
    Cond cond;
    cond.kind = CondKind::ArgGe;
    cond.slot = slot;
    cond.a = value;
    return cond;
}

Cond
argLt(uint16_t slot, uint64_t value)
{
    Cond cond;
    cond.kind = CondKind::ArgLt;
    cond.slot = slot;
    cond.a = value;
    return cond;
}

Cond
resourceAlive(uint16_t slot, ResourceKindId kind)
{
    Cond cond;
    cond.kind = CondKind::ResourceAlive;
    cond.slot = slot;
    cond.flag = kind;
    return cond;
}

Cond
stateFlag(uint16_t flag)
{
    Cond cond;
    cond.kind = CondKind::StateFlagSet;
    cond.flag = flag;
    return cond;
}

}  // namespace

void
addVfsSubsystem(KernelBuilder &builder)
{
    const ResourceKindId fd_kind = builder.addResourceKind("fd");

    // --- open$file(path *buffer, flags, mode) -> fd -------------------
    {
        prog::SyscallDecl decl;
        decl.name = "open$file";
        decl.ret_resource = "fd";
        decl.args.push_back(prog::ptrType(
            "path", prog::bufferType("path_buf", 1, 16), false, true));
        decl.args.push_back(prog::flagsType(
            "flags",
            {kORdonly, kOWronly, kOCreat, kOTrunc, kOAppend}, true));
        decl.args.push_back(
            prog::flagsType("mode", {0x1ff, 0x180, 0x40}, false));
        const uint16_t s_path_null = slotOf(decl, {0}, SlotRole::PtrNull);
        const uint16_t s_path_len = slotOf(decl, {0, 0}, SlotRole::BufLen);
        const uint16_t s_flags = slotOf(decl, {1});
        const uint16_t s_mode = slotOf(decl, {2});

        builder.beginHandler(decl);
        SyscallEffect alloc;
        alloc.kind = SyscallEffect::Kind::AllocResource;
        alloc.resource_kind = fd_kind;
        builder.addEffect(alloc);

        const uint32_t entry = builder.addBlock(0);
        const uint32_t efault = builder.addBlock(1);
        const uint32_t lookup = builder.addBlock(0);
        const uint32_t toolong = builder.addBlock(1);
        const uint32_t check_creat = builder.addBlock(0);
        const uint32_t do_create = builder.addBlock(1);
        const uint32_t create_mode = builder.addBlock(1);
        const uint32_t create_exec = builder.addBlock(2);
        const uint32_t check_trunc = builder.addBlock(1);
        const uint32_t do_trunc = builder.addBlock(2);
        const uint32_t trunc_append = builder.addBlock(3);
        const uint32_t finish_open = builder.addBlock(0);

        builder.setBranch(entry, argEq(s_path_null, 0), efault, lookup);
        builder.setReturn(efault);
        builder.setBranch(lookup, argGe(s_path_len, 14), toolong,
                          check_creat);
        builder.setReturn(toolong);
        builder.setBranch(check_creat, argMaskAll(s_flags, kOCreat),
                          do_create, finish_open);
        builder.setFallthrough(do_create, create_mode);
        builder.setBranch(create_mode, argEq(s_mode, 0x40), create_exec,
                          check_trunc);
        builder.setFallthrough(create_exec, check_trunc);
        builder.setBranch(check_trunc, argMaskAll(s_flags, kOTrunc),
                          do_trunc, finish_open);
        builder.setBranch(do_trunc, argMaskAll(s_flags, kOAppend),
                          trunc_append, finish_open);
        builder.setFallthrough(trunc_append, finish_open);
        builder.setReturn(finish_open);
    }

    // --- read(fd, buf *buffer out, count) ------------------------------
    {
        prog::SyscallDecl decl;
        decl.name = "read";
        decl.args.push_back(prog::resourceType("fd", "fd"));
        decl.args.push_back(prog::ptrType(
            "buf", prog::bufferType("data", 0, 64), true, true));
        decl.args.push_back(
            prog::intType("count", 32, 0, 8192, {0, 1, 4096, 8192}));
        const uint16_t s_fd = slotOf(decl, {0});
        const uint16_t s_buf_null = slotOf(decl, {1}, SlotRole::PtrNull);
        const uint16_t s_count = slotOf(decl, {2});

        builder.beginHandler(decl);
        const uint32_t entry = builder.addBlock(0);
        const uint32_t ebadf = builder.addBlock(1);
        const uint32_t checkbuf = builder.addBlock(0);
        const uint32_t efault = builder.addBlock(1);
        const uint32_t zero = builder.addBlock(1);
        const uint32_t small = builder.addBlock(0);
        const uint32_t big = builder.addBlock(1);
        const uint32_t huge = builder.addBlock(2);  // readahead path
        const uint32_t page_bug = builder.addBlock(3);
        const uint32_t done = builder.addBlock(0);

        builder.setBranch(entry, resourceAlive(s_fd, fd_kind), checkbuf,
                          ebadf);
        builder.setReturn(ebadf);
        builder.setBranch(checkbuf, argEq(s_buf_null, 0), efault, zero);
        builder.setReturn(efault);
        builder.setBranch(zero, argEq(s_count, 0), done, small);
        builder.setBranch(small, argGe(s_count, 4096), big, done);
        builder.setBranch(big, argEq(s_count, 8192), huge, done);
        builder.setBranch(huge, argEq(s_buf_null, 1), page_bug, done);
        builder.setFallthrough(page_bug, done);
        builder.setReturn(done);

        BugSite bug;
        bug.block = page_bug;
        bug.kind = BugKind::PagingFault;
        bug.description = "Paging fault in vfs_read readahead";
        bug.location = "fs/read_write.c:482";
        bug.flaky = false;
        bug.known = true;  // long-standing, on the continuous-fuzzing list
        builder.addBug(bug);
    }

    // --- write(fd, buf *buffer, count) ---------------------------------
    {
        prog::SyscallDecl decl;
        decl.name = "write";
        decl.args.push_back(prog::resourceType("fd", "fd"));
        decl.args.push_back(prog::ptrType(
            "buf", prog::bufferType("data", 0, 64), false, true));
        decl.args.push_back(prog::lenType("count", 1));
        const uint16_t s_fd = slotOf(decl, {0});
        const uint16_t s_len = slotOf(decl, {1, 0}, SlotRole::BufLen);
        const uint16_t s_class = slotOf(decl, {1, 0}, SlotRole::BufClass);

        builder.beginHandler(decl);
        const uint32_t entry = builder.addBlock(0);
        const uint32_t ebadf = builder.addBlock(1);
        const uint32_t body = builder.addBlock(0);
        const uint32_t empty = builder.addBlock(1);
        const uint32_t journal = builder.addBlock(1);
        const uint32_t magic = builder.addBlock(2);  // ext4-like path
        const uint32_t warn = builder.addBlock(3);
        const uint32_t done = builder.addBlock(0);

        builder.setBranch(entry, resourceAlive(s_fd, fd_kind), body,
                          ebadf);
        builder.setReturn(ebadf);
        builder.setBranch(body, argEq(s_len, 0), empty, journal);
        builder.setReturn(empty);
        builder.setBranch(journal, argGe(s_len, 32), magic, done);
        builder.setBranch(magic, argEq(s_class, 7), warn, done);
        builder.setFallthrough(warn, done);
        builder.setReturn(done);

        BugSite bug;
        bug.block = warn;
        bug.kind = BugKind::Warning;
        bug.description = "WARNING in ext4_iomap_begin";
        bug.location = "fs/ext4/inode.c:3441";
        bug.flaky = false;
        bug.known = true;  // long-standing, on the continuous-fuzzing list
        builder.addBug(bug);
    }

    // --- close$file(fd) -------------------------------------------------
    {
        prog::SyscallDecl decl;
        decl.name = "close$file";
        decl.args.push_back(prog::resourceType("fd", "fd"));
        const uint16_t s_fd = slotOf(decl, {0});

        builder.beginHandler(decl);
        SyscallEffect release;
        release.kind = SyscallEffect::Kind::FreeResource;
        release.slot = 0;
        builder.addEffect(release);

        const uint32_t entry = builder.addBlock(0);
        const uint32_t live = builder.addBlock(0);
        const uint32_t dead = builder.addBlock(1);
        builder.setBranch(entry, resourceAlive(s_fd, fd_kind), live,
                          dead);
        builder.setReturn(live);
        builder.setReturn(dead);
    }

    // --- mmap(addr, len, prot, fd) --------------------------------------
    {
        prog::SyscallDecl decl;
        decl.name = "mmap";
        decl.args.push_back(
            prog::intType("addr", 64, 0, 1 << 20, {0, 0x1000, 0x10000}));
        decl.args.push_back(
            prog::intType("len", 32, 0, 1 << 16,
                          {0, 0x1000, 0x8000, 0xffff}));
        decl.args.push_back(
            prog::flagsType("prot", {0x1, 0x2, 0x4}, true));
        decl.args.push_back(prog::resourceType("fd", "fd"));
        const uint16_t s_addr = slotOf(decl, {0});
        const uint16_t s_len = slotOf(decl, {1});
        const uint16_t s_prot = slotOf(decl, {2});
        const uint16_t s_fd = slotOf(decl, {3});

        builder.beginHandler(decl);
        const uint32_t entry = builder.addBlock(0);
        const uint32_t einval = builder.addBlock(1);
        const uint32_t anon = builder.addBlock(0);
        const uint32_t filebacked = builder.addBlock(1);
        const uint32_t growsdown = builder.addBlock(1);
        const uint32_t gup = builder.addBlock(2);
        const uint32_t gup_bug = builder.addBlock(3);
        const uint32_t done = builder.addBlock(0);

        builder.setBranch(entry, argEq(s_len, 0), einval, anon);
        builder.setReturn(einval);
        builder.setBranch(anon, resourceAlive(s_fd, fd_kind), filebacked,
                          growsdown);
        builder.setFallthrough(filebacked, done);
        builder.setBranch(growsdown, argMaskAll(s_prot, 0x2), gup, done);
        builder.setBranch(gup, argEq(s_addr, 0x1000), gup_bug, done);
        builder.setFallthrough(gup_bug, done);
        builder.setReturn(done);

        BugSite bug;
        bug.block = gup_bug;
        bug.kind = BugKind::AssertViolation;
        bug.description = "GUP no longer grows the stack";
        bug.location = "mm/gup.c:1192";
        bug.flaky = false;
        bug.known = true;  // long-standing, on the continuous-fuzzing list
        builder.addBug(bug);
    }
}

void
addScsiSubsystem(KernelBuilder &builder)
{
    const ResourceKindId scsi_kind = builder.addResourceKind("scsi_fd");

    // --- open$scsi(devnum) -> scsi_fd -----------------------------------
    {
        prog::SyscallDecl decl;
        decl.name = "open$scsi";
        decl.args.push_back(
            prog::intType("devnum", 32, 0, 15, {0, 1}));
        decl.ret_resource = "scsi_fd";
        const uint16_t s_dev = slotOf(decl, {0});

        builder.beginHandler(decl);
        SyscallEffect alloc;
        alloc.kind = SyscallEffect::Kind::AllocResource;
        alloc.resource_kind = scsi_kind;
        builder.addEffect(alloc);

        const uint32_t entry = builder.addBlock(0);
        const uint32_t probe = builder.addBlock(1);
        const uint32_t done = builder.addBlock(0);
        builder.setBranch(entry, argEq(s_dev, 0), probe, done);
        builder.setFallthrough(probe, done);
        builder.setReturn(done);
    }

    // --- ioctl$scsi(fd, cmd, req *sg_io_hdr) -----------------------------
    //
    // The deep path reproduces the paper's Table 4 bug #1: the ATA
    // PASS-THROUGH out-of-bounds write, reachable only when cmd is
    // SCSI_IOCTL_SEND_COMMAND, the request selects ATA_16, the ATA
    // command is ATA_NOP with protocol PIO, and data_len exceeds the
    // sector buffer.
    {
        prog::SyscallDecl decl;
        decl.name = "ioctl$scsi";
        decl.args.push_back(prog::resourceType("fd", "scsi_fd"));
        decl.args.push_back(prog::intType(
            "cmd", 32, 0, 0x5400,
            {kScsiIoctlSendCommand, 0x2, 0x5, 0x6, 0x41, 0x53, 0x85,
             0x301, 0x5331, 0x125, 0x1261, 0x127f, 0x220, 0x2285,
             0x5383, 0x5387}));
        decl.args.push_back(prog::ptrType(
            "req",
            prog::structType(
                "sg_io_hdr",
                {prog::intType("proto", 32, 0, 0xff,
                               {kScsiProtoAta16, 0x12, 0x25, 0x28, 0x2a,
                                0x00, 0x03, 0x08, 0x15, 0x1a, 0x35,
                                0x5a}),
                 prog::intType("ata_cmd", 32, 0, 0xff,
                               {kAtaCmdNop, 0xec, 0x25, 0x35, 0xca,
                                0xc8, 0xe7, 0xea, 0x20, 0x30, 0x40,
                                0x90, 0xb0, 0xef, 0xf5}),
                 prog::flagsType("protocol",
                                 {kAtaProtPio, 0x6, 0x4, 0x0, 0x1, 0x2,
                                  0x5, 0x7, 0x8, 0x9, 0xa, 0xc}, false),
                 prog::intType("data_len", 32, 0, 1024,
                               {0, 4, 16, 64, 128, 255, 256, 384, 511,
                                512, 513, 520, 768, 1024}),
                 prog::bufferType("data", 0, 32),
                 prog::lenType("buf_len", 4)}),
            false, true));
        const uint16_t s_fd = slotOf(decl, {0});
        const uint16_t s_cmd = slotOf(decl, {1});
        const uint16_t s_req_null = slotOf(decl, {2}, SlotRole::PtrNull);
        const uint16_t s_proto = slotOf(decl, {2, 0, 0});
        const uint16_t s_ata_cmd = slotOf(decl, {2, 0, 1});
        const uint16_t s_protocol = slotOf(decl, {2, 0, 2});
        const uint16_t s_data_len = slotOf(decl, {2, 0, 3});

        builder.beginHandler(decl);
        const uint32_t entry = builder.addBlock(0);
        const uint32_t ebadf = builder.addBlock(1);
        const uint32_t dispatch = builder.addBlock(0);
        const uint32_t other_cmd = builder.addBlock(1);
        const uint32_t send_cmd = builder.addBlock(1);
        const uint32_t efault = builder.addBlock(2);
        const uint32_t parse = builder.addBlock(1);
        const uint32_t scsi_legacy = builder.addBlock(2);
        const uint32_t ata16 = builder.addBlock(2);
        const uint32_t ata_other = builder.addBlock(3);
        const uint32_t ata_nop = builder.addBlock(3);
        const uint32_t prot_other = builder.addBlock(4);
        const uint32_t prot_pio = builder.addBlock(4);
        const uint32_t pio_ok = builder.addBlock(5);
        const uint32_t pio_oob = builder.addBlock(5);
        const uint32_t done = builder.addBlock(0);

        builder.setBranch(entry, resourceAlive(s_fd, scsi_kind),
                          dispatch, ebadf);
        builder.setReturn(ebadf);
        builder.setBranch(dispatch, argEq(s_cmd, kScsiIoctlSendCommand),
                          send_cmd, other_cmd);
        builder.setFallthrough(other_cmd, done);
        builder.setBranch(send_cmd, argEq(s_req_null, 0), efault, parse);
        builder.setReturn(efault);
        builder.setBranch(parse, argEq(s_proto, kScsiProtoAta16), ata16,
                          scsi_legacy);
        builder.setFallthrough(scsi_legacy, done);
        builder.setBranch(ata16, argEq(s_ata_cmd, kAtaCmdNop), ata_nop,
                          ata_other);
        builder.setFallthrough(ata_other, done);
        builder.setBranch(ata_nop, argEq(s_protocol, kAtaProtPio),
                          prot_pio, prot_other);
        builder.setFallthrough(prot_other, done);
        builder.setBranch(prot_pio, argGe(s_data_len, kAtaMaxDataLen + 1),
                          pio_oob, pio_ok);
        builder.setFallthrough(pio_ok, done);
        builder.setFallthrough(pio_oob, done);
        builder.setReturn(done);

        BugSite bug;
        bug.block = pio_oob;
        bug.kind = BugKind::OutOfBounds;
        bug.description = "Out of bound access in ata_pio_sector";
        bug.location = "drivers/ata/libata-sff.c:719";
        bug.flaky = false;
        bug.known = false;
        builder.addBug(bug);
    }
}

void
addNetSubsystem(KernelBuilder &builder)
{
    const ResourceKindId sock_kind = builder.addResourceKind("sock");
    const uint16_t bound_flag = builder.addFlags(1);

    // --- socket(domain, type, proto) -> sock -----------------------------
    {
        prog::SyscallDecl decl;
        decl.name = "socket";
        decl.args.push_back(prog::flagsType(
            "domain", {kAfUnix, kAfInet, 0xb}, false));
        decl.args.push_back(prog::flagsType(
            "type", {kSockStream, kSockDgram, 0x3}, false));
        decl.args.push_back(prog::intType("proto", 32, 0, 255, {0, 6, 17}));
        decl.ret_resource = "sock";
        const uint16_t s_domain = slotOf(decl, {0});
        const uint16_t s_type = slotOf(decl, {1});

        builder.beginHandler(decl);
        SyscallEffect alloc;
        alloc.kind = SyscallEffect::Kind::AllocResource;
        alloc.resource_kind = sock_kind;
        builder.addEffect(alloc);

        const uint32_t entry = builder.addBlock(0);
        const uint32_t inet = builder.addBlock(1);
        const uint32_t inet_stream = builder.addBlock(2);
        const uint32_t unix_path = builder.addBlock(1);
        const uint32_t done = builder.addBlock(0);
        builder.setBranch(entry, argEq(s_domain, kAfInet), inet,
                          unix_path);
        builder.setBranch(inet, argEq(s_type, kSockStream), inet_stream,
                          done);
        builder.setFallthrough(inet_stream, done);
        builder.setFallthrough(unix_path, done);
        builder.setReturn(done);
    }

    // --- bind(sock, addr *sockaddr) --------------------------------------
    {
        prog::SyscallDecl decl;
        decl.name = "bind";
        decl.args.push_back(prog::resourceType("sock", "sock"));
        decl.args.push_back(prog::ptrType(
            "addr",
            prog::structType(
                "sockaddr",
                {prog::flagsType("family", {kAfUnix, kAfInet}, false),
                 prog::intType("port", 16, 0, 65535, {0, 80, 8080}),
                 prog::intType("addr4", 32, 0, 0xffffffff,
                               {0, 0x7f000001})}),
            false, true));
        const uint16_t s_sock = slotOf(decl, {0});
        const uint16_t s_addr_null = slotOf(decl, {1}, SlotRole::PtrNull);
        const uint16_t s_port = slotOf(decl, {1, 0, 1});

        builder.beginHandler(decl);
        SyscallEffect set_bound;
        set_bound.kind = SyscallEffect::Kind::SetFlag;
        set_bound.flag = bound_flag;
        builder.addEffect(set_bound);

        const uint32_t entry = builder.addBlock(0);
        const uint32_t ebadf = builder.addBlock(1);
        const uint32_t check = builder.addBlock(0);
        const uint32_t efault = builder.addBlock(1);
        const uint32_t privport = builder.addBlock(1);
        const uint32_t done = builder.addBlock(0);
        builder.setBranch(entry, resourceAlive(s_sock, sock_kind), check,
                          ebadf);
        builder.setReturn(ebadf);
        builder.setBranch(check, argEq(s_addr_null, 0), efault, privport);
        builder.setReturn(efault);
        builder.setBranch(privport, argLt(s_port, 1024), done, done);
        builder.setReturn(done);
    }

    // --- listen(sock, backlog) -------------------------------------------
    {
        prog::SyscallDecl decl;
        decl.name = "listen";
        decl.args.push_back(prog::resourceType("sock", "sock"));
        decl.args.push_back(
            prog::intType("backlog", 32, 0, 4096, {0, 1, 128}));
        const uint16_t s_sock = slotOf(decl, {0});
        const uint16_t s_backlog = slotOf(decl, {1});

        builder.beginHandler(decl);
        const uint32_t entry = builder.addBlock(0);
        const uint32_t ebadf = builder.addBlock(1);
        const uint32_t bound = builder.addBlock(0);
        const uint32_t not_bound = builder.addBlock(1);
        const uint32_t big_backlog = builder.addBlock(1);
        const uint32_t done = builder.addBlock(0);
        builder.setBranch(entry, resourceAlive(s_sock, sock_kind), bound,
                          ebadf);
        builder.setReturn(ebadf);
        builder.setBranch(bound, stateFlag(bound_flag), big_backlog,
                          not_bound);
        builder.setReturn(not_bound);
        builder.setBranch(big_backlog, argGe(s_backlog, 128), done, done);
        builder.setReturn(done);
    }

    // --- sendmsg$inet(sock, msg *msghdr, flags) --------------------------
    //
    // Mirrors the nested-argument example of Figure 4: the msghdr struct
    // carries a nested iovec buffer and a control buffer with computed
    // lengths.
    {
        prog::SyscallDecl decl;
        decl.name = "sendmsg$inet";
        decl.args.push_back(prog::resourceType("sock", "sock"));
        decl.args.push_back(prog::ptrType(
            "msg",
            prog::structType(
                "msghdr",
                {prog::ptrType(
                     "name",
                     prog::structType(
                         "sockaddr_in",
                         {prog::flagsType("family",
                                          {kAfUnix, kAfInet}, false),
                          prog::intType("port", 16, 0, 65535,
                                        {0, 80})}),
                     false, true),
                 prog::bufferType("iov", 0, 48),
                 prog::lenType("iov_len", 1),
                 prog::bufferType("control", 0, 24),
                 prog::lenType("control_len", 3)}),
            false, true));
        decl.args.push_back(prog::flagsType(
            "flags",
            {kMsgOob, kMsgDontwait, 0x4, 0x8000, 0x2, 0x8, 0x10, 0x20,
             0x80, 0x100, 0x800, 0x2000, 0x4000, 0x10000}, true));
        const uint16_t s_sock = slotOf(decl, {0});
        const uint16_t s_msg_null = slotOf(decl, {1}, SlotRole::PtrNull);
        const uint16_t s_name_null =
            slotOf(decl, {1, 0, 0}, SlotRole::PtrNull);
        const uint16_t s_iov_len =
            slotOf(decl, {1, 0, 1}, SlotRole::BufLen);
        const uint16_t s_control_len =
            slotOf(decl, {1, 0, 3}, SlotRole::BufLen);
        const uint16_t s_flags = slotOf(decl, {2});

        builder.beginHandler(decl);
        const uint32_t entry = builder.addBlock(0);
        const uint32_t ebadf = builder.addBlock(1);
        const uint32_t check_msg = builder.addBlock(0);
        const uint32_t efault = builder.addBlock(1);
        const uint32_t named = builder.addBlock(1);
        const uint32_t autoroute = builder.addBlock(1);
        const uint32_t copy_iov = builder.addBlock(0);
        const uint32_t zerolen = builder.addBlock(1);
        const uint32_t cmsg = builder.addBlock(1);
        const uint32_t cmsg_parse = builder.addBlock(2);
        const uint32_t oob = builder.addBlock(2);
        const uint32_t oob_uaf = builder.addBlock(3);
        const uint32_t done = builder.addBlock(0);

        builder.setBranch(entry, resourceAlive(s_sock, sock_kind),
                          check_msg, ebadf);
        builder.setReturn(ebadf);
        builder.setBranch(check_msg, argEq(s_msg_null, 0), efault, named);
        builder.setReturn(efault);
        builder.setBranch(named, argEq(s_name_null, 1), autoroute,
                          copy_iov);
        builder.setFallthrough(autoroute, copy_iov);
        builder.setBranch(copy_iov, argEq(s_iov_len, 0), zerolen, cmsg);
        builder.setReturn(zerolen);
        builder.setBranch(cmsg, argGe(s_control_len, 16), cmsg_parse,
                          done);
        builder.setBranch(cmsg_parse, argMaskAll(s_flags, kMsgOob), oob,
                          done);
        builder.setBranch(oob, argMaskAll(s_flags, kMsgDontwait),
                          oob_uaf, done);
        builder.setFallthrough(oob_uaf, done);
        builder.setReturn(done);

        BugSite bug;
        bug.block = oob_uaf;
        bug.kind = BugKind::GeneralProtectionFault;
        bug.description =
            "General Protection Fault in unix_stream_sendmsg";
        bug.location = "net/unix/af_unix.c:2201";
        bug.flaky = true;  // a concurrency bug: resists reproduction
        bug.known = false;
        builder.addBug(bug);
    }
}

Kernel
buildBaseKernel(const KernelGenParams &params)
{
    KernelBuilder builder(params.version);
    addVfsSubsystem(builder);
    addScsiSubsystem(builder);
    addNetSubsystem(builder);
    appendSyntheticBulk(builder, params);
    return builder.finish();
}

}  // namespace sp::kern
