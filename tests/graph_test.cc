// Tests for the mutation-query graph (§3.2): node/edge composition,
// target marking, the one-hop alternative frontier, and the numeric
// encoding fed to the GNN.

#include <gtest/gtest.h>

#include <unordered_set>

#include "exec/executor.h"
#include "graph/encode.h"
#include "graph/query_graph.h"
#include "kernel/subsystems.h"
#include "prog/flatten.h"
#include "prog/gen.h"

namespace sp::graph {
namespace {

const kern::Kernel &
testKernel()
{
    static kern::Kernel kernel = [] {
        kern::KernelGenParams params;
        params.seed = 4;
        return kern::buildBaseKernel(params);
    }();
    return kernel;
}

struct Built
{
    prog::Prog program;
    exec::ExecResult result;
    QueryGraph graph;
};

Built
buildFor(uint64_t seed, const std::vector<uint32_t> &targets = {})
{
    const auto &kernel = testKernel();
    Rng rng(seed);
    Built built;
    built.program = prog::generateProg(rng, kernel.table());
    exec::Executor executor(kernel);
    built.result = executor.run(built.program);
    built.graph = buildQueryGraph(kernel, built.program, built.result,
                                  targets);
    return built;
}

TEST(QueryGraph, NodeCompositionMatchesProgramAndCoverage)
{
    auto built = buildFor(1);
    EXPECT_EQ(built.graph.countNodes(NodeKind::Syscall),
              built.program.calls.size());

    size_t expected_args = 0;
    for (const auto &call : built.program.calls)
        expected_args += prog::mutationPoints(call).size();
    EXPECT_EQ(built.graph.countNodes(NodeKind::Argument), expected_args);
    EXPECT_EQ(built.graph.argument_nodes.size(), expected_args);
    EXPECT_EQ(built.graph.argument_locations.size(), expected_args);

    EXPECT_EQ(built.graph.countNodes(NodeKind::Covered),
              built.result.coverage.blockCount());
    EXPECT_GT(built.graph.countNodes(NodeKind::Alternative), 0u);
}

TEST(QueryGraph, EdgeKindsAreAllPresent)
{
    auto built = buildFor(2);
    EXPECT_EQ(built.graph.countEdges(EdgeKind::CallOrder),
              built.program.calls.size() - 1);
    EXPECT_GT(built.graph.countEdges(EdgeKind::ArgOrder), 0u);
    EXPECT_GT(built.graph.countEdges(EdgeKind::ArgInOut), 0u);
    EXPECT_GT(built.graph.countEdges(EdgeKind::CoveredFlow), 0u);
    EXPECT_GT(built.graph.countEdges(EdgeKind::UncoveredFlow), 0u);
    // Two context-switch edges per executed call.
    EXPECT_EQ(built.graph.countEdges(EdgeKind::CtxSwitch),
              built.result.calls.size() * 2);
}

TEST(QueryGraph, AlternativeFrontierIsOneHopAndUncovered)
{
    auto built = buildFor(3);
    const auto &kernel = testKernel();
    auto frontier = alternativeFrontier(kernel, built.result.coverage);
    ASSERT_FALSE(frontier.empty());
    for (uint32_t block : frontier) {
        EXPECT_FALSE(built.result.coverage.containsBlock(block));
        bool adjacent = false;
        for (uint32_t covered : built.result.coverage.blocks()) {
            for (uint32_t succ : kernel.successors(covered))
                adjacent |= (succ == block);
        }
        EXPECT_TRUE(adjacent) << "block " << block;
    }
}

TEST(QueryGraph, TargetsAreMarkedOnlyOnFrontier)
{
    auto plain = buildFor(4);
    const auto &kernel = testKernel();
    auto frontier = alternativeFrontier(kernel, plain.result.coverage);
    ASSERT_GE(frontier.size(), 2u);

    std::vector<uint32_t> targets = {frontier[0],
                                     frontier[frontier.size() - 1]};
    auto built = buildFor(4, targets);
    size_t marked = 0;
    for (const auto &node : built.graph.nodes) {
        if (node.is_target) {
            ++marked;
            EXPECT_EQ(node.kind, NodeKind::Alternative);
            EXPECT_TRUE(node.block == targets[0] ||
                        node.block == targets[1]);
        }
    }
    EXPECT_EQ(marked, 2u);
}

TEST(QueryGraph, ArgumentLocationsDecodeIntoProgram)
{
    auto built = buildFor(5);
    for (const auto &loc : built.graph.argument_locations) {
        ASSERT_LT(loc.call_index, built.program.calls.size());
        const prog::Arg &arg = prog::argAtPath(
            built.program.calls[loc.call_index], loc.point.path);
        EXPECT_EQ(arg.type.get(), loc.point.type.get());
    }
}

TEST(QueryGraph, ResourceRefAddsProducerEdge)
{
    const auto &kernel = testKernel();
    prog::Prog program;
    prog::Call open_call;
    open_call.decl = kernel.table().find("open$file");
    open_call.args = prog::defaultArgs(*open_call.decl);
    prog::fixupLengths(open_call);
    program.calls.push_back(std::move(open_call));

    prog::Call read_call;
    read_call.decl = kernel.table().find("read");
    read_call.args = prog::defaultArgs(*read_call.decl);
    read_call.args[0]->result_ref = 0;
    prog::fixupLengths(read_call);
    program.calls.push_back(std::move(read_call));

    exec::Executor executor(kernel);
    auto result = executor.run(program);
    auto graph = buildQueryGraph(kernel, program, result, {});

    // There must be an ArgInOut edge from the open syscall node (node 0)
    // to the fd argument node of the read call.
    bool found = false;
    for (const auto &edge : graph.edges) {
        if (edge.kind != EdgeKind::ArgInOut)
            continue;
        if (graph.nodes[edge.src].kind == NodeKind::Syscall &&
            graph.nodes[edge.src].call_index == 0 &&
            graph.nodes[edge.dst].kind == NodeKind::Argument &&
            graph.nodes[edge.dst].call_index == 1) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Encode, ShapesAndVocabularyBounds)
{
    const auto &kernel = testKernel();
    auto built = buildFor(6);
    auto enc = encodeGraph(kernel, built.graph);

    const auto n = static_cast<size_t>(enc.num_nodes);
    EXPECT_EQ(n, built.graph.nodes.size());
    EXPECT_EQ(enc.node_kind.size(), n);
    EXPECT_EQ(enc.block_tokens.size(), n * EncodeVocab::kTokenWindow);
    for (int32_t kind : enc.node_kind) {
        EXPECT_GE(kind, 0);
        EXPECT_LT(kind, EncodeVocab::kNodeKinds);
    }
    for (int32_t token : enc.block_tokens) {
        EXPECT_GE(token, 0);
        EXPECT_LT(token, kern::token::kVocabSize);
    }
    EXPECT_EQ(enc.argument_nodes.size(),
              built.graph.argument_nodes.size());
}

TEST(Encode, ReverseRelationsMirrorForward)
{
    const auto &kernel = testKernel();
    auto built = buildFor(7);
    auto enc = encodeGraph(kernel, built.graph);
    for (size_t r = 0; r < kNumEdgeKinds; ++r) {
        const auto &fwd = enc.adj[r];
        const auto &rev = enc.adj[kNumEdgeKinds + r];
        ASSERT_EQ(fwd.src.size(), rev.src.size());
        for (size_t i = 0; i < fwd.src.size(); ++i) {
            EXPECT_EQ(fwd.src[i], rev.dst[i]);
            EXPECT_EQ(fwd.dst[i], rev.src[i]);
        }
    }
}

TEST(Encode, BranchBlockTokensNameTheTestedSlot)
{
    // The encoding must preserve the white-box signal: a covered branch
    // block's token window contains the slot token its cond reads.
    const auto &kernel = testKernel();
    auto built = buildFor(8);
    auto enc = encodeGraph(kernel, built.graph);
    size_t verified = 0;
    for (size_t i = 0; i < built.graph.nodes.size(); ++i) {
        const auto &node = built.graph.nodes[i];
        if (node.kind != NodeKind::Covered)
            continue;
        const auto &bb = kernel.block(node.block);
        if (bb.term != kern::Term::Branch ||
            bb.cond.kind == kern::CondKind::StateFlagSet ||
            bb.cond.kind == kern::CondKind::Always) {
            continue;
        }
        const uint16_t expected = kern::token::slotToken(bb.cond.slot);
        bool found = false;
        for (int64_t t = 0; t < EncodeVocab::kTokenWindow; ++t) {
            found |= (enc.block_tokens[i * EncodeVocab::kTokenWindow +
                                       static_cast<size_t>(t)] ==
                      expected);
        }
        EXPECT_TRUE(found) << "block " << node.block;
        ++verified;
    }
    EXPECT_GT(verified, 0u);
}

}  // namespace
}  // namespace sp::graph
