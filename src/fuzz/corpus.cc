#include "fuzz/corpus.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace sp::fuzz {

namespace {

/** Admission-lock contention events (multi-worker campaigns). */
obs::Counter &
admitContentionCounter()
{
    static obs::Counter &counter =
        obs::Registry::global().counter("campaign.admit_contention");
    return counter;
}

}  // namespace

Corpus::Corpus(size_t shards)
    : shard_count_(shards == 0 ? 1 : shards),
      shards_(std::make_unique<Shard[]>(shard_count_))
{
}

bool
Corpus::maybeAdd(const prog::Prog &program, const exec::ExecResult &result,
                 uint64_t exec_counter, size_t *new_edges_out,
                 size_t *new_blocks_out)
{
    size_t new_edges = 0;
    size_t new_blocks = 0;
    uint64_t hash = 0;
    bool admit = false;
    {
        std::unique_lock<std::mutex> lock(cov_mu_, std::try_to_lock);
        if (!lock.owns_lock()) {
            admitContentionCounter().inc();
            lock.lock();
        }
        const size_t blocks_before = total_.blockCount();
        new_edges = total_.countNewEdges(result.coverage);
        total_.merge(result.coverage);
        new_blocks = total_.blockCount() - blocks_before;
        edge_count_.store(total_.edgeCount(), std::memory_order_release);
        block_count_.store(total_.blockCount(),
                           std::memory_order_release);
        if (new_edges > 0) {
            epoch_.fetch_add(1, std::memory_order_release);
            hash = program.hash();
            admit = hashes_.insert(hash).second;
        }
    }
    if (new_edges_out != nullptr)
        *new_edges_out = new_edges;
    if (new_blocks_out != nullptr)
        *new_blocks_out = new_blocks;
    if (!admit)
        return false;

    CorpusEntry entry;
    entry.program.calls = program.calls;  // deep copy
    entry.result = result;
    entry.content_hash = hash;
    entry.admitted_at_exec = exec_counter;

    Shard &shard = shards_[hash % shard_count_];
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.entries.push_back(std::move(entry));
        shard.count.store(shard.entries.size(),
                          std::memory_order_release);
    }
    size_.fetch_add(1, std::memory_order_release);
    return true;
}

const CorpusEntry &
Corpus::pick(Rng &rng) const
{
    SP_ASSERT(!empty(), "pick from an empty corpus");
    size_t shard_index = 0;
    if (shard_count_ > 1) {
        // Pick a shard weighted by its entry count so every entry keeps
        // (roughly) uniform base mass regardless of shard skew.
        uint64_t point = rng.below(size());
        for (; shard_index + 1 < shard_count_; ++shard_index) {
            const size_t count = shards_[shard_index].count.load(
                std::memory_order_acquire);
            if (point < count)
                break;
            point -= count;
        }
        // Admissions since the size() read may leave `point` past the
        // last shard's count; the in-shard pick below re-clamps.
    }
    for (size_t probe = 0; probe < shard_count_; ++probe) {
        Shard &shard =
            shards_[(shard_index + probe) % shard_count_];
        std::lock_guard<std::mutex> lock(shard.mu);
        const size_t n = shard.entries.size();
        if (n == 0)
            continue;  // race-skewed or empty shard: probe the next
        // Bias toward the newest quarter of the shard half the time:
        // fresh entries sit at the coverage frontier.
        if (n >= 8 && rng.chance(0.5)) {
            const size_t quarter = n / 4;
            const size_t start = n - quarter;
            return shard.entries[start + rng.below(quarter)];
        }
        return shard.entries[rng.below(n)];
    }
    SP_FATAL("corpus reported non-empty but every shard is empty");
}

const CorpusEntry &
Corpus::entry(size_t index) const
{
    for (size_t s = 0; s < shard_count_; ++s) {
        Shard &shard = shards_[s];
        std::lock_guard<std::mutex> lock(shard.mu);
        if (index < shard.entries.size())
            return shard.entries[index];
        index -= shard.entries.size();
    }
    SP_FATAL("corpus entry index out of range");
}

}  // namespace sp::fuzz
