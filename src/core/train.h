/**
 * @file
 * PMM training and evaluation (paper §3.3 and §5.2).
 *
 * Training minimizes per-argument-node binary cross-entropy with a
 * positive-class weight (each graph has far more NOT-MUTATE than MUTATE
 * arguments). Evaluation reproduces the paper's metrics: per-example
 * precision, recall, F1 and Jaccard between the predicted argument set
 * ŷ and the ground-truth set y, averaged across examples — plus the
 * Rand-K baseline selector (K = mean ground-truth size of the training
 * split, the paper's Rand.8).
 */
#ifndef SP_CORE_TRAIN_H
#define SP_CORE_TRAIN_H

#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/pmm.h"

namespace sp::core {

/** Training configuration. */
struct TrainOptions
{
    int epochs = 12;
    float learning_rate = 3e-3f;
    float weight_decay = 1e-5f;
    float pos_weight = 2.0f;    ///< BCE weight of MUTATE labels
    float grad_clip = 5.0f;
    uint64_t seed = 77;
    size_t max_train_examples = 0;  ///< 0 = use all
    /** Early-stop patience in epochs without validation-F1 gain. */
    int patience = 3;
    bool verbose = false;
};

/** Per-example-averaged selector metrics. */
struct SelectorMetrics
{
    double f1 = 0.0;
    double precision = 0.0;
    double recall = 0.0;
    double jaccard = 0.0;
    size_t examples = 0;
};

/** One epoch's training record. */
struct EpochRecord
{
    int epoch = 0;
    double train_loss = 0.0;
    SelectorMetrics valid;
};

/** Training history. */
struct TrainHistory
{
    std::vector<EpochRecord> epochs;
    SelectorMetrics best_valid;
    /** Decision threshold maximizing validation F1 (swept post-training). */
    float best_threshold = 0.5f;
};

/** Train `model` on the dataset's train split. */
TrainHistory trainPmm(Pmm &model, const Dataset &dataset,
                      const TrainOptions &opts);

/** Evaluate the model's argument selection over a split. */
SelectorMetrics evaluatePmm(const Pmm &model, const Dataset &dataset,
                            const std::vector<RawExample> &split,
                            float threshold = 0.5f);

/**
 * Evaluate the Rand-K baseline: uniformly select k arguments per
 * example, score against the ground truth (paper Table 1, Rand.8).
 */
SelectorMetrics evaluateRandomSelector(const Dataset &dataset,
                                       const std::vector<RawExample> &split,
                                       size_t k, uint64_t seed);

}  // namespace sp::core

#endif  // SP_CORE_TRAIN_H
