# Empty compiler generated dependencies file for table1_selector.
# This may be replaced when dependencies are built.
