/**
 * @file
 * Concrete test programs: argument value trees, calls and programs.
 *
 * An Arg instantiates a Type with actual values; a Call pairs a
 * SyscallDecl with its argument values; a Prog is an ordered call list.
 * Resource arguments refer to the *producing call's index* inside the
 * same program (like Syzkaller's r0/r1 variables), or carry no reference
 * to model an invalid handle.
 */
#ifndef SP_PROG_VALUE_H
#define SP_PROG_VALUE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "prog/types.h"

namespace sp::prog {

struct Arg;
using ArgPtr = std::unique_ptr<Arg>;

/** One argument value node, mirroring its Type's shape. */
struct Arg
{
    TypeRef type;

    /** Int/Flags/Const/Len: the numeric value. */
    uint64_t scalar = 0;

    /** @name Ptr */
    /** @{ */
    bool is_null = false;
    ArgPtr pointee;  ///< set iff !is_null
    /** @} */

    /** Struct: field values (same arity/order as type->fields). */
    std::vector<ArgPtr> fields;

    /** Buffer: payload bytes. */
    std::vector<uint8_t> bytes;

    /**
     * Resource: index of the producing call within the program, or -1
     * for an intentionally-invalid handle.
     */
    int32_t result_ref = -1;

    /** Deep copy. */
    ArgPtr clone() const;

    /** Structural equality (type identity by pointer, values deep). */
    bool equals(const Arg &other) const;
};

/** One system-call invocation. */
struct Call
{
    const SyscallDecl *decl = nullptr;
    std::vector<ArgPtr> args;

    Call() = default;
    Call(const Call &other);
    Call &operator=(const Call &other);
    Call(Call &&) = default;
    Call &operator=(Call &&) = default;
};

/** An ordered sequence of calls — one kernel test. */
struct Prog
{
    std::vector<Call> calls;

    /** Structural equality. */
    bool equals(const Prog &other) const;

    /** Stable content hash (used for corpus dedup). */
    uint64_t hash() const;

    /** Number of calls. */
    size_t size() const { return calls.size(); }
};

/** Construct the default value for a type (zeroed ints, min-size bufs). */
ArgPtr defaultArg(const TypeRef &type);

/** Construct default values for every argument of a decl. */
std::vector<ArgPtr> defaultArgs(const SyscallDecl &decl);

/**
 * Recompute every Len field in a call from its sibling buffer's current
 * size. Call after any mutation that can change buffer lengths.
 */
void fixupLengths(Call &call);

/**
 * Visit every Arg node of a call in flattening order (pre-order).
 * The visitor receives the node and its path (child indices from the
 * call root, where top-level argument index is the first element).
 */
void visitArgs(const Call &call,
               const std::function<void(const Arg &,
                                        const std::vector<uint16_t> &)> &fn);

/** Mutable variant of visitArgs. */
void visitArgsMut(Call &call,
                  const std::function<void(Arg &,
                                           const std::vector<uint16_t> &)> &fn);

/** Resolve a path (as produced by visitArgs) to the node; fatal if bad. */
Arg &argAtPath(Call &call, const std::vector<uint16_t> &path);
const Arg &argAtPath(const Call &call, const std::vector<uint16_t> &path);

/**
 * Rewrite result_ref indices after inserting (delta=+1) or removing
 * (delta=-1) the call at `position`. References to a removed call become
 * invalid handles (result_ref = -1).
 */
void shiftResultRefs(Prog &prog, size_t position, int delta);

}  // namespace sp::prog

#endif  // SP_PROG_VALUE_H
