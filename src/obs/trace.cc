#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/logging.h"

namespace sp::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

/** Introspection claims: tracer + each status server hold one while
 *  alive; the board is live while any claim is held. */
std::atomic<int> g_introspection_claims{0};

thread_local uint64_t t_trace_id = 0;

/**
 * One thread's span ring. Single producer (the owning thread); spans
 * are stored as relaxed atomic words so concurrent snapshot readers
 * (status server, flight recorder) are data-race-free — a slot being
 * overwritten mid-read may tear *across* fields, never within one,
 * which is the black-box trade the header documents.
 */
class SpanRing
{
  public:
    SpanRing(size_t capacity, uint32_t id, std::string label)
        : id_(id), label_(std::move(label))
    {
        resize(capacity);
    }

    /** Producer-side only; callers guarantee no concurrent resize. */
    void
    push(const Span &span)
    {
        const uint64_t n = count_.load(std::memory_order_relaxed);
        AtomicSpan &slot = slots_[n % capacity_];
        slot.f[0].store(span.trace_id, std::memory_order_relaxed);
        slot.f[1].store(span.ts_us, std::memory_order_relaxed);
        slot.f[2].store(span.dur_us, std::memory_order_relaxed);
        slot.f[3].store(span.arg, std::memory_order_relaxed);
        slot.f[4].store(static_cast<uint64_t>(span.kind),
                        std::memory_order_relaxed);
        count_.store(n + 1, std::memory_order_release);
    }

    RingSnapshot
    snapshot() const
    {
        RingSnapshot out;
        out.ring = id_;
        out.label = label_;
        const uint64_t n = count_.load(std::memory_order_acquire);
        const uint64_t kept = n < capacity_ ? n : capacity_;
        out.spans.reserve(kept);
        for (uint64_t i = n - kept; i < n; ++i) {
            const AtomicSpan &slot = slots_[i % capacity_];
            Span span;
            span.trace_id = slot.f[0].load(std::memory_order_relaxed);
            span.ts_us = slot.f[1].load(std::memory_order_relaxed);
            span.dur_us = slot.f[2].load(std::memory_order_relaxed);
            span.arg = slot.f[3].load(std::memory_order_relaxed);
            span.kind = static_cast<SpanKind>(
                slot.f[4].load(std::memory_order_relaxed));
            span.ring = id_;
            out.spans.push_back(span);
        }
        return out;
    }

    /** Only while unowned (creation / free-list reuse), under the
     *  ring-registry mutex. */
    void
    resize(size_t capacity)
    {
        capacity_ = capacity == 0 ? 1 : capacity;
        slots_ = std::make_unique<AtomicSpan[]>(capacity_);
        count_.store(0, std::memory_order_release);
    }

    void setLabel(std::string label) { label_ = std::move(label); }
    uint32_t id() const { return id_; }

  private:
    struct AtomicSpan
    {
        std::atomic<uint64_t> f[5];
    };

    uint32_t id_;
    std::string label_;
    size_t capacity_ = 0;
    std::unique_ptr<AtomicSpan[]> slots_;
    std::atomic<uint64_t> count_{0};
};

/** Registry of every ring ever created, plus a free list so rings of
 *  exited threads are recycled instead of accumulating. */
struct RingRegistry
{
    std::mutex mu;
    std::vector<std::unique_ptr<SpanRing>> rings;
    std::vector<SpanRing *> free_list;
    size_t default_capacity = 1024;
};

RingRegistry &
ringRegistry()
{
    static RingRegistry *registry = new RingRegistry;
    return *registry;
}

/** Returns a ring to the free list when its owner thread exits. */
struct RingLease
{
    SpanRing *ring = nullptr;

    ~RingLease()
    {
        if (ring == nullptr)
            return;
        RingRegistry &registry = ringRegistry();
        std::lock_guard<std::mutex> lock(registry.mu);
        registry.free_list.push_back(ring);
    }
};

SpanRing &
ringForThisThread()
{
    static thread_local RingLease lease;
    if (lease.ring == nullptr) {
        RingRegistry &registry = ringRegistry();
        std::lock_guard<std::mutex> lock(registry.mu);
        if (!registry.free_list.empty()) {
            lease.ring = registry.free_list.back();
            registry.free_list.pop_back();
            lease.ring->resize(registry.default_capacity);
            lease.ring->setLabel("thread" +
                                 std::to_string(lease.ring->id()));
        } else {
            const auto id =
                static_cast<uint32_t>(registry.rings.size());
            registry.rings.push_back(std::make_unique<SpanRing>(
                registry.default_capacity, id,
                "thread" + std::to_string(id)));
            lease.ring = registry.rings.back().get();
        }
    }
    return *lease.ring;
}

/** Tracer state guarded by one mutex (install/shutdown/export/dump). */
struct TracerState
{
    std::mutex mu;
    bool installed = false;
    TraceOptions opts;
    std::vector<Span> export_spans;
    uint64_t export_dropped = 0;
    bool exporting = false;

    std::thread watchdog;
    std::atomic<bool> watchdog_stop{false};

    std::atomic<uint64_t> next_trace{0};
};

TracerState &
tracerState()
{
    static TracerState *state = new TracerState;
    return *state;
}

std::atomic<bool> g_exporting{false};

/** One dump per process from the automatic hooks. */
std::atomic<bool> g_auto_dumped{false};

std::mutex g_status_provider_mu;
std::function<std::string()> g_status_provider;
std::mutex g_coverage_provider_mu;
std::function<std::string()> g_coverage_provider;
std::mutex g_timeline_provider_mu;
std::function<std::string()> g_timeline_provider;

void
collectForExport(const Span &span)
{
    TracerState &state = tracerState();
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.installed)
        return;
    if (state.export_spans.size() >= state.opts.max_export_spans) {
        ++state.export_dropped;
        return;
    }
    state.export_spans.push_back(span);
}

void
record(SpanKind kind, uint64_t trace_id, uint64_t ts_us,
       uint64_t dur_us, uint64_t arg)
{
    Span span;
    span.trace_id = trace_id;
    span.ts_us = ts_us;
    span.dur_us = dur_us;
    span.arg = arg;
    span.kind = kind;
    SpanRing &ring = ringForThisThread();
    span.ring = ring.id();
    ring.push(span);
    if (g_exporting.load(std::memory_order_relaxed))
        collectForExport(span);
}

void
appendTraceEvent(std::string &out, const Span &span)
{
    out += "{\"name\":\"";
    out += spanKindName(span.kind);
    out += "\",\"cat\":\"pipeline\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(span.ring);
    out += ",\"ts\":";
    out += std::to_string(span.ts_us);
    out += ",\"dur\":";
    out += std::to_string(span.dur_us);
    out += ",\"args\":{\"trace_id\":";
    out += std::to_string(span.trace_id);
    out += ",\"arg\":";
    out += std::to_string(span.arg);
    out += "}}";
}

/** Serialize spans as one Chrome trace_event JSON array, prefixed by
 *  thread_name metadata events so Perfetto labels the tracks. */
std::string
traceEventJson(const std::vector<Span> &spans)
{
    std::string out;
    out.reserve(spans.size() * 96 + 1024);
    out += "[";
    bool first = true;
    {
        RingRegistry &registry = ringRegistry();
        std::lock_guard<std::mutex> lock(registry.mu);
        for (const auto &ring : registry.rings) {
            if (!first)
                out += ",\n";
            first = false;
            out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                   "\"tid\":";
            out += std::to_string(ring->id());
            out += ",\"args\":{\"name\":";
            out += jsonQuote(ring->snapshot().label);
            out += "}}";
        }
    }
    for (const Span &span : spans) {
        if (!first)
            out += ",\n";
        first = false;
        appendTraceEvent(out, span);
    }
    out += "]\n";
    return out;
}

void flightRecordFromHook(const char *reason);

extern "C" void
fatalSignalHandler(int signo)
{
    // Best effort: the dump path takes locks and allocates, which is
    // not async-signal-safe, but on a crashing process a partially
    // written flight record beats none. Restore + re-raise so the
    // default disposition (core dump, exit code) still applies.
    std::signal(signo, SIG_DFL);
    char reason[64];
    std::snprintf(reason, sizeof(reason), "fatal signal %d", signo);
    flightRecordFromHook(reason);
    std::raise(signo);
}

void
panicHook(const char *message)
{
    flightRecordFromHook(message);
}

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGILL, SIGFPE,
                                 SIGABRT};

void
armCrashHooks()
{
    setPanicHook(&panicHook);
    for (int signo : kFatalSignals)
        std::signal(signo, &fatalSignalHandler);
}

void
disarmCrashHooks()
{
    setPanicHook(nullptr);
    for (int signo : kFatalSignals)
        std::signal(signo, SIG_DFL);
}

void
watchdogLoop()
{
    TracerState &state = tracerState();
    uint64_t timeout_us;
    {
        std::lock_guard<std::mutex> lock(state.mu);
        timeout_us = state.opts.stall_timeout_us;
    }
    const auto nap = std::chrono::microseconds(
        std::max<uint64_t>(timeout_us / 4, 1000));
    while (!state.watchdog_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(nap);
        const StatusBoard &board = statusBoard();
        const uint64_t now = monotonicMicros();
        for (size_t w = 0; w < board.workers(); ++w) {
            const auto worker = board.worker(w);
            if (worker.stage == WorkerStage::Idle)
                continue;
            if (now - worker.since_us < timeout_us)
                continue;
            char reason[128];
            std::snprintf(reason, sizeof(reason),
                          "worker %zu stalled in %s for %llu us "
                          "(slot %llu)",
                          w, workerStageName(worker.stage),
                          static_cast<unsigned long long>(
                              now - worker.since_us),
                          static_cast<unsigned long long>(worker.slot));
            flightRecordFromHook(reason);
            return;  // one stall dump per watchdog lifetime
        }
    }
}

}  // namespace

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Schedule:
        return "schedule";
      case SpanKind::Localize:
        return "localize";
      case SpanKind::Instantiate:
        return "instantiate";
      case SpanKind::Execute:
        return "execute";
      case SpanKind::Triage:
        return "triage";
      case SpanKind::Checkpoint:
        return "checkpoint";
      case SpanKind::Seed:
        return "seed";
      case SpanKind::CheckpointWait:
        return "checkpoint_wait";
      case SpanKind::InferQueue:
        return "infer_queue";
      case SpanKind::InferBatch:
        return "infer_batch";
      case SpanKind::kCount:
        break;
    }
    return "?";
}

bool
traceEnabled()
{
    return g_trace_enabled.load(std::memory_order_relaxed);
}

void
installTracer(const TraceOptions &opts)
{
    TracerState &state = tracerState();
    // Quiesce a previous tracer first (joins its watchdog).
    shutdownTracer();
    {
        std::lock_guard<std::mutex> lock(state.mu);
        state.opts = opts;
        if (state.opts.sample == 0)
            state.opts.sample = 1;
        state.installed = true;
        state.export_spans.clear();
        state.export_dropped = 0;
        state.exporting = true;
    }
    {
        RingRegistry &registry = ringRegistry();
        std::lock_guard<std::mutex> lock(registry.mu);
        registry.default_capacity =
            opts.ring_capacity == 0 ? 1 : opts.ring_capacity;
    }
    armCrashHooks();
    g_auto_dumped.store(false, std::memory_order_release);
    g_exporting.store(true, std::memory_order_release);
    g_trace_enabled.store(true, std::memory_order_release);
    // Released by shutdownTracer() — the watchdog reads the board, so
    // the claim must outlive it, not any status server.
    claimIntrospection();
    if (opts.stall_timeout_us > 0) {
        state.watchdog_stop.store(false, std::memory_order_release);
        state.watchdog = std::thread(&watchdogLoop);
    }
}

void
shutdownTracer()
{
    TracerState &state = tracerState();
    g_trace_enabled.store(false, std::memory_order_release);
    g_exporting.store(false, std::memory_order_release);
    state.watchdog_stop.store(true, std::memory_order_release);
    if (state.watchdog.joinable())
        state.watchdog.join();

    std::string path;
    std::string payload;
    {
        std::lock_guard<std::mutex> lock(state.mu);
        if (!state.installed)
            return;
        state.installed = false;
        state.exporting = false;
        path = state.opts.path;
        if (!path.empty()) {
            if (state.export_dropped > 0) {
                SP_WARN("trace export dropped %llu spans past the "
                        "%zu-span cap",
                        static_cast<unsigned long long>(
                            state.export_dropped),
                        state.opts.max_export_spans);
            }
            payload = traceEventJson(state.export_spans);
        }
        state.export_spans.clear();
        state.export_spans.shrink_to_fit();
    }
    disarmCrashHooks();
    releaseIntrospection();
    if (!path.empty()) {
        std::FILE *file = std::fopen(path.c_str(), "w");
        if (file == nullptr) {
            SP_WARN("cannot open trace file '%s'", path.c_str());
        } else {
            std::fwrite(payload.data(), 1, payload.size(), file);
            std::fclose(file);
        }
    }
}

uint64_t
beginTrace()
{
    if (!traceEnabled())
        return 0;
    TracerState &state = tracerState();
    const uint64_t id =
        state.next_trace.fetch_add(1, std::memory_order_relaxed) + 1;
    uint32_t sample = 1;
    {
        // opts.sample is only written while tracing is disabled, so
        // this read is effectively immutable; keep it under the mutex
        // anyway to stay obviously correct.
        std::lock_guard<std::mutex> lock(state.mu);
        sample = state.opts.sample;
    }
    if (sample > 1 && id % sample != 0)
        return 0;
    return id;
}

uint64_t
currentTraceId()
{
    return t_trace_id;
}

TraceScope::TraceScope(uint64_t trace_id) : saved_(t_trace_id)
{
    t_trace_id = trace_id;
}

TraceScope::~TraceScope()
{
    t_trace_id = saved_;
}

TraceSpan::TraceSpan(SpanKind kind, uint64_t arg)
    : TraceSpan(kind, traceEnabled() ? t_trace_id : 0, arg)
{
}

TraceSpan::TraceSpan(SpanKind kind, uint64_t trace_id, uint64_t arg)
    : trace_id_(traceEnabled() ? trace_id : 0), arg_(arg), kind_(kind)
{
    if (trace_id_ != 0)
        start_us_ = monotonicMicros();
}

TraceSpan::~TraceSpan()
{
    if (trace_id_ == 0)
        return;
    const uint64_t end = monotonicMicros();
    record(kind_, trace_id_, start_us_, end - start_us_, arg_);
}

void
recordSpan(SpanKind kind, uint64_t trace_id, uint64_t ts_us,
           uint64_t dur_us, uint64_t arg)
{
    if (!traceEnabled())
        return;
    record(kind, trace_id, ts_us, dur_us, arg);
}

void
setRingLabel(const std::string &label)
{
    SpanRing &ring = ringForThisThread();
    RingRegistry &registry = ringRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    ring.setLabel(label);
}

std::vector<RingSnapshot>
snapshotRings()
{
    RingRegistry &registry = ringRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    std::vector<RingSnapshot> out;
    out.reserve(registry.rings.size());
    for (const auto &ring : registry.rings)
        out.push_back(ring->snapshot());
    return out;
}

size_t
exportedSpanCount()
{
    TracerState &state = tracerState();
    std::lock_guard<std::mutex> lock(state.mu);
    return state.export_spans.size();
}

const char *
workerStageName(WorkerStage stage)
{
    switch (stage) {
      case WorkerStage::Idle:
        return "idle";
      case WorkerStage::Schedule:
        return "schedule";
      case WorkerStage::Localize:
        return "localize";
      case WorkerStage::Instantiate:
        return "instantiate";
      case WorkerStage::Execute:
        return "execute";
      case WorkerStage::Triage:
        return "triage";
      case WorkerStage::Checkpoint:
        return "checkpoint";
      case WorkerStage::Seed:
        return "seed";
    }
    return "?";
}

void
StatusBoard::reset(size_t workers)
{
    const size_t clamped =
        workers > kMaxWorkers ? kMaxWorkers : workers;
    for (size_t w = 0; w < kMaxWorkers; ++w) {
        lanes_[w].stage.store(0, std::memory_order_relaxed);
        lanes_[w].slot.store(0, std::memory_order_relaxed);
        lanes_[w].since_us.store(0, std::memory_order_relaxed);
    }
    workers_.store(clamped, std::memory_order_release);
}

void
StatusBoard::setStage(size_t worker, WorkerStage stage, uint64_t slot)
{
    if (worker >= kMaxWorkers)
        return;
    Lane &lane = lanes_[worker];
    lane.stage.store(static_cast<uint32_t>(stage),
                     std::memory_order_relaxed);
    lane.slot.store(slot, std::memory_order_relaxed);
    lane.since_us.store(monotonicMicros(), std::memory_order_relaxed);
}

StatusBoard::WorkerState
StatusBoard::worker(size_t w) const
{
    WorkerState state;
    if (w >= kMaxWorkers)
        return state;
    const Lane &lane = lanes_[w];
    state.stage = static_cast<WorkerStage>(
        lane.stage.load(std::memory_order_relaxed));
    state.slot = lane.slot.load(std::memory_order_relaxed);
    state.since_us = lane.since_us.load(std::memory_order_relaxed);
    return state;
}

StatusBoard &
statusBoard()
{
    static StatusBoard *board = new StatusBoard;
    return *board;
}

bool
introspectionEnabled()
{
    return g_introspection_claims.load(std::memory_order_relaxed) > 0;
}

void
claimIntrospection()
{
    g_introspection_claims.fetch_add(1, std::memory_order_relaxed);
}

void
releaseIntrospection()
{
    // Clamped at zero so an unmatched release (test teardown sweeping
    // up) can never disable a claim someone else still holds.
    int claims = g_introspection_claims.load(std::memory_order_relaxed);
    while (claims > 0 &&
           !g_introspection_claims.compare_exchange_weak(
               claims, claims - 1, std::memory_order_relaxed)) {
    }
}

void
setStatusProvider(std::function<std::string()> provider)
{
    std::lock_guard<std::mutex> lock(g_status_provider_mu);
    g_status_provider = std::move(provider);
}

std::string
statusJson()
{
    const StatusBoard &board = statusBoard();
    const uint64_t now = monotonicMicros();
    std::string out;
    out.reserve(512);
    out += "{\"t_us\":";
    out += std::to_string(now);
    out += ",\"workers\":[";
    for (size_t w = 0; w < board.workers(); ++w) {
        const auto worker = board.worker(w);
        if (w != 0)
            out += ',';
        out += "{\"id\":";
        out += std::to_string(w);
        out += ",\"stage\":";
        out += jsonQuote(workerStageName(worker.stage));
        out += ",\"slot\":";
        out += std::to_string(worker.slot);
        out += ",\"stage_age_us\":";
        out += std::to_string(
            worker.since_us == 0 || now < worker.since_us
                ? 0
                : now - worker.since_us);
        out += "}";
    }
    out += "],\"campaign\":";
    {
        // Invoked under the registration mutex so setStatusProvider()
        // cannot return while an old provider is still running: once a
        // caller has swapped the provider, no thread can be executing
        // the previous one (whose captures may be about to die with a
        // stack frame).
        std::lock_guard<std::mutex> lock(g_status_provider_mu);
        const std::string campaign =
            g_status_provider ? g_status_provider() : "";
        out += campaign.empty() ? "{}" : campaign;
    }
    out += "}";
    return out;
}

void
setCoverageProvider(std::function<std::string()> provider)
{
    std::lock_guard<std::mutex> lock(g_coverage_provider_mu);
    g_coverage_provider = std::move(provider);
}

std::string
coverageJson()
{
    // Same invoke-under-registration-mutex contract as the status
    // provider: once setCoverageProvider() returns, no thread is still
    // running the previous provider.
    std::lock_guard<std::mutex> lock(g_coverage_provider_mu);
    const std::string payload =
        g_coverage_provider ? g_coverage_provider() : "";
    return payload.empty() ? "{\"enabled\":false}" : payload;
}

void
setTimelineProvider(std::function<std::string()> provider)
{
    std::lock_guard<std::mutex> lock(g_timeline_provider_mu);
    g_timeline_provider = std::move(provider);
}

std::string
timelineJson()
{
    // Same invoke-under-registration-mutex contract as the status and
    // coverage providers: once setTimelineProvider() returns, no
    // thread is still running the previous provider.
    std::lock_guard<std::mutex> lock(g_timeline_provider_mu);
    const std::string payload =
        g_timeline_provider ? g_timeline_provider() : "";
    return payload.empty() ? "{\"enabled\":false}" : payload;
}

namespace {

void
flightRecordFromHook(const char *reason)
{
    if (g_auto_dumped.exchange(true, std::memory_order_acq_rel))
        return;
    flightRecordNow(reason);
}

}  // namespace

std::string
flightRecordNow(std::string_view reason)
{
    TracerState &state = tracerState();
    std::string dir;
    {
        std::lock_guard<std::mutex> lock(state.mu);
        if (!state.installed)
            return "";
        dir = state.opts.flightrec_dir;
    }
    if (dir.empty())
        dir = ".";
    const uint64_t now = monotonicMicros();
    const std::string path = dir + "/flightrec-" +
                             std::to_string(now) + ".json";

    std::string out;
    out.reserve(1 << 16);
    out += "{\"reason\":";
    out += jsonQuote(reason);
    out += ",\"t_us\":";
    out += std::to_string(now);
    out += ",\"status\":";
    out += statusJson();
    out += ",\"rings\":[";
    const auto rings = snapshotRings();
    bool first_ring = true;
    for (const RingSnapshot &ring : rings) {
        if (ring.spans.empty())
            continue;
        if (!first_ring)
            out += ',';
        first_ring = false;
        out += "{\"ring\":";
        out += std::to_string(ring.ring);
        out += ",\"label\":";
        out += jsonQuote(ring.label);
        out += ",\"spans\":[";
        for (size_t i = 0; i < ring.spans.size(); ++i) {
            if (i != 0)
                out += ',';
            const Span &span = ring.spans[i];
            out += "{\"name\":\"";
            out += spanKindName(span.kind);
            out += "\",\"trace_id\":";
            out += std::to_string(span.trace_id);
            out += ",\"ts\":";
            out += std::to_string(span.ts_us);
            out += ",\"dur\":";
            out += std::to_string(span.dur_us);
            out += ",\"arg\":";
            out += std::to_string(span.arg);
            out += "}";
        }
        out += "]}";
    }
    out += "],\"timeline\":";
    // Metric trends leading up to the dump: the recent timeline window
    // shows execs/sec decay or queue growth, not just the final state.
    out += timelineJson();
    out += ",\"registry\":";
    out += Registry::global().snapshotJson();
    out += "}\n";

    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        SP_WARN("flight recorder: cannot open '%s'", path.c_str());
        return "";
    }
    std::fwrite(out.data(), 1, out.size(), file);
    std::fflush(file);
    std::fclose(file);
    SP_WARN("flight record written to %s", path.c_str());
    return path;
}

}  // namespace sp::obs
