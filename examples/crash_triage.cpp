// Crash-triage demo (paper §5.3.2): run a longer campaign, deduplicate
// crashes, attempt syz-repro-style reproduction and minimization, and
// print the Table-3-style manifestation breakdown plus per-crash
// reports with reproducers.
//
//   $ ./crash_triage [pmm_checkpoint] [budget]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/snowplow.h"
#include "kernel/subsystems.h"
#include "nn/serialize.h"
#include "prog/serialize.h"

int
main(int argc, char **argv)
{
    using namespace sp;

    const std::string ckpt = argc > 1 ? argv[1] : "/tmp/pmm.ckpt";
    const uint64_t budget =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 60000;

    kern::KernelGenParams params;
    params.seed = 2024;
    params.version = "6.8";
    kern::Kernel kernel = kern::buildBaseKernel(params);

    core::Pmm model;
    const bool trained = nn::loadParameters(model, ckpt);
    std::printf("%s\n", trained
                            ? "fuzzing with Snowplow (trained PMM)"
                            : "no checkpoint found; run ./train_pmm "
                              "first — falling back to the baseline");

    fuzz::FuzzOptions opts;
    opts.exec_budget = budget;
    opts.seed = 7;
    opts.checkpoint_every = budget / 8;
    auto fuzzer = trained
                      ? core::makeSnowplowFuzzer(kernel, model, opts)
                      : core::makeSyzkallerFuzzer(kernel, opts);
    fuzzer->run();

    auto &log = fuzzer->crashes();
    log.reproduceAll();
    std::printf("\ncampaign: %llu executions, %zu unique crashes "
                "(%zu new, %zu known)\n",
                static_cast<unsigned long long>(fuzzer->execs()),
                log.uniqueCrashes(), log.newCrashes(),
                log.knownCrashes());

    static const kern::BugKind kKinds[] = {
        kern::BugKind::NullDeref,
        kern::BugKind::PagingFault,
        kern::BugKind::AssertViolation,
        kern::BugKind::GeneralProtectionFault,
        kern::BugKind::OutOfBounds,
        kern::BugKind::Warning,
        kern::BugKind::Other,
    };
    std::printf("\nnew crashes by manifestation (paper Table 3):\n");
    std::printf("  %-34s %12s %6s\n", "category", "reproducer", "none");
    for (auto kind : kKinds) {
        auto [with_repro, without] = log.newByKind(kind);
        if (with_repro + without == 0)
            continue;
        std::printf("  %-34s %12zu %6zu\n", kern::bugKindName(kind),
                    with_repro, without);
    }

    std::printf("\nper-crash reports:\n");
    for (const auto &record : log.records()) {
        std::printf("- %s\n    at %s, first seen after %llu execs, "
                    "%s, %s\n",
                    record.description.c_str(), record.location.c_str(),
                    static_cast<unsigned long long>(
                        record.first_seen_exec),
                    record.known ? "known" : "NEW",
                    record.reproduced ? "reproducer found"
                                      : "no reproducer");
        if (record.reproduced) {
            std::printf("%s",
                        prog::formatProg(record.reproducer).c_str());
        }
    }
    return 0;
}
