file(REMOVE_RECURSE
  "CMakeFiles/sp_nn.dir/module.cc.o"
  "CMakeFiles/sp_nn.dir/module.cc.o.d"
  "CMakeFiles/sp_nn.dir/optimizer.cc.o"
  "CMakeFiles/sp_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/sp_nn.dir/serialize.cc.o"
  "CMakeFiles/sp_nn.dir/serialize.cc.o.d"
  "CMakeFiles/sp_nn.dir/tensor.cc.o"
  "CMakeFiles/sp_nn.dir/tensor.cc.o.d"
  "libsp_nn.a"
  "libsp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
