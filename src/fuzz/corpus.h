/**
 * @file
 * The fuzzing corpus: deduplicated programs that each contributed new
 * edge coverage, plus the aggregated coverage they represent. Mirrors
 * Syzkaller's corpus discipline (update_corpus in Figure 1): a mutant
 * enters the corpus iff it triggered at least one edge the corpus has
 * not seen.
 */
#ifndef SP_FUZZ_CORPUS_H
#define SP_FUZZ_CORPUS_H

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "exec/executor.h"
#include "prog/value.h"
#include "util/rng.h"

namespace sp::fuzz {

/** One corpus entry: a program and the execution that admitted it. */
struct CorpusEntry
{
    prog::Prog program;
    exec::ExecResult result;
    uint64_t content_hash = 0;
    uint64_t admitted_at_exec = 0;  ///< executions counter at admission
};

/** Coverage-growing program set. */
class Corpus
{
  public:
    /**
     * Admit `program` iff its execution added edge coverage over the
     * corpus total (and it is not a duplicate). Returns true when
     * admitted. The coverage total grows either way.
     */
    bool maybeAdd(const prog::Prog &program,
                  const exec::ExecResult &result, uint64_t exec_counter);

    /** Pick an entry to mutate, biased toward recent additions. */
    const CorpusEntry &pick(Rng &rng) const;

    /** Entry by index. */
    const CorpusEntry &entry(size_t index) const;

    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Aggregated coverage over every executed program (not just kept). */
    const exec::CoverageSet &totalCoverage() const { return total_; }

  private:
    std::vector<CorpusEntry> entries_;
    std::unordered_set<uint64_t> hashes_;
    exec::CoverageSet total_;
};

}  // namespace sp::fuzz

#endif  // SP_FUZZ_CORPUS_H
