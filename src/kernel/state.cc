#include "kernel/state.h"

#include "util/logging.h"

namespace sp::kern {

KernelState::KernelState(uint16_t num_flags)
    : flags_(num_flags, 0)
{
}

uint64_t
KernelState::allocResource(ResourceKindId kind)
{
    resources_.push_back(Resource{kind, true});
    return resources_.size();  // 1-based id
}

bool
KernelState::alive(uint64_t id) const
{
    if (id == 0 || id > resources_.size())
        return false;
    return resources_[id - 1].alive;
}

bool
KernelState::aliveOfKind(uint64_t id, ResourceKindId kind) const
{
    return alive(id) && resources_[id - 1].kind == kind;
}

ResourceKindId
KernelState::kindOf(uint64_t id) const
{
    SP_ASSERT(alive(id), "kindOf on dead resource");
    return resources_[id - 1].kind;
}

void
KernelState::release(uint64_t id)
{
    if (!alive(id))
        return;
    if (journaling_) {
        // Releases of resources allocated after the restore point need
        // no entry — rollback truncates them away wholesale.
        const auto slot = static_cast<size_t>(id - 1);
        if (slot < journal_resources_)
            undo_.push_back(
                UndoEntry{static_cast<uint32_t>(slot), 1, false});
    }
    resources_[id - 1].alive = false;
}

size_t
KernelState::liveCount() const
{
    size_t count = 0;
    for (const auto &r : resources_)
        count += r.alive;
    return count;
}

void
KernelState::setFlag(uint16_t index, bool value)
{
    SP_ASSERT(index < flags_.size(), "flag index out of range");
    if (journaling_)
        undo_.push_back(UndoEntry{index, flags_[index], true});
    flags_[index] = value ? 1 : 0;
}

bool
KernelState::flag(uint16_t index) const
{
    SP_ASSERT(index < flags_.size(), "flag index out of range");
    return flags_[index] != 0;
}

void
KernelState::beginJournal()
{
    journaling_ = true;
    journal_resources_ = resources_.size();
    undo_.clear();
}

void
KernelState::rollback()
{
    SP_ASSERT(journaling_, "rollback without beginJournal");
    // Reverse replay restores the oldest value of multiply-touched
    // entries last, which is exactly the restore-point value.
    for (size_t i = undo_.size(); i-- > 0;) {
        const UndoEntry &entry = undo_[i];
        if (entry.is_flag)
            flags_[entry.index] = entry.old_value;
        else
            resources_[entry.index].alive = entry.old_value != 0;
    }
    undo_.clear();  // capacity retained for the next run
    resources_.resize(journal_resources_);
}

}  // namespace sp::kern
