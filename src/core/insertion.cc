#include "core/insertion.h"

#include <algorithm>
#include <unordered_set>

#include "mutate/mutator.h"
#include "nn/optimizer.h"
#include "prog/gen.h"
#include "util/logging.h"

namespace sp::core {

namespace {

/** Indices of the syscall nodes of an encoded graph, in call order. */
std::vector<int32_t>
syscallNodes(const graph::EncodedGraph &graph)
{
    std::vector<int32_t> nodes;
    for (int32_t i = 0; i < graph.num_nodes; ++i) {
        if (graph.node_kind[static_cast<size_t>(i)] ==
            static_cast<int32_t>(graph::NodeKind::Syscall)) {
            nodes.push_back(i);
        }
    }
    return nodes;
}

}  // namespace

InsertionDataset
collectInsertionDataset(const kern::Kernel &kernel,
                        const InsertionDatasetOptions &opts)
{
    InsertionDataset dataset;
    dataset.kernel = &kernel;
    Rng rng(opts.seed);

    auto corpus = prog::generateCorpus(rng, kernel.table(),
                                       opts.corpus_size);
    exec::Executor executor(kernel);
    for (auto &base : corpus) {
        auto result = executor.run(base);
        if (result.crashed)
            continue;
        dataset.bases.push_back(std::move(base));
        dataset.base_results.push_back(std::move(result));
    }

    mut::Mutator mutator(kernel.table());
    std::vector<InsertionExample> all;
    for (size_t bi = 0; bi < dataset.bases.size(); ++bi) {
        const prog::Prog &base = dataset.bases[bi];
        const auto &base_result = dataset.base_results[bi];
        const auto frontier =
            graph::alternativeFrontier(kernel, base_result.coverage);
        if (frontier.empty())
            continue;
        const std::unordered_set<uint32_t> frontier_set(
            frontier.begin(), frontier.end());

        // Dedup (position, syscall) pairs per base.
        std::unordered_set<uint64_t> seen;
        for (size_t m = 0; m < opts.insertions_per_base; ++m) {
            prog::Prog mutant;
            mutant.calls = base.calls;
            const size_t before = mutant.calls.size();
            mutator.insertCall(mutant, rng);
            if (mutant.calls.size() != before + 1)
                continue;
            // Find the inserted position by scanning for the first
            // call whose decl differs from the base at that index.
            size_t position = before;
            for (size_t i = 0; i < before; ++i) {
                if (mutant.calls[i].decl != base.calls[i].decl) {
                    position = i;
                    break;
                }
            }
            auto result = executor.run(mutant);
            auto new_blocks =
                base_result.coverage.newBlocks(result.coverage);
            if (new_blocks.empty())
                continue;
            ++dataset.successful_insertions;

            InsertionExample example;
            example.base_index = static_cast<uint32_t>(bi);
            // Label the syscall node of the call the insertion landed
            // after (position 0 labels the first call).
            example.position = static_cast<uint16_t>(
                position == 0 ? 0 : position - 1);
            example.syscall_id = mutant.calls[position].decl->id;
            const uint64_t key =
                (static_cast<uint64_t>(example.position) << 32) |
                example.syscall_id;
            if (!seen.insert(key).second)
                continue;
            // Targets: reached frontier blocks plus the usual noise.
            std::vector<uint32_t> reached;
            for (uint32_t b : new_blocks)
                if (frontier_set.count(b))
                    reached.push_back(b);
            if (reached.empty())
                continue;
            example.targets.push_back(
                reached[rng.below(reached.size())]);
            for (uint32_t b : frontier)
                if (rng.chance(0.25))
                    example.targets.push_back(b);
            std::sort(example.targets.begin(), example.targets.end());
            example.targets.erase(std::unique(example.targets.begin(),
                                              example.targets.end()),
                                  example.targets.end());
            all.push_back(std::move(example));
        }
    }

    // Split by base.
    std::vector<bool> in_train(dataset.bases.size());
    for (size_t i = 0; i < in_train.size(); ++i)
        in_train[i] = rng.uniform() < opts.train_fraction;
    for (auto &example : all) {
        if (in_train[example.base_index])
            dataset.train.push_back(std::move(example));
        else
            dataset.eval.push_back(std::move(example));
    }
    return dataset;
}

InsertionModel::InsertionModel(const PmmConfig &config)
{
    backbone_ = std::make_unique<Pmm>(config);
    Rng rng(config.init_seed ^ 0x1297);
    position_head_ = std::make_unique<nn::Mlp>(
        rng,
        std::vector<int64_t>{config.dim, config.head_hidden, 1},
        "ins_pos");
    variant_head_ = std::make_unique<nn::Mlp>(
        rng,
        std::vector<int64_t>{config.dim, config.head_hidden,
                             graph::EncodeVocab::kSyscallVocab},
        "ins_variant");
    absorb("", *backbone_);
    absorb("", *position_head_);
    absorb("", *variant_head_);
}

std::pair<nn::Tensor, nn::Tensor>
InsertionModel::forward(const graph::EncodedGraph &graph,
                        const std::vector<int32_t> &syscall_nodes) const
{
    using nn::Tensor;
    SP_ASSERT(!syscall_nodes.empty());
    Tensor h = backbone_->nodeStates(graph);

    Tensor calls = nn::gatherRows(h, syscall_nodes);
    Tensor position_logits =
        nn::flatten(position_head_->forward(calls));

    // Pool the syscall states for the variant head (mean).
    std::vector<int32_t> to_zero(syscall_nodes.size(), 0);
    Tensor pooled = nn::scatterAddRows(calls, to_zero, 1);
    pooled = nn::rowScale(
        pooled, {1.0f / static_cast<float>(syscall_nodes.size())});
    Tensor variant_logits = variant_head_->forward(pooled);
    return {position_logits, variant_logits};
}

namespace {

std::pair<graph::EncodedGraph, std::vector<int32_t>>
materializeInsertion(const InsertionDataset &dataset,
                     const InsertionExample &example)
{
    const auto &base = dataset.bases[example.base_index];
    const auto &result = dataset.base_results[example.base_index];
    auto query = graph::buildQueryGraph(*dataset.kernel, base, result,
                                        example.targets);
    auto encoded = graph::encodeGraph(*dataset.kernel, query);
    auto calls = syscallNodes(encoded);
    return {std::move(encoded), std::move(calls)};
}

}  // namespace

InsertionMetrics
evaluateInsertionModel(const InsertionModel &model,
                       const InsertionDataset &dataset,
                       const std::vector<InsertionExample> &split)
{
    InsertionMetrics metrics;
    double f1_total = 0.0, top1 = 0.0, top5 = 0.0;
    for (const auto &example : split) {
        auto [graph, calls] = materializeInsertion(dataset, example);
        if (calls.empty() ||
            example.position >= calls.size()) {
            continue;
        }
        auto [pos_logits, var_logits] = model.forward(graph, calls);

        // Position: single prediction = argmax; F1 of singleton sets.
        int64_t best = 0;
        for (int64_t i = 1; i < pos_logits.rows(); ++i)
            if (pos_logits.at(i) > pos_logits.at(best))
                best = i;
        f1_total += (static_cast<size_t>(best) == example.position)
                        ? 1.0
                        : 0.0;

        // Variant: top-k accuracy.
        std::vector<size_t> order(
            static_cast<size_t>(var_logits.cols()));
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return var_logits.at(0, static_cast<int64_t>(a)) >
                   var_logits.at(0, static_cast<int64_t>(b));
        });
        const auto target = static_cast<size_t>(std::min<uint32_t>(
            example.syscall_id, graph::EncodeVocab::kSyscallVocab - 1));
        top1 += (order[0] == target);
        for (size_t k = 0; k < 5 && k < order.size(); ++k)
            if (order[k] == target) {
                top5 += 1.0;
                break;
            }
        ++metrics.examples;
    }
    if (metrics.examples > 0) {
        const auto n = static_cast<double>(metrics.examples);
        metrics.position_f1 = f1_total / n;
        metrics.variant_top1 = top1 / n;
        metrics.variant_top5 = top5 / n;
    }
    return metrics;
}

InsertionMetrics
evaluateRandomInsertion(const InsertionDataset &dataset,
                        const std::vector<InsertionExample> &split,
                        uint64_t seed)
{
    Rng rng(seed);
    InsertionMetrics metrics;
    double f1_total = 0.0, top1 = 0.0, top5 = 0.0;
    const size_t variants = dataset.kernel->table().decls.size();
    for (const auto &example : split) {
        const auto &base = dataset.bases[example.base_index];
        if (base.calls.empty() ||
            example.position >= base.calls.size()) {
            continue;
        }
        f1_total +=
            (rng.below(base.calls.size()) == example.position) ? 1.0
                                                               : 0.0;
        const auto target = example.syscall_id;
        // Random variant guesses without replacement.
        auto picks = rng.sampleIndices(variants, std::min<size_t>(
                                                     5, variants));
        top1 += (picks[0] == target);
        for (size_t k = 0; k < picks.size(); ++k)
            if (picks[k] == target) {
                top5 += 1.0;
                break;
            }
        ++metrics.examples;
    }
    if (metrics.examples > 0) {
        const auto n = static_cast<double>(metrics.examples);
        metrics.position_f1 = f1_total / n;
        metrics.variant_top1 = top1 / n;
        metrics.variant_top5 = top5 / n;
    }
    return metrics;
}

InsertionMetrics
trainInsertionModel(InsertionModel &model, const InsertionDataset &dataset,
                    const InsertionTrainOptions &opts)
{
    Rng rng(opts.seed);
    nn::Adam optimizer(model.parameters(), opts.learning_rate);

    // Materialize once.
    struct Cached
    {
        graph::EncodedGraph graph;
        std::vector<int32_t> calls;
        uint16_t position;
        int32_t variant;
    };
    std::vector<Cached> cache;
    const size_t limit = opts.max_train_examples == 0
                             ? dataset.train.size()
                             : std::min(dataset.train.size(),
                                        opts.max_train_examples);
    for (size_t i = 0; i < limit; ++i) {
        const auto &example = dataset.train[i];
        auto [graph, calls] = materializeInsertion(dataset, example);
        if (calls.empty() || example.position >= calls.size())
            continue;
        Cached entry;
        entry.graph = std::move(graph);
        entry.calls = std::move(calls);
        entry.position = example.position;
        entry.variant = static_cast<int32_t>(std::min<uint32_t>(
            example.syscall_id, graph::EncodeVocab::kSyscallVocab - 1));
        cache.push_back(std::move(entry));
    }

    std::vector<size_t> order(cache.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
        for (size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);
        for (size_t oi : order) {
            const Cached &entry = cache[oi];
            model.zeroGrad();
            auto [pos_logits, var_logits] =
                model.forward(entry.graph, entry.calls);

            std::vector<float> labels(
                static_cast<size_t>(pos_logits.rows()), 0.0f);
            std::vector<float> weights(labels.size(), 1.0f);
            labels[entry.position] = 1.0f;
            weights[entry.position] = opts.pos_weight;
            nn::Tensor loss =
                nn::add(nn::bceWithLogits(pos_logits, labels, weights),
                        nn::crossEntropyRows(var_logits,
                                             {entry.variant}));
            loss.backward();
            optimizer.clipGradNorm(opts.grad_clip);
            optimizer.step();
        }
    }
    return evaluateInsertionModel(model, dataset, dataset.eval);
}

}  // namespace sp::core
