file(REMOVE_RECURSE
  "CMakeFiles/table2_crashes.dir/table2_crashes.cc.o"
  "CMakeFiles/table2_crashes.dir/table2_crashes.cc.o.d"
  "table2_crashes"
  "table2_crashes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_crashes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
