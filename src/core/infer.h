/**
 * @file
 * Asynchronous PMM inference service (paper §3.4/§4).
 *
 * The analog of the torchserve deployment plus Snowplow's Go inference
 * worker pool: a fixed pool of worker threads consumes queued mutation
 * queries and runs PMM forward passes, while the caller (the fuzz loop)
 * continues with other mutation types and collects predictions through
 * futures. Latency and throughput statistics back the §5.5 evaluation.
 *
 * Workers micro-batch: each drains up to BatchOptions::max_batch
 * queued requests — waiting at most an adaptive window for stragglers
 * — and runs them as one packed forward pass (Pmm::predictBatch), so
 * the dense layers amortize into batched GEMMs under load while an
 * idle service still serves singletons at minimum latency. Per-request
 * futures and latency accounting are unchanged; latencies are recorded
 * through a sharded histogram so completion never contends on the
 * queue mutex.
 */
#ifndef SP_CORE_INFER_H
#define SP_CORE_INFER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pmm.h"
#include "obs/metrics.h"

namespace sp::core {

/** Aggregate service statistics. */
struct InferenceStats
{
    uint64_t completed = 0;
    double mean_latency_us = 0.0;
    double p50_latency_us = 0.0;
    double p95_latency_us = 0.0;
    double p99_latency_us = 0.0;
    uint64_t batches = 0;          ///< forward passes run
    double mean_batch_size = 0.0;  ///< completed / batches
};

/** Micro-batching knobs. */
struct BatchOptions
{
    /** Requests per forward pass; 1 disables batching entirely. */
    size_t max_batch = 8;
    /**
     * Upper bound (µs) on how long a worker with a partial batch
     * waits for more arrivals. The effective window adapts inside
     * [1, max_window_us]: it doubles whenever waiting gained extra
     * requests and halves whenever a wait produced none, so sparse
     * traffic degenerates to unbatched dispatch. 0 disables waiting
     * (drain-only opportunistic batching).
     */
    uint32_t max_window_us = 200;
};

/** Multi-threaded inference front-end over one PMM. */
class InferenceService
{
  public:
    /**
     * @param model    trained model (must outlive the service; forward
     *                 passes only read the parameters, so the pool can
     *                 share it)
     * @param workers  worker-thread count (the paper's GPU replicas)
     * @param batch    micro-batching configuration
     */
    InferenceService(const Pmm &model, size_t workers = 2,
                     BatchOptions batch = {});

    /** Drains the queue and joins the workers. */
    ~InferenceService();

    InferenceService(const InferenceService &) = delete;
    InferenceService &operator=(const InferenceService &) = delete;

    /**
     * Enqueue a query; the future resolves to per-argument-node MUTATE
     * probabilities. `trace_id` carries the caller's pipeline trace id
     * across the thread hand-off (obs::currentTraceId(); 0 = untraced)
     * so the request's queue wait and its batch's forward pass land in
     * the same trace as the round that issued it.
     */
    std::future<std::vector<float>> submit(graph::EncodedGraph graph,
                                           uint64_t trace_id = 0);

    /** Synchronous convenience wrapper. */
    std::vector<float> infer(const graph::EncodedGraph &graph) const;

    /** Latency/throughput counters so far. */
    InferenceStats stats() const;

    size_t workerCount() const { return workers_.size(); }

  private:
    struct Request
    {
        graph::EncodedGraph graph;
        std::promise<std::vector<float>> promise;
        std::chrono::steady_clock::time_point enqueued;
        uint64_t trace_id = 0;     ///< submitter's pipeline trace id
        uint64_t enqueued_us = 0;  ///< monotonicMicros() at submit
    };

    void workerLoop(size_t worker);

    const Pmm &model_;
    const BatchOptions batch_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Request> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;

    /** Adaptive straggler window, µs (see BatchOptions). */
    std::atomic<uint32_t> window_us_;
    std::atomic<uint64_t> batches_{0};
    /** Sharded per-request latency sink; folded only in stats(). */
    obs::Histogram latency_us_;
};

}  // namespace sp::core

#endif  // SP_CORE_INFER_H
