#include "data/harvest.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>

#include "obs/metrics.h"
#include "prog/serialize.h"
#include "util/logging.h"

namespace sp::data {

namespace {

struct HarvestMetrics
{
    obs::Counter &examples;
    obs::Counter &dropped;
    obs::Counter &shard_bytes;

    static HarvestMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static HarvestMetrics metrics{
            reg.counter("data.harvest_examples"),
            reg.counter("data.harvest_dropped"),
            reg.counter("data.shard_bytes"),
        };
        return metrics;
    }
};

}  // namespace

Harvester::Harvester(const kern::Kernel &kernel, HarvestOptions opts)
    : kernel_(kernel), opts_(std::move(opts)), executor_(kernel),
      rng_(opts_.seed)
{
    if (::mkdir(opts_.dir.c_str(), 0755) != 0 && errno != EEXIST)
        SP_FATAL("cannot create harvest directory %s",
                 opts_.dir.c_str());
    shard_path_ = opts_.dir + "/" + opts_.shard_name;
    writer_ = std::make_unique<ShardWriter>(shard_path_,
                                            kernelFingerprint(kernel));
    thread_ = std::thread([this] { workerLoop(); });
}

Harvester::~Harvester()
{
    close();
}

fuzz::MutationObserver
Harvester::hook()
{
    return [this](const fuzz::MutationEvent &event) { observe(event); };
}

void
Harvester::observe(const fuzz::MutationEvent &event)
{
    // Worker-thread hot path: admitted argument mutants only, one
    // bounded copy, never a wait. Admission (new corpus edges) is the
    // live proxy for §3.1's "successful mutation"; the background
    // thread re-validates deterministically.
    if (!event.admitted || event.site == nullptr ||
        event.base == nullptr || event.mutant == nullptr)
        return;
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (closing_)
            return;
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.offered;
        if (queue_.size() >= opts_.queue_capacity) {
            ++stats_.dropped;
            HarvestMetrics::get().dropped.inc();
            return;
        }
        Item item;
        item.base.calls = event.base->calls;
        item.mutant.calls = event.mutant->calls;
        item.site = *event.site;
        queue_.push_back(std::move(item));
    }
    queue_cv_.notify_one();
}

void
Harvester::workerLoop()
{
    for (;;) {
        Item item;
        {
            std::unique_lock<std::mutex> lock(queue_mu_);
            queue_cv_.wait(lock, [this] {
                return closing_ || !queue_.empty();
            });
            if (queue_.empty()) {
                if (closing_)
                    return;
                continue;
            }
            item = std::move(queue_.front());
            queue_.pop_front();
        }
        process(item);
    }
}

Harvester::BaseEntry &
Harvester::baseEntryFor(const prog::Prog &base, uint64_t base_hash)
{
    auto it = bases_.find(base_hash);
    if (it != bases_.end())
        return *it->second;

    auto entry = std::make_unique<BaseEntry>();
    auto result = executor_.run(base);
    // Crashed bases are excluded (§5.1); a base that crashes only
    // under noise still qualifies — what matters is the deterministic
    // replay the examples will be trained against.
    if (!result.crashed) {
        entry->frontier =
            graph::alternativeFrontier(kernel_, result.coverage);
        entry->usable = !entry->frontier.empty() &&
                        entry->frontier.size() <= opts_.max_frontier;
        if (entry->usable) {
            entry->frontier_set.insert(entry->frontier.begin(),
                                       entry->frontier.end());
            entry->coverage = std::move(result.coverage);
            entry->split = splitOfBase(base_hash, opts_.seed,
                                       opts_.train_fraction);
            entry->record.base_hash = base_hash;
            entry->record.text = prog::formatProg(base);
            entry->record.blocks.assign(entry->coverage.blocks().begin(),
                                        entry->coverage.blocks().end());
            std::sort(entry->record.blocks.begin(),
                      entry->record.blocks.end());
            entry->record.edges = entry->coverage.edgeCount();
        }
    }
    return *bases_.emplace(base_hash, std::move(entry)).first->second;
}

void
Harvester::process(Item &item)
{
    const uint64_t base_hash = progKey(item.base);
    BaseEntry &entry = baseEntryFor(item.base, base_hash);
    auto discard = [this] {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.discarded;
    };
    if (!entry.usable) {
        discard();
        return;
    }

    // Deterministic replay of the mutant; the campaign may run noisy,
    // but examples must reflect the virtio-style collection discipline.
    auto mutant_result = executor_.run(item.mutant);
    auto new_blocks =
        entry.coverage.newBlocks(mutant_result.coverage);
    std::vector<uint32_t> reached;
    for (uint32_t b : new_blocks)
        if (entry.frontier_set.count(b))
            reached.push_back(b);
    if (reached.empty()) {
        discard();
        return;
    }
    std::sort(reached.begin(), reached.end());

    // Option-(c) target construction, same fraction mix as
    // collectDataset: mostly tight target sets, some noisy ones.
    static const double kFractions[] = {-1.0, -1.0, 0.25, 0.25, 0.5};
    core::RawExample example;
    example.mutate_sites.push_back(item.site);
    const double fraction =
        kFractions[rng_.below(sizeof(kFractions) /
                              sizeof(kFractions[0]))];
    std::unordered_set<uint32_t> targets;
    targets.insert(reached[rng_.below(reached.size())]);
    if (fraction > 0.0) {
        for (uint32_t b : entry.frontier) {
            if (rng_.chance(fraction))
                targets.insert(b);
        }
        for (uint32_t b : reached) {
            if (rng_.chance(fraction))
                targets.insert(b);
        }
    }
    example.targets.assign(targets.begin(), targets.end());
    example.canonicalize();

    if (!seen_.insert(core::exampleKey(example, base_hash)).second) {
        discard();
        return;
    }
    bool over = false;
    for (uint32_t b : example.targets)
        over |= (popularity_[b] >= opts_.popularity_cap);
    if (over) {
        discard();
        return;
    }
    for (uint32_t b : example.targets)
        ++popularity_[b];

    uint64_t bytes = 0;
    if (!entry.written) {
        bytes += writer_->append(entry.record);
        entry.written = true;
    }
    ExampleRecord record;
    record.base_hash = base_hash;
    record.split = entry.split;
    record.targets = example.targets;
    record.sites = example.mutate_sites;
    bytes += writer_->append(record);

    HarvestMetrics &metrics = HarvestMetrics::get();
    metrics.examples.inc();
    metrics.shard_bytes.inc(bytes);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.examples;
}

void
Harvester::close()
{
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (closing_)
            return;
        closing_ = true;
    }
    queue_cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    writer_->close();
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.bases = writer_->index().bases;
    stats_.bytes = writer_->bytesWritten();
}

HarvestStats
Harvester::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
}

}  // namespace sp::data
