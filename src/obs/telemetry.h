/**
 * @file
 * JSONL campaign telemetry: a structured event stream written to one
 * file, so paper figures (time-to-coverage, inference latency, training
 * curves) are reproducible from machine-readable records instead of
 * stdout scraping.
 *
 * One event per line:
 *
 *     {"ev":"coverage_checkpoint","t_us":812345,"execs":5000,...}
 *
 * `t_us` is sp::monotonicMicros(), the same time base the logger
 * prefixes, so log lines and telemetry events interleave meaningfully.
 * On shutdown the sink appends a final "registry_snapshot" event
 * embedding Registry::snapshotJson().
 *
 * The sink is process-global and optional: instrumentation sites do
 * `if (auto *sink = obs::sink()) sink->event(...)` — one relaxed
 * pointer load when telemetry is off. Installing a sink also flips
 * obs::setTimingEnabled(true) so SP_TIMED histograms populate.
 */
#ifndef SP_OBS_TELEMETRY_H
#define SP_OBS_TELEMETRY_H

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>

namespace sp::obs {

/** Telemetry configuration (the CLI's --metrics-out). */
struct TelemetryOptions
{
    std::string path;            ///< JSONL output file
    size_t flush_every = 128;    ///< fflush cadence in events
};

/** One key/value of an event. Numbers, booleans and strings only. */
class Field
{
  public:
    Field(std::string_view key, uint64_t v)
        : key_(key), kind_(Kind::U64), u64_(v) {}
    Field(std::string_view key, int64_t v)
        : key_(key), kind_(Kind::I64), i64_(v) {}
    Field(std::string_view key, int v)
        : key_(key), kind_(Kind::I64), i64_(v) {}
    Field(std::string_view key, unsigned v)
        : key_(key), kind_(Kind::U64), u64_(v) {}
    Field(std::string_view key, double v)
        : key_(key), kind_(Kind::F64), f64_(v) {}
    Field(std::string_view key, bool v)
        : key_(key), kind_(Kind::Bool), b_(v) {}
    Field(std::string_view key, std::string_view v)
        : key_(key), kind_(Kind::Str), str_(v) {}
    Field(std::string_view key, const char *v)
        : key_(key), kind_(Kind::Str), str_(v) {}

    /** Append `"key":value` to `out`. */
    void appendTo(std::string &out) const;

  private:
    enum class Kind { U64, I64, F64, Bool, Str };

    std::string_view key_;
    Kind kind_;
    union
    {
        uint64_t u64_;
        int64_t i64_;
        double f64_;
        bool b_;
    };
    std::string_view str_;
};

/** Streams JSONL events to one file. Thread-safe. */
class TelemetrySink
{
  public:
    /** Opens `opts.path` for writing; SP_FATALs when it cannot. */
    explicit TelemetrySink(TelemetryOptions opts);
    ~TelemetrySink();

    TelemetrySink(const TelemetrySink &) = delete;
    TelemetrySink &operator=(const TelemetrySink &) = delete;

    /** Write one event line `{"ev":type,"t_us":...,fields...}`. */
    void event(std::string_view type,
               std::initializer_list<Field> fields);

    /** Write a pre-serialized JSON object under one key:
     *  `{"ev":type,"t_us":...,"key":<json>}`. */
    void eventJson(std::string_view type, std::string_view key,
                   std::string_view json);

    void flush();

    /**
     * Flush and close the output file. Idempotent. Emits that race
     * with (or arrive after) close() serialize on the sink's lock and
     * are dropped whole — a late SP_TIMED/telemetry emit can never
     * tear a partial line into the file or crash on a dead stream.
     */
    void close();

    uint64_t eventsWritten() const;

  private:
    void writeLine(std::string &line);

    TelemetryOptions opts_;
    std::FILE *file_ = nullptr;
    mutable std::mutex mu_;
    uint64_t events_ = 0;
};

/** The installed process-wide sink, or nullptr when telemetry is off. */
TelemetrySink *sink();

/**
 * Install the process-wide sink (replacing any previous one) and enable
 * timed spans. Campaign code never calls this; drivers (CLI, bench
 * harnesses) do.
 */
void installSink(const TelemetryOptions &opts);

/**
 * Append the global registry snapshot as a "registry_snapshot" event,
 * then close and uninstall the sink. Idempotent: a second call (CLI
 * teardown racing an atexit handler, say) is a no-op, and the sink
 * object outlives the uninstall so a thread that loaded the sink
 * pointer just before shutdown completes (or drops) its emit safely
 * instead of writing through freed memory. Leaves timing enabled
 * state untouched for any still-running threads.
 */
void shutdownSink();

/** JSON string literal (quoted, escaped). */
std::string jsonQuote(std::string_view s);

}  // namespace sp::obs

#endif  // SP_OBS_TELEMETRY_H
