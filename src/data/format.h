/**
 * @file
 * On-disk framing of the example store (DESIGN.md §11).
 *
 * A shard file is a fixed header followed by a stream of framed
 * records:
 *
 *     header : u64 magic "SPDSHRD1" | u32 version | u32 endian guard
 *            | u64 kernel fingerprint
 *     record : u32 kind | u32 payload_len | payload | u32 crc32
 *
 * The CRC covers kind, payload_len and the payload, so a torn write —
 * a fuzzing process killed mid-append — is detected at the exact
 * record boundary: readers stop cleanly at the last valid record and
 * report the file as truncated instead of propagating garbage.
 * Integers are written in host byte order; the header's endian guard
 * rejects a shard moved across differently-ordered machines.
 */
#ifndef SP_DATA_FORMAT_H
#define SP_DATA_FORMAT_H

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace sp::data {

/** "SPDSHRD1" — example-store shard, format 1. */
constexpr uint64_t kShardMagic = 0x5350445348524431ULL;
constexpr uint32_t kShardVersion = 1;
constexpr uint32_t kShardEndianGuard = 0x01020304;

/** "SPDSIDX1" — shard sidecar index, format 1. */
constexpr uint64_t kIndexMagic = 0x5350445349445831ULL;

/** Record kinds (unknown kinds are a hard format error). */
constexpr uint32_t kRecordBase = 1;
constexpr uint32_t kRecordExample = 2;

/** Upper bound on one record's payload; larger lengths mean a
 *  corrupt frame and are treated like a truncated tail. */
constexpr uint32_t kMaxRecordPayload = 64u << 20;

/** CRC-32 (IEEE 802.3 polynomial, bit-reflected). */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

/** Builds one record payload in memory. */
class PayloadWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(uint16_t v)
    {
        raw(&v, sizeof(v));
    }

    void
    u32(uint32_t v)
    {
        raw(&v, sizeof(v));
    }

    void
    u64(uint64_t v)
    {
        raw(&v, sizeof(v));
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    const std::vector<uint8_t> &bytes() const { return buf_; }

  private:
    void
    raw(const void *data, size_t len)
    {
        const size_t at = buf_.size();
        buf_.resize(at + len);
        std::memcpy(buf_.data() + at, data, len);
    }

    std::vector<uint8_t> buf_;
};

/**
 * Reads one CRC-validated payload back. Bounds violations are fatal:
 * the frame's checksum already passed, so a short payload means a
 * programming error, not disk corruption.
 */
class PayloadReader
{
  public:
    PayloadReader() = default;

    PayloadReader(const uint8_t *data, size_t len)
        : data_(data), len_(len)
    {
    }

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();
    std::string str();

    size_t remaining() const { return len_ - pos_; }

  private:
    const void *take(size_t len);

    const uint8_t *data_ = nullptr;
    size_t len_ = 0;
    size_t pos_ = 0;
};

/**
 * Appends framed records to a shard file. The header is written at
 * construction; close() (or destruction) flushes. Writing is
 * single-threaded by design — the harvester funnels every producer
 * through one background thread.
 */
class FrameWriter
{
  public:
    /** Opens `path` for writing (truncates); fatal on failure. */
    FrameWriter(const std::string &path, uint64_t kernel_fingerprint);
    ~FrameWriter();

    FrameWriter(const FrameWriter &) = delete;
    FrameWriter &operator=(const FrameWriter &) = delete;

    /** Append one framed record; returns the frame's byte size. */
    size_t append(uint32_t kind, const PayloadWriter &payload);

    /** Flush and close the file (idempotent). */
    void close();

    /** Bytes written so far, header included. */
    uint64_t bytesWritten() const { return bytes_; }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    uint64_t bytes_ = 0;
};

/**
 * Sequentially reads framed records from a shard file, validating the
 * header and every frame's CRC. next() returns false at end of input —
 * either clean EOF or a torn/corrupt tail; truncated() distinguishes
 * the two. A missing file or a malformed header (wrong magic, version,
 * endianness) is fatal with a descriptive message.
 */
class FrameReader
{
  public:
    explicit FrameReader(const std::string &path);
    ~FrameReader();

    FrameReader(const FrameReader &) = delete;
    FrameReader &operator=(const FrameReader &) = delete;

    /** Kernel fingerprint recorded in the shard header. */
    uint64_t kernelFingerprint() const { return fingerprint_; }

    /**
     * Read the next record. The payload references a buffer owned by
     * the reader, valid until the following next() call.
     */
    bool next(uint32_t &kind, PayloadReader &payload);

    /** True when the stream ended on a torn or corrupt frame. */
    bool truncated() const { return truncated_; }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    uint64_t fingerprint_ = 0;
    bool truncated_ = false;
    bool done_ = false;
    std::vector<uint8_t> buffer_;
};

}  // namespace sp::data

#endif  // SP_DATA_FORMAT_H
