// snowplow_cli — a single driver over the library's public API.
//
//   snowplow_cli kernel-stats [--seed N] [--version V] [--evolution E]
//       Print the simulated kernel's structure (syscalls, blocks,
//       edges, bug sites).
//
//   snowplow_cli fuzz [--budget N] [--seed N] [--workers N]
//                     [--pmm CKPT] [--async W] [--harvest-dir DIR]
//                     [--covmap-out FILE.jsonl]
//                     [--timeline-out FILE.jsonl]
//                     [--directed-from REPORT.json]
//                     [--exec-backend ref|fast]
//                     [--policy static|thompson]
//       Run a fuzzing campaign (Snowplow when --pmm points at a
//       trained checkpoint, Syzkaller baseline otherwise) and print
//       the coverage timeline and crash summary. --workers N runs the
//       campaign engine with N fuzzing workers (N=1, the default, is
//       bit-for-bit the classic single-threaded loop). With --async W
//       the learned localizer queries an InferenceService worker pool
//       of W threads instead of predicting inline (§3.4 deployment).
//       --covmap-out streams per-checkpoint coverage-cartography
//       snapshots (delta-encoded JSONL; input to `analyze`) and
//       serves the live frontier summary on the status server's
//       /coverage endpoint. --directed-from reads an `analyze`
//       report's cold-frontier target set and runs the campaign
//       directed at it (distance scheduler; Snowplow-D targeting
//       when --pmm is given). --exec-backend picks the executor
//       implementation: `fast` (default; dirty-state restore + dense
//       coverage) or `ref` (the reference interpreter) — the two are
//       bit-identical, so `ref` is for differential/A-B runs.
//       --policy picks the loop's decision policy: `static` (default;
//       the legacy scheduler plus the fixed §3.4 fallback
//       probability) or `thompson` (Beta-Bernoulli bandit over
//       seed-bucket × operator × model-vs-random arms, updated from
//       coverage rewards at every checkpoint). --timeline-out records
//       one delta-encoded metric/coverage/policy sample per virtual-
//       time checkpoint (input to `sp_analysis compare`) and serves
//       the recent window on the status server's /timeline endpoint;
//       with --workers 1 and no --metrics-out sink the artifact is
//       bit-reproducible for a given seed.
//
//   snowplow_cli train [--corpus N] [--mutations N] [--epochs N]
//                      [--out CKPT] [--data SHARD]... [--stream 0|1]
//                      [--state CKPT] [--resume 1]
//       Collect a mutation dataset and train a PMM. With --data the
//       dataset is loaded from example-store shards instead of being
//       collected, and trained through the streaming prefetch loader
//       (--stream 0 forces the in-memory path; both are bit-identical
//       for the same seed). --state writes a resumable checkpoint
//       (parameters + optimizer + trainer cursor) after every epoch;
//       --resume 1 continues from it bit-identically.
//
//   snowplow_cli dataset collect --out DIR [--shards N] [--corpus N]
//                                [--mutations N] [--data-seed N]
//   snowplow_cli dataset merge --out FILE SHARD... [--merge-seed N]
//                              [--cap N]
//   snowplow_cli dataset stats SHARD...
//       The sharded example store: collect a dataset to shards,
//       merge/compact shards (dedupe + popularity cap + split-by-base
//       re-roll), and count a store's contents.
//
//   snowplow_cli directed --target BLOCK [--pmm CKPT] [--budget N]
//       Directed campaign toward one block, baseline vs Snowplow-D.
//
//   snowplow_cli analyze LOG.jsonl [--out REPORT.json] [--targets N]
//       Coverage cartography over a campaign's --covmap-out snapshot
//       log: heat bands (hot/warm/cold/unreached), per-subsystem
//       aggregation, and the ranked cold-frontier target set. Pass the
//       campaign's --seed/--version/--evolution so the rebuilt kernel
//       matches the log (subsystem attribution is skipped, with a
//       warning, when the block counts disagree). --out writes the
//       machine-readable report consumed by `fuzz --directed-from`.
//
//   snowplow_cli corpus [--count N] [--seed N]
//       Generate a corpus and print it in the Syzlang-like syntax
//       (round-trips through the parser as a self-check).
//
//   snowplow_cli fleet coordinator [--port P] [--budget N] [--seed N]
//                                  [--lease-slots N]
//                                  [--lease-timeout-ms MS]
//                                  [--policy static|thompson]
//                                  [--timeline-out FILE.jsonl]
//                                  [--harvest-dir DIR]
//   snowplow_cli fleet node --connect HOST:PORT [--name S]
//                           [--workers N] [--pmm CKPT] [--scratch DIR]
//                           [--max-leases N] [--abandon-first 1]
//       Distributed campaign fabric (DESIGN.md §16): the coordinator
//       owns the virtual-time budget as re-issuable checkpoint-aligned
//       leases and serves the fleet-wide /status, /coverage and
//       /timeline; nodes pull leases plus fleet-corpus seed batches,
//       run each lease as a local campaign, and push back programs,
//       crash reports (globally deduplicated), covmap/posterior deltas
//       and harvested training shards. The merged --timeline-out is
//       directly diffable against a single-process campaign's with
//       `sp_analysis compare`.
//
//   Every command additionally accepts --metrics-out FILE.jsonl: stream
//   JSONL telemetry events (coverage checkpoints, mutation outcomes,
//   inference latencies, training epochs, crash dedup decisions) to
//   FILE and append a final metrics-registry snapshot. See the
//   "Observability" section of DESIGN.md for the event schema.
//
//   Introspection flags (DESIGN.md §10):
//     --trace-out FILE.json     export pipeline spans as Chrome/
//                               Perfetto trace_event JSON
//     --trace-sample 1/64       keep 1 of every 64 pipeline rounds
//                               (also accepts a bare denominator)
//     --status-port P           serve /metrics, /status, /healthz on
//                               127.0.0.1:P (0 = ephemeral; the bound
//                               port is printed)
//     --status-hold 1           after the command finishes, hold the
//                               process (and the status server) until
//                               a line arrives on stdin — scripts
//                               scrape the final state, then release
//     --flightrec-dir DIR       where crash-time flight records land
//     --stall-timeout-ms MS     watchdog: dump a flight record when a
//                               worker sits in one stage this long

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/frontier.h"
#include "analysis/report.h"
#include "core/directed.h"
#include "fleet/coordinator.h"
#include "fleet/node.h"
#include "core/snowplow.h"
#include "core/train.h"
#include "data/harvest.h"
#include "data/loader.h"
#include "data/store.h"
#include "kernel/subsystems.h"
#include "nn/serialize.h"
#include "obs/covmap.h"
#include "obs/statusd.h"
#include "obs/telemetry.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "prog/serialize.h"
#include "util/logging.h"

namespace {

using namespace sp;

/**
 * Minimal argument parser: `--flag value` pairs plus bare positionals
 * (subcommand names, shard paths). A repeated flag keeps every value
 * (getAll); get/getU64 return the last one.
 */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 2; i < argc;) {
            if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc) {
                values_[argv[i] + 2] = argv[i + 1];
                ordered_.emplace_back(argv[i] + 2, argv[i + 1]);
                i += 2;
            } else {
                positionals_.emplace_back(argv[i]);
                i += 1;
            }
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    uint64_t
    getU64(const std::string &key, uint64_t fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end()
                   ? fallback
                   : std::strtoull(it->second.c_str(), nullptr, 10);
    }

    bool has(const std::string &key) const
    {
        return values_.count(key) != 0;
    }

    /** Every value of a repeated flag, in command-line order. */
    std::vector<std::string>
    getAll(const std::string &key) const
    {
        std::vector<std::string> out;
        for (const auto &[k, v] : ordered_) {
            if (k == key)
                out.push_back(v);
        }
        return out;
    }

    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    std::string
    positional(size_t i, const std::string &fallback = "") const
    {
        return i < positionals_.size() ? positionals_[i] : fallback;
    }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::pair<std::string, std::string>> ordered_;
    std::vector<std::string> positionals_;
};

/** "--trace-sample 1/64" or "--trace-sample 64" → keep 1 in 64. */
uint32_t
parseSampleRate(const std::string &text)
{
    const char *s = text.c_str();
    if (const char *slash = std::strchr(s, '/'))
        s = slash + 1;
    const unsigned long denom = std::strtoul(s, nullptr, 10);
    return denom == 0 ? 1 : static_cast<uint32_t>(denom);
}

kern::Kernel
makeKernel(const Args &args)
{
    kern::KernelGenParams params;
    params.seed = args.getU64("seed", 2024);
    params.version = args.get("version", "6.8");
    params.evolution = static_cast<int>(args.getU64("evolution", 0));
    return kern::buildBaseKernel(params);
}

int
cmdKernelStats(const Args &args)
{
    auto kernel = makeKernel(args);
    std::printf("kernel %s\n", kernel.version().c_str());
    std::printf("  syscalls      : %zu\n", kernel.table().decls.size());
    std::printf("  basic blocks  : %zu\n", kernel.blocks().size());
    std::printf("  static edges  : %zu\n", kernel.staticEdges().size());
    std::printf("  resource kinds: %zu\n", kernel.resourceKinds().size());
    std::printf("  state flags   : %u\n", kernel.numFlags());
    std::printf("  bug sites     : %zu\n", kernel.bugs().size());
    for (const auto &bug : kernel.bugs()) {
        std::printf("    [%s%s] depth %u  %s (%s)\n",
                    bug.known ? "known" : "new",
                    bug.flaky ? ",flaky" : "",
                    kernel.block(bug.block).depth,
                    bug.description.c_str(), bug.location.c_str());
    }
    return 0;
}

int
cmdFuzz(const Args &args)
{
    auto kernel = makeKernel(args);
    fuzz::FuzzOptions opts;
    opts.exec_budget = args.getU64("budget", 30000);
    opts.seed = args.getU64("seed", 1);
    opts.checkpoint_every = std::max<uint64_t>(1, opts.exec_budget / 12);

    // --exec-backend ref|fast: executor implementation for every
    // worker (and the localizer probe). Bit-identical; `ref` exists
    // for differential runs and A/B throughput measurements.
    if (args.has("exec-backend")) {
        const std::string name = args.get("exec-backend", "fast");
        if (!exec::parseBackendKind(name, &opts.exec_backend))
            SP_FATAL("--exec-backend %s: expected 'ref' or 'fast'",
                     name.c_str());
    }

    // --policy static|thompson: the loop's decision policy. `static`
    // (default) is the legacy scheduler + fixed §3.4 fallback
    // probability; `thompson` learns seed-bucket × operator ×
    // model-vs-random arms from coverage rewards online.
    if (args.has("policy")) {
        const std::string name = args.get("policy", "static");
        if (name == "static") {
            opts.policy.kind = fuzz::PolicyKind::Static;
        } else if (name == "thompson") {
            opts.policy.kind = fuzz::PolicyKind::Thompson;
        } else {
            SP_FATAL("--policy %s: expected 'static' or 'thompson'",
                     name.c_str());
        }
    }

    fuzz::CampaignOptions campaign_opts;
    campaign_opts.workers = static_cast<size_t>(
        std::max<uint64_t>(1, args.getU64("workers", 1)));
    campaign_opts.fuzz = opts;

    // --covmap-out FILE.jsonl: per-block/edge hit profiling with one
    // delta-encoded snapshot window per checkpoint, plus the live
    // /coverage summary on the status server.
    std::unique_ptr<obs::CovMap> covmap;
    if (args.has("covmap-out")) {
        covmap = std::make_unique<obs::CovMap>(
            obs::CovMapPlan::build(kernel.blocks().size(),
                                   kernel.staticEdges()),
            campaign_opts.workers);
        const std::string path = args.get("covmap-out", "");
        std::string extra = "\"kernel\":{\"seed\":";
        extra += std::to_string(args.getU64("seed", 2024));
        extra += ",\"version\":\"" + kernel.version();
        extra += "\",\"evolution\":";
        extra += std::to_string(args.getU64("evolution", 0));
        extra += "}";
        if (!covmap->openLog(path, extra))
            SP_FATAL("cannot open --covmap-out %s", path.c_str());
        campaign_opts.fuzz.covmap = covmap.get();
        obs::setCoverageProvider(
            [cm = covmap.get()] { return cm->summaryJson(); });
    }

    // --timeline-out FILE.jsonl: one metric/coverage/policy sample per
    // virtual-time checkpoint (the `sp_analysis compare` input), plus
    // the live /timeline window on the status server.
    std::unique_ptr<obs::TimelineRecorder> timeline;
    if (args.has("timeline-out")) {
        timeline = std::make_unique<obs::TimelineRecorder>(
            obs::TimelineOptions{});
        const std::string path = args.get("timeline-out", "");
        std::string extra = "\"campaign\":{\"seed\":";
        extra += std::to_string(opts.seed);
        extra += ",\"budget\":";
        extra += std::to_string(opts.exec_budget);
        extra += ",\"workers\":";
        extra += std::to_string(campaign_opts.workers);
        extra += ",\"policy\":\"";
        extra += opts.policy.kind == fuzz::PolicyKind::Thompson
                     ? "thompson"
                     : "static";
        extra += "\"},\"kernel\":{\"seed\":";
        extra += std::to_string(args.getU64("seed", 2024));
        extra += ",\"version\":\"" + kernel.version();
        extra += "\",\"evolution\":";
        extra += std::to_string(args.getU64("evolution", 0));
        extra += "}";
        if (!timeline->openLog(path, extra))
            SP_FATAL("cannot open --timeline-out %s", path.c_str());
        campaign_opts.fuzz.timeline = timeline.get();
        obs::setTimelineProvider(
            [tl = timeline.get()] { return tl->recentJson(); });
    }

    // --directed-from REPORT.json: steer the campaign toward the
    // report's cold-frontier targets (closing the cartography loop).
    std::vector<uint32_t> directed_targets;
    if (args.has("directed-from")) {
        const std::string report_path = args.get("directed-from", "");
        std::string err;
        auto loaded = analysis::loadTargets(report_path, &err);
        if (!err.empty())
            SP_FATAL("--directed-from: %s", err.c_str());
        for (const uint32_t block : loaded) {
            if (block < kernel.blocks().size())
                directed_targets.push_back(block);
        }
        if (directed_targets.empty()) {
            SP_FATAL("--directed-from %s has no targets for this "
                     "kernel (did the seeds match?)",
                     report_path.c_str());
        }
        campaign_opts.fuzz.scheduler =
            core::makeDistanceScheduler(kernel, directed_targets);
        std::printf("directed at %zu cold-frontier targets from %s\n",
                    directed_targets.size(), report_path.c_str());
    }

    // --harvest-dir DIR: convert the campaign's successful mutations
    // into training examples, appended to an open shard as we fuzz.
    std::unique_ptr<data::Harvester> harvester;
    if (args.has("harvest-dir")) {
        data::HarvestOptions harvest_opts;
        harvest_opts.dir = args.get("harvest-dir", ".");
        harvest_opts.seed = opts.seed;
        harvester = std::make_unique<data::Harvester>(kernel,
                                                      harvest_opts);
        campaign_opts.on_mutation = harvester->hook();
    }

    core::Pmm model;
    const std::string ckpt = args.get("pmm", "");
    const bool snowplow = !ckpt.empty() &&
                          nn::loadParameters(model, ckpt);
    const size_t async_workers =
        snowplow ? static_cast<size_t>(args.getU64("async", 0)) : 0;
    const std::string workers_note =
        campaign_opts.workers > 1
            ? ", workers " + std::to_string(campaign_opts.workers)
            : "";
    std::printf("%s campaign, budget %llu%s\n",
                snowplow ? (async_workers ? "Snowplow (async)"
                                          : "Snowplow")
                         : "Syzkaller (baseline)",
                static_cast<unsigned long long>(opts.exec_budget),
                workers_note.c_str());

    // Declared before the engine: the async localizers drain their
    // outstanding futures on destruction, so the service must die last.
    std::unique_ptr<core::InferenceService> service;
    std::unique_ptr<fuzz::CampaignEngine> engine;
    core::SnowplowOptions snowplow_opts;
    snowplow_opts.directed_targets = directed_targets;
    if (async_workers > 0) {
        service = std::make_unique<core::InferenceService>(
            model, async_workers);
        engine = core::makeAsyncSnowplowCampaign(
            kernel, *service, campaign_opts, snowplow_opts);
    } else if (snowplow) {
        engine = core::makeSnowplowCampaign(kernel, model,
                                            campaign_opts,
                                            snowplow_opts);
    } else {
        engine = core::makeSyzkallerCampaign(kernel, campaign_opts);
    }
    auto report = engine->run();
    if (covmap != nullptr) {
        covmap->finalize(report.execs);
        // The covmap dies with this frame but /coverage may be scraped
        // through --status-hold: freeze the final summary into the
        // provider (mirrors the campaign's status ProviderGuard).
        obs::setCoverageProvider(
            [frozen = covmap->summaryJson()] { return frozen; });
        const auto summary = covmap->summary();
        std::printf("covmap: %zu blocks, %zu edges, %zu frontier "
                    "targets, %llu windows -> %s\n",
                    summary.blocks_hit, summary.edges_hit,
                    summary.frontier_size,
                    static_cast<unsigned long long>(summary.windows),
                    args.get("covmap-out", "").c_str());
    }
    if (timeline != nullptr) {
        // The artifact's final record: the end-of-run tick (after
        // CovMap::finalize so stray-edge accounting is settled) plus
        // the one full-percentile registry pass.
        fuzz::Checkpoint final_cp;
        final_cp.execs = report.execs;
        final_cp.edges = report.final_edges;
        final_cp.blocks = report.final_blocks;
        final_cp.crashes = report.final_crashes;
        timeline->finalize(fuzz::makeTimelineTick(
            final_cp, report.corpus_size, covmap.get(),
            engine->policy()));
        // Freeze /timeline for --status-hold scrapes (the recorder
        // outlives the campaign but dies with this frame).
        obs::setTimelineProvider(
            [frozen = timeline->recentJson()] { return frozen; });
        std::printf("timeline: %llu samples -> %s\n",
                    static_cast<unsigned long long>(
                        timeline->sampleCount()),
                    args.get("timeline-out", "").c_str());
    }
    if (!directed_targets.empty()) {
        const auto &coverage = engine->corpus().totalCoverage();
        size_t reached = 0;
        for (const uint32_t block : directed_targets)
            reached += coverage.containsBlock(block);
        std::printf("directed: reached %zu/%zu targets\n", reached,
                    directed_targets.size());
    }
    for (const auto &cp : report.timeline) {
        std::printf("  execs %8llu  edges %6zu  blocks %6zu  "
                    "crashes %3zu\n",
                    static_cast<unsigned long long>(cp.execs), cp.edges,
                    cp.blocks, cp.crashes);
    }
    engine->crashes().reproduceAll();
    std::printf("final: %zu edges, %zu crashes (%zu new, %zu with "
                "reproducer)\n",
                report.final_edges, engine->crashes().uniqueCrashes(),
                engine->crashes().newCrashes(),
                engine->crashes().reproducedCrashes());
    if (harvester) {
        harvester->close();
        const auto hstats = harvester->stats();
        std::printf("harvest: %llu examples over %llu bases (%llu "
                    "offered, %llu dropped) -> %s\n",
                    static_cast<unsigned long long>(hstats.examples),
                    static_cast<unsigned long long>(hstats.bases),
                    static_cast<unsigned long long>(hstats.offered),
                    static_cast<unsigned long long>(hstats.dropped),
                    harvester->shardPath().c_str());
    }
    if (service) {
        // The engine holds the localizers with outstanding futures;
        // reset it first so every promise is consumed.
        engine.reset();
        const auto istats = service->stats();
        std::printf("inference: %llu completed, latency p50 %.0f us  "
                    "p95 %.0f us  p99 %.0f us\n",
                    static_cast<unsigned long long>(istats.completed),
                    istats.p50_latency_us, istats.p95_latency_us,
                    istats.p99_latency_us);
    }
    return 0;
}

int
cmdTrain(const Args &args)
{
    auto kernel = makeKernel(args);
    core::TrainOptions train_opts;
    train_opts.epochs = static_cast<int>(args.getU64("epochs", 12));
    train_opts.verbose = true;
    train_opts.checkpoint_path = args.get("state", "");
    train_opts.resume = args.getU64("resume", 0) != 0;
    setLogLevel(LogLevel::Info);

    const std::vector<std::string> shards = args.getAll("data");
    core::Dataset dataset;
    if (shards.empty()) {
        core::DatasetOptions data_opts;
        data_opts.corpus_size = args.getU64("corpus", 300);
        data_opts.mutations_per_base = args.getU64("mutations", 300);
        dataset = core::collectDataset(kernel, data_opts);
    } else {
        bool truncated = false;
        dataset = data::loadStore(kernel, shards, &truncated);
        std::printf("store: %zu shards%s\n", shards.size(),
                    truncated ? " (truncated tail recovered)" : "");
    }
    std::printf("dataset: %zu/%zu/%zu examples\n", dataset.train.size(),
                dataset.valid.size(), dataset.eval.size());

    // `--stream 1` (the default when training from a store) feeds the
    // trainer through the prefetching streaming loader; `--stream 0`
    // forces the historical in-memory path. Both are bit-identical for
    // the same seed — the dataset round-trip CI stage asserts it.
    const bool stream =
        args.getU64("stream", shards.empty() ? 0 : 1) != 0;
    core::Pmm model;
    core::TrainHistory history;
    if (stream) {
        data::LoaderOptions loader_opts;
        loader_opts.prefetch_threads = std::max<uint64_t>(
            1, args.getU64("prefetch", 2));
        data::StreamSource source(dataset, loader_opts);
        history = core::trainPmmFromSource(model, dataset, source,
                                           train_opts);
    } else {
        history = core::trainPmm(model, dataset, train_opts);
    }
    auto metrics = core::evaluatePmm(model, dataset, dataset.eval,
                                     history.best_threshold);
    std::printf("eval: F1 %.3f  P %.3f  R %.3f  J %.3f  "
                "(threshold %.2f)\n",
                metrics.f1, metrics.precision, metrics.recall,
                metrics.jaccard, history.best_threshold);
    const std::string out = args.get("out", "/tmp/pmm.ckpt");
    nn::saveParameters(model, out);
    std::printf("saved %s\n", out.c_str());
    return 0;
}

int
cmdDataset(const Args &args)
{
    const std::string verb = args.positional(0);
    if (verb == "collect") {
        auto kernel = makeKernel(args);
        core::DatasetOptions data_opts;
        data_opts.corpus_size = args.getU64("corpus", 300);
        data_opts.mutations_per_base = args.getU64("mutations", 300);
        data_opts.seed = args.getU64("data-seed", 1);
        auto dataset = core::collectDataset(kernel, data_opts);
        const std::string dir = args.get("out", "/tmp/snowplow_store");
        const auto paths = data::writeStore(
            dataset, dir, args.getU64("shards", 1));
        std::printf("collected %zu/%zu/%zu examples over %zu bases "
                    "into %zu shard(s) under %s\n",
                    dataset.train.size(), dataset.valid.size(),
                    dataset.eval.size(), dataset.bases.size(),
                    paths.size(), dir.c_str());
        return 0;
    }
    if (verb == "merge") {
        std::vector<std::string> inputs(
            args.positionals().begin() + 1, args.positionals().end());
        if (inputs.empty()) {
            std::fprintf(stderr,
                         "usage: snowplow_cli dataset merge --out "
                         "FILE SHARD...\n");
            return 2;
        }
        data::MergeOptions merge_opts;
        merge_opts.seed = args.getU64("merge-seed", 1);
        merge_opts.popularity_cap = args.getU64("cap", 400);
        const std::string out =
            args.get("out", "/tmp/snowplow_store/merged.spds");
        auto index = data::mergeStore(inputs, out, merge_opts);
        std::printf("merged %zu shard(s): %llu bases, %llu/%llu/%llu "
                    "examples, %llu bytes -> %s\n",
                    inputs.size(),
                    static_cast<unsigned long long>(index.bases),
                    static_cast<unsigned long long>(index.train),
                    static_cast<unsigned long long>(index.valid),
                    static_cast<unsigned long long>(index.eval),
                    static_cast<unsigned long long>(index.bytes),
                    out.c_str());
        return 0;
    }
    if (verb == "stats") {
        std::vector<std::string> paths(
            args.positionals().begin() + 1, args.positionals().end());
        if (paths.empty()) {
            std::fprintf(stderr,
                         "usage: snowplow_cli dataset stats SHARD...\n");
            return 2;
        }
        auto stats = data::statStore(paths);
        std::printf("store: %zu shard(s), %zu from index, %zu "
                    "truncated\n",
                    stats.shards, stats.indexed_shards,
                    stats.truncated_shards);
        std::printf("  bases    : %llu\n",
                    static_cast<unsigned long long>(stats.totals.bases));
        std::printf("  examples : %llu train / %llu valid / %llu "
                    "eval\n",
                    static_cast<unsigned long long>(stats.totals.train),
                    static_cast<unsigned long long>(stats.totals.valid),
                    static_cast<unsigned long long>(stats.totals.eval));
        std::printf("  bytes    : %llu\n",
                    static_cast<unsigned long long>(stats.totals.bytes));
        return 0;
    }
    std::fprintf(stderr,
                 "usage: snowplow_cli dataset <collect|merge|stats> "
                 "[--flag value]... [SHARD...]\n");
    return 2;
}

int
cmdDirected(const Args &args)
{
    auto kernel = makeKernel(args);
    core::DirectedOptions opts;
    opts.target_block =
        static_cast<uint32_t>(args.getU64("target", ~0ull));
    if (opts.target_block >= kernel.blocks().size())
        SP_FATAL("--target must name a block (< %zu)",
                 kernel.blocks().size());
    opts.exec_budget = args.getU64("budget", 30000);
    opts.seed = args.getU64("seed", 1);

    auto baseline = core::runSyzDirect(kernel, opts);
    std::printf("SyzDirect : %s (%llu execs)\n",
                baseline.reached ? "reached" : "NOT reached",
                static_cast<unsigned long long>(
                    baseline.reached ? baseline.execs_to_reach
                                     : baseline.execs_total));
    core::Pmm model;
    if (nn::loadParameters(model, args.get("pmm", "/tmp/pmm.ckpt"))) {
        auto learned = core::runSnowplowD(kernel, model, opts);
        std::printf("Snowplow-D: %s (%llu execs)\n",
                    learned.reached ? "reached" : "NOT reached",
                    static_cast<unsigned long long>(
                        learned.reached ? learned.execs_to_reach
                                        : learned.execs_total));
    } else {
        std::printf("Snowplow-D: skipped (no checkpoint; run "
                    "`snowplow_cli train` first)\n");
    }
    return 0;
}

int
cmdAnalyze(const Args &args)
{
    const std::string log = args.get("log", args.positional(0));
    if (log.empty()) {
        std::fprintf(stderr,
                     "usage: snowplow_cli analyze LOG.jsonl "
                     "[--out REPORT.json] [--targets N] "
                     "[--seed N] [--version V] [--evolution E]\n");
        return 2;
    }
    auto profile = analysis::CovProfile::load(log);
    if (!profile.ok())
        SP_FATAL("analyze: %s", profile.error.c_str());

    // Rebuild the campaign's kernel for subsystem attribution; a
    // mismatched rebuild (wrong --seed etc.) is detectable by block
    // count, and attribution is skipped rather than fabricated.
    auto kernel = makeKernel(args);
    const kern::Kernel *attribution = &kernel;
    if (kernel.blocks().size() != profile.num_blocks) {
        std::fprintf(stderr,
                     "warning: rebuilt kernel has %zu blocks but the "
                     "log has %zu — pass the campaign's --seed/"
                     "--version/--evolution; skipping subsystem "
                     "attribution\n",
                     kernel.blocks().size(), profile.num_blocks);
        attribution = nullptr;
    }

    const size_t cap = args.getU64("targets", 32);
    const auto analysis_result =
        analysis::analyze(std::move(profile), attribution, cap);
    std::fputs(analysis::reportText(analysis_result, log).c_str(),
               stdout);

    const std::string out = args.get("out", "");
    if (!out.empty()) {
        std::FILE *f = std::fopen(out.c_str(), "w");
        if (f == nullptr)
            SP_FATAL("cannot write %s", out.c_str());
        const std::string json =
            analysis::reportJson(analysis_result, log) + "\n";
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("report written to %s\n", out.c_str());
    }
    return 0;
}

int
cmdCorpus(const Args &args)
{
    auto kernel = makeKernel(args);
    Rng rng(args.getU64("seed", 1));
    auto corpus = prog::generateCorpus(
        rng, kernel.table(), args.getU64("count", 5));
    for (size_t i = 0; i < corpus.size(); ++i) {
        const std::string text = prog::formatProg(corpus[i]);
        // Self-check: everything we print must parse back.
        auto parsed = prog::parseProg(text, kernel.table());
        SP_ASSERT(parsed.ok() && corpus[i].equals(*parsed.prog),
                  "corpus round-trip failed");
        std::printf("# prog %zu\n%s\n", i, text.c_str());
    }
    return 0;
}

int
cmdFleet(const Args &args)
{
    const std::string role = args.positional(0);

    if (role == "coordinator") {
        auto kernel = makeKernel(args);
        fleet::CoordinatorOptions opts;
        opts.port = static_cast<uint16_t>(args.getU64("port", 0));
        opts.budget = args.getU64("budget", 6000);
        opts.seed = args.getU64("seed", 1);
        opts.kernel_seed = args.getU64("seed", 2024);
        opts.kernel_evolution =
            static_cast<uint32_t>(args.getU64("evolution", 0));
        opts.lease_slots = args.getU64("lease-slots", 0);
        opts.lease_timeout_ms = args.getU64("lease-timeout-ms", 30000);
        opts.thompson = args.get("policy", "static") == "thompson";
        opts.covmap = args.getU64("covmap", 1) != 0;
        opts.timeline_out = args.get("timeline-out", "");
        opts.harvest_dir = args.get("harvest-dir", "");
        fleet::Coordinator coordinator(kernel, opts);
        // The scripted-fleet contract, mirroring the status server's
        // bound-port line: drivers parse this to point their nodes.
        std::printf("fleet coordinator listening on port %u\n",
                    static_cast<unsigned>(coordinator.port()));
        std::printf("fleet campaign: budget %llu, lease %llu slots, "
                    "checkpoint every %llu\n",
                    static_cast<unsigned long long>(opts.budget),
                    static_cast<unsigned long long>(
                        coordinator.leaseSlots()),
                    static_cast<unsigned long long>(
                        coordinator.checkpointEvery()));
        std::fflush(stdout);
        const bool drained = coordinator.waitUntilDrained(
            args.getU64("drain-timeout-ms", 0));
        coordinator.stop();
        const fleet::CoordinatorStats stats = coordinator.stats();
        std::printf("fleet drained: %s (watermark %llu/%llu)\n",
                    drained ? "yes" : "TIMEOUT",
                    static_cast<unsigned long long>(stats.watermark),
                    static_cast<unsigned long long>(opts.budget));
        std::printf("fleet: %llu nodes, %llu leases (%llu reclaimed, "
                    "%llu stale results)\n",
                    static_cast<unsigned long long>(stats.nodes_seen),
                    static_cast<unsigned long long>(
                        stats.leases_granted),
                    static_cast<unsigned long long>(
                        stats.leases_reclaimed),
                    static_cast<unsigned long long>(
                        stats.results_stale));
        std::printf("fleet: %llu programs pushed (%llu deduped), "
                    "%llu crash reports (%llu deduped), %llu shards\n",
                    static_cast<unsigned long long>(
                        stats.programs_pushed),
                    static_cast<unsigned long long>(
                        stats.programs_deduped),
                    static_cast<unsigned long long>(
                        stats.crashes_pushed),
                    static_cast<unsigned long long>(
                        stats.crashes_deduped),
                    static_cast<unsigned long long>(
                        stats.shards_received));
        std::printf("final: %zu edges, %zu blocks, %zu corpus, "
                    "%zu crashes\n",
                    stats.edges, stats.blocks, stats.corpus_size,
                    stats.unique_crashes);
        if (!opts.timeline_out.empty()) {
            std::printf("timeline: %zu samples -> %s\n",
                        coordinator.timelineSamples(),
                        opts.timeline_out.c_str());
        }
        return drained ? 0 : 1;
    }

    if (role == "node") {
        fleet::NodeOptions opts;
        const std::string connect =
            args.get("connect", "127.0.0.1:0");
        const size_t colon = connect.rfind(':');
        if (colon == std::string::npos)
            SP_FATAL("--connect %s: expected HOST:PORT",
                     connect.c_str());
        opts.host = connect.substr(0, colon);
        opts.port = static_cast<uint16_t>(
            std::strtoul(connect.c_str() + colon + 1, nullptr, 10));
        opts.name = args.get("name", "node");
        opts.workers = static_cast<size_t>(
            std::max<uint64_t>(1, args.getU64("workers", 1)));
        opts.pmm_path = args.get("pmm", "");
        opts.scratch_dir = args.get("scratch", "/tmp");
        opts.max_leases = args.getU64("max-leases", 0);
        opts.abandon_first = args.getU64("abandon-first", 0) != 0;
        opts.retry_ms = args.getU64("retry-ms", 50);
        opts.connect_timeout_ms =
            args.getU64("connect-timeout-ms", 5000);
        const fleet::NodeStats stats = fleet::runNode(opts);
        std::printf("node %s: %llu leases, %llu execs, %llu programs, "
                    "%llu crash reports%s\n",
                    opts.name.c_str(),
                    static_cast<unsigned long long>(stats.leases),
                    static_cast<unsigned long long>(stats.execs),
                    static_cast<unsigned long long>(
                        stats.programs_sent),
                    static_cast<unsigned long long>(stats.crashes_sent),
                    stats.done ? " (campaign drained)" : "");
        if (!stats.error.empty()) {
            std::fprintf(stderr, "node %s: %s\n", opts.name.c_str(),
                         stats.error.c_str());
            return 1;
        }
        return 0;
    }

    std::fprintf(stderr,
                 "usage: snowplow_cli fleet coordinator [--port P] "
                 "[--budget N] [--seed N]\n"
                 "           [--lease-slots N] [--lease-timeout-ms MS] "
                 "[--policy static|thompson]\n"
                 "           [--timeline-out FILE.jsonl] "
                 "[--harvest-dir DIR] [--drain-timeout-ms MS]\n"
                 "       snowplow_cli fleet node --connect HOST:PORT "
                 "[--name S] [--workers N]\n"
                 "           [--pmm CKPT] [--scratch DIR] "
                 "[--max-leases N] [--abandon-first 1]\n");
    return 2;
}

}  // namespace

int
dispatch(const std::string &command, const Args &args)
{
    if (command == "kernel-stats")
        return cmdKernelStats(args);
    if (command == "fuzz")
        return cmdFuzz(args);
    if (command == "train")
        return cmdTrain(args);
    if (command == "dataset")
        return cmdDataset(args);
    if (command == "directed")
        return cmdDirected(args);
    if (command == "analyze")
        return cmdAnalyze(args);
    if (command == "corpus")
        return cmdCorpus(args);
    if (command == "fleet")
        return cmdFleet(args);
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 2;
}

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: snowplow_cli "
                     "<kernel-stats|fuzz|train|dataset|directed|"
                     "analyze|corpus|fleet> "
                     "[--flag value]... [--metrics-out FILE.jsonl]\n"
                     "       [--trace-out FILE.json] [--trace-sample "
                     "1/64] [--status-port P] [--status-hold 1]\n"
                     "       [--flightrec-dir DIR] "
                     "[--stall-timeout-ms MS]\n");
        return 2;
    }
    const Args args(argc, argv);
    const std::string metrics_out = args.get("metrics-out", "");
    if (!metrics_out.empty())
        sp::obs::installSink({.path = metrics_out});

    const std::string trace_out = args.get("trace-out", "");
    const uint64_t stall_ms = args.getU64("stall-timeout-ms", 0);
    const bool tracing = !trace_out.empty() ||
                         args.has("flightrec-dir") || stall_ms > 0;
    if (tracing) {
        sp::obs::TraceOptions trace_opts;
        trace_opts.path = trace_out;
        trace_opts.sample =
            parseSampleRate(args.get("trace-sample", "1"));
        trace_opts.flightrec_dir = args.get("flightrec-dir", ".");
        trace_opts.stall_timeout_us = stall_ms * 1000;
        sp::obs::installTracer(trace_opts);
    }

    std::unique_ptr<sp::obs::StatusServer> status_server;
    if (args.has("status-port")) {
        status_server = std::make_unique<sp::obs::StatusServer>(
            static_cast<uint16_t>(args.getU64("status-port", 0)));
        std::printf("status server listening on port %u\n",
                    static_cast<unsigned>(status_server->port()));
        std::fflush(stdout);
    }

    const int rc = dispatch(argv[1], args);
    std::fflush(stdout);

    // Scripted introspection: keep the process (and its status server)
    // alive after the command so a driver can scrape the final
    // /metrics and /status, then release us with one stdin line.
    if (status_server != nullptr && args.getU64("status-hold", 0) != 0) {
        std::printf("status-hold: send a line to stdin to exit\n");
        std::fflush(stdout);
        int c;
        while ((c = std::fgetc(stdin)) != EOF && c != '\n') {
        }
    }
    status_server.reset();
    if (tracing) {
        sp::obs::shutdownTracer();
        if (!trace_out.empty())
            std::printf("trace written to %s\n", trace_out.c_str());
    }

    if (!metrics_out.empty()) {
        // Appends the final registry snapshot and closes the file.
        sp::obs::shutdownSink();
        std::printf("telemetry written to %s\n", metrics_out.c_str());
    }
    return rc;
}
