/**
 * @file
 * RAII timed spans feeding registry histograms.
 *
 *     void Executor::run(...) {
 *         SP_TIMED("exec.run_us");
 *         ...
 *     }
 *
 * records the span's wall duration (microseconds, steady clock) into
 * the global histogram of that name on scope exit. The histogram lookup
 * happens once per call site (function-local static); when
 * obs::timingEnabled() is false the span skips both clock reads, so an
 * uninstrumented run pays one relaxed atomic load per span.
 */
#ifndef SP_OBS_TIMER_H
#define SP_OBS_TIMER_H

#include <chrono>

#include "obs/metrics.h"

namespace sp::obs {

/** Times its own lifetime into a histogram (microseconds). */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &sink)
        : sink_(timingEnabled() ? &sink : nullptr)
    {
        if (sink_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedTimer()
    {
        if (!sink_)
            return;
        const auto end = std::chrono::steady_clock::now();
        sink_->record(
            std::chrono::duration<double, std::micro>(end - start_)
                .count());
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram *sink_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace sp::obs

#define SP_OBS_CONCAT2(a, b) a##b
#define SP_OBS_CONCAT(a, b) SP_OBS_CONCAT2(a, b)

/** Time the rest of the enclosing scope into histogram `name`. */
#define SP_TIMED(name)                                                  \
    static ::sp::obs::Histogram &SP_OBS_CONCAT(sp_timed_hist_,          \
                                               __LINE__) =              \
        ::sp::obs::Registry::global().histogram(name);                  \
    ::sp::obs::ScopedTimer SP_OBS_CONCAT(sp_timed_span_, __LINE__)(     \
        SP_OBS_CONCAT(sp_timed_hist_, __LINE__))

#endif  // SP_OBS_TIMER_H
