// Tests for coverage cartography's hot half (obs/covmap.h): plan
// geometry, wait-free shard recording, merge-order independence of the
// folded map, frontier ranking, the campaign integration (hit totals,
// metric hygiene, workers=1 repeatability), the record/merge data-race
// contract under TSan, and the /coverage status endpoint.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/campaign.h"
#include "kernel/subsystems.h"
#include "mutate/localizer.h"
#include "obs/covmap.h"
#include "obs/metrics.h"
#include "obs/statusd.h"
#include "obs/trace.h"

namespace sp::obs {
namespace {

using Edge = std::pair<uint32_t, uint32_t>;

const kern::Kernel &
testKernel()
{
    static kern::Kernel kernel = [] {
        kern::KernelGenParams params;
        params.seed = 6;
        return kern::buildBaseKernel(params);
    }();
    return kernel;
}

/**
 * A 6-block diamond CFG with a dead branch:
 *
 *     0 -> 1 -> 3 -> 5
 *     0 -> 2 -> 3
 *     1 -> 4            (4 is never executed below)
 */
CovMapPlan
diamondPlan()
{
    return CovMapPlan::build(
        6, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 5}, {1, 4}});
}

TEST(CovMapPlan, BuildDedupesAndIndexesEdges)
{
    auto plan = CovMapPlan::build(4, {{0, 1}, {1, 2}, {0, 1}, {1, 3}});
    EXPECT_EQ(plan.num_blocks, 4u);
    EXPECT_EQ(plan.numEdges(), 3u);  // duplicate (0,1) folded

    // Dense ids cover each unique edge exactly once.
    const uint32_t e01 = plan.edgeIndex(0, 1);
    const uint32_t e12 = plan.edgeIndex(1, 2);
    const uint32_t e13 = plan.edgeIndex(1, 3);
    EXPECT_NE(e01, CovMapPlan::kNone);
    EXPECT_NE(e12, CovMapPlan::kNone);
    EXPECT_NE(e13, CovMapPlan::kNone);
    EXPECT_NE(e12, e13);
    EXPECT_EQ(plan.edgeIndex(2, 0), CovMapPlan::kNone);
    EXPECT_EQ(plan.edgeIndex(3, 1), CovMapPlan::kNone);

    // Successor slots mirror the edge set, kNone-padded.
    EXPECT_EQ(plan.succ[0][0], 1u);
    EXPECT_EQ(plan.succ[0][1], CovMapPlan::kNone);
    EXPECT_EQ(plan.succ_edge[0][0], e01);
    EXPECT_EQ(plan.succ[1][0], 2u);
    EXPECT_EQ(plan.succ[1][1], 3u);
    EXPECT_EQ(plan.succ[3][0], CovMapPlan::kNone);
}

TEST(CovShard, RecordsBlocksEdgesAndStrays)
{
    CovMap map(diamondPlan(), /*workers=*/1);
    CovShard &shard = map.shard(0);

    shard.recordTrace({0, 1, 3, 5});
    shard.recordTrace({0, 2, 3, 5});
    shard.recordTrace({0, 1, 3, 5});

    EXPECT_EQ(shard.blockHits(0), 3u);
    EXPECT_EQ(shard.blockHits(1), 2u);
    EXPECT_EQ(shard.blockHits(2), 1u);
    EXPECT_EQ(shard.blockHits(3), 3u);
    EXPECT_EQ(shard.blockHits(4), 0u);
    EXPECT_EQ(shard.blockHits(5), 3u);

    const auto &plan = map.plan();
    EXPECT_EQ(shard.edgeHits(plan.edgeIndex(0, 1)), 2u);
    EXPECT_EQ(shard.edgeHits(plan.edgeIndex(0, 2)), 1u);
    EXPECT_EQ(shard.edgeHits(plan.edgeIndex(3, 5)), 3u);
    EXPECT_EQ(shard.edgeHits(plan.edgeIndex(1, 4)), 0u);
    EXPECT_EQ(shard.strayEdges(), 0u);

    // A transition outside the static CFG tallies as stray, and
    // out-of-range blocks are ignored rather than written.
    shard.recordTrace({5, 0});
    EXPECT_EQ(shard.strayEdges(), 1u);
    shard.recordTrace({99});
    EXPECT_EQ(shard.blockHits(5), 4u);
}

TEST(CovMap, MergeIsIndependentOfShardInterleaving)
{
    // The same multiset of traces recorded on one shard vs spread
    // round-robin over four shards must fold to the identical map —
    // the property that makes worker count irrelevant to the report.
    std::vector<std::vector<uint32_t>> traces;
    for (int i = 0; i < 40; ++i) {
        if (i % 3 == 0)
            traces.push_back({0, 2, 3, 5});
        else
            traces.push_back({0, 1, 3, 5});
    }

    CovMap one(diamondPlan(), 1);
    for (const auto &t : traces)
        one.shard(0).recordTrace(t);

    CovMap four(diamondPlan(), 4);
    for (size_t i = 0; i < traces.size(); ++i)
        four.shard(i % 4).recordTrace(traces[i]);

    EXPECT_EQ(one.mergedBlockHits(), four.mergedBlockHits());
    EXPECT_EQ(one.mergedEdgeHits(), four.mergedEdgeHits());

    const auto fa = one.frontierTargets();
    const auto fb = four.frontierTargets();
    ASSERT_EQ(fa.size(), fb.size());
    for (size_t i = 0; i < fa.size(); ++i) {
        EXPECT_EQ(fa[i].target, fb[i].target);
        EXPECT_EQ(fa[i].guard, fb[i].guard);
        EXPECT_EQ(fa[i].guard_hits, fb[i].guard_hits);
    }
}

TEST(Frontier, RanksByGuardHitsThenTargetId)
{
    // Two guards with unreached successors; 1 is hotter than 6.
    //   1 -> {2 unreached, 3 reached}
    //   6 -> {7 unreached, 8 unreached}
    //   4 -> 5 (single successor: never a frontier guard)
    auto plan = CovMapPlan::build(
        9, {{1, 2}, {1, 3}, {6, 7}, {6, 8}, {4, 5}});
    std::vector<uint64_t> hits(9, 0);
    hits[1] = 50;
    hits[3] = 10;
    hits[6] = 5;
    hits[4] = 99;  // hot single-successor guard, 5 unreached

    auto frontier = computeFrontier(plan, hits, /*cap=*/0);
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_EQ(frontier[0].target, 2u);
    EXPECT_EQ(frontier[0].guard, 1u);
    EXPECT_EQ(frontier[0].guard_hits, 50u);
    // Tie on guard 6: target id ascending.
    EXPECT_EQ(frontier[1].target, 7u);
    EXPECT_EQ(frontier[2].target, 8u);

    auto capped = computeFrontier(plan, hits, /*cap=*/1);
    ASSERT_EQ(capped.size(), 1u);
    EXPECT_EQ(capped[0].target, 2u);

    // Crossing the branch retires its frontier entries.
    hits[7] = 1;
    hits[8] = 1;
    frontier = computeFrontier(plan, hits, 0);
    ASSERT_EQ(frontier.size(), 1u);
    EXPECT_EQ(frontier[0].target, 2u);
}

TEST(CovMap, SummaryAndJsonReflectMerges)
{
    CovMap map(diamondPlan(), 1);
    map.shard(0).recordTrace({0, 1, 3, 5});
    map.onCheckpoint(/*execs=*/100);

    auto summary = map.summary();
    EXPECT_EQ(summary.execs, 100u);
    EXPECT_EQ(summary.windows, 1u);
    EXPECT_EQ(summary.blocks_hit, 4u);
    EXPECT_EQ(summary.edges_hit, 3u);
    EXPECT_EQ(summary.total_block_hits, 4u);
    // Unreached: 2 (guarded by 0) and 4 (guarded by 1).
    EXPECT_EQ(summary.frontier_size, 2u);
    ASSERT_EQ(summary.top_frontier.size(), 2u);

    const std::string json = map.summaryJson();
    EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
    EXPECT_NE(json.find("\"execs\":100"), std::string::npos);
    EXPECT_NE(json.find("\"blocks_hit\":4"), std::string::npos);
    EXPECT_NE(json.find("\"frontier\":["), std::string::npos);

    EXPECT_GT(map.residentBytes(), 0u);

    map.finalize(150);
    map.finalize(150);  // idempotent
    EXPECT_EQ(map.summary().windows, 2u);
}

TEST(CovMap, RecordAndMergeAreRaceFree)
{
    // Three writers hammer their own shards while the "checkpoint
    // owner" merges repeatedly. Run under TSan this exercises the
    // relaxed single-writer / merge-reader contract.
    CovMap map(diamondPlan(), 3);
    std::vector<std::thread> writers;
    for (size_t w = 0; w < 3; ++w) {
        writers.emplace_back([&map, w] {
            CovShard &shard = map.shard(w);
            for (int i = 0; i < 2000; ++i)
                shard.recordTrace({0, 1, 3, 5});
        });
    }
    for (int merge = 1; merge <= 20; ++merge)
        map.onCheckpoint(static_cast<uint64_t>(merge) * 100);
    for (auto &t : writers)
        t.join();
    map.finalize(3000);

    const auto blocks = map.mergedBlockHits();
    EXPECT_EQ(blocks[0], 6000u);
    EXPECT_EQ(blocks[5], 6000u);
}

fuzz::CampaignOptions
smallCampaign(size_t workers, uint64_t seed)
{
    fuzz::CampaignOptions opts;
    opts.workers = workers;
    opts.fuzz.exec_budget = 1500;
    opts.fuzz.seed = seed;
    opts.fuzz.seed_corpus_size = 20;
    opts.fuzz.checkpoint_every = 250;
    return opts;
}

fuzz::CampaignEngine::LocalizerFactory
randomLocalizers()
{
    return [](size_t) { return std::make_unique<mut::RandomLocalizer>(); };
}

std::vector<uint64_t>
campaignBlockHits(size_t workers, uint64_t seed)
{
    const auto &kernel = testKernel();
    CovMap map(CovMapPlan::build(kernel.blocks().size(),
                                 kernel.staticEdges()),
               workers);
    auto opts = smallCampaign(workers, seed);
    opts.fuzz.covmap = &map;
    fuzz::CampaignEngine engine(kernel, opts, randomLocalizers());
    auto report = engine.run();
    map.finalize(report.execs);
    EXPECT_GT(map.summary().windows, 1u);
    return map.mergedBlockHits();
}

TEST(CovMapCampaign, AccumulatesHitsAndIsRepeatableSingleWorker)
{
    const auto a = campaignBlockHits(1, 11);
    const auto b = campaignBlockHits(1, 11);
    EXPECT_EQ(a, b);

    uint64_t total = 0;
    size_t reached = 0;
    for (uint64_t h : a) {
        total += h;
        reached += (h != 0);
    }
    // Every exec walks several blocks; totals dwarf the exec budget.
    EXPECT_GT(total, 1500u);
    EXPECT_GT(reached, 0u);
    EXPECT_LT(reached, a.size());  // a short run can't reach everything
}

TEST(CovMapCampaign, ResetsCovmapCountersBetweenCampaigns)
{
    // A second campaign in the same process must not inherit the
    // first's covmap.* counters (CampaignEngine::run metric hygiene).
    campaignBlockHits(1, 21);
    const auto first = Registry::global().counter("covmap.windows").value();
    EXPECT_GT(first, 0u);
    campaignBlockHits(1, 22);
    const auto second =
        Registry::global().counter("covmap.windows").value();
    EXPECT_LE(second, first + 1);  // reset, then re-accumulated
}

/** Minimal HTTP GET against 127.0.0.1:port; returns the raw reply. */
std::string
httpGet(uint16_t port, const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string reply;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        reply.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return reply;
}

TEST(CoverageEndpoint, ServesProviderJsonAndDisabledDefault)
{
    setCoverageProvider(nullptr);
    EXPECT_EQ(coverageJson(), "{\"enabled\":false}");

    CovMap map(diamondPlan(), 1);
    map.shard(0).recordTrace({0, 1, 3, 5});
    map.onCheckpoint(42);
    setCoverageProvider([&map] { return map.summaryJson(); });

    StatusServer server(0);
    ASSERT_NE(server.port(), 0u);
    const std::string reply = httpGet(server.port(), "/coverage");
    EXPECT_NE(reply.find("200 OK"), std::string::npos);
    EXPECT_NE(reply.find("\"enabled\":true"), std::string::npos);
    EXPECT_NE(reply.find("\"execs\":42"), std::string::npos);

    setCoverageProvider(nullptr);
    const std::string off = httpGet(server.port(), "/coverage");
    EXPECT_NE(off.find("\"enabled\":false"), std::string::npos);
}

}  // namespace
}  // namespace sp::obs
