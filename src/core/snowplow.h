/**
 * @file
 * Snowplow: the hybrid fuzzer (paper §3.4).
 *
 * PmmLocalizer plugs the trained model into the fuzzing loop's
 * localization step: given a base test and its (cached) coverage, it
 * builds the mutation query with the one-hop alternative frontier as
 * the desired coverage, runs PMM, and returns the arguments whose
 * MUTATE probability clears the threshold (ranked, capped). The §3.4
 * random-fallback arbitration (a small probability of deferring to the
 * random localizer in case PMM misses promising arguments) is a *loop*
 * decision now: the fuzz loop's DecisionPolicy (fuzz/policy.h,
 * `PolicyOptions::pmm_fallback_prob`) chooses model-vs-random per
 * round and passes the verdict into `localizeChosen`. The number of
 * returned sites naturally implements the dynamic mutation count —
 * bases with more promising arguments get more argument mutations.
 *
 * makeSnowplowFuzzer / makeSyzkallerFuzzer build the two sides of every
 * same-budget comparison in the evaluation.
 */
#ifndef SP_CORE_SNOWPLOW_H
#define SP_CORE_SNOWPLOW_H

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/infer.h"
#include "core/pmm.h"
#include "fuzz/campaign.h"
#include "fuzz/fuzzer.h"

namespace sp::core {

/** PmmLocalizer configuration. */
struct SnowplowOptions
{
    /** MUTATE probability threshold. */
    float threshold = 0.5f;
    /** Cache capacity for per-base predictions. */
    size_t cache_capacity = 4096;
    /**
     * Optional directed-mode target blocks: when non-empty, only these
     * (where present on the base's frontier) are marked as targets in
     * the query; otherwise the whole frontier is the desired coverage.
     */
    std::vector<uint32_t> directed_targets;
    /**
     * Backend of the localizer's deterministic probe executor (cold
     * bases re-executed for coverage). Campaign factories thread the
     * fuzz loop's choice through so `--exec-backend` governs probe
     * runs too.
     */
    exec::BackendKind exec_backend = exec::BackendKind::Fast;
};

/**
 * Thread-safe prediction cache: base-program hash → ranked site list
 * (the model's output for that base). One cache can be shared by every
 * localizer of a multi-worker campaign so a base ranked by one worker
 * never costs a second forward pass on another. Eviction is the
 * historical wholesale clear at capacity. Lookups feed the
 * `snowplow.cache.hit`/`snowplow.cache.miss` counters and the
 * `snowplow.cache_hit_ratio` gauge.
 */
class PredictionCache
{
  public:
    explicit PredictionCache(size_t capacity);

    /** On hit, copies the cached sites into `out` and returns true. */
    bool lookup(uint64_t key, std::vector<mut::ArgLocation> *out);

    /** Store `sites` for `key`, clearing the cache first when full. */
    void insert(uint64_t key, std::vector<mut::ArgLocation> sites);

    size_t size() const;
    size_t capacity() const { return capacity_; }

    /** @name Lifetime tallies (lock-free reads) */
    /** @{ */
    uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }
    uint64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }
    /** Entries dropped by wholesale clears. */
    uint64_t evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }
    /** @} */

  private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::unordered_map<uint64_t, std::vector<mut::ArgLocation>> map_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> evictions_{0};
};

/** The learned white-box argument localizer. */
class PmmLocalizer : public mut::Localizer
{
  public:
    /**
     * @param kernel  kernel under test (for graph building and the
     *                deterministic probe executor)
     * @param model   trained PMM (must outlive the localizer)
     * @param opts    thresholds and fallback behaviour
     * @param cache   optional shared prediction cache (campaign
     *                workers pass one cache to every localizer); a
     *                private cache of `opts.cache_capacity` is created
     *                when null
     */
    PmmLocalizer(const kern::Kernel &kernel, const Pmm &model,
                 SnowplowOptions opts = {},
                 std::shared_ptr<PredictionCache> cache = nullptr);

    std::vector<mut::ArgLocation> localize(const prog::Prog &prog,
                                           Rng &rng,
                                           size_t max_sites) override;

    /** Direct model path (no arbitration): rank with PMM. */
    std::vector<mut::ArgLocation>
    localizeWithResult(const prog::Prog &prog,
                       const exec::ExecResult &result, Rng &rng,
                       size_t max_sites) override;

    bool learned() const override { return true; }

    /**
     * Policy-arbitrated localization: `use_model` false takes the
     * random-fallback path (channel Random), true ranks with PMM
     * (channel Model — including the rare cold-model case where PMM
     * returns no sites and one random site stands in, the historical
     * accounting).
     */
    mut::Localization localizeChosen(const prog::Prog &prog,
                                     const exec::ExecResult &result,
                                     Rng &rng, size_t max_sites,
                                     bool use_model) override;

    /** Queries answered by the model (vs fallback). */
    uint64_t modelQueries() const { return model_queries_; }
    uint64_t fallbackQueries() const { return fallback_queries_; }

    /** Entries currently in the (possibly shared) prediction cache. */
    size_t cacheSize() const { return cache_->size(); }
    const PredictionCache &cache() const { return *cache_; }

  private:
    std::vector<mut::ArgLocation>
    rankSites(const prog::Prog &prog, const exec::ExecResult &result,
              Rng &rng, size_t max_sites);

    const kern::Kernel &kernel_;
    const Pmm &model_;
    SnowplowOptions opts_;
    mut::RandomLocalizer fallback_;
    exec::Executor probe_;  ///< deterministic executor for cold bases
    /** prog hash -> ranked site list (model output cache). */
    std::shared_ptr<PredictionCache> cache_;
    /** Encode scratch reused across queries (encodeGraphInto). */
    graph::EncodedGraph encode_scratch_;
    uint64_t model_queries_ = 0;
    uint64_t fallback_queries_ = 0;
};

/**
 * The asynchronous variant of the learned localizer (paper §3.4/§4):
 * queries are submitted to an InferenceService worker pool; while a
 * base's prediction is pending the localizer answers with the random
 * fallback so the fuzz loop never blocks, and once the prediction
 * lands it is cached and used for subsequent mutations of that base —
 * Snowplow "catches up with argument mutations" exactly as the paper's
 * Go worker-pool integration does. Those stand-in answers are reported
 * to the policy as the ForcedRandom channel (`localizeChosen`): the
 * loop *asked* for the model but got random sites, so the outcome must
 * credit neither the model's arm nor the deliberate-random arm.
 */
class AsyncPmmLocalizer : public mut::Localizer
{
  public:
    /**
     * @param kernel   kernel under test
     * @param service  shared inference service (must outlive this)
     * @param opts     thresholds and fallback behaviour
     * @param cache    optional shared prediction cache for landed
     *                 results (one per campaign); private when null
     */
    AsyncPmmLocalizer(const kern::Kernel &kernel,
                      InferenceService &service,
                      SnowplowOptions opts = {},
                      std::shared_ptr<PredictionCache> cache = nullptr);
    ~AsyncPmmLocalizer() override;

    std::vector<mut::ArgLocation> localize(const prog::Prog &prog,
                                           Rng &rng,
                                           size_t max_sites) override;

    /** Direct model path (no arbitration): cached/landed predictions,
     *  random stand-ins while inference is in flight. */
    std::vector<mut::ArgLocation>
    localizeWithResult(const prog::Prog &prog,
                       const exec::ExecResult &result, Rng &rng,
                       size_t max_sites) override;

    bool learned() const override { return true; }

    /**
     * Policy-arbitrated localization. Channels: Random when the policy
     * chose the fallback; Model when a landed/cached prediction
     * answered; ForcedRandom when the model was requested but could
     * not answer (prediction still in flight, first sight of the base,
     * or a base with no argument nodes).
     */
    mut::Localization localizeChosen(const prog::Prog &prog,
                                     const exec::ExecResult &result,
                                     Rng &rng, size_t max_sites,
                                     bool use_model) override;

    /** @name Telemetry */
    /** @{ */
    uint64_t submitted() const { return submitted_; }
    uint64_t answeredFromModel() const { return answered_; }
    uint64_t answeredWhilePending() const { return pending_answers_; }
    /** Entries currently in the (possibly shared) landed cache. */
    size_t cacheSize() const { return ready_->size(); }
    /** @} */

  private:
    struct PendingQuery
    {
        std::future<std::vector<float>> future;
        std::vector<mut::ArgLocation> locations;  ///< decode table
    };

    const kern::Kernel &kernel_;
    InferenceService &service_;
    SnowplowOptions opts_;
    mut::RandomLocalizer fallback_;
    exec::Executor probe_;
    /** In-flight queries. Futures are single-consumer, so this map is
     *  strictly per-localizer (per worker) — only landed results move
     *  into the shared `ready_` cache. */
    std::unordered_map<uint64_t, PendingQuery> pending_;
    std::shared_ptr<PredictionCache> ready_;
    uint64_t submitted_ = 0;
    uint64_t answered_ = 0;
    uint64_t pending_answers_ = 0;
};

/** Snowplow = the fuzz loop + PmmLocalizer. */
std::unique_ptr<fuzz::Fuzzer>
makeSnowplowFuzzer(const kern::Kernel &kernel, const Pmm &model,
                   fuzz::FuzzOptions fuzz_opts,
                   SnowplowOptions snowplow_opts = {});

/**
 * Snowplow with the asynchronous inference pipeline: the returned
 * fuzzer owns an AsyncPmmLocalizer bound to `service`.
 */
std::unique_ptr<fuzz::Fuzzer>
makeAsyncSnowplowFuzzer(const kern::Kernel &kernel,
                        InferenceService &service,
                        fuzz::FuzzOptions fuzz_opts,
                        SnowplowOptions snowplow_opts = {});

/** The Syzkaller baseline = the same loop + RandomLocalizer. */
std::unique_ptr<fuzz::Fuzzer>
makeSyzkallerFuzzer(const kern::Kernel &kernel,
                    fuzz::FuzzOptions fuzz_opts);

/**
 * @name Multi-worker campaign construction
 *
 * The campaign analogs of the fuzzer factories: each worker gets its
 * own localizer instance (private probe executor and encode scratch)
 * while the Snowplow variants share one PredictionCache across
 * workers. At `workers = 1` these reproduce the corresponding
 * single-threaded fuzzer bit-for-bit.
 */
/** @{ */
std::unique_ptr<fuzz::CampaignEngine>
makeSnowplowCampaign(const kern::Kernel &kernel, const Pmm &model,
                     fuzz::CampaignOptions campaign_opts,
                     SnowplowOptions snowplow_opts = {});

std::unique_ptr<fuzz::CampaignEngine>
makeAsyncSnowplowCampaign(const kern::Kernel &kernel,
                          InferenceService &service,
                          fuzz::CampaignOptions campaign_opts,
                          SnowplowOptions snowplow_opts = {});

std::unique_ptr<fuzz::CampaignEngine>
makeSyzkallerCampaign(const kern::Kernel &kernel,
                      fuzz::CampaignOptions campaign_opts);
/** @} */

}  // namespace sp::core

#endif  // SP_CORE_SNOWPLOW_H
