/**
 * @file
 * Thread-local per-exec scratch arena (the exec-side sibling of the NN
 * tensor arena, src/nn/inference.h).
 *
 * Every program execution needs a flattened-slot buffer per call, a
 * return-value table and a block-trace buffer. Allocating them per
 * call/program is pure hot-path overhead: the shapes recur, so one
 * arena per thread hands the same capacity-retaining buffers to every
 * executor running on that thread (a campaign worker's main executor
 * and its localizer's probe executor share one arena). Buffers are
 * valid only between borrow and the end of the current run — backends
 * must copy anything that escapes into the ExecResult.
 */
#ifndef SP_EXEC_ARENA_H
#define SP_EXEC_ARENA_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sp::exec {

/** Recycled per-exec scratch buffers. One per thread. */
struct ExecArena
{
    /** flattenCallInto target, reused across every call. */
    std::vector<uint64_t> slots;
    /** Return values of already-executed calls (resource resolution). */
    std::vector<uint64_t> rets;
    /** One call's block trace before it is copied into the result. */
    std::vector<uint32_t> trace;
    /** Programs served from this arena (telemetry). */
    uint64_t programs = 0;

    /** Bytes currently held across the scratch buffers. */
    size_t
    bytes() const
    {
        return slots.capacity() * sizeof(uint64_t) +
               rets.capacity() * sizeof(uint64_t) +
               trace.capacity() * sizeof(uint32_t);
    }

    /** This thread's arena (created on first use). */
    static ExecArena &local();
};

}  // namespace sp::exec

#endif  // SP_EXEC_ARENA_H
