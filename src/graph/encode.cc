#include "graph/encode.h"

#include <algorithm>

#include "kernel/block.h"
#include "util/logging.h"

namespace sp::graph {

EncodedGraph
encodeGraph(const kern::Kernel &kernel, const QueryGraph &graph)
{
    EncodedGraph enc;
    encodeGraphInto(kernel, graph, enc);
    return enc;
}

void
encodeGraphInto(const kern::Kernel &kernel, const QueryGraph &graph,
                EncodedGraph &out)
{
    out.num_nodes = static_cast<int32_t>(graph.nodes.size());
    out.node_kind.resize(graph.nodes.size());
    out.syscall_tok.assign(graph.nodes.size(), 0);
    out.arg_type_tok.assign(graph.nodes.size(), 0);
    out.arg_slot_tok.assign(graph.nodes.size(), 0);
    out.target_flag.assign(graph.nodes.size(), 0);
    out.block_tokens.assign(
        graph.nodes.size() * EncodeVocab::kTokenWindow,
        kern::token::kPad);

    for (size_t i = 0; i < graph.nodes.size(); ++i) {
        const Node &node = graph.nodes[i];
        out.node_kind[i] = static_cast<int32_t>(node.kind);
        switch (node.kind) {
          case NodeKind::Syscall:
            out.syscall_tok[i] = static_cast<int32_t>(
                std::min<uint32_t>(node.syscall_id,
                                   EncodeVocab::kSyscallVocab - 1));
            break;
          case NodeKind::Argument:
            out.arg_type_tok[i] = static_cast<int32_t>(
                std::min<uint8_t>(node.arg_type_kind,
                                  EncodeVocab::kArgTypeVocab - 1));
            out.arg_slot_tok[i] = static_cast<int32_t>(
                std::min<uint16_t>(node.arg_slot,
                                   kern::token::kMaxSlots - 1));
            break;
          case NodeKind::Covered:
          case NodeKind::Alternative: {
            const auto &tokens = kernel.block(node.block).tokens;
            const size_t n = std::min<size_t>(
                tokens.size(), EncodeVocab::kTokenWindow);
            for (size_t t = 0; t < n; ++t) {
                out.block_tokens[i * EncodeVocab::kTokenWindow + t] =
                    tokens[t];
            }
            out.target_flag[i] = node.is_target ? 1 : 0;
            break;
          }
        }
    }

    for (auto &adj : out.adj) {
        adj.src.clear();
        adj.dst.clear();
    }
    for (const Edge &edge : graph.edges) {
        const auto kind = static_cast<size_t>(edge.kind);
        out.adj[kind].src.push_back(static_cast<int32_t>(edge.src));
        out.adj[kind].dst.push_back(static_cast<int32_t>(edge.dst));
        // Reverse relation.
        out.adj[kNumEdgeKinds + kind].src.push_back(
            static_cast<int32_t>(edge.dst));
        out.adj[kNumEdgeKinds + kind].dst.push_back(
            static_cast<int32_t>(edge.src));
    }

    out.argument_nodes.clear();
    out.argument_nodes.reserve(graph.argument_nodes.size());
    for (uint32_t index : graph.argument_nodes)
        out.argument_nodes.push_back(static_cast<int32_t>(index));
}

namespace {

void
appendShifted(std::vector<int32_t> &dst, const std::vector<int32_t> &src,
              int32_t offset)
{
    dst.reserve(dst.size() + src.size());
    for (int32_t v : src)
        dst.push_back(v + offset);
}

}  // namespace

GraphBatch
concatGraphs(const std::vector<const EncodedGraph *> &graphs)
{
    SP_ASSERT(!graphs.empty(), "concatGraphs on an empty batch");
    GraphBatch batch;
    batch.node_offsets.reserve(graphs.size());
    batch.argument_counts.reserve(graphs.size());

    EncodedGraph &merged = batch.merged;
    for (const EncodedGraph *g : graphs) {
        SP_ASSERT(g != nullptr && g->num_nodes > 0,
                  "concatGraphs needs non-empty graphs");
        const int32_t offset = merged.num_nodes;
        batch.node_offsets.push_back(offset);
        batch.argument_counts.push_back(g->argument_nodes.size());

        merged.num_nodes += g->num_nodes;
        merged.node_kind.insert(merged.node_kind.end(),
                                g->node_kind.begin(),
                                g->node_kind.end());
        merged.syscall_tok.insert(merged.syscall_tok.end(),
                                  g->syscall_tok.begin(),
                                  g->syscall_tok.end());
        merged.arg_type_tok.insert(merged.arg_type_tok.end(),
                                   g->arg_type_tok.begin(),
                                   g->arg_type_tok.end());
        merged.arg_slot_tok.insert(merged.arg_slot_tok.end(),
                                   g->arg_slot_tok.begin(),
                                   g->arg_slot_tok.end());
        merged.target_flag.insert(merged.target_flag.end(),
                                  g->target_flag.begin(),
                                  g->target_flag.end());
        merged.block_tokens.insert(merged.block_tokens.end(),
                                   g->block_tokens.begin(),
                                   g->block_tokens.end());
        for (size_t r = 0; r < merged.adj.size(); ++r) {
            appendShifted(merged.adj[r].src, g->adj[r].src, offset);
            appendShifted(merged.adj[r].dst, g->adj[r].dst, offset);
        }
        appendShifted(merged.argument_nodes, g->argument_nodes, offset);
    }
    return batch;
}

}  // namespace sp::graph
