// Tests for the decision-policy seam (fuzz/policy.h): the default
// StaticPolicy must reproduce the pre-refactor fuzzing timeline
// bit-for-bit (goldens captured on the commit before the policy layer
// landed), ThompsonPolicy's posterior evolution must be deterministic
// for a fixed seed, shard merging must be order-independent, and a
// 4-worker Thompson campaign must hold the checkpoint grid (this test
// also runs under TSan in CI stage 3).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/infer.h"
#include "core/snowplow.h"
#include "fuzz/campaign.h"
#include "fuzz/fuzzer.h"
#include "fuzz/policy.h"
#include "kernel/subsystems.h"
#include "prog/gen.h"

namespace sp::fuzz {
namespace {

const kern::Kernel &
testKernel()
{
    static kern::Kernel kernel = [] {
        kern::KernelGenParams params;
        params.seed = 6;
        return kern::buildBaseKernel(params);
    }();
    return kernel;
}

FuzzOptions
smallCampaign(uint64_t seed)
{
    FuzzOptions opts;
    opts.exec_budget = 1500;
    opts.seed = seed;
    opts.seed_corpus_size = 20;
    opts.checkpoint_every = 250;
    return opts;
}

/** One checkpoint of a pre-refactor golden timeline. */
struct GoldenPoint
{
    uint64_t execs;
    size_t edges;
    size_t blocks;
    size_t crashes;
};

/** Per-lane (produced, admitted) golden counts, lane-indexed. */
struct GoldenLanes
{
    std::array<uint64_t, kMutationLanes> produced;
    std::array<uint64_t, kMutationLanes> admitted;
};

void
expectGolden(const FuzzReport &report,
             const std::vector<GoldenPoint> &timeline, size_t edges,
             size_t blocks, uint64_t execs, size_t corpus,
             size_t crashes, const GoldenLanes &lanes)
{
    ASSERT_EQ(report.timeline.size(), timeline.size());
    for (size_t i = 0; i < timeline.size(); ++i) {
        EXPECT_EQ(report.timeline[i].execs, timeline[i].execs) << i;
        EXPECT_EQ(report.timeline[i].edges, timeline[i].edges) << i;
        EXPECT_EQ(report.timeline[i].blocks, timeline[i].blocks) << i;
        EXPECT_EQ(report.timeline[i].crashes, timeline[i].crashes)
            << i;
    }
    EXPECT_EQ(report.final_edges, edges);
    EXPECT_EQ(report.final_blocks, blocks);
    EXPECT_EQ(report.execs, execs);
    EXPECT_EQ(report.corpus_size, corpus);
    EXPECT_EQ(report.final_crashes, crashes);
    for (size_t lane = 0; lane < kMutationLanes; ++lane) {
        EXPECT_EQ(report.lanes[lane].produced, lanes.produced[lane])
            << lane;
        EXPECT_EQ(report.lanes[lane].admitted, lanes.admitted[lane])
            << lane;
    }
}

void
expectSameReport(const FuzzReport &a, const FuzzReport &b)
{
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_EQ(a.timeline[i].execs, b.timeline[i].execs) << i;
        EXPECT_EQ(a.timeline[i].edges, b.timeline[i].edges) << i;
        EXPECT_EQ(a.timeline[i].blocks, b.timeline[i].blocks) << i;
        EXPECT_EQ(a.timeline[i].crashes, b.timeline[i].crashes) << i;
    }
    EXPECT_EQ(a.final_edges, b.final_edges);
    EXPECT_EQ(a.final_blocks, b.final_blocks);
    EXPECT_EQ(a.execs, b.execs);
    EXPECT_EQ(a.corpus_size, b.corpus_size);
    EXPECT_EQ(a.final_crashes, b.final_crashes);
    for (size_t lane = 0; lane < kMutationLanes; ++lane) {
        EXPECT_EQ(a.lanes[lane].produced, b.lanes[lane].produced)
            << lane;
        EXPECT_EQ(a.lanes[lane].admitted, b.lanes[lane].admitted)
            << lane;
    }
}

// ----------------------------------------------------------------------
// StaticPolicy identity: checkpoint-for-checkpoint against goldens
// captured from the pre-policy loop (commit before this refactor) with
// exactly these configurations. Any RNG-stream drift in the policy
// seam — an extra draw, a reordered draw — shifts every number below.
// ----------------------------------------------------------------------

TEST(StaticPolicy, ReproducesPreRefactorSyzkallerTimeline)
{
    const auto &kernel = testKernel();
    const auto opts = smallCampaign(33);
    const std::vector<GoldenPoint> golden = {
        {250, 150, 152, 4},  {500, 163, 159, 4},
        {750, 192, 178, 4},  {1000, 207, 190, 4},
        {1250, 220, 198, 4}, {1500, 237, 209, 4},
    };
    GoldenLanes lanes;
    lanes.produced = {20, 1332, 148};
    lanes.admitted = {18, 42, 14};

    Fuzzer fuzzer(kernel, opts,
                  std::make_unique<mut::RandomLocalizer>());
    expectGolden(fuzzer.run(), golden, 237, 209, 1500, 74, 4, lanes);

    CampaignOptions campaign_opts;
    campaign_opts.workers = 1;
    campaign_opts.fuzz = opts;
    auto engine = core::makeSyzkallerCampaign(kernel, campaign_opts);
    expectGolden(engine->run(), golden, 237, 209, 1500, 74, 4, lanes);
}

TEST(StaticPolicy, ReproducesPreRefactorSnowplowTimeline)
{
    const auto &kernel = testKernel();
    const auto opts = smallCampaign(77);
    core::Pmm model;  // deterministic default-initialized weights
    const std::vector<GoldenPoint> golden = {
        {250, 195, 196, 5},  {500, 225, 206, 5},
        {750, 244, 212, 5},  {1000, 252, 216, 5},
        {1250, 252, 216, 5}, {1500, 261, 224, 5},
    };
    GoldenLanes lanes;
    lanes.produced = {20, 1330, 150};
    lanes.admitted = {17, 38, 8};

    Fuzzer fuzzer(kernel, opts,
                  std::make_unique<core::PmmLocalizer>(kernel, model));
    expectGolden(fuzzer.run(), golden, 261, 224, 1500, 63, 5, lanes);

    CampaignOptions campaign_opts;
    campaign_opts.workers = 1;
    campaign_opts.fuzz = opts;
    auto engine =
        core::makeSnowplowCampaign(kernel, model, campaign_opts);
    expectGolden(engine->run(), golden, 261, 224, 1500, 63, 5, lanes);
}

// ----------------------------------------------------------------------
// Arm bookkeeping
// ----------------------------------------------------------------------

TEST(DecisionPolicy, ArmIndexIsDenseAndInvertible)
{
    ThompsonPolicy policy(PolicyOptions{});
    std::vector<bool> seen(policy.armCount(), false);
    for (size_t b = 0; b < policy.bucketCount(); ++b) {
        for (size_t op = 0; op < kOpClasses; ++op) {
            for (size_t ch = 0; ch < mut::kLocalizerChannels; ++ch) {
                const int arm = policy.armFor(
                    b, static_cast<mut::MutationType>(op),
                    static_cast<mut::LocalizerChannel>(ch));
                ASSERT_GE(arm, 0);
                ASSERT_LT(static_cast<size_t>(arm),
                          policy.armCount());
                EXPECT_FALSE(seen[static_cast<size_t>(arm)]);
                seen[static_cast<size_t>(arm)] = true;
            }
        }
    }
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                            [](bool b) { return b; }));
}

TEST(DecisionPolicy, BucketOfQuantizesAdmissionAge)
{
    ThompsonPolicy policy(PolicyOptions{});
    CorpusEntry entry;
    entry.admitted_at_exec = 0;
    EXPECT_EQ(policy.bucketOf(entry, 1000), 0u);
    entry.admitted_at_exec = 999;
    EXPECT_EQ(policy.bucketOf(entry, 1000),
              policy.bucketCount() - 1);
    entry.admitted_at_exec = 500;
    EXPECT_EQ(policy.bucketOf(entry, 1000), 2u);
    // Degenerate clock: everything is "new".
    EXPECT_EQ(policy.bucketOf(entry, 0), policy.bucketCount() - 1);
    // Admissions past the clock clamp to the last bucket.
    entry.admitted_at_exec = 5000;
    EXPECT_EQ(policy.bucketOf(entry, 1000),
              policy.bucketCount() - 1);
}

TEST(DecisionPolicy, ShardMergeIsOrderIndependent)
{
    PolicyOptions popts;
    popts.kind = PolicyKind::Thompson;

    // A deterministic event stream of (worker, arm, success) rewards,
    // replayed forward into one policy and reversed into another: the
    // merged posterior is a commutative sum, so order must not matter.
    auto replay = [&popts](DecisionPolicy &policy, bool reversed) {
        policy.beginCampaign(4);
        std::vector<std::array<uint64_t, 3>> events;
        Rng rng(123);
        for (int i = 0; i < 500; ++i) {
            events.push_back({rng.below(4),
                              rng.below(policy.armCount()),
                              rng.below(2)});
        }
        if (reversed)
            std::reverse(events.begin(), events.end());
        for (const auto &event : events) {
            Reward reward;
            reward.new_edges = static_cast<size_t>(event[2]);
            reward.slot = 1;
            policy.recordReward(static_cast<size_t>(event[0]),
                                static_cast<int>(event[1]), reward);
        }
        policy.onCheckpoint(500);
    };

    ThompsonPolicy forward(popts), backward(popts);
    replay(forward, false);
    replay(backward, true);
    uint64_t total_pulls = 0;
    for (size_t arm = 0; arm < forward.armCount(); ++arm) {
        EXPECT_EQ(forward.mergedPulls(static_cast<int>(arm)),
                  backward.mergedPulls(static_cast<int>(arm)))
            << arm;
        EXPECT_EQ(forward.mergedWins(static_cast<int>(arm)),
                  backward.mergedWins(static_cast<int>(arm)))
            << arm;
        total_pulls += forward.mergedPulls(static_cast<int>(arm));
    }
    EXPECT_EQ(total_pulls, 500u);
    // Unattributed rewards (seed-stage executions) are dropped.
    Reward reward;
    reward.new_edges = 1;
    forward.recordReward(0, -1, reward);
    forward.onCheckpoint(501);
    uint64_t after = 0;
    for (size_t arm = 0; arm < forward.armCount(); ++arm)
        after += forward.mergedPulls(static_cast<int>(arm));
    EXPECT_EQ(after, total_pulls);
}

// ----------------------------------------------------------------------
// ThompsonPolicy behavior
// ----------------------------------------------------------------------

TEST(ThompsonPolicy, PosteriorEvolutionIsDeterministic)
{
    const auto &kernel = testKernel();
    core::Pmm model;

    auto runOnce = [&](const std::shared_ptr<DecisionPolicy> &policy) {
        CampaignOptions campaign_opts;
        campaign_opts.workers = 1;
        campaign_opts.fuzz = smallCampaign(15);
        campaign_opts.fuzz.policy.kind = PolicyKind::Thompson;
        campaign_opts.fuzz.policy.custom = policy;
        auto engine =
            core::makeSnowplowCampaign(kernel, model, campaign_opts);
        return engine->run();
    };

    PolicyOptions popts;
    popts.kind = PolicyKind::Thompson;
    auto first = std::make_shared<ThompsonPolicy>(popts);
    auto second = std::make_shared<ThompsonPolicy>(popts);
    const auto report_a = runOnce(first);
    const auto report_b = runOnce(second);

    // Same seed, same worker count: identical timeline AND identical
    // posterior state arm-for-arm.
    expectSameReport(report_a, report_b);
    uint64_t total_pulls = 0;
    for (size_t arm = 0; arm < first->armCount(); ++arm) {
        EXPECT_EQ(first->mergedPulls(static_cast<int>(arm)),
                  second->mergedPulls(static_cast<int>(arm)))
            << arm;
        EXPECT_EQ(first->mergedWins(static_cast<int>(arm)),
                  second->mergedWins(static_cast<int>(arm)))
            << arm;
        total_pulls += first->mergedPulls(static_cast<int>(arm));
    }
    // Every mutation-lane execution pulled exactly one arm; only the
    // seed stage is unattributed.
    EXPECT_EQ(total_pulls,
              report_a.lane(MutationLane::Argument).produced +
                  report_a.lane(MutationLane::Structural).produced);
    EXPECT_GT(first->pmmShare(), 0.0);
    EXPECT_LE(first->pmmShare(), 1.0);
    const std::string status = first->statusJson();
    EXPECT_NE(status.find("\"kind\":\"thompson\""), std::string::npos);
    EXPECT_NE(status.find("\"channel_pulls\""), std::string::npos);
}

TEST(ThompsonPolicy, FourWorkerCampaignHoldsTheCheckpointGrid)
{
    const auto &kernel = testKernel();
    core::Pmm model;
    CampaignOptions campaign_opts;
    campaign_opts.workers = 4;
    campaign_opts.fuzz = smallCampaign(19);
    campaign_opts.fuzz.exec_budget = 2000;
    campaign_opts.fuzz.policy.kind = PolicyKind::Thompson;

    auto engine =
        core::makeSnowplowCampaign(kernel, model, campaign_opts);
    const auto report = engine->run();

    EXPECT_EQ(report.execs, 2000u);
    ASSERT_EQ(report.timeline.size(), 2000u / 250u);
    for (size_t i = 0; i < report.timeline.size(); ++i)
        EXPECT_EQ(report.timeline[i].execs, (i + 1) * 250);
    for (size_t i = 1; i < report.timeline.size(); ++i) {
        EXPECT_GE(report.timeline[i].edges,
                  report.timeline[i - 1].edges);
        EXPECT_GE(report.timeline[i].blocks,
                  report.timeline[i - 1].blocks);
    }
    EXPECT_GT(report.final_edges, 0u);
}

// ----------------------------------------------------------------------
// Localizer reward channels (the async forced-random satellite): while
// a prediction is in flight the model was *requested* but could not
// answer, and the outcome must be attributed to ForcedRandom — not to
// the model's arm, not to the deliberate-random arm.
// ----------------------------------------------------------------------

TEST(LocalizerChannel, AsyncPendingPredictionsReportForcedRandom)
{
    const auto &kernel = testKernel();
    core::Pmm model;
    core::InferenceService service(model, 1);
    core::AsyncPmmLocalizer localizer(kernel, service);
    Rng rng(9);

    // A base with argument nodes (so the query actually submits).
    auto corpus = prog::generateCorpus(rng, kernel.table(), 8);
    const prog::Prog *base = nullptr;
    for (const auto &program : corpus) {
        if (!mut::allArgLocations(program).empty()) {
            base = &program;
            break;
        }
    }
    ASSERT_NE(base, nullptr);
    exec::Executor executor(kernel);
    const auto result = executor.run(*base);

    // First sight submits the query and answers with random stand-ins.
    auto first = localizer.localizeChosen(*base, result, rng, 4, true);
    EXPECT_EQ(first.channel, mut::LocalizerChannel::ForcedRandom);
    EXPECT_FALSE(first.sites.empty());

    // Once the prediction lands, the channel flips to Model.
    auto channel = first.channel;
    for (int i = 0;
         i < 400 && channel != mut::LocalizerChannel::Model; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        channel =
            localizer.localizeChosen(*base, result, rng, 4, true)
                .channel;
    }
    EXPECT_EQ(channel, mut::LocalizerChannel::Model);

    // The policy choosing the fallback is the deliberate Random
    // channel regardless of cache state.
    EXPECT_EQ(
        localizer.localizeChosen(*base, result, rng, 4, false).channel,
        mut::LocalizerChannel::Random);
}

TEST(LocalizerChannel, SyncLocalizerReportsModelVsRandom)
{
    const auto &kernel = testKernel();
    core::Pmm model;
    core::PmmLocalizer localizer(kernel, model);
    Rng rng(9);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 1);
    exec::Executor executor(kernel);
    const auto result = executor.run(corpus[0]);

    EXPECT_EQ(localizer.localizeChosen(corpus[0], result, rng, 4, true)
                  .channel,
              mut::LocalizerChannel::Model);
    EXPECT_EQ(
        localizer.localizeChosen(corpus[0], result, rng, 4, false)
            .channel,
        mut::LocalizerChannel::Random);
    EXPECT_TRUE(localizer.learned());
    EXPECT_FALSE(mut::RandomLocalizer().learned());
}

}  // namespace
}  // namespace sp::fuzz
