/**
 * @file
 * The execution-backend seam (wtf's multiple-backend pattern).
 *
 * An ExecBackend turns one program into one ExecResult against a
 * pristine kernel snapshot. Two implementations ship today:
 *
 *  - Reference: the original interpreter — a fresh KernelState per
 *    program and CoverageSet hash insertion per trace element. It is
 *    the semantic ground truth the differential test pins the fast
 *    backend against.
 *  - Fast: dirty-tracking state restore (KernelState's undo journal:
 *    restore cost scales with state *touched*, not state *size*),
 *    an epoch-stamped dense coverage bitmap sized from the kernel's
 *    static block count (no clearing between execs — bump the epoch),
 *    and thread-local exec-arena scratch for slot buffers, traces and
 *    return-value tables.
 *
 * Both backends are bit-identical in deterministic and noisy modes —
 * same ExecResult, same coverage, same crash attribution — which is
 * what lets the fuzzing stack default to Fast while keeping Reference
 * as the differential oracle (and leaves room for a batched/JIT
 * backend behind the same seam later).
 */
#ifndef SP_EXEC_BACKEND_H
#define SP_EXEC_BACKEND_H

#include <memory>
#include <string>
#include <vector>

#include "exec/coverage.h"
#include "kernel/kernel.h"
#include "prog/value.h"
#include "util/rng.h"

namespace sp::exec {

/** Which execution backend runs the program. */
enum class BackendKind : uint8_t {
    Reference,  ///< original interpreter (differential oracle)
    Fast,       ///< dirty-restore + dense-coverage + arena scratch
};

/** Short name of a backend kind ("ref" / "fast"). */
const char *backendKindName(BackendKind kind);

/**
 * Parse a backend name ("ref", "reference", "fast") into `out`.
 * Returns false on an unknown name.
 */
bool parseBackendKind(const std::string &name, BackendKind *out);

/** Trace of one executed call. */
struct CallTrace
{
    uint32_t call_index = 0;
    uint32_t syscall_id = 0;
    std::vector<uint32_t> blocks;
    uint64_t ret = 0;
    bool crashed = false;
};

/** Result of executing a whole program. */
struct ExecResult
{
    std::vector<CallTrace> calls;
    CoverageSet coverage;
    bool crashed = false;
    uint32_t bug_index = 0;   ///< valid when crashed
    size_t crash_call = 0;    ///< call index that crashed
};

/**
 * One execution strategy over one kernel. Backends are stateful
 * (scratch, persistent snapshots) and not thread-safe: each Executor
 * owns one and drives it from one thread at a time, exactly like the
 * Executor itself.
 */
class ExecBackend
{
  public:
    explicit ExecBackend(const kern::Kernel &kernel) : kernel_(kernel) {}
    virtual ~ExecBackend() = default;

    ExecBackend(const ExecBackend &) = delete;
    ExecBackend &operator=(const ExecBackend &) = delete;

    /**
     * Execute `prog` from the pristine kernel snapshot. `noise` is the
     * executor's nondeterministic timing source, or nullptr in
     * deterministic mode; a backend must consume it exactly as the
     * reference backend does (the bit-identity contract covers the
     * noise stream).
     */
    virtual ExecResult run(const prog::Prog &prog, Rng *noise) = 0;

    virtual BackendKind kind() const = 0;

    const kern::Kernel &kernel() const { return kernel_; }

  protected:
    const kern::Kernel &kernel_;
};

/** Build a backend of `kind` over `kernel`. */
std::unique_ptr<ExecBackend> makeExecBackend(const kern::Kernel &kernel,
                                             BackendKind kind);

}  // namespace sp::exec

#endif  // SP_EXEC_BACKEND_H
