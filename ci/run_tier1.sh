#!/usr/bin/env bash
# Tier-1 verification + telemetry smoke test.
#
# Builds the tree, runs every ctest suite, then drives a short
# snowplow_cli campaign with --metrics-out and asserts the emitted file
# is valid JSONL carrying the events and registry snapshot the
# observability layer promises (see DESIGN.md "Observability").
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

baseline=$(mktemp /tmp/sp_ci_baseline.XXXXXX.jsonl)
snowplow=$(mktemp /tmp/sp_ci_snowplow.XXXXXX.jsonl)
ckpt=$(mktemp /tmp/sp_ci_pmm.XXXXXX.ckpt)
trap 'rm -f "$baseline" "$snowplow" "$ckpt"' EXIT

# validate_jsonl FILE REQUIRED_EVENT... — every line parses, every
# required event type appears, and the registry snapshot carries the
# headline metrics.
validate_jsonl() {
    python3 - "$@" <<'PY'
import json
import sys

path, required = sys.argv[1], sys.argv[2:]
events = {}
snapshot = None
with open(path) as f:
    for lineno, line in enumerate(f, 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}:{lineno}: invalid JSON: {e}")
        if "ev" not in record or "t_us" not in record:
            sys.exit(f"{path}:{lineno}: missing ev/t_us")
        events[record["ev"]] = events.get(record["ev"], 0) + 1
        if record["ev"] == "registry_snapshot":
            snapshot = record["registry"]

for ev in required:
    if ev not in events:
        sys.exit(f"{path}: missing required event type: {ev}")
if snapshot is None:
    sys.exit(f"{path}: no registry snapshot")
if "campaign_summary" in required:
    counters = snapshot["counters"]
    if counters.get("fuzz.execs", 0) < 5000:
        sys.exit(f"{path}: fuzz.execs too low: "
                 f"{counters.get('fuzz.execs')}")
    if snapshot["gauges"].get("fuzz.execs_per_sec", 0) <= 0:
        sys.exit(f"{path}: fuzz.execs_per_sec not set")
    if "fuzz.mutant_success.arg" not in snapshot["gauges"]:
        sys.exit(f"{path}: fuzz.mutant_success.arg not set")
    if snapshot["histograms"]["exec.run_us"]["count"] < 5000:
        sys.exit(f"{path}: exec.run_us histogram underpopulated")
if "inference_latency" in required:
    latency = snapshot["histograms"].get("infer.latency_us", {})
    if latency.get("count", 0) <= 0 or "p95" not in latency:
        sys.exit(f"{path}: infer.latency_us p95 missing")
print(f"{path}: {sum(events.values())} events "
      f"({', '.join(f'{k}x{v}' for k, v in sorted(events.items()))})")
PY
}

# Stage 1: baseline campaign — coverage/mutation/crash telemetry.
./build/examples/snowplow_cli fuzz --budget 5000 --seed 1 \
    --metrics-out "$baseline" > /dev/null
validate_jsonl "$baseline" \
    coverage_checkpoint mutation_outcome campaign_summary \
    registry_snapshot

# Stage 2: train a small PMM, then an async-inference Snowplow
# campaign — adds train_epoch and inference_latency telemetry.
./build/examples/snowplow_cli train --corpus 80 --mutations 80 \
    --epochs 2 --out "$ckpt" > /dev/null 2>&1
./build/examples/snowplow_cli fuzz --budget 5000 --seed 1 \
    --pmm "$ckpt" --async 2 --metrics-out "$snowplow" > /dev/null
validate_jsonl "$snowplow" \
    coverage_checkpoint mutation_outcome inference_latency \
    campaign_summary registry_snapshot

# Stage 3: ThreadSanitizer pass over the concurrency-bearing suites —
# the sharded corpus, campaign engine, prediction cache and telemetry
# registry all run multi-threaded in production, so they must be clean
# under -fsanitize=thread (a separate build tree; TSan and the regular
# flags cannot share objects).
cmake -B build-tsan -S . -DSP_SANITIZE=thread
cmake --build build-tsan -j"$(nproc)" --target \
    fuzz_test campaign_test fuzz_ext_test core_test core_ext_test \
    obs_test
ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
    -R '^(fuzz_test|campaign_test|fuzz_ext_test|core_test|core_ext_test|obs_test)$'

# Stage 4: NN hot-path perf smoke — run the GEMM / inference-latency /
# service-throughput benchmarks briefly (min_time is a bare double;
# this google-benchmark predates unit suffixes) and keep the JSON
# report as a build artifact for eyeballing regressions.
./build/bench/sec55_perf \
    --benchmark_filter='BM_RawMatmul|BM_PmmInferenceLatency|BM_InferenceServiceThroughput/workers:1' \
    --benchmark_min_time=0.01 \
    --benchmark_out=BENCH_sec55.json --benchmark_out_format=json \
    > /dev/null
python3 - <<'PY'
import json

with open("BENCH_sec55.json") as f:
    report = json.load(f)
names = [b["name"] for b in report["benchmarks"]]
for needle in ("BM_RawMatmul", "BM_PmmInferenceLatency",
               "BM_InferenceServiceThroughput"):
    if not any(needle in n for n in names):
        raise SystemExit(f"BENCH_sec55.json: missing {needle} results")
print(f"BENCH_sec55.json: {len(names)} benchmark results")
PY

echo "tier-1 + telemetry + perf smoke: OK"
