/**
 * @file
 * The coverage-guided fuzzing loop (Figure 1 of the paper).
 *
 * One Fuzzer owns an executor, a corpus, a crash log and a mutation
 * engine. Each iteration runs the staged pipeline shared with the
 * multi-worker campaign engine (campaign.h): schedule (pick a base
 * test), localize (ask the pluggable Localizer where to mutate
 * arguments), instantiate, execute, triage/admit, checkpoint. Call
 * insertion/removal mutations run alongside with their Syzkaller
 * weights. Swapping the Localizer is exactly how Snowplow is built on
 * top of this loop (src/core/snowplow.h).
 *
 * Time is virtual: the budget is counted in executed programs, the
 * resource both compared systems share (§5.3's same-machine-cost
 * comparison). Coverage is checkpointed on a fixed execution grid so
 * runs are directly comparable. The Fuzzer itself stays
 * single-threaded; CampaignEngine runs the same stages over N workers
 * and reproduces this loop bit-for-bit at `workers = 1`.
 */
#ifndef SP_FUZZ_FUZZER_H
#define SP_FUZZ_FUZZER_H

#include <array>
#include <functional>
#include <memory>

#include "fuzz/corpus.h"
#include "fuzz/crash.h"
#include "fuzz/policy.h"
#include "fuzz/sched.h"
#include "mutate/mutator.h"

namespace sp::obs {
class CovMap;
class TimelineRecorder;
}

namespace sp::fuzz {

/** Fuzzing-loop configuration. */
struct FuzzOptions
{
    uint64_t exec_budget = 50000;     ///< program executions ("time")
    size_t seed_corpus_size = 40;
    /**
     * Programs executed ahead of the generated seed corpus (the fleet
     * coordinator's seed batches enter a node's lease campaign here).
     * Empty — the default — leaves the seed stage byte-for-byte the
     * legacy generate-and-execute path.
     */
    std::vector<prog::Prog> injected_seeds;
    uint64_t seed = 1;
    bool noisy = true;                ///< nondeterministic execution
    uint64_t checkpoint_every = 500;  ///< coverage timeline grid
    /** Instantiations per localized argument site. */
    size_t mutations_per_site = 3;
    /** Max argument sites requested from the localizer per base. */
    size_t max_sites_per_base = 6;
    /** Non-argument (insert/remove) mutants per base pick. */
    size_t structural_mutations_per_base = 2;
    mut::MutatorOptions mutator;
    /**
     * The decision policy driving scheduling, operator choice, and
     * PMM-vs-random arbitration (policy.h). The default StaticPolicy
     * reproduces the historical loop bit-for-bit; `policy.kind =
     * Thompson` switches every decision to the bandit.
     */
    PolicyOptions policy;
    /**
     * Optional scheduler (Figure 1's choose_test as a stage): picks the
     * corpus entry to mutate. Consumed by StaticPolicy as its pick
     * adapter (ignored by ThompsonPolicy, which schedules from the
     * posterior). Shared across campaign workers, so implementations
     * must be safe for concurrent pick() calls. When unset,
     * `choose_test` (below) or the recency-biased default runs.
     */
    std::shared_ptr<Scheduler> scheduler;
    /**
     * Legacy choose_test hook; wrapped in a HookScheduler when
     * `scheduler` is unset. Prefer `scheduler` for new code.
     */
    std::function<const CorpusEntry &(const Corpus &, Rng &)> choose_test;
    /**
     * Optional coverage-cartography accumulator (obs/covmap.h, not
     * owned; must outlive the run). Workers record per-call block
     * traces into their shard after every execution and the in-order
     * checkpoint owner merges + emits one snapshot window per grid
     * boundary. Null = hit-count profiling off (zero overhead).
     */
    obs::CovMap *covmap = nullptr;
    /**
     * Optional campaign timeline recorder (obs/timeline.h, not owned;
     * must outlive the run). The in-order checkpoint owner hands it
     * one tick per grid boundary — campaign facts plus the covmap and
     * policy merged state — and it samples the metrics registry under
     * that serialization. Null = no metric history (zero overhead).
     */
    obs::TimelineRecorder *timeline = nullptr;
    /**
     * Execution backend for every worker executor. Bit-identical
     * either way (exec/backend.h); Reference exists for differential
     * runs and A/B throughput measurements.
     */
    exec::BackendKind exec_backend = exec::BackendKind::Fast;
};

/** Which mutation lane produced a program (telemetry attribution). */
enum class MutationLane {
    Seed,        ///< generated seed-corpus program
    Argument,    ///< localized argument mutation
    Structural,  ///< selector-driven insert/remove/random-arg lane
};

/** MutationLane as a dense array index. */
constexpr size_t kMutationLanes = 3;
constexpr size_t
laneIndex(MutationLane lane)
{
    return static_cast<size_t>(lane);
}

/** One coverage checkpoint. */
struct Checkpoint
{
    uint64_t execs = 0;
    size_t edges = 0;
    size_t blocks = 0;
    size_t crashes = 0;
};

/** Per-lane production/admission totals of one campaign. */
struct LaneCounts
{
    uint64_t produced = 0;
    uint64_t admitted = 0;
};

/** Outcome of one fuzzing campaign. */
struct FuzzReport
{
    std::vector<Checkpoint> timeline;
    size_t final_edges = 0;
    size_t final_blocks = 0;
    uint64_t execs = 0;
    size_t corpus_size = 0;
    /** Unique (deduplicated) crashes at budget end. */
    size_t final_crashes = 0;
    /** Mutants produced/admitted per lane, indexed by laneIndex(). */
    std::array<LaneCounts, kMutationLanes> lanes{};

    const LaneCounts &
    lane(MutationLane which) const
    {
        return lanes[laneIndex(which)];
    }
};

/** The single-threaded fuzzing loop. */
class Fuzzer
{
  public:
    /**
     * @param kernel     kernel under test
     * @param options    loop configuration
     * @param localizer  argument-mutation localizer (ownership taken)
     */
    Fuzzer(const kern::Kernel &kernel, FuzzOptions options,
           std::unique_ptr<mut::Localizer> localizer);

    /** Run until the execution budget is exhausted. */
    FuzzReport run();

    /**
     * Run until `stop` returns true or the budget is exhausted. The
     * predicate sees the fuzzer after every execution (directed mode
     * uses this to stop on reaching the target).
     */
    FuzzReport runUntil(const std::function<bool(const Fuzzer &)> &stop);

    /** @name Introspection */
    /** @{ */
    const Corpus &corpus() const { return corpus_; }
    CrashLog &crashes() { return crashes_; }
    const CrashLog &crashes() const { return crashes_; }
    uint64_t execs() const { return execs_; }
    const kern::Kernel &kernel() const { return kernel_; }
    /** @} */

  private:
    const kern::Kernel &kernel_;
    FuzzOptions opts_;
    std::unique_ptr<mut::Localizer> localizer_;
    std::shared_ptr<DecisionPolicy> policy_;
    mut::Mutator mutator_;
    exec::Executor executor_;
    Corpus corpus_;
    CrashLog crashes_;
    Rng rng_;
    uint64_t execs_ = 0;
    std::vector<Checkpoint> timeline_;
    size_t last_checkpoint_edges_ = 0;  ///< telemetry edge deltas
};

}  // namespace sp::fuzz

#endif  // SP_FUZZ_FUZZER_H
