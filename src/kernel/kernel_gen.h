/**
 * @file
 * Deterministic synthetic kernel generation.
 *
 * generateKernel builds a kernel whose system-call interface and handler
 * control flow follow the statistical shape that makes real kernel
 * fuzzing hard: many argument slots per call (nested structs, buffers,
 * flags), handler CFGs whose branches test *specific* argument slots
 * against values from the argument's declared domain, nested guarded
 * regions (reaching depth d requires d slots simultaneously correct),
 * cross-call state dependencies (resources, state flags), and bugs
 * planted in the deep regions.
 *
 * The `evolution` parameter derives "newer kernel versions" from the
 * same seed: each evolution round appends new guarded regions to
 * existing handlers and adds a new system call, leaving the existing
 * structure intact — the analog of fuzzing Linux 6.9/6.10 with a model
 * trained on 6.8 (paper §5.3).
 */
#ifndef SP_KERNEL_KERNEL_GEN_H
#define SP_KERNEL_KERNEL_GEN_H

#include <string>

#include "kernel/kernel.h"

namespace sp::kern {

/** Tuning knobs for synthetic kernel generation. */
struct KernelGenParams
{
    uint64_t seed = 1;
    int num_syscalls = 18;
    int num_resource_kinds = 3;
    int num_state_flags = 6;
    /** Extra top-level arguments per syscall beyond any resource. */
    int min_extra_args = 2;
    int max_extra_args = 4;
    /** Handler trunk length. */
    int trunk_min = 5;
    int trunk_max = 10;
    /** Probability a trunk/body block sprouts a guarded region. */
    double branch_prob = 0.55;
    /** Maximum nesting depth of guarded regions. */
    int max_depth = 3;
    /** Bugs planted in regions of depth >= 2 (new/unknown bugs). */
    int deep_bugs = 10;
    /** Bugs planted at depth 1 (already in the known-crash list). */
    int shallow_bugs = 5;
    /** Fraction of deep bugs requiring a nondeterministic timing bit. */
    double flaky_frac = 0.35;
    /** Version-evolution rounds applied after the base build. */
    int evolution = 0;
    std::string version = "6.8";
};

class KernelBuilder;

/**
 * Append the synthetic bulk (timer handler, generated syscalls,
 * evolution rounds, planted bugs) onto an in-progress builder. Bug
 * planting considers every block present in the builder, so subsystems
 * added beforehand get bugs planted into their deep regions too —
 * except blocks that already carry a hand-planted bug.
 */
void appendSyntheticBulk(KernelBuilder &builder,
                         const KernelGenParams &params);

/** Build a purely synthetic kernel. Deterministic in `params`. */
Kernel generateKernel(const KernelGenParams &params);

}  // namespace sp::kern

#endif  // SP_KERNEL_KERNEL_GEN_H
