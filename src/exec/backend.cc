#include "exec/backend.h"

#include <chrono>

#include "exec/arena.h"
#include "obs/metrics.h"
#include "prog/flatten.h"
#include "util/logging.h"

namespace sp::exec {

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Reference:
        return "ref";
      case BackendKind::Fast:
        return "fast";
    }
    SP_PANIC("unreachable backend kind");
}

bool
parseBackendKind(const std::string &name, BackendKind *out)
{
    if (name == "ref" || name == "reference") {
        *out = BackendKind::Reference;
        return true;
    }
    if (name == "fast") {
        *out = BackendKind::Fast;
        return true;
    }
    return false;
}

namespace {

/**
 * The original interpreter: fresh KernelState per program, CoverageSet
 * hash insertion per trace element. Per-call scratch (the flattened
 * slot buffer and the return-value table) is reused across calls and
 * runs — an observable no-op that the reference loop benefits from
 * too — but the algorithm is untouched: this backend is the semantic
 * ground truth for the differential test.
 */
class ReferenceBackend final : public ExecBackend
{
  public:
    explicit ReferenceBackend(const kern::Kernel &kernel)
        : ExecBackend(kernel)
    {
    }

    BackendKind kind() const override { return BackendKind::Reference; }

    ExecResult
    run(const prog::Prog &prog, Rng *noise) override
    {
        ExecResult result;
        kern::KernelState state = kernel_.initialState();

        rets_.assign(prog.calls.size(), prog::kBadHandle);
        result.calls.reserve(prog.calls.size());

        for (size_t i = 0; i < prog.calls.size(); ++i) {
            const prog::Call &call = prog.calls[i];
            SP_ASSERT(call.decl != nullptr, "call %zu has no decl", i);

            auto resolver = [&](int32_t ref) -> uint64_t {
                if (ref < 0 || static_cast<size_t>(ref) >= i)
                    return prog::kBadHandle;
                return rets_[static_cast<size_t>(ref)];
            };
            prog::flattenCallInto(call, resolver, slots_);

            CallTrace trace;
            trace.call_index = static_cast<uint32_t>(i);
            trace.syscall_id = call.decl->id;
            kern::CallResult call_result = kernel_.executeCall(
                call.decl->id, slots_, state, trace.blocks, noise);

            rets_[i] = call_result.ret;
            trace.ret = call_result.ret;
            trace.crashed = call_result.crashed;
            result.coverage.addTrace(trace.blocks);
            result.calls.push_back(std::move(trace));

            if (call_result.crashed) {
                result.crashed = true;
                result.bug_index = call_result.bug_index;
                result.crash_call = i;
                break;  // the "VM" is dead
            }
        }
        return result;
    }

  private:
    std::vector<uint64_t> slots_;
    std::vector<uint64_t> rets_;
};

/**
 * The dirty-restore backend. One persistent KernelState journals every
 * mutation during a run and rolls back only the touched entries
 * afterwards; coverage dedups through the epoch-stamped dense bitmap
 * and converts to a CoverageSet once per program; all per-call scratch
 * comes from the thread-local ExecArena. Bit-identical to the
 * reference backend by construction: the CFG walk itself is the same
 * kern::Kernel::executeCall, fed the same slots and the same noise
 * stream.
 */
class FastBackend final : public ExecBackend
{
  public:
    explicit FastBackend(const kern::Kernel &kernel)
        : ExecBackend(kernel), state_(kernel.initialState())
    {
        const auto &blocks = kernel.blocks();
        succ_.resize(blocks.size());
        for (size_t i = 0; i < blocks.size(); ++i) {
            const kern::BasicBlock &bb = blocks[i];
            switch (bb.term) {
              case kern::Term::Return:
                break;
              case kern::Term::Fallthrough:
                succ_[i].taken = bb.taken;
                break;
              case kern::Term::Branch:
                succ_[i].taken = bb.taken;
                succ_[i].fallthrough = bb.fallthrough;
                break;
            }
        }
        state_.beginJournal();
    }

    BackendKind kind() const override { return BackendKind::Fast; }

    ExecResult
    run(const prog::Prog &prog, Rng *noise) override
    {
        ExecArena &arena = ExecArena::local();
        ++arena.programs;
        coverage_.bind(succ_.data(), succ_.size());
        coverage_.beginExec();

        ExecResult result;
        arena.rets.assign(prog.calls.size(), prog::kBadHandle);
        result.calls.reserve(prog.calls.size());

        // One type-erased resolver for the whole program (constructing
        // a std::function per call shows up at this call rate); the
        // current call index is read through the capture.
        size_t current_call = 0;
        const prog::ResourceResolver resolver =
            [&arena, &current_call](int32_t ref) -> uint64_t {
            if (ref < 0 || static_cast<size_t>(ref) >= current_call)
                return prog::kBadHandle;
            return arena.rets[static_cast<size_t>(ref)];
        };

        for (size_t i = 0; i < prog.calls.size(); ++i) {
            const prog::Call &call = prog.calls[i];
            SP_ASSERT(call.decl != nullptr, "call %zu has no decl", i);

            current_call = i;
            prog::flattenCallInto(call, resolver, arena.slots);

            arena.trace.clear();
            kern::CallResult call_result = kernel_.executeCall(
                call.decl->id, arena.slots, state_, arena.trace, noise);
            coverage_.addTrace(arena.trace.data(), arena.trace.size());

            CallTrace trace;
            trace.call_index = static_cast<uint32_t>(i);
            trace.syscall_id = call.decl->id;
            trace.blocks.assign(arena.trace.begin(), arena.trace.end());
            trace.ret = call_result.ret;
            trace.crashed = call_result.crashed;
            arena.rets[i] = call_result.ret;
            result.calls.push_back(std::move(trace));

            if (call_result.crashed) {
                result.crashed = true;
                result.bug_index = call_result.bug_index;
                result.crash_call = i;
                break;  // the "VM" is dead
            }
        }
        coverage_.exportTo(result.coverage);
        restore();
        return result;
    }

  private:
    /** Roll the persistent state back to the pristine snapshot and
     *  record the restore cost (`exec.restore_us`, dirty entries). */
    void
    restore()
    {
        if (!obs::timingEnabled()) {
            state_.rollback();
            return;
        }
        static obs::Histogram &restore_hist =
            obs::Registry::global().histogram("exec.restore_us");
        static obs::Histogram &dirty_hist =
            obs::Registry::global().histogram("exec.dirty_entries");
        dirty_hist.record(static_cast<double>(state_.dirtyCount()));
        const auto start = std::chrono::steady_clock::now();
        state_.rollback();
        const auto end = std::chrono::steady_clock::now();
        restore_hist.record(
            std::chrono::duration<double, std::micro>(end - start)
                .count());
    }

    kern::KernelState state_;  ///< journaled pristine snapshot
    std::vector<DenseCoverage::Successors> succ_;
    DenseCoverage coverage_;
};

}  // namespace

std::unique_ptr<ExecBackend>
makeExecBackend(const kern::Kernel &kernel, BackendKind kind)
{
    switch (kind) {
      case BackendKind::Reference:
        return std::make_unique<ReferenceBackend>(kernel);
      case BackendKind::Fast:
        return std::make_unique<FastBackend>(kernel);
    }
    SP_PANIC("unreachable backend kind");
}

}  // namespace sp::exec
