#!/usr/bin/env bash
# Tier-1 verification + telemetry smoke test.
#
# Builds the tree, runs every ctest suite, then drives a short
# snowplow_cli campaign with --metrics-out and asserts the emitted file
# is valid JSONL carrying the events and registry snapshot the
# observability layer promises (see DESIGN.md "Observability").
#
# Stage index:
#   1  baseline campaign telemetry (JSONL events + registry snapshot)
#   2  PMM train + async-inference campaign telemetry
#   3  ThreadSanitizer pass over the concurrency-bearing suites
#   4  perf gates: NN/trace/exec micro benches + covmap overhead
#   5  introspection smoke: /metrics /status /coverage /timeline
#      scraped over HTTP, trace_event export validated
#   6  coverage-cartography round trip (covmap log -> analyze ->
#      fuzz --directed-from)
#   7  dataset store round trip + streaming-training parity
#   8  decision-policy ablation sweep gate (thompson >= static)
#   9  timeline observatory: artifact/report schema checks, compare
#      gate vs the committed BENCH_timeline.json baseline,
#      static-vs-thompson verdict, recording-overhead gate (<1% of a
#      checkpoint interval)
#  10  fleet fabric: localhost coordinator + 4 nodes (one abandons its
#      first lease mid-campaign) drain the stage-9 campaign budget;
#      the merged fleet timeline must be regression-free vs the
#      committed BENCH_timeline.json; coordinator /status and /metrics
#      validated against fleet_status.schema.json and the [fleet]
#      section of metrics.required.txt
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

baseline=$(mktemp /tmp/sp_ci_baseline.XXXXXX.jsonl)
snowplow=$(mktemp /tmp/sp_ci_snowplow.XXXXXX.jsonl)
ckpt=$(mktemp /tmp/sp_ci_pmm.XXXXXX.ckpt)
trap 'rm -f "$baseline" "$snowplow" "$ckpt"' EXIT

# validate_jsonl FILE REQUIRED_EVENT... — every line parses, every
# required event type appears, and the registry snapshot carries the
# headline metrics.
validate_jsonl() {
    python3 - "$@" <<'PY'
import json
import sys

path, required = sys.argv[1], sys.argv[2:]
events = {}
snapshot = None
with open(path) as f:
    for lineno, line in enumerate(f, 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}:{lineno}: invalid JSON: {e}")
        if "ev" not in record or "t_us" not in record:
            sys.exit(f"{path}:{lineno}: missing ev/t_us")
        events[record["ev"]] = events.get(record["ev"], 0) + 1
        if record["ev"] == "registry_snapshot":
            snapshot = record["registry"]

for ev in required:
    if ev not in events:
        sys.exit(f"{path}: missing required event type: {ev}")
if snapshot is None:
    sys.exit(f"{path}: no registry snapshot")
if "campaign_summary" in required:
    counters = snapshot["counters"]
    if counters.get("fuzz.execs", 0) < 5000:
        sys.exit(f"{path}: fuzz.execs too low: "
                 f"{counters.get('fuzz.execs')}")
    if snapshot["gauges"].get("fuzz.execs_per_sec", 0) <= 0:
        sys.exit(f"{path}: fuzz.execs_per_sec not set")
    if "fuzz.mutant_success.arg" not in snapshot["gauges"]:
        sys.exit(f"{path}: fuzz.mutant_success.arg not set")
    if snapshot["histograms"]["exec.run_us"]["count"] < 5000:
        sys.exit(f"{path}: exec.run_us histogram underpopulated")
if "inference_latency" in required:
    latency = snapshot["histograms"].get("infer.latency_us", {})
    if latency.get("count", 0) <= 0 or "p95" not in latency:
        sys.exit(f"{path}: infer.latency_us p95 missing")
print(f"{path}: {sum(events.values())} events "
      f"({', '.join(f'{k}x{v}' for k, v in sorted(events.items()))})")
PY
}

# Stage 1: baseline campaign — coverage/mutation/crash telemetry.
./build/examples/snowplow_cli fuzz --budget 5000 --seed 1 \
    --metrics-out "$baseline" > /dev/null
validate_jsonl "$baseline" \
    coverage_checkpoint mutation_outcome campaign_summary \
    registry_snapshot

# Stage 2: train a small PMM, then an async-inference Snowplow
# campaign — adds train_epoch and inference_latency telemetry.
./build/examples/snowplow_cli train --corpus 80 --mutations 80 \
    --epochs 2 --out "$ckpt" > /dev/null 2>&1
./build/examples/snowplow_cli fuzz --budget 5000 --seed 1 \
    --pmm "$ckpt" --async 2 --metrics-out "$snowplow" > /dev/null
validate_jsonl "$snowplow" \
    coverage_checkpoint mutation_outcome inference_latency \
    campaign_summary registry_snapshot

# Stage 3: ThreadSanitizer pass over the concurrency-bearing suites —
# the sharded corpus, campaign engine, prediction cache and telemetry
# registry all run multi-threaded in production, so they must be clean
# under -fsanitize=thread (a separate build tree; TSan and the regular
# flags cannot share objects).
cmake -B build-tsan -S . -DSP_SANITIZE=thread
cmake --build build-tsan -j"$(nproc)" --target \
    fuzz_test campaign_test policy_test fuzz_ext_test core_test \
    core_ext_test obs_test trace_test data_test covmap_test \
    exec_backend_test timeline_test fleet_test
ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
    -R '^(fuzz_test|campaign_test|policy_test|fuzz_ext_test|core_test|core_ext_test|obs_test|trace_test|data_test|covmap_test|exec_backend_test|timeline_test|fleet_test)$'

# Stage 4: NN hot-path perf smoke — run the GEMM / inference-latency /
# service-throughput benchmarks briefly (min_time is a bare double;
# this google-benchmark predates unit suffixes) and keep the JSON
# report as a build artifact for eyeballing regressions. The tracer
# benchmarks also gate the disabled path: with no tracer installed an
# instrumentation site must cost so little that a full slot's worth of
# span sites stays under 1% of the slot itself.
./build/bench/sec55_perf \
    --benchmark_filter='BM_RawMatmul|BM_PmmInferenceLatency|BM_InferenceServiceThroughput/workers:1|BM_TraceSpanDisabled|BM_TraceOverhead|BM_ExecThroughput' \
    --benchmark_min_time=0.01 \
    --benchmark_out=BENCH_sec55.json --benchmark_out_format=json \
    > /dev/null
python3 - <<'PY'
import json

with open("BENCH_sec55.json") as f:
    report = json.load(f)
names = [b["name"] for b in report["benchmarks"]]
for needle in ("BM_RawMatmul", "BM_PmmInferenceLatency",
               "BM_InferenceServiceThroughput", "BM_TraceSpanDisabled",
               "BM_TraceOverhead", "BM_ExecThroughput"):
    if not any(needle in n for n in names):
        raise SystemExit(f"BENCH_sec55.json: missing {needle} results")

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

def time_ns(needle):
    bench = next(b for b in report["benchmarks"] if needle in b["name"])
    return bench["real_time"] * UNIT_NS[bench["time_unit"]]

# Disabled-path gate: ~6 span/status sites fire per pipeline slot
# (schedule, localize, instantiate, execute, triage, board update).
span_ns = time_ns("BM_TraceSpanDisabled")
slot_ns = time_ns("BM_TraceOverhead/traced:0")
overhead = 6.0 * span_ns / slot_ns
print(f"BENCH_sec55.json: {len(names)} benchmark results; "
      f"disabled-path span {span_ns:.1f} ns, slot {slot_ns:.0f} ns "
      f"-> {100.0 * overhead:.3f}% per slot")
if overhead >= 0.01:
    raise SystemExit("tracing-disabled overhead exceeds 1% of a slot")

# Exec-backend gate: the fast backend (dirty-state restore + dense
# coverage, the campaign default) must hold >=3x the reference
# interpreter's single-thread program throughput (ISSUE acceptance).
def progs_per_sec(needle):
    bench = next(b for b in report["benchmarks"] if needle in b["name"])
    return bench["items_per_second"]

ref = progs_per_sec("BM_ExecThroughput/fast:0/real_time/threads:1")
fast = progs_per_sec("BM_ExecThroughput/fast:1/real_time/threads:1")
speedup = fast / ref
print(f"BENCH_sec55.json: exec backend ref {ref / 1e3:.0f}k "
      f"fast {fast / 1e3:.0f}k programs/sec -> {speedup:.2f}x")
if speedup < 3.0:
    raise SystemExit(
        f"fast exec backend speedup {speedup:.2f}x below the 3x gate")
PY

# Coverage-cartography perf gate: hit recording must cost under 2% of
# a full campaign slot, and the disabled site must be unmeasurable.
# The ratio is derived from the stable micro numbers (per-program
# recording cost / per-execution campaign slot cost) rather than by
# differencing two noisy end-to-end runs; the end-to-end enabled:0/1
# pair still lands in BENCH_covmap.json for eyeballing.
./build/bench/covmap \
    --benchmark_min_time=0.02 \
    --benchmark_out=BENCH_covmap.json --benchmark_out_format=json \
    > /dev/null
python3 - <<'PY'
import json

with open("BENCH_covmap.json") as f:
    report = json.load(f)
names = [b["name"] for b in report["benchmarks"]]
for needle in ("BM_CovmapOverhead/enabled:0", "BM_CovmapOverhead/enabled:1",
               "BM_CovmapDisabledSite", "BM_CovmapRecordProgram",
               "BM_CovmapMerge"):
    if not any(needle in n for n in names):
        raise SystemExit(f"BENCH_covmap.json: missing {needle} results")

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

def bench(needle):
    return next(b for b in report["benchmarks"] if needle in b["name"])

def time_ns(needle):
    b = bench(needle)
    return b["real_time"] * UNIT_NS[b["time_unit"]]

# Per-execution cost of one plain campaign slot (schedule through
# checkpoint; items are executions).
slot_ns = 1e9 / bench("BM_CovmapOverhead/enabled:0")["items_per_second"]
record_ns = time_ns("BM_CovmapRecordProgram")  # per executed program
site_ns = time_ns("BM_CovmapDisabledSite")     # null-shard branch
enabled = record_ns / slot_ns
disabled = site_ns / slot_ns
print(f"BENCH_covmap.json: slot {slot_ns:.0f} ns, "
      f"record {record_ns:.1f} ns/exec, site {site_ns:.2f} ns -> "
      f"enabled {100.0 * enabled:.2f}%, "
      f"disabled {100.0 * disabled:.4f}% per slot")
if enabled >= 0.02:
    raise SystemExit("covmap hit-recording overhead exceeds 2% of a slot")
if disabled >= 0.0001:
    raise SystemExit("covmap disabled-site overhead is measurable")
PY

# Stage 5: introspection smoke — a short multi-worker campaign with
# span tracing and the status server up, scraped over HTTP while the
# process idles in --status-hold. Validates /metrics, /status,
# /coverage and /timeline against the checked-in schemas (ci/schemas/)
# and that the exported trace parses as Chrome trace_event JSON
# covering the pipeline.
trace_json=$(mktemp /tmp/sp_ci_trace.XXXXXX.json)
introspect=$(mktemp /tmp/sp_ci_introspect.XXXXXX.jsonl)
cov_live=$(mktemp /tmp/sp_ci_covlive.XXXXXX.jsonl)
tl_live=$(mktemp /tmp/sp_ci_tllive.XXXXXX.jsonl)
trap 'rm -f "$baseline" "$snowplow" "$ckpt" "$trace_json" "$introspect" "$cov_live" "$tl_live"' EXIT
python3 - "$trace_json" "$introspect" "$cov_live" "$tl_live" <<'PY'
import json
import re
import subprocess
import sys
import urllib.request

trace_path, metrics_path, covmap_path, timeline_path = sys.argv[1:5]
proc = subprocess.Popen(
    ["./build/examples/snowplow_cli", "fuzz",
     "--budget", "5000", "--seed", "1", "--workers", "4",
     "--metrics-out", metrics_path,
     "--covmap-out", covmap_path,
     "--timeline-out", timeline_path,
     "--trace-out", trace_path, "--trace-sample", "1",
     "--status-port", "0", "--status-hold", "1"],
    stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)

# The driver owns stdin: --status-hold blocks on it until released.
port = None
final_seen = False
for line in proc.stdout:
    match = re.match(r"status server listening on port (\d+)", line)
    if match:
        port = int(match.group(1))
    final_seen |= line.startswith("final:")
    if line.startswith("status-hold:"):
        break
if port is None:
    sys.exit("introspection smoke: no status-server port line")
if not final_seen:
    sys.exit("introspection smoke: campaign never printed final:")

def get(path):
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10) as response:
        return response.read().decode()

with open("ci/schemas/status.schema.json") as f:
    schema = json.load(f)

TYPES = {"int": int, "str": str, "list": list, "dict": dict}

def check(obj, spec, where):
    for key, type_name in spec.items():
        if key not in obj:
            sys.exit(f"/status: {where} missing key {key!r}")
        if not isinstance(obj[key], TYPES[type_name]):
            sys.exit(f"/status: {where}.{key} is not {type_name}")

status = json.loads(get("/status"))
check(status, schema["required"], "top level")
if len(status["workers"]) != 4:
    sys.exit(f"/status: expected 4 workers, got {len(status['workers'])}")
for worker in status["workers"]:
    check(worker, schema["worker"], f"workers[{worker.get('id')}]")
    if worker["stage"] not in schema["worker_stages"]:
        sys.exit(f"/status: unknown stage {worker['stage']!r}")
check(status["campaign"], schema["campaign"], "campaign")
if status["campaign"]["completed"] < 5000:
    sys.exit("/status: campaign.completed below the budget")

metrics = get("/metrics")
# The unsectioned prefix of metrics.required.txt applies to every
# fuzz campaign; [role] sections below it (e.g. [fleet]) are checked
# by their own stages.
required = []
with open("ci/schemas/metrics.required.txt") as f:
    for line in f:
        line = line.strip()
        if line.startswith("["):
            break
        if line and not line.startswith("#"):
            required.append(line)
for name in required:
    if not re.search(rf"^{re.escape(name)}(\{{| )", metrics, re.M):
        sys.exit(f"/metrics: missing required metric {name}")

if get("/healthz").strip() != "ok":
    sys.exit("/healthz: not ok")

# /coverage serves the frozen end-of-campaign covmap summary while the
# process idles in --status-hold.
coverage = json.loads(get("/coverage"))
if coverage.get("enabled") is not True:
    sys.exit("/coverage: not enabled despite --covmap-out")
for key in ("execs", "windows", "blocks_hit", "edges_hit",
            "frontier_size", "frontier"):
    if key not in coverage:
        sys.exit(f"/coverage: missing key {key!r}")
if coverage["execs"] < 5000 or coverage["blocks_hit"] <= 0:
    sys.exit(f"/coverage: implausible summary: {coverage}")
for entry in coverage["frontier"]:
    for key in ("target", "guard", "guard_hits"):
        if key not in entry:
            sys.exit(f"/coverage: frontier entry missing {key!r}")

# /timeline serves the recorder's recent-sample window (frozen at
# end-of-campaign while the process idles in --status-hold).
timeline = json.loads(get("/timeline"))
if timeline.get("enabled") is not True:
    sys.exit("/timeline: not enabled despite --timeline-out")
for key in ("samples", "ring_capacity", "window"):
    if key not in timeline:
        sys.exit(f"/timeline: missing key {key!r}")
if timeline["samples"] <= 0 or not timeline["window"]:
    sys.exit(f"/timeline: empty window: {timeline}")
for entry in timeline["window"]:
    for key in ("execs", "edges", "blocks", "crashes", "corpus",
                "counters", "gauges", "hists"):
        if key not in entry:
            sys.exit(f"/timeline: window entry missing {key!r}")
if timeline["window"][-1]["execs"] < 5000:
    sys.exit("/timeline: window never reached the campaign budget")

# Release the hold and let the process export the trace and exit.
proc.stdin.write("\n")
proc.stdin.close()
if proc.wait(timeout=60) != 0:
    sys.exit(f"snowplow_cli exited {proc.returncode}")

with open(trace_path) as f:
    events = json.load(f)
complete = [e for e in events if e.get("ph") == "X"]
if not complete:
    sys.exit("trace: no complete events")
for event in complete:
    for key in ("name", "pid", "tid", "ts", "dur"):
        if key not in event:
            sys.exit(f"trace: event missing {key}: {event}")
stages = {e["name"] for e in complete}
for stage in ("schedule", "localize", "instantiate", "execute",
              "triage", "checkpoint"):
    if stage not in stages:
        sys.exit(f"trace: no {stage} spans")
print(f"introspection smoke: port {port}, {len(status['workers'])} "
      f"workers, {len(events)} trace events, "
      f"{len(required)} required metrics present")
PY

# Stage 6: coverage-cartography round trip — profile a short campaign
# (--covmap-out), validate the snapshot log against its checked-in
# schema, run `analyze` and validate the report, then feed the ranked
# cold-frontier targets back through `fuzz --directed-from`.
cov_log=$(mktemp /tmp/sp_ci_covlog.XXXXXX.jsonl)
cov_report=$(mktemp /tmp/sp_ci_covreport.XXXXXX.json)
trap 'rm -f "$baseline" "$snowplow" "$ckpt" "$trace_json" "$introspect" "$cov_live" "$cov_log" "$cov_report"' EXIT
./build/examples/snowplow_cli fuzz --budget 5000 --seed 1 --workers 2 \
    --covmap-out "$cov_log" > /dev/null
./build/examples/snowplow_cli analyze "$cov_log" --seed 1 \
    --targets 16 --out "$cov_report" \
    | grep -q 'cold-frontier targets' || {
        echo "analyze: missing heat report"; exit 1; }
python3 - "$cov_log" "$cov_report" <<'PY'
import json
import sys

log_path, report_path = sys.argv[1], sys.argv[2]
TYPES = {"int": int, "str": str, "list": list, "dict": dict,
         "bool": bool}

def check(obj, spec, where):
    for key, type_name in spec.items():
        if key not in obj:
            sys.exit(f"{where}: missing key {key!r}")
        value = obj[key]
        if not isinstance(value, TYPES[type_name]) or (
                type_name == "int" and isinstance(value, bool)):
            sys.exit(f"{where}.{key} is not {type_name}")

# --- snapshot log: header, windows, final --------------------------
with open("ci/schemas/covmap_log.schema.json") as f:
    log_schema = json.load(f)
with open(log_path) as f:
    lines = [json.loads(line) for line in f]
if len(lines) < 3:
    sys.exit(f"{log_path}: expected header + windows + final")
header, windows, final = lines[0], lines[1:-1], lines[-1]

check(header, log_schema["header"], "covmap_header")
if header["type"] != "covmap_header":
    sys.exit("covmap log: first line is not covmap_header")
if header["version"] != log_schema["version"]:
    sys.exit(f"covmap log: version {header['version']} unsupported")
if len(header["edges"]) != header["num_edges"]:
    sys.exit("covmap log: edges length != num_edges")
for pair in header["edges"]:
    if not (isinstance(pair, list) and len(pair) == 2):
        sys.exit(f"covmap log: malformed edge {pair!r}")

hits = [0] * header["num_blocks"]
for i, window in enumerate(windows):
    check(window, log_schema["window"], f"window[{i}]")
    if window["type"] != "covmap_window":
        sys.exit(f"covmap log: line {i + 2} is not covmap_window")
    for index, delta in window["block_deltas"]:
        if delta <= 0:
            sys.exit(f"window[{i}]: non-positive block delta")
        hits[index] += delta

check(final, log_schema["final"], "covmap_final")
if final["type"] != "covmap_final":
    sys.exit("covmap log: last line is not covmap_final")
if final["windows"] != len(windows):
    sys.exit("covmap log: final window count disagrees")
reached = sum(1 for h in hits if h)
if reached != final["blocks_hit"]:
    sys.exit(f"covmap log: delta reconstruction gives {reached} "
             f"reached blocks, final says {final['blocks_hit']}")

# --- analyze report ------------------------------------------------
with open("ci/schemas/analyze_report.schema.json") as f:
    report_schema = json.load(f)
with open(report_path) as f:
    report = json.load(f)
check(report, report_schema["required"], "report")
if report["type"] != "covmap_report":
    sys.exit("report: type is not covmap_report")
if report["version"] != report_schema["version"]:
    sys.exit(f"report: version {report['version']} unsupported")
check(report["heat"], report_schema["heat"], "report.heat")
for i, subsystem in enumerate(report["subsystems"]):
    check(subsystem, report_schema["subsystem"], f"subsystems[{i}]")
for i, window in enumerate(report["timeline"]):
    check(window, report_schema["window"], f"timeline[{i}]")
if not report["targets"]:
    sys.exit("report: empty cold-frontier target set")
for i, target in enumerate(report["targets"]):
    check(target, report_schema["target"], f"targets[{i}]")
    if hits[target["block"]] != 0:
        sys.exit(f"targets[{i}]: block {target['block']} was reached")
bands = report["heat"]
if (bands["unreached"] + bands["cold"] + bands["warm"] + bands["hot"]
        != report["blocks_total"]):
    sys.exit("report: heat bands do not partition the block set")
print(f"covmap schemas: {len(windows)} windows, "
      f"{len(report['targets'])} targets, "
      f"{len(report['subsystems'])} subsystems validated")
PY
./build/examples/snowplow_cli fuzz --budget 3000 --seed 2 \
    --directed-from "$cov_report" \
    | grep -q '^directed: reached' || {
        echo "fuzz --directed-from: missing directed summary"; exit 1; }
echo "coverage cartography round trip: OK"

# Stage 7: dataset store round-trip smoke — collect a store into
# shards, merge/compact them, then train one epoch streamed from disk
# and one epoch in-memory and require identical eval metrics (the
# determinism-parity contract of data::StreamSource), plus a short
# harvesting campaign whose shard must load and stat cleanly.
store_dir=$(mktemp -d /tmp/sp_ci_store.XXXXXX)
trap 'rm -f "$baseline" "$snowplow" "$ckpt" "$trace_json" "$introspect"; rm -rf "$store_dir"' EXIT
./build/examples/snowplow_cli dataset collect --out "$store_dir" \
    --shards 2 --corpus 60 --mutations 60 > /dev/null
./build/examples/snowplow_cli dataset merge \
    --out "$store_dir/merged.spds" \
    "$store_dir"/shard-000.spds "$store_dir"/shard-001.spds > /dev/null
./build/examples/snowplow_cli dataset stats "$store_dir/merged.spds" \
    | grep -q 'truncated' || {
        echo "dataset stats: missing summary line"; exit 1; }
./build/examples/snowplow_cli train --data "$store_dir/merged.spds" \
    --stream 1 --epochs 1 --dim 16 --token-dim 8 \
    | grep '^eval:' > "$store_dir/eval_stream.txt"
./build/examples/snowplow_cli train --data "$store_dir/merged.spds" \
    --stream 0 --epochs 1 --dim 16 --token-dim 8 \
    | grep '^eval:' > "$store_dir/eval_memory.txt"
diff "$store_dir/eval_stream.txt" "$store_dir/eval_memory.txt" || {
    echo "stream/in-memory training parity broken"; exit 1; }
./build/examples/snowplow_cli fuzz --budget 3000 --seed 1 --workers 2 \
    --harvest-dir "$store_dir/harvest" > /dev/null
./build/examples/snowplow_cli dataset stats \
    "$store_dir/harvest/harvest-000.spds" > /dev/null
echo "dataset store round-trip + streaming parity: OK"

# Stage 8: decision-policy ablation gate — run the A6 sweep (small
# freshly-trained PMM, three seeds, three policy modes), validate
# BENCH_ablations.json against its checked-in schema, and require the
# Thompson policy to match or beat the static policy's mean final
# coverage on the smoke kernel.
./build/bench/ablations --sweep-only BENCH_ablations.json > /dev/null
python3 - <<'PY'
import json
import sys

with open("ci/schemas/ablations.schema.json") as f:
    schema = json.load(f)
with open("BENCH_ablations.json") as f:
    sweep = json.load(f)

TYPES = {"int": int, "str": str, "list": list, "dict": dict,
         "float": float}

def check(obj, spec, where):
    for key, type_name in spec.items():
        if key not in obj:
            sys.exit(f"BENCH_ablations.json: {where} missing {key!r}")
        value = obj[key]
        if not isinstance(value, TYPES[type_name]) or (
                type_name == "int" and isinstance(value, bool)):
            sys.exit(f"BENCH_ablations.json: {where}.{key} "
                     f"is not {type_name}")

check(sweep, schema["required"], "top level")
if sweep["type"] != "ablations_sweep":
    sys.exit("BENCH_ablations.json: type is not ablations_sweep")
if sweep["version"] != schema["version"]:
    sys.exit(f"BENCH_ablations.json: version {sweep['version']} "
             "unsupported")

modes = {}
for i, mode in enumerate(sweep["modes"]):
    check(mode, schema["mode"], f"modes[{i}]")
    if len(mode["edges"]) != len(sweep["seeds"]):
        sys.exit(f"modes[{i}]: {len(mode['edges'])} curves for "
                 f"{len(sweep['seeds'])} seeds")
    for curve in mode["edges"]:
        if len(curve) != len(sweep["checkpoints"]):
            sys.exit(f"modes[{i}]: curve length disagrees with the "
                     "checkpoint grid")
    modes[mode["name"]] = mode
for name in ("static", "pure-pmm", "thompson"):
    if name not in modes:
        sys.exit(f"BENCH_ablations.json: missing mode {name!r}")

static_mean = modes["static"]["final_mean"]
thompson_mean = modes["thompson"]["final_mean"]
print(f"policy sweep: static {static_mean:.1f}, "
      f"pure-pmm {modes['pure-pmm']['final_mean']:.1f}, "
      f"thompson {thompson_mean:.1f} mean final edges")
if thompson_mean < static_mean:
    sys.exit(f"thompson mean final coverage {thompson_mean:.1f} "
             f"fell below static {static_mean:.1f}")
PY

# Stage 9: timeline observatory regression gate.
#
# BENCH_timeline.json is the committed --timeline-out artifact of the
# canonical campaign below (no metrics sink => no wall clock anywhere
# in the artifact; --workers 1 => the serialized checkpoint owner is
# the only sampler; the bytes are reproducible run-to-run). The stage
# re-runs that campaign, schema-checks the artifacts, and requires
# `sp_analysis compare` to come back clean against the baseline (exit
# 3 = regression verdict). A thompson campaign over the same seed set
# must then match or beat the static baseline's final edges — the same
# direction stage 8's ablation gate enforces. Finally the recording
# overhead is gated: one checkpoint sample must cost under 1% of a
# checkpoint interval's worth of campaign slots.
#
# To refresh the baseline after an intentional behavior change:
#   ./build/examples/snowplow_cli fuzz --budget 6000 --seed 5 \
#       --workers 1 --policy static --covmap-out /tmp/cov.jsonl \
#       --timeline-out BENCH_timeline.json
# then commit the regenerated BENCH_timeline.json.
tl_fresh=$(mktemp /tmp/sp_ci_tlfresh.XXXXXX.jsonl)
tl_thompson=$(mktemp /tmp/sp_ci_tlthom.XXXXXX.jsonl)
tl_cov=$(mktemp /tmp/sp_ci_tlcov.XXXXXX.jsonl)
cmp_base=$(mktemp /tmp/sp_ci_cmpbase.XXXXXX.json)
cmp_policy=$(mktemp /tmp/sp_ci_cmppol.XXXXXX.json)
trap 'rm -f "$baseline" "$snowplow" "$ckpt" "$trace_json" "$introspect" "$cov_live" "$tl_live" "$tl_fresh" "$tl_thompson" "$tl_cov" "$cmp_base" "$cmp_policy"; rm -rf "$store_dir"' EXIT
./build/examples/snowplow_cli fuzz --budget 6000 --seed 5 --workers 1 \
    --policy static --covmap-out "$tl_cov" \
    --timeline-out "$tl_fresh" > /dev/null
./build/examples/snowplow_cli fuzz --budget 6000 --seed 5 --workers 1 \
    --policy thompson --covmap-out "$tl_cov" \
    --timeline-out "$tl_thompson" > /dev/null
./build/examples/sp_analysis compare BENCH_timeline.json "$tl_fresh" \
    --out "$cmp_base" || {
        echo "timeline: fresh campaign regressed vs the committed baseline"
        echo "(if intentional, refresh BENCH_timeline.json — see above)"
        exit 1; }
./build/examples/sp_analysis compare "$tl_fresh" "$tl_thompson" \
    --out "$cmp_policy" || {
        echo "timeline: thompson regressed vs static on the compare grid"
        exit 1; }
python3 - BENCH_timeline.json "$tl_fresh" "$tl_thompson" \
    "$cmp_base" "$cmp_policy" <<'PY'
import json
import sys

TYPES = {"int": int, "str": str, "list": list, "dict": dict,
         "float": (int, float), "bool": bool}

def check(obj, spec, where):
    for key, type_name in spec.items():
        if key not in obj:
            sys.exit(f"{where}: missing key {key!r}")
        value = obj[key]
        if not isinstance(value, TYPES[type_name]) or (
                type_name in ("int", "float")
                and isinstance(value, bool)):
            sys.exit(f"{where}.{key} is not {type_name}")

# --- timeline artifacts: header + delta samples + final ------------
with open("ci/schemas/timeline_log.schema.json") as f:
    log_schema = json.load(f)

def validate_log(path):
    with open(path) as f:
        lines = [json.loads(line) for line in f]
    if len(lines) < 3:
        sys.exit(f"{path}: expected header + samples + final")
    header, samples, final = lines[0], lines[1:-1], lines[-1]
    check(header, log_schema["header"], f"{path}: header")
    if header["type"] != "timeline_header":
        sys.exit(f"{path}: first line is not timeline_header")
    if header["version"] != log_schema["version"]:
        sys.exit(f"{path}: version {header['version']} unsupported")
    if header["timing"]:
        sys.exit(f"{path}: baseline campaign must not record wall "
                 "clock (it would not be reproducible)")
    prev = -1
    for i, sample in enumerate(samples):
        check(sample, log_schema["sample"], f"{path}: sample[{i}]")
        if sample["type"] != "timeline_sample":
            sys.exit(f"{path}: line {i + 2} is not timeline_sample")
        if sample["execs"] <= prev:
            sys.exit(f"{path}: sample grid is not monotone")
        prev = sample["execs"]
        if "cov" in sample:
            check(sample["cov"], log_schema["cov"],
                  f"{path}: sample[{i}].cov")
        if "policy" in sample:
            check(sample["policy"], log_schema["policy"],
                  f"{path}: sample[{i}].policy")
    check(final, log_schema["final"], f"{path}: final")
    if final["type"] != "timeline_final":
        sys.exit(f"{path}: last line is not timeline_final")
    # The final record is itself the last recorded sample, so its
    # cumulative count is one past the delta-encoded grid lines.
    if final["samples"] != len(samples) + 1:
        sys.exit(f"{path}: final sample count disagrees with the "
                 "recorded grid")
    if "gauges" in final:
        sys.exit(f"{path}: final record must not carry gauges")
    return final

base_final = validate_log(sys.argv[1])
fresh_final = validate_log(sys.argv[2])
validate_log(sys.argv[3])

# --- compare reports -----------------------------------------------
with open("ci/schemas/compare_report.schema.json") as f:
    report_schema = json.load(f)

def validate_report(path, name):
    with open(path) as f:
        report = json.load(f)
    check(report, report_schema["required"], name)
    if report["type"] != "compare_report":
        sys.exit(f"{name}: type is not compare_report")
    if report["version"] != report_schema["version"]:
        sys.exit(f"{name}: version {report['version']} unsupported")
    check(report["aligned"], report_schema["aligned"],
          f"{name}.aligned")
    if report["aligned"]["samples"] < 2:
        sys.exit(f"{name}: fewer than 2 aligned samples")
    coverage = report["coverage"]
    for key in ("final_edges", "auc"):
        check(coverage[key], report_schema["delta"],
              f"{name}.coverage.{key}")
        if coverage[key]["verdict"] not in report_schema["verdicts"]:
            sys.exit(f"{name}: unknown verdict "
                     f"{coverage[key]['verdict']!r}")
    check(coverage["time_to_target"],
          report_schema["time_to_target"],
          f"{name}.coverage.time_to_target")
    check(report["thresholds"], report_schema["thresholds"],
          f"{name}.thresholds")
    if report["verdict"] not in ("ok", "regressed"):
        sys.exit(f"{name}: unknown overall verdict "
                 f"{report['verdict']!r}")
    return report

base = validate_report(sys.argv[4], "baseline compare")
policy = validate_report(sys.argv[5], "policy compare")
if base["regressions"]:
    sys.exit("baseline compare: regressions slipped past the exit "
             f"code: {base['regressions']}")
# The compare verdict must agree with stage 8's ablation direction:
# thompson's final coverage matches or beats static's.
edges = policy["coverage"]["final_edges"]
if edges["verdict"] not in ("ok", "improved"):
    sys.exit(f"policy compare: static -> thompson final edges "
             f"{edges['a']} -> {edges['b']} contradicts the stage-8 "
             "ablation gate")
print(f"timeline compare: baseline {base_final['edges']} / fresh "
      f"{fresh_final['edges']} final edges, static -> thompson "
      f"{edges['a']} -> {edges['b']} ({edges['verdict']})")
PY

# Recording-overhead gate: one per-checkpoint sample (registry sweep,
# delta encode, artifact append, ring push) must cost under 1% of a
# checkpoint interval's worth of campaign slot time, and the null-
# recorder branch every timeline-less campaign pays per checkpoint
# must be unmeasurable. Same stable-micro-ratio construction as the
# covmap gate in stage 4.
./build/bench/timeline \
    --benchmark_min_time=0.02 \
    --benchmark_out=BENCH_timeline_perf.json --benchmark_out_format=json \
    > /dev/null
python3 - <<'PY'
import json

with open("BENCH_timeline_perf.json") as f:
    report = json.load(f)
names = [b["name"] for b in report["benchmarks"]]
for needle in ("BM_TimelineOverhead/enabled:0",
               "BM_TimelineOverhead/enabled:1",
               "BM_TimelineSample", "BM_TimelineDisabledSite"):
    if not any(needle in n for n in names):
        raise SystemExit(
            f"BENCH_timeline_perf.json: missing {needle} results")

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

def bench(needle):
    return next(b for b in report["benchmarks"] if needle in b["name"])

def time_ns(needle):
    b = bench(needle)
    return b["real_time"] * UNIT_NS[b["time_unit"]]

# Per-execution cost of one recorder-less campaign slot; the sampler
# runs once per checkpoint_every = 625 executions (the eval grid).
slot_ns = 1e9 / bench("BM_TimelineOverhead/enabled:0")["items_per_second"]
sample_ns = time_ns("BM_TimelineSample")
site_ns = time_ns("BM_TimelineDisabledSite")
interval_ns = 625.0 * slot_ns
enabled = sample_ns / interval_ns
disabled = site_ns / interval_ns
print(f"BENCH_timeline_perf.json: slot {slot_ns:.0f} ns, sample "
      f"{sample_ns:.0f} ns, site {site_ns:.2f} ns -> enabled "
      f"{100.0 * enabled:.3f}%, disabled {100.0 * disabled:.6f}% "
      "per checkpoint interval")
if enabled >= 0.01:
    raise SystemExit(
        "timeline sampling overhead exceeds 1% of a checkpoint interval")
if disabled >= 0.0001:
    raise SystemExit("timeline disabled-site overhead is measurable")
PY

# Stage 10: fleet fabric gate (DESIGN.md §16).
#
# A localhost coordinator and four nodes — one of which abandons its
# first lease mid-campaign, forcing a disconnect-reclaim — drain the
# same canonical campaign stage 9 replays (--budget 6000 --seed 5,
# static policy). The fleet is not bit-reproducible (lease->node
# assignment is timing-dependent), so the gate is directional, not
# byte-equal: the merged fleet timeline goes through `sp_analysis
# compare` against the committed single-process BENCH_timeline.json
# and must come back regression-free. The coordinator's /status and
# /metrics are validated against ci/schemas/fleet_status.schema.json
# and the [fleet] section of metrics.required.txt while the process
# idles in --status-hold.
fleet_tl=$(mktemp /tmp/sp_ci_fleettl.XXXXXX.jsonl)
fleet_cmp=$(mktemp /tmp/sp_ci_fleetcmp.XXXXXX.json)
trap 'rm -f "$baseline" "$snowplow" "$ckpt" "$trace_json" "$introspect" "$cov_live" "$tl_live" "$tl_fresh" "$tl_thompson" "$tl_cov" "$cmp_base" "$cmp_policy" "$fleet_tl" "$fleet_cmp"; rm -rf "$store_dir"' EXIT
python3 - "$fleet_tl" <<'PY'
import json
import re
import subprocess
import sys
import urllib.request

timeline_path = sys.argv[1]
coord = subprocess.Popen(
    ["./build/examples/snowplow_cli", "fleet", "coordinator",
     "--port", "0", "--budget", "6000", "--seed", "5",
     "--policy", "static", "--timeline-out", timeline_path,
     "--drain-timeout-ms", "120000",
     "--status-port", "0", "--status-hold", "1"],
    stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)

# Read until the coordinator is listening, launch the nodes, then keep
# reading until --status-hold: everything the fleet produced is frozen
# behind the status server by then.
status_port = None
fleet_port = None
drained = False
nodes = []
for line in coord.stdout:
    match = re.match(r"status server listening on port (\d+)", line)
    if match:
        status_port = int(match.group(1))
    match = re.match(r"fleet coordinator listening on port (\d+)", line)
    if match:
        fleet_port = int(match.group(1))
        for i in range(4):
            argv = ["./build/examples/snowplow_cli", "fleet", "node",
                    "--connect", f"127.0.0.1:{fleet_port}",
                    "--name", f"ci{i}"]
            if i == 0:
                argv += ["--abandon-first", "1"]
            nodes.append(subprocess.Popen(
                argv, stdout=subprocess.DEVNULL))
    drained |= line.startswith("fleet drained: yes")
    if line.startswith("status-hold:"):
        break
if fleet_port is None or status_port is None:
    sys.exit("fleet: missing listening-port lines")
if not drained:
    sys.exit("fleet: coordinator never drained the budget")
for i, node in enumerate(nodes):
    if node.wait(timeout=60) != 0:
        sys.exit(f"fleet: node ci{i} exited {node.returncode}")

def get(path):
    with urllib.request.urlopen(
            f"http://127.0.0.1:{status_port}{path}",
            timeout=10) as response:
        return response.read().decode()

TYPES = {"int": int, "str": str, "list": list, "dict": dict,
         "float": (int, float), "bool": bool}

with open("ci/schemas/fleet_status.schema.json") as f:
    schema = json.load(f)

def check(obj, spec, where):
    for key, type_name in spec.items():
        if key not in obj:
            sys.exit(f"/status: {where} missing key {key!r}")
        value = obj[key]
        if not isinstance(value, TYPES[type_name]) or (
                type_name in ("int", "float")
                and isinstance(value, bool)):
            sys.exit(f"/status: {where}.{key} is not {type_name}")

status = json.loads(get("/status"))
check(status, schema["required"], "top level")
campaign = status["campaign"]
check(campaign, schema["campaign"], "campaign")
check(campaign["policy"], schema["policy"], "campaign.policy")
if campaign["type"] != "fleet":
    sys.exit(f"/status: campaign.type is {campaign['type']!r}")
if not campaign["drained"] or campaign["watermark"] != 6000:
    sys.exit(f"/status: fleet did not drain cleanly: {campaign}")
if campaign["nodes_seen"] < 4 or campaign["leases_reclaimed"] < 1:
    sys.exit("/status: abandoned lease was not observed/reclaimed: "
             f"{campaign}")
if campaign["edges"] <= 0 or campaign["corpus_size"] <= 0:
    sys.exit(f"/status: empty merged aggregate: {campaign}")

coverage = json.loads(get("/coverage"))
if coverage.get("enabled") is not True or coverage.get("execs", 0) < 6000:
    sys.exit(f"/coverage: implausible fleet summary: {coverage}")

metrics = get("/metrics")
section = None
required = []
for line in open("ci/schemas/metrics.required.txt"):
    line = line.strip()
    if line.startswith("["):
        section = line.strip("[]")
        continue
    if section == "fleet" and line and not line.startswith("#"):
        required.append(line)
if not required:
    sys.exit("metrics.required.txt: no [fleet] section")
for name in required:
    if not re.search(rf"^{re.escape(name)}(\{{| )", metrics, re.M):
        sys.exit(f"/metrics: missing required fleet metric {name}")

# Release the hold and let the coordinator exit.
coord.stdin.write("\n")
coord.stdin.close()
if coord.wait(timeout=60) != 0:
    sys.exit(f"fleet: coordinator exited {coord.returncode}")
print(f"fleet fabric: port {fleet_port}, {campaign['nodes_seen']} "
      f"nodes, {campaign['leases_granted']} leases "
      f"({campaign['leases_reclaimed']} reclaimed), "
      f"{campaign['edges']} merged edges, "
      f"{len(required)} fleet metrics present")
PY
./build/examples/sp_analysis compare BENCH_timeline.json "$fleet_tl" \
    --out "$fleet_cmp" || {
        echo "fleet: merged fleet timeline regressed vs the committed"
        echo "single-process baseline (BENCH_timeline.json)"
        exit 1; }
python3 - "$fleet_cmp" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)
if report["verdict"] != "ok" or report["regressions"]:
    sys.exit(f"fleet compare: {report['verdict']}: "
             f"{report['regressions']}")
edges = report["coverage"]["final_edges"]
print(f"fleet compare: single-process {edges['a']} -> fleet "
      f"{edges['b']} final edges ({edges['verdict']})")
PY

echo "tier-1 + telemetry + perf + introspection + cartography + policy + timeline + fleet smoke: OK"
