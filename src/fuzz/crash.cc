#include "fuzz/crash.h"

#include <cstddef>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/logging.h"

namespace sp::fuzz {

CrashLog::CrashLog(const kern::Kernel &kernel)
    : kernel_(kernel)
{
}

void
CrashLog::record(uint32_t bug_index, const prog::Prog &trigger,
                 uint64_t exec_counter)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_bug_.find(bug_index);
    if (it != by_bug_.end()) {
        ++records_[it->second].hit_count;
        obs::Registry::global().counter("crash.duplicate").inc();
        if (auto *sink = obs::sink()) {
            sink->event("crash_dedup",
                        {{"bug_index", bug_index},
                         {"duplicate", true},
                         {"execs", exec_counter},
                         {"hits", records_[it->second].hit_count}});
        }
        return;
    }
    SP_ASSERT(bug_index < kernel_.bugs().size());
    const kern::BugSite &bug = kernel_.bugs()[bug_index];
    obs::Registry::global().counter("crash.unique").inc();
    if (auto *sink = obs::sink()) {
        sink->event("crash_dedup",
                    {{"bug_index", bug_index},
                     {"duplicate", false},
                     {"execs", exec_counter},
                     {"known", bug.known},
                     {"flaky", bug.flaky},
                     {"description", bug.description},
                     {"location", bug.location}});
    }

    CrashRecord record;
    record.bug_index = bug_index;
    record.description = bug.description;
    record.location = bug.location;
    record.kind = bug.kind;
    record.known = bug.known;
    record.flaky = bug.flaky;
    record.first_seen_exec = exec_counter;
    record.hit_count = 1;
    record.trigger.calls = trigger.calls;  // deep copy
    by_bug_.emplace(bug_index, records_.size());
    records_.push_back(std::move(record));
    unique_count_.store(records_.size(), std::memory_order_release);
}

bool
CrashLog::replayCrashes(const CrashRecord &record,
                        const prog::Prog &program,
                        const ReproOptions &opts, uint64_t salt) const
{
    for (int attempt = 0; attempt < opts.attempts; ++attempt) {
        exec::ExecOptions exec_opts;
        exec_opts.deterministic = false;
        exec_opts.noise_seed =
            opts.noise_seed + salt * 1000 +
            static_cast<uint64_t>(attempt);
        exec::Executor executor(kernel_, exec_opts);
        auto result = executor.run(program);
        if (result.crashed && result.bug_index == record.bug_index)
            return true;
    }
    return false;
}

void
CrashLog::reproduceAll(const ReproOptions &opts)
{
    for (auto &record : records_) {
        if (record.repro_attempted)
            continue;
        record.repro_attempted = true;

        if (!replayCrashes(record, record.trigger, opts,
                           record.bug_index)) {
            record.reproduced = false;
            continue;
        }
        record.reproduced = true;

        // Greedy minimization: drop calls while the crash persists.
        prog::Prog minimized;
        minimized.calls = record.trigger.calls;
        bool shrunk = true;
        while (shrunk && minimized.calls.size() > 1) {
            shrunk = false;
            for (size_t i = 0; i < minimized.calls.size(); ++i) {
                prog::Prog candidate;
                candidate.calls = minimized.calls;
                candidate.calls.erase(
                    candidate.calls.begin() +
                    static_cast<ptrdiff_t>(i));
                prog::shiftResultRefs(candidate, i, -1);
                if (replayCrashes(record, candidate, opts,
                                  record.bug_index ^ (i + 1))) {
                    minimized = std::move(candidate);
                    shrunk = true;
                    break;
                }
            }
        }
        record.reproducer = std::move(minimized);
    }
}

size_t
CrashLog::newCrashes() const
{
    size_t count = 0;
    for (const auto &record : records_)
        count += !record.known;
    return count;
}

size_t
CrashLog::knownCrashes() const
{
    return records_.size() - newCrashes();
}

size_t
CrashLog::reproducedCrashes() const
{
    size_t count = 0;
    for (const auto &record : records_)
        count += record.reproduced;
    return count;
}

std::pair<size_t, size_t>
CrashLog::newByKind(kern::BugKind kind) const
{
    size_t with_repro = 0, without = 0;
    for (const auto &record : records_) {
        if (record.known || record.kind != kind)
            continue;
        if (record.reproduced)
            ++with_repro;
        else
            ++without;
    }
    return {with_repro, without};
}

}  // namespace sp::fuzz
