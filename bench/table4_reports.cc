// Reproduces paper Table 4: the sample of diagnosed bug reports.
//
// Runs the Snowplow campaign, reproduces crashes, and prints the
// report rows for the diagnosed bugs — detector, failing syscall,
// failure location and status — leading with the hand-modeled bugs
// that mirror the paper's: the ATA PIO out-of-bounds write reachable
// only through a precisely crafted ioctl$scsi (paper bug #1), the
// mmap/GUP stack-growth assertion (paper bug #4), the ext4-like
// write-path warning (paper bug #5), and a concurrency GPF in sendmsg
// (reproduction-resistant, like the paper's io_uring GPF).
//
// Expected shape: the deep SCSI bug is found by Snowplow with a
// 2-call reproducer; several other deep bugs come with reproducers and
// serious detectors.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "prog/serialize.h"
#include "util/stats.h"

int
main()
{
    using namespace sp;
    const uint64_t budget = 7 * 24 * spbench::kHourInExecs / 5;
    std::printf("=== Table 4: diagnosed bug reports (Snowplow campaign, "
                "%llu execs) ===\n\n",
                static_cast<unsigned long long>(budget));

    kern::Kernel kernel = spbench::makeEvalKernel("6.8");
    auto opts = spbench::evalFuzzOptions(budget, 101);
    auto fuzzer =
        core::makeSnowplowFuzzer(kernel, spbench::sharedPmm(), opts,
                                 spbench::evalSnowplowOptions());
    fuzzer->run();
    fuzzer->crashes().reproduceAll();

    // Order: hand-modeled paper bugs first, then other new crashes.
    auto records = fuzzer->crashes().records();
    std::stable_sort(records.begin(), records.end(),
                     [](const auto &a, const auto &b) {
                         auto rank = [](const fuzz::CrashRecord &r) {
                             if (r.location.find("drivers/ata") !=
                                 std::string::npos)
                                 return 0;
                             if (r.location.rfind("subsys/gen", 0) != 0)
                                 return 1;  // other hand-written bugs
                             return 2;
                         };
                         return rank(a) < rank(b);
                     });

    std::vector<std::vector<std::string>> rows;
    int id = 0;
    for (const auto &record : records) {
        if (record.known)
            continue;
        ++id;
        std::string syscall = "-";
        if (!record.trigger.calls.empty()) {
            syscall =
                record.reproduced && !record.reproducer.calls.empty()
                    ? record.reproducer.calls.back().decl->name
                    : record.trigger.calls.back().decl->name;
        }
        rows.push_back(
            {std::to_string(id), record.description,
             kern::bugKindName(record.kind), syscall + "()",
             record.location,
             record.reproduced ? "Reproduced" : "No reproducer"});
        if (rows.size() >= 10)
            break;
    }
    std::printf("%s\n", formatTable({"ID", "Bug description", "Detector",
                                     "Failure syscall",
                                     "Failure location", "Status"},
                                    rows)
                            .c_str());

    // Print the reproducer of the ATA bug (the paper's flagship).
    for (const auto &record : records) {
        if (record.location.find("drivers/ata") == std::string::npos ||
            !record.reproduced) {
            continue;
        }
        std::printf("flagship reproducer (paper bug #1, "
                    "ata_pio_sector OOB):\n%s\n",
                    prog::formatProg(record.reproducer).c_str());
        std::printf("paper: requires ioctl() with "
                    "SCSI_IOCTL_SEND_COMMAND + ATA_16 + ATA_NOP + "
                    "PIO + oversized data length — found by Snowplow, "
                    "missed by Syzkaller's random mutations.\n");
        break;
    }
    return 0;
}
