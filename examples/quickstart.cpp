// Quickstart: build the simulated kernel, fuzz it briefly with the
// Syzkaller-style baseline, and inspect coverage and crashes.
//
//   $ ./quickstart [exec_budget]
//
// This walks the public API end to end: kernel construction, the
// fuzzing loop, the crash log with reproduction, and program
// serialization.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/snowplow.h"
#include "kernel/subsystems.h"
#include "prog/serialize.h"

int
main(int argc, char **argv)
{
    using namespace sp;

    uint64_t budget = 20000;
    if (argc > 1)
        budget = std::strtoull(argv[1], nullptr, 10);

    // 1. Build the kernel under test: hand-written VFS/SCSI/NET
    //    subsystems plus a synthetic bulk, with bugs planted deep.
    kern::KernelGenParams params;
    params.seed = 2024;
    params.version = "6.8";
    kern::Kernel kernel = kern::buildBaseKernel(params);
    std::printf("kernel %s: %zu syscalls, %zu blocks, %zu planted bugs\n",
                kernel.version().c_str(), kernel.table().decls.size(),
                kernel.blocks().size(), kernel.bugs().size());

    // 2. Fuzz with the baseline random argument localizer.
    fuzz::FuzzOptions opts;
    opts.exec_budget = budget;
    opts.seed = 42;
    opts.checkpoint_every = budget / 10;
    auto fuzzer = core::makeSyzkallerFuzzer(kernel, opts);
    auto report = fuzzer->run();

    std::printf("\nafter %llu executions:\n",
                static_cast<unsigned long long>(report.execs));
    std::printf("  edge coverage : %zu\n", report.final_edges);
    std::printf("  block coverage: %zu\n", report.final_blocks);
    std::printf("  corpus size   : %zu\n", report.corpus_size);
    std::printf("  unique crashes: %zu\n",
                fuzzer->crashes().uniqueCrashes());

    // 3. Reproduce and minimize the crashes we found.
    fuzzer->crashes().reproduceAll();
    for (const auto &record : fuzzer->crashes().records()) {
        std::printf("\ncrash: %s (%s)\n", record.description.c_str(),
                    record.location.c_str());
        std::printf("  known=%s reproduced=%s hits=%llu\n",
                    record.known ? "yes" : "no",
                    record.reproduced ? "yes" : "no",
                    static_cast<unsigned long long>(record.hit_count));
        if (record.reproduced) {
            std::printf("  reproducer:\n%s",
                        prog::formatProg(record.reproducer).c_str());
        }
    }
    return 0;
}
