// Reproduces paper Table 1: promising-argument selector performance.
//
// Trains PMM on a mutation dataset collected on kernel 6.8 and compares
// its argument selection against the Rand-K baseline (K = mean ground
// truth size, the paper's Rand.8) on the held-out eval split, reporting
// per-example-averaged F1 / Precision / Recall / Jaccard.
//
// Paper reference (Table 1):
//     PMModel  F1 84.2%  Precision 91.2%  Recall 81.2%  Jaccard 76.1%
//     Rand.8   F1 30.3%  Precision 36.6%  Recall 37.0%  Jaccard 19.9%
// Expected shape: PMM beats Rand-K by a large factor on every metric.

#include <cstdio>
#include <string>

#include "bench/common.h"
#include "core/train.h"
#include "util/stats.h"

int
main()
{
    using namespace sp;
    std::printf("=== Table 1: promising-argument selector performance "
                "===\n\n");

    kern::Kernel kernel = spbench::makeEvalKernel("6.8");
    auto dataset =
        core::collectDataset(kernel, spbench::evalDatasetOptions());
    std::printf("dataset: %zu bases, %zu/%zu/%zu train/valid/eval "
                "examples, %.1f args per test\n\n",
                dataset.bases.size(), dataset.train.size(),
                dataset.valid.size(), dataset.eval.size(),
                dataset.stats.mean_args_per_test);

    const core::Pmm &model = spbench::sharedPmm();
    auto pmm = core::evaluatePmm(model, dataset, dataset.eval);

    const size_t k = std::max<size_t>(
        1, static_cast<size_t>(
               core::meanSitesPerExample(dataset.train) + 0.5));
    auto rand = core::evaluateRandomSelector(dataset, dataset.eval, k,
                                             0x5eed);

    auto pct = [](double v) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * v);
        return std::string(buf);
    };
    std::printf("%s\n",
                formatTable(
                    {"Selector", "F1", "Precision", "Recall", "Jaccard"},
                    {{"PMModel", pct(pmm.f1), pct(pmm.precision),
                      pct(pmm.recall), pct(pmm.jaccard)},
                     {"Rand." + std::to_string(k), pct(rand.f1),
                      pct(rand.precision), pct(rand.recall),
                      pct(rand.jaccard)}})
                    .c_str());

    std::printf("paper: PMModel F1 84.2%% P 91.2%% R 81.2%% J 76.1%% | "
                "Rand.8 F1 30.3%% P 36.6%% R 37.0%% J 19.9%%\n");
    std::printf("shape check: PMM/Rand F1 ratio = %.1fx (paper 2.8x), "
                "Jaccard ratio = %.1fx (paper 3.8x)\n",
                pmm.f1 / std::max(rand.f1, 1e-9),
                pmm.jaccard / std::max(rand.jaccard, 1e-9));
    return 0;
}
