file(REMOVE_RECURSE
  "CMakeFiles/table5_directed.dir/table5_directed.cc.o"
  "CMakeFiles/table5_directed.dir/table5_directed.cc.o.d"
  "table5_directed"
  "table5_directed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_directed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
