/**
 * @file
 * Coverage accounting: sets of covered basic blocks and of directed
 * block-to-block edges ("unique, directional pairs of basic blocks",
 * §5.3.1). Blocks drive the mutation-query graph and dataset targets;
 * edges are the metric the paper's Figure 6 reports.
 *
 * CoverageSet is the stable API the triage/admit pipeline consumes. It
 * has two internal representations:
 *
 *  - hash mode: unordered sets, built by addTrace()/merge(). This is
 *    the accumulating form (corpus totals, checkpoint sets) and the
 *    form every probing API answers from.
 *  - staged mode: the pre-deduplicated block/edge vectors handed over
 *    by addUnique() — the fast execution backend's conversion
 *    boundary. Staying staged makes per-exec coverage nearly free to
 *    build; the common consumers (countNewBlocks/merge iterate the
 *    *other* set; blockCount/edgeCount; containsBlock on a small set)
 *    never need the hash sets. The first call that does (blocks()/edges(),
 *    probing a staged set, addTrace on top) promotes to hash mode
 *    transparently.
 *
 * Promotion mutates under const, so a staged set must not be shared
 * across threads; hash-mode sets (anything built via addTrace/merge,
 * i.e. every accumulating set in the pipeline) are safe for concurrent
 * reads. Per-exec results live and die on one worker thread.
 *
 * DenseCoverage is the fast execution backend's per-exec accumulator:
 * an epoch-stamped dense bitmap sized from the kernel's static block
 * count, never cleared between execs (the epoch bump invalidates the
 * whole map in O(1)), converted into a CoverageSet once per program at
 * the API boundary.
 */
#ifndef SP_EXEC_COVERAGE_H
#define SP_EXEC_COVERAGE_H

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace sp::exec {

/** Pack a directed edge into one key. */
inline uint64_t
edgeKey(uint32_t from, uint32_t to)
{
    return (static_cast<uint64_t>(from) << 32) | to;
}

/** A set of covered blocks and edges. */
class CoverageSet
{
  public:
    /**
     * Fold one call's block trace in: every visited block, and every
     * consecutive pair as a directed edge.
     */
    void addTrace(const std::vector<uint32_t> &trace);

    /**
     * Bulk-load pre-deduplicated blocks and packed edge keys (the
     * DenseCoverage conversion boundary). The inputs must each be
     * duplicate-free. On an empty set this only stages the vectors —
     * O(size) copies, no hashing; hash sets are built lazily if an
     * API needs them.
     */
    void addUnique(const std::vector<uint32_t> &blocks,
                   const std::vector<uint64_t> &edges);

    /** Merge another coverage set into this one. */
    void merge(const CoverageSet &other);

    /** Blocks/edges in `other` that this set lacks. */
    size_t countNewBlocks(const CoverageSet &other) const;
    size_t countNewEdges(const CoverageSet &other) const;

    /** Blocks in `other` absent here (the paper's c_ij \ c_i). */
    std::vector<uint32_t> newBlocks(const CoverageSet &other) const;

    /** Membership probe (staged sets scan; hash sets hash). */
    bool containsBlock(uint32_t block) const;
    bool containsEdge(uint32_t from, uint32_t to) const;

    size_t blockCount() const
    {
        return staged_ ? staged_blocks_.size() : blocks_.size();
    }
    size_t edgeCount() const
    {
        return staged_ ? staged_edges_.size() : edges_.size();
    }
    bool empty() const { return blockCount() == 0; }

    /** @name Hash-set views (promote a staged set on first use) */
    /** @{ */
    const std::unordered_set<uint32_t> &blocks() const
    {
        promote();
        return blocks_;
    }
    const std::unordered_set<uint64_t> &edges() const
    {
        promote();
        return edges_;
    }
    /** @} */

  private:
    /** Move staged vectors into the hash sets (no-op in hash mode). */
    void promote() const;

    /** Iterate blocks/edges in whatever mode the set is in. */
    template <typename Fn>
    void
    eachBlock(Fn &&fn) const
    {
        if (staged_) {
            for (uint32_t b : staged_blocks_)
                fn(b);
        } else {
            for (uint32_t b : blocks_)
                fn(b);
        }
    }
    template <typename Fn>
    void
    eachEdge(Fn &&fn) const
    {
        if (staged_) {
            for (uint64_t e : staged_edges_)
                fn(e);
        } else {
            for (uint64_t e : edges_)
                fn(e);
        }
    }

    mutable std::unordered_set<uint32_t> blocks_;
    mutable std::unordered_set<uint64_t> edges_;
    mutable std::vector<uint32_t> staged_blocks_;
    mutable std::vector<uint64_t> staged_edges_;
    mutable bool staged_ = false;
};

/**
 * Epoch-stamped dense per-exec coverage accumulator.
 *
 * Dedup is O(1) per trace element: blocks index a dense epoch array;
 * edges that follow the static CFG index a two-slots-per-block epoch
 * array (every block has at most two static successors). Edges outside
 * the static CFG — stray interrupt-noise transitions — land in a small
 * per-exec side list (at most one per call, linear-scanned). Nothing
 * is cleared between execs: beginExec() bumps the epoch, which
 * invalidates every stamp at once.
 */
class DenseCoverage
{
  public:
    /** Sentinel for "no static successor in this slot". */
    static constexpr uint32_t kNoSuccessor = ~0u;

    /** Static successor pair of one block (see Kernel::successors). */
    struct Successors
    {
        uint32_t taken = kNoSuccessor;
        uint32_t fallthrough = kNoSuccessor;
    };

    /**
     * Bind to a kernel topology: `succ` holds one entry per block and
     * must stay valid for the duration of the exec. Re-binding with a
     * different block count resets the epoch arrays; re-binding with
     * the same count is free (the arrays carry over).
     */
    void bind(const Successors *succ, size_t num_blocks);

    /** Start a new exec: O(1) epoch bump, touched lists cleared. */
    void beginExec();

    /** Fold one call's block trace in (same semantics as
     *  CoverageSet::addTrace). */
    void addTrace(const uint32_t *trace, size_t len);

    /** Unique blocks touched this exec, in first-visit order. */
    const std::vector<uint32_t> &touchedBlocks() const
    {
        return touched_blocks_;
    }

    /** Unique packed edge keys touched this exec. */
    const std::vector<uint64_t> &touchedEdges() const
    {
        return touched_edges_;
    }

    /** Convert this exec's accumulation into the CoverageSet API. */
    void exportTo(CoverageSet &out) const
    {
        out.addUnique(touched_blocks_, touched_edges_);
    }

  private:
    const Successors *succ_ = nullptr;
    uint32_t epoch_ = 0;
    std::vector<uint32_t> block_epoch_;
    std::vector<uint32_t> edge_epoch_;  ///< 2 slots per block
    std::vector<uint32_t> touched_blocks_;
    std::vector<uint64_t> touched_edges_;
    std::vector<uint64_t> stray_edges_;  ///< non-static, this exec
};

}  // namespace sp::exec

#endif  // SP_EXEC_COVERAGE_H
