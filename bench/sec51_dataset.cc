// Reproduces the §5.1 corpus/graph statistics of the paper:
//  - arguments available for mutation per test (paper: >60 on average);
//  - successful mutations discovered per base test (paper: ~45 per base
//    after 1000 random mutations; §5.1 also cites ~44 per 1000 in §1);
//  - query-graph composition: node counts per kind and edge counts per
//    kind (paper: 2372 vertices = 5 syscall + 62 argument + 1631
//    covered + 674 alternative; 2989 edges).

#include <cstdio>

#include "bench/common.h"
#include "exec/executor.h"
#include "graph/encode.h"
#include "prog/flatten.h"
#include "prog/gen.h"
#include "util/stats.h"

int
main()
{
    using namespace sp;
    std::printf("=== Section 5.1: dataset and query-graph statistics "
                "===\n\n");

    kern::Kernel kernel = spbench::makeEvalKernel("6.8");
    auto opts = spbench::evalDatasetOptions();
    auto dataset = core::collectDataset(kernel, opts);

    std::printf("corpus:\n");
    std::printf("  base tests executed            : %zu\n",
                dataset.bases.size());
    std::printf("  mean mutable arguments per test: %.1f "
                "(paper: >60)\n",
                dataset.stats.mean_args_per_test);
    std::printf("  random mutations per base      : %zu "
                "(paper: 1000)\n",
                opts.mutations_per_base);
    std::printf("  successful mutations per base  : %.1f "
                "(paper: ~45 per 1000)\n",
                dataset.stats.mean_successful_mutations_per_base);
    std::printf("  mean one-hop frontier size     : %.1f\n",
                dataset.stats.mean_frontier_size);
    std::printf("  mean target-set size           : %.1f\n",
                dataset.stats.mean_target_set_size);
    std::printf("  examples dropped by popularity : %zu\n",
                dataset.stats.discarded_by_popularity);

    // Graph composition over the training split.
    RunningStat nodes_total, syscall_nodes, arg_nodes, covered_nodes,
        alternative_nodes, edges_total;
    RunningStat arg_order_edges, call_order_edges, arg_inout_edges,
        covered_flow_edges, uncovered_flow_edges, ctx_edges,
        slot_read_edges;
    const size_t sample = std::min<size_t>(dataset.train.size(), 400);
    for (size_t i = 0; i < sample; ++i) {
        const auto &example = dataset.train[i];
        auto query = graph::buildQueryGraph(
            kernel, dataset.bases[example.base_index],
            dataset.base_results[example.base_index], example.targets);
        nodes_total.add(static_cast<double>(query.nodes.size()));
        syscall_nodes.add(static_cast<double>(
            query.countNodes(graph::NodeKind::Syscall)));
        arg_nodes.add(static_cast<double>(
            query.countNodes(graph::NodeKind::Argument)));
        covered_nodes.add(static_cast<double>(
            query.countNodes(graph::NodeKind::Covered)));
        alternative_nodes.add(static_cast<double>(
            query.countNodes(graph::NodeKind::Alternative)));
        edges_total.add(static_cast<double>(query.edges.size()));
        arg_order_edges.add(static_cast<double>(
            query.countEdges(graph::EdgeKind::ArgOrder)));
        call_order_edges.add(static_cast<double>(
            query.countEdges(graph::EdgeKind::CallOrder)));
        arg_inout_edges.add(static_cast<double>(
            query.countEdges(graph::EdgeKind::ArgInOut)));
        covered_flow_edges.add(static_cast<double>(
            query.countEdges(graph::EdgeKind::CoveredFlow)));
        uncovered_flow_edges.add(static_cast<double>(
            query.countEdges(graph::EdgeKind::UncoveredFlow)));
        ctx_edges.add(static_cast<double>(
            query.countEdges(graph::EdgeKind::CtxSwitch)));
        slot_read_edges.add(static_cast<double>(
            query.countEdges(graph::EdgeKind::SlotRead)));
    }

    std::printf("\nquery-graph composition (mean over %zu graphs; "
                "paper values in parens):\n",
                sample);
    std::printf("  vertices total      : %7.1f  (2372)\n",
                nodes_total.mean());
    std::printf("    syscall nodes     : %7.1f  (5)\n",
                syscall_nodes.mean());
    std::printf("    argument nodes    : %7.1f  (62)\n",
                arg_nodes.mean());
    std::printf("    covered blocks    : %7.1f  (1631)\n",
                covered_nodes.mean());
    std::printf("    alternative blocks: %7.1f  (674)\n",
                alternative_nodes.mean());
    std::printf("  edges total         : %7.1f  (2989)\n",
                edges_total.mean());
    std::printf("    argument ordering : %7.1f  (39)\n",
                arg_order_edges.mean());
    std::printf("    call ordering     : %7.1f  (4)\n",
                call_order_edges.mean());
    std::printf("    argument in/out   : %7.1f  (65)\n",
                arg_inout_edges.mean());
    std::printf("    covered flow      : %7.1f  (1782)\n",
                covered_flow_edges.mean());
    std::printf("    uncovered flow    : %7.1f  (1087)\n",
                uncovered_flow_edges.mean());
    std::printf("    ctx switch        : %7.1f  (10)\n",
                ctx_edges.mean());
    std::printf("    slot read (ours)  : %7.1f  (n/a — explicit "
                "white-box dependence)\n",
                slot_read_edges.mean());
    std::printf("\nshape check: covered >> alternative >> program "
                "nodes; flow edges dominate.\n");
    return 0;
}
