/**
 * @file
 * Pipeline span tracing, the live worker status board, and the
 * crash-time flight recorder.
 *
 * Tracing model: each scheduler round of the campaign pipeline gets a
 * **trace id** (beginTrace(), sampled 1/N), carried in a thread-local
 * so every stage a worker runs — and every hand-off the round makes,
 * including the AsyncPmmLocalizer → InferenceService hop — can stamp
 * its spans with the same id. Spans are *complete* events (start +
 * duration, Chrome `"ph":"X"`) recorded at scope exit into a
 * per-thread lock-free ring buffer; sampled spans are additionally
 * collected centrally for the `--trace-out` Perfetto export.
 *
 * The rings double as a black box: on SP_PANIC, a fatal signal, or a
 * worker stall, the flight recorder dumps every ring's most recent
 * spans plus the status board and a registry snapshot to
 * `flightrec-<ts>.json`, so the last seconds of a wedged 24 h campaign
 * are recoverable post mortem.
 *
 * Hot-path discipline matches metrics.h: with no tracer installed a
 * span costs one relaxed atomic load (traceEnabled()) and a status
 * board update one more (introspectionEnabled()); neither reads the
 * clock. BM_TraceOverhead in bench/sec55_perf proves the disabled
 * path stays under 1% of a campaign slot.
 */
#ifndef SP_OBS_TRACE_H
#define SP_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace sp::obs {

/** Span kinds: the six pipeline stages plus hand-off spans. */
enum class SpanKind : uint32_t {
    Schedule = 0,        ///< scheduler pick
    Localize,            ///< localizer query (incl. probe runs)
    Instantiate,         ///< mutant materialization
    Execute,             ///< program execution (recorded by Executor)
    Triage,              ///< crash record + corpus admission
    Checkpoint,          ///< checkpoint snapshot emission
    Seed,                ///< seed-corpus generation round
    CheckpointWait,      ///< blocked in the ledger prefix barrier
    InferQueue,          ///< request queue-wait inside the service
    InferBatch,          ///< one micro-batched forward pass
    kCount,
};

/** Stable lowercase name of a span kind (trace event `name`). */
const char *spanKindName(SpanKind kind);

/** One recorded span (complete event). */
struct Span
{
    uint64_t trace_id = 0;  ///< pipeline round id; 0 = none
    uint64_t ts_us = 0;     ///< start, monotonicMicros() time base
    uint64_t dur_us = 0;
    uint64_t arg = 0;       ///< kind-specific (slot / wait µs / batch)
    SpanKind kind = SpanKind::Schedule;
    uint32_t ring = 0;      ///< recording ring (≈ thread) id
};

/** Tracer configuration (the CLI's --trace-* flags). */
struct TraceOptions
{
    /** Perfetto/Chrome trace_event JSON output; empty = rings only
     *  (flight recorder still armed). */
    std::string path;
    /** Keep 1 of every `sample` trace ids (--trace-sample 1/64 -> 64).
     *  0 or 1 = keep everything. */
    uint32_t sample = 1;
    /** Spans retained per thread ring (the black box depth). */
    size_t ring_capacity = 1024;
    /** Cap on centrally collected spans for the export; further spans
     *  are counted as dropped, keeping a 24 h run bounded. */
    size_t max_export_spans = 1u << 20;
    /** Directory flight-recorder dumps land in. */
    std::string flightrec_dir = ".";
    /** Worker stall watchdog: dump a flight record when a worker sits
     *  in one stage longer than this. 0 disables the watchdog. */
    uint64_t stall_timeout_us = 0;
};

/** Cached gate for span recording (one relaxed load when off). */
bool traceEnabled();

/**
 * Install the process-wide tracer: enables span recording, arms the
 * flight recorder (SP_PANIC hook + fatal-signal handlers), and starts
 * the stall watchdog when configured. Replaces any previous tracer.
 */
void installTracer(const TraceOptions &opts);

/**
 * Export collected spans to `opts.path` (when set) as a Chrome
 * trace_event JSON array, stop the watchdog, disarm the hooks and
 * disable recording. Idempotent; rings keep their contents so tests
 * and late flight records can still inspect them.
 */
void shutdownTracer();

/**
 * Start a new pipeline round: returns a fresh trace id, or 0 when
 * tracing is off or the round was sampled out. Pair with TraceScope.
 */
uint64_t beginTrace();

/** The calling thread's active trace id (0 = none). */
uint64_t currentTraceId();

/** Scopes a trace id onto the calling thread (saves/restores). */
class TraceScope
{
  public:
    explicit TraceScope(uint64_t trace_id);
    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    uint64_t saved_;
};

/**
 * RAII span: records [construction, destruction) into the calling
 * thread's ring under the current (or explicit) trace id. Inactive —
 * no clock reads — when tracing is off or the trace id is 0.
 */
class TraceSpan
{
  public:
    /** Span under the thread's current trace id. */
    explicit TraceSpan(SpanKind kind, uint64_t arg = 0);
    /** Span under an explicit trace id (cross-thread hand-offs). */
    TraceSpan(SpanKind kind, uint64_t trace_id, uint64_t arg);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Amend the kind-specific argument before the span closes. */
    void setArg(uint64_t arg) { arg_ = arg; }

  private:
    uint64_t trace_id_ = 0;  ///< 0 = inactive
    uint64_t start_us_ = 0;
    uint64_t arg_ = 0;
    SpanKind kind_;
};

/**
 * Record an already-measured span (e.g. a queue wait reconstructed
 * from request timestamps) into the calling thread's ring.
 */
void recordSpan(SpanKind kind, uint64_t trace_id, uint64_t ts_us,
                uint64_t dur_us, uint64_t arg = 0);

/** Label the calling thread's ring ("worker0", "infer1", ...). */
void setRingLabel(const std::string &label);

/** One ring's identity + contents for inspection/dumping. */
struct RingSnapshot
{
    uint32_t ring = 0;
    std::string label;
    std::vector<Span> spans;  ///< oldest → newest, ≤ ring capacity
};

/**
 * Copy every ring's retained spans (lock-free readers; a span being
 * overwritten concurrently may tear across fields — tolerable for a
 * black box, and impossible for quiescent reads as in tests).
 */
std::vector<RingSnapshot> snapshotRings();

/** Spans collected for export so far (tests). */
size_t exportedSpanCount();

/** @name Live worker status board
 *
 * Fixed-size array of per-worker (stage, slot, since) triples updated
 * with relaxed stores by campaign workers and read by the status
 * server and the flight recorder. Gated on introspectionEnabled() so
 * an unobserved run pays one relaxed load per update site.
 */
/** @{ */

/** What a worker is doing right now. */
enum class WorkerStage : uint32_t {
    Idle = 0,
    Schedule,
    Localize,
    Instantiate,
    Execute,
    Triage,
    Checkpoint,
    Seed,
};

const char *workerStageName(WorkerStage stage);

class StatusBoard
{
  public:
    static constexpr size_t kMaxWorkers = 64;

    /** Announce a campaign with `workers` lanes (clears the board). */
    void reset(size_t workers);

    /** Publish worker `w`'s current stage and slot (relaxed). */
    void setStage(size_t worker, WorkerStage stage, uint64_t slot = 0);

    /** Active lane count. */
    size_t workers() const
    {
        return workers_.load(std::memory_order_acquire);
    }

    /** One worker's momentary state. */
    struct WorkerState
    {
        WorkerStage stage = WorkerStage::Idle;
        uint64_t slot = 0;
        uint64_t since_us = 0;  ///< stage entry, monotonicMicros()
    };

    WorkerState worker(size_t w) const;

  private:
    struct Lane
    {
        std::atomic<uint32_t> stage{0};
        std::atomic<uint64_t> slot{0};
        std::atomic<uint64_t> since_us{0};
    };

    std::atomic<size_t> workers_{0};
    Lane lanes_[kMaxWorkers];
};

/** The process-wide board. */
StatusBoard &statusBoard();

/** Cached gate for status-board updates (tracer or status server). */
bool introspectionEnabled();

/**
 * Reference-counted enablement: the tracer and each status server
 * take a claim for their lifetime (installTracer/StatusServer claim,
 * shutdownTracer/~StatusServer release), so tearing one consumer down
 * never blinds another whose watchdog is still armed. Release is
 * clamped at zero.
 */
void claimIntrospection();
void releaseIntrospection();

/**
 * Register a callable returning a JSON object with campaign-level
 * state (corpus size, ledger watermark, ...); it is embedded under
 * "campaign" in statusJson() and flight records. Pass nullptr to
 * clear. The callable runs on server/watchdog threads and must be
 * safe concurrently with the campaign, and must not call back into
 * setStatusProvider()/statusJson(): it is invoked under the
 * registration mutex, which is what guarantees that once
 * setStatusProvider() returns, no in-flight invocation of the
 * previous provider remains (safe to destroy its captures).
 */
void setStatusProvider(std::function<std::string()> provider);

/**
 * JSON snapshot of the board + campaign provider:
 * {"t_us":..,"workers":[{"id":..,"stage":..,"slot":..,
 *  "stage_age_us":..}],"campaign":{..}}.
 */
std::string statusJson();

/**
 * Register the callable behind the status server's /coverage endpoint
 * (normally CovMap::summaryJson of the live campaign, or a frozen
 * summary once the campaign finished). Same concurrency contract as
 * setStatusProvider(): the provider runs under the registration mutex,
 * so once setCoverageProvider() returns no in-flight invocation of the
 * previous provider remains. Pass nullptr to clear.
 */
void setCoverageProvider(std::function<std::string()> provider);

/**
 * The /coverage payload: the registered provider's JSON, or
 * {"enabled":false} when none is registered.
 */
std::string coverageJson();

/**
 * Register the callable behind the status server's /timeline endpoint
 * (normally TimelineRecorder::recentJson of the live campaign, or a
 * frozen window once the campaign finished). Same concurrency contract
 * as setStatusProvider(). Flight records embed the same payload so a
 * stall dump carries the metric trend, not just the final state. Pass
 * nullptr to clear.
 */
void setTimelineProvider(std::function<std::string()> provider);

/**
 * The /timeline payload: the registered provider's JSON, or
 * {"enabled":false} when none is registered.
 */
std::string timelineJson();

/** @} */

/**
 * Dump a flight record — every ring's recent spans, the status board
 * and a registry snapshot — to `flightrec-<ts>.json` under the
 * configured directory. Returns the path, or "" when no tracer is
 * installed or the file cannot be written. Safe to call manually at
 * any time; the panic/signal/stall hooks go through it at most once
 * per tracer install.
 */
std::string flightRecordNow(std::string_view reason);

}  // namespace sp::obs

#endif  // SP_OBS_TRACE_H
