file(REMOVE_RECURSE
  "libsp_mutate.a"
)
