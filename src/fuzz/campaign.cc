#include "fuzz/campaign.h"

#include <chrono>
#include <thread>

#include "obs/covmap.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "prog/gen.h"
#include "util/logging.h"

namespace sp::fuzz {

namespace {

/**
 * Publish a worker's current pipeline stage to the status board. One
 * relaxed load when nobody is watching (no status server, no tracer
 * watchdog) — the gate is the whole cost of an unobserved campaign.
 */
inline void
boardStage(const detail::WorkerEnv &env, obs::WorkerStage stage,
           uint64_t slot = 0)
{
    if (obs::introspectionEnabled())
        obs::statusBoard().setStage(env.worker_id, stage, slot);
}

const char *
laneName(MutationLane lane)
{
    switch (lane) {
      case MutationLane::Seed:
        return "seed";
      case MutationLane::Argument:
        return "arg";
      case MutationLane::Structural:
        return "structural";
    }
    return "?";
}

/** Registry handles for the fuzz-loop counters (looked up once). */
struct FuzzMetrics
{
    obs::Counter &execs;
    obs::Counter &arg_mutants;
    obs::Counter &arg_admitted;
    obs::Counter &structural_mutants;
    obs::Counter &structural_admitted;
    obs::Counter &seed_programs;

    static FuzzMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static FuzzMetrics metrics{
            reg.counter("fuzz.execs"),
            reg.counter("fuzz.mutants.arg"),
            reg.counter("fuzz.mutants.arg_admitted"),
            reg.counter("fuzz.mutants.structural"),
            reg.counter("fuzz.mutants.structural_admitted"),
            reg.counter("fuzz.seed_programs"),
        };
        return metrics;
    }
};

uint64_t
microsSince(std::chrono::steady_clock::time_point start)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

/**
 * Checkpoint stage. Runs in the worker that executed the slot
 * completing a grid boundary; that worker blocks until the ledger's
 * contiguous-prefix watermark covers every earlier slot (not just the
 * aggregate count — later-claimed slots finishing early must not
 * unblock it past a still-running earlier slot) and until every
 * earlier checkpoint has been emitted, then snapshots the campaign.
 * Both waits sleep on condition variables; the wait makes each
 * checkpoint a consistent prefix snapshot, so the timeline is monotone
 * no matter how slots interleaved across workers.
 */
void
maybeEmitCheckpoint(detail::WorkerEnv &env, uint64_t slot)
{
    detail::CampaignShared &shared = *env.shared;
    const uint64_t every = shared.opts->checkpoint_every;
    if (slot % every != 0)
        return;
    const uint64_t target = slot / every - shared.board_base - 1;

    boardStage(env, obs::WorkerStage::Checkpoint, slot);
    if (shared.ledger->prefixCompleted() < slot ||
        shared.checkpoints_done.load(std::memory_order_acquire) !=
            target) {
        const auto wait_start = std::chrono::steady_clock::now();
        shared.ledger->waitForPrefix(slot);
        {
            std::unique_lock<std::mutex> lock(shared.checkpoint_mu);
            shared.checkpoint_cv.wait(lock, [&shared, target] {
                return shared.checkpoints_done.load(
                           std::memory_order_acquire) == target;
            });
        }
        env.wait_us += microsSince(wait_start);
    }

    obs::TraceSpan span(obs::SpanKind::Checkpoint, slot);
    Checkpoint cp;
    cp.execs = slot;
    cp.edges = shared.corpus->edgeCount();
    cp.blocks = shared.corpus->blockCount();
    cp.crashes = shared.crashes->uniqueCrashes();
    shared.board.push_back(cp);

    if (obs::timingEnabled()) {
        static obs::Histogram &delta_hist =
            obs::Registry::global().histogram(
                "fuzz.checkpoint.edge_delta");
        delta_hist.record(
            static_cast<double>(cp.edges - shared.last_checkpoint_edges));
    }
    if (auto *sink = obs::sink()) {
        sink->event(
            "coverage_checkpoint",
            {{"execs", cp.execs},
             {"edges", cp.edges},
             {"blocks", cp.blocks},
             {"crashes", cp.crashes},
             {"edge_delta", cp.edges - shared.last_checkpoint_edges},
             {"corpus_size", shared.corpus->size()}});
    }
    shared.last_checkpoint_edges = cp.edges;
    // Covmap merge point: still before the checkpoints_done publish,
    // so consecutive boundary owners never merge concurrently. Shards
    // of workers running slots past this boundary may already hold a
    // few of their hits — window boundaries are approximate under
    // concurrency, the cumulative map is exact.
    if (shared.opts->covmap != nullptr)
        shared.opts->covmap->onCheckpoint(slot);
    // Policy posterior merge: same serialized-owner discipline. Rewards
    // recorded after this merge fold in at the next boundary.
    if (shared.policy != nullptr)
        shared.policy->onCheckpoint(slot);
    // Timeline sample: after both merges (so the tick sees this
    // boundary's covmap summary and posterior), still before the
    // publish — samples are serialized and land exactly on the grid.
    if (shared.opts->timeline != nullptr) {
        shared.opts->timeline->onCheckpoint(
            makeTimelineTick(cp, shared.corpus->size(),
                             shared.opts->covmap, shared.policy));
    }
    {
        std::lock_guard<std::mutex> lock(shared.checkpoint_mu);
        shared.checkpoints_done.store(target + 1,
                                      std::memory_order_release);
    }
    shared.checkpoint_cv.notify_all();
}

/**
 * Execute + triage/admit stages for one mutant. Claims one virtual-time
 * slot (after instantiation, so a stale site never wastes budget),
 * runs the program, records crashes, offers it to the corpus, tallies
 * and traces the outcome, then retires the slot and runs the checkpoint
 * stage. Returns false when no slot could be claimed (budget spent).
 *
 * `base`/`base_result` identify the program the mutant was derived
 * from (argument lane only); they exist solely for the campaign's
 * mutation observer and may be null.
 *
 * `arm` is the policy reward arm the mutant is attributed to (-1 for
 * unattributed executions, i.e. the seed stage): after triage/admit
 * the policy receives a Reward{new_edges, new_blocks, crash} stamped
 * with the slot, so reward feedback lands on the same virtual-time
 * grid as everything else.
 */
bool
executeSlot(detail::WorkerEnv &env, const prog::Prog &program,
            MutationLane lane, const mut::ArgLocation *site,
            bool bounded, int arm = -1,
            const prog::Prog *base = nullptr,
            const exec::ExecResult *base_result = nullptr)
{
    detail::CampaignShared &shared = *env.shared;
    const BudgetGrant grant = shared.ledger->claim(1, bounded);
    if (grant.empty())
        return false;
    const uint64_t slot = grant.begin + 1;  // 1-based execution number

    boardStage(env, obs::WorkerStage::Execute, slot);
    auto result = env.executor->run(program);
    if (env.cov_shard != nullptr) {
        for (const auto &call : result.calls)
            env.cov_shard->recordTrace(call.blocks);
    }
    ++env.local_execs;
    if (env.execs_out != nullptr)
        *env.execs_out = slot;

    boardStage(env, obs::WorkerStage::Triage, slot);
    size_t new_edges = 0;
    size_t new_blocks = 0;
    bool admitted;
    {
        obs::TraceSpan span(obs::SpanKind::Triage, slot);
        if (result.crashed)
            shared.crashes->record(result.bug_index, program, slot);
        admitted = shared.corpus->maybeAdd(program, result, slot,
                                           &new_edges, &new_blocks);
    }
    if (shared.policy != nullptr && arm >= 0) {
        Reward reward;
        reward.new_edges = new_edges;
        reward.new_blocks = new_blocks;
        reward.crash = result.crashed;
        reward.slot = slot;
        shared.policy->recordReward(env.worker_id, arm, reward);
    }

    detail::LaneTally &tally = shared.lanes[laneIndex(lane)];
    tally.produced.fetch_add(1, std::memory_order_relaxed);
    if (admitted)
        tally.admitted.fetch_add(1, std::memory_order_relaxed);

    FuzzMetrics &metrics = FuzzMetrics::get();
    metrics.execs.inc();
    switch (lane) {
      case MutationLane::Seed:
        metrics.seed_programs.inc();
        break;
      case MutationLane::Argument:
        metrics.arg_mutants.inc();
        if (admitted)
            metrics.arg_admitted.inc();
        break;
      case MutationLane::Structural:
        metrics.structural_mutants.inc();
        if (admitted)
            metrics.structural_admitted.inc();
        break;
    }
    if (shared.observer != nullptr && *shared.observer &&
        site != nullptr && base != nullptr) {
        MutationEvent event;
        event.worker = env.worker_id;
        event.slot = slot;
        event.base = base;
        event.base_result = base_result;
        event.site = site;
        event.mutant = &program;
        event.result = &result;
        event.admitted = admitted;
        event.new_edges = new_edges;
        (*shared.observer)(event);
    }
    if (auto *sink = obs::sink()) {
        sink->event(
            "mutation_outcome",
            {{"execs", slot},
             {"lane", laneName(lane)},
             {"calls", program.calls.size()},
             {"admitted", admitted},
             {"crashed", result.crashed},
             {"new_edges", new_edges},
             {"site_call",
              site ? static_cast<int64_t>(site->call_index)
                   : int64_t{-1}}});
    }
    shared.ledger->complete(grant);
    maybeEmitCheckpoint(env, slot);
    return true;
}

}  // namespace

exec::ExecOptions
execOptionsFor(const FuzzOptions &opts)
{
    exec::ExecOptions exec_opts;
    exec_opts.deterministic = !opts.noisy;
    exec_opts.noise_seed = opts.seed ^ 0xabcdef;
    exec_opts.backend = opts.exec_backend;
    return exec_opts;
}

obs::TimelineTick
makeTimelineTick(const Checkpoint &cp, size_t corpus_size,
                 const obs::CovMap *covmap,
                 const DecisionPolicy *policy)
{
    obs::TimelineTick tick;
    tick.execs = cp.execs;
    tick.edges = cp.edges;
    tick.blocks = cp.blocks;
    tick.crashes = cp.crashes;
    tick.corpus_size = corpus_size;
    if (covmap != nullptr) {
        const obs::CovSummary cov = covmap->summary();
        tick.have_cov = true;
        tick.cov_blocks_hit = cov.blocks_hit;
        tick.cov_edges_hit = cov.edges_hit;
        tick.cov_total_block_hits = cov.total_block_hits;
        tick.cov_frontier_size = cov.frontier_size;
        tick.cov_stray_edges = cov.stray_edges;
    }
    if (policy != nullptr) {
        tick.have_policy = true;
        tick.policy_name = policy->name();
        tick.pmm_share = policy->pmmShare();
        const size_t arms = policy->armCount();
        for (size_t arm = 0; arm < arms; ++arm) {
            const uint64_t pulls =
                policy->mergedPulls(static_cast<int>(arm));
            if (pulls == 0)
                continue;
            obs::TimelineArm entry;
            entry.arm = static_cast<int>(arm);
            entry.pulls = pulls;
            entry.wins = policy->mergedWins(static_cast<int>(arm));
            tick.arms.push_back(entry);
        }
    }
    return tick;
}

std::shared_ptr<Scheduler>
makeScheduler(const FuzzOptions &opts)
{
    if (opts.scheduler)
        return opts.scheduler;
    if (opts.choose_test)
        return std::make_shared<HookScheduler>(opts.choose_test);
    return std::make_shared<RecencyScheduler>();
}

namespace detail {

void
seedStage(WorkerEnv &env, const kern::Kernel &kernel)
{
    const FuzzOptions &opts = *env.shared->opts;
    // One trace id covers the whole seed round: the generation span
    // plus every seed execution share it, so the trace shows seeding
    // as one unit of pipeline work.
    obs::TraceScope trace(obs::beginTrace());
    boardStage(env, obs::WorkerStage::Seed);
    // Injected seeds (fleet seed batches) run before the generated
    // corpus: they bootstrap the local corpus with fleet-wide coverage
    // so the generated seeds and every mutation round build on it.
    // Empty in every non-fleet campaign, leaving this stage — and the
    // golden timelines pinned on it — untouched.
    for (const auto &seed : opts.injected_seeds)
        executeSlot(env, seed, MutationLane::Seed, nullptr,
                    /*bounded=*/false, /*arm=*/-1);
    std::vector<prog::Prog> seeds;
    {
        obs::TraceSpan span(obs::SpanKind::Seed, opts.seed_corpus_size);
        seeds = prog::generateCorpus(*env.rng, kernel.table(),
                                     opts.seed_corpus_size,
                                     opts.mutator.gen);
    }
    for (const auto &seed : seeds)
        executeSlot(env, seed, MutationLane::Seed, nullptr,
                    /*bounded=*/false, /*arm=*/-1);
}

void
workerLoop(WorkerEnv &env, const kern::Kernel &kernel)
{
    const auto loop_start = std::chrono::steady_clock::now();
    CampaignShared &shared = *env.shared;
    const FuzzOptions &opts = *shared.opts;
    BudgetLedger &ledger = *shared.ledger;
    if (obs::traceEnabled() || obs::introspectionEnabled()) {
        obs::setRingLabel("worker" +
                          std::to_string(env.worker_id));
    }

    while (!ledger.exhausted() && !shared.stopped()) {
        if (shared.corpus->empty()) {
            // Everything crashed at seed time; regenerate. Concurrent
            // workers may all reseed here — harmless duplicated work in
            // an already-pathological campaign.
            seedStage(env, kernel);
            continue;
        }
        // One trace id per policy round: every stage below — and the
        // async localizer's inference hop — stamps its spans with it,
        // so a round is one reconstructible unit in the trace.
        obs::TraceScope trace(obs::beginTrace());

        DecisionContext ctx;
        ctx.corpus = shared.corpus;
        ctx.mutator = env.mutator;
        ctx.learned_localizer = env.localizer->learned();
        ctx.worker = env.worker_id;
        ctx.now_slot = ledger.claimed();

        // Schedule stage: the policy picks the base entry and
        // arbitrates this round's localization channel. Copy the
        // picked entry out: base references into the corpus shouldn't
        // be held across mutant executions.
        Decision decision;
        prog::Prog base_program;
        exec::ExecResult base_result;
        {
            boardStage(env, obs::WorkerStage::Schedule);
            obs::TraceSpan span(obs::SpanKind::Schedule);
            decision = shared.policy->decide(ctx, *env.rng);
            base_program.calls = decision.seed->program.calls;
            base_result = decision.seed->result;
        }

        // Localize stage, then instantiate + execute per site. The
        // base program is copied once per instantiated mutant. The
        // localizer reports which channel *actually* answered (an
        // async model can be forced onto the random fallback), and the
        // argument lane's rewards are attributed to that channel.
        mut::Localization loc;
        {
            boardStage(env, obs::WorkerStage::Localize);
            obs::TraceSpan span(obs::SpanKind::Localize);
            loc = env.localizer->localizeChosen(
                base_program, base_result, *env.rng,
                opts.max_sites_per_base, decision.use_pmm);
            span.setArg(loc.sites.size());
        }
        const int arg_arm = shared.policy->armFor(
            decision.seed_bucket, mut::MutationType::ArgumentMutation,
            loc.channel);
        for (const auto &site : loc.sites) {
            for (size_t m = 0;
                 m < opts.mutations_per_site && !ledger.exhausted();
                 ++m) {
                prog::Prog mutant;
                mutant.calls = base_program.calls;
                bool instantiated;
                {
                    boardStage(env, obs::WorkerStage::Instantiate);
                    obs::TraceSpan span(obs::SpanKind::Instantiate);
                    instantiated = env.mutator->instantiateArgMutation(
                        mutant, site, *env.rng);
                }
                if (!instantiated)
                    break;
                executeSlot(env, mutant, MutationLane::Argument, &site,
                            /*bounded=*/true, arg_arm, &base_program,
                            &base_result);
            }
            if (ledger.exhausted() || shared.stopped())
                break;
        }

        // Structural mutations (insertion/removal) with the policy
        // choosing the operator class per mutant — the "existing
        // random mutators" lane. Structural operators never consult
        // the model, so their rewards sit on the Random channel.
        for (size_t s = 0; s < opts.structural_mutations_per_base &&
                           !ledger.exhausted();
             ++s) {
            prog::Prog mutant;
            mutant.calls = base_program.calls;
            mut::MutationType op;
            {
                boardStage(env, obs::WorkerStage::Instantiate);
                obs::TraceSpan span(obs::SpanKind::Instantiate, 1);
                op = shared.policy->pickOperator(ctx, decision,
                                                 *env.rng, mutant);
                switch (op) {
                  case mut::MutationType::ArgumentMutation: {
                    // Operator landed on arguments: one random-site
                    // mutant (the fallback lane even when a learned
                    // localizer is installed, §3.4).
                    mut::RandomLocalizer fallback;
                    auto fallback_sites =
                        fallback.localize(mutant, *env.rng, 1);
                    if (!fallback_sites.empty()) {
                        env.mutator->instantiateArgMutation(
                            mutant, fallback_sites[0], *env.rng);
                    }
                    break;
                  }
                  case mut::MutationType::CallInsertion:
                    env.mutator->insertCall(mutant, *env.rng);
                    break;
                  case mut::MutationType::CallRemoval:
                    env.mutator->removeCall(mutant, *env.rng);
                    break;
                }
            }
            executeSlot(env, mutant, MutationLane::Structural, nullptr,
                        /*bounded=*/true,
                        shared.policy->armFor(
                            decision.seed_bucket, op,
                            mut::LocalizerChannel::Random));
        }
    }
    boardStage(env, obs::WorkerStage::Idle);
    env.wall_us += microsSince(loop_start);
}

FuzzReport
finalizeCampaign(const CampaignShared &shared,
                 const std::vector<Checkpoint> &timeline,
                 uint64_t total_execs, uint64_t campaign_execs,
                 double wall_sec, size_t workers)
{
    FuzzReport report;
    report.timeline = timeline;
    report.final_edges = shared.corpus->totalCoverage().edgeCount();
    report.final_blocks = shared.corpus->totalCoverage().blockCount();
    report.execs = total_execs;
    report.corpus_size = shared.corpus->size();
    report.final_crashes = shared.crashes->uniqueCrashes();
    for (size_t lane = 0; lane < kMutationLanes; ++lane) {
        report.lanes[lane].produced =
            shared.lanes[lane].produced.load(std::memory_order_relaxed);
        report.lanes[lane].admitted =
            shared.lanes[lane].admitted.load(std::memory_order_relaxed);
    }

    const double execs_per_sec =
        wall_sec > 0.0 ? static_cast<double>(campaign_execs) / wall_sec
                       : 0.0;
    FuzzMetrics &metrics = FuzzMetrics::get();
    auto rate = [](const obs::Counter &hit, const obs::Counter &total) {
        return total.value() == 0
                   ? 0.0
                   : static_cast<double>(hit.value()) /
                         static_cast<double>(total.value());
    };
    auto &reg = obs::Registry::global();
    reg.gauge("fuzz.execs_per_sec").set(execs_per_sec);
    reg.gauge("fuzz.mutant_success.arg")
        .set(rate(metrics.arg_admitted, metrics.arg_mutants));
    reg.gauge("fuzz.mutant_success.structural")
        .set(rate(metrics.structural_admitted,
                  metrics.structural_mutants));
    // Fold any post-checkpoint rewards and publish the policy.* gauges
    // (workers have joined; the final merge is single-threaded).
    if (shared.policy != nullptr)
        shared.policy->exportMetrics();
    if (auto *sink = obs::sink()) {
        sink->event(
            "campaign_summary",
            {{"execs", campaign_execs},
             {"wall_sec", wall_sec},
             {"execs_per_sec", execs_per_sec},
             {"final_edges", report.final_edges},
             {"final_blocks", report.final_blocks},
             {"corpus_size", report.corpus_size},
             {"unique_crashes", report.final_crashes},
             {"arg_mutants", metrics.arg_mutants.value()},
             {"structural_mutants", metrics.structural_mutants.value()},
             {"workers", workers},
             {"admitted_seed",
              report.lane(MutationLane::Seed).admitted},
             {"admitted_arg",
              report.lane(MutationLane::Argument).admitted},
             {"admitted_structural",
              report.lane(MutationLane::Structural).admitted},
             {"policy",
              shared.policy != nullptr ? shared.policy->name() : "?"}});
    }
    return report;
}

}  // namespace detail

namespace {

CampaignOptions
normalized(CampaignOptions options)
{
    if (options.workers == 0)
        options.workers = 1;
    return options;
}

}  // namespace

CampaignEngine::CampaignEngine(const kern::Kernel &kernel,
                               CampaignOptions options,
                               LocalizerFactory make_localizer)
    : kernel_(kernel), opts_(normalized(std::move(options))),
      policy_(makePolicy(opts_.fuzz)),
      mutator_(kernel.table(), opts_.fuzz.mutator),
      executors_(kernel, execOptionsFor(opts_.fuzz), opts_.workers),
      corpus_(opts_.workers), crashes_(kernel)
{
    SP_ASSERT(make_localizer != nullptr,
              "campaign engine needs a localizer factory");
    rngs_.reserve(opts_.workers);
    localizers_.reserve(opts_.workers);
    for (size_t w = 0; w < opts_.workers; ++w) {
        // Worker 0's stream is the campaign seed itself, so a 1-worker
        // campaign draws exactly like the legacy Fuzzer.
        rngs_.push_back(
            std::make_unique<Rng>(splitSeed(opts_.fuzz.seed, w)));
        auto localizer = make_localizer(w);
        SP_ASSERT(localizer != nullptr,
                  "localizer factory returned null for worker %zu", w);
        localizers_.push_back(std::move(localizer));
    }
}

FuzzReport
CampaignEngine::run()
{
    SP_ASSERT(!ran_, "CampaignEngine::run is one-shot");
    ran_ = true;
    const auto wall_start = std::chrono::steady_clock::now();

    // Campaign-scoped gauges from a previous run must not linger: an
    // 8-worker campaign followed by a 2-worker one would otherwise
    // still report fuzz.worker_busy_ratio.w7, and a random-localizer
    // campaign would re-serve the previous run's cache hit ratio.
    // Worker gauges are unregistered (looked up fresh at every set,
    // no cached handles); the cache ratio is only reset to 0 because
    // the localizer hot path holds a cached handle to it.
    auto &reg = obs::Registry::global();
    reg.unregisterGaugesWithPrefix("fuzz.worker_busy_ratio.w");
    reg.resetGaugesWithPrefix("snowplow.cache_hit_ratio");
    // Counters scoped the same way: covmap windows/stray tallies and
    // the prediction-cache hit/miss counts describe one campaign, not
    // the process, and their hot paths cache handles (reset keeps
    // those valid where unregister would not).
    reg.resetCountersWithPrefix("covmap.");
    reg.resetGaugesWithPrefix("covmap.");
    reg.resetCountersWithPrefix("snowplow.cache.");
    // Policy arm statistics describe one campaign, not the process,
    // and their export path caches gauge handles.
    reg.resetGaugesWithPrefix("policy.");
    reg.resetCountersWithPrefix("policy.");
    // Timeline bookkeeping is per campaign too.
    reg.resetCountersWithPrefix("timeline.");
    reg.resetGaugesWithPrefix("timeline.");
    // End-of-run wall-clock gauges from a previous campaign must not
    // appear in this campaign's timeline samples: they carry machine
    // time, which would make an otherwise-deterministic artifact
    // differ across back-to-back runs.
    reg.resetGaugesWithPrefix("fuzz.execs_per_sec");
    reg.resetGaugesWithPrefix("fuzz.mutant_success.");
    // Latency/size distributions are campaign-scoped the same way as
    // the counters above — their hot paths cache handles, so reset in
    // place. Without this, a second campaign's timeline inherits the
    // first one's exec.restore_us / exec.dirty_entries / nn.gemm_us
    // moments.
    reg.resetDistributionsWithPrefix("exec.");
    reg.resetDistributionsWithPrefix("fuzz.");
    reg.resetDistributionsWithPrefix("covmap.");
    reg.resetDistributionsWithPrefix("nn.");
    reg.resetDistributionsWithPrefix("timeline.");
    // The recorder took its baselines at construction, before the
    // resets above; recapture them so campaign-reset counters read as
    // raw campaign counts instead of value-minus-stale-baseline.
    if (opts_.fuzz.timeline != nullptr)
        opts_.fuzz.timeline->rebaseline();

    detail::CampaignShared shared;
    shared.opts = &opts_.fuzz;
    shared.corpus = &corpus_;
    shared.crashes = &crashes_;
    policy_->beginCampaign(opts_.workers);
    shared.policy = policy_.get();
    if (opts_.on_mutation)
        shared.observer = &opts_.on_mutation;
    BudgetLedger ledger(opts_.fuzz.exec_budget,
                        opts_.fuzz.checkpoint_every);
    shared.ledger = &ledger;

    // Live introspection: announce the worker lanes and register the
    // campaign-state provider /status and flight records embed. The
    // provider references this stack frame, so before run() returns it
    // is replaced by a frozen final snapshot (post-run scrapes still
    // see the campaign's end state). statusJson() invokes the provider
    // under the same mutex setStatusProvider() takes, so the swap in
    // ~ProviderGuard also *waits out* any in-flight invocation — once
    // it returns, nothing can touch these stack captures again.
    obs::statusBoard().reset(opts_.workers);
    std::function<std::string()> campaign_status = [&shared, &ledger,
                                                    this] {
        std::string out = "{\"workers\":";
        out += std::to_string(opts_.workers);
        out += ",\"corpus_size\":";
        out += std::to_string(corpus_.size());
        out += ",\"frontier_edges\":";
        out += std::to_string(corpus_.edgeCount());
        out += ",\"frontier_blocks\":";
        out += std::to_string(corpus_.blockCount());
        out += ",\"unique_crashes\":";
        out += std::to_string(crashes_.uniqueCrashes());
        out += ",\"budget\":";
        out += std::to_string(ledger.budget());
        out += ",\"claimed\":";
        out += std::to_string(ledger.claimed());
        out += ",\"completed\":";
        out += std::to_string(ledger.completed());
        out += ",\"ledger_watermark\":";
        out += std::to_string(ledger.prefixCompleted());
        out += ",\"checkpoints\":";
        out += std::to_string(shared.checkpoints_done.load(
            std::memory_order_acquire));
        out += ",\"policy\":";
        out += policy_->statusJson();
        out += "}";
        return out;
    };
    obs::setStatusProvider(campaign_status);
    struct ProviderGuard
    {
        const std::function<std::string()> &live;

        ~ProviderGuard()
        {
            std::string frozen = live();
            obs::setStatusProvider(
                [snapshot = std::move(frozen)] { return snapshot; });
        }
    } provider_guard{campaign_status};

    std::vector<detail::WorkerEnv> envs(opts_.workers);
    for (size_t w = 0; w < opts_.workers; ++w) {
        detail::WorkerEnv &env = envs[w];
        env.shared = &shared;
        env.worker_id = w;
        env.rng = rngs_[w].get();
        env.executor = &executors_.at(w);
        env.mutator = &mutator_;
        env.localizer = localizers_[w].get();
        if (opts_.fuzz.covmap != nullptr) {
            env.cov_shard = &opts_.fuzz.covmap->shard(
                w % opts_.fuzz.covmap->shardCount());
        }
    }

    // Seed stage: worker 0, on the calling thread, before any worker
    // thread exists — the generated corpus and its admission order are
    // deterministic regardless of worker count.
    if (corpus_.empty())
        detail::seedStage(envs[0], kernel_);

    // Mutation stages: workers 1..N-1 on threads, worker 0 here (a
    // 1-worker campaign therefore never spawns a thread).
    std::vector<std::thread> threads;
    threads.reserve(opts_.workers - 1);
    for (size_t w = 1; w < opts_.workers; ++w) {
        threads.emplace_back(
            [this, &envs, w] { detail::workerLoop(envs[w], kernel_); });
    }
    detail::workerLoop(envs[0], kernel_);
    for (auto &thread : threads)
        thread.join();

    for (size_t w = 0; w < opts_.workers; ++w) {
        const detail::WorkerEnv &env = envs[w];
        const double busy =
            env.wall_us > 0
                ? static_cast<double>(env.wall_us - env.wait_us) /
                      static_cast<double>(env.wall_us)
                : 0.0;
        reg.gauge(obs::workerMetric("fuzz.worker_busy_ratio", w))
            .set(busy);
    }

    const double wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return detail::finalizeCampaign(shared, shared.board,
                                    ledger.completed(),
                                    ledger.completed(), wall_sec,
                                    opts_.workers);
}

}  // namespace sp::fuzz
