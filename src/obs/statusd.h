/**
 * @file
 * Live campaign introspection over HTTP: a tiny dependency-free
 * listener (plain POSIX sockets, one serving thread) exposing
 *
 *   GET /metrics  — Prometheus text exposition rendered from the
 *                   global metrics registry (counters, gauges, and
 *                   histograms as summaries with quantiles);
 *   GET /status   — obs::statusJson(): per-worker current stage and
 *                   slot age from the status board plus the campaign
 *                   provider's corpus/ledger/crash snapshot;
 *   GET /coverage — obs::coverageJson(): the live coverage-cartography
 *                   summary (blocks/edges hit, top frontier targets)
 *                   from the registered coverage provider, or
 *                   {"enabled":false} when no campaign records one;
 *   GET /healthz  — "ok" (liveness probe).
 *
 * The server binds 127.0.0.1 only — it is an operator window into a
 * long campaign, not a public endpoint. Port 0 picks an ephemeral
 * port; drivers print port() so scripts can find it. Constructing a
 * server takes an obs::claimIntrospection() claim so the status board
 * populates; destruction releases it (reference-counted, so a tracer
 * or second server keeps the board live).
 */
#ifndef SP_OBS_STATUSD_H
#define SP_OBS_STATUSD_H

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/netio.h"

namespace sp::obs {

/**
 * Render the global registry as Prometheus text exposition. Metric
 * names are prefixed with `sp_` and sanitized (dots → underscores);
 * histograms become summaries: `<name>{quantile="0.5"} v` lines plus
 * `<name>_sum` / `<name>_count`.
 */
std::string renderPrometheus();

/** The HTTP listener. One serving thread, one request per connection. */
class StatusServer
{
  public:
    /**
     * Bind and start serving. @param port  TCP port on 127.0.0.1;
     * 0 = ephemeral. SP_FATALs when the socket cannot be bound.
     */
    explicit StatusServer(uint16_t port);

    /** Stops accepting, closes the socket and joins the thread. */
    ~StatusServer();

    StatusServer(const StatusServer &) = delete;
    StatusServer &operator=(const StatusServer &) = delete;

    /** The bound port (the ephemeral pick when constructed with 0). */
    uint16_t port() const { return listener_.port(); }

    /** Requests served so far (tests). */
    uint64_t requestsServed() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

  private:
    void serveLoop();

    /** Closed by serveLoop after it observes stopping_ (never by the
     *  destructor, which only unblock()s — see ~StatusServer). */
    TcpListener listener_;
    std::atomic<bool> stopping_{false};
    std::atomic<uint64_t> requests_{0};
    std::thread thread_;
};

}  // namespace sp::obs

#endif  // SP_OBS_STATUSD_H
