/**
 * @file
 * Campaign timeline observatory: virtual-time metric history.
 *
 * The metrics registry, the covmap summary, and the policy posterior
 * are all point-in-time views; trajectory claims (§5.5 throughput
 * parity, fig. 6 coverage growth) need the *history* — how those views
 * evolve over a campaign — recorded on a grid two runs can be aligned
 * on. The TimelineRecorder supplies that history with the repo's
 * checkpoint discipline:
 *
 *  - the serialized checkpoint owner (the same context that merges
 *    CovShards and Thompson posteriors, see fuzz/campaign.cc) hands the
 *    recorder one TimelineTick per virtual-time grid boundary; the
 *    recorder samples the full registry (counters, gauges, cheap
 *    histogram moments) under that serialization, so samples land
 *    exactly on the grid regardless of worker count;
 *  - virtual time is the clock: a `--workers 1` campaign with no
 *    telemetry sink produces a bit-identical JSONL artifact run over
 *    run (every wall-clock-derived metric is timingEnabled()-gated, and
 *    `wall_us` is only emitted when a sink enabled timing). Under
 *    concurrency the tick facts stay prefix-consistent while registry
 *    values are approximate at window boundaries — exactly the covmap
 *    window contract;
 *  - a bounded in-memory ring keeps the recent window for the
 *    `/timeline` endpoint and flight-recorder embeds; the JSONL
 *    artifact (`fuzz --timeline-out`) is delta-encoded and
 *    zero-suppressed (counters as non-zero deltas, gauges on change,
 *    histograms when their count moved) so long campaigns stay small;
 *  - per-sample histogram summaries use Histogram::stat() — exact
 *    moments, O(shards) — and full percentile summaries are computed
 *    once, in the final record, keeping the per-checkpoint cost under
 *    1% of a campaign slot (BM_TimelineOverhead gates this).
 *
 * The offline half (src/analysis/compare.h) aligns two artifacts on
 * the grid and turns them into a regression verdict.
 */
#ifndef SP_OBS_TIMELINE_H
#define SP_OBS_TIMELINE_H

#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace sp::obs {

/** One policy arm's merged posterior counts at a sample point. */
struct TimelineArm
{
    int arm = 0;
    uint64_t pulls = 0;
    uint64_t wins = 0;
};

/**
 * Campaign facts the fuzz layer supplies per grid boundary. Plain
 * fields only: sp_obs stays free of fuzz/policy types, and the builder
 * (fuzz::makeTimelineTick) owns the mapping.
 */
struct TimelineTick
{
    uint64_t execs = 0;        ///< virtual time (grid boundary)
    uint64_t edges = 0;        ///< boolean corpus edge coverage
    uint64_t blocks = 0;
    uint64_t crashes = 0;      ///< unique crashes
    uint64_t corpus_size = 0;

    bool have_cov = false;     ///< covmap summary present
    uint64_t cov_blocks_hit = 0;
    uint64_t cov_edges_hit = 0;
    uint64_t cov_total_block_hits = 0;
    uint64_t cov_frontier_size = 0;
    uint64_t cov_stray_edges = 0;

    bool have_policy = false;
    std::string policy_name;
    double pmm_share = 0.0;
    /** Non-zero-pull arms, ascending arm index. */
    std::vector<TimelineArm> arms;
};

/** Cheap per-sample histogram summary (exact moments, no samples). */
struct TimelineHist
{
    uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/** One recorded sample: the tick plus the registry state. */
struct TimelineSample
{
    TimelineTick tick;
    /** Counter values relative to the recorder's baseline (campaign-
     *  cumulative), non-zero entries only. */
    std::map<std::string, uint64_t> counters;
    /** Non-zero gauge values (absolute). */
    std::map<std::string, double> gauges;
    /** Histograms with at least one recorded value. */
    std::map<std::string, TimelineHist> hists;
    /** Sampling cost; 0 unless timingEnabled(). */
    uint64_t wall_us = 0;
};

/** Recorder configuration. */
struct TimelineOptions
{
    /** Samples retained in memory for /timeline and flight records. */
    size_t ring_capacity = 128;
    /** Registry to sample; null = Registry::global(). */
    Registry *registry = nullptr;
};

/**
 * The campaign-wide metric-history accumulator. onCheckpoint() and
 * finalize() must be called from serialized contexts (the in-order
 * checkpoint owner / after workers joined); recentJson() and the
 * accessors are safe from any thread concurrently with sampling.
 */
class TimelineRecorder
{
  public:
    /** JSONL artifact format version (timeline_header "version"). */
    static constexpr int kFormatVersion = 1;

    explicit TimelineRecorder(TimelineOptions opts = {});
    ~TimelineRecorder();

    TimelineRecorder(const TimelineRecorder &) = delete;
    TimelineRecorder &operator=(const TimelineRecorder &) = delete;

    /**
     * Open the delta-encoded JSONL artifact and write its header line.
     * `extra_header_json` is spliced into the header object (e.g.
     * `"campaign":{"seed":7,...}`); pass "" for none. Returns false
     * (and stays closed) when the file cannot be opened.
     */
    bool openLog(const std::string &path,
                 const std::string &extra_header_json = "");

    /**
     * Recapture the counter/histogram-count baselines from the live
     * registry. CampaignEngine::run() calls this right after its
     * campaign-start metric resets: counters the campaign zeroes
     * rebaseline to 0 (their raw value IS the campaign count), while
     * untouched process-lifetime counters keep being subtracted out.
     * Without this, a counter that climbs back to its construction-
     * time value would ambiguously read as 0.
     */
    void rebaseline();

    /**
     * Record one sample on the virtual-time grid: snapshot the
     * registry, push the ring, append one `timeline_sample` line to
     * the artifact. Serialized-owner only; no-op once finalized.
     */
    void onCheckpoint(const TimelineTick &tick);

    /**
     * Final sample + `timeline_final` line (cumulative counters, full
     * histogram percentile summaries — the one place a full
     * Histogram::snapshot() runs) + log close. Idempotent; safe
     * without an open log (the ring still gets the final sample).
     */
    void finalize(const TimelineTick &tick);

    /** Samples recorded so far (including the final one). */
    size_t sampleCount() const;

    /** Copy of the retained ring, oldest first (tests/inspection). */
    std::vector<TimelineSample> samples() const;

    /**
     * The /timeline payload: {"enabled":true,"samples":N,
     * "ring_capacity":C,"window":[...]} with at most `max_samples`
     * newest samples, oldest first. Counters are campaign-cumulative,
     * gauges absolute, histograms [count,mean,min,max].
     */
    std::string recentJson(size_t max_samples = 16) const;

  private:
    /** Re-read the baseline maps from the registry; caller holds mu_
     *  (or is the constructor). */
    void captureBaselinesLocked();
    /** Snapshot the registry into `sample` (counters rel. baseline). */
    void sampleRegistry(TimelineSample &sample) const;
    /** Append one delta-encoded sample line; caller holds mu_. */
    void writeSampleLine(const TimelineSample &sample);
    /** Ring push with eviction; caller holds mu_. */
    void pushLocked(TimelineSample sample);

    const TimelineOptions opts_;
    Registry &registry_;

    /** Counter / histogram-count values at construction: everything a
     *  previous campaign in this process accumulated is subtracted out
     *  so artifacts of back-to-back runs are comparable. */
    std::map<std::string, uint64_t> baseline_counters_;
    std::map<std::string, uint64_t> baseline_hist_counts_;

    mutable std::mutex mu_;
    std::deque<TimelineSample> ring_;
    uint64_t total_samples_ = 0;
    /** Last emitted state for artifact delta encoding. */
    std::map<std::string, uint64_t> last_counters_;
    std::map<std::string, double> last_gauges_;
    std::map<std::string, uint64_t> last_hist_counts_;
    std::map<int, TimelineArm> last_arms_;
    std::FILE *log_ = nullptr;
    bool finalized_ = false;
};

}  // namespace sp::obs

#endif  // SP_OBS_TIMELINE_H
