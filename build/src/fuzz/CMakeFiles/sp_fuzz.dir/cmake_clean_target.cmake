file(REMOVE_RECURSE
  "libsp_fuzz.a"
)
