/**
 * @file
 * Construction API for simulated kernels. Both the hand-written
 * subsystems (VFS/SCSI/NET) and the synthetic kernel generator assemble
 * kernels through this builder, which owns all invariant checking
 * (dense syscall ids, terminator completeness, slot bounds).
 */
#ifndef SP_KERNEL_BUILDER_H
#define SP_KERNEL_BUILDER_H

#include <string>
#include <vector>

#include "kernel/kernel.h"

namespace sp::kern {

/** Incrementally builds a Kernel; finish() validates and seals it. */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string version);

    /** Register a resource kind; returns its dense id. Idempotent. */
    ResourceKindId addResourceKind(const std::string &name);

    /** Reserve `count` global state flags; returns the first index. */
    uint16_t addFlags(uint16_t count);

    /**
     * Begin a handler for `decl` (appended to the syscall table with the
     * next dense id; the decl's id field is overwritten). Subsequent
     * addBlock calls attach to this handler until the next beginHandler.
     * Returns the syscall id.
     */
    uint32_t beginHandler(prog::SyscallDecl decl);

    /** Add a post-return effect to the current handler. */
    void addEffect(const SyscallEffect &effect);

    /**
     * Add a block to the current handler. The first block added becomes
     * the handler entry. Tokens default to bodyTokens(id).
     * Terminator defaults to Return until setBranch/setFallthrough.
     */
    uint32_t addBlock(uint16_t depth = 0,
                      std::vector<uint16_t> tokens = {});

    /**
     * Add a block to an *existing* handler (used by the kernel-version
     * evolution pass, which grows earlier handlers after later ones
     * were begun). Never changes the handler's entry.
     */
    uint32_t addBlockTo(uint32_t handler_id, uint16_t depth = 0,
                        std::vector<uint16_t> tokens = {});

    /** Make `block` branch on `cond` to taken/fallthrough. */
    void setBranch(uint32_t block, const Cond &cond, uint32_t taken,
                   uint32_t fallthrough);

    /** Make `block` fall through to `next`. */
    void setFallthrough(uint32_t block, uint32_t next);

    /** Mark `block` as a handler return point. */
    void setReturn(uint32_t block);

    /** Plant a bug at `block`. */
    void addBug(BugSite bug);

    /** Register a block as spurious-interrupt target (noise source). */
    void addInterruptBlock(uint32_t block);

    /** Current number of blocks (next block id). */
    uint32_t numBlocks() const;

    /** Read back a block under construction. */
    const BasicBlock &blockAt(uint32_t id) const;

    /** True when a bug is already planted at `block`. */
    bool hasBugAt(uint32_t block) const;

    /** Declaration of an already-begun handler. */
    const prog::SyscallDecl &declOf(uint32_t handler_id) const;

    /**
     * Validate every invariant (handler count matches table, every
     * branch has two valid targets, handler CFGs are acyclic, slots
     * referenced by conds are in range) and return the sealed kernel.
     * The builder must not be used afterwards.
     */
    Kernel finish();

  private:
    Kernel kernel_;
    bool finished_ = false;
};

}  // namespace sp::kern

#endif  // SP_KERNEL_BUILDER_H
