/**
 * @file
 * The argument-mutation query graph (paper §3.2, Figure 5).
 *
 * One heterogeneous graph joins the user-space test program and the
 * kernel coverage it triggered:
 *
 *  - *Syscall* nodes (one per call) and *Argument* nodes (one per
 *    mutable argument), connected by call-ordering, argument-ordering
 *    and argument-in/out (data-flow) edges;
 *  - *Covered* block nodes (kernel blocks the base test executed) with
 *    covered control-flow edges, and *Alternative* block nodes (blocks
 *    one not-taken branch away from the coverage) attached by uncovered
 *    control-flow edges — some alternatives flagged as the *target*;
 *  - kernel/user *context-switch* edges joining each syscall node to
 *    its handler's entry block and to the last block its invocation
 *    executed.
 *
 * The GNN predicts a MUTATE / NOT-MUTATE label for every Argument node.
 */
#ifndef SP_GRAPH_QUERY_GRAPH_H
#define SP_GRAPH_QUERY_GRAPH_H

#include <cstdint>
#include <vector>

#include "exec/executor.h"
#include "kernel/kernel.h"
#include "mutate/localizer.h"
#include "prog/value.h"

namespace sp::graph {

/** Node kinds of the query graph. */
enum class NodeKind : uint8_t {
    Syscall,
    Argument,
    Covered,
    Alternative,
};

/** Edge kinds (each is also materialized in reverse for the GNN). */
enum class EdgeKind : uint8_t {
    CallOrder,      ///< syscall i -> syscall i+1
    ArgOrder,       ///< argument j -> argument j+1 within a call
    ArgInOut,       ///< argument -> its syscall; producer -> consumer arg
    CoveredFlow,    ///< covered block -> covered block (executed edge)
    UncoveredFlow,  ///< covered block -> alternative block (not taken)
    CtxSwitch,      ///< syscall <-> kernel entry/exit blocks
    /**
     * SlotRead: covered branch block -> the argument node (of the call
     * that executed it) whose flattened slot the branch predicate
     * reads. This is the static argument-dependence edge the paper's
     * white-box analysis extracts from the kernel binary (its Angr CFG
     * recovery plus the Transformer reading `cmp` operands); adding it
     * explicitly keeps the query graph's information content equal to
     * the paper's while letting a compact GNN exploit it.
     */
    SlotRead,
};
constexpr size_t kNumEdgeKinds = 7;

/** One node. Only the fields of its kind are meaningful. */
struct Node
{
    NodeKind kind = NodeKind::Syscall;
    uint32_t syscall_id = 0;    ///< Syscall
    uint16_t call_index = 0;    ///< Syscall / Argument
    uint16_t arg_slot = 0;      ///< Argument: first flattened slot
    uint8_t arg_type_kind = 0;  ///< Argument: prog::TypeKind
    uint32_t block = 0;         ///< Covered / Alternative: kernel block
    bool is_target = false;     ///< Alternative flagged as desired
};

/** One directed edge. */
struct Edge
{
    uint32_t src = 0;
    uint32_t dst = 0;
    EdgeKind kind = EdgeKind::CallOrder;
};

/** The assembled query graph. */
struct QueryGraph
{
    std::vector<Node> nodes;
    std::vector<Edge> edges;

    /** Indices of Argument nodes (the prediction targets), in order. */
    std::vector<uint32_t> argument_nodes;

    /** Decode table: argument node -> mutation site in the program. */
    std::vector<mut::ArgLocation> argument_locations;

    /** Count nodes of one kind. */
    size_t countNodes(NodeKind kind) const;

    /** Count edges of one kind. */
    size_t countEdges(EdgeKind kind) const;
};

/**
 * Build the query graph for `prog` given its execution result on
 * `kernel`. `targets` is the desired coverage: kernel block ids the
 * mutation should reach (they are matched against the one-hop
 * alternative frontier; targets not on the frontier are ignored, and an
 * empty list builds an undirected query with no target marking).
 */
QueryGraph buildQueryGraph(const kern::Kernel &kernel,
                           const prog::Prog &prog,
                           const exec::ExecResult &result,
                           const std::vector<uint32_t> &targets);

/**
 * The one-hop alternative frontier of a coverage set: uncovered blocks
 * reachable by a single not-taken branch from a covered block (§3.1's
 * "blocks within one branch of c_i").
 */
std::vector<uint32_t> alternativeFrontier(const kern::Kernel &kernel,
                                          const exec::CoverageSet &cov);

}  // namespace sp::graph

#endif  // SP_GRAPH_QUERY_GRAPH_H
