#include "prog/serialize.h"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace sp::prog {

namespace {

void
formatArg(const Arg &arg, std::ostringstream &out)
{
    switch (arg.type->kind) {
      case TypeKind::Int:
      case TypeKind::Flags:
      case TypeKind::Const:
      case TypeKind::Len: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "0x%llx",
                      static_cast<unsigned long long>(arg.scalar));
        out << buf;
        break;
      }
      case TypeKind::Resource:
        if (arg.result_ref < 0)
            out << "nil";
        else
            out << "r" << arg.result_ref;
        break;
      case TypeKind::Ptr:
        if (arg.is_null) {
            out << "nil";
        } else {
            out << "&";
            formatArg(*arg.pointee, out);
        }
        break;
      case TypeKind::Struct:
        out << "{";
        for (size_t i = 0; i < arg.fields.size(); ++i) {
            if (i > 0)
                out << ", ";
            formatArg(*arg.fields[i], out);
        }
        out << "}";
        break;
      case TypeKind::Buffer: {
        out << "\"";
        for (uint8_t b : arg.bytes) {
            char buf[4];
            std::snprintf(buf, sizeof(buf), "%02x", b);
            out << buf;
        }
        out << "\"";
        break;
      }
    }
}

}  // namespace

std::string
formatCall(const Call &call, size_t call_index)
{
    std::ostringstream out;
    if (!call.decl->ret_resource.empty())
        out << "r" << call_index << " = ";
    out << call.decl->name << "(";
    for (size_t i = 0; i < call.args.size(); ++i) {
        if (i > 0)
            out << ", ";
        formatArg(*call.args[i], out);
    }
    out << ")";
    return out.str();
}

std::string
formatProg(const Prog &prog)
{
    std::ostringstream out;
    for (size_t i = 0; i < prog.calls.size(); ++i)
        out << formatCall(prog.calls[i], i) << "\n";
    return out.str();
}

namespace {

/** Recursive-descent parser over the serialized form. */
class Parser
{
  public:
    Parser(const std::string &text, const SyscallTable &table)
        : text_(text), table_(table)
    {
    }

    ParseResult run()
    {
        Prog prog;
        skipSpace();
        while (pos_ < text_.size()) {
            if (!parseCallLine(prog)) {
                ParseResult result;
                result.error = error_;
                return result;
            }
            skipSpace();
        }
        ParseResult result;
        result.prog = std::move(prog);
        return result;
    }

  private:
    bool
    fail(const std::string &what)
    {
        size_t line = 1, col = 1;
        for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        std::ostringstream out;
        out << "parse error at line " << line << " col " << col << ": "
            << what;
        error_ = out.str();
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    void
    skipBlanks()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t')) {
            ++pos_;
        }
    }

    bool
    expect(char c)
    {
        skipBlanks();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool
    peekIs(char c)
    {
        skipBlanks();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    bool
    parseIdent(std::string &out)
    {
        skipBlanks();
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '$')) {
            ++pos_;
        }
        if (pos_ == start)
            return fail("expected identifier");
        out = text_.substr(start, pos_ - start);
        return true;
    }

    bool
    parseHex(uint64_t &out)
    {
        skipBlanks();
        if (pos_ + 1 >= text_.size() || text_[pos_] != '0' ||
            (text_[pos_ + 1] != 'x' && text_[pos_ + 1] != 'X')) {
            return fail("expected 0x literal");
        }
        pos_ += 2;
        size_t start = pos_;
        uint64_t value = 0;
        while (pos_ < text_.size() &&
               std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
            const char c = text_[pos_];
            uint64_t digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<uint64_t>(c - '0');
            else
                digit = static_cast<uint64_t>(
                            std::tolower(static_cast<unsigned char>(c)) -
                            'a') + 10;
            value = value * 16 + digit;
            ++pos_;
        }
        if (pos_ == start)
            return fail("expected hex digits after 0x");
        out = value;
        return true;
    }

    bool
    tryKeyword(const char *kw)
    {
        skipBlanks();
        const size_t len = std::char_traits<char>::length(kw);
        if (text_.compare(pos_, len, kw) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    bool
    parseArg(const TypeRef &type, ArgPtr &out)
    {
        auto arg = std::make_unique<Arg>();
        arg->type = type;
        switch (type->kind) {
          case TypeKind::Int:
          case TypeKind::Flags:
          case TypeKind::Const:
          case TypeKind::Len:
            if (!parseHex(arg->scalar))
                return false;
            break;
          case TypeKind::Resource: {
            if (tryKeyword("nil")) {
                arg->result_ref = -1;
                break;
            }
            skipBlanks();
            if (pos_ >= text_.size() || text_[pos_] != 'r')
                return fail("expected rN or nil for resource");
            ++pos_;
            uint64_t index = 0;
            size_t start = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                index = index * 10 +
                        static_cast<uint64_t>(text_[pos_] - '0');
                ++pos_;
            }
            if (pos_ == start)
                return fail("expected digits after r");
            arg->result_ref = static_cast<int32_t>(index);
            break;
          }
          case TypeKind::Ptr:
            if (tryKeyword("nil")) {
                arg->is_null = true;
                break;
            }
            if (!expect('&'))
                return false;
            if (!parseArg(type->elem, arg->pointee))
                return false;
            break;
          case TypeKind::Struct: {
            if (!expect('{'))
                return false;
            for (size_t i = 0; i < type->fields.size(); ++i) {
                if (i > 0 && !expect(','))
                    return false;
                ArgPtr field;
                if (!parseArg(type->fields[i], field))
                    return false;
                arg->fields.push_back(std::move(field));
            }
            if (!expect('}'))
                return false;
            break;
          }
          case TypeKind::Buffer: {
            if (!expect('"'))
                return false;
            std::vector<uint8_t> bytes;
            while (pos_ + 1 < text_.size() && text_[pos_] != '"') {
                auto hexVal = [&](char c) -> int {
                    if (c >= '0' && c <= '9')
                        return c - '0';
                    c = static_cast<char>(
                        std::tolower(static_cast<unsigned char>(c)));
                    if (c >= 'a' && c <= 'f')
                        return c - 'a' + 10;
                    return -1;
                };
                int hi = hexVal(text_[pos_]);
                int lo = hexVal(text_[pos_ + 1]);
                if (hi < 0 || lo < 0)
                    return fail("bad hex byte in buffer");
                bytes.push_back(static_cast<uint8_t>(hi * 16 + lo));
                pos_ += 2;
            }
            if (!expect('"'))
                return false;
            arg->bytes = std::move(bytes);
            break;
          }
        }
        out = std::move(arg);
        return true;
    }

    bool
    parseCallLine(Prog &prog)
    {
        std::string first;
        if (!parseIdent(first))
            return false;
        std::string name = first;
        if (peekIs('=')) {
            // "rN = name(...)": validate the variable index then parse
            // the real call name.
            if (first.empty() || first[0] != 'r')
                return fail("assignment target must be rN");
            expect('=');
            if (!parseIdent(name))
                return false;
        }
        const SyscallDecl *decl = table_.find(name);
        if (decl == nullptr)
            return fail("unknown syscall: " + name);

        Call call;
        call.decl = decl;
        if (!expect('('))
            return false;
        for (size_t i = 0; i < decl->args.size(); ++i) {
            if (i > 0 && !expect(','))
                return false;
            ArgPtr arg;
            if (!parseArg(decl->args[i], arg))
                return false;
            call.args.push_back(std::move(arg));
        }
        if (!expect(')'))
            return false;
        prog.calls.push_back(std::move(call));
        return true;
    }

    const std::string &text_;
    const SyscallTable &table_;
    size_t pos_ = 0;
    std::string error_;
};

}  // namespace

ParseResult
parseProg(const std::string &text, const SyscallTable &table)
{
    return Parser(text, table).run();
}

}  // namespace sp::prog
