// Unit and property tests for the autograd engine: forward values on
// known inputs and finite-difference gradient checks for every
// differentiable op.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "nn/inference.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace sp::nn {
namespace {

// Numerically check d(loss)/d(input) against autograd for a scalar-valued
// function of one tensor built by `make_loss`. The input tensor is rebuilt
// per evaluation so that each forward pass is independent.
void
checkGradient(const std::vector<float> &input_values, int64_t rows,
              int64_t cols,
              const std::function<Tensor(const Tensor &)> &make_loss,
              float tol = 2e-2f, float h = 1e-3f)
{
    auto build = [&](const std::vector<float> &values) {
        if (cols == 0)
            return Tensor::fromVector(values, /*requires_grad=*/true);
        return Tensor::fromMatrix(values, rows, cols,
                                  /*requires_grad=*/true);
    };

    Tensor x = build(input_values);
    Tensor loss = make_loss(x);
    loss.backward();
    const std::vector<float> analytic = x.grad();

    for (size_t i = 0; i < input_values.size(); ++i) {
        auto plus = input_values;
        auto minus = input_values;
        plus[i] += h;
        minus[i] -= h;
        const float f_plus = make_loss(build(plus)).item();
        const float f_minus = make_loss(build(minus)).item();
        const float numeric = (f_plus - f_minus) / (2.0f * h);
        EXPECT_NEAR(analytic[i], numeric,
                    tol * std::max(1.0f, std::fabs(numeric)))
            << "element " << i;
    }
}

TEST(Tensor, ConstructionAndAccess)
{
    Tensor v = Tensor::fromVector({1.0f, 2.0f, 3.0f});
    EXPECT_EQ(v.rows(), 3);
    EXPECT_FALSE(v.isMatrix());
    EXPECT_FLOAT_EQ(v.at(1), 2.0f);

    Tensor m = Tensor::fromMatrix({1, 2, 3, 4, 5, 6}, 2, 3);
    EXPECT_EQ(m.rows(), 2);
    EXPECT_EQ(m.cols(), 3);
    EXPECT_FLOAT_EQ(m.at(1, 2), 6.0f);
    m.set(1, 2, 9.0f);
    EXPECT_FLOAT_EQ(m.at(1, 2), 9.0f);
}

TEST(Tensor, MatmulKnownValues)
{
    Tensor a = Tensor::fromMatrix({1, 2, 3, 4}, 2, 2);
    Tensor b = Tensor::fromMatrix({5, 6, 7, 8}, 2, 2);
    Tensor c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Tensor, MatmulGradient)
{
    Tensor b = Tensor::fromMatrix({0.5f, -1.0f, 2.0f, 0.25f, 1.5f, -0.5f},
                                  3, 2);
    checkGradient({1, 2, 3, 4, 5, 6}, 2, 3, [&](const Tensor &x) {
        return sumAll(matmul(x, b));
    });
}

TEST(Tensor, MatmulGradientRightOperand)
{
    Tensor a = Tensor::fromMatrix({1, -2, 0.5f, 3}, 2, 2);
    checkGradient({0.1f, 0.2f, 0.3f, 0.4f}, 2, 2, [&](const Tensor &x) {
        return sumAll(matmul(a, x));
    });
}

TEST(Tensor, AddSubMulGradients)
{
    Tensor other = Tensor::fromMatrix({2, -1, 0.5f, 3}, 2, 2);
    checkGradient({1, 2, 3, 4}, 2, 2, [&](const Tensor &x) {
        return sumAll(mul(add(x, other), sub(x, other)));
    });
}

TEST(Tensor, AddRowVecBroadcast)
{
    Tensor m = Tensor::fromMatrix({1, 2, 3, 4}, 2, 2);
    Tensor b = Tensor::fromVector({10, 20});
    Tensor out = addRowVec(m, b);
    EXPECT_FLOAT_EQ(out.at(0, 0), 11.0f);
    EXPECT_FLOAT_EQ(out.at(1, 1), 24.0f);
}

TEST(Tensor, AddRowVecGradientThroughBias)
{
    Tensor m = Tensor::fromMatrix({1, 2, 3, 4, 5, 6}, 3, 2);
    checkGradient({0.5f, -0.5f}, 2, 0, [&](const Tensor &bias) {
        return sumAll(relu(addRowVec(m, bias)));
    });
}

TEST(Tensor, MulRowVecGradient)
{
    Tensor b = Tensor::fromVector({2.0f, -3.0f});
    checkGradient({1, 2, 3, 4}, 2, 2, [&](const Tensor &x) {
        return sumAll(mulRowVec(x, b));
    });
}

TEST(Tensor, ActivationsForward)
{
    Tensor x = Tensor::fromVector({-1.0f, 0.0f, 2.0f});
    EXPECT_FLOAT_EQ(relu(x).at(0), 0.0f);
    EXPECT_FLOAT_EQ(relu(x).at(2), 2.0f);
    EXPECT_NEAR(sigmoid(x).at(1), 0.5f, 1e-6f);
    EXPECT_NEAR(tanhT(x).at(2), std::tanh(2.0f), 1e-6f);
}

TEST(Tensor, ActivationGradients)
{
    // Avoid the ReLU kink at 0 for finite differences.
    checkGradient({-1.5f, 0.7f, 2.0f, -0.3f}, 4, 0, [](const Tensor &x) {
        return sumAll(relu(x));
    });
    checkGradient({-1.5f, 0.7f, 2.0f, -0.3f}, 4, 0, [](const Tensor &x) {
        return sumAll(tanhT(x));
    });
    checkGradient({-1.5f, 0.7f, 2.0f, -0.3f}, 4, 0, [](const Tensor &x) {
        return sumAll(sigmoid(x));
    });
}

TEST(Tensor, GatherRowsForward)
{
    Tensor m = Tensor::fromMatrix({1, 2, 3, 4, 5, 6}, 3, 2);
    Tensor out = gatherRows(m, {2, 0, 2});
    EXPECT_EQ(out.rows(), 3);
    EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out.at(1, 1), 2.0f);
    EXPECT_FLOAT_EQ(out.at(2, 1), 6.0f);
}

TEST(Tensor, GatherRowsGradientAccumulatesRepeats)
{
    checkGradient({1, 2, 3, 4, 5, 6}, 3, 2, [](const Tensor &x) {
        return sumAll(gatherRows(x, {1, 1, 0}));
    });
}

TEST(Tensor, ScatterAddRowsForward)
{
    Tensor m = Tensor::fromMatrix({1, 2, 3, 4, 5, 6}, 3, 2);
    Tensor out = scatterAddRows(m, {0, 0, 1}, 2);
    EXPECT_EQ(out.rows(), 2);
    EXPECT_FLOAT_EQ(out.at(0, 0), 4.0f);  // 1 + 3
    EXPECT_FLOAT_EQ(out.at(0, 1), 6.0f);  // 2 + 4
    EXPECT_FLOAT_EQ(out.at(1, 0), 5.0f);
}

TEST(Tensor, ScatterAddRowsGradient)
{
    checkGradient({1, 2, 3, 4, 5, 6}, 3, 2, [](const Tensor &x) {
        Tensor pooled = scatterAddRows(x, {1, 0, 1}, 2);
        return sumAll(mul(pooled, pooled));
    });
}

TEST(Tensor, RowScaleGradient)
{
    checkGradient({1, 2, 3, 4}, 2, 2, [](const Tensor &x) {
        return sumAll(rowScale(x, {0.5f, 2.0f}));
    });
}

TEST(Tensor, ConcatColsForwardAndGradient)
{
    Tensor right = Tensor::fromMatrix({10, 20}, 2, 1);
    Tensor left = Tensor::fromMatrix({1, 2, 3, 4}, 2, 2);
    Tensor out = concatCols({left, right});
    EXPECT_EQ(out.cols(), 3);
    EXPECT_FLOAT_EQ(out.at(0, 2), 10.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0), 3.0f);

    checkGradient({1, 2, 3, 4}, 2, 2, [&](const Tensor &x) {
        Tensor cat = concatCols({x, right});
        return sumAll(mul(cat, cat));
    });
}

TEST(Tensor, ConcatRowsForward)
{
    Tensor top = Tensor::fromMatrix({1, 2}, 1, 2);
    Tensor bottom = Tensor::fromMatrix({3, 4, 5, 6}, 2, 2);
    Tensor out = concatRows({top, bottom});
    EXPECT_EQ(out.rows(), 3);
    EXPECT_FLOAT_EQ(out.at(2, 1), 6.0f);
}

TEST(Tensor, LayerNormRowsForward)
{
    Tensor x = Tensor::fromMatrix({1, 2, 3, 4, 4, 4}, 2, 3);
    Tensor out = layerNormRows(x);
    // First row mean 2, var 2/3.
    EXPECT_NEAR(out.at(0, 0) + out.at(0, 2), 0.0f, 1e-5f);
    EXPECT_NEAR(out.at(0, 1), 0.0f, 1e-5f);
    // Constant row normalizes to ~0.
    EXPECT_NEAR(out.at(1, 0), 0.0f, 1e-2f);
}

TEST(Tensor, LayerNormRowsGradient)
{
    Tensor w = Tensor::fromMatrix({0.3f, -0.7f, 1.1f, 0.9f, -1.3f, 0.2f},
                                  2, 3);
    checkGradient({1.0f, -2.0f, 0.5f, 3.0f, 1.5f, -0.5f}, 2, 3,
                  [&](const Tensor &x) {
                      return sumAll(mul(layerNormRows(x), w));
                  });
}

TEST(Tensor, SoftmaxRowsForward)
{
    Tensor x = Tensor::fromMatrix({0, 0, 0, 1000, 0, 0}, 2, 3);
    Tensor out = softmaxRows(x);
    EXPECT_NEAR(out.at(0, 0), 1.0f / 3.0f, 1e-5f);
    EXPECT_NEAR(out.at(1, 0), 1.0f, 1e-5f);  // stable under large logits
    float row_sum = out.at(1, 0) + out.at(1, 1) + out.at(1, 2);
    EXPECT_NEAR(row_sum, 1.0f, 1e-5f);
}

TEST(Tensor, SoftmaxRowsGradient)
{
    Tensor pick = Tensor::fromMatrix({1, 0, 0, 0, 2, 0}, 2, 3);
    checkGradient({0.1f, -0.4f, 0.7f, 1.2f, -0.2f, 0.3f}, 2, 3,
                  [&](const Tensor &x) {
                      return sumAll(mul(softmaxRows(x), pick));
                  });
}

TEST(Tensor, MeanAndSum)
{
    Tensor x = Tensor::fromVector({1, 2, 3, 4});
    EXPECT_FLOAT_EQ(meanAll(x).item(), 2.5f);
    EXPECT_FLOAT_EQ(sumAll(x).item(), 10.0f);
}

TEST(Tensor, BceWithLogitsKnownValue)
{
    // logit 0 => loss log(2) regardless of target.
    Tensor logits = Tensor::fromVector({0.0f, 0.0f});
    Tensor loss = bceWithLogits(logits, {1.0f, 0.0f}, {1.0f, 1.0f});
    EXPECT_NEAR(loss.item(), std::log(2.0f), 1e-5f);
}

TEST(Tensor, BceWithLogitsGradient)
{
    checkGradient({0.5f, -1.5f, 2.0f}, 3, 0, [](const Tensor &x) {
        return bceWithLogits(x, {1.0f, 0.0f, 1.0f}, {1.0f, 2.0f, 0.5f});
    });
}

TEST(Tensor, BceWithLogitsWeightsShiftLoss)
{
    Tensor logits = Tensor::fromVector({3.0f, 3.0f});
    // Weighting the wrong prediction more should increase the loss.
    float balanced =
        bceWithLogits(logits, {1.0f, 0.0f}, {1.0f, 1.0f}).item();
    float skewed =
        bceWithLogits(logits, {1.0f, 0.0f}, {1.0f, 3.0f}).item();
    EXPECT_GT(skewed, balanced);
}

TEST(Tensor, DropoutTrainingAndEval)
{
    Rng rng(5);
    Tensor x = Tensor::fromMatrix(std::vector<float>(1000, 1.0f), 100, 10);
    Tensor eval_out = dropout(x, 0.5f, rng, /*training=*/false);
    EXPECT_FLOAT_EQ(eval_out.at(0, 0), 1.0f);

    Tensor train_out = dropout(x, 0.5f, rng, /*training=*/true);
    int zeros = 0;
    double sum = 0.0;
    for (float v : train_out.data()) {
        zeros += (v == 0.0f);
        sum += v;
    }
    EXPECT_GT(zeros, 300);
    EXPECT_LT(zeros, 700);
    // Inverted scaling keeps the expectation.
    EXPECT_NEAR(sum / 1000.0, 1.0, 0.15);
}


TEST(Tensor, RowScaleTForwardAndGradient)
{
    Tensor v = Tensor::fromVector({2.0f, -1.0f});
    checkGradient({1, 2, 3, 4}, 2, 2, [&](const Tensor &x) {
        return sumAll(rowScaleT(x, v));
    });
    // Gradient through the scale vector too.
    Tensor m = Tensor::fromMatrix({1, 2, 3, 4}, 2, 2);
    checkGradient({0.5f, 1.5f}, 2, 0, [&](const Tensor &scale) {
        return sumAll(mul(rowScaleT(m, scale), rowScaleT(m, scale)));
    });
}

TEST(Tensor, LeakyReluForwardAndGradient)
{
    Tensor x = Tensor::fromVector({-2.0f, 3.0f});
    Tensor y = leakyRelu(x, 0.1f);
    EXPECT_FLOAT_EQ(y.at(0), -0.2f);
    EXPECT_FLOAT_EQ(y.at(1), 3.0f);
    checkGradient({-1.5f, 0.7f, 2.0f}, 3, 0, [](const Tensor &t) {
        return sumAll(leakyRelu(t, 0.2f));
    });
}

TEST(Tensor, SegmentSoftmaxNormalizesPerSegment)
{
    Tensor scores = Tensor::fromVector({0.0f, 0.0f, 1.0f, 2.0f, 3.0f});
    Tensor out = segmentSoftmax(scores, {0, 0, 1, 1, 1}, 2);
    EXPECT_NEAR(out.at(0) + out.at(1), 1.0f, 1e-5f);
    EXPECT_NEAR(out.at(2) + out.at(3) + out.at(4), 1.0f, 1e-5f);
    EXPECT_FLOAT_EQ(out.at(0), out.at(1));
    EXPECT_GT(out.at(4), out.at(3));
}

TEST(Tensor, SegmentSoftmaxGradient)
{
    Tensor pick = Tensor::fromVector({1.0f, 0.0f, 0.0f, 2.0f, 0.0f});
    checkGradient({0.3f, -0.8f, 1.2f, 0.1f, -0.4f}, 5, 0,
                  [&](const Tensor &x) {
                      Tensor alpha =
                          segmentSoftmax(x, {0, 0, 1, 1, 1}, 2);
                      return sumAll(mul(alpha, pick));
                  });
}

TEST(Tensor, BackwardThroughSharedSubexpression)
{
    // y = x used twice: gradient must accumulate from both paths.
    Tensor x = Tensor::fromVector({2.0f}, /*requires_grad=*/true);
    Tensor y = mul(x, x);  // x^2, dy/dx = 2x = 4
    Tensor loss = sumAll(y);
    loss.backward();
    EXPECT_NEAR(x.grad()[0], 4.0f, 1e-5f);
}

TEST(Tensor, ChainedGraphGradient)
{
    // Composite expression exercising several ops end to end.
    Tensor w = Tensor::fromMatrix({0.2f, -0.4f, 0.6f, 0.8f, -0.1f, 0.3f},
                                  3, 2);
    checkGradient({1.0f, -1.0f, 0.5f, 2.0f, 0.3f, -0.7f}, 2, 3,
                  [&](const Tensor &x) {
                      Tensor h = tanhT(matmul(x, w));
                      Tensor pooled = scatterAddRows(h, {0, 0}, 1);
                      return meanAll(mul(pooled, pooled));
                  });
}

// ---------------------------------------------------------------------
// Blocked-GEMM regression: the packed/blocked kernels must agree with a
// naive triple loop on every shape class, including shapes that do not
// divide the block sizes and degenerate single-row/column cases.
// ---------------------------------------------------------------------

namespace {

std::vector<float>
randomValues(Rng &rng, size_t n, bool with_zero_rows, int64_t cols)
{
    std::vector<float> values(n);
    for (auto &v : values)
        v = static_cast<float>(rng.gaussian());
    if (with_zero_rows && cols > 0) {
        // Zero out every third row to exercise the zero-row skip.
        const size_t rows = n / static_cast<size_t>(cols);
        for (size_t r = 0; r < rows; r += 3)
            for (int64_t j = 0; j < cols; ++j)
                values[r * static_cast<size_t>(cols) +
                       static_cast<size_t>(j)] = 0.0f;
    }
    return values;
}

void
naiveMatmul(const std::vector<float> &a, const std::vector<float> &b,
            std::vector<float> &c, int64_t n, int64_t k, int64_t m)
{
    c.assign(static_cast<size_t>(n * m), 0.0f);
    for (int64_t i = 0; i < n; ++i)
        for (int64_t kk = 0; kk < k; ++kk)
            for (int64_t j = 0; j < m; ++j)
                c[i * m + j] += a[i * k + kk] * b[kk * m + j];
}

}  // namespace

TEST(Tensor, BlockedMatmulMatchesNaiveReference)
{
    Rng rng(1234);
    // {n, k, m}: block multiples, odd primes, degenerate rows/cols,
    // shapes larger than one column block (kColBlock = 64).
    const int64_t shapes[][3] = {
        {1, 1, 1},  {1, 7, 1},   {7, 1, 3},    {1, 40, 40},
        {5, 3, 2},  {33, 17, 9}, {131, 40, 40}, {64, 64, 64},
        {3, 257, 5}, {70, 13, 67},
    };
    for (const auto &shape : shapes) {
        const int64_t n = shape[0], k = shape[1], m = shape[2];
        const auto av = randomValues(
            rng, static_cast<size_t>(n * k), /*with_zero_rows=*/true, k);
        const auto bv = randomValues(
            rng, static_cast<size_t>(k * m), /*with_zero_rows=*/false, 0);
        std::vector<float> expected;
        naiveMatmul(av, bv, expected, n, k, m);

        Tensor a = Tensor::fromMatrix(av, n, k);
        Tensor b = Tensor::fromMatrix(bv, k, m);
        Tensor c = matmul(a, b);
        for (int64_t i = 0; i < n * m; ++i) {
            EXPECT_NEAR(c.data()[static_cast<size_t>(i)],
                        expected[static_cast<size_t>(i)], 1e-4f)
                << "shape [" << n << "," << k << "," << m
                << "] element " << i;
        }
    }
}

TEST(Tensor, BlockedMatmulGradientsMatchNaiveReference)
{
    Rng rng(99);
    const int64_t shapes[][3] = {
        {1, 5, 1}, {5, 1, 3}, {9, 67, 4}, {33, 8, 70}, {131, 40, 40},
    };
    for (const auto &shape : shapes) {
        const int64_t n = shape[0], k = shape[1], m = shape[2];
        const auto av = randomValues(
            rng, static_cast<size_t>(n * k), /*with_zero_rows=*/true, k);
        const auto bv = randomValues(
            rng, static_cast<size_t>(k * m), /*with_zero_rows=*/false, 0);
        // Weighting matrix makes dOut non-uniform, so both backward
        // GEMM variants see a general gradient.
        const auto wv = randomValues(
            rng, static_cast<size_t>(n * m), /*with_zero_rows=*/false, 0);

        Tensor a = Tensor::fromMatrix(av, n, k, /*requires_grad=*/true);
        Tensor b = Tensor::fromMatrix(bv, k, m, /*requires_grad=*/true);
        Tensor w = Tensor::fromMatrix(wv, n, m);
        sumAll(mul(matmul(a, b), w)).backward();

        // dA = (W ∘ dOut=W) * B^T, dB = A^T * W — naive loops.
        for (int64_t i = 0; i < n; ++i) {
            for (int64_t kk = 0; kk < k; ++kk) {
                float expected = 0.0f;
                for (int64_t j = 0; j < m; ++j)
                    expected += wv[static_cast<size_t>(i * m + j)] *
                                bv[static_cast<size_t>(kk * m + j)];
                EXPECT_NEAR(a.grad()[static_cast<size_t>(i * k + kk)],
                            expected, 1e-3f)
                    << "dA[" << i << "," << kk << "] shape [" << n
                    << "," << k << "," << m << "]";
            }
        }
        for (int64_t kk = 0; kk < k; ++kk) {
            for (int64_t j = 0; j < m; ++j) {
                float expected = 0.0f;
                for (int64_t i = 0; i < n; ++i)
                    expected += av[static_cast<size_t>(i * k + kk)] *
                                wv[static_cast<size_t>(i * m + j)];
                EXPECT_NEAR(b.grad()[static_cast<size_t>(kk * m + j)],
                            expected, 1e-3f)
                    << "dB[" << kk << "," << j << "] shape [" << n
                    << "," << k << "," << m << "]";
            }
        }
    }
}

TEST(Tensor, AffineMatchesMatmulPlusBias)
{
    Rng rng(7);
    const auto av = randomValues(rng, 6 * 5, false, 0);
    const auto wv = randomValues(rng, 5 * 3, false, 0);
    const auto bv = randomValues(rng, 3, false, 0);
    Tensor a = Tensor::fromMatrix(av, 6, 5);
    Tensor w = Tensor::fromMatrix(wv, 5, 3);
    Tensor b = Tensor::fromVector(bv);
    Tensor fused = affine(a, w, b);
    Tensor unfused = addRowVec(matmul(a, w), b);
    for (size_t i = 0; i < fused.data().size(); ++i)
        EXPECT_FLOAT_EQ(fused.data()[i], unfused.data()[i]) << i;
}

TEST(Tensor, AffineGradients)
{
    Tensor w = Tensor::fromMatrix({0.5f, -1.0f, 2.0f, 0.25f, 1.5f, -0.5f},
                                  3, 2);
    Tensor b = Tensor::fromVector({0.3f, -0.2f});
    checkGradient({1, 2, 3, 4, 5, 6}, 2, 3, [&](const Tensor &x) {
        return sumAll(affine(x, w, b));
    });
    Tensor a = Tensor::fromMatrix({1, -2, 0.5f, 3, 0.1f, 1.1f}, 2, 3);
    checkGradient({0.1f, 0.2f, 0.3f, 0.4f, -0.5f, 0.6f}, 3, 2,
                  [&](const Tensor &x) {
                      return sumAll(mul(affine(a, x, b),
                                        Tensor::fromMatrix(
                                            {1, 2, 3, 4}, 2, 2)));
                  });
    checkGradient({0.3f, -0.2f}, 2, 0, [&](const Tensor &x) {
        return sumAll(affine(a, w, x));
    });
}

TEST(Tensor, SegmentMeanRowsMatchesUnfusedChain)
{
    Rng rng(21);
    const auto hv = randomValues(rng, 5 * 3, false, 0);
    Tensor h = Tensor::fromMatrix(hv, 5, 3);
    const std::vector<int32_t> src = {0, 1, 2, 4, 4};
    const std::vector<int32_t> dst = {1, 1, 3, 3, 3};
    Tensor fused = segmentMeanRows(h, src, dst, 5);

    std::vector<float> inv_degree(5, 0.0f);
    for (int32_t d : dst)
        inv_degree[static_cast<size_t>(d)] += 1.0f;
    for (auto &d : inv_degree)
        d = d > 0.0f ? 1.0f / d : 0.0f;
    Tensor unfused = rowScale(
        scatterAddRows(gatherRows(h, src), dst, 5), inv_degree);
    for (size_t i = 0; i < fused.data().size(); ++i)
        EXPECT_FLOAT_EQ(fused.data()[i], unfused.data()[i]) << i;
    // Rows without incoming edges stay exactly zero (the zero-row
    // GEMM skip depends on this).
    for (int64_t j = 0; j < 3; ++j) {
        EXPECT_EQ(fused.at(0, j), 0.0f);
        EXPECT_EQ(fused.at(2, j), 0.0f);
        EXPECT_EQ(fused.at(4, j), 0.0f);
    }
}

// ---------------------------------------------------------------------
// Inference mode: no tape, no grad buffers, and a stable arena.
// ---------------------------------------------------------------------

TEST(Tensor, InferenceModeRecordsNoTape)
{
    Rng rng(3);
    Tensor w = Tensor::randn(rng, 4, 4, 0.5f);  // parameter (grad)
    Tensor b = Tensor::zerosVec(4, /*requires_grad=*/true);
    InferenceScope scope;
    Tensor x = Tensor::fromMatrix(
        {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, 3, 4);
    Tensor out = relu(affine(x, w, b));
    EXPECT_FALSE(out.requiresGrad());
    EXPECT_TRUE(out.node()->parents.empty());
    EXPECT_FALSE(static_cast<bool>(out.node()->backward_fn));
    EXPECT_TRUE(out.node()->grad.empty());
}

TEST(Tensor, InferenceArenaStableAcross100Passes)
{
    Rng rng(11);
    Tensor w = Tensor::randn(rng, 16, 16, 0.1f);
    Tensor b = Tensor::zerosVec(16, /*requires_grad=*/true);
    std::vector<float> xs(8 * 16);
    for (auto &v : xs)
        v = static_cast<float>(rng.gaussian());

    auto passOnce = [&] {
        InferenceScope scope;
        Tensor x = Tensor::fromMatrix(xs, 8, 16);
        Tensor h = layerNormRows(relu(affine(x, w, b)));
        return sumAll(h).item();
    };
    passOnce();
    passOnce();  // warm-up: arena now holds every node the pass needs
    const ArenaStats warm = threadArenaStats();
    const float first = passOnce();
    for (int i = 0; i < 99; ++i)
        EXPECT_FLOAT_EQ(passOnce(), first) << "pass " << i;
    const ArenaStats after = threadArenaStats();
    // Zero tape growth and zero heap growth: every node of every pass
    // was served from the free list, and the arena did not grow.
    EXPECT_EQ(after.misses, warm.misses);
    EXPECT_EQ(after.pooled + after.live, warm.pooled + warm.live);
    EXPECT_GT(after.hits, warm.hits);
}

TEST(Tensor, DeepChainBackwardDoesNotRecurse)
{
    // 20k-node chain: a recursive topological sort would overflow the
    // stack; the iterative traversal must handle it.
    Tensor x = Tensor::fromVector({1.0f}, /*requires_grad=*/true);
    Tensor h = x;
    for (int i = 0; i < 20000; ++i)
        h = add(h, x);
    sumAll(h).backward();
    EXPECT_FLOAT_EQ(x.grad()[0], 20001.0f);
}

TEST(TensorDeathTest, BackwardOnNonScalarLossPanics)
{
    Tensor x = Tensor::fromMatrix({1, 2, 3, 4}, 2, 2,
                                  /*requires_grad=*/true);
    Tensor y = relu(x);
    EXPECT_DEATH(y.backward(), "scalar loss");
}

TEST(TensorDeathTest, BackwardInsideInferenceScopePanics)
{
    Tensor w = Tensor::fromMatrix({1, 0, 0, 1}, 2, 2,
                                  /*requires_grad=*/true);
    InferenceScope scope;
    Tensor x = Tensor::fromMatrix({1, 2, 3, 4}, 2, 2);
    Tensor loss = sumAll(matmul(x, w));
    EXPECT_DEATH(loss.backward(), "not require grad");
}

TEST(Tensor, SegmentMeanRowsGradient)
{
    Tensor pick = Tensor::fromMatrix(
        {1, -1, 2, 0.5f, 3, -2, 1, 1, 0.25f, -0.5f, 2, 1, 0, 1, -1},
        5, 3);
    checkGradient({0.3f, -0.8f, 1.2f, 0.1f, -0.4f, 2.0f, 0.7f, -1.1f,
                   0.9f, 0.2f, -0.6f, 1.4f, 0.8f, -0.3f, 0.5f},
                  5, 3, [&](const Tensor &x) {
                      Tensor pooled = segmentMeanRows(
                          x, {0, 1, 2, 4, 4}, {1, 1, 3, 3, 3}, 5);
                      return sumAll(mul(pooled, pick));
                  });
}

}  // namespace
}  // namespace sp::nn
