// Tests for the core module: dataset pipeline, PMM shapes and training
// dynamics, the inference service, the PMM localizer, and directed
// fuzzing machinery.

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/dataset.h"
#include "core/directed.h"
#include "core/infer.h"
#include "core/pmm.h"
#include "core/snowplow.h"
#include "core/train.h"
#include "kernel/subsystems.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace sp::core {
namespace {

const kern::Kernel &
testKernel()
{
    static kern::Kernel kernel = [] {
        kern::KernelGenParams params;
        params.seed = 10;
        params.num_syscalls = 10;
        return kern::buildBaseKernel(params);
    }();
    return kernel;
}

const Dataset &
smallDataset()
{
    static Dataset dataset = [] {
        DatasetOptions opts;
        opts.corpus_size = 60;
        opts.mutations_per_base = 60;
        opts.seed = 3;
        return collectDataset(testKernel(), opts);
    }();
    return dataset;
}

TEST(Dataset, PipelineProducesSplitsAndStats)
{
    const auto &dataset = smallDataset();
    EXPECT_GT(dataset.bases.size(), 30u);
    EXPECT_FALSE(dataset.train.empty());
    EXPECT_FALSE(dataset.eval.empty());
    EXPECT_GT(dataset.stats.mean_args_per_test, 5.0);
    EXPECT_GT(dataset.stats.total_successful_mutations, 100u);
    EXPECT_GT(dataset.stats.mean_target_set_size, 0.0);
}

TEST(Dataset, SplitsAreDisjointByBase)
{
    const auto &dataset = smallDataset();
    std::unordered_set<uint32_t> train_bases, other_bases;
    for (const auto &example : dataset.train)
        train_bases.insert(example.base_index);
    for (const auto &example : dataset.valid)
        other_bases.insert(example.base_index);
    for (const auto &example : dataset.eval)
        other_bases.insert(example.base_index);
    for (uint32_t base : train_bases)
        EXPECT_EQ(other_bases.count(base), 0u);
}

TEST(Dataset, ExamplesHaveGroundTruthOnFrontier)
{
    const auto &dataset = smallDataset();
    const auto &example = dataset.train.front();
    EXPECT_FALSE(example.targets.empty());
    EXPECT_FALSE(example.mutate_sites.empty());
    // Targets must be uncovered in the base's coverage.
    const auto &cov = dataset.base_results[example.base_index].coverage;
    for (uint32_t t : example.targets)
        EXPECT_FALSE(cov.containsBlock(t));
}

TEST(Dataset, MaterializeLabelsMatchSites)
{
    const auto &dataset = smallDataset();
    const auto &example = dataset.train.front();
    auto [graph, labels] = materializeExample(dataset, example);
    EXPECT_EQ(labels.size(), graph.argument_nodes.size());
    size_t positives = 0;
    for (float label : labels)
        positives += (label > 0.5f);
    EXPECT_EQ(positives, example.mutate_sites.size());
    // Some target flags must be set in the encoding.
    int flagged = 0;
    for (int32_t f : graph.target_flag)
        flagged += f;
    EXPECT_EQ(static_cast<size_t>(flagged), example.targets.size());
}

TEST(Dataset, DeterministicForSeed)
{
    DatasetOptions opts;
    opts.corpus_size = 20;
    opts.mutations_per_base = 30;
    opts.seed = 8;
    auto a = collectDataset(testKernel(), opts);
    auto b = collectDataset(testKernel(), opts);
    EXPECT_EQ(a.train.size(), b.train.size());
    EXPECT_EQ(a.stats.total_successful_mutations,
              b.stats.total_successful_mutations);
}

TEST(Pmm, ForwardShapesAndDeterminism)
{
    const auto &dataset = smallDataset();
    PmmConfig config;
    config.dim = 16;
    config.token_dim = 8;
    config.gnn_layers = 2;
    Pmm model(config);
    EXPECT_GT(model.parameterCount(), 1000);

    auto [graph, labels] = materializeExample(dataset,
                                              dataset.train.front());
    auto probs_a = model.predict(graph);
    auto probs_b = model.predict(graph);
    ASSERT_EQ(probs_a.size(), labels.size());
    for (size_t i = 0; i < probs_a.size(); ++i) {
        EXPECT_FLOAT_EQ(probs_a[i], probs_b[i]);
        EXPECT_GE(probs_a[i], 0.0f);
        EXPECT_LE(probs_a[i], 1.0f);
    }
}

TEST(Pmm, PredictMatchesTrainingModeForward)
{
    // Regression for the inference fast path: arena allocation, the
    // no-tape mode and the fused/blocked kernels must not change the
    // numbers relative to a tape-building forward pass.
    const auto &dataset = smallDataset();
    PmmConfig config;
    config.dim = 16;
    config.token_dim = 8;
    Pmm model(config);

    auto [graph, labels] = materializeExample(dataset,
                                              dataset.train.front());
    nn::Tensor taped = nn::sigmoid(model.forward(graph));
    auto fast = model.predict(graph);
    ASSERT_EQ(fast.size(), taped.data().size());
    for (size_t i = 0; i < fast.size(); ++i)
        EXPECT_NEAR(fast[i], taped.data()[i], 1e-6f) << i;
}

TEST(Pmm, PredictBatchMatchesIndividualPredictions)
{
    const auto &dataset = smallDataset();
    PmmConfig config;
    config.dim = 16;
    config.token_dim = 8;
    Pmm model(config);

    std::vector<graph::EncodedGraph> graphs;
    for (size_t i = 0; i < std::min<size_t>(5, dataset.train.size());
         ++i) {
        graphs.push_back(
            materializeExample(dataset, dataset.train[i]).first);
    }
    graphs.emplace_back();  // empty graph: must yield an empty result

    std::vector<const graph::EncodedGraph *> pointers;
    for (const auto &g : graphs)
        pointers.push_back(&g);
    auto batched = model.predictBatch(pointers);
    ASSERT_EQ(batched.size(), graphs.size());
    for (size_t i = 0; i < graphs.size(); ++i) {
        auto individual = model.predict(graphs[i]);
        ASSERT_EQ(batched[i].size(), individual.size()) << "graph " << i;
        for (size_t j = 0; j < individual.size(); ++j) {
            // Block-diagonal batching is per-row exact: 1e-4 is the
            // acceptance bound, but equality should hold bitwise.
            EXPECT_NEAR(batched[i][j], individual[j], 1e-4f)
                << "graph " << i << " arg " << j;
            EXPECT_FLOAT_EQ(batched[i][j], individual[j])
                << "graph " << i << " arg " << j;
        }
    }
    EXPECT_TRUE(batched.back().empty());
}

TEST(Pmm, GradientsReachEveryParameter)
{
    const auto &dataset = smallDataset();
    PmmConfig config;
    config.dim = 16;
    config.token_dim = 8;
    config.gnn_layers = 1;
    Pmm model(config);
    auto [graph, labels] = materializeExample(dataset,
                                              dataset.train.front());
    std::vector<float> weights(labels.size(), 1.0f);
    model.zeroGrad();
    Rng rng(1);
    auto loss = nn::bceWithLogits(model.forward(graph, &rng, false),
                                  labels, weights);
    loss.backward();

    // Most parameter tensors must receive nonzero gradient. (Relations
    // with no edges of that kind in this graph legitimately get none.)
    size_t with_grad = 0;
    for (const auto &p : model.parameters()) {
        bool any = false;
        for (float g : p.tensor.grad())
            any |= (g != 0.0f);
        with_grad += any;
    }
    EXPECT_GT(with_grad, model.parameters().size() / 2);
}

TEST(Pmm, OverfitsASingleExample)
{
    const auto &dataset = smallDataset();
    PmmConfig config;
    config.dim = 16;
    config.token_dim = 8;
    config.gnn_layers = 2;
    config.dropout = 0.0f;
    Pmm model(config);

    auto [graph, labels] = materializeExample(dataset,
                                              dataset.train.front());
    std::vector<float> weights(labels.size());
    for (size_t i = 0; i < labels.size(); ++i)
        weights[i] = labels[i] > 0.5f ? 4.0f : 1.0f;

    nn::Adam opt(model.parameters(), 0.01f);
    float first_loss = 0.0f, last_loss = 0.0f;
    for (int step = 0; step < 60; ++step) {
        model.zeroGrad();
        auto loss = nn::bceWithLogits(model.forward(graph), labels,
                                      weights);
        loss.backward();
        opt.step();
        if (step == 0)
            first_loss = loss.item();
        last_loss = loss.item();
    }
    EXPECT_LT(last_loss, first_loss * 0.2f);

    // Predictions should now match the labels.
    auto probs = model.predict(graph);
    for (size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] > 0.5f) {
            EXPECT_GT(probs[i], 0.5f) << i;
        }
    }
}


TEST(Pmm, AttentionVariantForwardAndLearning)
{
    const auto &dataset = smallDataset();
    PmmConfig config;
    config.dim = 16;
    config.token_dim = 8;
    config.gnn_layers = 2;
    config.dropout = 0.0f;
    config.use_attention = true;
    Pmm model(config);

    auto [graph, labels] = materializeExample(dataset,
                                              dataset.train.front());
    auto probs = model.predict(graph);
    ASSERT_EQ(probs.size(), labels.size());

    // The attention variant must also be able to overfit one example.
    std::vector<float> weights(labels.size());
    for (size_t i = 0; i < labels.size(); ++i)
        weights[i] = labels[i] > 0.5f ? 4.0f : 1.0f;
    nn::Adam opt(model.parameters(), 0.01f);
    float first = 0.0f, last = 0.0f;
    for (int step = 0; step < 50; ++step) {
        model.zeroGrad();
        auto loss = nn::bceWithLogits(model.forward(graph), labels,
                                      weights);
        loss.backward();
        opt.step();
        if (step == 0)
            first = loss.item();
        last = loss.item();
    }
    EXPECT_LT(last, first * 0.5f);
}

TEST(Pmm, CheckpointRoundTrip)
{
    PmmConfig config;
    config.dim = 16;
    config.token_dim = 8;
    Pmm model(config);
    const std::string path = "/tmp/sp_pmm_ckpt_test.bin";
    nn::saveParameters(model, path);
    PmmConfig config2 = config;
    config2.init_seed = 999;
    Pmm restored(config2);
    ASSERT_TRUE(nn::loadParameters(restored, path));
    for (size_t i = 0; i < model.parameters().size(); ++i) {
        EXPECT_EQ(model.parameters()[i].tensor.data(),
                  restored.parameters()[i].tensor.data());
    }
    std::remove(path.c_str());
}

TEST(Train, MetricsAccumulatorSanity)
{
    // Rand-0-like degenerate input: selecting nothing with nonempty
    // truth gives recall 0.
    const auto &dataset = smallDataset();
    auto metrics = evaluateRandomSelector(dataset, dataset.eval, 1, 5);
    EXPECT_GT(metrics.examples, 0u);
    EXPECT_GE(metrics.f1, 0.0);
    EXPECT_LE(metrics.f1, 1.0);
    EXPECT_GE(metrics.jaccard, 0.0);
    EXPECT_LE(metrics.jaccard, metrics.f1 + 1e-9);
}

TEST(Infer, AsyncServiceMatchesSyncPredictions)
{
    const auto &dataset = smallDataset();
    PmmConfig config;
    config.dim = 16;
    config.token_dim = 8;
    Pmm model(config);
    InferenceService service(model, 2);

    std::vector<std::future<std::vector<float>>> futures;
    std::vector<std::vector<float>> expected;
    for (size_t i = 0; i < std::min<size_t>(8, dataset.train.size());
         ++i) {
        auto [graph, labels] = materializeExample(dataset,
                                                  dataset.train[i]);
        expected.push_back(model.predict(graph));
        futures.push_back(service.submit(std::move(graph)));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
        auto probs = futures[i].get();
        ASSERT_EQ(probs.size(), expected[i].size());
        for (size_t j = 0; j < probs.size(); ++j)
            EXPECT_FLOAT_EQ(probs[j], expected[i][j]);
    }
    auto stats = service.stats();
    EXPECT_EQ(stats.completed, futures.size());
    EXPECT_GT(stats.mean_latency_us, 0.0);
}

TEST(Snowplow, PmmLocalizerReturnsValidSites)
{
    const auto &kernel = testKernel();
    PmmConfig config;
    config.dim = 16;
    config.token_dim = 8;
    Pmm model(config);
    PmmLocalizer localizer(kernel, model);

    Rng rng(7);
    auto program = prog::generateProg(rng, kernel.table());
    auto sites = localizer.localize(program, rng, 4);
    EXPECT_GE(sites.size(), 1u);
    EXPECT_LE(sites.size(), 4u);
    for (const auto &site : sites) {
        ASSERT_LT(site.call_index, program.calls.size());
        // Paths decode.
        prog::argAtPath(program.calls[site.call_index], site.point.path);
    }
    EXPECT_GT(localizer.modelQueries() + localizer.fallbackQueries(), 0u);
}

TEST(Directed, DistanceMapIsConsistent)
{
    const auto &kernel = testKernel();
    // Pick a bug block as target (deep).
    ASSERT_FALSE(kernel.bugs().empty());
    const uint32_t target = kernel.bugs()[0].block;
    auto dist = distanceToBlock(kernel, target);
    EXPECT_EQ(dist[target], 0u);

    // Every finite-distance block has a successor one closer.
    size_t finite = 0;
    for (uint32_t b = 0; b < kernel.blocks().size(); ++b) {
        if (dist[b] == ~0u || b == target)
            continue;
        ++finite;
        bool closer = false;
        for (uint32_t succ : kernel.successors(b))
            closer |= (dist[succ] != ~0u && dist[succ] + 1 <= dist[b]);
        EXPECT_TRUE(closer) << "block " << b;
    }
    EXPECT_GT(finite, 0u);
    // The handler entry of the target's syscall must reach it.
    const uint32_t entry =
        kernel.handler(kernel.block(target).handler).entry;
    EXPECT_NE(dist[entry], ~0u);
}

TEST(Directed, SyzDirectReachesShallowTarget)
{
    const auto &kernel = testKernel();
    // Choose a depth-1 block (reachable but off the default path).
    uint32_t target = kern::kNoBlock;
    for (const auto &bb : kernel.blocks()) {
        if (bb.depth == 1 && kernel.bugAt(bb.id) == nullptr) {
            target = bb.id;
            break;
        }
    }
    ASSERT_NE(target, kern::kNoBlock);

    DirectedOptions opts;
    opts.target_block = target;
    opts.exec_budget = 20000;
    opts.seed = 4;
    auto result = runSyzDirect(kernel, opts);
    EXPECT_TRUE(result.reached);
    EXPECT_GT(result.execs_to_reach, 0u);
    EXPECT_LE(result.execs_to_reach, opts.exec_budget);
}

}  // namespace
}  // namespace sp::core
