# Empty compiler generated dependencies file for train_pmm.
# This may be replaced when dependencies are built.
