// Tests for the fuzzing extensions: corpus persistence (seedpool), the
// crash-report formatter, and the white-box oracle localizer.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/oracle.h"
#include "fuzz/report.h"
#include "fuzz/seedpool.h"
#include "kernel/subsystems.h"
#include "mutate/mutator.h"
#include "prog/gen.h"

namespace sp {
namespace {

const kern::Kernel &
testKernel()
{
    static kern::Kernel kernel = [] {
        kern::KernelGenParams params;
        params.seed = 6;
        return kern::buildBaseKernel(params);
    }();
    return kernel;
}

TEST(SeedPool, ProgramsRoundTripThroughDisk)
{
    const auto &kernel = testKernel();
    Rng rng(4);
    auto programs = prog::generateCorpus(rng, kernel.table(), 25);
    const std::string path = "/tmp/sp_seedpool_test.txt";
    fuzz::savePrograms(programs, path);

    auto loaded = fuzz::loadPrograms(path, kernel.table());
    ASSERT_EQ(loaded.size(), programs.size());
    for (size_t i = 0; i < programs.size(); ++i)
        EXPECT_TRUE(programs[i].equals(loaded[i])) << i;
    std::remove(path.c_str());
}

TEST(SeedPool, CorpusSaveLoad)
{
    const auto &kernel = testKernel();
    exec::Executor executor(kernel);
    Rng rng(5);
    fuzz::Corpus corpus;
    auto programs = prog::generateCorpus(rng, kernel.table(), 20);
    uint64_t counter = 0;
    for (const auto &program : programs)
        corpus.maybeAdd(program, executor.run(program), ++counter);
    ASSERT_GT(corpus.size(), 3u);

    const std::string path = "/tmp/sp_corpus_test.txt";
    fuzz::saveCorpus(corpus, path);
    auto loaded = fuzz::loadPrograms(path, kernel.table());
    EXPECT_EQ(loaded.size(), corpus.size());
    std::remove(path.c_str());
}

TEST(SeedPool, MissingFileYieldsEmpty)
{
    EXPECT_TRUE(fuzz::loadPrograms("/tmp/sp_no_such_corpus.txt",
                                   testKernel().table())
                    .empty());
}

TEST(SeedPool, UnparsableBlocksAreSkipped)
{
    const auto &kernel = testKernel();
    const std::string path = "/tmp/sp_corpus_bad_test.txt";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        std::fprintf(f, "nosuchcall(0x1)\n\nread(nil, nil, 0x0)\n");
        std::fclose(f);
    }
    auto loaded = fuzz::loadPrograms(path, kernel.table());
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].calls[0].decl->name, "read");
    std::remove(path.c_str());
}

TEST(Report, FormatsTheAtaCrash)
{
    const auto &kernel = testKernel();
    // Build the exact ATA trigger (see kernel_test for the layout).
    prog::Prog trigger;
    prog::Call open_call;
    open_call.decl = kernel.table().find("open$scsi");
    open_call.args = prog::defaultArgs(*open_call.decl);
    prog::fixupLengths(open_call);
    trigger.calls.push_back(std::move(open_call));

    prog::Call ioctl_call;
    ioctl_call.decl = kernel.table().find("ioctl$scsi");
    ioctl_call.args = prog::defaultArgs(*ioctl_call.decl);
    ioctl_call.args[0]->result_ref = 0;
    ioctl_call.args[1]->scalar = kern::kScsiIoctlSendCommand;
    auto &req = *ioctl_call.args[2]->pointee;
    req.fields[0]->scalar = kern::kScsiProtoAta16;
    req.fields[1]->scalar = kern::kAtaCmdNop;
    req.fields[2]->scalar = kern::kAtaProtPio;
    req.fields[3]->scalar = kern::kAtaMaxDataLen + 1;
    prog::fixupLengths(ioctl_call);
    trigger.calls.push_back(std::move(ioctl_call));

    exec::Executor executor(kernel);
    auto result = executor.run(trigger);
    ASSERT_TRUE(result.crashed);

    fuzz::CrashLog log(kernel);
    log.record(result.bug_index, trigger, 7);
    log.reproduceAll();

    auto report =
        fuzz::formatCrashReport(kernel, log.records()[0]);
    // The crafted ioctl may trip a generated bug planted earlier on
    // the same path; the report must be complete either way.
    EXPECT_NE(report.find("BUG: "), std::string::npos);
    EXPECT_NE(report.find(log.records()[0].description),
              std::string::npos);
    EXPECT_NE(report.find("call trace (inside"), std::string::npos);
    EXPECT_NE(report.find("<- faulting block"), std::string::npos);
    EXPECT_NE(report.find("reproducer:"), std::string::npos);
}

TEST(Oracle, SelectsGuardArguments)
{
    const auto &kernel = testKernel();
    core::OracleLocalizer oracle(kernel);
    exec::Executor executor(kernel);
    Rng rng(9);

    // The oracle's sites must each be an argument whose slot guards a
    // frontier branch of the base coverage.
    auto program = prog::generateProg(rng, kernel.table());
    auto result = executor.run(program);
    auto sites = oracle.localizeWithResult(program, result, rng, 8);
    ASSERT_FALSE(sites.empty());
    for (const auto &site : sites) {
        ASSERT_LT(site.call_index, program.calls.size());
        prog::argAtPath(program.calls[site.call_index],
                        site.point.path);
    }
}

TEST(Oracle, BeatsRandomOnPerMutationRate)
{
    const auto &kernel = testKernel();
    core::OracleLocalizer oracle(kernel);
    mut::RandomLocalizer random_localizer;
    mut::Mutator mutator(kernel.table());
    exec::Executor executor(kernel);

    Rng rng(11);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 50);

    auto rate = [&](mut::Localizer &localizer) {
        Rng lrng(5);
        size_t hits = 0, total = 0;
        for (const auto &base : corpus) {
            auto base_result = executor.run(base);
            if (base_result.crashed)
                continue;
            auto sites = localizer.localizeWithResult(base, base_result,
                                                      lrng, 4);
            for (const auto &site : sites) {
                prog::Prog mutant;
                mutant.calls = base.calls;
                if (!mutator.instantiateArgMutation(mutant, site, lrng))
                    continue;
                auto result = executor.run(mutant);
                hits += (base_result.coverage.countNewEdges(
                             result.coverage) > 0);
                ++total;
            }
        }
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    };

    const double oracle_rate = rate(oracle);
    const double random_rate = rate(random_localizer);
    EXPECT_GT(oracle_rate, random_rate * 1.3);
}

}  // namespace
}  // namespace sp
