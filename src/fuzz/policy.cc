#include "fuzz/policy.h"

#include <cmath>

#include "fuzz/campaign.h"
#include "fuzz/fuzzer.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace sp::fuzz {

namespace {

/**
 * Gamma(shape, 1) draw via Marsaglia-Tsang squeeze (shape >= 1) with
 * the Ahrens-Dieter boost for shape < 1. Draw count is variable (a
 * rejection sampler), which is fine: only ThompsonPolicy samples, and
 * it makes no bit-for-bit promise — determinism for a fixed seed and
 * worker count is preserved because every draw still comes from the
 * worker's own stream.
 */
double
sampleGamma(Rng &rng, double shape)
{
    if (shape < 1.0) {
        const double u = rng.uniform();
        return sampleGamma(rng, shape + 1.0) *
               std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
        const double x = rng.gaussian();
        double v = 1.0 + c * x;
        if (v <= 0.0)
            continue;
        v = v * v * v;
        const double u = rng.uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v;
        if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
            return d * v;
    }
}

double
sampleBeta(Rng &rng, double alpha, double beta)
{
    const double x = sampleGamma(rng, alpha);
    const double y = sampleGamma(rng, beta);
    const double sum = x + y;
    return sum > 0.0 ? x / sum : 0.5;
}

/** Registry handles for the policy gauges (looked up once; the values
 *  are campaign-scoped via resetGaugesWithPrefix("policy."), which
 *  zeroes in place and keeps these handles valid). */
struct PolicyMetrics
{
    obs::Gauge &arm_pulls;
    obs::Gauge &arm_mean_reward;
    obs::Gauge &pmm_share;

    static PolicyMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static PolicyMetrics metrics{
            reg.gauge("policy.arm_pulls"),
            reg.gauge("policy.arm_mean_reward"),
            reg.gauge("policy.pmm_share"),
        };
        return metrics;
    }
};

}  // namespace

DecisionPolicy::DecisionPolicy(PolicyOptions opts)
    : opts_(std::move(opts))
{
    SP_ASSERT(opts_.seed_buckets > 0, "policy needs >= 1 seed bucket");
    const size_t arms = armCount();
    merged_pulls_ = std::make_unique<std::atomic<uint64_t>[]>(arms);
    merged_wins_ = std::make_unique<std::atomic<uint64_t>[]>(arms);
    for (size_t a = 0; a < arms; ++a) {
        merged_pulls_[a].store(0, std::memory_order_relaxed);
        merged_wins_[a].store(0, std::memory_order_relaxed);
    }
}

void
DecisionPolicy::beginCampaign(size_t workers)
{
    if (workers == 0)
        workers = 1;
    if (shards_.size() >= workers)
        return;  // keep accumulated posterior (legacy runUntil reruns)
    const size_t arms = armCount();
    shards_.reserve(workers);
    while (shards_.size() < workers) {
        Shard shard;
        shard.pulls = std::make_unique<std::atomic<uint64_t>[]>(arms);
        shard.wins = std::make_unique<std::atomic<uint64_t>[]>(arms);
        for (size_t a = 0; a < arms; ++a) {
            shard.pulls[a].store(0, std::memory_order_relaxed);
            shard.wins[a].store(0, std::memory_order_relaxed);
        }
        shards_.push_back(std::move(shard));
    }
}

int
DecisionPolicy::armFor(size_t bucket, mut::MutationType op,
                       mut::LocalizerChannel channel) const
{
    SP_ASSERT(bucket < opts_.seed_buckets, "bucket out of range");
    const size_t op_index = opClassIndex(op);
    const size_t ch_index = static_cast<size_t>(channel);
    return static_cast<int>(
        (bucket * kOpClasses + op_index) * mut::kLocalizerChannels +
        ch_index);
}

void
DecisionPolicy::recordReward(size_t worker, int arm,
                             const Reward &reward)
{
    if (arm < 0)
        return;
    SP_ASSERT(worker < shards_.size(),
              "recordReward before beginCampaign sized the shards");
    Shard &shard = shards_[worker];
    const auto a = static_cast<size_t>(arm);
    // Single-writer cells (only this worker's thread touches them), so
    // load+store beats an RMW — the CovShard increment discipline.
    shard.pulls[a].store(
        shard.pulls[a].load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    if (reward.new_edges > 0) {
        shard.wins[a].store(
            shard.wins[a].load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
    }
}

void
DecisionPolicy::mergeShards()
{
    const size_t arms = armCount();
    for (size_t a = 0; a < arms; ++a) {
        uint64_t pulls = 0;
        uint64_t wins = 0;
        // Plain summation: commutative, so the merged posterior is
        // independent of shard order and of which worker merges.
        for (const Shard &shard : shards_) {
            pulls += shard.pulls[a].load(std::memory_order_relaxed);
            wins += shard.wins[a].load(std::memory_order_relaxed);
        }
        merged_pulls_[a].store(pulls, std::memory_order_relaxed);
        merged_wins_[a].store(wins, std::memory_order_relaxed);
    }
}

void
DecisionPolicy::onCheckpoint(uint64_t /*slot*/)
{
    mergeShards();
}

uint64_t
DecisionPolicy::mergedPulls(int arm) const
{
    return merged_pulls_[static_cast<size_t>(arm)].load(
        std::memory_order_relaxed);
}

uint64_t
DecisionPolicy::mergedWins(int arm) const
{
    return merged_wins_[static_cast<size_t>(arm)].load(
        std::memory_order_relaxed);
}

double
DecisionPolicy::pmmShare() const
{
    uint64_t model = 0;
    uint64_t arg_total = 0;
    for (size_t b = 0; b < opts_.seed_buckets; ++b) {
        for (size_t ch = 0; ch < mut::kLocalizerChannels; ++ch) {
            const int arm =
                armFor(b, mut::MutationType::ArgumentMutation,
                       static_cast<mut::LocalizerChannel>(ch));
            const uint64_t pulls = mergedPulls(arm);
            arg_total += pulls;
            if (static_cast<mut::LocalizerChannel>(ch) ==
                mut::LocalizerChannel::Model)
                model += pulls;
        }
    }
    return arg_total == 0
               ? 0.0
               : static_cast<double>(model) /
                     static_cast<double>(arg_total);
}

size_t
DecisionPolicy::bucketOf(const CorpusEntry &entry,
                         uint64_t now_slot) const
{
    const size_t buckets = opts_.seed_buckets;
    if (now_slot == 0)
        return buckets - 1;
    // Admission time relative to the virtual-time clock: bucket 0 holds
    // the campaign's oldest seeds, the last bucket the freshest.
    const uint64_t scaled =
        entry.admitted_at_exec * buckets / now_slot;
    return scaled >= buckets ? buckets - 1
                             : static_cast<size_t>(scaled);
}

void
DecisionPolicy::exportMetrics()
{
    mergeShards();
    uint64_t pulls = 0;
    uint64_t wins = 0;
    const size_t arms = armCount();
    for (size_t a = 0; a < arms; ++a) {
        pulls += mergedPulls(static_cast<int>(a));
        wins += mergedWins(static_cast<int>(a));
    }
    PolicyMetrics &metrics = PolicyMetrics::get();
    metrics.arm_pulls.set(static_cast<double>(pulls));
    metrics.arm_mean_reward.set(
        pulls == 0 ? 0.0
                   : static_cast<double>(wins) /
                         static_cast<double>(pulls));
    metrics.pmm_share.set(pmmShare());
}

std::string
DecisionPolicy::statusJson() const
{
    uint64_t pulls = 0;
    uint64_t wins = 0;
    uint64_t by_channel[mut::kLocalizerChannels] = {0, 0, 0};
    const size_t arms = armCount();
    for (size_t a = 0; a < arms; ++a) {
        const uint64_t p = mergedPulls(static_cast<int>(a));
        pulls += p;
        wins += mergedWins(static_cast<int>(a));
        by_channel[a % mut::kLocalizerChannels] += p;
    }
    std::string out = "{\"kind\":\"";
    out += name();
    out += "\",\"arms\":";
    out += std::to_string(arms);
    out += ",\"pulls\":";
    out += std::to_string(pulls);
    out += ",\"wins\":";
    out += std::to_string(wins);
    out += ",\"mean_reward\":";
    out += std::to_string(
        pulls == 0 ? 0.0
                   : static_cast<double>(wins) /
                         static_cast<double>(pulls));
    out += ",\"pmm_share\":";
    out += std::to_string(pmmShare());
    out += ",\"channel_pulls\":{\"random\":";
    out += std::to_string(by_channel[0]);
    out += ",\"model\":";
    out += std::to_string(by_channel[1]);
    out += ",\"forced_random\":";
    out += std::to_string(by_channel[2]);
    out += "}}";
    return out;
}

StaticPolicy::StaticPolicy(std::shared_ptr<Scheduler> scheduler,
                           PolicyOptions opts)
    : DecisionPolicy(std::move(opts)), scheduler_(std::move(scheduler))
{
    SP_ASSERT(scheduler_ != nullptr, "StaticPolicy needs a scheduler");
}

Decision
StaticPolicy::decide(const DecisionContext &ctx, Rng &rng)
{
    Decision decision;
    decision.seed = &scheduler_->pick(*ctx.corpus, rng);
    decision.seed_bucket = bucketOf(*decision.seed, ctx.now_slot);
    // The §3.4 arbitration draw, in the exact stream position the
    // learned localizers historically drew it (right after the pick,
    // before any localization draw) — and, like them, only drawn when a
    // model is actually installed.
    decision.use_pmm =
        ctx.learned_localizer &&
        !rng.chance(opts_.pmm_fallback_prob);
    return decision;
}

mut::MutationType
StaticPolicy::pickOperator(const DecisionContext &ctx,
                           const Decision & /*decision*/, Rng &rng,
                           const prog::Prog &prog)
{
    return ctx.mutator->selectType(rng, prog);
}

ThompsonPolicy::ThompsonPolicy(PolicyOptions opts)
    : DecisionPolicy(std::move(opts))
{
}

double
ThompsonPolicy::sampleArm(int arm, Rng &rng) const
{
    uint64_t pulls = 0;
    uint64_t wins = 0;
    mergedArm(arm, &pulls, &wins);
    return sampleBeta(rng, opts_.prior_alpha + static_cast<double>(wins),
                      opts_.prior_beta +
                          static_cast<double>(pulls - wins));
}

double
ThompsonPolicy::sampleBucket(size_t bucket, Rng &rng) const
{
    uint64_t pulls = 0;
    uint64_t wins = 0;
    for (size_t op = 0; op < kOpClasses; ++op) {
        for (size_t ch = 0; ch < mut::kLocalizerChannels; ++ch) {
            uint64_t p = 0;
            uint64_t w = 0;
            mergedArm(armFor(bucket,
                             static_cast<mut::MutationType>(op),
                             static_cast<mut::LocalizerChannel>(ch)),
                      &p, &w);
            pulls += p;
            wins += w;
        }
    }
    return sampleBeta(rng, opts_.prior_alpha + static_cast<double>(wins),
                      opts_.prior_beta +
                          static_cast<double>(pulls - wins));
}

Decision
ThompsonPolicy::decide(const DecisionContext &ctx, Rng &rng)
{
    Decision decision;
    const size_t buckets = opts_.seed_buckets;

    // Scheduling: sample every bucket's marginal, mutate inside the
    // winner. Index position (shard-major) stands in for admission age:
    // exact in single-shard corpora, an approximation across shards.
    size_t best = 0;
    double best_theta = -1.0;
    for (size_t b = 0; b < buckets; ++b) {
        const double theta = sampleBucket(b, rng);
        if (theta > best_theta) {
            best_theta = theta;
            best = b;
        }
    }
    const size_t n = ctx.corpus->size();
    const size_t lo = n * best / buckets;
    const size_t hi = n * (best + 1) / buckets;
    if (lo >= hi) {
        // Empty bucket range (tiny corpus): recency-biased fallback.
        decision.seed = &ctx.corpus->pick(rng);
    } else {
        decision.seed =
            &ctx.corpus->entry(lo + rng.below(hi - lo));
    }
    decision.seed_bucket = bucketOf(*decision.seed, ctx.now_slot);

    // Per-seed PMM-vs-random arbitration: posterior duel between the
    // Model and Random channels of this bucket's argument arms.
    // ForcedRandom pulls live in their own channel and bias neither.
    if (ctx.learned_localizer) {
        const double theta_model = sampleArm(
            armFor(decision.seed_bucket,
                   mut::MutationType::ArgumentMutation,
                   mut::LocalizerChannel::Model),
            rng);
        const double theta_random = sampleArm(
            armFor(decision.seed_bucket,
                   mut::MutationType::ArgumentMutation,
                   mut::LocalizerChannel::Random),
            rng);
        decision.use_pmm = theta_model >= theta_random;
    }
    return decision;
}

mut::MutationType
ThompsonPolicy::pickOperator(const DecisionContext &ctx,
                             const Decision &decision, Rng &rng,
                             const prog::Prog &prog)
{
    // Feasibility mirrors Mutator::selectType's constraints.
    const auto &mopts = ctx.mutator->options();
    bool feasible[kOpClasses];
    feasible[opClassIndex(mut::MutationType::ArgumentMutation)] =
        !mut::allArgLocations(prog).empty();
    feasible[opClassIndex(mut::MutationType::CallInsertion)] =
        prog.calls.size() < mopts.max_calls;
    feasible[opClassIndex(mut::MutationType::CallRemoval)] =
        prog.calls.size() > 1;

    int best_op = -1;
    double best_theta = -1.0;
    for (size_t op = 0; op < kOpClasses; ++op) {
        if (!feasible[op])
            continue;
        // Operator marginal over this bucket's channels.
        uint64_t pulls = 0;
        uint64_t wins = 0;
        for (size_t ch = 0; ch < mut::kLocalizerChannels; ++ch) {
            uint64_t p = 0;
            uint64_t w = 0;
            mergedArm(
                armFor(decision.seed_bucket,
                       static_cast<mut::MutationType>(op),
                       static_cast<mut::LocalizerChannel>(ch)),
                &p, &w);
            pulls += p;
            wins += w;
        }
        const double theta = sampleBeta(
            rng, opts_.prior_alpha + static_cast<double>(wins),
            opts_.prior_beta + static_cast<double>(pulls - wins));
        if (theta > best_theta) {
            best_theta = theta;
            best_op = static_cast<int>(op);
        }
    }
    if (best_op < 0)
        return mut::MutationType::ArgumentMutation;  // all no-ops
    return static_cast<mut::MutationType>(best_op);
}

std::shared_ptr<DecisionPolicy>
makePolicy(const FuzzOptions &opts)
{
    if (opts.policy.custom)
        return opts.policy.custom;
    switch (opts.policy.kind) {
      case PolicyKind::Thompson:
        return std::make_shared<ThompsonPolicy>(opts.policy);
      case PolicyKind::Static:
        break;
    }
    return std::make_shared<StaticPolicy>(makeScheduler(opts),
                                          opts.policy);
}

}  // namespace sp::fuzz
