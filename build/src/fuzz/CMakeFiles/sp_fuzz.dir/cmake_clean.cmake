file(REMOVE_RECURSE
  "CMakeFiles/sp_fuzz.dir/corpus.cc.o"
  "CMakeFiles/sp_fuzz.dir/corpus.cc.o.d"
  "CMakeFiles/sp_fuzz.dir/crash.cc.o"
  "CMakeFiles/sp_fuzz.dir/crash.cc.o.d"
  "CMakeFiles/sp_fuzz.dir/fuzzer.cc.o"
  "CMakeFiles/sp_fuzz.dir/fuzzer.cc.o.d"
  "CMakeFiles/sp_fuzz.dir/report.cc.o"
  "CMakeFiles/sp_fuzz.dir/report.cc.o.d"
  "CMakeFiles/sp_fuzz.dir/seedpool.cc.o"
  "CMakeFiles/sp_fuzz.dir/seedpool.cc.o.d"
  "libsp_fuzz.a"
  "libsp_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
