file(REMOVE_RECURSE
  "CMakeFiles/table3_categories.dir/table3_categories.cc.o"
  "CMakeFiles/table3_categories.dir/table3_categories.cc.o.d"
  "table3_categories"
  "table3_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
