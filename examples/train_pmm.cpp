// Train a Program Mutation Model from scratch (paper §3.1/§3.3/§5.2):
// collect a successful-mutation dataset on the simulated kernel, train
// PMM, report the Table-1 metrics against the Rand-K baseline, and save
// a checkpoint for the other examples.
//
//   $ ./train_pmm [corpus_size] [mutations_per_base] [epochs] [ckpt]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/dataset.h"
#include "core/train.h"
#include "kernel/subsystems.h"
#include "nn/serialize.h"
#include "util/logging.h"

int
main(int argc, char **argv)
{
    using namespace sp;
    setLogLevel(LogLevel::Info);

    core::DatasetOptions data_opts;
    data_opts.corpus_size = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                     : 200;
    data_opts.mutations_per_base =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;
    core::TrainOptions train_opts;
    train_opts.epochs = argc > 3 ? std::atoi(argv[3]) : 6;
    train_opts.verbose = true;
    const std::string ckpt = argc > 4 ? argv[4] : "/tmp/pmm.ckpt";

    kern::KernelGenParams params;
    params.seed = 2024;
    params.version = "6.8";
    kern::Kernel kernel = kern::buildBaseKernel(params);

    std::printf("collecting dataset (corpus=%zu, mutations/base=%zu)\n",
                data_opts.corpus_size, data_opts.mutations_per_base);
    auto dataset = core::collectDataset(kernel, data_opts);
    std::printf("  bases                : %zu\n", dataset.bases.size());
    std::printf("  mean args per test   : %.1f\n",
                dataset.stats.mean_args_per_test);
    std::printf("  successful mutations : %zu (%.1f per base)\n",
                dataset.stats.total_successful_mutations,
                dataset.stats.mean_successful_mutations_per_base);
    std::printf("  examples train/valid/eval: %zu/%zu/%zu\n",
                dataset.train.size(), dataset.valid.size(),
                dataset.eval.size());

    core::Pmm model;
    std::printf("training PMM (%lld parameters)\n",
                static_cast<long long>(model.parameterCount()));
    auto history = core::trainPmm(model, dataset, train_opts);

    const size_t k = static_cast<size_t>(
        core::meanSitesPerExample(dataset.train) + 0.5);
    auto pmm_metrics = core::evaluatePmm(model, dataset, dataset.eval);
    auto rand_metrics = core::evaluateRandomSelector(
        dataset, dataset.eval, std::max<size_t>(k, 1), 7);

    std::printf("\nselector performance on the eval split "
                "(paper Table 1):\n");
    std::printf("  %-10s %6s %10s %8s %9s\n", "selector", "F1",
                "Precision", "Recall", "Jaccard");
    std::printf("  %-10s %5.1f%% %9.1f%% %7.1f%% %8.1f%%\n", "PMM",
                100 * pmm_metrics.f1, 100 * pmm_metrics.precision,
                100 * pmm_metrics.recall, 100 * pmm_metrics.jaccard);
    std::printf("  %-10s %5.1f%% %9.1f%% %7.1f%% %8.1f%%\n",
                ("Rand." + std::to_string(std::max<size_t>(k, 1))).c_str(),
                100 * rand_metrics.f1, 100 * rand_metrics.precision,
                100 * rand_metrics.recall, 100 * rand_metrics.jaccard);

    nn::saveParameters(model, ckpt);
    std::printf("\ncheckpoint saved to %s\n", ckpt.c_str());
    return 0;
}
