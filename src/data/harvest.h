/**
 * @file
 * Continual dataset harvesting: convert a live campaign's successful
 * mutations into §3.1 training examples, appended to an open shard —
 * train-while-fuzzing's data half.
 *
 * The harvester hangs off fuzz::CampaignOptions::on_mutation. The
 * observer callback runs on fuzzing worker threads inside the execute
 * stage, so it does the absolute minimum: for admitted argument-lane
 * mutants it copies the (base, mutant, site) triple into a bounded
 * queue — and when the queue is full it drops the event (drop-newest)
 * rather than ever blocking a worker. Everything §3.1 — re-executing
 * base and mutant under the deterministic (virtio-style) executor,
 * the one-hop alternative frontier, option-(c) noisy targets, the
 * popularity cap, content-keyed dedup and the hash-rolled
 * split-by-base tag (data::splitOfBase, so harvest shards merge
 * cleanly with collected ones) — happens on the harvester's own
 * background thread, which appends finished records to the shard.
 *
 * Crash safety: records are framed with CRCs (format.h), so a shard
 * from a killed campaign reads back to the last complete record. The
 * sidecar index is only written by close().
 *
 * Observability: `data.harvest_examples` / `data.harvest_dropped`
 * counters and `data.shard_bytes` (bytes appended across harvest
 * shards).
 */
#ifndef SP_DATA_HARVEST_H
#define SP_DATA_HARVEST_H

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "data/store.h"
#include "exec/executor.h"
#include "fuzz/campaign.h"
#include "graph/query_graph.h"

namespace sp::data {

/** Harvester configuration. */
struct HarvestOptions
{
    /** Directory the harvest shard lands in (created if missing). */
    std::string dir = ".";
    /** Shard file name within `dir`. */
    std::string shard_name = "harvest-000.spds";
    uint64_t seed = 1;
    /** Pending-event bound; beyond it offers are dropped, not queued. */
    size_t queue_capacity = 256;
    /** @name §3.1 example-construction knobs (collectDataset's) */
    /** @{ */
    size_t popularity_cap = 400;
    size_t max_frontier = 512;
    double train_fraction = 0.8;
    /** @} */
};

/** End-of-run tallies. */
struct HarvestStats
{
    uint64_t offered = 0;    ///< admitted mutants seen by the hook
    uint64_t dropped = 0;    ///< lost to the queue bound
    uint64_t bases = 0;      ///< base records written
    uint64_t examples = 0;   ///< example records written
    uint64_t discarded = 0;  ///< popularity cap / dedup / no frontier
    uint64_t bytes = 0;      ///< shard bytes written
};

/** Harvests one campaign into one shard (see file comment). */
class Harvester
{
  public:
    Harvester(const kern::Kernel &kernel, HarvestOptions opts);
    ~Harvester();

    Harvester(const Harvester &) = delete;
    Harvester &operator=(const Harvester &) = delete;

    /** The observer to install as CampaignOptions::on_mutation. */
    fuzz::MutationObserver hook();

    /**
     * Drain the queue, stop the background thread and finalize the
     * shard (records + sidecar index). Idempotent; the destructor
     * calls it. After close() the shard is ready for mergeStore.
     */
    void close();

    /** The shard being written. */
    const std::string &shardPath() const { return shard_path_; }

    /** Tallies; stable once close() returned. */
    HarvestStats stats() const;

  private:
    struct Item
    {
        prog::Prog base;
        prog::Prog mutant;
        mut::ArgLocation site;
    };

    /** Per-base cache entry (frontier analysis is per base, §3.2). */
    struct BaseEntry
    {
        bool usable = false;
        bool written = false;
        uint8_t split = kSplitTrain;
        BaseRecord record;
        exec::CoverageSet coverage;
        std::unordered_set<uint32_t> frontier_set;
        std::vector<uint32_t> frontier;
    };

    void observe(const fuzz::MutationEvent &event);
    void workerLoop();
    void process(Item &item);
    BaseEntry &baseEntryFor(const prog::Prog &base, uint64_t base_hash);

    const kern::Kernel &kernel_;
    HarvestOptions opts_;
    std::string shard_path_;

    /** @name Hot-path state (touched by campaign workers) */
    /** @{ */
    std::mutex queue_mu_;
    std::condition_variable queue_cv_;
    std::deque<Item> queue_;
    bool closing_ = false;
    /** @} */

    /** @name Background-thread state (single consumer) */
    /** @{ */
    exec::Executor executor_;  ///< deterministic mode
    Rng rng_;
    std::unique_ptr<ShardWriter> writer_;
    std::unordered_map<uint64_t, std::unique_ptr<BaseEntry>> bases_;
    std::unordered_set<uint64_t> seen_;
    std::unordered_map<uint32_t, size_t> popularity_;
    /** @} */

    mutable std::mutex stats_mu_;
    HarvestStats stats_;

    std::thread thread_;
};

}  // namespace sp::data

#endif  // SP_DATA_HARVEST_H
