#include "analysis/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "obs/telemetry.h"
#include "util/json.h"
#include "util/stats.h"

namespace sp::analysis {

namespace {

using obs::jsonQuote;

/** JSON number literal; non-finite values -> 0. */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** Fixed-format number for the verdict table. */
std::string
cell(double v)
{
    char buf[64];
    if (v == static_cast<double>(static_cast<int64_t>(v)) &&
        std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.3f", v);
    }
    return buf;
}

/** Copy the tick-core + cov + policy facts of one record. */
void
readTickFacts(const json::Value &record, TimelineLogSample &sample)
{
    if (const json::Value *v = record.find("execs"))
        sample.execs = v->asUint();
    if (const json::Value *v = record.find("edges"))
        sample.edges = v->asUint();
    if (const json::Value *v = record.find("blocks"))
        sample.blocks = v->asUint();
    if (const json::Value *v = record.find("crashes"))
        sample.crashes = v->asUint();
    if (const json::Value *v = record.find("corpus"))
        sample.corpus = v->asUint();
    if (const json::Value *cov = record.find("cov")) {
        sample.have_cov = true;
        if (const json::Value *v = cov->find("blocks_hit"))
            sample.cov_blocks_hit = v->asUint();
        if (const json::Value *v = cov->find("edges_hit"))
            sample.cov_edges_hit = v->asUint();
        if (const json::Value *v = cov->find("total_block_hits"))
            sample.cov_total_block_hits = v->asUint();
        if (const json::Value *v = cov->find("frontier_size"))
            sample.cov_frontier_size = v->asUint();
        if (const json::Value *v = cov->find("stray_edges"))
            sample.cov_stray_edges = v->asUint();
    }
    if (const json::Value *policy = record.find("policy")) {
        sample.have_policy = true;
        if (const json::Value *v = policy->find("name"))
            sample.policy_name = v->str();
        if (const json::Value *v = policy->find("pmm_share"))
            sample.pmm_share = v->number();
    }
}

Verdict
ratioVerdict(double a, double b, double tol, bool higher_is_better)
{
    if (a <= 0.0 && b <= 0.0)
        return Verdict::Ok;
    if (higher_is_better) {
        if (b < a * (1.0 - tol))
            return Verdict::Regressed;
        if (b > a * (1.0 + tol))
            return Verdict::Improved;
    } else {
        if (b > a * (1.0 + tol))
            return Verdict::Regressed;
        if (b < a * (1.0 - tol))
            return Verdict::Improved;
    }
    return Verdict::Ok;
}

void
appendDelta(std::string &out, const char *key, const MetricDelta &d)
{
    out += '"';
    out += key;
    out += "\":{\"name\":";
    out += jsonQuote(d.name);
    out += ",\"a\":";
    out += jsonNumber(d.a);
    out += ",\"b\":";
    out += jsonNumber(d.b);
    out += ",\"delta\":";
    out += jsonNumber(d.b - d.a);
    out += ",\"verdict\":\"";
    out += verdictName(d.verdict);
    out += "\"}";
}

}  // namespace

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Improved:
        return "improved";
      case Verdict::Ok:
        return "ok";
      case Verdict::Regressed:
        return "regressed";
      case Verdict::Skipped:
        return "skipped";
    }
    return "?";
}

const TimelineLogSample &
TimelineLog::end() const
{
    if (has_final)
        return final_state;
    static const TimelineLogSample empty;
    return samples.empty() ? empty : samples.back();
}

TimelineLog
TimelineLog::load(const std::string &path)
{
    TimelineLog log;
    log.path = path;
    std::ifstream in(path);
    if (!in) {
        log.error = "cannot open " + path;
        return log;
    }

    // Running cumulative state the delta-encoded samples fold into.
    TimelineLogSample state;

    std::string line;
    size_t line_no = 0;
    bool have_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        json::ParseResult parsed = json::parse(line);
        if (!parsed.ok()) {
            log.error = "line " + std::to_string(line_no) + ": " +
                        parsed.error;
            return log;
        }
        const json::Value &record = parsed.value;
        const json::Value *type = record.find("type");
        if (type == nullptr) {
            log.error =
                "line " + std::to_string(line_no) + ": missing type";
            return log;
        }

        if (type->str() == "timeline_header") {
            if (have_header) {
                log.error = "duplicate timeline_header";
                return log;
            }
            have_header = true;
            if (const json::Value *v = record.find("version"))
                log.version = static_cast<int>(v->asInt());
            if (const json::Value *v = record.find("timing"))
                log.timing = v->boolean();
            if (log.version != 1) {
                log.error = "unsupported timeline version " +
                            std::to_string(log.version);
                return log;
            }
            continue;
        }
        if (!have_header) {
            log.error = "line " + std::to_string(line_no) +
                        ": record before timeline_header";
            return log;
        }

        if (type->str() == "timeline_sample") {
            readTickFacts(record, state);
            if (const json::Value *arms = record.find("policy")) {
                if (const json::Value *list = arms->find("arms")) {
                    for (const json::Value &entry : list->array()) {
                        const json::Value *arm = entry.at(0);
                        const json::Value *dp = entry.at(1);
                        const json::Value *dw = entry.at(2);
                        if (arm == nullptr || dp == nullptr ||
                            dw == nullptr) {
                            log.error =
                                "line " + std::to_string(line_no) +
                                ": malformed arm delta";
                            return log;
                        }
                        auto &cell =
                            state.arms[static_cast<int>(arm->asInt())];
                        cell.first += dp->asUint();
                        cell.second += dw->asUint();
                    }
                }
            }
            if (const json::Value *counters = record.find("counters")) {
                for (const auto &[name, value] : counters->members())
                    state.counters[name] += value.asUint();
            }
            if (const json::Value *gauges = record.find("gauges")) {
                for (const auto &[name, value] : gauges->members())
                    state.gauges[name] = value.number();
            }
            if (const json::Value *hists = record.find("hists")) {
                for (const auto &[name, value] : hists->members()) {
                    const json::Value *dcount = value.at(0);
                    if (dcount == nullptr) {
                        log.error = "line " + std::to_string(line_no) +
                                    ": malformed hist entry";
                        return log;
                    }
                    state.hist_counts[name] += dcount->asUint();
                }
            }
            log.samples.push_back(state);
            continue;
        }

        if (type->str() == "timeline_final") {
            if (log.has_final) {
                log.error = "duplicate timeline_final";
                return log;
            }
            log.has_final = true;
            TimelineLogSample fin;
            readTickFacts(record, fin);
            if (const json::Value *policy = record.find("policy")) {
                if (const json::Value *list = policy->find("arms")) {
                    for (const json::Value &entry : list->array()) {
                        const json::Value *arm = entry.at(0);
                        const json::Value *pulls = entry.at(1);
                        const json::Value *wins = entry.at(2);
                        if (arm == nullptr || pulls == nullptr ||
                            wins == nullptr)
                            continue;
                        fin.arms[static_cast<int>(arm->asInt())] = {
                            pulls->asUint(), wins->asUint()};
                    }
                }
            }
            if (const json::Value *counters = record.find("counters")) {
                for (const auto &[name, value] : counters->members())
                    fin.counters[name] = value.asUint();
            }
            if (const json::Value *hists = record.find("hists")) {
                for (const auto &[name, value] : hists->members()) {
                    TimelineFinalHist h;
                    if (const json::Value *v = value.find("count"))
                        h.count = v->asUint();
                    if (const json::Value *v = value.find("mean"))
                        h.mean = v->number();
                    if (const json::Value *v = value.find("min"))
                        h.min = v->number();
                    if (const json::Value *v = value.find("max"))
                        h.max = v->number();
                    if (const json::Value *v = value.find("stddev"))
                        h.stddev = v->number();
                    if (const json::Value *v = value.find("p50"))
                        h.p50 = v->number();
                    if (const json::Value *v = value.find("p90"))
                        h.p90 = v->number();
                    if (const json::Value *v = value.find("p99"))
                        h.p99 = v->number();
                    log.final_hists[name] = h;
                    fin.hist_counts[name] = h.count;
                }
            }
            log.final_state = fin;
            continue;
        }

        log.error = "line " + std::to_string(line_no) +
                    ": unknown record type '" + type->str() + "'";
        return log;
    }

    if (!have_header)
        log.error = "no timeline_header in " + path;
    else if (log.samples.empty() && !log.has_final)
        log.error = "no samples in " + path;
    return log;
}

CompareReport
compare(const TimelineLog &a, const TimelineLog &b,
        const CompareOptions &opts)
{
    CompareReport report;
    report.path_a = a.path;
    report.path_b = b.path;
    report.opts = opts;

    // Align on the intersection of the virtual-time grids. Identical
    // configurations share the whole grid; differing budgets or
    // checkpoint strides still align on the common prefix points.
    std::map<uint64_t, const TimelineLogSample *> by_execs_b;
    for (const TimelineLogSample &s : b.samples)
        by_execs_b[s.execs] = &s;
    std::vector<std::pair<const TimelineLogSample *,
                          const TimelineLogSample *>>
        aligned;
    for (const TimelineLogSample &s : a.samples) {
        const auto it = by_execs_b.find(s.execs);
        if (it != by_execs_b.end())
            aligned.push_back({&s, it->second});
    }
    report.aligned_samples = aligned.size();
    if (!aligned.empty())
        report.grid_end = aligned.back().first->execs;

    const TimelineLogSample &end_a = a.end();
    const TimelineLogSample &end_b = b.end();

    // Final edge coverage (the stage-8 ablation gate's metric).
    report.final_edges.name = "final_edges";
    report.final_edges.a = static_cast<double>(end_a.edges);
    report.final_edges.b = static_cast<double>(end_b.edges);
    report.final_edges.verdict =
        ratioVerdict(report.final_edges.a, report.final_edges.b,
                     opts.final_edges_tol, /*higher_is_better=*/true);

    // Coverage AUC over the aligned grid (trapezoid in virtual time).
    report.coverage_auc.name = "coverage_auc";
    double auc_a = 0, auc_b = 0;
    for (size_t i = 1; i < aligned.size(); ++i) {
        const double dt =
            static_cast<double>(aligned[i].first->execs -
                                aligned[i - 1].first->execs);
        auc_a += dt *
                 (static_cast<double>(aligned[i].first->edges) +
                  static_cast<double>(aligned[i - 1].first->edges)) /
                 2.0;
        auc_b += dt *
                 (static_cast<double>(aligned[i].second->edges) +
                  static_cast<double>(aligned[i - 1].second->edges)) /
                 2.0;
    }
    report.coverage_auc.a = auc_a;
    report.coverage_auc.b = auc_b;
    report.coverage_auc.verdict =
        aligned.size() < 2
            ? Verdict::Skipped
            : ratioVerdict(auc_a, auc_b, opts.auc_tol,
                           /*higher_is_better=*/true);

    // Virtual time to reach time_to_frac of A's final edges. 0 =
    // never reached within the recorded samples.
    report.target_edges = static_cast<uint64_t>(
        opts.time_to_frac * static_cast<double>(end_a.edges));
    auto timeTo = [&](const std::vector<TimelineLogSample> &samples) {
        for (const TimelineLogSample &s : samples) {
            if (s.edges >= report.target_edges)
                return s.execs;
        }
        return uint64_t{0};
    };
    report.time_to_target.name = "time_to_target_edges";
    report.time_to_target.a =
        static_cast<double>(timeTo(a.samples));
    report.time_to_target.b =
        static_cast<double>(timeTo(b.samples));
    if (report.target_edges == 0) {
        report.time_to_target.verdict = Verdict::Skipped;
    } else if (report.time_to_target.b == 0) {
        report.time_to_target.verdict = report.time_to_target.a == 0
                                            ? Verdict::Skipped
                                            : Verdict::Regressed;
    } else if (report.time_to_target.a == 0) {
        report.time_to_target.verdict = Verdict::Improved;
    } else {
        report.time_to_target.verdict = ratioVerdict(
            report.time_to_target.a, report.time_to_target.b,
            opts.time_to_tol, /*higher_is_better=*/false);
    }

    // Latency p50 shifts: only meaningful when both runs recorded
    // wall-clock telemetry; a virtual-time-only artifact has none.
    if (a.timing && b.timing) {
        for (const auto &[name, ha] : a.final_hists) {
            if (name.size() < 3 ||
                name.compare(name.size() - 3, 3, "_us") != 0)
                continue;
            const auto it = b.final_hists.find(name);
            if (it == b.final_hists.end())
                continue;
            MetricDelta d;
            d.name = name;
            d.a = ha.p50;
            d.b = it->second.p50;
            d.verdict = ratioVerdict(d.a, d.b, opts.latency_tol,
                                     /*higher_is_better=*/false);
            report.latencies.push_back(d);
        }
    }

    // Informational counter deltas over the union of names.
    std::set<std::string> names;
    for (const auto &[name, value] : end_a.counters)
        names.insert(name);
    for (const auto &[name, value] : end_b.counters)
        names.insert(name);
    for (const std::string &name : names) {
        MetricDelta d;
        d.name = name;
        const auto ia = end_a.counters.find(name);
        const auto ib = end_b.counters.find(name);
        d.a = ia == end_a.counters.end()
                  ? 0.0
                  : static_cast<double>(ia->second);
        d.b = ib == end_b.counters.end()
                  ? 0.0
                  : static_cast<double>(ib->second);
        report.counters.push_back(d);
    }

    report.crashes.name = "unique_crashes";
    report.crashes.a = static_cast<double>(end_a.crashes);
    report.crashes.b = static_cast<double>(end_b.crashes);

    // Policy divergence (informational): pmm shares and the total-
    // variation distance between normalized arm-pull distributions.
    report.have_policy = end_a.have_policy || end_b.have_policy;
    report.policy_a = end_a.policy_name;
    report.policy_b = end_b.policy_name;
    report.pmm_share_a = end_a.pmm_share;
    report.pmm_share_b = end_b.pmm_share;
    double total_a = 0, total_b = 0;
    for (const auto &[arm, pw] : end_a.arms)
        total_a += static_cast<double>(pw.first);
    for (const auto &[arm, pw] : end_b.arms)
        total_b += static_cast<double>(pw.first);
    std::set<int> arm_ids;
    for (const auto &[arm, pw] : end_a.arms)
        arm_ids.insert(arm);
    for (const auto &[arm, pw] : end_b.arms)
        arm_ids.insert(arm);
    double divergence = 0;
    for (const int arm : arm_ids) {
        const auto ia = end_a.arms.find(arm);
        const auto ib = end_b.arms.find(arm);
        const double pa =
            total_a > 0 && ia != end_a.arms.end()
                ? static_cast<double>(ia->second.first) / total_a
                : 0.0;
        const double pb =
            total_b > 0 && ib != end_b.arms.end()
                ? static_cast<double>(ib->second.first) / total_b
                : 0.0;
        divergence += std::fabs(pa - pb);
    }
    report.arm_divergence = divergence / 2.0;

    // Collect the regression verdicts.
    auto note = [&report](const MetricDelta &d) {
        if (d.verdict != Verdict::Regressed)
            return;
        report.regressions.push_back(
            d.name + ": " + cell(d.a) + " -> " + cell(d.b));
    };
    note(report.final_edges);
    note(report.coverage_auc);
    note(report.time_to_target);
    for (const MetricDelta &d : report.latencies)
        note(d);
    return report;
}

std::string
compareJson(const CompareReport &report)
{
    std::string out;
    out.reserve(2048);
    out += "{\"type\":\"compare_report\",\"version\":";
    out += std::to_string(CompareReport::kFormatVersion);
    out += ",\"a\":";
    out += jsonQuote(report.path_a);
    out += ",\"b\":";
    out += jsonQuote(report.path_b);
    out += ",\"aligned\":{\"samples\":";
    out += std::to_string(report.aligned_samples);
    out += ",\"grid_end\":";
    out += std::to_string(report.grid_end);
    out += "},\"coverage\":{";
    appendDelta(out, "final_edges", report.final_edges);
    out += ',';
    appendDelta(out, "auc", report.coverage_auc);
    out += ",\"time_to_target\":{\"target_edges\":";
    out += std::to_string(report.target_edges);
    out += ",\"a\":";
    out += jsonNumber(report.time_to_target.a);
    out += ",\"b\":";
    out += jsonNumber(report.time_to_target.b);
    out += ",\"verdict\":\"";
    out += verdictName(report.time_to_target.verdict);
    out += "\"}},\"latency\":[";
    for (size_t i = 0; i < report.latencies.size(); ++i) {
        const MetricDelta &d = report.latencies[i];
        if (i != 0)
            out += ',';
        out += "{\"name\":";
        out += jsonQuote(d.name);
        out += ",\"p50_a\":";
        out += jsonNumber(d.a);
        out += ",\"p50_b\":";
        out += jsonNumber(d.b);
        out += ",\"verdict\":\"";
        out += verdictName(d.verdict);
        out += "\"}";
    }
    out += "],\"counters\":[";
    for (size_t i = 0; i < report.counters.size(); ++i) {
        const MetricDelta &d = report.counters[i];
        if (i != 0)
            out += ',';
        out += "{\"name\":";
        out += jsonQuote(d.name);
        out += ",\"a\":";
        out += jsonNumber(d.a);
        out += ",\"b\":";
        out += jsonNumber(d.b);
        out += ",\"delta\":";
        out += jsonNumber(d.b - d.a);
        out += '}';
    }
    out += "],\"crashes\":{\"a\":";
    out += jsonNumber(report.crashes.a);
    out += ",\"b\":";
    out += jsonNumber(report.crashes.b);
    out += '}';
    if (report.have_policy) {
        out += ",\"policy\":{\"a\":";
        out += jsonQuote(report.policy_a);
        out += ",\"b\":";
        out += jsonQuote(report.policy_b);
        out += ",\"pmm_share_a\":";
        out += jsonNumber(report.pmm_share_a);
        out += ",\"pmm_share_b\":";
        out += jsonNumber(report.pmm_share_b);
        out += ",\"arm_divergence\":";
        out += jsonNumber(report.arm_divergence);
        out += '}';
    }
    out += ",\"thresholds\":{\"final_edges_tol\":";
    out += jsonNumber(report.opts.final_edges_tol);
    out += ",\"auc_tol\":";
    out += jsonNumber(report.opts.auc_tol);
    out += ",\"time_to_frac\":";
    out += jsonNumber(report.opts.time_to_frac);
    out += ",\"time_to_tol\":";
    out += jsonNumber(report.opts.time_to_tol);
    out += ",\"latency_tol\":";
    out += jsonNumber(report.opts.latency_tol);
    out += "},\"regressions\":[";
    for (size_t i = 0; i < report.regressions.size(); ++i) {
        if (i != 0)
            out += ',';
        out += jsonQuote(report.regressions[i]);
    }
    out += "],\"verdict\":\"";
    out += report.regressed() ? "regressed" : "ok";
    out += "\"}";
    return out;
}

std::string
compareText(const CompareReport &report)
{
    std::vector<std::vector<std::string>> rows;
    auto row = [&rows](const MetricDelta &d) {
        rows.push_back({d.name, cell(d.a), cell(d.b),
                        cell(d.b - d.a), verdictName(d.verdict)});
    };
    row(report.final_edges);
    row(report.coverage_auc);
    row(report.time_to_target);
    for (const MetricDelta &d : report.latencies)
        row(d);
    rows.push_back({"unique_crashes", cell(report.crashes.a),
                    cell(report.crashes.b),
                    cell(report.crashes.b - report.crashes.a), "info"});
    if (report.have_policy) {
        rows.push_back({"pmm_share", cell(report.pmm_share_a),
                        cell(report.pmm_share_b),
                        cell(report.pmm_share_b - report.pmm_share_a),
                        "info"});
        rows.push_back({"arm_divergence", "-", "-",
                        cell(report.arm_divergence), "info"});
    }

    std::string out;
    out += "compare: A=" + report.path_a + "  B=" + report.path_b +
           "\n";
    out += "aligned " + std::to_string(report.aligned_samples) +
           " samples, grid end " + std::to_string(report.grid_end) +
           " execs, target " + std::to_string(report.target_edges) +
           " edges\n";
    out += formatTable({"metric", "A", "B", "delta", "verdict"}, rows);
    if (report.regressed()) {
        out += "REGRESSED:\n";
        for (const std::string &r : report.regressions)
            out += "  - " + r + "\n";
    } else {
        out += "no regressions\n";
    }
    return out;
}

}  // namespace sp::analysis
