#include "exec/arena.h"

namespace sp::exec {

ExecArena &
ExecArena::local()
{
    thread_local ExecArena arena;
    return arena;
}

}  // namespace sp::exec
