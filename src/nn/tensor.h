/**
 * @file
 * Minimal reverse-mode automatic differentiation over dense float tensors.
 *
 * This is the project's substitute for PyTorch: a tape-based autograd
 * engine supporting the 1-D and 2-D float operations needed to implement
 * and train the Program Mutation Model (PMM) — matrix products, row
 * gather/scatter for graph message passing, layer normalization, the usual
 * activations, and fused losses. Tensors are shared handles; operations
 * record a backward closure and parent links, and Tensor::backward() runs
 * reverse-topological accumulation into each node's grad buffer.
 *
 * Shapes are restricted to rank 1 ([n], treated as a row when needed) and
 * rank 2 ([rows, cols]). That is sufficient for every model in this
 * repository and keeps the engine small and auditable.
 */
#ifndef SP_NN_TENSOR_H
#define SP_NN_TENSOR_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace sp {
class Rng;
}

namespace sp::nn {

/** Internal autograd node; users interact through Tensor. */
struct TensorNode
{
    std::vector<float> data;
    std::vector<float> grad;
    int64_t rows = 0;
    int64_t cols = 0;   ///< 0 for rank-1 tensors
    bool requires_grad = false;
    std::function<void()> backward_fn;
    std::vector<std::shared_ptr<TensorNode>> parents;

    /** Total number of elements. */
    int64_t numel() const { return cols == 0 ? rows : rows * cols; }
};

/**
 * Shared handle to an autograd node. Copies alias the same storage.
 */
class Tensor
{
  public:
    /** Null tensor (no storage); valid() is false. */
    Tensor() = default;

    /** True when this handle refers to storage. */
    bool valid() const { return node_ != nullptr; }

    /** @name Construction */
    /** @{ */
    /** Rank-1 zeros of length n. */
    static Tensor zerosVec(int64_t n, bool requires_grad = false);
    /** Rank-2 zeros of shape [rows, cols]. */
    static Tensor zeros(int64_t rows, int64_t cols,
                        bool requires_grad = false);
    /** Rank-1 tensor from values. */
    static Tensor fromVector(std::vector<float> values,
                             bool requires_grad = false);
    /** Rank-2 tensor from row-major values. */
    static Tensor fromMatrix(std::vector<float> values, int64_t rows,
                             int64_t cols, bool requires_grad = false);
    /** Gaussian init, std `scale`, rank-2. Used for parameters. */
    static Tensor randn(Rng &rng, int64_t rows, int64_t cols, float scale,
                        bool requires_grad = true);
    /** Scalar constant (rank-1 length 1). */
    static Tensor scalar(float value, bool requires_grad = false);
    /** @} */

    /** @name Shape and element access */
    /** @{ */
    int64_t rows() const { return node_->rows; }
    int64_t cols() const { return node_->cols; }
    int64_t numel() const { return node_->numel(); }
    bool isMatrix() const { return node_->cols != 0; }
    float item() const;                       ///< value of a 1-element tensor
    float at(int64_t i) const;                ///< rank-1 element
    float at(int64_t r, int64_t c) const;     ///< rank-2 element
    void set(int64_t i, float v);             ///< rank-1 element write
    void set(int64_t r, int64_t c, float v);  ///< rank-2 element write
    const std::vector<float> &data() const { return node_->data; }
    std::vector<float> &mutableData() { return node_->data; }
    const std::vector<float> &grad() const { return node_->grad; }
    bool requiresGrad() const { return node_->requires_grad; }
    /** @} */

    /**
     * Run reverse-mode accumulation from this tensor, which must be a
     * single-element tensor (a loss). Grad buffers of every reachable
     * node requiring grad are accumulated into (not reset first; call
     * zeroGrad on parameters between steps).
     */
    void backward();

    /** Reset this tensor's grad buffer to zeros. */
    void zeroGrad();

    /** Access the underlying node (for the op implementations). */
    const std::shared_ptr<TensorNode> &node() const { return node_; }

    /** Wrap an existing node. */
    explicit Tensor(std::shared_ptr<TensorNode> node)
        : node_(std::move(node)) {}

  private:
    std::shared_ptr<TensorNode> node_;
};

/** @name Differentiable operations */
/** @{ */

/** Matrix product [n,k]x[k,m] -> [n,m]. */
Tensor matmul(const Tensor &a, const Tensor &b);

/**
 * Fused affine map: a * w + b for matrix a [n,k], weights w [k,m] and
 * rank-1 bias b of length m. Equivalent to addRowVec(matmul(a, w), b)
 * — bit-identical, since the GEMM accumulates onto a bias-initialized
 * output — but with one node and one pass over the output instead of
 * two. The Linear-layer hot path.
 */
Tensor affine(const Tensor &a, const Tensor &w, const Tensor &b);

/**
 * Fused mean-aggregation over graph edges: for each edge e,
 * out[dst[e], :] accumulates a[src[e], :], and each output row is then
 * divided by its in-degree (rows with no incoming edge stay zero).
 * Equivalent to rowScale(scatterAddRows(gatherRows(a, src), dst,
 * out_rows), 1/degree) without materializing the two intermediates —
 * the GCN message-passing hot path.
 */
Tensor segmentMeanRows(const Tensor &a,
                       const std::vector<int32_t> &src,
                       const std::vector<int32_t> &dst,
                       int64_t out_rows);

/** Elementwise sum of same-shape tensors. */
Tensor add(const Tensor &a, const Tensor &b);

/** Elementwise difference of same-shape tensors. */
Tensor sub(const Tensor &a, const Tensor &b);

/** Elementwise product of same-shape tensors. */
Tensor mul(const Tensor &a, const Tensor &b);

/** Add a rank-1 bias of length cols(a) to every row of matrix a. */
Tensor addRowVec(const Tensor &a, const Tensor &b);

/** Multiply every row of matrix a elementwise by a rank-1 vector. */
Tensor mulRowVec(const Tensor &a, const Tensor &b);

/** Multiply by a scalar constant. */
Tensor scale(const Tensor &a, float factor);

/** Rectified linear unit. */
Tensor relu(const Tensor &a);

/** Hyperbolic tangent. */
Tensor tanhT(const Tensor &a);

/** Logistic sigmoid. */
Tensor sigmoid(const Tensor &a);

/**
 * Gather rows of a matrix: out[i, :] = a[index[i], :]. Indices may
 * repeat; backward scatter-adds.
 */
Tensor gatherRows(const Tensor &a, const std::vector<int32_t> &index);

/**
 * Scatter-add rows: out has `out_rows` rows; out[index[i], :] += a[i, :].
 * The core primitive of graph message passing.
 */
Tensor scatterAddRows(const Tensor &a, const std::vector<int32_t> &index,
                      int64_t out_rows);

/** Scale each row i of a by the constant factor scales[i] (no grad). */
Tensor rowScale(const Tensor &a, const std::vector<float> &scales);

/**
 * Differentiable per-row scaling: out[i,:] = a[i,:] * v[i], where v is
 * a rank-1 tensor of length rows(a). Gradients flow to both operands
 * (the attention-weighting primitive).
 */
Tensor rowScaleT(const Tensor &a, const Tensor &v);

/** Leaky rectifier: x if x > 0 else slope * x. */
Tensor leakyRelu(const Tensor &a, float slope = 0.2f);

/**
 * Softmax over variable-size segments of a rank-1 tensor: element i
 * belongs to segment `segment[i]`; the result is normalized within
 * each segment (the per-destination attention normalizer of GAT).
 */
Tensor segmentSoftmax(const Tensor &scores,
                      const std::vector<int32_t> &segment,
                      int32_t num_segments);

/** Concatenate matrices with equal row counts along columns. */
Tensor concatCols(const std::vector<Tensor> &parts);

/** Concatenate matrices with equal column counts along rows. */
Tensor concatRows(const std::vector<Tensor> &parts);

/** Per-row layer normalization (no learnable parameters; compose). */
Tensor layerNormRows(const Tensor &a, float eps = 1e-5f);

/** Per-row softmax. */
Tensor softmaxRows(const Tensor &a);

/** Reshape any tensor to rank-1 (identity values and gradient). */
Tensor flatten(const Tensor &a);

/** Mean over all elements -> scalar. */
Tensor meanAll(const Tensor &a);

/** Sum over all elements -> scalar. */
Tensor sumAll(const Tensor &a);

/**
 * Fused binary-cross-entropy-with-logits, mean over elements:
 *   loss = mean_i w_i * [ log(1+exp(x_i)) - y_i * x_i ]
 * targets/weights are constants of the same length as logits (rank-1).
 */
Tensor bceWithLogits(const Tensor &logits, const std::vector<float> &targets,
                     const std::vector<float> &weights);

/**
 * Fused softmax-cross-entropy, mean over rows: logits is [n, classes],
 * targets holds one class index per row.
 */
Tensor crossEntropyRows(const Tensor &logits,
                        const std::vector<int32_t> &targets);

/**
 * Dropout: zero elements with probability p and scale the rest by
 * 1/(1-p). Identity when `training` is false or p == 0.
 */
Tensor dropout(const Tensor &a, float p, Rng &rng, bool training);

/** @} */

}  // namespace sp::nn

#endif  // SP_NN_TENSOR_H
