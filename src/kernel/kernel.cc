#include "kernel/kernel.h"

#include <algorithm>

#include "util/hash.h"
#include "util/logging.h"

namespace sp::kern {

namespace token {

uint16_t
slotToken(uint16_t slot)
{
    return kSlotBase + std::min<uint16_t>(slot, kMaxSlots - 1);
}

uint16_t
constToken(uint64_t value)
{
    return kConstBase +
           static_cast<uint16_t>(hashU64(value) % kConstBuckets);
}

uint16_t
regToken(uint16_t r)
{
    return kRegBase + static_cast<uint16_t>(r % kRegCount);
}

}  // namespace token

std::vector<uint16_t>
branchTokens(const Cond &cond)
{
    using namespace token;
    std::vector<uint16_t> tokens;
    switch (cond.kind) {
      case CondKind::Always:
        tokens = {kOpMov, regToken(0), kOpJe};
        break;
      case CondKind::ArgEq:
        tokens = {kOpCmp, slotToken(cond.slot), constToken(cond.a),
                  kOpJe};
        break;
      case CondKind::ArgNeq:
        tokens = {kOpCmp, slotToken(cond.slot), constToken(cond.a),
                  kOpJne};
        break;
      case CondKind::ArgLt:
        tokens = {kOpCmp, slotToken(cond.slot), constToken(cond.a),
                  kOpJb};
        break;
      case CondKind::ArgGe:
        tokens = {kOpCmp, slotToken(cond.slot), constToken(cond.a),
                  kOpJae};
        break;
      case CondKind::ArgMaskAll:
        tokens = {kOpTest, slotToken(cond.slot), constToken(cond.a),
                  kOpJne};
        break;
      case CondKind::ArgMaskNone:
        tokens = {kOpTest, slotToken(cond.slot), constToken(cond.a),
                  kOpJe};
        break;
      case CondKind::ArgInRange:
        tokens = {kOpCmp, slotToken(cond.slot), constToken(cond.a),
                  kOpJae, kOpCmp, slotToken(cond.slot),
                  constToken(cond.b), kOpJb};
        break;
      case CondKind::StateFlagSet:
        tokens = {kOpState, constToken(cond.flag), kOpJne};
        break;
      case CondKind::ResourceAlive:
        tokens = {kOpResCheck, slotToken(cond.slot),
                  constToken(cond.flag), kOpJne};
        break;
    }
    return tokens;
}

std::vector<uint16_t>
bodyTokens(uint32_t block_id)
{
    using namespace token;
    // Deterministic pseudo-random body so distinct blocks embed
    // distinctly but identical structure hashes identically.
    uint64_t h = hashU64(block_id);
    std::vector<uint16_t> tokens;
    const int n = 2 + static_cast<int>(h % 3);
    static const uint16_t ops[] = {kOpMov, kOpLoad, kOpStore, kOpCall,
                                   kOpAnd};
    for (int i = 0; i < n; ++i) {
        h = hashU64(h + static_cast<uint64_t>(i));
        tokens.push_back(ops[h % (sizeof(ops) / sizeof(ops[0]))]);
        tokens.push_back(regToken(static_cast<uint16_t>(h >> 8)));
    }
    return tokens;
}

const char *
bugKindName(BugKind kind)
{
    switch (kind) {
      case BugKind::NullDeref:
        return "Null pointer dereference";
      case BugKind::PagingFault:
        return "Paging fault";
      case BugKind::AssertViolation:
        return "Explicit assertion violation";
      case BugKind::GeneralProtectionFault:
        return "General protection fault";
      case BugKind::OutOfBounds:
        return "Out of bounds access";
      case BugKind::Warning:
        return "Warning";
      case BugKind::Other:
        return "Other";
    }
    SP_PANIC("unreachable bug kind");
}

const BasicBlock &
Kernel::block(uint32_t id) const
{
    SP_ASSERT(id < blocks_.size(), "block id %u out of range", id);
    return blocks_[id];
}

const Handler &
Kernel::handler(uint32_t syscall_id) const
{
    SP_ASSERT(syscall_id < handlers_.size(),
              "syscall id %u out of range", syscall_id);
    return handlers_[syscall_id];
}

ResourceKindId
Kernel::resourceKindId(const std::string &name) const
{
    for (size_t i = 0; i < resource_kinds_.size(); ++i)
        if (resource_kinds_[i] == name)
            return static_cast<ResourceKindId>(i);
    SP_FATAL("unknown resource kind: %s", name.c_str());
}

CallResult
Kernel::executeCall(uint32_t syscall_id,
                    const std::vector<uint64_t> &slots, KernelState &state,
                    std::vector<uint32_t> &trace, Rng *noise) const
{
    const Handler &h = handler(syscall_id);
    SP_ASSERT(slots.size() == h.num_slots,
              "syscall %u expects %u slots, got %zu", syscall_id,
              h.num_slots, slots.size());

    CallResult result;

    // Stray interrupt noise: with the network-RPC transport the guest
    // occasionally runs unrelated kernel code mid-test (§3.1). The
    // deterministic virtio mode (noise == nullptr) never does.
    if (noise != nullptr && !interrupt_blocks_.empty() &&
        noise->chance(0.02)) {
        trace.push_back(
            interrupt_blocks_[noise->below(interrupt_blocks_.size())]);
    }

    uint32_t current = h.entry;
    // Handler CFGs are DAGs; the cap is a defensive bound only.
    const size_t step_cap = blocks_.size() + 1;
    for (size_t steps = 0; steps < step_cap; ++steps) {
        SP_ASSERT(current < blocks_.size(),
                  "handler walked to invalid block");
        const BasicBlock &bb = blocks_[current];
        trace.push_back(current);

        if (const uint32_t bug_index = bugIndexAt(current);
            bug_index != kNoBug) {
            const BugSite &bug = bugs_[bug_index];
            const bool triggers =
                !bug.flaky || (noise != nullptr && noise->chance(0.3));
            if (triggers) {
                result.crashed = true;
                result.bug_index = bug_index;
                return result;
            }
        }

        switch (bb.term) {
          case Term::Return:
            goto returned;
          case Term::Fallthrough:
            current = bb.taken;
            break;
          case Term::Branch:
            current = evalCond(bb.cond, slots, state) ? bb.taken
                                                      : bb.fallthrough;
            break;
        }
    }
    SP_PANIC("handler CFG for syscall %u did not terminate", syscall_id);

returned:
    for (const auto &effect : h.effects) {
        switch (effect.kind) {
          case SyscallEffect::Kind::None:
            break;
          case SyscallEffect::Kind::AllocResource:
            result.ret = state.allocResource(effect.resource_kind);
            break;
          case SyscallEffect::Kind::FreeResource:
            SP_ASSERT(effect.slot < slots.size());
            state.release(slots[effect.slot]);
            break;
          case SyscallEffect::Kind::SetFlag:
            state.setFlag(effect.flag, true);
            break;
          case SyscallEffect::Kind::ClearFlag:
            state.setFlag(effect.flag, false);
            break;
        }
    }
    return result;
}

std::vector<uint32_t>
Kernel::successors(uint32_t block_id) const
{
    const BasicBlock &bb = block(block_id);
    std::vector<uint32_t> succ;
    switch (bb.term) {
      case Term::Return:
        break;
      case Term::Fallthrough:
        succ.push_back(bb.taken);
        break;
      case Term::Branch:
        succ.push_back(bb.taken);
        if (bb.fallthrough != bb.taken)
            succ.push_back(bb.fallthrough);
        break;
    }
    return succ;
}

std::vector<std::pair<uint32_t, uint32_t>>
Kernel::staticEdges() const
{
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (const auto &bb : blocks_)
        for (uint32_t succ : successors(bb.id))
            edges.emplace_back(bb.id, succ);
    return edges;
}

const BugSite *
Kernel::bugAt(uint32_t block_id) const
{
    const uint32_t bug_index = bugIndexAt(block_id);
    return bug_index == kNoBug ? nullptr : &bugs_[bug_index];
}

}  // namespace sp::kern
