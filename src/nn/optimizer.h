/**
 * @file
 * First-order optimizers operating on a module's parameter list.
 */
#ifndef SP_NN_OPTIMIZER_H
#define SP_NN_OPTIMIZER_H

#include <cstdint>
#include <vector>

#include "nn/module.h"

namespace sp::nn {

/** Plain stochastic gradient descent with optional weight decay. */
class Sgd
{
  public:
    /**
     * @param params        parameters to optimize (handles are shared)
     * @param lr            learning rate
     * @param weight_decay  decoupled L2 coefficient
     */
    Sgd(std::vector<Parameter> params, float lr, float weight_decay = 0.0f);

    /** Apply one update from the accumulated gradients. */
    void step();

    /** Change the learning rate (for schedules). */
    void setLearningRate(float lr) { lr_ = lr; }

  private:
    std::vector<Parameter> params_;
    float lr_;
    float weight_decay_;
};

/**
 * Adam's mutable state: the step count and both moment estimates, one
 * vector per parameter in parameter-list order. Snapshotting and
 * restoring this (plus the parameters themselves) resumes training
 * mid-run with bit-identical updates — the payload `train --resume`
 * checkpoints through nn/serialize.
 */
struct AdamState
{
    int64_t step_count = 0;
    std::vector<std::vector<float>> first_moments;
    std::vector<std::vector<float>> second_moments;
};

/** Adam (Kingma & Ba) with decoupled weight decay (AdamW-style). */
class Adam
{
  public:
    /**
     * @param params        parameters to optimize (handles are shared)
     * @param lr            learning rate
     * @param beta1         first-moment decay
     * @param beta2         second-moment decay
     * @param eps           denominator stabilizer
     * @param weight_decay  decoupled L2 coefficient
     */
    Adam(std::vector<Parameter> params, float lr, float beta1 = 0.9f,
         float beta2 = 0.999f, float eps = 1e-8f,
         float weight_decay = 0.0f);

    /** Apply one update from the accumulated gradients. */
    void step();

    /** Change the learning rate (for schedules). */
    void setLearningRate(float lr) { lr_ = lr; }

    /** Steps taken so far. */
    int64_t stepCount() const { return t_; }

    /**
     * Clip the global gradient norm across all parameters to `max_norm`
     * before stepping. Returns the pre-clip norm.
     */
    float clipGradNorm(float max_norm);

    /** Copy out the optimizer's mutable state. */
    AdamState snapshot() const;

    /**
     * Restore a snapshot taken from an identically-shaped optimizer.
     * Fatal on a parameter-count or per-parameter-size mismatch.
     */
    void restore(const AdamState &state);

  private:
    std::vector<Parameter> params_;
    std::vector<std::vector<float>> m_;
    std::vector<std::vector<float>> v_;
    float lr_;
    float beta1_;
    float beta2_;
    float eps_;
    float weight_decay_;
    int64_t t_ = 0;
};

}  // namespace sp::nn

#endif  // SP_NN_OPTIMIZER_H
