/**
 * @file
 * Minimal recursive-descent JSON reader for the repo's own machine
 * artifacts (covmap snapshot logs, analyze reports, checkpoint JSONL).
 *
 * Scope is deliberately small: parse a complete value from a string
 * into a Value tree (null / bool / number / string / array / object).
 * Numbers are held as double plus the exact signed/unsigned integer
 * when the literal was integral — hit counts are uint64 and must not
 * round through a double. No streaming, no comments, no trailing
 * commas; object member order is preserved (vector of pairs) so tests
 * can assert on emission order. Writers elsewhere in the repo build
 * their JSON by hand; this is only the read side.
 */
#ifndef SP_UTIL_JSON_H
#define SP_UTIL_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sp::json {

class Value;

/** Object member list, emission order preserved. */
using Members = std::vector<std::pair<std::string, Value>>;

/** One parsed JSON value. */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Value() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** @name Accessors (defaulted when the kind does not match) */
    /** @{ */
    bool boolean(bool fallback = false) const;
    double number(double fallback = 0.0) const;
    /** Exact integer when the literal was integral and in range,
     *  otherwise a truncation of the double (or `fallback` for
     *  non-numbers). */
    int64_t asInt(int64_t fallback = 0) const;
    uint64_t asUint(uint64_t fallback = 0) const;
    const std::string &str() const;           ///< "" for non-strings
    const std::vector<Value> &array() const;  ///< empty for non-arrays
    const Members &members() const;           ///< empty for non-objects
    /** @} */

    /** Object member lookup (first match), or nullptr. */
    const Value *find(std::string_view key) const;

    /** Array element, or nullptr when out of range / non-array. */
    const Value *at(size_t index) const;

    /** @name Construction (parser + tests) */
    /** @{ */
    static Value makeNull();
    static Value makeBool(bool b);
    static Value makeNumber(double d);
    static Value makeInt(int64_t i);
    static Value makeUint(uint64_t u);
    static Value makeString(std::string s);
    static Value makeArray(std::vector<Value> elems);
    static Value makeObject(Members members);
    /** @} */

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    /** Exact integer payload; valid when int_exact_/uint_exact_. */
    int64_t int_ = 0;
    uint64_t uint_ = 0;
    bool int_exact_ = false;
    bool uint_exact_ = false;
    std::string str_;
    std::vector<Value> array_;
    std::shared_ptr<Members> members_;  ///< shared: Value stays copyable
};

/** Parse outcome: value + error ("" on success). */
struct ParseResult
{
    Value value;
    std::string error;  ///< empty = success
    size_t offset = 0;  ///< error position in the input

    bool ok() const { return error.empty(); }
};

/**
 * Parse exactly one JSON value spanning the whole input (trailing
 * whitespace allowed). UTF-8 passes through; \uXXXX escapes decode to
 * UTF-8 (surrogate pairs included).
 */
ParseResult parse(std::string_view text);

}  // namespace sp::json

#endif  // SP_UTIL_JSON_H
