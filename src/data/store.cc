#include "data/store.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "prog/serialize.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/rng.h"

namespace sp::data {

namespace {

void
ensureDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        SP_FATAL("cannot create directory %s", dir.c_str());
}

std::string
shardPath(const std::string &dir, size_t index)
{
    char name[32];
    std::snprintf(name, sizeof(name), "shard-%03zu.spds", index);
    return dir + "/" + name;
}

std::vector<uint32_t>
sortedBlocks(const exec::CoverageSet &coverage)
{
    std::vector<uint32_t> blocks(coverage.blocks().begin(),
                                 coverage.blocks().end());
    std::sort(blocks.begin(), blocks.end());
    return blocks;
}

BaseRecord
makeBaseRecord(const prog::Prog &base, const exec::ExecResult &result)
{
    BaseRecord record;
    record.text = prog::formatProg(base);
    record.base_hash = fnv1a(record.text);
    record.blocks = sortedBlocks(result.coverage);
    record.edges = result.coverage.edgeCount();
    return record;
}

ExampleRecord
makeExampleRecord(const core::RawExample &example, uint64_t base_hash,
                  uint8_t split)
{
    ExampleRecord record;
    record.base_hash = base_hash;
    record.split = split;
    record.targets = example.targets;
    record.sites = example.mutate_sites;
    return record;
}

core::RawExample
toRawExample(const ExampleRecord &record, uint32_t base_index)
{
    core::RawExample example;
    example.base_index = base_index;
    example.targets = record.targets;
    example.mutate_sites = record.sites;
    example.canonicalize();
    return example;
}

}  // namespace

uint64_t
kernelFingerprint(const kern::Kernel &kernel)
{
    uint64_t h = fnv1a(kernel.version());
    h = hashCombine(h, kernel.blocks().size());
    h = hashCombine(h, kernel.numFlags());
    h = hashCombine(h, kernel.bugs().size());
    for (const auto &decl : kernel.table().decls) {
        h = hashCombine(h, fnv1a(decl.name));
        h = hashCombine(h, decl.args.size());
    }
    return h;
}

uint64_t
progKey(const prog::Prog &prog)
{
    return fnv1a(prog::formatProg(prog));
}

uint8_t
splitOfBase(uint64_t base_hash, uint64_t seed, double train_fraction)
{
    // One splitmix64-quality roll in [0, 1); depends only on content.
    const uint64_t mixed = hashU64(hashCombine(base_hash, seed));
    const double roll = static_cast<double>(mixed >> 11) *
                        (1.0 / 9007199254740992.0);  // 2^53
    const double valid_cut =
        train_fraction + (1.0 - train_fraction) / 2.0;
    return roll < train_fraction ? kSplitTrain
           : roll < valid_cut    ? kSplitValid
                                 : kSplitEval;
}

std::vector<std::string>
writeStore(const core::Dataset &dataset, const std::string &dir,
           size_t shard_count)
{
    SP_ASSERT(dataset.kernel != nullptr, "dataset has no kernel");
    SP_ASSERT(!dataset.bases.empty(), "refusing to write empty store");
    shard_count = std::max<size_t>(
        1, std::min(shard_count, dataset.bases.size()));
    ensureDir(dir);
    const uint64_t fingerprint = kernelFingerprint(*dataset.kernel);

    // Contiguous base ranges: shard s covers [s*per, (s+1)*per).
    const size_t per =
        (dataset.bases.size() + shard_count - 1) / shard_count;
    std::vector<size_t> shard_of_base(dataset.bases.size());
    std::vector<uint64_t> hash_of_base(dataset.bases.size());

    std::vector<std::string> paths;
    std::vector<std::unique_ptr<ShardWriter>> writers;
    for (size_t s = 0; s < shard_count; ++s) {
        paths.push_back(shardPath(dir, s));
        writers.push_back(
            std::make_unique<ShardWriter>(paths.back(), fingerprint));
    }
    for (size_t bi = 0; bi < dataset.bases.size(); ++bi) {
        const size_t s = bi / per;
        shard_of_base[bi] = s;
        BaseRecord record =
            makeBaseRecord(dataset.bases[bi], dataset.base_results[bi]);
        hash_of_base[bi] = record.base_hash;
        writers[s]->append(record);
    }
    const std::vector<core::RawExample> *splits[] = {&dataset.train,
                                                     &dataset.valid,
                                                     &dataset.eval};
    for (uint8_t split = 0; split < 3; ++split) {
        for (const auto &example : *splits[split]) {
            const size_t s = shard_of_base[example.base_index];
            writers[s]->append(makeExampleRecord(
                example, hash_of_base[example.base_index], split));
        }
    }
    for (auto &writer : writers)
        writer->close();
    return paths;
}

core::Dataset
loadStore(const kern::Kernel &kernel,
          const std::vector<std::string> &paths, bool *truncated_out)
{
    SP_ASSERT(!paths.empty(), "loadStore: no shard paths");
    core::Dataset dataset;
    dataset.kernel = &kernel;
    const uint64_t fingerprint = kernelFingerprint(kernel);
    exec::Executor executor(kernel);  // deterministic mode
    std::unordered_map<uint64_t, uint32_t> base_index;
    // Examples combine as a multiset union keyed by content: a key's
    // loaded count is the max of its per-shard counts, so listing a
    // shard twice adds nothing while legitimate in-shard duplicates
    // (distinct mutations yielding the same example) round-trip.
    std::unordered_map<uint64_t, size_t> example_counts;
    bool truncated = false;

    for (const auto &path : paths) {
        std::unordered_map<uint64_t, size_t> shard_counts;
        ShardReader reader(path);
        SP_ASSERT(reader.kernelFingerprint() == fingerprint,
                  "%s: shard was collected on a different kernel "
                  "(fingerprint %016llx, expected %016llx)",
                  path.c_str(),
                  static_cast<unsigned long long>(
                      reader.kernelFingerprint()),
                  static_cast<unsigned long long>(fingerprint));
        BaseRecord base;
        ExampleRecord example;
        bool is_base = false;
        while (reader.next(base, example, is_base)) {
            if (is_base) {
                if (base_index.count(base.base_hash) != 0)
                    continue;  // duplicate across shards
                auto parsed = prog::parseProg(base.text, kernel.table());
                SP_ASSERT(parsed.ok(),
                          "%s: stored base %016llx does not parse: %s",
                          path.c_str(),
                          static_cast<unsigned long long>(
                              base.base_hash),
                          parsed.error.c_str());
                auto result = executor.run(*parsed.prog);
                SP_ASSERT(
                    sortedBlocks(result.coverage) == base.blocks &&
                        result.coverage.edgeCount() == base.edges,
                    "%s: re-executing base %016llx produced different "
                    "coverage — shard does not match this kernel",
                    path.c_str(),
                    static_cast<unsigned long long>(base.base_hash));
                base_index.emplace(
                    base.base_hash,
                    static_cast<uint32_t>(dataset.bases.size()));
                dataset.bases.push_back(std::move(*parsed.prog));
                dataset.base_results.push_back(std::move(result));
                continue;
            }
            auto it = base_index.find(example.base_hash);
            if (it == base_index.end()) {
                SP_WARN("%s: example references unknown base %016llx; "
                        "skipped",
                        path.c_str(),
                        static_cast<unsigned long long>(
                            example.base_hash));
                continue;
            }
            auto raw = toRawExample(example, it->second);
            const uint64_t key =
                core::exampleKey(raw, example.base_hash);
            const size_t copies = ++shard_counts[key];
            auto &admitted = example_counts[key];
            if (copies <= admitted)
                continue;
            admitted = copies;
            switch (example.split) {
              case kSplitTrain:
                dataset.train.push_back(std::move(raw));
                break;
              case kSplitValid:
                dataset.valid.push_back(std::move(raw));
                break;
              default:
                dataset.eval.push_back(std::move(raw));
                break;
            }
        }
        if (reader.truncated()) {
            truncated = true;
            SP_WARN("%s: shard is truncated; loaded up to the last "
                    "valid record",
                    path.c_str());
        }
    }
    if (truncated_out != nullptr)
        *truncated_out = truncated;
    return dataset;
}

ShardIndex
mergeStore(const std::vector<std::string> &inputs,
           const std::string &out_path, const MergeOptions &opts)
{
    SP_ASSERT(!inputs.empty(), "mergeStore: no input shards");

    // First-seen base order; examples carried with their base hash.
    std::vector<BaseRecord> bases;
    std::unordered_map<uint64_t, size_t> base_at;
    struct Carried
    {
        core::RawExample raw;  ///< base_index into `bases`
        uint64_t base_hash;
    };
    std::vector<Carried> examples;
    std::unordered_set<uint64_t> seen;
    uint64_t fingerprint = 0;
    bool first = true;

    for (const auto &path : inputs) {
        ShardReader reader(path);
        if (first) {
            fingerprint = reader.kernelFingerprint();
            first = false;
        } else {
            SP_ASSERT(reader.kernelFingerprint() == fingerprint,
                      "%s: cannot merge shards from different kernels "
                      "(fingerprint %016llx, expected %016llx)",
                      path.c_str(),
                      static_cast<unsigned long long>(
                          reader.kernelFingerprint()),
                      static_cast<unsigned long long>(fingerprint));
        }
        BaseRecord base;
        ExampleRecord example;
        bool is_base = false;
        while (reader.next(base, example, is_base)) {
            if (is_base) {
                if (base_at.emplace(base.base_hash, bases.size())
                        .second)
                    bases.push_back(base);
                continue;
            }
            auto it = base_at.find(example.base_hash);
            if (it == base_at.end())
                continue;  // truncated sibling lost the base
            Carried carried;
            carried.base_hash = example.base_hash;
            carried.raw = toRawExample(
                example, static_cast<uint32_t>(it->second));
            if (seen.insert(core::exampleKey(carried.raw,
                                             carried.base_hash))
                    .second)
                examples.push_back(std::move(carried));
        }
        if (reader.truncated())
            SP_WARN("%s: merging a truncated shard (tail records "
                    "lost)",
                    path.c_str());
    }

    // Re-apply the §3.1 popularity cap under a seeded shuffle, exactly
    // like collectDataset: without the shuffle the cap would favor
    // whichever shard was listed first.
    Rng rng(opts.seed);
    for (size_t i = examples.size(); i > 1; --i)
        std::swap(examples[i - 1], examples[rng.below(i)]);
    std::unordered_map<uint32_t, size_t> popularity;
    std::vector<Carried> kept;
    kept.reserve(examples.size());
    for (auto &carried : examples) {
        bool over = false;
        for (uint32_t b : carried.raw.targets)
            over |= (popularity[b] >= opts.popularity_cap);
        if (over)
            continue;
        for (uint32_t b : carried.raw.targets)
            ++popularity[b];
        kept.push_back(std::move(carried));
    }

    // Compact: only bases that still back an example survive.
    std::vector<bool> base_used(bases.size(), false);
    for (const auto &carried : kept)
        base_used[carried.raw.base_index] = true;

    ShardWriter writer(out_path, fingerprint);
    for (size_t i = 0; i < bases.size(); ++i) {
        if (base_used[i])
            writer.append(bases[i]);
    }
    for (const auto &carried : kept) {
        writer.append(makeExampleRecord(
            carried.raw, carried.base_hash,
            splitOfBase(carried.base_hash, opts.seed,
                        opts.train_fraction)));
    }
    writer.close();
    return writer.index();
}

StoreStats
statStore(const std::vector<std::string> &paths)
{
    StoreStats stats;
    for (const auto &path : paths) {
        ++stats.shards;
        if (auto index = readShardIndex(path)) {
            ++stats.indexed_shards;
            stats.totals.bases += index->bases;
            stats.totals.train += index->train;
            stats.totals.valid += index->valid;
            stats.totals.eval += index->eval;
            stats.totals.bytes += index->bytes;
            continue;
        }
        ShardReader reader(path);
        BaseRecord base;
        ExampleRecord example;
        bool is_base = false;
        uint64_t bytes = 0;
        while (reader.next(base, example, is_base)) {
            if (is_base) {
                ++stats.totals.bases;
            } else {
                switch (example.split) {
                  case kSplitTrain:
                    ++stats.totals.train;
                    break;
                  case kSplitValid:
                    ++stats.totals.valid;
                    break;
                  default:
                    ++stats.totals.eval;
                    break;
                }
            }
        }
        if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
            std::fseek(f, 0, SEEK_END);
            bytes = static_cast<uint64_t>(std::ftell(f));
            std::fclose(f);
        }
        stats.totals.bytes += bytes;
        if (reader.truncated())
            ++stats.truncated_shards;
    }
    return stats;
}

}  // namespace sp::data
