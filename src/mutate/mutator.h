/**
 * @file
 * The mutation engine: type selection, localization and instantiation
 * (Figure 1 of the paper, function mutate_test).
 *
 * Type selection flips a biased coin among ARGUMENT_MUTATION /
 * CALL_INSERTION / CALL_REMOVAL, exactly like Syzkaller's fixed
 * probabilities. Localization is delegated to a pluggable Localizer.
 * Instantiation applies a per-type-kind value mutation strategy
 * (interesting values, bit flips, boundary excursions, resource
 * rewiring, buffer edits) and re-fixes computed length fields.
 */
#ifndef SP_MUTATE_MUTATOR_H
#define SP_MUTATE_MUTATOR_H

#include "mutate/localizer.h"
#include "prog/gen.h"
#include "prog/value.h"
#include "util/rng.h"

namespace sp::mut {

/** The mutation types the selector chooses among. */
enum class MutationType : uint8_t {
    ArgumentMutation,
    CallInsertion,
    CallRemoval,
};

/** Selector probabilities and instantiation knobs. */
struct MutatorOptions
{
    double arg_mutation_weight = 0.60;
    double insert_weight = 0.25;
    double remove_weight = 0.15;
    /** Maximum program length; insertions beyond this are skipped. */
    size_t max_calls = 16;
    prog::GenOptions gen;  ///< used when synthesizing inserted calls
};

/** Mutation engine bound to one syscall table. */
class Mutator
{
  public:
    Mutator(const prog::SyscallTable &table, MutatorOptions opts = {});

    /** Type selection (target-agnostic, like Syzkaller's default). */
    MutationType selectType(Rng &rng, const prog::Prog &prog) const;

    /**
     * Instantiate an argument mutation at `loc` in place: pick new
     * values for the located argument and re-fix lengths. Returns false
     * when the location no longer exists in this program (stale after
     * other mutations).
     */
    bool instantiateArgMutation(prog::Prog &prog, const ArgLocation &loc,
                                Rng &rng) const;

    /** Insert a freshly generated call at a random position. */
    void insertCall(prog::Prog &prog, Rng &rng) const;

    /** Remove a random call, invalidating references to it. */
    void removeCall(prog::Prog &prog, Rng &rng) const;

    /**
     * Full mutate_test pipeline: select a type, localize with
     * `localizer` (for argument mutations), instantiate, and return the
     * mutated copy of `base`.
     */
    prog::Prog mutate(const prog::Prog &base, Rng &rng,
                      Localizer &localizer) const;

    const MutatorOptions &options() const { return opts_; }

  private:
    const prog::SyscallTable &table_;
    MutatorOptions opts_;
};

}  // namespace sp::mut

#endif  // SP_MUTATE_MUTATOR_H
