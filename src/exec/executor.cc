#include "exec/executor.h"

#include "obs/timer.h"
#include "obs/trace.h"
#include "prog/flatten.h"
#include "util/logging.h"

namespace sp::exec {

Executor::Executor(const kern::Kernel &kernel, const ExecOptions &opts)
    : kernel_(kernel), opts_(opts), noise_(opts.noise_seed)
{
}

ExecResult
Executor::run(const prog::Prog &prog)
{
    SP_TIMED("exec.run_us");
    // Execute-stage span lives here, not in the campaign loop, so the
    // legacy Fuzzer and localizer probe runs are traced too (arg =
    // program length).
    obs::TraceSpan trace_span(obs::SpanKind::Execute,
                              prog.calls.size());
    ExecResult result;
    kern::KernelState state = kernel_.initialState();

    // Return values of already-executed calls, for resource resolution.
    std::vector<uint64_t> rets(prog.calls.size(), prog::kBadHandle);

    ++programs_executed_;
    for (size_t i = 0; i < prog.calls.size(); ++i) {
        const prog::Call &call = prog.calls[i];
        SP_ASSERT(call.decl != nullptr, "call %zu has no decl", i);

        auto resolver = [&](int32_t ref) -> uint64_t {
            if (ref < 0 || static_cast<size_t>(ref) >= i)
                return prog::kBadHandle;
            return rets[static_cast<size_t>(ref)];
        };
        const auto slots = prog::flattenCall(call, resolver);

        CallTrace trace;
        trace.call_index = static_cast<uint32_t>(i);
        trace.syscall_id = call.decl->id;
        kern::CallResult call_result = kernel_.executeCall(
            call.decl->id, slots, state, trace.blocks,
            opts_.deterministic ? nullptr : &noise_);
        ++calls_executed_;

        rets[i] = call_result.ret;
        trace.ret = call_result.ret;
        trace.crashed = call_result.crashed;
        result.coverage.addTrace(trace.blocks);
        result.calls.push_back(std::move(trace));

        if (call_result.crashed) {
            result.crashed = true;
            result.bug_index = call_result.bug_index;
            result.crash_call = i;
            break;  // the "VM" is dead
        }
    }
    if (obs::timingEnabled()) {
        static obs::Histogram &blocks_hist =
            obs::Registry::global().histogram("exec.coverage_blocks");
        static obs::Histogram &edges_hist =
            obs::Registry::global().histogram("exec.coverage_edges");
        blocks_hist.record(
            static_cast<double>(result.coverage.blockCount()));
        edges_hist.record(
            static_cast<double>(result.coverage.edgeCount()));
    }
    return result;
}

ExecutorPool::ExecutorPool(const kern::Kernel &kernel,
                           const ExecOptions &base, size_t count)
{
    SP_ASSERT(count > 0, "executor pool needs at least one worker");
    executors_.reserve(count);
    for (size_t w = 0; w < count; ++w) {
        ExecOptions opts = base;
        opts.noise_seed = splitSeed(base.noise_seed, w);
        executors_.push_back(std::make_unique<Executor>(kernel, opts));
    }
}

uint64_t
ExecutorPool::totalCallsExecuted() const
{
    uint64_t total = 0;
    for (const auto &executor : executors_)
        total += executor->callsExecuted();
    return total;
}

uint64_t
ExecutorPool::totalProgramsExecuted() const
{
    uint64_t total = 0;
    for (const auto &executor : executors_)
        total += executor->programsExecuted();
    return total;
}

}  // namespace sp::exec
