#include "fuzz/sched.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/logging.h"

namespace sp::fuzz {

BudgetLedger::BudgetLedger(uint64_t budget, uint64_t align,
                           uint64_t start)
    : budget_(budget), align_(align == 0 ? 1 : align), next_(start),
      completed_(start), watermark_(start)
{
}

void
BudgetLedger::complete(const BudgetGrant &grant)
{
    if (grant.count == 0)
        return;
    completed_.fetch_add(grant.count, std::memory_order_acq_rel);

    bool advanced = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        uint64_t mark = watermark_.load(std::memory_order_relaxed);
        if (grant.begin == mark) {
            // Claims partition [start, claimed), so completed grants
            // stranded above the watermark always start exactly where
            // it lands — merge every contiguous run now unblocked.
            mark += grant.count;
            auto it = pending_done_.begin();
            while (it != pending_done_.end() && it->first == mark) {
                mark += it->second;
                it = pending_done_.erase(it);
            }
            watermark_.store(mark, std::memory_order_release);
            advanced = true;
        } else {
            pending_done_.emplace(grant.begin, grant.count);
        }
    }
    if (advanced && waiters_.load(std::memory_order_relaxed) > 0)
        cv_.notify_all();
}

void
BudgetLedger::waitForPrefix(uint64_t slot)
{
    if (prefixCompleted() >= slot)
        return;
    // The checkpoint-barrier wait is where multi-worker campaigns lose
    // time to slot skew; a CheckpointWait span makes it visible per
    // round in the trace (arg = the prefix waited for).
    obs::TraceSpan span(obs::SpanKind::CheckpointWait, slot);
    std::unique_lock<std::mutex> lock(mu_);
    waiters_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait(lock, [this, slot] {
        return watermark_.load(std::memory_order_relaxed) >= slot;
    });
    waiters_.fetch_sub(1, std::memory_order_relaxed);
}

BudgetGrant
BudgetLedger::claim(uint64_t want, bool bounded)
{
    SP_ASSERT(want > 0);
    uint64_t begin = next_.load(std::memory_order_relaxed);
    for (;;) {
        uint64_t count = want;
        if (bounded) {
            if (begin >= budget_)
                return {};
            count = std::min<uint64_t>(count, budget_ - begin);
        }
        // Trim to the checkpoint grid: a grant never spans a multiple
        // of align_, so the worker finishing the slot right before a
        // boundary owns that checkpoint.
        count = std::min<uint64_t>(count, align_ - begin % align_);
        if (next_.compare_exchange_weak(begin, begin + count,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
            return {begin, count};
        }
        // `begin` reloaded by the failed CAS; retry.
    }
}

}  // namespace sp::fuzz
