#include "fuzz/seedpool.h"

#include <fstream>
#include <sstream>

#include "prog/serialize.h"
#include "util/logging.h"

namespace sp::fuzz {

namespace {

void
writeBlocks(const std::vector<const prog::Prog *> &programs,
            const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        SP_FATAL("cannot open corpus file for writing: %s",
                 path.c_str());
    for (const auto *program : programs) {
        out << prog::formatProg(*program) << "\n";
    }
    if (!out)
        SP_FATAL("corpus write failed: %s", path.c_str());
}

}  // namespace

void
saveCorpus(const Corpus &corpus, const std::string &path)
{
    std::vector<const prog::Prog *> programs;
    programs.reserve(corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i)
        programs.push_back(&corpus.entry(i).program);
    writeBlocks(programs, path);
}

void
savePrograms(const std::vector<prog::Prog> &programs,
             const std::string &path)
{
    std::vector<const prog::Prog *> pointers;
    pointers.reserve(programs.size());
    for (const auto &program : programs)
        pointers.push_back(&program);
    writeBlocks(pointers, path);
}

std::vector<prog::Prog>
loadPrograms(const std::string &path, const prog::SyscallTable &table)
{
    std::ifstream in(path);
    if (!in) {
        SP_WARN("corpus file not found: %s", path.c_str());
        return {};
    }

    std::vector<prog::Prog> programs;
    std::string line, block;
    size_t skipped = 0;
    auto flush = [&] {
        if (block.empty())
            return;
        auto parsed = prog::parseProg(block, table);
        if (parsed.ok() && !parsed.prog->calls.empty())
            programs.push_back(std::move(*parsed.prog));
        else
            ++skipped;
        block.clear();
    };
    while (std::getline(in, line)) {
        if (line.empty()) {
            flush();
        } else {
            block += line;
            block += '\n';
        }
    }
    flush();
    if (skipped > 0) {
        SP_WARN("corpus load: skipped %zu unparsable programs from %s",
                skipped, path.c_str());
    }
    return programs;
}

}  // namespace sp::fuzz
