// Tests for the fuzzing loop, corpus discipline and crash handling.

#include <gtest/gtest.h>

#include "core/snowplow.h"
#include "fuzz/fuzzer.h"
#include "kernel/subsystems.h"
#include "prog/gen.h"

namespace sp::fuzz {
namespace {

const kern::Kernel &
testKernel()
{
    static kern::Kernel kernel = [] {
        kern::KernelGenParams params;
        params.seed = 6;
        return kern::buildBaseKernel(params);
    }();
    return kernel;
}

TEST(Corpus, AdmitsOnlyNewEdgeCoverage)
{
    const auto &kernel = testKernel();
    exec::Executor executor(kernel);
    Rng rng(1);
    Corpus corpus;

    auto programs = prog::generateCorpus(rng, kernel.table(), 20);
    auto first = executor.run(programs[0]);
    EXPECT_TRUE(corpus.maybeAdd(programs[0], first, 1));
    // Re-adding the identical program: no new edges.
    EXPECT_FALSE(corpus.maybeAdd(programs[0], first, 2));
    EXPECT_EQ(corpus.size(), 1u);
    // Coverage total reflects all merges regardless of admission.
    EXPECT_EQ(corpus.totalCoverage().edgeCount(),
              first.coverage.edgeCount());
}

TEST(Corpus, PickCoversWholeCorpus)
{
    const auto &kernel = testKernel();
    exec::Executor executor(kernel);
    Rng rng(2);
    Corpus corpus;
    auto programs = prog::generateCorpus(rng, kernel.table(), 30);
    uint64_t counter = 0;
    for (const auto &program : programs)
        corpus.maybeAdd(program, executor.run(program), ++counter);
    ASSERT_GE(corpus.size(), 5u);

    std::unordered_set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(corpus.pick(rng).content_hash);
    EXPECT_GT(seen.size(), corpus.size() / 2);
}

TEST(CrashLog, DedupsByBugSite)
{
    const auto &kernel = testKernel();
    CrashLog log(kernel);
    prog::Prog dummy;
    log.record(0, dummy, 10);
    log.record(0, dummy, 20);
    log.record(1, dummy, 30);
    EXPECT_EQ(log.uniqueCrashes(), 2u);
    EXPECT_EQ(log.records()[0].hit_count, 2u);
    EXPECT_EQ(log.records()[0].first_seen_exec, 10u);
}

TEST(CrashLog, TalliesKnownVersusNew)
{
    const auto &kernel = testKernel();
    // Find one known and one new bug index.
    int known_index = -1, new_index = -1;
    for (size_t i = 0; i < kernel.bugs().size(); ++i) {
        if (kernel.bugs()[i].known && known_index < 0)
            known_index = static_cast<int>(i);
        if (!kernel.bugs()[i].known && new_index < 0)
            new_index = static_cast<int>(i);
    }
    ASSERT_GE(known_index, 0);
    ASSERT_GE(new_index, 0);

    CrashLog log(kernel);
    prog::Prog dummy;
    log.record(static_cast<uint32_t>(known_index), dummy, 1);
    log.record(static_cast<uint32_t>(new_index), dummy, 2);
    EXPECT_EQ(log.knownCrashes(), 1u);
    EXPECT_EQ(log.newCrashes(), 1u);
}

TEST(CrashLog, ReproducesDeterministicCrashAndMinimizes)
{
    const auto &kernel = testKernel();
    const auto *open_scsi = kernel.table().find("open$scsi");
    const auto *ioctl = kernel.table().find("ioctl$scsi");
    const auto *noise = kernel.table().find("socket");

    prog::Prog trigger;
    // Unrelated preamble that minimization should strip.
    prog::Call noise_call;
    noise_call.decl = noise;
    noise_call.args = prog::defaultArgs(*noise);
    prog::fixupLengths(noise_call);
    trigger.calls.push_back(std::move(noise_call));

    prog::Call open_call;
    open_call.decl = open_scsi;
    open_call.args = prog::defaultArgs(*open_scsi);
    prog::fixupLengths(open_call);
    trigger.calls.push_back(std::move(open_call));

    prog::Call ioctl_call;
    ioctl_call.decl = ioctl;
    ioctl_call.args = prog::defaultArgs(*ioctl);
    ioctl_call.args[0]->result_ref = 1;
    ioctl_call.args[1]->scalar = kern::kScsiIoctlSendCommand;
    auto &req = *ioctl_call.args[2]->pointee;
    req.fields[0]->scalar = kern::kScsiProtoAta16;
    req.fields[1]->scalar = kern::kAtaCmdNop;
    req.fields[2]->scalar = kern::kAtaProtPio;
    req.fields[3]->scalar = kern::kAtaMaxDataLen + 1;
    prog::fixupLengths(ioctl_call);
    trigger.calls.push_back(std::move(ioctl_call));

    // Confirm it crashes, find the bug index.
    exec::Executor executor(kernel);
    auto result = executor.run(trigger);
    ASSERT_TRUE(result.crashed);

    CrashLog log(kernel);
    log.record(result.bug_index, trigger, 42);
    log.reproduceAll();
    const auto &record = log.records()[0];
    EXPECT_TRUE(record.reproduced);
    // Minimization strips the socket preamble: 2 calls suffice.
    EXPECT_EQ(record.reproducer.calls.size(), 2u);
    EXPECT_EQ(record.reproducer.calls[1].decl->name, "ioctl$scsi");
}

TEST(Fuzzer, MakesProgressWithinBudget)
{
    const auto &kernel = testKernel();
    FuzzOptions opts;
    opts.exec_budget = 3000;
    opts.seed_corpus_size = 20;
    opts.seed = 9;
    opts.checkpoint_every = 500;
    auto fuzzer = core::makeSyzkallerFuzzer(kernel, opts);
    auto report = fuzzer->run();

    EXPECT_EQ(report.execs, opts.exec_budget);
    EXPECT_GT(report.final_edges, 100u);
    EXPECT_GE(report.corpus_size, 10u);
    ASSERT_GE(report.timeline.size(), 2u);
    // Coverage is monotone along the timeline.
    for (size_t i = 1; i < report.timeline.size(); ++i) {
        EXPECT_GE(report.timeline[i].edges,
                  report.timeline[i - 1].edges);
    }
    // Coverage keeps growing after the seed phase.
    EXPECT_GT(report.final_edges, report.timeline.front().edges);
}

TEST(Fuzzer, DeterministicGivenSeed)
{
    const auto &kernel = testKernel();
    FuzzOptions opts;
    opts.exec_budget = 1500;
    opts.seed_corpus_size = 15;
    opts.seed = 33;
    auto a = core::makeSyzkallerFuzzer(kernel, opts)->run();
    auto b = core::makeSyzkallerFuzzer(kernel, opts)->run();
    EXPECT_EQ(a.final_edges, b.final_edges);
    EXPECT_EQ(a.corpus_size, b.corpus_size);
}

TEST(Fuzzer, DifferentSeedsExploreDifferently)
{
    const auto &kernel = testKernel();
    FuzzOptions opts;
    opts.exec_budget = 1500;
    opts.seed_corpus_size = 15;
    opts.seed = 1;
    auto a = core::makeSyzkallerFuzzer(kernel, opts)->run();
    opts.seed = 2;
    auto b = core::makeSyzkallerFuzzer(kernel, opts)->run();
    EXPECT_NE(a.final_edges, b.final_edges);
}

TEST(Fuzzer, RunUntilStopsEarly)
{
    const auto &kernel = testKernel();
    FuzzOptions opts;
    opts.exec_budget = 100000;
    opts.seed_corpus_size = 10;
    opts.seed = 3;
    Fuzzer fuzzer(kernel, opts,
                  std::make_unique<mut::RandomLocalizer>());
    auto report = fuzzer.runUntil(
        [](const Fuzzer &f) { return f.execs() >= 700; });
    EXPECT_LT(report.execs, 2000u);
    EXPECT_GE(report.execs, 700u);
}

TEST(Fuzzer, FindsShallowCrashes)
{
    const auto &kernel = testKernel();
    FuzzOptions opts;
    opts.exec_budget = 8000;
    opts.seed_corpus_size = 30;
    opts.seed = 12;
    Fuzzer fuzzer(kernel, opts,
                  std::make_unique<mut::RandomLocalizer>());
    fuzzer.run();
    EXPECT_GT(fuzzer.crashes().uniqueCrashes(), 0u);
}

TEST(Fuzzer, ChooseTestHookIsHonored)
{
    const auto &kernel = testKernel();
    FuzzOptions opts;
    opts.exec_budget = 1200;
    opts.seed_corpus_size = 10;
    opts.seed = 5;
    size_t hook_calls = 0;
    opts.choose_test = [&hook_calls](const Corpus &corpus,
                                     Rng &rng) -> const CorpusEntry & {
        ++hook_calls;
        return corpus.entry(rng.below(corpus.size()));
    };
    Fuzzer fuzzer(kernel, opts,
                  std::make_unique<mut::RandomLocalizer>());
    fuzzer.run();
    EXPECT_GT(hook_calls, 10u);
}

}  // namespace
}  // namespace sp::fuzz
