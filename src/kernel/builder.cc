#include "kernel/builder.h"

#include <algorithm>

#include "prog/flatten.h"
#include "util/logging.h"

namespace sp::kern {

KernelBuilder::KernelBuilder(std::string version)
{
    kernel_.version_ = std::move(version);
}

ResourceKindId
KernelBuilder::addResourceKind(const std::string &name)
{
    SP_ASSERT(!finished_);
    auto &kinds = kernel_.resource_kinds_;
    for (size_t i = 0; i < kinds.size(); ++i)
        if (kinds[i] == name)
            return static_cast<ResourceKindId>(i);
    kinds.push_back(name);
    return static_cast<ResourceKindId>(kinds.size() - 1);
}

uint16_t
KernelBuilder::addFlags(uint16_t count)
{
    SP_ASSERT(!finished_);
    const uint16_t first = kernel_.num_flags_;
    kernel_.num_flags_ = static_cast<uint16_t>(first + count);
    return first;
}

uint32_t
KernelBuilder::beginHandler(prog::SyscallDecl decl)
{
    SP_ASSERT(!finished_);
    const auto id = static_cast<uint32_t>(kernel_.table_.decls.size());
    decl.id = id;
    const uint16_t num_slots =
        static_cast<uint16_t>(prog::slotCount(decl));
    SP_ASSERT(num_slots <= token::kMaxSlots,
              "syscall %s has %u slots, vocabulary supports %u",
              decl.name.c_str(), num_slots, token::kMaxSlots);
    kernel_.table_.decls.push_back(std::move(decl));

    Handler handler;
    handler.syscall_id = id;
    handler.num_slots = num_slots;
    kernel_.handlers_.push_back(handler);
    return id;
}

void
KernelBuilder::addEffect(const SyscallEffect &effect)
{
    SP_ASSERT(!finished_ && !kernel_.handlers_.empty());
    kernel_.handlers_.back().effects.push_back(effect);
}

uint32_t
KernelBuilder::addBlock(uint16_t depth, std::vector<uint16_t> tokens)
{
    SP_ASSERT(!finished_ && !kernel_.handlers_.empty(),
              "addBlock before beginHandler");
    const uint32_t handler_id = kernel_.handlers_.back().syscall_id;
    const uint32_t id = addBlockTo(handler_id, depth, std::move(tokens));
    return id;
}

uint32_t
KernelBuilder::addBlockTo(uint32_t handler_id, uint16_t depth,
                          std::vector<uint16_t> tokens)
{
    SP_ASSERT(!finished_ && handler_id < kernel_.handlers_.size());
    BasicBlock bb;
    bb.id = static_cast<uint32_t>(kernel_.blocks_.size());
    bb.handler = handler_id;
    bb.depth = depth;
    bb.tokens = tokens.empty() ? bodyTokens(bb.id) : std::move(tokens);
    bb.term = Term::Return;
    kernel_.blocks_.push_back(std::move(bb));
    if (kernel_.handlers_[handler_id].entry == kNoBlock)
        kernel_.handlers_[handler_id].entry = kernel_.blocks_.back().id;
    return kernel_.blocks_.back().id;
}

void
KernelBuilder::setBranch(uint32_t block, const Cond &cond, uint32_t taken,
                         uint32_t fallthrough)
{
    SP_ASSERT(!finished_ && block < kernel_.blocks_.size());
    BasicBlock &bb = kernel_.blocks_[block];
    bb.term = Term::Branch;
    bb.cond = cond;
    bb.taken = taken;
    bb.fallthrough = fallthrough;
    bb.tokens = branchTokens(cond);
}

void
KernelBuilder::setFallthrough(uint32_t block, uint32_t next)
{
    SP_ASSERT(!finished_ && block < kernel_.blocks_.size());
    BasicBlock &bb = kernel_.blocks_[block];
    bb.term = Term::Fallthrough;
    bb.taken = next;
}

void
KernelBuilder::setReturn(uint32_t block)
{
    SP_ASSERT(!finished_ && block < kernel_.blocks_.size());
    kernel_.blocks_[block].term = Term::Return;
    kernel_.blocks_[block].taken = kNoBlock;
    kernel_.blocks_[block].fallthrough = kNoBlock;
}

void
KernelBuilder::addBug(BugSite bug)
{
    SP_ASSERT(!finished_ && bug.block < kernel_.blocks_.size());
    SP_ASSERT(kernel_.bug_at_block_.find(bug.block) ==
                  kernel_.bug_at_block_.end(),
              "block %u already has a bug", bug.block);
    kernel_.bug_at_block_[bug.block] =
        static_cast<uint32_t>(kernel_.bugs_.size());
    kernel_.blocks_[bug.block].tokens = {token::kOpBug,
                                         token::regToken(0)};
    kernel_.bugs_.push_back(std::move(bug));
}

void
KernelBuilder::addInterruptBlock(uint32_t block)
{
    SP_ASSERT(!finished_ && block < kernel_.blocks_.size());
    kernel_.interrupt_blocks_.push_back(block);
}

uint32_t
KernelBuilder::numBlocks() const
{
    return static_cast<uint32_t>(kernel_.blocks_.size());
}

const BasicBlock &
KernelBuilder::blockAt(uint32_t id) const
{
    SP_ASSERT(id < kernel_.blocks_.size());
    return kernel_.blocks_[id];
}

bool
KernelBuilder::hasBugAt(uint32_t block) const
{
    return kernel_.bug_at_block_.find(block) !=
           kernel_.bug_at_block_.end();
}

const prog::SyscallDecl &
KernelBuilder::declOf(uint32_t handler_id) const
{
    SP_ASSERT(handler_id < kernel_.table_.decls.size());
    return kernel_.table_.decls[handler_id];
}

Kernel
KernelBuilder::finish()
{
    SP_ASSERT(!finished_);
    finished_ = true;

    // Seal the dense bug-site table the per-block execution hot path
    // reads in place of the hash map.
    kernel_.bug_index_at_block_.assign(kernel_.blocks_.size(),
                                       Kernel::kNoBug);
    for (const auto &[block, bug_index] : kernel_.bug_at_block_)
        kernel_.bug_index_at_block_[block] = bug_index;

    SP_ASSERT(kernel_.handlers_.size() == kernel_.table_.decls.size());
    for (const auto &handler : kernel_.handlers_) {
        SP_ASSERT(handler.entry != kNoBlock,
                  "handler %u has no blocks", handler.syscall_id);
    }

    // Terminator target validity and cond slot bounds.
    for (const auto &bb : kernel_.blocks_) {
        const Handler &h = kernel_.handlers_[bb.handler];
        switch (bb.term) {
          case Term::Return:
            break;
          case Term::Fallthrough:
            SP_ASSERT(bb.taken < kernel_.blocks_.size(),
                      "block %u falls through to invalid target", bb.id);
            SP_ASSERT(kernel_.blocks_[bb.taken].handler == bb.handler,
                      "block %u escapes its handler", bb.id);
            break;
          case Term::Branch:
            SP_ASSERT(bb.taken < kernel_.blocks_.size() &&
                          bb.fallthrough < kernel_.blocks_.size(),
                      "block %u branches to invalid target", bb.id);
            SP_ASSERT(kernel_.blocks_[bb.taken].handler == bb.handler &&
                          kernel_.blocks_[bb.fallthrough].handler ==
                              bb.handler,
                      "block %u escapes its handler", bb.id);
            switch (bb.cond.kind) {
              case CondKind::Always:
              case CondKind::StateFlagSet:
                break;
              default:
                SP_ASSERT(bb.cond.slot < h.num_slots,
                          "block %u cond reads slot %u of %u", bb.id,
                          bb.cond.slot, h.num_slots);
            }
            break;
        }
    }

    // Acyclicity per handler (iterative DFS three-color check).
    {
        enum : uint8_t { White, Gray, Black };
        std::vector<uint8_t> color(kernel_.blocks_.size(), White);
        for (const auto &handler : kernel_.handlers_) {
            std::vector<std::pair<uint32_t, size_t>> stack;
            if (color[handler.entry] != White)
                continue;
            stack.emplace_back(handler.entry, 0);
            color[handler.entry] = Gray;
            while (!stack.empty()) {
                auto &[node, child] = stack.back();
                auto succ = kernel_.successors(node);
                if (child < succ.size()) {
                    uint32_t next = succ[child++];
                    SP_ASSERT(color[next] != Gray,
                              "handler %u CFG has a cycle through "
                              "block %u", handler.syscall_id, next);
                    if (color[next] == White) {
                        color[next] = Gray;
                        stack.emplace_back(next, 0);
                    }
                } else {
                    color[node] = Black;
                    stack.pop_back();
                }
            }
        }
    }

    return std::move(kernel_);
}

}  // namespace sp::kern
