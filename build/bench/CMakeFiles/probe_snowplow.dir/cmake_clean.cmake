file(REMOVE_RECURSE
  "CMakeFiles/probe_snowplow.dir/probe_snowplow.cc.o"
  "CMakeFiles/probe_snowplow.dir/probe_snowplow.cc.o.d"
  "probe_snowplow"
  "probe_snowplow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_snowplow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
