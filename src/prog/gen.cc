#include "prog/gen.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace sp::prog {

namespace {

uint64_t
truncateToBits(uint64_t value, uint32_t bits)
{
    if (bits >= 64)
        return value;
    return value & ((1ULL << bits) - 1);
}

uint64_t
generateIntValue(Rng &rng, const Type &type)
{
    const double roll = rng.uniform();
    if (!type.domain.empty() && roll < 0.45) {
        return type.domain[rng.below(type.domain.size())];
    }
    if (roll < 0.6) {
        // Boundary values.
        switch (rng.below(4)) {
          case 0:
            return static_cast<uint64_t>(type.min);
          case 1:
            return static_cast<uint64_t>(type.max);
          case 2:
            return 0;
          default:
            return truncateToBits(~0ULL, type.bits);
        }
    }
    return static_cast<uint64_t>(rng.range(type.min, type.max));
}

uint64_t
generateFlagsValue(Rng &rng, const Type &type)
{
    if (rng.chance(0.05)) {
        // Occasionally an out-of-domain garbage value, as fuzzers do.
        return rng.next() & 0xffff;
    }
    if (!type.combinable || rng.chance(0.5))
        return type.domain[rng.below(type.domain.size())];
    uint64_t value = 0;
    const size_t n = 1 + rng.below(std::min<size_t>(3, type.domain.size()));
    for (size_t i = 0; i < n; ++i)
        value |= type.domain[rng.below(type.domain.size())];
    return value;
}

// Small byte alphabet so buffer content classes collide usefully.
uint8_t
generateByte(Rng &rng)
{
    static const uint8_t kAlphabet[] = {0x00, 0x01, 0x41, 0x61, 0x62,
                                        0x64, 0x66, 0x69, 0x6c, 0xff};
    if (rng.chance(0.2))
        return static_cast<uint8_t>(rng.below(256));
    return kAlphabet[rng.below(sizeof(kAlphabet))];
}

}  // namespace

ArgPtr
generateArg(Rng &rng, const TypeRef &type, const GenOptions &opts)
{
    auto arg = std::make_unique<Arg>();
    arg->type = type;
    switch (type->kind) {
      case TypeKind::Int:
        arg->scalar = generateIntValue(rng, *type);
        break;
      case TypeKind::Flags:
        arg->scalar = generateFlagsValue(rng, *type);
        break;
      case TypeKind::Const:
        arg->scalar = type->const_value;
        break;
      case TypeKind::Len:
        arg->scalar = 0;  // fixed up after the call is assembled
        break;
      case TypeKind::Resource:
        arg->result_ref = -1;  // bound by generateProg
        break;
      case TypeKind::Ptr:
        if (type->opt && rng.chance(opts.null_ptr_prob)) {
            arg->is_null = true;
        } else {
            arg->pointee = generateArg(rng, type->elem, opts);
        }
        break;
      case TypeKind::Struct:
        for (const auto &f : type->fields)
            arg->fields.push_back(generateArg(rng, f, opts));
        break;
      case TypeKind::Buffer: {
        const uint32_t len = static_cast<uint32_t>(
            rng.range(type->buf_min, type->buf_max));
        arg->bytes.resize(len);
        for (auto &b : arg->bytes)
            b = generateByte(rng);
        break;
      }
    }
    return arg;
}

namespace {

// Bind unresolved resource arguments of `call` (the call at index
// `call_index`) to producers among the preceding calls.
void
bindResources(Rng &rng, Prog &prog, Call &call, size_t call_index,
              const GenOptions &opts)
{
    visitArgsMut(call, [&](Arg &arg, const std::vector<uint16_t> &) {
        if (arg.type->kind != TypeKind::Resource || arg.result_ref >= 0)
            return;
        std::vector<int32_t> producers;
        for (size_t j = 0; j < call_index; ++j) {
            if (prog.calls[j].decl->ret_resource ==
                arg.type->resource_kind) {
                producers.push_back(static_cast<int32_t>(j));
            }
        }
        if (!producers.empty() && rng.chance(opts.resource_bind_prob))
            arg.result_ref = producers[rng.below(producers.size())];
    });
}

}  // namespace

Prog
generateProg(Rng &rng, const SyscallTable &table, const GenOptions &opts)
{
    SP_ASSERT(!table.decls.empty(), "cannot generate over an empty table");
    Prog prog;
    const size_t length = static_cast<size_t>(
        rng.range(static_cast<int64_t>(opts.min_calls),
                  static_cast<int64_t>(opts.max_calls)));

    for (size_t i = 0; i < length; ++i) {
        // Weight decls by whether their consumed resources are already
        // producible by the program built so far.
        std::vector<double> weights(table.decls.size());
        for (size_t d = 0; d < table.decls.size(); ++d) {
            bool unmet = false;
            for (const auto &kind :
                 table.decls[d].consumedResourceKinds()) {
                bool have = false;
                for (const auto &call : prog.calls)
                    have |= (call.decl->ret_resource == kind);
                unmet |= !have;
            }
            weights[d] = unmet ? opts.unmet_resource_weight : 1.0;
        }
        const auto &decl = table.decls[rng.weightedIndex(weights)];

        Call call;
        call.decl = &decl;
        for (const auto &t : decl.args)
            call.args.push_back(generateArg(rng, t, opts));
        prog.calls.push_back(std::move(call));
        bindResources(rng, prog, prog.calls.back(), i, opts);
        fixupLengths(prog.calls.back());
    }
    return prog;
}

std::vector<Prog>
generateCorpus(Rng &rng, const SyscallTable &table, size_t count,
               const GenOptions &opts)
{
    std::vector<Prog> corpus;
    std::unordered_set<uint64_t> seen;
    size_t attempts = 0;
    const size_t max_attempts = count * 50 + 100;
    while (corpus.size() < count && attempts++ < max_attempts) {
        Prog prog = generateProg(rng, table, opts);
        if (seen.insert(prog.hash()).second)
            corpus.push_back(std::move(prog));
    }
    if (corpus.size() < count) {
        SP_WARN("generateCorpus produced %zu/%zu unique programs",
                corpus.size(), count);
    }
    return corpus;
}

}  // namespace sp::prog
