file(REMOVE_RECURSE
  "CMakeFiles/sp_prog.dir/flatten.cc.o"
  "CMakeFiles/sp_prog.dir/flatten.cc.o.d"
  "CMakeFiles/sp_prog.dir/gen.cc.o"
  "CMakeFiles/sp_prog.dir/gen.cc.o.d"
  "CMakeFiles/sp_prog.dir/serialize.cc.o"
  "CMakeFiles/sp_prog.dir/serialize.cc.o.d"
  "CMakeFiles/sp_prog.dir/types.cc.o"
  "CMakeFiles/sp_prog.dir/types.cc.o.d"
  "CMakeFiles/sp_prog.dir/validate.cc.o"
  "CMakeFiles/sp_prog.dir/validate.cc.o.d"
  "CMakeFiles/sp_prog.dir/value.cc.o"
  "CMakeFiles/sp_prog.dir/value.cc.o.d"
  "libsp_prog.a"
  "libsp_prog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_prog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
