// Ablations of Snowplow's design choices (DESIGN.md §5). Each section
// isolates one decision and reports the metric it affects:
//
//  A1. Target-set construction (§3.1 option (c) vs option (a)): train
//      with distractor-noised targets vs exact-new-coverage targets
//      and compare eval F1 — noise-trained models are more robust to
//      the full-frontier queries used at fuzz time.
//  A2. Deterministic data collection: train on data collected with
//      nondeterministic (network-RPC-style) execution and compare.
//  A3. Fallback randomness (§3.4): Snowplow with fallback_prob 0 vs
//      the default vs 0.5 — a small fallback is near-free; a large one
//      degrades toward Syzkaller.
//  A4. Dynamic mutation count: cap the localizer to 1 site per base vs
//      the default budget.
//  A5. Aggregation: the paper's GCN-style mean message passing vs a
//      GAT-style edge-attention variant at equal budget.
//  A6. Decision policy: ThompsonPolicy vs the static policy (recency
//      scheduling + the fixed §3.4 fallback) vs pure-PMM (fallback
//      probability 0) — a fig6-style banded sweep over seeds whose
//      per-checkpoint curves land in a JSON report
//      (BENCH_ablations.json, schema ci/schemas/ablations.schema.json)
//      so CI can gate "thompson matches or beats static".
//
// `ablations --sweep-only FILE` runs only A6 and writes the JSON
// report to FILE (the cheap, CI-gated subset: A1–A5 need the shared
// eval model, which is too slow to train on every push).

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/common.h"
#include "core/train.h"
#include "fuzz/policy.h"
#include "util/stats.h"

namespace {

using namespace sp;

core::Dataset
collectNoisy(const kern::Kernel &kernel)
{
    // Deterministic pipeline, then re-execute bases noisily to corrupt
    // the stored coverage — emulating RPC-transport data collection.
    auto dataset =
        core::collectDataset(kernel, spbench::evalDatasetOptions());
    exec::ExecOptions noisy;
    noisy.deterministic = false;
    noisy.noise_seed = 77;
    exec::Executor executor(kernel, noisy);
    for (size_t i = 0; i < dataset.bases.size(); ++i)
        dataset.base_results[i] = executor.run(dataset.bases[i]);
    return dataset;
}

double
fuzzFinalEdges(const kern::Kernel &kernel, const core::Pmm &model,
               double fallback_prob, size_t max_sites)
{
    RunningStat edges;
    for (uint64_t seed : {51ull, 52ull, 53ull}) {
        auto opts = spbench::evalFuzzOptions(spbench::kDayInExecs / 3,
                                             seed);
        opts.max_sites_per_base = max_sites;
        // The §3.4 fallback knob lives on the loop's decision policy
        // now, not on the localizer.
        opts.policy.pmm_fallback_prob = fallback_prob;
        core::SnowplowOptions snow = spbench::evalSnowplowOptions();
        auto fuzzer =
            core::makeSnowplowFuzzer(kernel, model, opts, snow);
        edges.add(static_cast<double>(fuzzer->run().final_edges));
    }
    return edges.mean();
}

// --- A6: decision-policy sweep ---------------------------------------

struct PolicyMode
{
    const char *name;
    fuzz::PolicyKind kind;
    double fallback_prob;
};

constexpr PolicyMode kPolicyModes[] = {
    // The pre-policy default: recency scheduling, 5% random fallback.
    {"static", fuzz::PolicyKind::Static, 0.05},
    // Always trust the model (§3.4 ablated away).
    {"pure-pmm", fuzz::PolicyKind::Static, 0.0},
    // Reward-driven: Beta-Bernoulli arms over bucket × op × channel.
    {"thompson", fuzz::PolicyKind::Thompson, 0.05},
};
constexpr size_t kPolicyModeCount =
    sizeof(kPolicyModes) / sizeof(kPolicyModes[0]);

void
runPolicySweep(const char *out_path)
{
    std::printf("=== A6: decision-policy sweep "
                "(thompson vs static vs pure-pmm) ===\n");
    kern::Kernel kernel = spbench::makeEvalKernel("6.8");

    // A small, quickly trained PMM: CI runs this sweep on every push,
    // so it cannot afford the shared eval model's one-time training.
    core::Pmm model;
    {
        core::DatasetOptions data_opts;
        data_opts.corpus_size = 80;
        data_opts.mutations_per_base = 80;
        data_opts.seed = 5;
        auto dataset = core::collectDataset(kernel, data_opts);
        core::TrainOptions train_opts;
        train_opts.epochs = 2;
        core::trainPmm(model, dataset, train_opts);
    }

    const uint64_t budget = spbench::kDayInExecs / 3;
    const std::vector<uint64_t> seeds = {51, 52, 53};

    std::vector<uint64_t> grid;
    // edges[mode][seed][checkpoint]
    std::vector<std::vector<std::vector<size_t>>> edges(
        kPolicyModeCount);
    for (size_t m = 0; m < kPolicyModeCount; ++m) {
        for (const uint64_t seed : seeds) {
            auto opts = spbench::evalFuzzOptions(budget, seed);
            opts.policy.kind = kPolicyModes[m].kind;
            opts.policy.pmm_fallback_prob =
                kPolicyModes[m].fallback_prob;
            auto fuzzer = core::makeSnowplowFuzzer(kernel, model, opts);
            const auto report = fuzzer->run();
            if (grid.empty()) {
                for (const auto &point : report.timeline)
                    grid.push_back(point.execs);
            }
            std::vector<size_t> curve;
            for (const auto &point : report.timeline)
                curve.push_back(point.edges);
            edges[m].push_back(std::move(curve));
        }
    }

    for (size_t m = 0; m < kPolicyModeCount; ++m) {
        RunningStat final_edges;
        size_t lo = ~size_t{0}, hi = 0;
        for (const auto &curve : edges[m]) {
            final_edges.add(static_cast<double>(curve.back()));
            lo = curve.back() < lo ? curve.back() : lo;
            hi = curve.back() > hi ? curve.back() : hi;
        }
        std::printf("A6 policy %-8s final edges mean %.1f "
                    "(band %zu..%zu over %zu seeds)\n",
                    kPolicyModes[m].name, final_edges.mean(), lo, hi,
                    seeds.size());
    }

    std::FILE *out = std::fopen(out_path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        std::exit(1);
    }
    std::fprintf(out,
                 "{\"type\":\"ablations_sweep\",\"version\":1,"
                 "\"kernel\":\"6.8\",\"budget\":%llu,\"seeds\":[",
                 static_cast<unsigned long long>(budget));
    for (size_t i = 0; i < seeds.size(); ++i) {
        std::fprintf(out, "%s%llu", i ? "," : "",
                     static_cast<unsigned long long>(seeds[i]));
    }
    std::fprintf(out, "],\"checkpoints\":[");
    for (size_t i = 0; i < grid.size(); ++i) {
        std::fprintf(out, "%s%llu", i ? "," : "",
                     static_cast<unsigned long long>(grid[i]));
    }
    std::fprintf(out, "],\"modes\":[");
    for (size_t m = 0; m < kPolicyModeCount; ++m) {
        RunningStat final_edges;
        for (const auto &curve : edges[m])
            final_edges.add(static_cast<double>(curve.back()));
        std::fprintf(
            out,
            "%s{\"name\":\"%s\",\"policy\":\"%s\","
            "\"pmm_fallback_prob\":%.2f,\"edges\":[",
            m ? "," : "", kPolicyModes[m].name,
            kPolicyModes[m].kind == fuzz::PolicyKind::Thompson
                ? "thompson"
                : "static",
            kPolicyModes[m].fallback_prob);
        for (size_t s = 0; s < edges[m].size(); ++s) {
            std::fprintf(out, "%s[", s ? "," : "");
            for (size_t i = 0; i < edges[m][s].size(); ++i) {
                std::fprintf(out, "%s%zu", i ? "," : "",
                             edges[m][s][i]);
            }
            std::fprintf(out, "]");
        }
        std::fprintf(out, "],\"mean\":[");
        for (size_t i = 0; i < grid.size(); ++i) {
            double total = 0.0;
            for (const auto &curve : edges[m])
                total += static_cast<double>(curve[i]);
            std::fprintf(out, "%s%.2f", i ? "," : "",
                         total / static_cast<double>(edges[m].size()));
        }
        std::fprintf(out, "],\"final_mean\":%.2f}",
                     final_edges.mean());
    }
    std::fprintf(out, "]}\n");
    std::fclose(out);
    std::printf("A6 report written to %s\n", out_path);
}

}  // namespace

int
main(int argc, char **argv)
{
    // --sweep-only FILE: run only the A6 policy sweep (the CI-gated
    // subset) and write its JSON report to FILE.
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--sweep-only") == 0) {
            runPolicySweep(argv[i + 1]);
            return 0;
        }
    }

    std::printf("=== Ablations of Snowplow's design choices ===\n\n");
    kern::Kernel kernel = spbench::makeEvalKernel("6.8");

    // --- A1: target-set construction -------------------------------------
    {
        auto opts = spbench::evalDatasetOptions();
        opts.corpus_size /= 3;
        opts.mutations_per_base /= 2;
        auto noised = core::collectDataset(kernel, opts);

        // Option (a): exact new coverage as targets (no distractors).
        auto exact = noised;
        for (auto *split : {&exact.train, &exact.valid, &exact.eval}) {
            (void)split;
        }
        // Rebuild exact targets: keep only reached blocks (drop
        // distractors) by re-deriving targets as the sites' frontier
        // hits — approximated by intersecting targets with each
        // example's own targets minus sampling (already minimal when
        // fraction was -1). For the ablation we instead retrain with
        // variants_per_group=1 and fraction pinned by reusing the
        // pipeline: the noise knob is the fraction table, so compare
        // against a dataset collected with no distractor variants.
        core::TrainOptions train_opts;
        train_opts.epochs = 4;
        train_opts.pos_weight = 2.0f;
        train_opts.max_train_examples = 900;

        core::Pmm model_noised;
        core::trainPmm(model_noised, noised, train_opts);
        auto f1_noised =
            core::evaluatePmm(model_noised, noised, noised.eval).f1;

        auto opts_exact = opts;
        opts_exact.variants_per_group = 1;
        auto exact_ds = core::collectDataset(kernel, opts_exact);
        core::Pmm model_exact;
        core::trainPmm(model_exact, exact_ds, train_opts);
        // Evaluate both on the noised eval split (the fuzz-time query
        // distribution contains distractors).
        auto f1_exact =
            core::evaluatePmm(model_exact, noised, noised.eval).f1;

        std::printf("A1 target construction: option(c) noisy targets "
                    "F1 %.3f vs single-variant targets F1 %.3f\n",
                    f1_noised, f1_exact);
    }

    // --- A2: deterministic vs noisy data collection ----------------------
    {
        core::TrainOptions train_opts;
        train_opts.epochs = 4;
        train_opts.pos_weight = 2.0f;
        train_opts.max_train_examples = 900;

        auto opts = spbench::evalDatasetOptions();
        opts.corpus_size /= 3;
        opts.mutations_per_base /= 2;
        auto clean = core::collectDataset(kernel, opts);
        core::Pmm model_clean;
        core::trainPmm(model_clean, clean, train_opts);
        auto f1_clean =
            core::evaluatePmm(model_clean, clean, clean.eval).f1;

        auto noisy = collectNoisy(kernel);
        core::Pmm model_noisy;
        core::trainPmm(model_noisy, noisy, train_opts);
        // Evaluate on the *clean* eval split: noise in training data
        // hurts even when queries are clean.
        auto f1_noisy =
            core::evaluatePmm(model_noisy, clean, clean.eval).f1;

        std::printf("A2 data collection: deterministic F1 %.3f vs "
                    "noisy-collection F1 %.3f (paper §3.1: determinism "
                    "matters)\n",
                    f1_clean, f1_noisy);
    }

    // --- A5: aggregation (GCN mean vs GAT attention) ----------------------
    {
        auto opts = spbench::evalDatasetOptions();
        opts.corpus_size /= 3;
        opts.mutations_per_base /= 2;
        auto dataset = core::collectDataset(kernel, opts);
        core::TrainOptions train_opts;
        train_opts.epochs = 4;
        train_opts.pos_weight = 2.0f;
        train_opts.max_train_examples = 700;

        core::PmmConfig gcn_cfg;
        gcn_cfg.gnn_layers = 2;
        core::Pmm gcn(gcn_cfg);
        core::trainPmm(gcn, dataset, train_opts);
        auto f1_gcn = core::evaluatePmm(gcn, dataset, dataset.eval).f1;

        core::PmmConfig gat_cfg = gcn_cfg;
        gat_cfg.use_attention = true;
        core::Pmm gat(gat_cfg);
        core::trainPmm(gat, dataset, train_opts);
        auto f1_gat = core::evaluatePmm(gat, dataset, dataset.eval).f1;
        std::printf("A5 aggregation: GCN mean F1 %.3f vs GAT attention "
                    "F1 %.3f (equal budget)\n",
                    f1_gcn, f1_gat);
    }

    // --- A3/A4: fuzz-time knobs ------------------------------------------
    {
        const auto &model = spbench::sharedPmm();
        const double default_edges =
            fuzzFinalEdges(kernel, model, 0.05, 6);
        const double no_fallback = fuzzFinalEdges(kernel, model, 0.0, 6);
        const double half_fallback =
            fuzzFinalEdges(kernel, model, 0.5, 6);
        std::printf("A3 fallback randomness: prob 0.00 -> %.0f edges, "
                    "0.05 (default) -> %.0f, 0.50 -> %.0f\n",
                    no_fallback, default_edges, half_fallback);

        const double single_site = fuzzFinalEdges(kernel, model, 0.05, 1);
        std::printf("A4 dynamic mutation count: 1 site/base -> %.0f "
                    "edges, up-to-6 sites/base -> %.0f\n",
                    single_site, default_edges);
    }

    // --- A6: decision policy ----------------------------------------------
    runPolicySweep("BENCH_ablations.json");
    return 0;
}
