// Unit and property tests for the autograd engine: forward values on
// known inputs and finite-difference gradient checks for every
// differentiable op.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace sp::nn {
namespace {

// Numerically check d(loss)/d(input) against autograd for a scalar-valued
// function of one tensor built by `make_loss`. The input tensor is rebuilt
// per evaluation so that each forward pass is independent.
void
checkGradient(const std::vector<float> &input_values, int64_t rows,
              int64_t cols,
              const std::function<Tensor(const Tensor &)> &make_loss,
              float tol = 2e-2f, float h = 1e-3f)
{
    auto build = [&](const std::vector<float> &values) {
        if (cols == 0)
            return Tensor::fromVector(values, /*requires_grad=*/true);
        return Tensor::fromMatrix(values, rows, cols,
                                  /*requires_grad=*/true);
    };

    Tensor x = build(input_values);
    Tensor loss = make_loss(x);
    loss.backward();
    const std::vector<float> analytic = x.grad();

    for (size_t i = 0; i < input_values.size(); ++i) {
        auto plus = input_values;
        auto minus = input_values;
        plus[i] += h;
        minus[i] -= h;
        const float f_plus = make_loss(build(plus)).item();
        const float f_minus = make_loss(build(minus)).item();
        const float numeric = (f_plus - f_minus) / (2.0f * h);
        EXPECT_NEAR(analytic[i], numeric,
                    tol * std::max(1.0f, std::fabs(numeric)))
            << "element " << i;
    }
}

TEST(Tensor, ConstructionAndAccess)
{
    Tensor v = Tensor::fromVector({1.0f, 2.0f, 3.0f});
    EXPECT_EQ(v.rows(), 3);
    EXPECT_FALSE(v.isMatrix());
    EXPECT_FLOAT_EQ(v.at(1), 2.0f);

    Tensor m = Tensor::fromMatrix({1, 2, 3, 4, 5, 6}, 2, 3);
    EXPECT_EQ(m.rows(), 2);
    EXPECT_EQ(m.cols(), 3);
    EXPECT_FLOAT_EQ(m.at(1, 2), 6.0f);
    m.set(1, 2, 9.0f);
    EXPECT_FLOAT_EQ(m.at(1, 2), 9.0f);
}

TEST(Tensor, MatmulKnownValues)
{
    Tensor a = Tensor::fromMatrix({1, 2, 3, 4}, 2, 2);
    Tensor b = Tensor::fromMatrix({5, 6, 7, 8}, 2, 2);
    Tensor c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Tensor, MatmulGradient)
{
    Tensor b = Tensor::fromMatrix({0.5f, -1.0f, 2.0f, 0.25f, 1.5f, -0.5f},
                                  3, 2);
    checkGradient({1, 2, 3, 4, 5, 6}, 2, 3, [&](const Tensor &x) {
        return sumAll(matmul(x, b));
    });
}

TEST(Tensor, MatmulGradientRightOperand)
{
    Tensor a = Tensor::fromMatrix({1, -2, 0.5f, 3}, 2, 2);
    checkGradient({0.1f, 0.2f, 0.3f, 0.4f}, 2, 2, [&](const Tensor &x) {
        return sumAll(matmul(a, x));
    });
}

TEST(Tensor, AddSubMulGradients)
{
    Tensor other = Tensor::fromMatrix({2, -1, 0.5f, 3}, 2, 2);
    checkGradient({1, 2, 3, 4}, 2, 2, [&](const Tensor &x) {
        return sumAll(mul(add(x, other), sub(x, other)));
    });
}

TEST(Tensor, AddRowVecBroadcast)
{
    Tensor m = Tensor::fromMatrix({1, 2, 3, 4}, 2, 2);
    Tensor b = Tensor::fromVector({10, 20});
    Tensor out = addRowVec(m, b);
    EXPECT_FLOAT_EQ(out.at(0, 0), 11.0f);
    EXPECT_FLOAT_EQ(out.at(1, 1), 24.0f);
}

TEST(Tensor, AddRowVecGradientThroughBias)
{
    Tensor m = Tensor::fromMatrix({1, 2, 3, 4, 5, 6}, 3, 2);
    checkGradient({0.5f, -0.5f}, 2, 0, [&](const Tensor &bias) {
        return sumAll(relu(addRowVec(m, bias)));
    });
}

TEST(Tensor, MulRowVecGradient)
{
    Tensor b = Tensor::fromVector({2.0f, -3.0f});
    checkGradient({1, 2, 3, 4}, 2, 2, [&](const Tensor &x) {
        return sumAll(mulRowVec(x, b));
    });
}

TEST(Tensor, ActivationsForward)
{
    Tensor x = Tensor::fromVector({-1.0f, 0.0f, 2.0f});
    EXPECT_FLOAT_EQ(relu(x).at(0), 0.0f);
    EXPECT_FLOAT_EQ(relu(x).at(2), 2.0f);
    EXPECT_NEAR(sigmoid(x).at(1), 0.5f, 1e-6f);
    EXPECT_NEAR(tanhT(x).at(2), std::tanh(2.0f), 1e-6f);
}

TEST(Tensor, ActivationGradients)
{
    // Avoid the ReLU kink at 0 for finite differences.
    checkGradient({-1.5f, 0.7f, 2.0f, -0.3f}, 4, 0, [](const Tensor &x) {
        return sumAll(relu(x));
    });
    checkGradient({-1.5f, 0.7f, 2.0f, -0.3f}, 4, 0, [](const Tensor &x) {
        return sumAll(tanhT(x));
    });
    checkGradient({-1.5f, 0.7f, 2.0f, -0.3f}, 4, 0, [](const Tensor &x) {
        return sumAll(sigmoid(x));
    });
}

TEST(Tensor, GatherRowsForward)
{
    Tensor m = Tensor::fromMatrix({1, 2, 3, 4, 5, 6}, 3, 2);
    Tensor out = gatherRows(m, {2, 0, 2});
    EXPECT_EQ(out.rows(), 3);
    EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out.at(1, 1), 2.0f);
    EXPECT_FLOAT_EQ(out.at(2, 1), 6.0f);
}

TEST(Tensor, GatherRowsGradientAccumulatesRepeats)
{
    checkGradient({1, 2, 3, 4, 5, 6}, 3, 2, [](const Tensor &x) {
        return sumAll(gatherRows(x, {1, 1, 0}));
    });
}

TEST(Tensor, ScatterAddRowsForward)
{
    Tensor m = Tensor::fromMatrix({1, 2, 3, 4, 5, 6}, 3, 2);
    Tensor out = scatterAddRows(m, {0, 0, 1}, 2);
    EXPECT_EQ(out.rows(), 2);
    EXPECT_FLOAT_EQ(out.at(0, 0), 4.0f);  // 1 + 3
    EXPECT_FLOAT_EQ(out.at(0, 1), 6.0f);  // 2 + 4
    EXPECT_FLOAT_EQ(out.at(1, 0), 5.0f);
}

TEST(Tensor, ScatterAddRowsGradient)
{
    checkGradient({1, 2, 3, 4, 5, 6}, 3, 2, [](const Tensor &x) {
        Tensor pooled = scatterAddRows(x, {1, 0, 1}, 2);
        return sumAll(mul(pooled, pooled));
    });
}

TEST(Tensor, RowScaleGradient)
{
    checkGradient({1, 2, 3, 4}, 2, 2, [](const Tensor &x) {
        return sumAll(rowScale(x, {0.5f, 2.0f}));
    });
}

TEST(Tensor, ConcatColsForwardAndGradient)
{
    Tensor right = Tensor::fromMatrix({10, 20}, 2, 1);
    Tensor left = Tensor::fromMatrix({1, 2, 3, 4}, 2, 2);
    Tensor out = concatCols({left, right});
    EXPECT_EQ(out.cols(), 3);
    EXPECT_FLOAT_EQ(out.at(0, 2), 10.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0), 3.0f);

    checkGradient({1, 2, 3, 4}, 2, 2, [&](const Tensor &x) {
        Tensor cat = concatCols({x, right});
        return sumAll(mul(cat, cat));
    });
}

TEST(Tensor, ConcatRowsForward)
{
    Tensor top = Tensor::fromMatrix({1, 2}, 1, 2);
    Tensor bottom = Tensor::fromMatrix({3, 4, 5, 6}, 2, 2);
    Tensor out = concatRows({top, bottom});
    EXPECT_EQ(out.rows(), 3);
    EXPECT_FLOAT_EQ(out.at(2, 1), 6.0f);
}

TEST(Tensor, LayerNormRowsForward)
{
    Tensor x = Tensor::fromMatrix({1, 2, 3, 4, 4, 4}, 2, 3);
    Tensor out = layerNormRows(x);
    // First row mean 2, var 2/3.
    EXPECT_NEAR(out.at(0, 0) + out.at(0, 2), 0.0f, 1e-5f);
    EXPECT_NEAR(out.at(0, 1), 0.0f, 1e-5f);
    // Constant row normalizes to ~0.
    EXPECT_NEAR(out.at(1, 0), 0.0f, 1e-2f);
}

TEST(Tensor, LayerNormRowsGradient)
{
    Tensor w = Tensor::fromMatrix({0.3f, -0.7f, 1.1f, 0.9f, -1.3f, 0.2f},
                                  2, 3);
    checkGradient({1.0f, -2.0f, 0.5f, 3.0f, 1.5f, -0.5f}, 2, 3,
                  [&](const Tensor &x) {
                      return sumAll(mul(layerNormRows(x), w));
                  });
}

TEST(Tensor, SoftmaxRowsForward)
{
    Tensor x = Tensor::fromMatrix({0, 0, 0, 1000, 0, 0}, 2, 3);
    Tensor out = softmaxRows(x);
    EXPECT_NEAR(out.at(0, 0), 1.0f / 3.0f, 1e-5f);
    EXPECT_NEAR(out.at(1, 0), 1.0f, 1e-5f);  // stable under large logits
    float row_sum = out.at(1, 0) + out.at(1, 1) + out.at(1, 2);
    EXPECT_NEAR(row_sum, 1.0f, 1e-5f);
}

TEST(Tensor, SoftmaxRowsGradient)
{
    Tensor pick = Tensor::fromMatrix({1, 0, 0, 0, 2, 0}, 2, 3);
    checkGradient({0.1f, -0.4f, 0.7f, 1.2f, -0.2f, 0.3f}, 2, 3,
                  [&](const Tensor &x) {
                      return sumAll(mul(softmaxRows(x), pick));
                  });
}

TEST(Tensor, MeanAndSum)
{
    Tensor x = Tensor::fromVector({1, 2, 3, 4});
    EXPECT_FLOAT_EQ(meanAll(x).item(), 2.5f);
    EXPECT_FLOAT_EQ(sumAll(x).item(), 10.0f);
}

TEST(Tensor, BceWithLogitsKnownValue)
{
    // logit 0 => loss log(2) regardless of target.
    Tensor logits = Tensor::fromVector({0.0f, 0.0f});
    Tensor loss = bceWithLogits(logits, {1.0f, 0.0f}, {1.0f, 1.0f});
    EXPECT_NEAR(loss.item(), std::log(2.0f), 1e-5f);
}

TEST(Tensor, BceWithLogitsGradient)
{
    checkGradient({0.5f, -1.5f, 2.0f}, 3, 0, [](const Tensor &x) {
        return bceWithLogits(x, {1.0f, 0.0f, 1.0f}, {1.0f, 2.0f, 0.5f});
    });
}

TEST(Tensor, BceWithLogitsWeightsShiftLoss)
{
    Tensor logits = Tensor::fromVector({3.0f, 3.0f});
    // Weighting the wrong prediction more should increase the loss.
    float balanced =
        bceWithLogits(logits, {1.0f, 0.0f}, {1.0f, 1.0f}).item();
    float skewed =
        bceWithLogits(logits, {1.0f, 0.0f}, {1.0f, 3.0f}).item();
    EXPECT_GT(skewed, balanced);
}

TEST(Tensor, DropoutTrainingAndEval)
{
    Rng rng(5);
    Tensor x = Tensor::fromMatrix(std::vector<float>(1000, 1.0f), 100, 10);
    Tensor eval_out = dropout(x, 0.5f, rng, /*training=*/false);
    EXPECT_FLOAT_EQ(eval_out.at(0, 0), 1.0f);

    Tensor train_out = dropout(x, 0.5f, rng, /*training=*/true);
    int zeros = 0;
    double sum = 0.0;
    for (float v : train_out.data()) {
        zeros += (v == 0.0f);
        sum += v;
    }
    EXPECT_GT(zeros, 300);
    EXPECT_LT(zeros, 700);
    // Inverted scaling keeps the expectation.
    EXPECT_NEAR(sum / 1000.0, 1.0, 0.15);
}


TEST(Tensor, RowScaleTForwardAndGradient)
{
    Tensor v = Tensor::fromVector({2.0f, -1.0f});
    checkGradient({1, 2, 3, 4}, 2, 2, [&](const Tensor &x) {
        return sumAll(rowScaleT(x, v));
    });
    // Gradient through the scale vector too.
    Tensor m = Tensor::fromMatrix({1, 2, 3, 4}, 2, 2);
    checkGradient({0.5f, 1.5f}, 2, 0, [&](const Tensor &scale) {
        return sumAll(mul(rowScaleT(m, scale), rowScaleT(m, scale)));
    });
}

TEST(Tensor, LeakyReluForwardAndGradient)
{
    Tensor x = Tensor::fromVector({-2.0f, 3.0f});
    Tensor y = leakyRelu(x, 0.1f);
    EXPECT_FLOAT_EQ(y.at(0), -0.2f);
    EXPECT_FLOAT_EQ(y.at(1), 3.0f);
    checkGradient({-1.5f, 0.7f, 2.0f}, 3, 0, [](const Tensor &t) {
        return sumAll(leakyRelu(t, 0.2f));
    });
}

TEST(Tensor, SegmentSoftmaxNormalizesPerSegment)
{
    Tensor scores = Tensor::fromVector({0.0f, 0.0f, 1.0f, 2.0f, 3.0f});
    Tensor out = segmentSoftmax(scores, {0, 0, 1, 1, 1}, 2);
    EXPECT_NEAR(out.at(0) + out.at(1), 1.0f, 1e-5f);
    EXPECT_NEAR(out.at(2) + out.at(3) + out.at(4), 1.0f, 1e-5f);
    EXPECT_FLOAT_EQ(out.at(0), out.at(1));
    EXPECT_GT(out.at(4), out.at(3));
}

TEST(Tensor, SegmentSoftmaxGradient)
{
    Tensor pick = Tensor::fromVector({1.0f, 0.0f, 0.0f, 2.0f, 0.0f});
    checkGradient({0.3f, -0.8f, 1.2f, 0.1f, -0.4f}, 5, 0,
                  [&](const Tensor &x) {
                      Tensor alpha =
                          segmentSoftmax(x, {0, 0, 1, 1, 1}, 2);
                      return sumAll(mul(alpha, pick));
                  });
}

TEST(Tensor, BackwardThroughSharedSubexpression)
{
    // y = x used twice: gradient must accumulate from both paths.
    Tensor x = Tensor::fromVector({2.0f}, /*requires_grad=*/true);
    Tensor y = mul(x, x);  // x^2, dy/dx = 2x = 4
    Tensor loss = sumAll(y);
    loss.backward();
    EXPECT_NEAR(x.grad()[0], 4.0f, 1e-5f);
}

TEST(Tensor, ChainedGraphGradient)
{
    // Composite expression exercising several ops end to end.
    Tensor w = Tensor::fromMatrix({0.2f, -0.4f, 0.6f, 0.8f, -0.1f, 0.3f},
                                  3, 2);
    checkGradient({1.0f, -1.0f, 0.5f, 2.0f, 0.3f, -0.7f}, 2, 3,
                  [&](const Tensor &x) {
                      Tensor h = tanhT(matmul(x, w));
                      Tensor pooled = scatterAddRows(h, {0, 0}, 1);
                      return meanAll(mul(pooled, pooled));
                  });
}

}  // namespace
}  // namespace sp::nn
