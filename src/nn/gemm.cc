#include "nn/gemm.h"

#include <algorithm>
#include <thread>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace sp::nn {

namespace {

// Panel sizes: a packed B^T panel is at most kColBlock * kRedBlock
// floats (64 KiB), small enough that it stays cache-resident while
// every row of A streams past it.
constexpr int64_t kColBlock = 64;   ///< columns of C per panel
constexpr int64_t kRedBlock = 256;  ///< reduction elements per panel

// Minimum madds before the row-parallel path is worth a thread spawn.
constexpr int64_t kParallelWork = int64_t{1} << 21;
constexpr unsigned kMaxThreads = 4;

// Contiguous dot product with four independent accumulators so the
// compiler can keep the reduction in SIMD registers without needing
// -ffast-math reassociation.
inline float
dot(const float *x, const float *y, int64_t len)
{
    float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
    int64_t i = 0;
    for (; i + 4 <= len; i += 4) {
        a0 += x[i] * y[i];
        a1 += x[i + 1] * y[i + 1];
        a2 += x[i + 2] * y[i + 2];
        a3 += x[i + 3] * y[i + 3];
    }
    float acc = (a0 + a2) + (a1 + a3);
    for (; i < len; ++i)
        acc += x[i] * y[i];
    return acc;
}

/**
 * Four dot products against one shared left operand. Each x chunk is
 * loaded once and multiplied into four accumulators, quartering the
 * load traffic of four independent dot() calls — the bottleneck of the
 * single-column kernel on this workload. Lane partitioning and the
 * final reduction tree match dot() exactly, so the result is
 * bit-identical to four dot() calls.
 */
inline void
dot4(const float *x, const float *y0, const float *y1, const float *y2,
     const float *y3, int64_t len, float *out)
{
    int64_t i = 0;
#if defined(__SSE2__)
    __m128 v0 = _mm_setzero_ps(), v1 = _mm_setzero_ps();
    __m128 v2 = _mm_setzero_ps(), v3 = _mm_setzero_ps();
    for (; i + 4 <= len; i += 4) {
        const __m128 xv = _mm_loadu_ps(x + i);
        v0 = _mm_add_ps(v0, _mm_mul_ps(xv, _mm_loadu_ps(y0 + i)));
        v1 = _mm_add_ps(v1, _mm_mul_ps(xv, _mm_loadu_ps(y1 + i)));
        v2 = _mm_add_ps(v2, _mm_mul_ps(xv, _mm_loadu_ps(y2 + i)));
        v3 = _mm_add_ps(v3, _mm_mul_ps(xv, _mm_loadu_ps(y3 + i)));
    }
    alignas(16) float t[4];
    _mm_store_ps(t, v0);
    float r0 = (t[0] + t[2]) + (t[1] + t[3]);
    _mm_store_ps(t, v1);
    float r1 = (t[0] + t[2]) + (t[1] + t[3]);
    _mm_store_ps(t, v2);
    float r2 = (t[0] + t[2]) + (t[1] + t[3]);
    _mm_store_ps(t, v3);
    float r3 = (t[0] + t[2]) + (t[1] + t[3]);
#else
    float a00 = 0.0f, a01 = 0.0f, a02 = 0.0f, a03 = 0.0f;
    float a10 = 0.0f, a11 = 0.0f, a12 = 0.0f, a13 = 0.0f;
    float a20 = 0.0f, a21 = 0.0f, a22 = 0.0f, a23 = 0.0f;
    float a30 = 0.0f, a31 = 0.0f, a32 = 0.0f, a33 = 0.0f;
    for (; i + 4 <= len; i += 4) {
        const float x0 = x[i], x1 = x[i + 1], x2 = x[i + 2],
                    x3 = x[i + 3];
        a00 += x0 * y0[i]; a01 += x1 * y0[i + 1];
        a02 += x2 * y0[i + 2]; a03 += x3 * y0[i + 3];
        a10 += x0 * y1[i]; a11 += x1 * y1[i + 1];
        a12 += x2 * y1[i + 2]; a13 += x3 * y1[i + 3];
        a20 += x0 * y2[i]; a21 += x1 * y2[i + 1];
        a22 += x2 * y2[i + 2]; a23 += x3 * y2[i + 3];
        a30 += x0 * y3[i]; a31 += x1 * y3[i + 1];
        a32 += x2 * y3[i + 2]; a33 += x3 * y3[i + 3];
    }
    float r0 = (a00 + a02) + (a01 + a03);
    float r1 = (a10 + a12) + (a11 + a13);
    float r2 = (a20 + a22) + (a21 + a23);
    float r3 = (a30 + a32) + (a31 + a33);
#endif
    for (; i < len; ++i) {
        const float xv = x[i];
        r0 += xv * y0[i];
        r1 += xv * y1[i];
        r2 += xv * y2[i];
        r3 += xv * y3[i];
    }
    out[0] = r0;
    out[1] = r1;
    out[2] = r2;
    out[3] = r3;
}

/** True when the row chunk is entirely zero (its C += A·B term is 0). */
inline bool
rowIsZero(const float *row, int64_t len)
{
    for (int64_t i = 0; i < len; ++i)
        if (row[i] != 0.0f)
            return false;
    return true;
}

void
gemmAccRows(const float *a, const float *b, float *c, int64_t n,
            int64_t k, int64_t m)
{
    thread_local std::vector<float> pack;
    for (int64_t j0 = 0; j0 < m; j0 += kColBlock) {
        const int64_t jb = std::min(kColBlock, m - j0);
        for (int64_t k0 = 0; k0 < k; k0 += kRedBlock) {
            const int64_t kb = std::min(kRedBlock, k - k0);
            pack.resize(static_cast<size_t>(jb * kb));
            float *p = pack.data();
            for (int64_t j = 0; j < jb; ++j)
                for (int64_t kk = 0; kk < kb; ++kk)
                    p[j * kb + kk] = b[(k0 + kk) * m + j0 + j];
            for (int64_t i = 0; i < n; ++i) {
                const float *arow = a + i * k + k0;
                // Skip all-zero rows: their contribution is exactly
                // 0.0, so C is unchanged either way. GNN relation
                // aggregation produces mostly-zero pooled matrices
                // (only edge destinations have mass), making this the
                // dominant saving on the inference hot path.
                if (rowIsZero(arow, kb))
                    continue;
                float *crow = c + i * m + j0;
                int64_t j = 0;
                for (; j + 4 <= jb; j += 4) {
                    const float *pj = p + j * kb;
                    float r[4];
                    dot4(arow, pj, pj + kb, pj + 2 * kb, pj + 3 * kb,
                         kb, r);
                    crow[j] += r[0];
                    crow[j + 1] += r[1];
                    crow[j + 2] += r[2];
                    crow[j + 3] += r[3];
                }
                for (; j < jb; ++j)
                    crow[j] += dot(arow, p + j * kb, kb);
            }
        }
    }
}

void
gemmAccTransBRows(const float *g, const float *b, float *c, int64_t n,
                  int64_t m, int64_t k)
{
    // C[i][j] = sum_l G[i][l] * B[j][l]: both rows contiguous.
    for (int64_t i = 0; i < n; ++i) {
        const float *grow = g + i * m;
        if (rowIsZero(grow, m))
            continue;
        float *crow = c + i * k;
        int64_t j = 0;
        for (; j + 4 <= k; j += 4) {
            const float *bj = b + j * m;
            float r[4];
            dot4(grow, bj, bj + m, bj + 2 * m, bj + 3 * m, m, r);
            crow[j] += r[0];
            crow[j + 1] += r[1];
            crow[j + 2] += r[2];
            crow[j + 3] += r[3];
        }
        for (; j < k; ++j)
            crow[j] += dot(grow, b + j * m, m);
    }
}

/**
 * Run fn(row_begin, row_end) over [0, n), split across threads when
 * `work` (total madds) is large enough; serial otherwise.
 */
template <typename Fn>
void
forRowSlices(int64_t n, int64_t work, Fn fn)
{
    unsigned threads = std::thread::hardware_concurrency();
    threads = std::min(threads, kMaxThreads);
    if (work < kParallelWork || threads < 2 || n < 2) {
        fn(0, n);
        return;
    }
    const int64_t slices = std::min<int64_t>(threads, n);
    const int64_t per = (n + slices - 1) / slices;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(slices - 1));
    for (int64_t s = 1; s < slices; ++s) {
        const int64_t lo = s * per;
        const int64_t hi = std::min(n, lo + per);
        if (lo >= hi)
            break;
        pool.emplace_back([&fn, lo, hi] { fn(lo, hi); });
    }
    fn(0, std::min(n, per));
    for (auto &t : pool)
        t.join();
}

}  // namespace

void
gemmAcc(const float *a, const float *b, float *c, int64_t n, int64_t k,
        int64_t m)
{
    forRowSlices(n, n * k * m, [=](int64_t lo, int64_t hi) {
        gemmAccRows(a + lo * k, b, c + lo * m, hi - lo, k, m);
    });
}

void
gemmAccTransB(const float *g, const float *b, float *c, int64_t n,
              int64_t m, int64_t k)
{
    forRowSlices(n, n * k * m, [=](int64_t lo, int64_t hi) {
        gemmAccTransBRows(g + lo * m, b, c + lo * k, hi - lo, m, k);
    });
}

void
gemmAccTransA(const float *a, const float *g, float *c, int64_t n,
              int64_t k, int64_t m)
{
    // Outer-product accumulation: every i adds a rank-1 update; the
    // inner loop over j is contiguous in both G and C. C[k,m] is small
    // for every model in this repository, so it stays cache-resident
    // while A and G stream through once. Serial: concurrent updates
    // would race on C.
    for (int64_t i = 0; i < n; ++i) {
        const float *grow = g + i * m;
        for (int64_t kk = 0; kk < k; ++kk) {
            const float av = a[i * k + kk];
            if (av == 0.0f)
                continue;
            float *crow = c + kk * m;
            for (int64_t j = 0; j < m; ++j)
                crow[j] += av * grow[j];
        }
    }
}

}  // namespace sp::nn
