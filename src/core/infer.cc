#include "core/infer.h"

#include <algorithm>
#include <chrono>

#include "nn/inference.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace sp::core {

namespace {

/** Registry handles for the inference service (looked up once). */
struct InferMetrics
{
    obs::Counter &submitted;
    obs::Counter &completed;
    obs::Gauge &queue_depth;
    obs::Gauge &arena_hit_ratio;
    obs::Histogram &latency_us;
    obs::Histogram &batch_size;

    static InferMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static InferMetrics metrics{
            reg.counter("infer.submitted"),
            reg.counter("infer.completed"),
            reg.gauge("infer.queue_depth"),
            reg.gauge("infer.arena_hit_ratio"),
            reg.histogram("infer.latency_us"),
            reg.histogram("infer.batch_size"),
        };
        return metrics;
    }
};

}  // namespace

InferenceService::InferenceService(const Pmm &model, size_t workers,
                                   BatchOptions batch)
    : model_(model), batch_(batch),
      window_us_(std::max<uint32_t>(1, batch.max_window_us / 4))
{
    SP_ASSERT(workers >= 1);
    SP_ASSERT(batch_.max_batch >= 1);
    workers_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

InferenceService::~InferenceService()
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

std::future<std::vector<float>>
InferenceService::submit(graph::EncodedGraph graph, uint64_t trace_id)
{
    Request request;
    request.graph = std::move(graph);
    request.enqueued = std::chrono::steady_clock::now();
    request.trace_id = trace_id;
    if (trace_id != 0)
        request.enqueued_us = monotonicMicros();
    auto future = request.promise.get_future();
    size_t depth;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        SP_ASSERT(!stopping_, "submit after shutdown");
        queue_.push_back(std::move(request));
        depth = queue_.size();
    }
    InferMetrics &metrics = InferMetrics::get();
    metrics.submitted.inc();
    metrics.queue_depth.set(static_cast<double>(depth));
    cv_.notify_one();
    return future;
}

std::vector<float>
InferenceService::infer(const graph::EncodedGraph &graph) const
{
    return model_.predict(graph);
}

InferenceStats
InferenceService::stats() const
{
    const obs::HistogramSnapshot snap = latency_us_.snapshot();
    InferenceStats stats;
    stats.completed = static_cast<uint64_t>(snap.stat.count());
    stats.mean_latency_us = snap.stat.mean();
    stats.p50_latency_us = snap.samples.percentile(50);
    stats.p95_latency_us = snap.samples.percentile(95);
    stats.p99_latency_us = snap.samples.percentile(99);
    stats.batches = batches_.load(std::memory_order_relaxed);
    stats.mean_batch_size =
        stats.batches == 0
            ? 0.0
            : static_cast<double>(stats.completed) /
                  static_cast<double>(stats.batches);
    return stats;
}

void
InferenceService::workerLoop(size_t worker)
{
    if (obs::traceEnabled() || obs::introspectionEnabled())
        obs::setRingLabel("infer" + std::to_string(worker));
    std::vector<Request> batch;
    batch.reserve(batch_.max_batch);
    for (;;) {
        batch.clear();
        size_t depth;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            auto drain = [this, &batch] {
                while (!queue_.empty() &&
                       batch.size() < batch_.max_batch) {
                    batch.push_back(std::move(queue_.front()));
                    queue_.pop_front();
                }
            };
            drain();
            const size_t drained = batch.size();
            // Partial batch: hold the door open for stragglers, but
            // only for the adaptive window (and never at shutdown).
            if (!stopping_ && batch.size() < batch_.max_batch &&
                batch_.max_window_us > 0) {
                const auto deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::microseconds(
                        window_us_.load(std::memory_order_relaxed));
                while (batch.size() < batch_.max_batch) {
                    if (!cv_.wait_until(lock, deadline, [this] {
                            return stopping_ || !queue_.empty();
                        })) {
                        break;
                    }
                    if (stopping_ && queue_.empty())
                        break;
                    drain();
                }
                // Adapt: waiting that pays grows the window, waiting
                // that starves shrinks it.
                const uint32_t window =
                    window_us_.load(std::memory_order_relaxed);
                const uint32_t next =
                    batch.size() > drained
                        ? std::min(window * 2, batch_.max_window_us)
                        : std::max<uint32_t>(window / 2, 1);
                window_us_.store(next, std::memory_order_relaxed);
            }
            depth = queue_.size();
        }
        InferMetrics &metrics = InferMetrics::get();
        metrics.queue_depth.set(static_cast<double>(depth));

        // Queue-wait spans: one per traced request, reconstructed from
        // its submit timestamp, charged to the submitter's trace id so
        // the pipeline trace separates time-in-queue from compute.
        uint64_t batch_trace = 0;
        if (obs::traceEnabled()) {
            const uint64_t now_us = monotonicMicros();
            for (const Request &request : batch) {
                if (request.trace_id == 0)
                    continue;
                if (batch_trace == 0)
                    batch_trace = request.trace_id;
                obs::recordSpan(obs::SpanKind::InferQueue,
                                request.trace_id, request.enqueued_us,
                                now_us >= request.enqueued_us
                                    ? now_us - request.enqueued_us
                                    : 0,
                                batch.size());
            }
        }

        std::vector<const graph::EncodedGraph *> graphs;
        graphs.reserve(batch.size());
        for (const Request &request : batch)
            graphs.push_back(&request.graph);
        std::vector<std::vector<float>> probs;
        {
            // Compute span for the whole micro-batch, stamped with the
            // first traced request's id (arg = batch size).
            obs::TraceSpan span(obs::SpanKind::InferBatch, batch_trace,
                                batch.size());
            probs = batch.size() == 1
                        ? std::vector<std::vector<float>>{model_.predict(
                              *graphs[0])}
                        : model_.predictBatch(graphs);
        }

        batches_.fetch_add(1, std::memory_order_relaxed);
        metrics.completed.inc(batch.size());
        metrics.arena_hit_ratio.set(
            nn::threadArenaStats().hitRatio());
        if (obs::timingEnabled())
            metrics.batch_size.record(
                static_cast<double>(batch.size()));

        const auto now = std::chrono::steady_clock::now();
        for (size_t i = 0; i < batch.size(); ++i) {
            const double latency =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    now - batch[i].enqueued)
                    .count() /
                1000.0;
            latency_us_.record(latency);
            if (obs::timingEnabled())
                metrics.latency_us.record(latency);
            if (auto *sink = obs::sink()) {
                sink->event("inference_latency",
                            {{"latency_us", latency},
                             {"batch_size", batch.size()},
                             {"queue_depth", depth}});
            }
            batch[i].promise.set_value(std::move(probs[i]));
        }
    }
}

}  // namespace sp::core
