/**
 * @file
 * Corpus persistence: save a fuzzing corpus to a text file in the
 * Syzlang-like syntax and load it back as the seed pool of a later
 * campaign — the equivalent of Syzkaller's corpus database (and of the
 * Syzbot corpus downloads the paper bootstraps its dataset from, §5.1).
 */
#ifndef SP_FUZZ_SEEDPOOL_H
#define SP_FUZZ_SEEDPOOL_H

#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "prog/types.h"

namespace sp::fuzz {

/**
 * Write every corpus program to `path`, one blank-line-separated
 * program block per entry. Fatal on I/O error.
 */
void saveCorpus(const Corpus &corpus, const std::string &path);

/** Write a plain program list (seed generation output). */
void savePrograms(const std::vector<prog::Prog> &programs,
                  const std::string &path);

/**
 * Load programs from `path` against `table`. Programs that no longer
 * parse (e.g. the syscall table changed between kernel versions) are
 * skipped with a warning; returns the programs that survived.
 */
std::vector<prog::Prog> loadPrograms(const std::string &path,
                                     const prog::SyscallTable &table);

}  // namespace sp::fuzz

#endif  // SP_FUZZ_SEEDPOOL_H
